// Package clustersim is a cycle-level simulator of dynamically tunable
// clustered processors, reproducing Balasubramonian, Dwarkadas and
// Albonesi, "Dynamically Managing the Communication-Parallelism Trade-off
// in Future Clustered Processors" (ISCA 2003).
//
// The simulated machine distributes issue queues, register files and
// functional units over up to 16 clusters connected by a ring or grid
// interconnect, with either a centralized or a decentralized (bank-per-
// cluster) L1 data cache. Run-time controllers tune how many clusters a
// program may dispatch to, trading inter-cluster communication against
// instruction-level parallelism:
//
//	gen, err := clustersim.NewWorkload("gzip", 1)
//	if err != nil { ... }
//	ctrl := clustersim.NewExplore(clustersim.ExploreConfig{})
//	p, err := clustersim.NewProcessor(clustersim.DefaultConfig(), gen, ctrl)
//	if err != nil { ... }
//	res, err := p.Run(1_000_000)
//	if err != nil { ... }
//	fmt.Println(res.IPC(), res.AvgActiveClusters())
//
// Nine synthetic benchmarks stand in for the paper's SPEC2K/Mediabench
// programs (see Benchmarks and internal/workload for the substitution
// rationale), and package internal/experiments regenerates every table and
// figure of the paper's evaluation.
package clustersim

import (
	"fmt"
	"io"
	"time"

	"clustersim/internal/check"
	"clustersim/internal/core"
	"clustersim/internal/energy"
	"clustersim/internal/obs"
	"clustersim/internal/pipeline"
	"clustersim/internal/smt"
	"clustersim/internal/spec"
	"clustersim/internal/stats"
	"clustersim/internal/telemetry"
	"clustersim/internal/trace"
	"clustersim/internal/workload"
)

// Core simulator types, aliased from the implementation packages so the
// public API is a single import.
type (
	// Config describes a processor instance (Table 1 defaults).
	Config = pipeline.Config
	// Result holds run statistics.
	Result = pipeline.Result
	// CommitEvent is what a Controller observes per committed
	// instruction.
	CommitEvent = pipeline.CommitEvent
	// Controller decides the active-cluster count at run time.
	Controller = pipeline.Controller
	// Processor is one simulated machine bound to a workload.
	Processor = pipeline.Processor
	// Generator produces a benchmark's instruction stream.
	Generator = workload.Generator
	// PaperData records a benchmark's published characteristics.
	PaperData = workload.PaperData
	// WorkloadKernel parameterizes one phase of a custom synthetic
	// workload (instruction mix, dependence structure, locality).
	WorkloadKernel = workload.Kernel
	// WorkloadPhase is one (name, length, kernel) segment of a custom
	// workload.
	WorkloadPhase = workload.Phase
	// WorkloadSpec is a declarative workload document (phase profiles
	// and sampling distributions, or a multi-programmed mix); see
	// docs/WORKLOADS.md for the schema.
	WorkloadSpec = spec.Spec
	// SpecDist is a sampleable scalar in a workload spec (a constant or
	// a named distribution, inverse-CDF sampled).
	SpecDist = spec.Dist
	// SpecMixThread is one compiled thread of a mix spec.
	SpecMixThread = spec.MixThread
	// InstrTrace is a recorded instruction stream with its identity;
	// replaying it is byte-identical to live generation.
	InstrTrace = trace.Trace
	// TraceMeta identifies a trace's source (generator name, source
	// kind/id, spec fingerprint, seed).
	TraceMeta = trace.Meta
	// TraceHeader is a trace file's identity block (metadata, length,
	// content fingerprint), readable without decoding the payload.
	TraceHeader = trace.Header
	// TraceReplayer replays a recorded stream as a Generator.
	TraceReplayer = trace.Replayer
	// TraceRecorder tees a live Generator while retaining the stream for
	// a trace file.
	TraceRecorder = trace.Recorder
	// TraceExhaustedError is the typed panic a TraceReplayer raises when a
	// run fetches past its recording; the sweep runner recovers it into a
	// per-run failure, direct drivers recover it themselves.
	TraceExhaustedError = trace.ExhaustedError

	// Checker observes the machine's architectural state at the end of
	// every simulated cycle (set Config.Checker); a nil Checker costs one
	// pointer test per cycle.
	Checker = pipeline.Checker
	// MachineView is the per-cycle state snapshot handed to a Checker.
	MachineView = pipeline.MachineView
	// InvariantChecker validates cycle-level structural invariants
	// (window/ROB bounds, register and issue-queue conservation, memory
	// and interconnect accounting identities). One instance per run.
	InvariantChecker = check.Invariants
	// InvariantViolation is one failed invariant at one cycle.
	InvariantViolation = check.Violation

	// ExploreConfig parameterizes the Figure 4 interval-based controller.
	ExploreConfig = core.ExploreConfig
	// DistantILPConfig parameterizes the §4.3 no-exploration controller.
	DistantILPConfig = core.DistantILPConfig
	// FineGrainConfig parameterizes the §4.4 fine-grained controller.
	FineGrainConfig = core.FineGrainConfig
	// Static pins the active-cluster count.
	Static = core.Static

	// Interval is one entry of a phase-analysis metric trace.
	Interval = stats.Interval
	// Recorder collects metric traces for phase analysis (Table 4).
	Recorder = stats.Recorder

	// EnergyModel estimates leakage/dynamic energy in normalized units
	// (the §4.2 cluster-gating argument quantified).
	EnergyModel = energy.Model
	// EnergyActivity is the activity vector an EnergyModel consumes.
	EnergyActivity = energy.Activity

	// Thread names one hardware context for multi-threaded studies.
	Thread = smt.Thread
	// PartitionPolicy decides per-thread cluster allotments.
	PartitionPolicy = smt.PartitionPolicy
	// SMTSystem co-schedules threads on dedicated cluster partitions
	// (the paper's §1/§8 proposal).
	SMTSystem = smt.System
	// SMTReport summarizes a co-schedule.
	SMTReport = smt.Report
	// EqualPartition, FixedPartition and DistantILPPartition are the
	// provided partitioning policies.
	EqualPartition      = smt.EqualPartition
	FixedPartition      = smt.FixedPartition
	DistantILPPartition = smt.DistantILPPartition

	// Observer bundles the observability facilities a processor writes to
	// (set Config.Observer); a nil Observer disables instrumentation at
	// zero hot-path cost.
	Observer = obs.Observer
	// MetricsRegistry holds named counters, gauges and histograms.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time registry export (JSON/CSV).
	MetricsSnapshot = obs.Snapshot
	// Tracer consumes structured trace events.
	Tracer = obs.Tracer
	// TraceEvent is one structured trace record (controller decisions,
	// interval boundaries, redirects, reconfiguration drains, samples).
	TraceEvent = obs.Event
	// RingSink, JSONLSink and ChromeSink are the provided trace sinks.
	RingSink   = obs.RingSink
	JSONLSink  = obs.JSONLSink
	ChromeSink = obs.ChromeSink
	// TimeSeries accumulates probe samples for CSV export.
	TimeSeries = obs.TimeSeries

	// PhaseTimer attributes the simulator's own wall-clock time to
	// cycle-loop phases by sampling (set Config.Phases); a nil timer costs
	// one pointer test per cycle. One timer may be shared across
	// concurrent runs.
	PhaseTimer = telemetry.PhaseTimer
	// PhaseReport is a point-in-time phase-attribution summary.
	PhaseReport = telemetry.PhaseReport
)

// Topology and cache-model selectors.
const (
	// RingTopology is the baseline pair of unidirectional rings.
	RingTopology = pipeline.RingTopology
	// GridTopology is the §6 two-dimensional mesh.
	GridTopology = pipeline.GridTopology
	// CentralizedCache co-locates the L1 and LSQ with cluster 0 (§2.1).
	CentralizedCache = pipeline.CentralizedCache
	// DecentralizedCache gives each cluster an L1 bank and LSQ (§2.2).
	DecentralizedCache = pipeline.DecentralizedCache
	// SteerOperandMajority, SteerModN and SteerFirstFit select the §2.1
	// steering heuristics.
	SteerOperandMajority = pipeline.SteerOperandMajority
	SteerModN            = pipeline.SteerModN
	SteerFirstFit        = pipeline.SteerFirstFit
)

// DefaultConfig returns the paper's Table 1 16-cluster machine with the
// centralized cache and ring interconnect.
func DefaultConfig() Config { return pipeline.DefaultConfig() }

// MonolithicConfig returns the Table 3 baseline: one cluster holding the
// 16-cluster machine's aggregate resources with no communication costs.
func MonolithicConfig() Config { return pipeline.MonolithicConfig() }

// Benchmarks lists the available synthetic benchmarks (the paper's nine
// programs).
func Benchmarks() []string { return workload.Benchmarks() }

// Paper returns the published characteristics the named benchmark targets.
func Paper(name string) (PaperData, bool) { return workload.Paper(name) }

// NewWorkload returns the named benchmark's deterministic generator, or an
// error for an unknown name (use Benchmarks for the valid set).
func NewWorkload(name string, seed uint64) (Generator, error) {
	return workload.New(name, seed)
}

// NewCustomWorkload builds a deterministic generator from caller-supplied
// phase kernels, for workloads beyond the nine built-in benchmarks.
func NewCustomWorkload(name string, phases []WorkloadPhase, seed uint64) (Generator, error) {
	return workload.Custom(name, phases, seed)
}

// NewInvariantChecker returns a cycle-level invariant checker that records
// violations for inspection after the run (Err, Violations). Attach it via
// Config.Checker; one instance validates exactly one run.
func NewInvariantChecker() *InvariantChecker { return check.New() }

// NewFailFastInvariantChecker returns an invariant checker that panics on
// the first violation, stopping the simulation at the faulty cycle.
func NewFailFastInvariantChecker() *InvariantChecker { return check.NewFailFast() }

// NewProcessor builds a processor over gen, governed by ctrl (nil pins the
// configured ActiveClusters).
func NewProcessor(cfg Config, gen Generator, ctrl Controller) (*Processor, error) {
	return pipeline.New(cfg, gen, ctrl)
}

// NewStatic returns a controller pinning n active clusters.
func NewStatic(n int) *Static { return &Static{N: n} }

// NewExplore returns the paper's Figure 4 interval-based controller with
// exploration and a variable interval length. A zero config selects the
// paper's constants.
func NewExplore(cfg ExploreConfig) Controller { return core.NewExplore(cfg) }

// NewDistantILP returns the §4.3 interval-based controller without
// exploration. A zero config selects the paper's constants.
func NewDistantILP(cfg DistantILPConfig) Controller { return core.NewDistantILP(cfg) }

// NewFineGrain returns the §4.4 fine-grained (basic-block boundary)
// controller. A zero config selects the paper's constants; set
// CallReturnOnly for the subroutine-boundary variant.
func NewFineGrain(cfg FineGrainConfig) Controller { return core.NewFineGrain(cfg) }

// NewRecorder returns a non-reconfiguring controller that records a metric
// trace at the given base interval length for phase analysis.
func NewRecorder(base uint64) *Recorder { return stats.NewRecorder(base) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewRingSink returns a trace sink keeping the most recent n events in
// memory.
func NewRingSink(n int) *RingSink { return obs.NewRingSink(n) }

// NewJSONLSink returns a trace sink writing one JSON object per event to w
// (Close flushes, and closes w if it is an io.Closer).
func NewJSONLSink(w io.Writer) *JSONLSink { return obs.NewJSONLSink(w) }

// NewChromeSink returns a trace sink writing the Chrome trace_event array
// format, loadable in chrome://tracing or ui.perfetto.dev.
func NewChromeSink(w io.Writer) *ChromeSink { return obs.NewChromeSink(w) }

// ServeMetrics exposes live registry snapshots over HTTP on addr
// (/metrics, /metrics.csv, /debug/vars). It returns once the listener is
// bound, reporting the bound address; the returned function shuts it down.
func ServeMetrics(addr string, r *MetricsRegistry) (string, func() error, error) {
	return obs.Serve(addr, r)
}

// ServeMetricsPprof is ServeMetrics with the Go profiling endpoints added
// under /debug/pprof/, so a long-running simulation can be CPU/heap-profiled
// live.
func ServeMetricsPprof(addr string, r *MetricsRegistry) (string, func() error, error) {
	return obs.Serve(addr, r, obs.WithPprof())
}

// NewPhaseTimer returns a wall-clock phase timer sampling one cycle in every
// period (rounded up to a power of two; 0 selects the default, 1 in 64).
// Attach it via Config.Phases.
func NewPhaseTimer(period uint64) *PhaseTimer { return telemetry.NewPhaseTimer(period) }

// StartRuntimeSampler periodically samples the Go runtime's own health
// metrics (heap, GC pauses, goroutines, scheduler latency) into the registry
// as "runtime.*" gauges until the returned stop function is called; interval
// <= 0 selects one second.
func StartRuntimeSampler(r *MetricsRegistry, interval time.Duration) (stop func()) {
	return telemetry.StartRuntimeSampler(r, interval)
}

// Instability computes the §4.1 instability factor (percent of unstable
// intervals) of a recorded trace using the default significance thresholds.
func Instability(trace []Interval) float64 {
	return stats.Instability(trace, stats.DefaultThresholds())
}

// DefaultEnergyModel returns the normalized energy-model coefficients.
func DefaultEnergyModel() EnergyModel { return energy.DefaultModel() }

// EnergyActivityOf extracts the energy-relevant activity from a Result.
// The powered-cluster count assumes disabled clusters are voltage-gated.
func EnergyActivityOf(r Result) EnergyActivity {
	return EnergyActivity{
		Cycles:               r.Cycles,
		Instructions:         r.Instructions,
		PoweredClusterCycles: r.ActiveSum,
		Hops:                 r.Net.Hops,
		CacheAccesses:        r.Mem.Loads + r.Mem.Stores,
	}
}

// NewSMT builds a multi-threaded co-schedule over total dedicated clusters.
func NewSMT(cfg Config, threads []Thread, total int, policy PartitionPolicy) (*SMTSystem, error) {
	return smt.New(cfg, threads, total, policy)
}

// Run is a convenience wrapper: it simulates n instructions of the named
// benchmark under ctrl (nil for a fixed configuration) and returns the
// statistics.
func Run(benchmark string, seed uint64, cfg Config, ctrl Controller, n uint64) (Result, error) {
	gen, err := workload.New(benchmark, seed)
	if err != nil {
		return Result{}, err
	}
	p, err := pipeline.New(cfg, gen, ctrl)
	if err != nil {
		return Result{}, fmt.Errorf("clustersim: %w", err)
	}
	return p.Run(n)
}

// Trace source kinds for TraceMeta.SourceKind.
const (
	TraceSourceBench  = trace.SourceBench
	TraceSourceSpec   = trace.SourceSpec
	TraceSourceCustom = trace.SourceCustom
)

// DefaultTraceHeadroom is the recommended margin of extra instructions to
// record beyond the window a replayed run will commit, covering the
// deepest fetch-ahead any policy reaches.
const DefaultTraceHeadroom = trace.DefaultHeadroom

// LoadWorkloadSpec parses and validates the spec file at path.
func LoadWorkloadSpec(path string) (*WorkloadSpec, error) { return spec.LoadFile(path) }

// ParseWorkloadSpec parses and validates a spec document.
func ParseWorkloadSpec(data []byte) (*WorkloadSpec, error) { return spec.Parse(data) }

// CompileWorkloadSpec compiles a single-program spec into a Generator;
// distribution-valued fields are sampled deterministically from seed.
func CompileWorkloadSpec(s *WorkloadSpec, seed uint64) (Generator, error) {
	return spec.Compile(s, seed)
}

// CompileWorkloadMix compiles a mix spec into per-thread generators for
// NewSMT.
func CompileWorkloadMix(s *WorkloadSpec, seed uint64) ([]SpecMixThread, error) {
	return spec.CompileMix(s, seed)
}

// BuiltinWorkloadPhases returns the phase list behind a built-in benchmark,
// the raw material for expressing it as a declarative spec.
func BuiltinWorkloadPhases(name string) ([]WorkloadPhase, bool) {
	return workload.BuiltinPhases(name)
}

// RecordTrace drains n instructions from gen into a trace.
func RecordTrace(gen Generator, n uint64, meta TraceMeta) *InstrTrace {
	return trace.Record(gen, n, meta)
}

// NewTraceRecorder tees gen: the consumer sees the unmodified stream while
// the recorder retains it for WriteTraceFile.
func NewTraceRecorder(gen Generator) *TraceRecorder { return trace.NewRecorder(gen) }

// ReadTraceFile loads and fingerprint-verifies the trace at path.
func ReadTraceFile(path string) (*InstrTrace, error) { return trace.ReadFile(path) }

// WriteTraceFile atomically writes t to path.
func WriteTraceFile(path string, t *InstrTrace) error { return trace.WriteFile(path, t) }

// PeekTraceHeader reads only a trace file's identity header — metadata,
// length, and content fingerprint — without decoding the instruction
// payload.
func PeekTraceHeader(path string) (TraceHeader, error) { return trace.PeekHeader(path) }
