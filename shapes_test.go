package clustersim_test

import (
	"testing"

	"clustersim"
)

// TestPaperShapes pins the qualitative results the reproduction must
// preserve (DESIGN.md §4: "who wins, by roughly what factor, where the
// crossovers fall"). Loose thresholds keep it robust to re-calibration
// while still catching regressions that would invalidate the reproduction.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow integration test")
	}

	static := func(bench string, n int, window uint64) float64 {
		res, err := clustersim.Run(bench, 1, clustersim.DefaultConfig(),
			clustersim.NewStatic(n), window)
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC()
	}

	t.Run("Fig3-FP-prefers-wide", func(t *testing.T) {
		// Distant-ILP programs gain from 16 clusters despite the
		// communication cost.
		for _, b := range []string{"swim", "mgrid", "djpeg"} {
			w4, w16 := static(b, 4, 400_000), static(b, 16, 400_000)
			if w16 <= w4 {
				t.Errorf("%s: 16 clusters (%.2f) not better than 4 (%.2f)", b, w16, w4)
			}
		}
	})

	t.Run("Fig3-int-prefers-narrow", func(t *testing.T) {
		// Communication-bound integer programs lose at 16 clusters —
		// the phenomenon the paper calls "hitherto unobserved". The
		// window must cover each program's full phase cycle.
		for _, b := range []string{"vpr", "crafty"} {
			w4, w16 := static(b, 4, 600_000), static(b, 16, 600_000)
			if w4 <= w16 {
				t.Errorf("%s: 4 clusters (%.2f) not better than 16 (%.2f)", b, w4, w16)
			}
		}
	})

	t.Run("Fig5-gzip-dynamic-beats-static", func(t *testing.T) {
		// gzip's alternating phases make the adaptive scheme beat every
		// static configuration (§4.2).
		const w = 1_700_000
		s4, s16 := static("gzip", 4, w), static("gzip", 16, w)
		dyn, err := clustersim.Run("gzip", 1, clustersim.DefaultConfig(),
			clustersim.NewExplore(clustersim.ExploreConfig{}), w)
		if err != nil {
			t.Fatal(err)
		}
		best := s4
		if s16 > best {
			best = s16
		}
		if dyn.IPC() <= best {
			t.Errorf("gzip: explore %.2f did not beat best static %.2f", dyn.IPC(), best)
		}
	})

	t.Run("Fig6-finegrain-tracks-or-beats", func(t *testing.T) {
		// The fine-grained scheme recovers djpeg's short phases that the
		// interval scheme misses (§4.4), and helps cjpeg.
		const w = 600_000
		for _, b := range []string{"djpeg", "cjpeg"} {
			ex, err := clustersim.Run(b, 1, clustersim.DefaultConfig(),
				clustersim.NewExplore(clustersim.ExploreConfig{}), w)
			if err != nil {
				t.Fatal(err)
			}
			fg, err := clustersim.Run(b, 1, clustersim.DefaultConfig(),
				clustersim.NewFineGrain(clustersim.FineGrainConfig{}), w)
			if err != nil {
				t.Fatal(err)
			}
			if fg.IPC() < ex.IPC()*0.98 {
				t.Errorf("%s: fg-branch %.2f below explore %.2f", b, fg.IPC(), ex.IPC())
			}
		}
	})

	t.Run("Fig7-short-intervals-hurt-decentralized", func(t *testing.T) {
		// With the decentralized cache every reconfiguration flushes the
		// L1, so a 1K-interval reactive scheme thrashes while the
		// exploration scheme, which minimizes reconfigurations, does not
		// (§5: "there is no benefit from reconfiguring using shorter
		// intervals").
		cfg := clustersim.DefaultConfig()
		cfg.Cache = clustersim.DecentralizedCache
		const w = 500_000
		ex, err := clustersim.Run("gzip", 1, cfg,
			clustersim.NewExplore(clustersim.ExploreConfig{}), w)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := clustersim.Run("gzip", 1, cfg,
			clustersim.NewDistantILP(clustersim.DistantILPConfig{Interval: 1000}), w)
		if err != nil {
			t.Fatal(err)
		}
		if fast.IPC() >= ex.IPC() {
			t.Errorf("dist: 1K-interval scheme (%.2f) should thrash vs explore (%.2f)",
				fast.IPC(), ex.IPC())
		}
		if fast.Mem.FlushWritebacks <= ex.Mem.FlushWritebacks {
			t.Errorf("dist: 1K-interval scheme flushed less (%d) than explore (%d)",
				fast.Mem.FlushWritebacks, ex.Mem.FlushWritebacks)
		}
	})

	t.Run("Sens-doubled-hops-widen-dynamic-win", func(t *testing.T) {
		// §6: doubling the hop cost makes the 16-cluster machine more
		// communication-bound, so narrow configurations gain relative
		// ground for an integer program.
		cfg := clustersim.DefaultConfig()
		cfg.HopLatency = 2
		run := func(n int) float64 {
			ctrl := clustersim.NewStatic(n)
			res, err := clustersim.Run("vpr", 1, cfg, ctrl, 300_000)
			if err != nil {
				t.Fatal(err)
			}
			return res.IPC()
		}
		gap2 := run(4) / run(16)
		cfg1 := clustersim.DefaultConfig()
		run1 := func(n int) float64 {
			res, err := clustersim.Run("vpr", 1, cfg1, clustersim.NewStatic(n), 300_000)
			if err != nil {
				t.Fatal(err)
			}
			return res.IPC()
		}
		gap1 := run1(4) / run1(16)
		if gap2 <= gap1 {
			t.Errorf("2-cycle hops did not widen the narrow-machine advantage: %.3f vs %.3f", gap2, gap1)
		}
	})
}
