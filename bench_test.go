// Benchmarks regenerating the paper's tables and figures, one testing.B
// benchmark per artifact. Each b.Run sub-benchmark simulates one cell of
// the corresponding table/figure at a reduced window (Scale 0.1; use
// cmd/experiments for full-scale runs) and reports the measured IPC as a
// custom metric alongside simulation throughput.
package clustersim_test

import (
	"testing"

	"clustersim"
	"clustersim/internal/experiments"
)

// benchOpts is the reduced scale used inside testing.B loops.
const benchScale = 0.1

// simulate runs one benchmark/controller cell b.N times (the instruction
// window is fixed; b.N repeats whole runs) and reports IPC.
func simulate(b *testing.B, bench string, cfg clustersim.Config, mk func() clustersim.Controller, window uint64) {
	b.Helper()
	var ipc float64
	var instrs uint64
	for i := 0; i < b.N; i++ {
		ctrl := mk()
		res, err := clustersim.Run(bench, 1, cfg, ctrl, window)
		if err != nil {
			b.Fatal(err)
		}
		ipc = res.IPC()
		instrs += res.Instructions
	}
	b.ReportMetric(ipc, "IPC")
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

func opts() experiments.Options { return experiments.Options{Scale: benchScale} }

func window(bench string) uint64 { return opts().Window(bench) }

// BenchmarkTable3 regenerates the benchmark characterization (paper Table
// 3): monolithic-machine IPC per benchmark.
func BenchmarkTable3(b *testing.B) {
	for _, bench := range clustersim.Benchmarks() {
		b.Run(bench, func(b *testing.B) {
			simulate(b, bench, clustersim.MonolithicConfig(),
				func() clustersim.Controller { return nil }, window(bench))
		})
	}
}

// BenchmarkFig3 regenerates Figure 3: statically fixed 2/4/8/16-cluster
// organizations.
func BenchmarkFig3(b *testing.B) {
	for _, bench := range clustersim.Benchmarks() {
		for _, n := range []int{2, 4, 8, 16} {
			n := n
			b.Run(bench+"/clusters-"+itoa(n), func(b *testing.B) {
				cfg := clustersim.DefaultConfig()
				cfg.ActiveClusters = n
				simulate(b, bench, cfg, func() clustersim.Controller { return nil }, window(bench))
			})
		}
	}
}

// BenchmarkTable4 regenerates the instability analysis (paper Table 4):
// metric-trace recording plus the instability computation.
func BenchmarkTable4(b *testing.B) {
	for _, bench := range clustersim.Benchmarks() {
		b.Run(bench, func(b *testing.B) {
			var factor float64
			for i := 0; i < b.N; i++ {
				rec := clustersim.NewRecorder(10_000)
				_, err := clustersim.Run(bench, 1, clustersim.DefaultConfig(), rec, 2*window(bench))
				if err != nil {
					b.Fatal(err)
				}
				factor = clustersim.Instability(rec.Intervals())
			}
			b.ReportMetric(factor, "instability%")
		})
	}
}

// BenchmarkFig5 regenerates Figure 5: the interval-based schemes on the
// centralized cache.
func BenchmarkFig5(b *testing.B) {
	schemes := []struct {
		name string
		mk   func() clustersim.Controller
	}{
		{"static-4", func() clustersim.Controller { return clustersim.NewStatic(4) }},
		{"static-16", func() clustersim.Controller { return clustersim.NewStatic(16) }},
		{"explore", func() clustersim.Controller { return clustersim.NewExplore(clustersim.ExploreConfig{}) }},
		{"dilp-500", func() clustersim.Controller {
			return clustersim.NewDistantILP(clustersim.DistantILPConfig{Interval: 500})
		}},
		{"dilp-1K", func() clustersim.Controller {
			return clustersim.NewDistantILP(clustersim.DistantILPConfig{Interval: 1000})
		}},
		{"dilp-10K", func() clustersim.Controller {
			return clustersim.NewDistantILP(clustersim.DistantILPConfig{Interval: 10_000})
		}},
	}
	for _, bench := range clustersim.Benchmarks() {
		for _, s := range schemes {
			s := s
			b.Run(bench+"/"+s.name, func(b *testing.B) {
				simulate(b, bench, clustersim.DefaultConfig(), s.mk, window(bench))
			})
		}
	}
}

// BenchmarkFig6 regenerates Figure 6: fine-grained reconfiguration.
func BenchmarkFig6(b *testing.B) {
	schemes := []struct {
		name string
		mk   func() clustersim.Controller
	}{
		{"explore", func() clustersim.Controller { return clustersim.NewExplore(clustersim.ExploreConfig{}) }},
		{"fg-branch", func() clustersim.Controller { return clustersim.NewFineGrain(clustersim.FineGrainConfig{}) }},
		{"fg-callreturn", func() clustersim.Controller {
			return clustersim.NewFineGrain(clustersim.FineGrainConfig{CallReturnOnly: true})
		}},
	}
	for _, bench := range clustersim.Benchmarks() {
		for _, s := range schemes {
			s := s
			b.Run(bench+"/"+s.name, func(b *testing.B) {
				simulate(b, bench, clustersim.DefaultConfig(), s.mk, window(bench))
			})
		}
	}
}

// BenchmarkFig7 regenerates Figure 7: the decentralized cache model.
func BenchmarkFig7(b *testing.B) {
	schemes := []struct {
		name string
		mk   func() clustersim.Controller
	}{
		{"static-4", func() clustersim.Controller { return clustersim.NewStatic(4) }},
		{"static-16", func() clustersim.Controller { return clustersim.NewStatic(16) }},
		{"explore", func() clustersim.Controller { return clustersim.NewExplore(clustersim.ExploreConfig{}) }},
		{"dilp-10K", func() clustersim.Controller {
			return clustersim.NewDistantILP(clustersim.DistantILPConfig{Interval: 10_000})
		}},
	}
	for _, bench := range clustersim.Benchmarks() {
		for _, s := range schemes {
			s := s
			b.Run(bench+"/"+s.name, func(b *testing.B) {
				cfg := clustersim.DefaultConfig()
				cfg.Cache = clustersim.DecentralizedCache
				simulate(b, bench, cfg, s.mk, window(bench))
			})
		}
	}
}

// BenchmarkFig8 regenerates Figure 8: the grid interconnect.
func BenchmarkFig8(b *testing.B) {
	schemes := []struct {
		name string
		mk   func() clustersim.Controller
	}{
		{"static-4", func() clustersim.Controller { return clustersim.NewStatic(4) }},
		{"static-16", func() clustersim.Controller { return clustersim.NewStatic(16) }},
		{"explore", func() clustersim.Controller { return clustersim.NewExplore(clustersim.ExploreConfig{}) }},
	}
	for _, bench := range clustersim.Benchmarks() {
		for _, s := range schemes {
			s := s
			b.Run(bench+"/"+s.name, func(b *testing.B) {
				cfg := clustersim.DefaultConfig()
				cfg.Topology = clustersim.GridTopology
				simulate(b, bench, cfg, s.mk, window(bench))
			})
		}
	}
}

// BenchmarkSensitivity regenerates the §6 parameter sweeps on a
// representative benchmark pair.
func BenchmarkSensitivity(b *testing.B) {
	variants := []struct {
		name   string
		mutate func(*clustersim.Config)
	}{
		{"fewer-resources", func(c *clustersim.Config) { c.IQPerCluster = 10; c.RegsPerCluster = 20 }},
		{"more-resources", func(c *clustersim.Config) { c.IQPerCluster = 20; c.RegsPerCluster = 40 }},
		{"more-FUs", func(c *clustersim.Config) { c.IntALU, c.IntMulDiv, c.FPALU, c.FPMulDiv = 2, 2, 2, 2 }},
		{"2-cycle-hops", func(c *clustersim.Config) { c.HopLatency = 2 }},
	}
	for _, bench := range []string{"gzip", "swim"} {
		for _, v := range variants {
			v := v
			b.Run(bench+"/"+v.name, func(b *testing.B) {
				cfg := clustersim.DefaultConfig()
				v.mutate(&cfg)
				simulate(b, bench, cfg,
					func() clustersim.Controller { return clustersim.NewExplore(clustersim.ExploreConfig{}) },
					window(bench))
			})
		}
	}
}

// BenchmarkAblations regenerates the §4/§5 in-text idealization studies.
func BenchmarkAblations(b *testing.B) {
	variants := []struct {
		name   string
		mutate func(*clustersim.Config)
	}{
		{"central-base", func(c *clustersim.Config) {}},
		{"central-free-ldst", func(c *clustersim.Config) { c.FreeLoadComm = true }},
		{"central-free-reg", func(c *clustersim.Config) { c.FreeRegComm = true }},
		{"dist-base", func(c *clustersim.Config) { c.Cache = clustersim.DecentralizedCache }},
		{"dist-perfect-banks", func(c *clustersim.Config) {
			c.Cache = clustersim.DecentralizedCache
			c.PerfectBankPred = true
		}},
		{"dist-free-reg", func(c *clustersim.Config) {
			c.Cache = clustersim.DecentralizedCache
			c.FreeRegComm = true
		}},
	}
	for _, bench := range []string{"swim", "vpr"} {
		for _, v := range variants {
			v := v
			b.Run(bench+"/"+v.name, func(b *testing.B) {
				cfg := clustersim.DefaultConfig()
				v.mutate(&cfg)
				simulate(b, bench, cfg, func() clustersim.Controller { return nil }, window(bench))
			})
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (not a paper
// artifact; a regression guard for the engine itself) on every bundled
// benchmark. The plain sub-benchmarks run the default event-driven stepper;
// the /legacy variants run the seed per-cycle scan stepper, so one run
// yields the before/after comparison recorded in BENCH_fastloop.json.
func BenchmarkSimulatorThroughput(b *testing.B) {
	throughput := func(b *testing.B, bench string, legacy bool) {
		gen, err := clustersim.NewWorkload(bench, 1)
		if err != nil {
			b.Fatal(err)
		}
		cfg := clustersim.DefaultConfig()
		cfg.LegacyStepper = legacy
		p, err := clustersim.NewProcessor(cfg, gen, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Run(10_000); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)*10_000/b.Elapsed().Seconds()/1e6, "Minstr/s")
	}
	for _, bench := range clustersim.Benchmarks() {
		b.Run(bench, func(b *testing.B) { throughput(b, bench, false) })
	}
	for _, bench := range clustersim.Benchmarks() {
		b.Run(bench+"/legacy", func(b *testing.B) { throughput(b, bench, true) })
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
