// Multithread: the paper's §1/§8 proposal — dedicate cluster partitions to
// threads and retune the split dynamically — run on a pair of threads with
// opposite needs (swim wants width for its distant ILP; vpr cannot use it).
//
//	go run ./examples/multithread
package main

import (
	"fmt"
	"log"

	"clustersim"
)

func main() {
	threads := []clustersim.Thread{
		{Bench: "swim", Seed: 1}, // loop FP: distant ILP, wants clusters
		{Bench: "vpr", Seed: 1},  // serial int: cedes clusters
	}

	fmt.Println("two threads on one 16-cluster chip, dedicated partitions")
	fmt.Printf("%-22s %10s %10s %10s %14s\n",
		"policy", "swim IPC", "vpr IPC", "combined", "avg split")

	for _, pol := range []clustersim.PartitionPolicy{
		clustersim.EqualPartition{},
		clustersim.FixedPartition{Split: []int{12, 4}},
		clustersim.DistantILPPartition{},
	} {
		sys, err := clustersim.NewSMT(clustersim.DefaultConfig(), threads, 16, pol)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sys.Run(60, 10_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10.3f %10.3f %10.3f %10.1f/%.1f\n",
			pol.Name(), rep.ThreadIPC[0], rep.ThreadIPC[1], rep.Throughput(),
			rep.AvgClusters(0), rep.AvgClusters(1))
	}

	fmt.Println("\nThe distant-ILP partitioner measures each thread's window demand")
	fmt.Println("every epoch and shifts clusters to the thread that can convert")
	fmt.Println("them into instructions — the multi-threaded face of the paper's")
	fmt.Println("communication-parallelism trade-off.")
}
