// Energy: the leakage-savings story of §4.2 — when the adaptive controller
// disables clusters for single-thread performance, those clusters can be
// voltage-gated (or given to other threads).
//
// This example reports, per benchmark, how many of the 16 clusters the
// exploration scheme leaves disabled on average and the single-thread IPC
// cost/gain versus always powering all 16 (the paper reports 8.3 of 16
// disabled on average at an 11% performance *gain*).
//
//	go run ./examples/energy
package main

import (
	"fmt"
	"log"

	"clustersim"
)

func main() {
	fmt.Printf("%-9s %14s %14s %12s %12s\n",
		"bench", "IPC static-16", "IPC adaptive", "disabled", "IPC delta")

	var sumDisabled, n float64
	for _, bench := range clustersim.Benchmarks() {
		window := uint64(600_000)
		if bench == "gzip" || bench == "parser" {
			window = 1_700_000
		}
		stat, err := clustersim.Run(bench, 1, clustersim.DefaultConfig(), clustersim.NewStatic(16), window)
		if err != nil {
			log.Fatal(err)
		}
		adpt, err := clustersim.Run(bench, 1, clustersim.DefaultConfig(),
			clustersim.NewExplore(clustersim.ExploreConfig{}), window)
		if err != nil {
			log.Fatal(err)
		}
		disabled := 16 - adpt.AvgActiveClusters()
		sumDisabled += disabled
		n++
		fmt.Printf("%-9s %14.3f %14.3f %12.1f %+11.1f%%\n",
			bench, stat.IPC(), adpt.IPC(), disabled, 100*(adpt.IPC()/stat.IPC()-1))
	}
	fmt.Printf("\naverage clusters disabled: %.1f of 16 (paper: 8.3)\n", sumDisabled/n)
	fmt.Println("Disabled clusters can be supply-gated for leakage savings or")
	fmt.Println("partitioned among other threads at no single-thread cost.")
}
