// Quickstart: simulate one benchmark under the paper's adaptive controller
// and compare it against the static extremes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"clustersim"
)

func main() {
	const bench = "gzip" // alternating high-/low-ILP phases
	const window = 1_700_000

	fmt.Printf("benchmark %s over %d instructions on the 16-cluster ring machine\n\n", bench, window)

	for _, ctrl := range []clustersim.Controller{
		clustersim.NewStatic(4),
		clustersim.NewStatic(16),
		clustersim.NewExplore(clustersim.ExploreConfig{}),
	} {
		res, err := clustersim.Run(bench, 1, clustersim.DefaultConfig(), ctrl, window)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s IPC %.3f  avg active clusters %5.2f  reconfigurations %d\n",
			res.Policy, res.IPC(), res.AvgActiveClusters(), res.Reconfigs)
	}

	fmt.Println("\nThe interval-based controller explores 2/4/8/16 clusters at each")
	fmt.Println("phase change and pins the winner — matching the wide machine in")
	fmt.Println("gzip's distant-ILP phases and the narrow one elsewhere, so it beats")
	fmt.Println("both static organizations (the paper's central result).")
}
