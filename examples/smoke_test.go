// Package examples_test smoke-tests the example programs: every example
// must build, and (outside -short) run to completion with a zero exit
// status. Examples are documentation that executes — a broken one means the
// public API drifted under it.
package examples_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

var examples = []string{"energy", "multithread", "phases", "quickstart", "steering"}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestExamplesBuild compiles every example (cheap: the build cache shares
// the simulator packages across them).
func TestExamplesBuild(t *testing.T) {
	root := repoRoot(t)
	for _, name := range examples {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "build", "-o", os.DevNull, "./examples/"+name)
			cmd.Dir = root
			if out, err := cmd.CombinedOutput(); err != nil {
				t.Fatalf("go build: %v\n%s", err, out)
			}
		})
	}
}

// TestExamplesRun executes every example end to end. The examples simulate
// tens of millions of instructions between them, so this is skipped under
// -short.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples simulate full windows; skipped under -short")
	}
	root := repoRoot(t)
	for _, name := range examples {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			cmd.Dir = root
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run: %v\n%s", err, out)
			}
			if len(out) == 0 {
				t.Fatal("example produced no output")
			}
		})
	}
}
