// Phases: watch the adaptive controllers track a program's phase structure.
//
// This example runs djpeg — whose IDCT-like blocks have distant ILP while
// its Huffman-like blocks do not, alternating every few thousand
// instructions — and samples the active-cluster count over time under three
// controllers, showing why fine-grained reconfiguration wins where
// interval-based schemes miss short phases (§4.4 of the paper).
//
//	go run ./examples/phases
package main

import (
	"fmt"
	"log"
	"strings"

	"clustersim"
)

func main() {
	const bench = "djpeg"
	const window = 400_000
	const sampleEvery = 10_000

	fmt.Printf("%s: active-cluster trajectory, one glyph per %d instructions\n", bench, sampleEvery)
	fmt.Println("(2..9 and * for 10+ clusters; fine phases alternate every ~6K/3K instrs)")
	fmt.Println()

	controllers := []func() clustersim.Controller{
		func() clustersim.Controller { return clustersim.NewExplore(clustersim.ExploreConfig{}) },
		func() clustersim.Controller { return clustersim.NewDistantILP(clustersim.DistantILPConfig{}) },
		func() clustersim.Controller { return clustersim.NewFineGrain(clustersim.FineGrainConfig{}) },
	}

	for _, mk := range controllers {
		ctrl := mk()
		gen, err := clustersim.NewWorkload(bench, 1)
		if err != nil {
			log.Fatal(err)
		}
		p, err := clustersim.NewProcessor(clustersim.DefaultConfig(), gen, ctrl)
		if err != nil {
			log.Fatal(err)
		}
		var glyphs strings.Builder
		for done := uint64(0); done < window; done += sampleEvery {
			if _, err := p.Run(sampleEvery); err != nil {
				log.Fatal(err)
			}
			n := p.ActiveClusters()
			if n >= 10 {
				glyphs.WriteByte('*')
			} else {
				fmt.Fprintf(&glyphs, "%d", n)
			}
		}
		res := p.Stats()
		fmt.Printf("%-18s IPC %.3f  avg %.1f clusters\n  %s\n\n",
			res.Policy, res.IPC(), res.AvgActiveClusters(), glyphs.String())
	}

	fmt.Println("The interval scheme settles on one width; the distant-ILP scheme")
	fmt.Println("flips with measurement noise; the per-branch table tracks each")
	fmt.Println("basic block's needs without re-measuring.")
}
