// Steering: compare the §2.1 instruction steering heuristics across cluster
// counts.
//
// The operand-majority heuristic (with criticality and load-imbalance
// overrides) trades communication against balance; Mod_N minimizes
// imbalance and First_Fit minimizes communication. Their ranking flips with
// the cluster count and workload — the reason the paper tunes thresholds
// per organization.
//
//	go run ./examples/steering
package main

import (
	"fmt"
	"log"

	"clustersim"
)

func main() {
	policies := []struct {
		name string
		pol  clustersim.Config
	}{}
	_ = policies

	benches := []string{"swim", "vpr"}
	steerings := []struct {
		name string
		set  func(*clustersim.Config)
	}{
		{"operand-majority", func(c *clustersim.Config) { c.Steering = clustersim.SteerOperandMajority }},
		{"mod-4", func(c *clustersim.Config) { c.Steering = clustersim.SteerModN; c.ModN = 4 }},
		{"first-fit", func(c *clustersim.Config) { c.Steering = clustersim.SteerFirstFit }},
	}

	for _, bench := range benches {
		fmt.Printf("%s (IPC / reg transfers per instruction):\n", bench)
		fmt.Printf("  %-18s %12s %12s\n", "steering", "4 clusters", "16 clusters")
		for _, s := range steerings {
			row := fmt.Sprintf("  %-18s", s.name)
			for _, n := range []int{4, 16} {
				cfg := clustersim.DefaultConfig()
				cfg.ActiveClusters = n
				s.set(&cfg)
				res, err := clustersim.Run(bench, 1, cfg, nil, 300_000)
				if err != nil {
					log.Fatal(err)
				}
				row += fmt.Sprintf("  %5.2f/%.2f", res.IPC(),
					float64(res.RegTransfers)/float64(res.Instructions))
			}
			fmt.Println(row)
		}
		fmt.Println()
	}

	fmt.Println("First-fit communicates least but overloads low clusters; Mod_N")
	fmt.Println("balances but scatters dependence chains; operand-majority adapts.")
}
