package clustersim_test

import (
	"testing"

	"clustersim"
)

func TestPublicAPIQuickRun(t *testing.T) {
	res, err := clustersim.Run("gzip", 1, clustersim.DefaultConfig(),
		clustersim.NewStatic(4), 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC() <= 0 || res.Policy != "static-4" || res.Benchmark != "gzip" {
		t.Fatalf("unexpected result: %+v", res)
	}
}

func TestPublicAPIUnknownBenchmark(t *testing.T) {
	if _, err := clustersim.Run("nope", 1, clustersim.DefaultConfig(), nil, 10); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestPublicAPIBadConfig(t *testing.T) {
	cfg := clustersim.DefaultConfig()
	cfg.Clusters = 0
	if _, err := clustersim.Run("gzip", 1, cfg, nil, 10); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestBenchmarksAndPaperData(t *testing.T) {
	names := clustersim.Benchmarks()
	if len(names) != 9 {
		t.Fatalf("%d benchmarks", len(names))
	}
	for _, n := range names {
		pd, ok := clustersim.Paper(n)
		if !ok || pd.BaseIPC <= 0 {
			t.Errorf("missing paper data for %s", n)
		}
	}
	if _, ok := clustersim.Paper("nope"); ok {
		t.Fatal("paper data for unknown benchmark")
	}
}

func TestAllControllersViaFacade(t *testing.T) {
	ctrls := []clustersim.Controller{
		clustersim.NewStatic(8),
		clustersim.NewExplore(clustersim.ExploreConfig{}),
		clustersim.NewDistantILP(clustersim.DistantILPConfig{}),
		clustersim.NewFineGrain(clustersim.FineGrainConfig{}),
		clustersim.NewFineGrain(clustersim.FineGrainConfig{CallReturnOnly: true}),
	}
	for _, ctrl := range ctrls {
		res, err := clustersim.Run("djpeg", 1, clustersim.DefaultConfig(), ctrl, 15_000)
		if err != nil {
			t.Fatalf("%s: %v", ctrl.Name(), err)
		}
		if res.IPC() <= 0 {
			t.Errorf("%s made no progress", ctrl.Name())
		}
	}
}

func TestRecorderAndInstabilityViaFacade(t *testing.T) {
	rec := clustersim.NewRecorder(1_000)
	if _, err := clustersim.Run("cjpeg", 1, clustersim.DefaultConfig(), rec, 50_000); err != nil {
		t.Fatal(err)
	}
	trace := rec.Intervals()
	if len(trace) < 40 {
		t.Fatalf("trace too short: %d", len(trace))
	}
	f := clustersim.Instability(trace)
	if f < 0 || f > 100 {
		t.Fatalf("instability %f out of range", f)
	}
}

func TestProcessorIncrementalRuns(t *testing.T) {
	gen, err := clustersim.NewWorkload("mgrid", 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := clustersim.NewProcessor(clustersim.DefaultConfig(), gen, nil)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := p.Run(5_000)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Run(5_000)
	if err != nil {
		t.Fatal(err)
	}
	// Run may overshoot its target by up to one commit-width batch.
	more := r2.Instructions - r1.Instructions
	if more < 5_000 || more > 5_000+16 {
		t.Fatalf("incremental run: %d then %d", r1.Instructions, r2.Instructions)
	}
	if p.ActiveClusters() != 16 {
		t.Fatalf("active clusters %d", p.ActiveClusters())
	}
	if p.Cycle() == 0 || p.Committed() != r2.Instructions {
		t.Fatal("cycle/committed accessors inconsistent")
	}
}

func TestGzipHeadlineResult(t *testing.T) {
	// The paper's central claim on its showcase benchmark: the adaptive
	// interval-based scheme beats both static extremes on gzip because
	// its phases want different widths.
	if testing.Short() {
		t.Skip("slow")
	}
	const window = 1_700_000
	s4, err := clustersim.Run("gzip", 1, clustersim.DefaultConfig(), clustersim.NewStatic(4), window)
	if err != nil {
		t.Fatal(err)
	}
	s16, err := clustersim.Run("gzip", 1, clustersim.DefaultConfig(), clustersim.NewStatic(16), window)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := clustersim.Run("gzip", 1, clustersim.DefaultConfig(),
		clustersim.NewExplore(clustersim.ExploreConfig{}), window)
	if err != nil {
		t.Fatal(err)
	}
	best := s4.IPC()
	if s16.IPC() > best {
		best = s16.IPC()
	}
	if dyn.IPC() <= best {
		t.Fatalf("adaptive (%.3f) did not beat best static (%.3f)", dyn.IPC(), best)
	}
	if dyn.Reconfigs == 0 {
		t.Fatal("adaptive scheme never reconfigured")
	}
}
