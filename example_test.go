package clustersim_test

import (
	"fmt"

	"clustersim"
)

// ExampleRun simulates a benchmark on the default 16-cluster machine with a
// fixed configuration.
func ExampleRun() {
	res, err := clustersim.Run("swim", 1, clustersim.DefaultConfig(),
		clustersim.NewStatic(16), 50_000)
	if err != nil {
		panic(err)
	}
	fmt.Println("policy:", res.Policy)
	fmt.Println("made progress:", res.IPC() > 0.5)
	// Output:
	// policy: static-16
	// made progress: true
}

// ExampleNewExplore runs the paper's Figure 4 adaptive controller and shows
// that it disables clusters for a low-ILP program.
func ExampleNewExplore() {
	ctrl := clustersim.NewExplore(clustersim.ExploreConfig{})
	res, err := clustersim.Run("vpr", 1, clustersim.DefaultConfig(), ctrl, 300_000)
	if err != nil {
		panic(err)
	}
	fmt.Println("policy:", res.Policy)
	fmt.Println("disabled clusters on average:", res.AvgActiveClusters() < 15)
	// Output:
	// policy: interval-explore
	// disabled clusters on average: true
}

// ExampleNewRecorder performs the paper's Table 4 phase-stability analysis
// on a uniform benchmark.
func ExampleNewRecorder() {
	rec := clustersim.NewRecorder(10_000)
	if _, err := clustersim.Run("swim", 1, clustersim.DefaultConfig(), rec, 400_000); err != nil {
		panic(err)
	}
	f := clustersim.Instability(rec.Intervals())
	fmt.Println("swim is a stable program:", f < 15)
	// Output:
	// swim is a stable program: true
}

// ExampleNewSMT co-schedules two threads on dedicated cluster partitions
// (the paper's §8 proposal).
func ExampleNewSMT() {
	sys, err := clustersim.NewSMT(clustersim.DefaultConfig(), []clustersim.Thread{
		{Bench: "swim", Seed: 1},
		{Bench: "vpr", Seed: 1},
	}, 16, clustersim.DistantILPPartition{})
	if err != nil {
		panic(err)
	}
	rep, err := sys.Run(20, 10_000)
	if err != nil {
		panic(err)
	}
	fmt.Println("both threads progressed:", rep.ThreadIPC[0] > 0 && rep.ThreadIPC[1] > 0)
	fmt.Println("swim got more clusters:", rep.AvgClusters(0) > rep.AvgClusters(1))
	// Output:
	// both threads progressed: true
	// swim got more clusters: true
}
