package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"clustersim/internal/runner"
	"clustersim/internal/spec"
	"clustersim/internal/trace"
	"clustersim/internal/workload"
)

// This file binds declarative-spec and trace-replay workloads into the
// sweep cells Options.request builds. Both are content-addressed: a spec
// run's cache key carries the spec fingerprint, a replayed run's the trace
// file's content fingerprint, so persisted results from internal/runner
// can never be served across workload edits (the fingerprint changes with
// the content, never with the path).

// TraceFileName is the per-workload trace path convention shared by
// RecordTraces and replayed sweeps: <dir>/<bench>-seed<seed>.trace.
func TraceFileName(dir, bench string, seed uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s-seed%d.trace", bench, seed))
}

// TraceCache shares loaded traces across a sweep's cells. Replayers over a
// cached trace share the immutable instruction slice, so an N-cell sweep
// replaying one workload holds one copy in memory. Safe for concurrent use
// by the runner's workers.
type TraceCache struct {
	mu sync.Mutex
	m  map[string]*trace.Trace
}

// NewTraceCache returns an empty cache.
func NewTraceCache() *TraceCache { return &TraceCache{m: make(map[string]*trace.Trace)} }

// load returns the trace at path, reading the file on first use.
func (c *TraceCache) load(path string) (*trace.Trace, error) {
	if c == nil {
		return trace.ReadFile(path)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.m[path]; ok {
		return t, nil
	}
	t, err := trace.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c.m[path] = t
	return t, nil
}

// specFor resolves the declarative spec a benchmark name is bound to.
func (o Options) specFor(bench string) (*spec.Spec, bool) {
	s, ok := o.Specs[bench]
	return s, ok
}

// bindWorkload attaches the request's generator source. Replay (the
// recorded stream IS the identity, whatever produced it) takes precedence
// over a spec binding; with neither, the runner builds the built-in
// generator itself.
func (o Options) bindWorkload(req *runner.Request) {
	if o.ReplayTraceDir != "" {
		path := TraceFileName(o.ReplayTraceDir, req.Bench, req.Seed)
		bench, seed, cache := req.Bench, req.Seed, o.TraceCache
		var wantFP uint64
		if s, ok := o.specFor(bench); ok {
			wantFP, _ = s.Fingerprint()
		}
		req.Source = func() (workload.Generator, error) {
			t, err := cache.load(path)
			if err != nil {
				return nil, err
			}
			if err := t.Meta.Verify("", bench, wantFP, seed); err != nil {
				return nil, fmt.Errorf("%w (file %s)", err, path)
			}
			return t.Replayer(), nil
		}
		// The cache key needs the trace's content fingerprint before the
		// run executes; the header peek is a single small read. A missing
		// or unreadable file leaves the request uncacheable and fails at
		// run time with the real error.
		if h, err := trace.PeekHeader(path); err == nil {
			req.SourceKey = fmt.Sprintf("trace:%016x", h.Fingerprint)
		} else {
			req.NoCache = true
		}
		return
	}
	if s, ok := o.specFor(req.Bench); ok {
		seed := req.Seed
		req.Source = func() (workload.Generator, error) { return spec.Compile(s, seed) }
		if fp, err := s.Fingerprint(); err == nil {
			req.SourceKey = fmt.Sprintf("spec:%016x", fp)
		} else {
			req.NoCache = true
		}
	}
}

// buildGenerator constructs the live generator for a workload name under
// the Options' spec bindings — what a sweep cell would consume without
// replay.
func (o Options) buildGenerator(bench string, seed uint64) (workload.Generator, trace.Meta, error) {
	if s, ok := o.specFor(bench); ok {
		gen, err := spec.Compile(s, seed)
		if err != nil {
			return nil, trace.Meta{}, err
		}
		fp, _ := s.Fingerprint()
		return gen, trace.Meta{
			Name: s.Name, SourceKind: trace.SourceSpec, SourceID: s.Name,
			SourceFP: fp, Seed: seed,
		}, nil
	}
	gen, err := workload.New(bench, seed)
	if err != nil {
		return nil, trace.Meta{}, err
	}
	return gen, trace.Meta{
		Name: bench, SourceKind: trace.SourceBench, SourceID: bench, Seed: seed,
	}, nil
}

// RecordTraces records every workload in o's benchmark set (spec bindings
// included) to dir, each o.Window(bench) + headroom instructions long
// (headroom 0 selects trace.DefaultHeadroom), and returns how many traces
// were written. A directory recorded at some -scale serves any replay at
// the same or smaller scale under every policy: generation is machine-
// independent, so the recorded prefix is exactly what live runs consume.
func RecordTraces(o Options, dir string, headroom uint64) (int, error) {
	if headroom == 0 {
		headroom = trace.DefaultHeadroom
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("experiments: trace dir: %w", err)
	}
	benches := o.benchmarks()
	for _, bench := range benches {
		gen, meta, err := o.buildGenerator(bench, o.seed())
		if err != nil {
			return 0, err
		}
		t := trace.Record(gen, o.Window(bench)+headroom, meta)
		if err := trace.WriteFile(TraceFileName(dir, bench, o.seed()), t); err != nil {
			return 0, err
		}
	}
	return len(benches), nil
}
