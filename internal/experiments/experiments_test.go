package experiments

import (
	"errors"
	"strings"
	"testing"
	"time"

	"clustersim/internal/runner"
)

// tinyOpts keeps experiment tests fast: two benchmarks, small windows.
func tinyOpts() Options {
	return Options{Seed: 1, Scale: 0.08, Benchmarks: []string{"gzip", "vpr"}}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"ablate", "counterfactual", "ext-energy", "ext-smt", "fig3", "fig5", "fig6", "fig7", "fig8", "params", "policy", "sens", "table3", "table4"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	reg := Registry()
	for _, id := range got {
		if reg[id] == nil {
			t.Fatalf("nil driver for %s", id)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.seed() != 1 || o.scale() != 1 {
		t.Fatal("zero-options defaults wrong")
	}
	if len(o.benchmarks()) != 9 {
		t.Fatalf("default benchmark set: %v", o.benchmarks())
	}
	if o.Window("gzip") <= o.Window("cjpeg") {
		t.Fatal("gzip window should exceed cjpeg's (longer phases)")
	}
	small := Options{Scale: 0.0001}
	if small.Window("gzip") < 50_000 {
		t.Fatal("window floor not applied")
	}
}

func TestTableFormat(t *testing.T) {
	tb := &Table{
		ID:      "x",
		Title:   "test",
		Columns: []string{"a", "b"},
		Rows: []Row{
			{Name: "row1", Cells: []Cell{Num(1.5, 2), Str("hi")}},
			{Name: "row2", Cells: []Cell{Num(2.25, 2)}}, // short row
		},
		Notes: []string{"a note"},
	}
	s := tb.Format()
	for _, want := range []string{"row1", "1.50", "hi", "a note", "== x: test =="} {
		if !strings.Contains(s, want) {
			t.Errorf("formatted table missing %q:\n%s", want, s)
		}
	}
}

func TestGeomean(t *testing.T) {
	if geomean(nil) != 0 {
		t.Fatal("empty geomean")
	}
	if g := geomean([]float64{2, 8}); g != 4 {
		t.Fatalf("geomean(2,8) = %f", g)
	}
	if geomean([]float64{1, 0}) != 0 {
		t.Fatal("non-positive input should yield 0")
	}
}

func TestParams(t *testing.T) {
	tb := Params()
	if len(tb.Rows) < 10 {
		t.Fatalf("params table too small: %d rows", len(tb.Rows))
	}
	if !strings.Contains(tb.Format(), "480") {
		t.Fatal("ROB size missing from params")
	}
}

func TestTable3Tiny(t *testing.T) {
	tb, err := Table3(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if r.Cells[1].Value <= 0 {
			t.Errorf("%s: non-positive IPC", r.Name)
		}
	}
}

func TestFig3Tiny(t *testing.T) {
	tb, err := Fig3(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		for i := 0; i < 4; i++ {
			if r.Cells[i].Value <= 0 {
				t.Errorf("%s col %d: non-positive IPC", r.Name, i)
			}
		}
	}
}

func TestTable4Tiny(t *testing.T) {
	tb, err := Table4(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		if r.Cells[0].Value < 10_000 {
			t.Errorf("%s: min interval %f below base", r.Name, r.Cells[0].Value)
		}
		if r.Cells[2].Value < 0 || r.Cells[2].Value > 100 {
			t.Errorf("%s: instability %f out of range", r.Name, r.Cells[2].Value)
		}
	}
}

func TestFig5Tiny(t *testing.T) {
	tb, err := Fig5(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	// 2 benchmarks + geomean row.
	if len(tb.Rows) != 3 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	if tb.Rows[2].Name != "geomean" {
		t.Fatal("missing geomean row")
	}
	found := false
	for _, n := range tb.Notes {
		if strings.Contains(n, "explore vs best static") {
			found = true
		}
	}
	if !found {
		t.Fatal("missing improvement note")
	}
}

func TestFig6Fig7Fig8Tiny(t *testing.T) {
	for _, f := range []func(Options) (*Table, error){Fig6, Fig7, Fig8} {
		tb, err := f(tinyOpts())
		if err != nil {
			t.Fatal(err)
		}
		if len(tb.Rows) < 3 {
			t.Fatalf("%s: %d rows", tb.ID, len(tb.Rows))
		}
		for _, r := range tb.Rows {
			for i, c := range r.Cells {
				if c.IsNum && c.Value <= 0 {
					t.Errorf("%s %s col %d non-positive", tb.ID, r.Name, i)
				}
			}
		}
	}
}

func TestSensitivityTiny(t *testing.T) {
	o := tinyOpts()
	o.Benchmarks = []string{"gzip"}
	tb, err := Sensitivity(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("%d variants", len(tb.Rows))
	}
}

func TestEnergyTiny(t *testing.T) {
	tb, err := Energy(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		save := r.Cells[3].Value
		if save < 0 || save > 100 {
			t.Errorf("%s: leakage saving %f out of range", r.Name, save)
		}
		if r.Cells[4].Value <= 0 {
			t.Errorf("%s: non-positive EDP ratio", r.Name)
		}
	}
}

func TestSMTTiny(t *testing.T) {
	o := tinyOpts()
	tb, err := SMT(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		for i := 0; i < 4; i++ {
			if r.Cells[i].IsNum && r.Cells[i].Value <= 0 {
				t.Errorf("%s col %d: non-positive throughput", r.Name, i)
			}
		}
	}
}

func TestAblationsTiny(t *testing.T) {
	tb, err := Ablations(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	// Idealizations can only help: the free variants must not be slower
	// than their base.
	base := tb.Rows[0].Cells[0].Value
	for _, i := range []int{1, 2} {
		if tb.Rows[i].Cells[0].Value < base*0.99 {
			t.Errorf("central ablation %s below base", tb.Rows[i].Name)
		}
	}
	distBase := tb.Rows[3].Cells[0].Value
	for _, i := range []int{4, 5} {
		if tb.Rows[i].Cells[0].Value < distBase*0.99 {
			t.Errorf("dist ablation %s below base", tb.Rows[i].Name)
		}
	}
	if len(tb.Notes) < 2 {
		t.Fatal("missing latency/disabled notes")
	}
}

// TestParallelDeterminism: a figure sweep through a 4-wide runner emits the
// same CSV, byte for byte (including row order), as the serial path.
func TestParallelDeterminism(t *testing.T) {
	serialOpts := tinyOpts()
	serialOpts.Runner = runner.New(1)
	parOpts := tinyOpts()
	parOpts.Parallel = 4
	parOpts.Runner = runner.New(4)
	for _, f := range []func(Options) (*Table, error){Fig5, Sensitivity} {
		ts, err := f(serialOpts)
		if err != nil {
			t.Fatal(err)
		}
		tp, err := f(parOpts)
		if err != nil {
			t.Fatal(err)
		}
		if ts.CSV() != tp.CSV() {
			t.Fatalf("%s: parallel CSV differs from serial:\n--- serial\n%s--- parallel\n%s",
				ts.ID, ts.CSV(), tp.CSV())
		}
	}
}

// TestCheckedSweep: Options.Check runs a figure sweep under the fail-fast
// invariant checker; a healthy simulator completes with identical tables,
// and checked requests bypass the shared run cache — a cache hit would
// return a result without validating the run.
func TestCheckedSweep(t *testing.T) {
	rn := runner.New(2)
	o := tinyOpts()
	o.Benchmarks = []string{"gzip"}
	o.Runner = rn
	want, err := Fig3(o)
	if err != nil {
		t.Fatal(err)
	}
	first := rn.Stats().Runs
	o.Check = true
	got, err := Fig3(o)
	if err != nil {
		t.Fatalf("checked sweep failed: %v", err)
	}
	if want.Format() != got.Format() {
		t.Fatalf("checked sweep changed results:\nplain:\n%s\nchecked:\n%s", want.Format(), got.Format())
	}
	st := rn.Stats()
	if st.Runs != 2*first {
		t.Fatalf("checked sweep reused cached runs: %d runs after, %d before (cache hits %d)",
			st.Runs, first, st.CacheHits)
	}
}

// TestSalvagePartialTable: when every run of a sweep times out, the driver
// still returns its table — every measured cell a "-" — alongside the
// *runner.SweepError, so a long sweep's surviving cells are never thrown
// away because some cells crashed.
func TestSalvagePartialTable(t *testing.T) {
	rn := runner.New(1)
	rn.Timeout = time.Millisecond
	o := tinyOpts()
	o.Runner = rn
	tab, err := Fig3(o)
	if err == nil {
		t.Fatal("expected a sweep error")
	}
	var se *runner.SweepError
	if !errors.As(err, &se) {
		t.Fatalf("want *SweepError, got %T: %v", err, err)
	}
	if tab == nil {
		t.Fatal("salvageable failure returned no table")
	}
	for _, row := range tab.Rows {
		for _, c := range row.Cells {
			if c.Text != "-" {
				t.Fatalf("failed cell rendered data: %+v", row)
			}
		}
	}

	// The registry adapter passes partial tables through with the error.
	tabs, err := Registry()["fig3"](o)
	if err == nil || len(tabs) != 1 {
		t.Fatalf("adapter dropped the partial table: %v, %v", tabs, err)
	}
}

// TestSalvageMixedCells: with a healthy runner the same sweep renders real
// numbers, so the dash rendering above is specifically the failure path.
func TestSalvageMixedCells(t *testing.T) {
	o := tinyOpts()
	tab, err := Fig3(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		for _, c := range row.Cells {
			if c.Text == "-" {
				t.Fatalf("healthy sweep rendered a gap: %+v", row)
			}
		}
	}
}
