package experiments

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clustersim/internal/pipeline"
	"clustersim/internal/runner"
	"clustersim/internal/spec"
)

// loadThrashSpec pulls the checked-in stressor, the non-builtin workload
// the sweep tests bind.
func loadThrashSpec(t *testing.T) *spec.Spec {
	t.Helper()
	s, err := spec.LoadFile(filepath.Join("..", "..", "specs", "phase-thrash.json"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// testOpts is a small sweep: two built-ins plus the thrash spec, minimum
// windows (Scale tiny → 50K floor).
func testOpts(t *testing.T) Options {
	return Options{
		Seed: 1, Scale: 0.001,
		Benchmarks: []string{"gzip", "swim", "phase-thrash"},
		Specs:      map[string]*spec.Spec{"phase-thrash": loadThrashSpec(t)},
	}
}

func TestBenchmarksIncludesSpecs(t *testing.T) {
	o := Options{Specs: map[string]*spec.Spec{"zeta": nil, "alpha": nil, "gzip": nil}}
	got := o.benchmarks()
	// Built-ins first, then non-builtin spec names sorted; a spec shadowing
	// a built-in name must not duplicate the entry.
	counts := map[string]int{}
	for _, b := range got {
		counts[b]++
	}
	if counts["gzip"] != 1 || counts["alpha"] != 1 || counts["zeta"] != 1 {
		t.Fatalf("benchmark set %v", got)
	}
	if got[len(got)-2] != "alpha" || got[len(got)-1] != "zeta" {
		t.Fatalf("spec names not appended in sorted order: %v", got)
	}
}

func TestRecordTracesAndReplaySweep(t *testing.T) {
	dir := t.TempDir()
	o := testOpts(t)

	n, err := RecordTraces(o, dir, 0)
	if err != nil {
		t.Fatalf("RecordTraces: %v", err)
	}
	if n != 3 {
		t.Fatalf("recorded %d traces, want 3", n)
	}
	for _, bench := range o.benchmarks() {
		if _, err := os.Stat(TraceFileName(dir, bench, 1)); err != nil {
			t.Errorf("missing trace for %s: %v", bench, err)
		}
	}

	// Live arm: built-ins generated, phase-thrash spec-compiled.
	build := func(o Options) []runner.Request {
		var reqs []runner.Request
		for _, bench := range o.benchmarks() {
			reqs = append(reqs, o.request("replay-equiv", bench, pipeline.DefaultConfig(), nil, o.Window(bench)))
		}
		return reqs
	}
	liveReqs := build(o)
	live, err := runner.New(2).RunAll(liveReqs)
	if err != nil {
		t.Fatal(err)
	}

	// Replay arm: same cells, streams served from the recorded files.
	ro := o
	ro.ReplayTraceDir = dir
	ro.TraceCache = NewTraceCache()
	replayReqs := build(ro)
	replayed, err := runner.New(2).RunAll(replayReqs)
	if err != nil {
		t.Fatal(err)
	}

	for i := range live {
		if live[i] != replayed[i] {
			t.Errorf("%s: replayed Result diverges from live:\n  live:   %+v\n  replay: %+v",
				liveReqs[i].Bench, live[i], replayed[i])
		}
	}

	// Identity plumbing: spec cells carry spec-fingerprint keys, replayed
	// cells trace-fingerprint keys; all are cacheable.
	for i, q := range liveReqs {
		switch q.Bench {
		case "phase-thrash":
			if !strings.HasPrefix(q.SourceKey, "spec:") {
				t.Errorf("live spec cell SourceKey = %q, want spec:<fp>", q.SourceKey)
			}
		default:
			if q.SourceKey != "" || q.Source != nil {
				t.Errorf("live built-in cell %d unexpectedly bound a source", i)
			}
		}
	}
	for _, q := range replayReqs {
		if !strings.HasPrefix(q.SourceKey, "trace:") {
			t.Errorf("replayed cell %s SourceKey = %q, want trace:<fp>", q.Bench, q.SourceKey)
		}
		if q.NoCache {
			t.Errorf("replayed cell %s lost cacheability", q.Bench)
		}
	}
}

func TestReplayMissingTraceFails(t *testing.T) {
	o := testOpts(t)
	o.ReplayTraceDir = t.TempDir() // empty: no recordings
	q := o.request("missing", "gzip", pipeline.DefaultConfig(), nil, o.Window("gzip"))
	if !q.NoCache {
		t.Fatalf("unreadable trace must leave the request uncacheable")
	}
	_, err := runner.New(1).RunAll([]runner.Request{q})
	var se *runner.SweepError
	if !errors.As(err, &se) || len(se.Failures) != 1 {
		t.Fatalf("want one-failure SweepError, got %v", err)
	}
}

// TestReplayRejectsWrongWorkload: a trace recorded for one workload must
// not satisfy a request for another, even at the same path.
func TestReplayRejectsWrongWorkload(t *testing.T) {
	dir := t.TempDir()
	o := Options{Seed: 1, Scale: 0.001, Benchmarks: []string{"gzip"}}
	if _, err := RecordTraces(o, dir, 0); err != nil {
		t.Fatal(err)
	}
	// Masquerade gzip's recording as swim's.
	if err := os.Rename(TraceFileName(dir, "gzip", 1), TraceFileName(dir, "swim", 1)); err != nil {
		t.Fatal(err)
	}
	ro := Options{Seed: 1, Scale: 0.001, Benchmarks: []string{"swim"}, ReplayTraceDir: dir}
	q := ro.request("wrong", "swim", pipeline.DefaultConfig(), nil, ro.Window("swim"))
	_, err := runner.New(1).RunAll([]runner.Request{q})
	var se *runner.SweepError
	if !errors.As(err, &se) || len(se.Failures) != 1 {
		t.Fatalf("want one-failure SweepError, got %v", err)
	}
	if msg := se.Failures[0].Err.Error(); !strings.Contains(msg, "source") {
		t.Fatalf("failure does not name the identity mismatch: %v", msg)
	}
}

// TestTraceCacheSharesLoads: N requests over one file read it once.
func TestTraceCacheSharesLoads(t *testing.T) {
	dir := t.TempDir()
	o := Options{Seed: 1, Scale: 0.001, Benchmarks: []string{"gzip"}}
	if _, err := RecordTraces(o, dir, 0); err != nil {
		t.Fatal(err)
	}
	c := NewTraceCache()
	path := TraceFileName(dir, "gzip", 1)
	t1, err := c.load(path)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c.load(path)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatalf("cache returned distinct trace copies for one path")
	}
	// A nil cache still works, re-reading per call.
	var nilCache *TraceCache
	t3, err := nilCache.load(path)
	if err != nil {
		t.Fatal(err)
	}
	if t3 == t1 {
		t.Fatalf("nil cache unexpectedly shared the cached instance")
	}
}
