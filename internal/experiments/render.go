package experiments

import (
	"fmt"
	"strings"
)

// Chart renders the table's numeric columns as horizontal ASCII bar groups,
// one group per row — a terminal rendition of the paper's bar figures.
func (t *Table) Chart() string {
	const width = 40
	// Find the numeric scale.
	max := 0.0
	for _, r := range t.Rows {
		for _, c := range r.Cells {
			if c.IsNum && c.Value > max {
				max = c.Value
			}
		}
	}
	if max == 0 {
		return t.Format() // nothing numeric to draw
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	nameW := 0
	for _, c := range t.Columns {
		if len(c) > nameW {
			nameW = len(c)
		}
	}
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s\n", r.Name)
		for i, c := range r.Cells {
			if !c.IsNum || i >= len(t.Columns) {
				continue
			}
			n := int(c.Value / max * width)
			if n < 0 {
				n = 0
			}
			fmt.Fprintf(&b, "  %-*s |%s %s\n", nameW, t.Columns[i], strings.Repeat("#", n), c.Text)
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header row first) for
// plotting outside the simulator.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("benchmark")
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(csvEscape(r.Name))
		for i := range t.Columns {
			b.WriteByte(',')
			if i < len(r.Cells) {
				b.WriteString(csvEscape(r.Cells[i].Text))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
