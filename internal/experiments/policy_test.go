package experiments

import (
	"strings"
	"testing"

	"clustersim/internal/policy"
)

func TestPolicyTiny(t *testing.T) {
	tbl, err := PolicyTable(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Four paper policies, two benchmarks plus the geomean row.
	if len(tbl.Columns) != 4 {
		t.Fatalf("columns %v, want the four paper policies", tbl.Columns)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("got %d rows, want gzip+vpr+geomean", len(tbl.Rows))
	}
	if tbl.Rows[2].Name != "geomean" {
		t.Fatalf("last row %q, want geomean", tbl.Rows[2].Name)
	}
	for _, row := range tbl.Rows {
		for ci, c := range row.Cells {
			if !c.IsNum || c.Value <= 0 {
				t.Fatalf("row %s cell %d not a positive IPC: %+v", row.Name, ci, c)
			}
		}
	}
	var fitnessNotes int
	for _, n := range tbl.Notes {
		if strings.Contains(n, "score") {
			fitnessNotes++
		}
	}
	if fitnessNotes != 4 {
		t.Fatalf("got %d fitness notes, want one per policy", fitnessNotes)
	}
}

func TestPolicyTinyWithSpecs(t *testing.T) {
	o := tinyOpts()
	s1, err := policy.Paper("distant-ilp")
	if err != nil {
		t.Fatal(err)
	}
	s2 := &policy.Spec{Version: policy.Version, Name: policy.FamilyDistantILP,
		Params: policy.Params{Interval: 2_000}}
	o.PolicySpecs = []*policy.Spec{s1, s2}
	tbl, err := PolicyTable(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Columns) != 2 {
		t.Fatalf("columns %v, want the two provided specs", tbl.Columns)
	}
	if tbl.Columns[0] == tbl.Columns[1] {
		t.Fatalf("same-family specs share the label %q", tbl.Columns[0])
	}
}

func TestCounterfactualTiny(t *testing.T) {
	o := tinyOpts()
	o.CounterfactualK = 2
	tbl, err := Counterfactual(o)
	if err != nil {
		t.Fatal(err)
	}
	// 2 benchmarks × 2 alternatives.
	if len(tbl.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row.Cells) != len(tbl.Columns) {
			t.Fatalf("row %s has %d cells, want %d", row.Name, len(row.Cells), len(tbl.Columns))
		}
		agree := row.Cells[3]
		if !agree.IsNum || agree.Value < 0 || agree.Value > 1 {
			t.Fatalf("row %s agreement out of range: %+v", row.Name, agree)
		}
		if !row.Cells[0].IsNum || row.Cells[0].Value <= 0 {
			t.Fatalf("row %s base IPC not positive: %+v", row.Name, row.Cells[0])
		}
		if !row.Cells[1].IsNum || row.Cells[1].Value <= 0 {
			t.Fatalf("row %s alt IPC not positive: %+v", row.Name, row.Cells[1])
		}
	}
}
