package experiments

import (
	"fmt"

	"clustersim/internal/core"
	"clustersim/internal/pipeline"
	"clustersim/internal/runner"
	"clustersim/internal/stats"
	"clustersim/internal/workload"
)

// Table3 reproduces the benchmark-characterization table: base IPC on the
// monolithic machine and instructions per branch mispredict, against the
// paper's published values.
func Table3(o Options) (*Table, error) {
	t := &Table{
		ID:      "table3",
		Title:   "Benchmark characterization (paper Table 3)",
		Columns: []string{"suite", "IPC", "IPC(paper)", "mispred-int", "mispred-int(paper)"},
		Notes: []string{
			"IPC measured on the monolithic machine (16-cluster resources, no communication cost)",
		},
	}
	benches := o.benchmarks()
	reqs := make([]runner.Request, len(benches))
	for i, b := range benches {
		reqs[i] = o.request("table3", b, pipeline.MonolithicConfig(), nil, o.Window(b))
	}
	rs, err := o.sweeper().RunAll(reqs)
	if err != nil {
		err = fmt.Errorf("table3: %w", err)
		if !salvageable(err) {
			return nil, err
		}
	}
	for i, b := range benches {
		pd, _ := workload.Paper(b)
		r := rs[i]
		mispred := Str("-")
		if !failed(r) {
			mispred = Num(r.MispredictInterval(), 0)
		}
		t.Rows = append(t.Rows, Row{Name: b, Cells: []Cell{
			Str(pd.Suite),
			ipcCell(r),
			Num(pd.BaseIPC, 2),
			mispred,
			Num(pd.MispredictInterval, 0),
		}})
	}
	return t, err
}

// Fig3 reproduces Figure 3: IPC of statically fixed 2/4/8/16-cluster
// organizations with the centralized cache and ring interconnect.
func Fig3(o Options) (*Table, error) {
	t := &Table{
		ID:      "fig3",
		Title:   "IPC of fixed cluster organizations (paper Figure 3)",
		Columns: []string{"2", "4", "8", "16", "best"},
	}
	counts := []int{2, 4, 8, 16}
	benches := o.benchmarks()
	var reqs []runner.Request
	for _, b := range benches {
		for _, n := range counts {
			cfg := pipeline.DefaultConfig()
			cfg.ActiveClusters = n
			reqs = append(reqs, o.request(fmt.Sprintf("fig3-c%d", n), b, cfg, nil, o.Window(b)))
		}
	}
	rs, err := o.sweeper().RunAll(reqs)
	if err != nil {
		err = fmt.Errorf("fig3: %w", err)
		if !salvageable(err) {
			return nil, err
		}
	}
	for bi, b := range benches {
		row := Row{Name: b}
		best, bestN := 0.0, 0
		for ci, n := range counts {
			r := rs[bi*len(counts)+ci]
			row.Cells = append(row.Cells, ipcCell(r))
			if !failed(r) && r.IPC() > best {
				best, bestN = r.IPC(), n
			}
		}
		bestCell := Str("-")
		if bestN > 0 {
			bestCell = Str(fmt.Sprintf("%d", bestN))
		}
		row.Cells = append(row.Cells, bestCell)
		t.Rows = append(t.Rows, row)
	}
	return t, err
}

// Table4 reproduces the instability-factor analysis: the minimum interval
// length with <5% instability and the instability at a 10K interval.
func Table4(o Options) (*Table, error) {
	t := &Table{
		ID:      "table4",
		Title:   "Instability factors vs interval length (paper Table 4)",
		Columns: []string{"min-interval", "factor%", "instab@10K%", "paper-min", "paper@10K%"},
		Notes: []string{
			"phase lengths are scaled ~10x down from the paper's, so minimum intervals scale accordingly",
		},
	}
	mults := []int{1, 2, 4, 8, 16, 32, 64, 128}
	benches := o.benchmarks()
	// The recorder controller is harvested after its run (its interval
	// trace feeds the instability analysis), so these runs bypass the
	// cache: each request must actually execute on its own recorder.
	recs := make([]*stats.Recorder, len(benches))
	reqs := make([]runner.Request, len(benches))
	for i, b := range benches {
		recs[i] = stats.NewRecorder(10_000)
		req := o.request("table4", b, pipeline.DefaultConfig(), recs[i], 2*o.Window(b))
		req.NoCache = true
		reqs[i] = req
	}
	rs, err := o.sweeper().RunAll(reqs)
	if err != nil {
		err = fmt.Errorf("table4: %w", err)
		if !salvageable(err) {
			return nil, err
		}
	}
	for i, b := range benches {
		pd, _ := workload.Paper(b)
		if failed(rs[i]) {
			// The run died: its recorder's trace is partial at best.
			t.Rows = append(t.Rows, Row{Name: b, Cells: []Cell{
				Str("-"), Str("-"), Str("-"),
				Num(pd.MinStableInterval, 0),
				Num(pd.InstabilityAt10K, 0),
			}})
			continue
		}
		trace := recs[i].Intervals()
		th := stats.DefaultThresholds()
		minLen, factor := stats.MinStableInterval(trace, 10_000, mults, 5, th)
		at10K := stats.Instability(trace, th)
		t.Rows = append(t.Rows, Row{Name: b, Cells: []Cell{
			Num(float64(minLen), 0),
			Num(factor, 1),
			Num(at10K, 1),
			Num(pd.MinStableInterval, 0),
			Num(pd.InstabilityAt10K, 0),
		}})
	}
	return t, err
}

// schemeSweep submits one request per benchmark×scheme cell (bench-major
// order) and returns results indexed [bench][scheme].
func schemeSweep(o Options, id string, cfg pipeline.Config, mks []func() pipeline.Controller) ([][]pipeline.Result, error) {
	benches := o.benchmarks()
	reqs := make([]runner.Request, 0, len(benches)*len(mks))
	for _, b := range benches {
		for _, mk := range mks {
			reqs = append(reqs, o.request(id, b, cfg, mk(), o.Window(b)))
		}
	}
	flat, err := o.sweeper().RunAll(reqs)
	if err != nil && !salvageable(err) {
		return nil, err
	}
	out := make([][]pipeline.Result, len(benches))
	for bi := range benches {
		out[bi] = flat[bi*len(mks) : (bi+1)*len(mks)]
	}
	return out, err
}

// summarize appends a geomean row plus improvement-vs-best-static notes.
// staticCols identifies which columns are static configurations. Failed cells
// of a salvaged sweep carry IPC 0 and are excluded from the aggregates; a
// column with no surviving cells renders "-".
func summarize(t *Table, ipcs map[string][]float64, staticCols []int) {
	if len(ipcs) == 0 {
		return
	}
	cols := len(t.Columns)
	gm := make([]float64, cols)
	for c := 0; c < cols; c++ {
		var vals []float64
		for _, row := range ipcs {
			if c < len(row) && row[c] > 0 {
				vals = append(vals, row[c])
			}
		}
		gm[c] = geomean(vals)
	}
	row := Row{Name: "geomean"}
	for _, v := range gm {
		row.Cells = append(row.Cells, numOrDash(v, 2))
	}
	t.Rows = append(t.Rows, row)
	bestStatic := 0.0
	for _, c := range staticCols {
		if gm[c] > bestStatic {
			bestStatic = gm[c]
		}
	}
	for c := 0; c < cols; c++ {
		isStatic := false
		for _, s := range staticCols {
			if c == s {
				isStatic = true
			}
		}
		if isStatic || bestStatic == 0 || gm[c] == 0 {
			continue
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s vs best static (geomean): %+.1f%%",
			t.Columns[c], 100*(gm[c]/bestStatic-1)))
	}
}

// Fig5 reproduces Figure 5: static 4/16 against the interval-based scheme
// with exploration and the no-exploration distant-ILP scheme at three fixed
// interval lengths, on the centralized cache.
func Fig5(o Options) (*Table, error) {
	t := &Table{
		ID:      "fig5",
		Title:   "Interval-based schemes, centralized cache (paper Figure 5)",
		Columns: []string{"static-4", "static-16", "explore", "dilp-500", "dilp-1K", "dilp-10K"},
	}
	mks := []func() pipeline.Controller{
		func() pipeline.Controller { return &core.Static{N: 4} },
		func() pipeline.Controller { return &core.Static{N: 16} },
		func() pipeline.Controller { return core.NewExplore(core.ExploreConfig{}) },
		func() pipeline.Controller { return core.NewDistantILP(core.DistantILPConfig{Interval: 500}) },
		func() pipeline.Controller { return core.NewDistantILP(core.DistantILPConfig{Interval: 1000}) },
		func() pipeline.Controller { return core.NewDistantILP(core.DistantILPConfig{Interval: 10_000}) },
	}
	sweep, err := schemeSweep(o, "fig5", pipeline.DefaultConfig(), mks)
	if err != nil {
		err = fmt.Errorf("fig5: %w", err)
		if sweep == nil {
			return nil, err
		}
	}
	ipcs := map[string][]float64{}
	var exploreDistant, exploreReconf []float64
	for bi, b := range o.benchmarks() {
		row := Row{Name: b}
		for i, r := range sweep[bi] {
			row.Cells = append(row.Cells, ipcCell(r))
			ipcs[b] = append(ipcs[b], r.IPC())
			if i == 2 && !failed(r) {
				exploreDistant = append(exploreDistant, r.DistantILPFraction())
				exploreReconf = append(exploreReconf, r.ReconfigsPerMInstr())
			}
		}
		t.Rows = append(t.Rows, row)
	}
	summarize(t, ipcs, []int{0, 1})
	t.Notes = append(t.Notes, fmt.Sprintf(
		"explore scheme: mean distant-ILP fraction %.2f, %.0f reconfigurations per M instructions",
		mean(exploreDistant), mean(exploreReconf)))
	return t, err
}

// Fig6 reproduces Figure 6: the fine-grained reconfiguration schemes
// against the exploration scheme and the static bases.
func Fig6(o Options) (*Table, error) {
	t := &Table{
		ID:      "fig6",
		Title:   "Fine-grained reconfiguration (paper Figure 6)",
		Columns: []string{"static-4", "static-16", "explore", "fg-branch", "fg-callreturn"},
	}
	mks := []func() pipeline.Controller{
		func() pipeline.Controller { return &core.Static{N: 4} },
		func() pipeline.Controller { return &core.Static{N: 16} },
		func() pipeline.Controller { return core.NewExplore(core.ExploreConfig{}) },
		func() pipeline.Controller { return core.NewFineGrain(core.FineGrainConfig{}) },
		func() pipeline.Controller { return core.NewFineGrain(core.FineGrainConfig{CallReturnOnly: true}) },
	}
	sweep, err := schemeSweep(o, "fig6", pipeline.DefaultConfig(), mks)
	if err != nil {
		err = fmt.Errorf("fig6: %w", err)
		if sweep == nil {
			return nil, err
		}
	}
	ipcs := map[string][]float64{}
	for bi, b := range o.benchmarks() {
		row := Row{Name: b}
		for _, r := range sweep[bi] {
			row.Cells = append(row.Cells, ipcCell(r))
			ipcs[b] = append(ipcs[b], r.IPC())
		}
		t.Rows = append(t.Rows, row)
	}
	summarize(t, ipcs, []int{0, 1})
	return t, err
}

// Fig7 reproduces Figure 7: the decentralized cache model under the
// interval-based schemes, including reconfiguration cache flushes.
func Fig7(o Options) (*Table, error) {
	t := &Table{
		ID:      "fig7",
		Title:   "Interval-based schemes, decentralized cache (paper Figure 7)",
		Columns: []string{"static-4", "static-16", "explore", "dilp-1K", "dilp-10K"},
	}
	cfg := pipeline.DefaultConfig()
	cfg.Cache = pipeline.DecentralizedCache
	mks := []func() pipeline.Controller{
		func() pipeline.Controller { return &core.Static{N: 4} },
		func() pipeline.Controller { return &core.Static{N: 16} },
		func() pipeline.Controller { return core.NewExplore(core.ExploreConfig{}) },
		func() pipeline.Controller { return core.NewDistantILP(core.DistantILPConfig{Interval: 1000}) },
		func() pipeline.Controller { return core.NewDistantILP(core.DistantILPConfig{Interval: 10_000}) },
	}
	sweep, err := schemeSweep(o, "fig7", cfg, mks)
	if err != nil {
		err = fmt.Errorf("fig7: %w", err)
		if sweep == nil {
			return nil, err
		}
	}
	ipcs := map[string][]float64{}
	var flushWB, flushes uint64
	var exploreReconf []float64
	for bi, b := range o.benchmarks() {
		row := Row{Name: b}
		for i, r := range sweep[bi] {
			row.Cells = append(row.Cells, ipcCell(r))
			ipcs[b] = append(ipcs[b], r.IPC())
			if i == 2 && !failed(r) {
				flushWB += r.Mem.FlushWritebacks
				flushes += r.Mem.Flushes
				exploreReconf = append(exploreReconf, r.ReconfigsPerMInstr())
			}
		}
		t.Rows = append(t.Rows, row)
	}
	summarize(t, ipcs, []int{0, 1})
	t.Notes = append(t.Notes, fmt.Sprintf(
		"explore scheme: %d reconfiguration flushes, %d writebacks (paper: flushes cost ~0.3%% IPC)",
		flushes, flushWB))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"explore scheme: mean %.0f reconfigurations per M instructions",
		mean(exploreReconf)))
	return t, err
}

// Fig8 reproduces Figure 8: the grid interconnect under the exploration
// scheme.
func Fig8(o Options) (*Table, error) {
	t := &Table{
		ID:      "fig8",
		Title:   "Grid interconnect (paper Figure 8)",
		Columns: []string{"static-4", "static-16", "explore"},
	}
	cfg := pipeline.DefaultConfig()
	cfg.Topology = pipeline.GridTopology
	mks := []func() pipeline.Controller{
		func() pipeline.Controller { return &core.Static{N: 4} },
		func() pipeline.Controller { return &core.Static{N: 16} },
		func() pipeline.Controller { return core.NewExplore(core.ExploreConfig{}) },
	}
	sweep, err := schemeSweep(o, "fig8", cfg, mks)
	if err != nil {
		err = fmt.Errorf("fig8: %w", err)
		if sweep == nil {
			return nil, err
		}
	}
	ipcs := map[string][]float64{}
	for bi, b := range o.benchmarks() {
		row := Row{Name: b}
		for _, r := range sweep[bi] {
			row.Cells = append(row.Cells, ipcCell(r))
			ipcs[b] = append(ipcs[b], r.IPC())
		}
		t.Rows = append(t.Rows, row)
	}
	summarize(t, ipcs, []int{0, 1})
	return t, err
}
