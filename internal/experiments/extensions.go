package experiments

import (
	"fmt"

	"clustersim/internal/core"
	"clustersim/internal/energy"
	"clustersim/internal/pipeline"
	"clustersim/internal/runner"
	"clustersim/internal/smt"
)

// Energy quantifies §4.2's leakage argument with the normalized energy
// model: per benchmark, the leakage-energy saving and energy-delay product
// of the adaptive scheme (with disabled clusters voltage-gated) against the
// always-16 static machine.
func Energy(o Options) (*Table, error) {
	t := &Table{
		ID:      "ext-energy",
		Title:   "Leakage savings from cluster disabling (extension of §4.2)",
		Columns: []string{"IPC-16", "IPC-adaptive", "disabled", "leak-save%", "EDP-ratio"},
		Notes: []string{
			"normalized first-order energy model (internal/energy); the paper reports only the disabled-cluster count",
			"EDP-ratio < 1 means the adaptive gated machine wins energy-delay",
		},
	}
	benches := o.benchmarks()
	reqs := make([]runner.Request, 0, 2*len(benches))
	for _, b := range benches {
		w := o.Window(b)
		reqs = append(reqs, o.request("ext-energy", b, pipeline.DefaultConfig(), &core.Static{N: 16}, w))
		reqs = append(reqs, o.request("ext-energy", b, pipeline.DefaultConfig(), core.NewExplore(core.ExploreConfig{}), w))
	}
	rs, err := o.sweeper().RunAll(reqs)
	if err != nil {
		err = fmt.Errorf("ext-energy: %w", err)
		if !salvageable(err) {
			return nil, err
		}
	}
	model := energy.DefaultModel()
	var disabled []float64
	for i, b := range benches {
		rstatic, radapt := rs[2*i], rs[2*i+1]
		if failed(rstatic) || failed(radapt) {
			// The energy comparison needs both halves of the pair.
			t.Rows = append(t.Rows, Row{Name: b, Cells: []Cell{
				ipcCell(rstatic), ipcCell(radapt), Str("-"), Str("-"), Str("-"),
			}})
			continue
		}
		act := func(r pipeline.Result) energy.Activity {
			return energy.Activity{
				Cycles:               r.Cycles,
				Instructions:         r.Instructions,
				PoweredClusterCycles: r.ActiveSum,
				Hops:                 r.Net.Hops,
				CacheAccesses:        r.Mem.Loads + r.Mem.Stores,
			}
		}
		saving := model.LeakageSavings(act(radapt), 16)
		edpRatio := model.EDP(act(radapt)) / model.EDP(act(rstatic))
		off := 16 - radapt.AvgActiveClusters()
		disabled = append(disabled, off)
		t.Rows = append(t.Rows, Row{Name: b, Cells: []Cell{
			Num(rstatic.IPC(), 2),
			Num(radapt.IPC(), 2),
			Num(off, 1),
			Num(100*saving, 0),
			Num(edpRatio, 2),
		}})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("avg clusters disabled: %.1f of 16 (paper: 8.3)",
		mean(disabled)))
	return t, err
}

// SMT evaluates the paper's future-work proposal (§1, §8): dedicating
// cluster partitions to threads and retuning the split dynamically. Pairs
// an ILP-hungry thread with a serial one and compares static splits against
// the distant-ILP-driven partitioner.
//
// SMT systems co-schedule two machines, so their cells do not go through
// the pipeline run cache; the pair×policy grid is instead parallelized
// directly on a worker pool.
func SMT(o Options) (*Table, error) {
	t := &Table{
		ID:      "ext-smt",
		Title:   "Multi-threaded cluster partitioning (extension of §1/§8)",
		Columns: []string{"equal-8/8", "fixed-12/4", "fixed-4/12", "adaptive", "adaptive-split"},
		Notes: []string{
			"cells are combined instructions per cycle over both threads",
			"partitions are dedicated (no cross-thread interference), per the paper's proposal",
		},
	}
	pairs := [][2]string{
		{"swim", "vpr"},
		{"djpeg", "parser"},
		{"mgrid", "crafty"},
		{"gzip", "cjpeg"},
	}
	epochCycles := uint64(10_000)
	epochs := int(o.scale() * 100)
	if epochs < 20 {
		epochs = 20
	}
	policies := []func() smt.PartitionPolicy{
		func() smt.PartitionPolicy { return smt.EqualPartition{} },
		func() smt.PartitionPolicy { return smt.FixedPartition{Split: []int{12, 4}} },
		func() smt.PartitionPolicy { return smt.FixedPartition{Split: []int{4, 12}} },
		func() smt.PartitionPolicy { return smt.DistantILPPartition{} },
	}
	reports := make([]smt.Report, len(pairs)*len(policies))
	err := runner.Each(o.Parallel, len(reports), func(i int) error {
		pair := pairs[i/len(policies)]
		pol := policies[i%len(policies)]()
		threads := []smt.Thread{
			{Bench: pair[0], Seed: o.seed()},
			{Bench: pair[1], Seed: o.seed()},
		}
		sys, err := smt.New(pipeline.DefaultConfig(), threads, 16, pol)
		if err != nil {
			return err
		}
		rep, err := sys.Run(epochs, epochCycles)
		if err != nil {
			return err
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ext-smt: %w", err)
	}
	for pi, pair := range pairs {
		row := Row{Name: pair[0] + "+" + pair[1]}
		var adaptive smt.Report
		for si := range policies {
			rep := reports[pi*len(policies)+si]
			row.Cells = append(row.Cells, Num(rep.Throughput(), 2))
			if si == len(policies)-1 {
				adaptive = rep
			}
		}
		row.Cells = append(row.Cells, Str(fmt.Sprintf("%.1f/%.1f",
			adaptive.AvgClusters(0), adaptive.AvgClusters(1))))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
