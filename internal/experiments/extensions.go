package experiments

import (
	"fmt"

	"clustersim/internal/core"
	"clustersim/internal/energy"
	"clustersim/internal/pipeline"
	"clustersim/internal/smt"
)

// Energy quantifies §4.2's leakage argument with the normalized energy
// model: per benchmark, the leakage-energy saving and energy-delay product
// of the adaptive scheme (with disabled clusters voltage-gated) against the
// always-16 static machine.
func Energy(o Options) *Table {
	t := &Table{
		ID:      "ext-energy",
		Title:   "Leakage savings from cluster disabling (extension of §4.2)",
		Columns: []string{"IPC-16", "IPC-adaptive", "disabled", "leak-save%", "EDP-ratio"},
		Notes: []string{
			"normalized first-order energy model (internal/energy); the paper reports only the disabled-cluster count",
			"EDP-ratio < 1 means the adaptive gated machine wins energy-delay",
		},
	}
	model := energy.DefaultModel()
	var disabledSum float64
	for _, b := range o.benchmarks() {
		w := o.Window(b)
		rs := run(o, "ext-energy", b, pipeline.DefaultConfig(), &core.Static{N: 16}, w)
		ra := run(o, "ext-energy", b, pipeline.DefaultConfig(), core.NewExplore(core.ExploreConfig{}), w)
		act := func(r pipeline.Result) energy.Activity {
			return energy.Activity{
				Cycles:               r.Cycles,
				Instructions:         r.Instructions,
				PoweredClusterCycles: r.ActiveSum,
				Hops:                 r.Net.Hops,
				CacheAccesses:        r.Mem.Loads + r.Mem.Stores,
			}
		}
		saving := model.LeakageSavings(act(ra), 16)
		edpRatio := model.EDP(act(ra)) / model.EDP(act(rs))
		disabled := 16 - ra.AvgActiveClusters()
		disabledSum += disabled
		t.Rows = append(t.Rows, Row{Name: b, Cells: []Cell{
			Num(rs.IPC(), 2),
			Num(ra.IPC(), 2),
			Num(disabled, 1),
			Num(100*saving, 0),
			Num(edpRatio, 2),
		}})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("avg clusters disabled: %.1f of 16 (paper: 8.3)",
		disabledSum/float64(len(o.benchmarks()))))
	return t
}

// SMT evaluates the paper's future-work proposal (§1, §8): dedicating
// cluster partitions to threads and retuning the split dynamically. Pairs
// an ILP-hungry thread with a serial one and compares static splits against
// the distant-ILP-driven partitioner.
func SMT(o Options) *Table {
	t := &Table{
		ID:      "ext-smt",
		Title:   "Multi-threaded cluster partitioning (extension of §1/§8)",
		Columns: []string{"equal-8/8", "fixed-12/4", "fixed-4/12", "adaptive", "adaptive-split"},
		Notes: []string{
			"cells are combined instructions per cycle over both threads",
			"partitions are dedicated (no cross-thread interference), per the paper's proposal",
		},
	}
	pairs := [][2]string{
		{"swim", "vpr"},
		{"djpeg", "parser"},
		{"mgrid", "crafty"},
		{"gzip", "cjpeg"},
	}
	epochCycles := uint64(10_000)
	epochs := int(o.scale() * 100)
	if epochs < 20 {
		epochs = 20
	}
	for _, pair := range pairs {
		threads := []smt.Thread{
			{Bench: pair[0], Seed: o.seed()},
			{Bench: pair[1], Seed: o.seed()},
		}
		row := Row{Name: pair[0] + "+" + pair[1]}
		var adaptive smt.Report
		for _, pol := range []smt.PartitionPolicy{
			smt.EqualPartition{},
			smt.FixedPartition{Split: []int{12, 4}},
			smt.FixedPartition{Split: []int{4, 12}},
			smt.DistantILPPartition{},
		} {
			sys, err := smt.New(pipeline.DefaultConfig(), threads, 16, pol)
			if err != nil {
				row.Cells = append(row.Cells, Str("err"))
				continue
			}
			rep, err := sys.Run(epochs, epochCycles)
			if err != nil {
				row.Cells = append(row.Cells, Str("err"))
				continue
			}
			row.Cells = append(row.Cells, Num(rep.Throughput(), 2))
			if _, ok := pol.(smt.DistantILPPartition); ok {
				adaptive = rep
			}
		}
		row.Cells = append(row.Cells, Str(fmt.Sprintf("%.1f/%.1f",
			adaptive.AvgClusters(0), adaptive.AvgClusters(1))))
		t.Rows = append(t.Rows, row)
	}
	return t
}
