package experiments

import (
	"strings"
	"testing"
)

func renderFixture() *Table {
	return &Table{
		ID:      "fig-x",
		Title:   "chart test",
		Columns: []string{"a", "b"},
		Rows: []Row{
			{Name: "r1", Cells: []Cell{Num(2, 2), Num(1, 2)}},
			{Name: "r2", Cells: []Cell{Num(4, 2), Str("n/a")}},
		},
		Notes: []string{"hello"},
	}
}

func TestChart(t *testing.T) {
	s := renderFixture().Chart()
	if !strings.Contains(s, "r1") || !strings.Contains(s, "####") {
		t.Fatalf("chart missing bars:\n%s", s)
	}
	// The max value (4) should have the longest bar.
	lines := strings.Split(s, "\n")
	longest, maxHashes := "", 0
	for _, l := range lines {
		if n := strings.Count(l, "#"); n > maxHashes {
			maxHashes, longest = n, l
		}
	}
	if !strings.Contains(longest, "4.00") {
		t.Fatalf("longest bar is not the max value: %q", longest)
	}
	if !strings.Contains(s, "hello") {
		t.Fatal("notes missing")
	}
}

func TestChartNoNumeric(t *testing.T) {
	tb := &Table{ID: "t", Title: "x", Columns: []string{"v"},
		Rows: []Row{{Name: "r", Cells: []Cell{Str("text")}}}}
	if got := tb.Chart(); !strings.Contains(got, "text") {
		t.Fatalf("fallback format missing content: %s", got)
	}
}

func TestCSV(t *testing.T) {
	s := renderFixture().CSV()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d CSV lines", len(lines))
	}
	if lines[0] != "benchmark,a,b" {
		t.Fatalf("header %q", lines[0])
	}
	if lines[1] != "r1,2.00,1.00" {
		t.Fatalf("row %q", lines[1])
	}
	if lines[2] != "r2,4.00,n/a" {
		t.Fatalf("row %q", lines[2])
	}
}

func TestCSVEscape(t *testing.T) {
	if csvEscape("plain") != "plain" {
		t.Fatal("plain escaped")
	}
	if csvEscape(`a,"b`) != `"a,""b"` {
		t.Fatalf("escape %q", csvEscape(`a,"b`))
	}
}
