package experiments

import (
	"fmt"

	"clustersim/internal/core"
	"clustersim/internal/pipeline"
	"clustersim/internal/runner"
)

// Sensitivity reproduces §6's parameter sweeps: fewer/more per-cluster
// resources, extra functional units, and doubled hop latency, reporting the
// exploration scheme's geomean improvement over the best static base under
// each variant (the paper reports 8%, 13%, ~11% and 23%).
func Sensitivity(o Options) (*Table, error) {
	t := &Table{
		ID:    "sens",
		Title: "Sensitivity analysis (paper §6)",
		Columns: []string{
			"static-4", "static-8", "static-16", "explore", "improve%",
		},
	}
	variants := []struct {
		name   string
		mutate func(*pipeline.Config)
		paper  string
	}{
		{"baseline", func(c *pipeline.Config) {}, "11%"},
		{"fewer-resources (10 IQ / 20 regs)", func(c *pipeline.Config) {
			c.IQPerCluster = 10
			c.RegsPerCluster = 20
		}, "8%"},
		{"more-resources (20 IQ / 40 regs)", func(c *pipeline.Config) {
			c.IQPerCluster = 20
			c.RegsPerCluster = 40
		}, "13%"},
		{"more-FUs (2 of each)", func(c *pipeline.Config) {
			c.IntALU, c.IntMulDiv, c.FPALU, c.FPMulDiv = 2, 2, 2, 2
		}, "~11%"},
		{"2-cycle hops", func(c *pipeline.Config) {
			c.HopLatency = 2
		}, "23%"},
	}
	// The full variant × benchmark × scheme grid goes out as one batch so
	// the worker pool sees every independent run at once (the baseline
	// variant's cells are shared with Fig5 via the run cache).
	statics := []int{4, 8, 16}
	benches := o.benchmarks()
	schemes := len(statics) + 1
	var reqs []runner.Request
	for vi, v := range variants {
		id := fmt.Sprintf("sens%d", vi)
		for _, b := range benches {
			for _, n := range statics {
				cfg := pipeline.DefaultConfig()
				v.mutate(&cfg)
				reqs = append(reqs, o.request(id, b, cfg, &core.Static{N: n}, o.Window(b)))
			}
			cfg := pipeline.DefaultConfig()
			v.mutate(&cfg)
			reqs = append(reqs, o.request(id, b, cfg, core.NewExplore(core.ExploreConfig{}), o.Window(b)))
		}
	}
	rs, err := o.sweeper().RunAll(reqs)
	if err != nil {
		err = fmt.Errorf("sens: %w", err)
		if !salvageable(err) {
			return nil, err
		}
	}
	for vi, v := range variants {
		// Geomean IPC over the benchmark set per scheme. In a salvaged
		// sweep the failed cells are excluded, so an aggregate may cover
		// a subset of the benchmarks (or nothing, rendering "-").
		var per [4][]float64
		for bi := range benches {
			base := (vi*len(benches) + bi) * schemes
			for si := 0; si < schemes; si++ {
				if r := rs[base+si]; !failed(r) {
					per[si] = append(per[si], r.IPC())
				}
			}
		}
		gms := make([]float64, 0, 4)
		for i := range per {
			gms = append(gms, geomean(per[i]))
		}
		bestStatic := gms[0]
		for _, g := range gms[:3] {
			if g > bestStatic {
				bestStatic = g
			}
		}
		improveCell := Str(fmt.Sprintf("- (paper %s)", v.paper))
		if bestStatic > 0 && gms[3] > 0 {
			improve := 100 * (gms[3]/bestStatic - 1)
			improveCell = Str(fmt.Sprintf("%+.1f%% (paper %s)", improve, v.paper))
		}
		t.Rows = append(t.Rows, Row{Name: v.name, Cells: []Cell{
			numOrDash(gms[0], 2), numOrDash(gms[1], 2), numOrDash(gms[2], 2), numOrDash(gms[3], 2),
			improveCell,
		}})
	}
	t.Notes = append(t.Notes,
		"cells are geomean IPC over the benchmark set; improve% compares explore to the best static geomean")
	return t, err
}

// Ablations reproduces the paper's in-text idealization studies: zero-cost
// load/store communication (+31%), zero-cost register communication (+11%)
// on the centralized 16-cluster machine; perfect bank prediction (+29%) and
// free register communication (+27%) on the decentralized machine; plus the
// measured average inter-cluster communication latency (4.1 cycles) and the
// average number of disabled clusters under the exploration scheme (8.3).
func Ablations(o Options) (*Table, error) {
	t := &Table{
		ID:      "ablate",
		Title:   "Idealized-communication ablations (paper §4 and §5 in-text)",
		Columns: []string{"geomean-IPC", "vs-base", "paper"},
	}

	type variant struct {
		name   string
		cache  pipeline.CacheModel
		mutate func(*pipeline.Config)
		paper  string
	}
	variants := []variant{
		{"central-base", pipeline.CentralizedCache, func(c *pipeline.Config) {}, "-"},
		{"central-free-ldst-comm", pipeline.CentralizedCache, func(c *pipeline.Config) { c.FreeLoadComm = true }, "+31%"},
		{"central-free-reg-comm", pipeline.CentralizedCache, func(c *pipeline.Config) { c.FreeRegComm = true }, "+11%"},
		{"dist-base", pipeline.DecentralizedCache, func(c *pipeline.Config) {}, "-"},
		{"dist-perfect-banks", pipeline.DecentralizedCache, func(c *pipeline.Config) { c.PerfectBankPred = true }, "+29%"},
		{"dist-free-reg-comm", pipeline.DecentralizedCache, func(c *pipeline.Config) { c.FreeRegComm = true }, "+27%"},
	}
	benches := o.benchmarks()
	// One batch: every variant × benchmark cell, then the communication-
	// latency and disabled-cluster measurement runs.
	var reqs []runner.Request
	for _, v := range variants {
		for _, b := range benches {
			cfg := pipeline.DefaultConfig()
			cfg.Cache = v.cache
			v.mutate(&cfg)
			reqs = append(reqs, o.request("ablate-"+v.name, b, cfg, nil, o.Window(b)))
		}
	}
	commBase := len(reqs)
	for _, b := range benches {
		reqs = append(reqs, o.request("ablate-comm", b, pipeline.DefaultConfig(), nil, o.Window(b)))
		reqs = append(reqs, o.request("ablate-disabled", b, pipeline.DefaultConfig(),
			core.NewExplore(core.ExploreConfig{}), o.Window(b)))
	}
	rs, err := o.sweeper().RunAll(reqs)
	if err != nil {
		err = fmt.Errorf("ablate: %w", err)
		if !salvageable(err) {
			return nil, err
		}
	}

	var centralBase, distBase float64
	for vi, v := range variants {
		var ipcs []float64
		for bi := range benches {
			if r := rs[vi*len(benches)+bi]; !failed(r) {
				ipcs = append(ipcs, r.IPC())
			}
		}
		gm := geomean(ipcs)
		base := centralBase
		if v.cache == pipeline.DecentralizedCache {
			base = distBase
		}
		vs := "-"
		switch v.name {
		case "central-base":
			centralBase = gm
		case "dist-base":
			distBase = gm
		default:
			if base > 0 && gm > 0 {
				vs = fmt.Sprintf("%+.1f%%", 100*(gm/base-1))
			}
		}
		t.Rows = append(t.Rows, Row{Name: v.name, Cells: []Cell{
			numOrDash(gm, 2), Str(vs), Str(v.paper),
		}})
	}

	// Communication latency and disabled-cluster statistics (over the runs
	// that survived, in a salvaged sweep).
	var regLat []float64
	var disabled []float64
	for bi := range benches {
		r := rs[commBase+2*bi]
		if !failed(r) && r.RegTransfers > 0 {
			regLat = append(regLat, r.AvgRegCommLatency())
		}
		re := rs[commBase+2*bi+1]
		if !failed(re) {
			disabled = append(disabled, 16-re.AvgActiveClusters())
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"avg inter-cluster register communication latency at 16 clusters: %.1f cycles (paper: 4.1)",
		mean(regLat)))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"avg clusters disabled by the exploration scheme: %.1f of 16 (paper: 8.3)",
		mean(disabled)))
	return t, err
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}
