// Package experiments regenerates every table and figure of the paper's
// evaluation section. Each experiment returns a Table whose rows/series
// match what the paper reports; EXPERIMENTS.md records the paper-vs-
// measured comparison. Absolute numbers are not expected to match (the
// substrate is a from-scratch simulator with synthetic workloads); the
// shape — who wins, by roughly what factor, where crossovers fall — is the
// reproduction target.
package experiments

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"clustersim/internal/obs"
	"clustersim/internal/pipeline"
	"clustersim/internal/workload"
)

// Options control experiment scale.
type Options struct {
	// Seed seeds every workload (results are deterministic per seed).
	Seed uint64
	// Scale multiplies the per-benchmark simulation windows; 1.0 is the
	// calibrated default, smaller values trade fidelity for speed (the
	// Go benchmarks use ~0.1).
	Scale float64
	// Benchmarks restricts the benchmark set (nil = all nine).
	Benchmarks []string
	// ObsDir, when set, attaches an observability registry with
	// cycle-sampled probes to every simulated run and writes per-run
	// time-series CSVs plus metrics snapshots under this directory
	// (e.g. results/obs). Empty disables instrumentation.
	ObsDir string
	// ObsSamplePeriod is the probe sampling period in cycles when ObsDir
	// is set (0 = every 10K cycles).
	ObsSamplePeriod uint64
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1
	}
	return o.Scale
}

func (o Options) benchmarks() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return workload.Benchmarks()
}

// window returns the simulation window for a benchmark: long enough to
// cover its full phase cycle several times.
// Window returns the calibrated simulation window for a benchmark (long
// enough to cover its full phase cycle), scaled by Scale.
func (o Options) Window(bench string) uint64 {
	base := map[string]uint64{
		"cjpeg":  2_000_000,
		"crafty": 3_000_000,
		"djpeg":  1_800_000,
		"galgel": 1_800_000,
		"gzip":   3_400_000,
		"mgrid":  2_400_000,
		"parser": 4_000_000,
		"swim":   2_400_000,
		"vpr":    1_800_000,
	}
	w := base[bench]
	if w == 0 {
		w = 1_800_000
	}
	w = uint64(float64(w) * o.scale())
	if w < 50_000 {
		w = 50_000
	}
	return w
}

// Cell is one table entry.
type Cell struct {
	Text  string
	Value float64
	IsNum bool
}

// Num returns a numeric cell formatted with prec decimals.
func Num(v float64, prec int) Cell {
	return Cell{Text: fmt.Sprintf("%.*f", prec, v), Value: v, IsNum: true}
}

// Str returns a text cell.
func Str(s string) Cell { return Cell{Text: s} }

// Row is one table row.
type Row struct {
	Name  string
	Cells []Cell
}

// Table is one regenerated paper artifact.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    []Row
	Notes   []string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len("benchmark")
	for _, r := range t.Rows {
		if len(r.Name) > widths[0] {
			widths[0] = len(r.Name)
		}
	}
	for i, c := range t.Columns {
		widths[i+1] = len(c)
		for _, r := range t.Rows {
			if i < len(r.Cells) && len(r.Cells[i].Text) > widths[i+1] {
				widths[i+1] = len(r.Cells[i].Text)
			}
		}
	}
	fmt.Fprintf(&b, "%-*s", widths[0]+2, "benchmark")
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", widths[i+1]+2, c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", widths[0]+2, r.Name)
		for i := range t.Columns {
			cell := Cell{Text: "-"}
			if i < len(r.Cells) {
				cell = r.Cells[i]
			}
			fmt.Fprintf(&b, "%*s", widths[i+1]+2, cell.Text)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// geomean returns the geometric mean of positive values.
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// run simulates one benchmark under one controller for the experiment
// named id. When Options.ObsDir is set, the run attaches an observability
// registry plus cycle-sampled probes and writes "<id>-<bench>-<policy>"
// time-series and metrics artifacts under that directory.
func run(o Options, id, bench string, cfg pipeline.Config, ctrl pipeline.Controller, n uint64) pipeline.Result {
	gen := workload.MustNew(bench, o.seed())
	var ob *obs.Observer
	if o.ObsDir != "" {
		period := o.ObsSamplePeriod
		if period == 0 {
			period = 10_000
		}
		ob = &obs.Observer{
			Registry:     obs.NewRegistry(),
			SamplePeriod: period,
			Series:       &obs.TimeSeries{},
		}
		cfg.Observer = ob
	}
	p := pipeline.MustNew(cfg, gen, ctrl)
	res := p.Run(n)
	if ob != nil {
		writeObsArtifacts(o.ObsDir, id, res, ob)
	}
	return res
}

// writeObsArtifacts exports one run's time series and metrics snapshot.
// Export failures are reported on stderr rather than aborting a sweep that
// may already be hours in.
func writeObsArtifacts(dir, id string, res pipeline.Result, ob *obs.Observer) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: obs dir: %v\n", err)
		return
	}
	base := fmt.Sprintf("%s-%s-%s", id, res.Benchmark, res.Policy)
	export := func(name string, write func(*os.File) error) {
		f, err := os.Create(filepath.Join(dir, name))
		if err == nil {
			err = write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: obs export %s: %v\n", name, err)
		}
	}
	export(base+".series.csv", func(f *os.File) error { return ob.Series.WriteCSV(f) })
	export(base+".metrics.json", func(f *os.File) error { return ob.Registry.Snapshot().WriteJSON(f) })
}

// Registry maps experiment IDs to their drivers.
func Registry() map[string]func(Options) []*Table {
	return map[string]func(Options) []*Table{
		"params": func(o Options) []*Table { return []*Table{Params()} },
		"table3": func(o Options) []*Table { return []*Table{Table3(o)} },
		"fig3":   func(o Options) []*Table { return []*Table{Fig3(o)} },
		"table4": func(o Options) []*Table { return []*Table{Table4(o)} },
		"fig5":   func(o Options) []*Table { return []*Table{Fig5(o)} },
		"fig6":   func(o Options) []*Table { return []*Table{Fig6(o)} },
		"fig7":   func(o Options) []*Table { return []*Table{Fig7(o)} },
		"fig8":   func(o Options) []*Table { return []*Table{Fig8(o)} },
		"sens":   func(o Options) []*Table { return []*Table{Sensitivity(o)} },
		"ablate": func(o Options) []*Table { return []*Table{Ablations(o)} },
		// Extensions beyond the paper's figures: the §4.2 leakage
		// argument quantified, and the §1/§8 multi-threaded
		// partitioning proposal.
		"ext-energy": func(o Options) []*Table { return []*Table{Energy(o)} },
		"ext-smt":    func(o Options) []*Table { return []*Table{SMT(o)} },
	}
}

// IDs returns the registered experiment IDs in a stable order.
func IDs() []string {
	ids := make([]string, 0)
	for id := range Registry() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Params renders the Table 1/Table 2 configuration parameters actually used.
func Params() *Table {
	cfg := pipeline.DefaultConfig()
	t := &Table{
		ID:      "params",
		Title:   "Simulator parameters (paper Tables 1 and 2)",
		Columns: []string{"value"},
	}
	add := func(name, val string) {
		t.Rows = append(t.Rows, Row{Name: name, Cells: []Cell{Str(val)}})
	}
	add("clusters", fmt.Sprintf("%d", cfg.Clusters))
	add("fetch queue / width", fmt.Sprintf("%d / %d (<=2 basic blocks)", cfg.FetchQueue, cfg.FetchWidth))
	add("dispatch / commit width", fmt.Sprintf("%d / %d", cfg.DispatchWidth, cfg.CommitWidth))
	add("branch mispredict penalty", fmt.Sprintf(">= %d cycles", cfg.FrontLatency))
	add("issue queue / cluster", fmt.Sprintf("%d (int and fp each)", cfg.IQPerCluster))
	add("registers / cluster", fmt.Sprintf("%d (int and fp each)", cfg.RegsPerCluster))
	add("ROB", fmt.Sprintf("%d", cfg.ROB))
	add("FUs / cluster", fmt.Sprintf("intALU %d, intMulDiv %d, fpALU %d, fpMulDiv %d", cfg.IntALU, cfg.IntMulDiv, cfg.FPALU, cfg.FPMulDiv))
	add("LSQ / cluster", fmt.Sprintf("%d", cfg.LSQPerCluster))
	add("interconnect", fmt.Sprintf("ring (2 unidirectional), %d cycle/hop", cfg.HopLatency))
	add("centralized L1", "32KB 2-way, 32B lines, 4 banks, 6-cycle RAM")
	add("decentralized L1", "16KB 2-way, 8B lines, 1 bank/cluster, 4-cycle RAM")
	add("L2", "2MB 8-way, 25 cycles, at cluster 0")
	add("memory", "160 cycles + bus occupancy")
	add("distant-ILP depth", fmt.Sprintf("%d instructions", cfg.DistantDepth))
	return t
}
