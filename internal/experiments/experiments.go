// Package experiments regenerates every table and figure of the paper's
// evaluation section. Each experiment returns a Table whose rows/series
// match what the paper reports; EXPERIMENTS.md records the paper-vs-
// measured comparison. Absolute numbers are not expected to match (the
// substrate is a from-scratch simulator with synthetic workloads); the
// shape — who wins, by roughly what factor, where crossovers fall — is the
// reproduction target.
package experiments

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"clustersim/internal/check"
	"clustersim/internal/obs"
	"clustersim/internal/pipeline"
	"clustersim/internal/policy"
	"clustersim/internal/runner"
	"clustersim/internal/spec"
	"clustersim/internal/telemetry"
	"clustersim/internal/workload"
)

// Options control experiment scale.
type Options struct {
	// Seed seeds every workload (results are deterministic per seed).
	Seed uint64
	// Scale multiplies the per-benchmark simulation windows; 1.0 is the
	// calibrated default, smaller values trade fidelity for speed (the
	// Go benchmarks use ~0.1).
	Scale float64
	// Benchmarks restricts the benchmark set (nil = all nine).
	Benchmarks []string
	// ObsDir, when set, attaches an observability registry with
	// cycle-sampled probes to every simulated run and writes per-run
	// time-series CSVs plus metrics snapshots under this directory
	// (e.g. results/obs). Empty disables instrumentation.
	ObsDir string
	// ObsSamplePeriod is the probe sampling period in cycles when ObsDir
	// is set (0 = every 10K cycles).
	ObsSamplePeriod uint64
	// Check attaches a fresh fail-fast cycle-level invariant checker
	// (internal/check) to every simulated run; the first violation aborts
	// the sweep with an error naming the offending run. Checked runs are
	// never cache-elided, so sweeps re-simulate repeated configurations.
	Check bool
	// Parallel is the sweep worker-pool width (0 = GOMAXPROCS). Results
	// are bit-identical at any width: every run is a shared-nothing
	// simulator instance seeded from (benchmark, Seed) alone.
	Parallel int
	// Runner, when non-nil, executes the sweeps; sharing one Runner
	// across experiments shares its content-addressed run cache, so
	// configurations repeated between figures simulate once. Nil builds
	// a private runner with Parallel workers per experiment.
	Runner *runner.Runner
	// Phases, when non-nil, is attached to every simulated run so the
	// sweep's wall-clock time is attributed to pipeline phases
	// (aggregated across the whole pool; attribution-only, results are
	// bit-identical with or without it).
	Phases *telemetry.PhaseTimer
	// Specs maps workload names to parsed declarative specs: a
	// Benchmarks entry naming a key here simulates the spec-compiled
	// stream instead of a built-in generator. Spec workloads are cached
	// and checkpointed under the spec's content fingerprint.
	Specs map[string]*spec.Spec
	// ReplayTraceDir, when set, replays every workload from a recorded
	// trace file (see TraceFileName) instead of generating it live —
	// byte-identical to live generation by the trace round-trip
	// contract. Traces must have been recorded with at least the sweep's
	// windows plus fetch headroom (RecordTraces does this); cache keys
	// use the trace's content fingerprint.
	ReplayTraceDir string
	// TraceCache, when non-nil, shares loaded traces across the sweep's
	// requests (one file read and one in-memory copy per workload
	// instead of one per cell). Optional: without it every replayed run
	// re-reads its file.
	TraceCache *TraceCache
	// PolicySpecs selects the controllers for the "policy" and
	// "counterfactual" experiments (nil = the paper's controllers). The
	// first spec is the counterfactual base policy; the rest are the
	// alternatives.
	PolicySpecs []*policy.Spec
	// CounterfactualK bounds how many alternative policies the
	// "counterfactual" experiment replays against the base policy's
	// decision trace (0 = 3).
	CounterfactualK int
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1
	}
	return o.Scale
}

func (o Options) benchmarks() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	names := workload.Benchmarks()
	if len(o.Specs) > 0 {
		builtin := make(map[string]bool, len(names))
		for _, n := range names {
			builtin[n] = true
		}
		var extra []string
		for n := range o.Specs {
			if !builtin[n] {
				extra = append(extra, n)
			}
		}
		sort.Strings(extra)
		names = append(names, extra...)
	}
	return names
}

// window returns the simulation window for a benchmark: long enough to
// cover its full phase cycle several times.
// Window returns the calibrated simulation window for a benchmark (long
// enough to cover its full phase cycle), scaled by Scale.
func (o Options) Window(bench string) uint64 {
	base := map[string]uint64{
		"cjpeg":  2_000_000,
		"crafty": 3_000_000,
		"djpeg":  1_800_000,
		"galgel": 1_800_000,
		"gzip":   3_400_000,
		"mgrid":  2_400_000,
		"parser": 4_000_000,
		"swim":   2_400_000,
		"vpr":    1_800_000,
	}
	w := base[bench]
	if w == 0 {
		w = 1_800_000
	}
	w = uint64(float64(w) * o.scale())
	if w < 50_000 {
		w = 50_000
	}
	return w
}

// Cell is one table entry.
type Cell struct {
	Text  string
	Value float64
	IsNum bool
}

// Num returns a numeric cell formatted with prec decimals.
func Num(v float64, prec int) Cell {
	return Cell{Text: fmt.Sprintf("%.*f", prec, v), Value: v, IsNum: true}
}

// Str returns a text cell.
func Str(s string) Cell { return Cell{Text: s} }

// Row is one table row.
type Row struct {
	Name  string
	Cells []Cell
}

// Table is one regenerated paper artifact.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    []Row
	Notes   []string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len("benchmark")
	for _, r := range t.Rows {
		if len(r.Name) > widths[0] {
			widths[0] = len(r.Name)
		}
	}
	for i, c := range t.Columns {
		widths[i+1] = len(c)
		for _, r := range t.Rows {
			if i < len(r.Cells) && len(r.Cells[i].Text) > widths[i+1] {
				widths[i+1] = len(r.Cells[i].Text)
			}
		}
	}
	fmt.Fprintf(&b, "%-*s", widths[0]+2, "benchmark")
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", widths[i+1]+2, c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", widths[0]+2, r.Name)
		for i := range t.Columns {
			cell := Cell{Text: "-"}
			if i < len(r.Cells) {
				cell = r.Cells[i]
			}
			fmt.Fprintf(&b, "%*s", widths[i+1]+2, cell.Text)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// geomean returns the geometric mean of positive values.
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// sweeper returns the runner executing this experiment's sweeps.
func (o Options) sweeper() *runner.Runner {
	if o.Runner != nil {
		return o.Runner
	}
	return runner.New(o.Parallel)
}

// salvageable reports whether a sweep error still left usable Results: a
// *runner.SweepError carries every successful cell of the batch (failed cells
// are zero Results), so the driver can render a partial table and return it
// alongside the error. Any other error means the batch never ran.
func salvageable(err error) bool {
	var se *runner.SweepError
	return errors.As(err, &se)
}

// failed reports whether a sweep cell's Result is a salvage gap: a
// successful run always commits instructions, so only a failed (or never
// executed) cell has the zero Result.
func failed(r pipeline.Result) bool { return r.Instructions == 0 }

// ipcCell renders a run's IPC, or "-" when the cell's run failed.
func ipcCell(r pipeline.Result) Cell {
	if failed(r) {
		return Str("-")
	}
	return Num(r.IPC(), 2)
}

// numOrDash renders v with prec decimals, or "-" when v carries no data
// (zero or NaN — the aggregate of an all-failed column).
func numOrDash(v float64, prec int) Cell {
	if v == 0 || math.IsNaN(v) {
		return Str("-")
	}
	return Num(v, prec)
}

// request builds one sweep cell: benchmark bench under controller ctrl for
// the experiment named id. When Options.ObsDir is set, the run carries its
// own observability registry plus cycle-sampled probes and writes
// "<id>-<bench>-<policy>" time-series and metrics artifacts under that
// directory after it executes (such runs are never cache-elided).
func (o Options) request(id, bench string, cfg pipeline.Config, ctrl pipeline.Controller, n uint64) runner.Request {
	req := runner.Request{
		ID:         id,
		Bench:      bench,
		Seed:       o.seed(),
		Window:     n,
		Config:     cfg,
		Controller: ctrl,
	}
	o.bindWorkload(&req)
	req.Config.Phases = o.Phases
	if o.Check {
		// One checker per run: Invariants tracks cumulative counters and
		// must not be shared across processors.
		req.Config.Checker = check.NewFailFast()
	}
	if o.ObsDir != "" {
		period := o.ObsSamplePeriod
		if period == 0 {
			period = 10_000
		}
		ob := &obs.Observer{
			Registry:     obs.NewRegistry(),
			SamplePeriod: period,
			Series:       &obs.TimeSeries{},
		}
		req.Config.Observer = ob
		dir := o.ObsDir
		req.PostRun = func(res pipeline.Result) {
			writeObsArtifacts(dir, id, res, ob)
		}
	}
	return req
}

// writeObsArtifacts exports one run's time series and metrics snapshot.
// Export failures are reported on stderr rather than aborting a sweep that
// may already be hours in.
func writeObsArtifacts(dir, id string, res pipeline.Result, ob *obs.Observer) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: obs dir: %v\n", err)
		return
	}
	base := fmt.Sprintf("%s-%s-%s", id, res.Benchmark, res.Policy)
	export := func(name string, write func(*os.File) error) {
		f, err := os.Create(filepath.Join(dir, name))
		if err == nil {
			err = write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: obs export %s: %v\n", name, err)
		}
	}
	export(base+".series.csv", func(f *os.File) error { return ob.Series.WriteCSV(f) })
	export(base+".metrics.json", func(f *os.File) error { return ob.Registry.Snapshot().WriteJSON(f) })
}

// one adapts a single-table driver to the registry signature. A table is
// passed through even when the driver also reports an error: partial tables
// (salvaged from a *runner.SweepError) carry both.
func one(f func(Options) (*Table, error)) func(Options) ([]*Table, error) {
	return func(o Options) ([]*Table, error) {
		t, err := f(o)
		if t == nil {
			return nil, err
		}
		return []*Table{t}, err
	}
}

// Registry maps experiment IDs to their drivers. When some of a driver's runs
// fail with a *runner.SweepError, the driver salvages the sweep: it returns
// the table built from the successful cells (failed cells render as "-")
// alongside the error, so hours of completed simulation are never discarded
// because one cell crashed. Any other error yields no tables.
func Registry() map[string]func(Options) ([]*Table, error) {
	return map[string]func(Options) ([]*Table, error){
		"params": one(func(o Options) (*Table, error) { return Params(), nil }),
		"table3": one(Table3),
		"fig3":   one(Fig3),
		"table4": one(Table4),
		"fig5":   one(Fig5),
		"fig6":   one(Fig6),
		"fig7":   one(Fig7),
		"fig8":   one(Fig8),
		"sens":   one(Sensitivity),
		"ablate": one(Ablations),
		// Extensions beyond the paper's figures: the §4.2 leakage
		// argument quantified, and the §1/§8 multi-threaded
		// partitioning proposal.
		"ext-energy": one(Energy),
		"ext-smt":    one(SMT),
		// Policy-as-data extensions (internal/policy): the spec-driven
		// policy comparison and the decision-trace counterfactual.
		"policy":         one(PolicyTable),
		"counterfactual": one(Counterfactual),
	}
}

// IDs returns the registered experiment IDs in a stable order.
func IDs() []string {
	ids := make([]string, 0)
	for id := range Registry() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Params renders the Table 1/Table 2 configuration parameters actually used.
func Params() *Table {
	cfg := pipeline.DefaultConfig()
	t := &Table{
		ID:      "params",
		Title:   "Simulator parameters (paper Tables 1 and 2)",
		Columns: []string{"value"},
	}
	add := func(name, val string) {
		t.Rows = append(t.Rows, Row{Name: name, Cells: []Cell{Str(val)}})
	}
	add("clusters", fmt.Sprintf("%d", cfg.Clusters))
	add("fetch queue / width", fmt.Sprintf("%d / %d (<=2 basic blocks)", cfg.FetchQueue, cfg.FetchWidth))
	add("dispatch / commit width", fmt.Sprintf("%d / %d", cfg.DispatchWidth, cfg.CommitWidth))
	add("branch mispredict penalty", fmt.Sprintf(">= %d cycles", cfg.FrontLatency))
	add("issue queue / cluster", fmt.Sprintf("%d (int and fp each)", cfg.IQPerCluster))
	add("registers / cluster", fmt.Sprintf("%d (int and fp each)", cfg.RegsPerCluster))
	add("ROB", fmt.Sprintf("%d", cfg.ROB))
	add("FUs / cluster", fmt.Sprintf("intALU %d, intMulDiv %d, fpALU %d, fpMulDiv %d", cfg.IntALU, cfg.IntMulDiv, cfg.FPALU, cfg.FPMulDiv))
	add("LSQ / cluster", fmt.Sprintf("%d", cfg.LSQPerCluster))
	add("interconnect", fmt.Sprintf("ring (2 unidirectional), %d cycle/hop", cfg.HopLatency))
	add("centralized L1", "32KB 2-way, 32B lines, 4 banks, 6-cycle RAM")
	add("decentralized L1", "16KB 2-way, 8B lines, 1 bank/cluster, 4-cycle RAM")
	add("L2", "2MB 8-way, 25 cycles, at cluster 0")
	add("memory", "160 cycles + bus occupancy")
	add("distant-ILP depth", fmt.Sprintf("%d instructions", cfg.DistantDepth))
	return t
}
