package experiments

import (
	"fmt"

	"clustersim/internal/energy"
	"clustersim/internal/pipeline"
	"clustersim/internal/policy"
	"clustersim/internal/runner"
)

// policySpecs returns the experiment's policy list: Options.PolicySpecs when
// set, otherwise the paper's four controllers.
func (o Options) policySpecs() ([]*policy.Spec, error) {
	if len(o.PolicySpecs) > 0 {
		return o.PolicySpecs, nil
	}
	var specs []*policy.Spec
	for _, name := range []string{"explore", "distant-ilp", "fine-grain", "fine-grain-cr"} {
		s, err := policy.Paper(name)
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// policyLabels renders one display label per spec: the built controller's
// name, disambiguated with a fingerprint suffix when two parameterizations
// of a family share it.
func policyLabels(specs []*policy.Spec) ([]string, error) {
	labels := make([]string, len(specs))
	counts := make(map[string]int, len(specs))
	for i, s := range specs {
		ctrl, err := s.Build()
		if err != nil {
			return nil, err
		}
		labels[i] = ctrl.Name()
		counts[labels[i]]++
	}
	for i, s := range specs {
		if counts[labels[i]] > 1 {
			fp, err := s.Fingerprint()
			if err != nil {
				return nil, err
			}
			labels[i] = fmt.Sprintf("%s@%04x", labels[i], fp&0xffff)
		}
	}
	return labels, nil
}

// policyRequest builds one cacheable sweep request for a policy spec.
func (o Options) policyRequest(id, bench string, spec *policy.Spec) (runner.Request, error) {
	ctrl, err := spec.Build()
	if err != nil {
		return runner.Request{}, err
	}
	key, err := spec.Key()
	if err != nil {
		return runner.Request{}, err
	}
	req := o.request(id, bench, pipeline.DefaultConfig(), ctrl, o.Window(bench))
	req.PolicyKey = key
	return req, nil
}

// PolicyTable compares policy specs head-to-head: per-benchmark IPC for
// every spec (Options.PolicySpecs, defaulting to the paper's controllers),
// with geomean-IPC and multi-objective fitness aggregates (energy per
// instruction, reconfiguration churn, combined score) in the notes.
func PolicyTable(o Options) (*Table, error) {
	specs, err := o.policySpecs()
	if err != nil {
		return nil, err
	}
	labels, err := policyLabels(specs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "policy",
		Title:   "Policy-spec comparison (IPC per policy)",
		Columns: labels,
		Notes: []string{
			"policies built from serializable specs (internal/policy); cache keys include the spec fingerprint",
		},
	}
	benches := o.benchmarks()
	var reqs []runner.Request
	for _, b := range benches {
		for pi := range specs {
			req, err := o.policyRequest(fmt.Sprintf("policy-%d", pi), b, specs[pi])
			if err != nil {
				return nil, fmt.Errorf("policy: %w", err)
			}
			reqs = append(reqs, req)
		}
	}
	rs, err := o.sweeper().RunAll(reqs)
	if err != nil {
		err = fmt.Errorf("policy: %w", err)
		if !salvageable(err) {
			return nil, err
		}
	}

	model := energy.DefaultModel()
	weights := policy.DefaultWeights()
	perPolicy := make([][]policy.Fitness, len(specs))
	for bi, b := range benches {
		row := Row{Name: b}
		for pi := range specs {
			r := rs[bi*len(specs)+pi]
			row.Cells = append(row.Cells, ipcCell(r))
			if !failed(r) {
				perPolicy[pi] = append(perPolicy[pi], policy.Evaluate(r, model, weights))
			}
		}
		t.Rows = append(t.Rows, row)
	}

	gm := Row{Name: "geomean"}
	for pi, label := range labels {
		agg := policy.Aggregate(perPolicy[pi], weights)
		if len(perPolicy[pi]) == 0 {
			gm.Cells = append(gm.Cells, Str("-"))
			continue
		}
		gm.Cells = append(gm.Cells, Num(agg.IPC, 2))
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s: geomean IPC %.2f, energy/instr %.2f, reconfigs/M-instr %.1f, score %.3f",
			label, agg.IPC, agg.EnergyPerInstr, agg.ChurnPerMInstr, agg.Score))
	}
	t.Rows = append(t.Rows, gm)
	return t, err
}

// Counterfactual answers "what would policy B have decided on policy A's
// run?": it records the base policy's decision trace per benchmark (the full
// commit stream the controller saw), replays each alternative policy against
// that exact stream (no simulation), and re-simulates each alternative for
// its exact IPC — separating "the policies disagree" (agreement, replayed
// churn) from "and it matters" (IPC delta).
func Counterfactual(o Options) (*Table, error) {
	specs, err := o.policySpecs()
	if err != nil {
		return nil, err
	}
	base := specs[0]
	alts := specs[1:]
	if len(alts) == 0 {
		// A single spec compares against the remaining paper controllers.
		for _, name := range []string{"distant-ilp", "fine-grain", "static-4"} {
			s, perr := policy.Paper(name)
			if perr != nil {
				return nil, perr
			}
			alts = append(alts, s)
		}
	}
	k := o.CounterfactualK
	if k <= 0 {
		k = 3
	}
	if k < len(alts) {
		alts = alts[:k]
	}
	baseLabel, err := policyLabels([]*policy.Spec{base})
	if err != nil {
		return nil, err
	}
	altLabels, err := policyLabels(alts)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "counterfactual",
		Title: fmt.Sprintf("Counterfactual replay against %s decision traces", baseLabel[0]),
		Columns: []string{
			"base-IPC", "alt-IPC", "dIPC%", "agree", "alt-decisions", "alt-churn/M",
		},
		Notes: []string{
			"agree: fraction of the base run's instructions over which both policies request the same width",
			"alt-IPC re-simulates the alternative (exact); decisions/churn come from trace replay (no simulation)",
		},
	}

	// Phase 1: record the base policy's trace per benchmark. Recording
	// runs bypass the cache (the trace lives on the Recorder instance).
	benches := o.benchmarks()
	cfgFP := pipeline.DefaultConfig().Fingerprint()
	baseFP, err := base.Fingerprint()
	if err != nil {
		return nil, err
	}
	traces := make([]*policy.DecisionTrace, len(benches))
	recReqs := make([]runner.Request, len(benches))
	for bi, b := range benches {
		inner, berr := base.Build()
		if berr != nil {
			return nil, berr
		}
		traces[bi] = &policy.DecisionTrace{Bench: b, Seed: o.seed(), Window: o.Window(b),
			PolicyFP: baseFP, ConfigFP: cfgFP}
		req := o.request("cf-record", b, pipeline.DefaultConfig(),
			policy.NewRecorder(inner, traces[bi]), o.Window(b))
		req.NoCache = true
		recReqs[bi] = req
	}
	baseRes, err := o.sweeper().RunAll(recReqs)
	if err != nil {
		err = fmt.Errorf("counterfactual: %w", err)
		if !salvageable(err) {
			return nil, err
		}
	}

	// Phase 2: re-simulate every alternative (cacheable — these cells are
	// shared with the policy experiment and any search that visited them).
	var simReqs []runner.Request
	for _, b := range benches {
		for ai := range alts {
			req, rerr := o.policyRequest(fmt.Sprintf("cf-alt-%d", ai), b, alts[ai])
			if rerr != nil {
				return nil, fmt.Errorf("counterfactual: %w", rerr)
			}
			simReqs = append(simReqs, req)
		}
	}
	altRes, simErr := o.sweeper().RunAll(simReqs)
	if simErr != nil {
		simErr = fmt.Errorf("counterfactual: %w", simErr)
		if !salvageable(simErr) {
			return nil, simErr
		}
		if err == nil {
			err = simErr
		}
	}

	// Phase 3: replay each alternative against each trace and assemble.
	for bi, b := range benches {
		if failed(baseRes[bi]) {
			for _, al := range altLabels {
				t.Rows = append(t.Rows, Row{Name: b + " vs " + al,
					Cells: []Cell{Str("-"), Str("-"), Str("-"), Str("-"), Str("-"), Str("-")}})
			}
			continue
		}
		trace := traces[bi]
		baseReplay := policy.ReplayResult{Decisions: trace.Decisions}
		for ai, al := range altLabels {
			row := Row{Name: b + " vs " + al}
			r := altRes[bi*len(alts)+ai]
			altCtrl, berr := alts[ai].Build()
			if berr != nil {
				return nil, berr
			}
			rr := trace.Replay(altCtrl)
			baseIPC := baseRes[bi].IPC()
			row.Cells = append(row.Cells, Num(baseIPC, 2))
			if failed(r) {
				row.Cells = append(row.Cells, Str("-"), Str("-"))
			} else {
				row.Cells = append(row.Cells,
					Num(r.IPC(), 2),
					Num(100*(r.IPC()-baseIPC)/baseIPC, 1))
			}
			row.Cells = append(row.Cells,
				Num(trace.Agreement(baseReplay.Decisions, rr.Decisions), 2),
				Num(float64(len(rr.Decisions)), 0),
				Num(rr.ChurnPerMInstr(baseRes[bi].Instructions), 1))
			t.Rows = append(t.Rows, row)
		}
	}
	return t, err
}
