package smt

import (
	"testing"

	"clustersim/internal/pipeline"
)

func TestEqualPartition(t *testing.T) {
	p := EqualPartition{}
	got := p.Partition(make([]ThreadStats, 2), 16)
	if got[0] != 8 || got[1] != 8 {
		t.Fatalf("equal split %v", got)
	}
	got = p.Partition(make([]ThreadStats, 3), 2)
	for _, v := range got {
		if v < 1 {
			t.Fatalf("allotment below 1: %v", got)
		}
	}
}

func TestDistantILPPartitionApportions(t *testing.T) {
	p := DistantILPPartition{}
	stats := []ThreadStats{
		{DistantFrac: 0.9, IPC: 2.0}, // ILP-hungry
		{DistantFrac: 0.1, IPC: 0.8}, // serial
	}
	got := p.Partition(stats, 16)
	if got[0]+got[1] != 16 {
		t.Fatalf("split %v does not use the chip", got)
	}
	if got[0] <= got[1] {
		t.Fatalf("hungry thread got %d <= serial thread's %d", got[0], got[1])
	}
	if got[1] < 2 {
		t.Fatalf("floor violated: %v", got)
	}
	// No demand signal: spread evenly.
	even := p.Partition(make([]ThreadStats, 2), 16)
	if even[0] != 8 || even[1] != 8 {
		t.Fatalf("no-signal split %v", even)
	}
}

func TestDistantILPPartitionSumInvariant(t *testing.T) {
	p := DistantILPPartition{}
	for _, stats := range [][]ThreadStats{
		{{DistantFrac: 0.5, IPC: 1}, {DistantFrac: 0.5, IPC: 2}, {DistantFrac: 0.5, IPC: 1}},
		{{DistantFrac: 0.33, IPC: 0.5}, {DistantFrac: 0.66, IPC: 3}},
		{{DistantFrac: 1, IPC: 2}, {DistantFrac: 0, IPC: 1}, {DistantFrac: 0.2, IPC: 1}, {DistantFrac: 0.7, IPC: 2}},
	} {
		got := p.Partition(stats, 16)
		sum := 0
		for _, v := range got {
			if v < 1 {
				t.Fatalf("allotment %v has entry below 1", got)
			}
			sum += v
		}
		if sum != 16 {
			t.Fatalf("allotments %v sum to %d", got, sum)
		}
	}
}

func TestSystemValidation(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	if _, err := New(cfg, nil, 16, EqualPartition{}); err == nil {
		t.Fatal("no threads accepted")
	}
	if _, err := New(cfg, []Thread{{Bench: "gzip"}, {Bench: "vpr"}}, 1, EqualPartition{}); err == nil {
		t.Fatal("1 cluster for 2 threads accepted")
	}
	if _, err := New(cfg, []Thread{{Bench: "nope"}}, 16, EqualPartition{}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := New(cfg, []Thread{{Bench: "gzip"}, {Bench: "vpr"}}, 16,
		FixedPartition{Split: []int{12, 12}}); err == nil {
		t.Fatal("oversubscribed fixed split accepted")
	}
}

func TestCoScheduleRuns(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	sys, err := New(cfg, []Thread{
		{Bench: "swim", Seed: 1},
		{Bench: "vpr", Seed: 1},
	}, 16, EqualPartition{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(5, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 5 || rep.Cycles != 50_000 {
		t.Fatalf("report %+v", rep)
	}
	if rep.Throughput() <= 0 {
		t.Fatal("no combined throughput")
	}
	for i := range rep.ThreadIPC {
		if rep.ThreadIPC[i] <= 0 {
			t.Fatalf("thread %d made no progress", i)
		}
		if got := rep.AvgClusters(i); got != 8 {
			t.Fatalf("thread %d avg clusters %f under equal split", i, got)
		}
	}
}

func TestAdaptivePartitionFavorsILP(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := pipeline.DefaultConfig()
	mk := func(pol PartitionPolicy) Report {
		sys, err := New(cfg, []Thread{
			{Bench: "swim", Seed: 1}, // distant ILP: wants width
			{Bench: "vpr", Seed: 1},  // serial: cedes width
		}, 16, pol)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.Run(30, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	adaptive := mk(DistantILPPartition{})
	equal := mk(EqualPartition{})
	if adaptive.AvgClusters(0) <= equal.AvgClusters(0) {
		t.Fatalf("adaptive gave swim %.1f clusters, equal gave %.1f",
			adaptive.AvgClusters(0), equal.AvgClusters(0))
	}
	if adaptive.Repartitions == 0 {
		t.Fatal("adaptive policy never repartitioned")
	}
	// Combined throughput should not be hurt by shifting clusters toward
	// the thread that can use them.
	if adaptive.Throughput() < equal.Throughput()*0.97 {
		t.Fatalf("adaptive throughput %.3f well below equal %.3f",
			adaptive.Throughput(), equal.Throughput())
	}
}

func TestFixedPartitionName(t *testing.T) {
	if (FixedPartition{Split: []int{4, 12}}).Name() == "" {
		t.Fatal("empty name")
	}
	if (EqualPartition{}).Name() != "equal" || (DistantILPPartition{}).Name() != "distant-ilp" {
		t.Fatal("policy names wrong")
	}
}
