// Package smt implements the paper's stated future-work direction (§1, §8):
// improving multi-threaded throughput "by avoiding cross-thread
// interference by dynamically dedicating a set of clusters to each thread."
//
// Each thread runs on its own dedicated cluster partition of the chip; the
// partitions are disjoint, so threads interfere neither in issue queues nor
// on the interconnect — exactly the isolation the paper argues dedication
// buys. Partition sizes can be fixed or retuned at run time by a
// PartitionPolicy that observes per-thread statistics (the same distant-ILP
// metric the single-thread controllers use): a thread in a distant-ILP
// phase bids for more clusters, a serial thread cedes them.
//
// Modelling note: each partition is simulated as an independent machine
// restricted to its allotment (every thread sees its own front end and its
// partition's slice of the cache); shared-structure contention between
// partitions is deliberately absent, matching the paper's dedication
// argument. Within a thread, all of the single-thread machinery (steering,
// LSQ, interconnect contention, reconfiguration draining) is live.
package smt

import (
	"fmt"

	"clustersim/internal/pipeline"
	"clustersim/internal/workload"
)

// Thread names one hardware context's program.
type Thread struct {
	// Bench is the benchmark name (see workload.Benchmarks).
	Bench string
	// Seed seeds the thread's instruction stream.
	Seed uint64
	// Gen, when non-nil, supplies the thread's instruction stream
	// directly (spec-compiled or trace-replayed workloads); Bench and
	// Seed then only label the thread. Generators are stateful: every
	// thread needs its own instance.
	Gen workload.Generator
}

// ThreadStats summarizes one thread's most recent scheduling epoch for the
// partitioning policy.
type ThreadStats struct {
	// Clusters is the thread's current allotment.
	Clusters int
	// IPC is the epoch's instructions per cycle.
	IPC float64
	// DistantFrac is the fraction of the epoch's committed instructions
	// that issued distant (≥120 behind the ROB head) — the demand signal.
	DistantFrac float64
}

// PartitionPolicy decides cluster allotments.
type PartitionPolicy interface {
	// Name identifies the policy.
	Name() string
	// Partition returns the new allotment per thread; the sum must not
	// exceed total and every entry must be ≥1. It is called before the
	// first epoch (with zero-valued stats) and after every epoch.
	Partition(stats []ThreadStats, total int) []int
}

// EqualPartition divides the chip evenly.
type EqualPartition struct{}

// Name implements PartitionPolicy.
func (EqualPartition) Name() string { return "equal" }

// Partition implements PartitionPolicy.
func (EqualPartition) Partition(stats []ThreadStats, total int) []int {
	n := len(stats)
	out := make([]int, n)
	for i := range out {
		out[i] = total / n
		if out[i] < 1 {
			out[i] = 1
		}
	}
	return out
}

// FixedPartition pins explicit allotments.
type FixedPartition struct {
	// Split is the per-thread allotment.
	Split []int
}

// Name implements PartitionPolicy.
func (f FixedPartition) Name() string { return fmt.Sprintf("fixed%v", f.Split) }

// Partition implements PartitionPolicy.
func (f FixedPartition) Partition(stats []ThreadStats, total int) []int {
	out := make([]int, len(f.Split))
	copy(out, f.Split)
	return out
}

// DistantILPPartition reallocates clusters in proportion to each thread's
// capacity to convert them into throughput: the product of its measured
// distant-ILP fraction (window parallelism, the §4.3 signal) and its IPC
// (the rate at which that parallelism retires). Distant fraction alone is
// misleading across threads — a slow thread's window is always deep simply
// because its head moves slowly. Threads never drop below Min clusters.
type DistantILPPartition struct {
	// Min is the floor per thread (default 2).
	Min int
}

// Name implements PartitionPolicy.
func (DistantILPPartition) Name() string { return "distant-ilp" }

// Partition implements PartitionPolicy.
func (d DistantILPPartition) Partition(stats []ThreadStats, total int) []int {
	min := d.Min
	if min <= 0 {
		min = 2
	}
	n := len(stats)
	out := make([]int, n)
	if n == 0 {
		return out
	}
	if min*n > total {
		min = total / n
		if min < 1 {
			min = 1
		}
	}
	// Floor allotment, then distribute the remainder by demand. The raw
	// distant fractions sit in a compressed range (every thread's window
	// is deep in absolute terms), so the signal is sharpened, then
	// weighted by the thread's achieved IPC: clusters flow to the thread
	// that both has window parallelism and retires it quickly.
	sharpen := func(s ThreadStats) float64 {
		f := s.DistantFrac
		return f * f * f * f * (s.IPC + 0.01)
	}
	remaining := total - min*n
	var demand float64
	for _, s := range stats {
		demand += sharpen(s)
	}
	for i := range out {
		out[i] = min
	}
	if demand <= 0 {
		// No signal yet (first epoch): spread evenly.
		for i := 0; remaining > 0; i = (i + 1) % n {
			out[i]++
			remaining--
		}
		return out
	}
	// Largest-remainder apportionment of the spare clusters.
	type share struct {
		idx  int
		frac float64
	}
	shares := make([]share, n)
	assigned := 0
	for i, s := range stats {
		exact := float64(remaining) * sharpen(s) / demand
		whole := int(exact)
		out[i] += whole
		assigned += whole
		shares[i] = share{idx: i, frac: exact - float64(whole)}
	}
	for left := remaining - assigned; left > 0; left-- {
		best := 0
		for i := 1; i < n; i++ {
			if shares[i].frac > shares[best].frac {
				best = i
			}
		}
		out[shares[best].idx]++
		shares[best].frac = -1
	}
	return out
}

// System co-schedules threads on one chip under a partitioning policy.
type System struct {
	total  int
	policy PartitionPolicy
	procs  []*pipeline.Processor
	ctrls  []*allotment

	lastInstr   []uint64
	lastDistant []uint64
	lastCycle   []uint64

	report Report
}

// allotment is a pipeline.Controller pinning a thread to its partition.
type allotment struct{ n int }

func (a *allotment) Name() string                         { return "smt-allotment" }
func (a *allotment) Reset(int)                            {}
func (a *allotment) OnCommit(ev pipeline.CommitEvent) int { return a.n }

// Report accumulates a co-schedule's outcome.
type Report struct {
	// Epochs is the number of completed scheduling epochs.
	Epochs uint64
	// Cycles is the simulated time.
	Cycles uint64
	// Instructions is the per-thread committed total.
	Instructions []uint64
	// ThreadIPC is the per-thread overall IPC.
	ThreadIPC []float64
	// Partitions counts, per thread, the cluster-cycles allotted.
	Partitions []uint64
	// Repartitions counts allotment changes.
	Repartitions uint64
}

// Throughput returns total committed instructions per cycle across threads.
func (r Report) Throughput() float64 {
	if r.Cycles == 0 {
		return 0
	}
	var sum uint64
	for _, n := range r.Instructions {
		sum += n
	}
	return float64(sum) / float64(r.Cycles)
}

// AvgClusters returns thread i's average allotment.
func (r Report) AvgClusters(i int) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Partitions[i]) / float64(r.Cycles)
}

// New builds a co-scheduled system over total clusters. cfg supplies the
// per-partition machine parameters (cluster count and active count are
// overridden by the policy).
func New(cfg pipeline.Config, threads []Thread, total int, policy PartitionPolicy) (*System, error) {
	if len(threads) == 0 {
		return nil, fmt.Errorf("smt: no threads")
	}
	if total < len(threads) {
		return nil, fmt.Errorf("smt: %d clusters cannot host %d threads", total, len(threads))
	}
	s := &System{total: total, policy: policy}
	init := policy.Partition(make([]ThreadStats, len(threads)), total)
	if err := validSplit(init, len(threads), total); err != nil {
		return nil, err
	}
	for i, th := range threads {
		gen := th.Gen
		if gen == nil {
			var err error
			if gen, err = workload.New(th.Bench, th.Seed); err != nil {
				return nil, err
			}
		}
		c := cfg
		c.Clusters = total
		c.ActiveClusters = init[i]
		ctrl := &allotment{n: init[i]}
		p, err := pipeline.New(c, gen, ctrl)
		if err != nil {
			return nil, err
		}
		s.procs = append(s.procs, p)
		s.ctrls = append(s.ctrls, ctrl)
	}
	n := len(threads)
	s.lastInstr = make([]uint64, n)
	s.lastDistant = make([]uint64, n)
	s.lastCycle = make([]uint64, n)
	s.report.Instructions = make([]uint64, n)
	s.report.ThreadIPC = make([]float64, n)
	s.report.Partitions = make([]uint64, n)
	return s, nil
}

func validSplit(split []int, n, total int) error {
	if len(split) != n {
		return fmt.Errorf("smt: policy returned %d allotments for %d threads", len(split), n)
	}
	sum := 0
	for _, v := range split {
		if v < 1 {
			return fmt.Errorf("smt: allotment %d below 1", v)
		}
		sum += v
	}
	if sum > total {
		return fmt.Errorf("smt: allotments sum to %d > %d clusters", sum, total)
	}
	return nil
}

// Run co-simulates for the given number of epochs of epochCycles each,
// repartitioning between epochs, and returns the accumulated report.
func (s *System) Run(epochs int, epochCycles uint64) (Report, error) {
	for e := 0; e < epochs; e++ {
		stats := make([]ThreadStats, len(s.procs))
		for i, p := range s.procs {
			r, err := p.RunCycles(epochCycles)
			if err != nil {
				return s.report, fmt.Errorf("smt: thread %d: %w", i, err)
			}
			dInstr := r.Instructions - s.lastInstr[i]
			dDist := r.DistantCommitted - s.lastDistant[i]
			dCyc := r.Cycles - s.lastCycle[i]
			s.lastInstr[i] = r.Instructions
			s.lastDistant[i] = r.DistantCommitted
			s.lastCycle[i] = r.Cycles
			st := ThreadStats{Clusters: s.ctrls[i].n}
			if dCyc > 0 {
				st.IPC = float64(dInstr) / float64(dCyc)
			}
			if dInstr > 0 {
				st.DistantFrac = float64(dDist) / float64(dInstr)
			}
			stats[i] = st
			s.report.Partitions[i] += uint64(s.ctrls[i].n) * epochCycles
		}
		split := s.policy.Partition(stats, s.total)
		if err := validSplit(split, len(s.procs), s.total); err != nil {
			return s.report, err
		}
		for i, n := range split {
			if n != s.ctrls[i].n {
				s.ctrls[i].n = n
				s.report.Repartitions++
			}
		}
		s.report.Epochs++
		s.report.Cycles += epochCycles
	}
	for i, p := range s.procs {
		s.report.Instructions[i] = p.Committed()
		if p.Cycle() > 0 {
			s.report.ThreadIPC[i] = float64(p.Committed()) / float64(p.Cycle())
		}
	}
	return s.report, nil
}
