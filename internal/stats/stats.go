// Package stats provides the program-phase statistics machinery behind the
// paper's Table 4: per-interval metric traces, coarsening to longer interval
// lengths, and the instability-factor analysis that determines each
// program's minimum acceptable interval length.
package stats

import (
	"fmt"
	"math"

	"clustersim/internal/pipeline"
)

// Interval holds the metrics of one measurement interval: the three
// quantities the paper uses to define a phase (IPC, branch frequency,
// memory-reference frequency) plus the distant-ILP count.
type Interval struct {
	Instructions uint64
	Cycles       uint64
	Branches     uint64
	Memrefs      uint64
	Distant      uint64
}

// IPC returns the interval's instructions per cycle.
func (iv Interval) IPC() float64 {
	if iv.Cycles == 0 {
		return 0
	}
	return float64(iv.Instructions) / float64(iv.Cycles)
}

// Recorder is a pipeline.Controller that never reconfigures; it records a
// metric trace at a base interval granularity for offline phase analysis
// (the methodology of §4.1: "we ran each of the programs ... to generate a
// trace of various statistics at regular 10K instruction intervals").
type Recorder struct {
	// Base is the base interval length in instructions (default 10K).
	Base uint64
	// Clusters pins the active cluster count while recording (0 keeps
	// the machine's configured count).
	Clusters int

	intervals  []Interval
	cur        Interval
	startCycle uint64
	haveStart  bool
}

// NewRecorder returns a Recorder with the given base interval length.
func NewRecorder(base uint64) *Recorder {
	if base == 0 {
		base = 10_000
	}
	return &Recorder{Base: base}
}

// Name implements pipeline.Controller.
func (r *Recorder) Name() string { return fmt.Sprintf("recorder-%d", r.Base) }

// Reset implements pipeline.Controller.
func (r *Recorder) Reset(totalClusters int) {
	r.intervals = r.intervals[:0]
	r.cur = Interval{}
	r.haveStart = false
}

// OnCommit implements pipeline.Controller.
func (r *Recorder) OnCommit(ev pipeline.CommitEvent) int {
	if !r.haveStart {
		r.startCycle = ev.Cycle
		r.haveStart = true
	}
	r.cur.Instructions++
	if ev.IsBranch || ev.IsCall || ev.IsReturn {
		r.cur.Branches++
	}
	if ev.IsMem {
		r.cur.Memrefs++
	}
	if ev.Distant {
		r.cur.Distant++
	}
	if r.cur.Instructions == r.Base {
		r.cur.Cycles = ev.Cycle - r.startCycle
		r.intervals = append(r.intervals, r.cur)
		r.cur = Interval{}
		r.haveStart = false
	}
	return r.Clusters
}

// Intervals returns the recorded trace (whole intervals only).
func (r *Recorder) Intervals() []Interval { return r.intervals }

var _ pipeline.Controller = (*Recorder)(nil)

// Aggregate coarsens a trace by combining k consecutive intervals into one.
// Trailing partial groups are dropped.
func Aggregate(trace []Interval, k int) []Interval {
	if k <= 1 {
		out := make([]Interval, len(trace))
		copy(out, trace)
		return out
	}
	out := make([]Interval, 0, len(trace)/k)
	for i := 0; i+k <= len(trace); i += k {
		var agg Interval
		for _, iv := range trace[i : i+k] {
			agg.Instructions += iv.Instructions
			agg.Cycles += iv.Cycles
			agg.Branches += iv.Branches
			agg.Memrefs += iv.Memrefs
			agg.Distant += iv.Distant
		}
		out = append(out, agg)
	}
	return out
}

// Thresholds mirror the significance tests of §4.1/Figure 4.
type Thresholds struct {
	// IPCDelta is the relative IPC difference treated as a phase change.
	IPCDelta float64
	// MetricDelta is the branch/memref-count difference treated as a
	// phase change, as a fraction of the interval's instructions.
	MetricDelta float64
}

// DefaultThresholds matches the controllers' defaults.
func DefaultThresholds() Thresholds {
	return Thresholds{IPCDelta: 0.25, MetricDelta: 0.01}
}

// Instability computes the paper's §4.1 instability factor for a trace: the
// percentage of intervals that are "unstable". The first interval of each
// phase is the reference; an ensuing interval is stable if all three
// metrics stay within thresholds, and otherwise it is unstable and opens a
// new phase.
func Instability(trace []Interval, th Thresholds) float64 {
	if len(trace) < 2 {
		return 0
	}
	ref := trace[0]
	unstable := 0
	for _, iv := range trace[1:] {
		if differs(iv, ref, th) {
			unstable++
			ref = iv
		}
	}
	return 100 * float64(unstable) / float64(len(trace)-1)
}

func differs(a, ref Interval, th Thresholds) bool {
	n := float64(a.Instructions)
	if math.Abs(float64(a.Branches)-float64(ref.Branches)) > th.MetricDelta*n {
		return true
	}
	if math.Abs(float64(a.Memrefs)-float64(ref.Memrefs)) > th.MetricDelta*n {
		return true
	}
	refIPC := ref.IPC()
	if refIPC == 0 {
		return a.IPC() != 0
	}
	return math.Abs(a.IPC()-refIPC)/refIPC > th.IPCDelta
}

// InstabilityCurve evaluates the instability factor at each interval length
// base*mult for the given multipliers, returning one value per multiplier.
func InstabilityCurve(trace []Interval, mults []int, th Thresholds) []float64 {
	out := make([]float64, len(mults))
	for i, m := range mults {
		out[i] = Instability(Aggregate(trace, m), th)
	}
	return out
}

// MinStableInterval returns the smallest interval length base*mult (trying
// the given multipliers in ascending order) whose instability factor is
// below maxInstability percent, together with that factor. If none
// qualifies it returns the largest tried.
func MinStableInterval(trace []Interval, base uint64, mults []int, maxInstability float64, th Thresholds) (length uint64, factor float64) {
	for _, m := range mults {
		agg := Aggregate(trace, m)
		if len(agg) < 2 {
			// Too coarse to judge; treat as stable at this length.
			return base * uint64(m), 0
		}
		f := Instability(agg, th)
		if f < maxInstability {
			return base * uint64(m), f
		}
		length, factor = base*uint64(m), f
	}
	return length, factor
}
