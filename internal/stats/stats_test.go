package stats

import (
	"testing"
	"testing/quick"

	"clustersim/internal/pipeline"
	"clustersim/internal/workload"
)

func mkInterval(instrs, cycles, br, mem uint64) Interval {
	return Interval{Instructions: instrs, Cycles: cycles, Branches: br, Memrefs: mem}
}

func TestIntervalIPC(t *testing.T) {
	if (Interval{}).IPC() != 0 {
		t.Fatal("zero interval IPC")
	}
	if got := mkInterval(100, 50, 0, 0).IPC(); got != 2 {
		t.Fatalf("IPC %f", got)
	}
}

func TestRecorderCollectsIntervals(t *testing.T) {
	r := NewRecorder(1000)
	r.Reset(16)
	p := pipeline.MustNew(pipeline.DefaultConfig(), workload.MustNew("gzip", 1), r)
	mustRun(t, p, 25_000)
	ivs := r.Intervals()
	if len(ivs) < 20 {
		t.Fatalf("got %d intervals, want >= 20", len(ivs))
	}
	for i, iv := range ivs {
		if iv.Instructions != 1000 {
			t.Fatalf("interval %d has %d instructions", i, iv.Instructions)
		}
		if iv.Cycles == 0 {
			t.Fatalf("interval %d has zero cycles", i)
		}
		if iv.Branches == 0 || iv.Memrefs == 0 {
			t.Fatalf("interval %d missing metrics: %+v", i, iv)
		}
		if iv.Branches+iv.Memrefs > iv.Instructions {
			t.Fatalf("interval %d metrics exceed instructions", i)
		}
	}
}

func TestRecorderPinsClusters(t *testing.T) {
	r := NewRecorder(1000)
	r.Clusters = 4
	p := pipeline.MustNew(pipeline.DefaultConfig(), workload.MustNew("gzip", 1), r)
	mustRun(t, p, 10_000)
	if p.ActiveClusters() != 4 {
		t.Fatalf("recorder did not pin clusters: %d", p.ActiveClusters())
	}
}

func TestAggregate(t *testing.T) {
	trace := []Interval{
		mkInterval(10, 5, 1, 2), mkInterval(10, 5, 1, 2),
		mkInterval(10, 10, 3, 4), mkInterval(10, 10, 3, 4),
		mkInterval(10, 1, 0, 0), // trailing partial group
	}
	agg := Aggregate(trace, 2)
	if len(agg) != 2 {
		t.Fatalf("aggregated %d groups", len(agg))
	}
	if agg[0] != mkInterval(20, 10, 2, 4) {
		t.Fatalf("group 0: %+v", agg[0])
	}
	if agg[1] != mkInterval(20, 20, 6, 8) {
		t.Fatalf("group 1: %+v", agg[1])
	}
	// k<=1 copies.
	same := Aggregate(trace, 1)
	if len(same) != len(trace) {
		t.Fatal("k=1 changed length")
	}
	same[0].Instructions = 999
	if trace[0].Instructions == 999 {
		t.Fatal("k=1 did not copy")
	}
}

// Property: aggregation preserves totals over whole groups.
func TestAggregatePreservesTotals(t *testing.T) {
	f := func(raw []uint8, k8 uint8) bool {
		k := int(k8%4) + 1
		trace := make([]Interval, len(raw))
		for i, v := range raw {
			trace[i] = mkInterval(uint64(v)+1, uint64(v)+2, uint64(v)%7, uint64(v)%5)
		}
		agg := Aggregate(trace, k)
		var wantInstrs, gotInstrs uint64
		n := (len(trace) / k) * k
		for _, iv := range trace[:n] {
			wantInstrs += iv.Instructions
		}
		for _, iv := range agg {
			gotInstrs += iv.Instructions
		}
		return wantInstrs == gotInstrs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateEdgeCases(t *testing.T) {
	trace := []Interval{mkInterval(10, 5, 1, 2), mkInterval(20, 10, 2, 4)}
	// k larger than the trace drops everything.
	if got := Aggregate(trace, 3); len(got) != 0 {
		t.Fatalf("k>len produced %d groups", len(got))
	}
	// k exactly len folds to one group.
	if got := Aggregate(trace, 2); len(got) != 1 || got[0] != mkInterval(30, 15, 3, 6) {
		t.Fatalf("k=len: %+v", got)
	}
	// k<=0 behaves like k=1 (copy).
	if got := Aggregate(trace, 0); len(got) != 2 || got[0] != trace[0] {
		t.Fatalf("k=0: %+v", got)
	}
	if got := Aggregate(nil, 2); len(got) != 0 {
		t.Fatalf("nil trace: %+v", got)
	}
}

func TestRecorderDropsPartialInterval(t *testing.T) {
	r := NewRecorder(0) // 0 selects the 10K default
	if r.Base != 10_000 {
		t.Fatalf("default base %d", r.Base)
	}
	r.Reset(16)
	for i := 0; i < 25_000; i++ {
		r.OnCommit(pipeline.CommitEvent{Cycle: uint64(i * 2)})
	}
	ivs := r.Intervals()
	// 25K commits at base 10K: two whole intervals, the partial third
	// dropped.
	if len(ivs) != 2 {
		t.Fatalf("got %d intervals", len(ivs))
	}
	for i, iv := range ivs {
		if iv.Instructions != 10_000 {
			t.Fatalf("interval %d: %d instructions", i, iv.Instructions)
		}
		if iv.Cycles == 0 {
			t.Fatalf("interval %d: zero cycles", i)
		}
	}
	// Reset clears the trace.
	r.Reset(16)
	if len(r.Intervals()) != 0 {
		t.Fatal("Reset kept intervals")
	}
}

func TestInstabilityUniformTraceIsStable(t *testing.T) {
	trace := make([]Interval, 100)
	for i := range trace {
		trace[i] = mkInterval(1000, 500, 100, 300)
	}
	if got := Instability(trace, DefaultThresholds()); got != 0 {
		t.Fatalf("uniform trace instability %f", got)
	}
}

func TestInstabilityAlternatingTrace(t *testing.T) {
	trace := make([]Interval, 100)
	for i := range trace {
		if i%2 == 0 {
			trace[i] = mkInterval(1000, 500, 100, 300)
		} else {
			trace[i] = mkInterval(1000, 500, 200, 300) // branch surge
		}
	}
	got := Instability(trace, DefaultThresholds())
	if got < 90 {
		t.Fatalf("alternating trace instability %f, want ~100", got)
	}
}

func TestInstabilitySinglePhaseChange(t *testing.T) {
	trace := make([]Interval, 100)
	for i := range trace {
		if i < 50 {
			trace[i] = mkInterval(1000, 500, 100, 300)
		} else {
			trace[i] = mkInterval(1000, 500, 250, 350)
		}
	}
	got := Instability(trace, DefaultThresholds())
	// Exactly one unstable interval out of 99.
	if got < 0.5 || got > 2 {
		t.Fatalf("single phase change instability %f", got)
	}
}

func TestInstabilityIPCOnly(t *testing.T) {
	trace := make([]Interval, 10)
	for i := range trace {
		cycles := uint64(500)
		if i == 5 {
			cycles = 2000 // IPC collapses
		}
		trace[i] = mkInterval(1000, cycles, 100, 300)
	}
	if got := Instability(trace, DefaultThresholds()); got == 0 {
		t.Fatal("IPC collapse not detected")
	}
}

func TestInstabilityShortTraces(t *testing.T) {
	if Instability(nil, DefaultThresholds()) != 0 {
		t.Fatal("nil trace")
	}
	if Instability([]Interval{mkInterval(1, 1, 0, 0)}, DefaultThresholds()) != 0 {
		t.Fatal("singleton trace")
	}
}

func TestAggregationStabilizesAlternation(t *testing.T) {
	// The Table 4 effect: a trace alternating at period 2 is maximally
	// unstable at base granularity and perfectly stable at k=2.
	trace := make([]Interval, 200)
	for i := range trace {
		if i%2 == 0 {
			trace[i] = mkInterval(1000, 400, 100, 300)
		} else {
			trace[i] = mkInterval(1000, 600, 200, 340)
		}
	}
	fine := Instability(trace, DefaultThresholds())
	coarse := Instability(Aggregate(trace, 2), DefaultThresholds())
	if fine < 50 {
		t.Fatalf("fine instability %f", fine)
	}
	if coarse != 0 {
		t.Fatalf("coarse instability %f", coarse)
	}
}

func TestMinStableInterval(t *testing.T) {
	trace := make([]Interval, 240)
	for i := range trace {
		if (i/3)%2 == 0 { // period-6 alternation
			trace[i] = mkInterval(1000, 400, 100, 300)
		} else {
			trace[i] = mkInterval(1000, 600, 220, 350)
		}
	}
	length, factor := MinStableInterval(trace, 10_000, []int{1, 2, 3, 6, 12}, 5, DefaultThresholds())
	if length != 60_000 {
		t.Fatalf("min stable interval %d, want 60000", length)
	}
	if factor >= 5 {
		t.Fatalf("reported factor %f", factor)
	}
}

func TestInstabilityCurveMonotoneForPeriodicTrace(t *testing.T) {
	trace := make([]Interval, 240)
	for i := range trace {
		if (i/4)%2 == 0 {
			trace[i] = mkInterval(1000, 400, 100, 300)
		} else {
			trace[i] = mkInterval(1000, 600, 220, 350)
		}
	}
	curve := InstabilityCurve(trace, []int{1, 8}, DefaultThresholds())
	if curve[1] >= curve[0] {
		t.Fatalf("coarsening did not reduce instability: %v", curve)
	}
}

// TestAnalysisDegenerateInputs is a table of degenerate-input cases across
// the analysis entry points: empty traces, single intervals, aggregation
// coarser than the trace, and empty multiplier lists must all degrade
// gracefully instead of panicking or dividing by zero.
func TestAnalysisDegenerateInputs(t *testing.T) {
	th := DefaultThresholds()
	iv := Interval{Instructions: 10_000, Cycles: 5_000, Branches: 800, Memrefs: 3_000}
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"aggregate empty trace", func(t *testing.T) {
			if got := Aggregate(nil, 4); len(got) != 0 {
				t.Fatalf("got %v", got)
			}
		}},
		{"aggregate coarser than trace drops everything", func(t *testing.T) {
			if got := Aggregate([]Interval{iv, iv}, 3); len(got) != 0 {
				t.Fatalf("got %v", got)
			}
		}},
		{"aggregate k=0 copies", func(t *testing.T) {
			src := []Interval{iv}
			got := Aggregate(src, 0)
			if len(got) != 1 || got[0] != iv {
				t.Fatalf("got %v", got)
			}
			got[0].Cycles++ // must be a copy, not an alias
			if src[0].Cycles != iv.Cycles {
				t.Fatal("Aggregate aliased its input")
			}
		}},
		{"instability of empty and single traces", func(t *testing.T) {
			if f := Instability(nil, th); f != 0 {
				t.Fatalf("empty: %v", f)
			}
			if f := Instability([]Interval{iv}, th); f != 0 {
				t.Fatalf("single: %v", f)
			}
		}},
		{"instability with zero-cycle reference", func(t *testing.T) {
			zero := Interval{Instructions: 10_000}
			if f := Instability([]Interval{zero, zero}, th); f != 0 {
				t.Fatalf("zero-IPC pair should be stable, got %v", f)
			}
			if f := Instability([]Interval{zero, iv}, th); f != 100 {
				t.Fatalf("zero-to-nonzero IPC should be a phase change, got %v", f)
			}
		}},
		{"instability curve with empty multipliers", func(t *testing.T) {
			if got := InstabilityCurve([]Interval{iv, iv}, nil, th); len(got) != 0 {
				t.Fatalf("got %v", got)
			}
		}},
		{"min stable interval on empty trace", func(t *testing.T) {
			length, factor := MinStableInterval(nil, 10_000, []int{1, 4}, 5, th)
			if length != 10_000 || factor != 0 {
				t.Fatalf("got length %d factor %v", length, factor)
			}
		}},
		{"min stable interval with no multipliers", func(t *testing.T) {
			length, factor := MinStableInterval([]Interval{iv, iv}, 10_000, nil, 5, th)
			if length != 0 || factor != 0 {
				t.Fatalf("got length %d factor %v", length, factor)
			}
		}},
		{"interval IPC with zero cycles", func(t *testing.T) {
			if got := (Interval{Instructions: 5}).IPC(); got != 0 {
				t.Fatalf("got %v", got)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.run)
	}
}

// mustRun advances p by n committed instructions, failing the test on error.
func mustRun(tb testing.TB, p *pipeline.Processor, n uint64) pipeline.Result {
	tb.Helper()
	res, err := p.Run(n)
	if err != nil {
		tb.Fatalf("Run: %v", err)
	}
	return res
}
