package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEstimateComponents(t *testing.T) {
	m := Model{
		LeakagePerClusterCycle: 1,
		SharedPerCycle:         2,
		DynamicPerInstr:        3,
		DynamicPerHop:          4,
		DynamicPerCacheAccess:  5,
	}
	a := Activity{
		Cycles:               10,
		Instructions:         20,
		PoweredClusterCycles: 100,
		Hops:                 5,
		CacheAccesses:        2,
	}
	b := m.Estimate(a)
	if b.Leakage != 100 {
		t.Fatalf("leakage %f", b.Leakage)
	}
	if b.Shared != 20 {
		t.Fatalf("shared %f", b.Shared)
	}
	if b.Dynamic != 3*20+4*5+5*2 {
		t.Fatalf("dynamic %f", b.Dynamic)
	}
	if b.Total() != b.Leakage+b.Shared+b.Dynamic {
		t.Fatal("total mismatch")
	}
	if epi := b.EnergyPerInstruction(20); epi != b.Total()/20 {
		t.Fatalf("EPI %f", epi)
	}
	if (Breakdown{}).EnergyPerInstruction(0) != 0 {
		t.Fatal("zero-instruction EPI")
	}
}

func TestLeakageSavings(t *testing.T) {
	m := DefaultModel()
	// Half the clusters powered for the whole run: 50% saving.
	a := Activity{Cycles: 100, PoweredClusterCycles: 800}
	if s := m.LeakageSavings(a, 16); math.Abs(s-0.5) > 1e-9 {
		t.Fatalf("savings %f, want 0.5", s)
	}
	// All clusters powered: no saving.
	a.PoweredClusterCycles = 1600
	if s := m.LeakageSavings(a, 16); s != 0 {
		t.Fatalf("savings %f, want 0", s)
	}
	if m.LeakageSavings(Activity{}, 16) != 0 {
		t.Fatal("zero-cycle savings")
	}
}

// Property: savings are always in [0,1] when powered <= cycles*total, and
// energy is monotone in every activity component.
func TestSavingsBoundedAndMonotone(t *testing.T) {
	m := DefaultModel()
	f := func(cycles uint16, frac uint8, hops uint16) bool {
		c := uint64(cycles) + 1
		powered := c * uint64(frac%17) // 0..16 clusters
		a := Activity{Cycles: c, PoweredClusterCycles: powered, Hops: uint64(hops)}
		s := m.LeakageSavings(a, 16)
		if s < 0 || s > 1 {
			return false
		}
		more := a
		more.Hops++
		return m.Estimate(more).Total() > m.Estimate(a).Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEDPCombinesEnergyAndDelay(t *testing.T) {
	m := DefaultModel()
	fast := Activity{Cycles: 100, Instructions: 1000, PoweredClusterCycles: 1600}
	slow := Activity{Cycles: 200, Instructions: 1000, PoweredClusterCycles: 800}
	// The slow run leaks half per cycle but takes twice as long: its
	// leakage energy ties, and the shared always-on term makes its EDP
	// strictly worse at equal dynamic work.
	if m.EDP(slow) <= m.EDP(fast) {
		t.Fatalf("EDP fast %f vs slow %f", m.EDP(fast), m.EDP(slow))
	}
}

func TestDefaultModelSane(t *testing.T) {
	m := DefaultModel()
	if m.LeakagePerClusterCycle <= 0 || m.SharedPerCycle <= 0 || m.DynamicPerInstr <= 0 {
		t.Fatal("default coefficients must be positive")
	}
}
