// Package energy estimates the energy consequences of cluster disabling,
// quantifying §4.2's observation: "on average, 8.3 of the 16 clusters were
// disabled at any time ... this produces a great savings in leakage energy,
// provided the supply voltage to these unused clusters can be turned off."
//
// The paper reports no absolute energy numbers, so the model is a
// first-order architectural estimator in normalized units (one unit = one
// cluster-cycle of leakage at full supply). It separates:
//
//   - static (leakage) energy, proportional to powered cluster-cycles —
//     the component cluster disabling recovers;
//   - dynamic energy, proportional to committed instructions plus
//     communication activity (network hops and cache accesses), which
//     reconfiguration largely does not change;
//   - always-on front-end/L2 overhead, proportional to cycles.
//
// The defaults follow the common early-2000s architectural assumption that
// leakage approaches half of total chip power at 0.035µ-class technologies
// (the regime the paper targets).
package energy

// Model holds the energy-model coefficients.
type Model struct {
	// LeakagePerClusterCycle is the static energy per powered cluster
	// per cycle.
	LeakagePerClusterCycle float64
	// SharedPerCycle is the always-on (front-end, L2, clock) energy per
	// cycle, expressed in cluster-leakage units.
	SharedPerCycle float64
	// DynamicPerInstr is the switching energy per committed instruction.
	DynamicPerInstr float64
	// DynamicPerHop is the switching energy per interconnect link
	// traversal.
	DynamicPerHop float64
	// DynamicPerCacheAccess is the switching energy per L1 access.
	DynamicPerCacheAccess float64
}

// DefaultModel returns the normalized default coefficients: leakage per
// cluster-cycle is the unit; the shared core leaks like four clusters; a
// committed instruction switches about what two cluster-cycles leak; a hop
// and a cache access cost a quarter of that.
func DefaultModel() Model {
	return Model{
		LeakagePerClusterCycle: 1.0,
		SharedPerCycle:         4.0,
		DynamicPerInstr:        2.0,
		DynamicPerHop:          0.5,
		DynamicPerCacheAccess:  0.5,
	}
}

// Activity is the subset of run statistics the estimator consumes (package
// pipeline's Result satisfies it via Estimate's explicit arguments to avoid
// an import cycle in either direction).
type Activity struct {
	// Cycles and Instructions are the run totals.
	Cycles       uint64
	Instructions uint64
	// PoweredClusterCycles is the per-cycle sum of powered clusters
	// (pipeline.Result.ActiveSum when disabled clusters are gated,
	// Cycles*TotalClusters when they are not).
	PoweredClusterCycles uint64
	// Hops is the total interconnect link traversals.
	Hops uint64
	// CacheAccesses is the total L1 accesses.
	CacheAccesses uint64
}

// Breakdown is an energy estimate in normalized units.
type Breakdown struct {
	Leakage float64
	Shared  float64
	Dynamic float64
}

// Total returns the summed energy.
func (b Breakdown) Total() float64 { return b.Leakage + b.Shared + b.Dynamic }

// EnergyPerInstruction returns total energy divided by instructions.
func (b Breakdown) EnergyPerInstruction(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return b.Total() / float64(instructions)
}

// Estimate computes the energy breakdown of a run.
func (m Model) Estimate(a Activity) Breakdown {
	return Breakdown{
		Leakage: m.LeakagePerClusterCycle * float64(a.PoweredClusterCycles),
		Shared:  m.SharedPerCycle * float64(a.Cycles),
		Dynamic: m.DynamicPerInstr*float64(a.Instructions) +
			m.DynamicPerHop*float64(a.Hops) +
			m.DynamicPerCacheAccess*float64(a.CacheAccesses),
	}
}

// LeakageSavings returns the fractional leakage-energy saving of gating the
// unpowered clusters versus keeping all totalClusters powered for the run.
func (m Model) LeakageSavings(a Activity, totalClusters int) float64 {
	full := float64(a.Cycles) * float64(totalClusters)
	if full == 0 {
		return 0
	}
	return 1 - float64(a.PoweredClusterCycles)/full
}

// EDP returns the energy-delay product (normalized energy x cycles), the
// metric under which both the 11% speedup and the leakage saving of
// adaptive reconfiguration compound.
func (m Model) EDP(a Activity) float64 {
	return m.Estimate(a).Total() * float64(a.Cycles)
}
