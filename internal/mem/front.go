package mem

// Front-end and translation structures from the paper's Table 1 that sit
// outside the L1-data hierarchy: the instruction cache and the TLBs.

// ICache is the L1 instruction cache (Table 1: 32KB 2-way). The front end
// probes it once per fetched cache line; a miss stalls fetch for the L2
// round trip. Timing only — instruction bytes are never stored.
type ICache struct {
	arr         *array
	lineShift   uint   //simlint:nostate geometry, rebuilt by the constructor
	missLatency uint64 //simlint:nostate configuration, rebuilt by the constructor
	hits        uint64
	misses      uint64
}

// ICacheConfig sizes an ICache.
type ICacheConfig struct {
	Size        int
	Line        int
	Ways        int
	MissLatency int
}

// DefaultICacheConfig returns Table 1's 32KB 2-way instruction cache with
// an L2-hit fill latency.
func DefaultICacheConfig() ICacheConfig {
	return ICacheConfig{Size: 32 << 10, Line: 32, Ways: 2, MissLatency: 25}
}

// NewICache builds an ICache.
func NewICache(cfg ICacheConfig) *ICache {
	shift := uint(0)
	for 1<<shift < cfg.Line {
		shift++
	}
	return &ICache{
		arr:         newArray(cfg.Size, cfg.Line, cfg.Ways),
		lineShift:   shift,
		missLatency: uint64(cfg.MissLatency),
	}
}

// LineShift returns log2 of the line size (the front end uses it to detect
// line crossings).
func (c *ICache) LineShift() uint { return c.lineShift }

// Fetch probes the cache for the line holding pc. On a hit it returns 0;
// on a miss it returns the stall in cycles.
//
// The set index is hashed: the synthetic workloads lay basic blocks out at
// large power-of-two strides (real linkers pack code contiguously), which
// would otherwise alias every block into a handful of sets.
func (c *ICache) Fetch(pc uint64) uint64 {
	line := pc >> c.lineShift
	hashed := (line ^ line>>7 ^ line>>15) << c.lineShift
	hit, _ := c.arr.access(hashed, false)
	if hit {
		c.hits++
		return 0
	}
	c.misses++
	return c.missLatency
}

// Hits and Misses return the probe counts.
func (c *ICache) Hits() uint64   { return c.hits }
func (c *ICache) Misses() uint64 { return c.misses }

// Reset cools the cache and clears statistics.
func (c *ICache) Reset() {
	c.arr.flush()
	c.hits, c.misses = 0, 0
}

// TLB is a translation lookaside buffer (Table 1: 128 entries, 8KB pages),
// modelled as a fully-associative LRU array of page numbers. A miss costs a
// fixed page-walk latency.
type TLB struct {
	pageShift uint     //simlint:nostate geometry, rebuilt by the constructor
	walk      uint64   //simlint:nostate configuration, rebuilt by the constructor
	entries   []uint64 // page numbers, +1 so zero means empty
	age       []uint64
	clock     uint64
	hits      uint64
	misses    uint64
}

// TLBConfig sizes a TLB.
type TLBConfig struct {
	Entries     int
	PageBytes   int
	WalkLatency int
}

// DefaultTLBConfig returns Table 1's 128-entry, 8KB-page TLB with a
// 30-cycle walk (a software-walk-era cost).
func DefaultTLBConfig() TLBConfig {
	return TLBConfig{Entries: 128, PageBytes: 8 << 10, WalkLatency: 30}
}

// NewTLB builds a TLB.
func NewTLB(cfg TLBConfig) *TLB {
	shift := uint(0)
	for 1<<shift < cfg.PageBytes {
		shift++
	}
	return &TLB{
		pageShift: shift,
		walk:      uint64(cfg.WalkLatency),
		entries:   make([]uint64, cfg.Entries),
		age:       make([]uint64, cfg.Entries),
	}
}

// Translate looks up the page holding addr, filling on a miss. It returns
// the added latency in cycles (0 on a hit, the walk latency on a miss).
func (t *TLB) Translate(addr uint64) uint64 {
	page := addr>>t.pageShift + 1
	t.clock++
	victim := 0
	for i, e := range t.entries {
		if e == page {
			t.age[i] = t.clock
			t.hits++
			return 0
		}
		if e == 0 {
			victim = i
			break
		}
		if t.age[i] < t.age[victim] {
			victim = i
		}
	}
	t.entries[victim] = page
	t.age[victim] = t.clock
	t.misses++
	return t.walk
}

// Hits and Misses return the lookup counts.
func (t *TLB) Hits() uint64   { return t.hits }
func (t *TLB) Misses() uint64 { return t.misses }

// Reset empties the TLB and clears statistics.
func (t *TLB) Reset() {
	for i := range t.entries {
		t.entries[i] = 0
		t.age[i] = 0
	}
	t.clock, t.hits, t.misses = 0, 0, 0
}
