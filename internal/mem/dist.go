package mem

import "clustersim/internal/interconnect"

// dist is the decentralized L1 organization (§2.2): the L1 is broken into
// one word-interleaved bank per cluster; banks cache mutually exclusive
// addresses so no coherence is needed. Interleaving spans only the *active*
// banks, so reconfiguration changes the address→bank mapping and requires a
// flush (§5). The L2 stays co-located with cluster 0: a miss in bank b pays
// b→0 and 0→b trips.
type dist struct {
	cfg         Config               //simlint:nostate configuration, rebuilt by the constructor
	net         interconnect.Network //simlint:nostate wiring reference; the network serializes its own state
	banks       []*array
	l2          *l2
	bankFree    []interconnect.Calendar
	activeBanks int
	stats       Stats
}

func newDist(cfg Config, net interconnect.Network) *dist {
	d := &dist{cfg: cfg, net: net, activeBanks: cfg.Clusters}
	d.banks = make([]*array, cfg.Clusters)
	for i := range d.banks {
		d.banks[i] = newArray(cfg.L1Size, cfg.L1Line, cfg.L1Ways)
	}
	d.l2 = newL2(cfg, &d.stats)
	d.bankFree = make([]interconnect.Calendar, cfg.Clusters)
	for i := range d.bankFree {
		d.bankFree[i] = interconnect.NewCalendar()
	}
	return d
}

// Bank implements System: the full-machine (maximum-bank) index used to
// train the bank predictor.
func (d *dist) Bank(addr uint64) int {
	return int(addr/uint64(d.cfg.WordBytes)) & (d.cfg.Clusters - 1)
}

// HomeCluster implements System: interleaving over the active banks only.
func (d *dist) HomeCluster(addr uint64) int {
	return int(addr/uint64(d.cfg.WordBytes)) & (d.activeBanks - 1)
}

// SetActive implements System. Callers must Flush first; §5's "least
// complex solution is to stall the processor while the L1 data cache is
// flushed to L2".
func (d *dist) SetActive(banks int) {
	if banks < 1 {
		banks = 1
	}
	if banks > d.cfg.Clusters {
		banks = d.cfg.Clusters
	}
	d.activeBanks = banks
}

// Load implements System.
func (d *dist) Load(ready uint64, cluster int, addr uint64) (uint64, bool) {
	d.stats.Loads++
	home := d.HomeCluster(addr)
	t := d.net.Send(ready, cluster, home)
	t = d.bankAccess(t, home)
	hit, wb := d.banks[home].access(addr, false)
	if wb {
		d.stats.L1Writebacks++
		d.l2.writeback(d.net.Send(t, home, 0), addr)
	}
	if hit {
		d.stats.L1Hits++
		t += uint64(d.cfg.L1Latency)
	} else {
		d.stats.L1Misses++
		req := d.net.Send(t+uint64(d.cfg.L1Latency), home, 0)
		rsp := d.l2.access(req, addr, false)
		t = d.net.Send(rsp, 0, home)
	}
	return d.net.Send(t, home, cluster), hit
}

// StoreCommit implements System.
func (d *dist) StoreCommit(now uint64, cluster int, addr uint64) {
	d.stats.Stores++
	home := d.HomeCluster(addr)
	t := d.net.Send(now, cluster, home)
	t = d.bankAccess(t, home)
	hit, wb := d.banks[home].access(addr, true)
	if wb {
		d.stats.L1Writebacks++
		d.l2.writeback(d.net.Send(t, home, 0), addr)
	}
	if hit {
		d.stats.L1Hits++
	} else {
		d.stats.L1Misses++
		req := d.net.Send(t+uint64(d.cfg.L1Latency), home, 0)
		d.l2.access(req, addr, true)
	}
}

func (d *dist) bankAccess(t uint64, bank int) uint64 {
	return d.bankFree[bank].Reserve(t)
}

// BankBacklog implements System: mean reserved bank-port cycles per active
// bank over the window.
func (d *dist) BankBacklog(from, to uint64) float64 {
	if to <= from || d.activeBanks == 0 {
		return 0
	}
	reserved := 0
	for b := 0; b < d.activeBanks; b++ {
		reserved += d.bankFree[b].ReservedIn(from, to)
	}
	return float64(reserved) / float64(d.activeBanks)
}

// Flush implements System: write back every dirty line in every bank to the
// L2 and invalidate. Writebacks drain over the serialized L2 bus.
func (d *dist) Flush(now uint64) (uint64, uint64) {
	var wb uint64
	for _, b := range d.banks {
		wb += b.flush()
	}
	d.stats.Flushes++
	d.stats.FlushWritebacks += wb
	done := now + wb*uint64(d.cfg.L2Busy) + uint64(d.cfg.L2Latency)
	return done, wb
}

// Reset implements System.
func (d *dist) Reset() {
	for _, b := range d.banks {
		b.flush()
	}
	d.l2.reset()
	for i := range d.bankFree {
		d.bankFree[i].Clear()
	}
	d.activeBanks = d.cfg.Clusters
	d.stats = Stats{}
}

// Stats implements System.
func (d *dist) Stats() Stats { return d.stats }

var _ System = (*dist)(nil)
