package mem

import "testing"

func TestICacheHitAfterFill(t *testing.T) {
	ic := NewICache(DefaultICacheConfig())
	if stall := ic.Fetch(0x1000); stall == 0 {
		t.Fatal("cold fetch hit")
	}
	if stall := ic.Fetch(0x1000); stall != 0 {
		t.Fatalf("warm fetch stalled %d", stall)
	}
	// Same 32-byte line.
	if stall := ic.Fetch(0x101c); stall != 0 {
		t.Fatal("same-line fetch missed")
	}
	if ic.Hits() != 2 || ic.Misses() != 1 {
		t.Fatalf("hits %d misses %d", ic.Hits(), ic.Misses())
	}
}

func TestICacheLineShift(t *testing.T) {
	ic := NewICache(DefaultICacheConfig())
	if ic.LineShift() != 5 {
		t.Fatalf("line shift %d for 32B lines", ic.LineShift())
	}
}

func TestICacheReset(t *testing.T) {
	ic := NewICache(DefaultICacheConfig())
	ic.Fetch(0x40)
	ic.Reset()
	if ic.Hits() != 0 || ic.Misses() != 0 {
		t.Fatal("reset did not clear stats")
	}
	if ic.Fetch(0x40) == 0 {
		t.Fatal("reset did not cool the cache")
	}
}

func TestTLBHitAfterWalk(t *testing.T) {
	tlb := NewTLB(DefaultTLBConfig())
	if tlb.Translate(0x12345) == 0 {
		t.Fatal("cold translation hit")
	}
	if tlb.Translate(0x12345) != 0 {
		t.Fatal("warm translation walked")
	}
	// Same 8KB page.
	if tlb.Translate(0x12345^0x7ff) != 0 {
		t.Fatal("same-page translation walked")
	}
	if tlb.Hits() != 2 || tlb.Misses() != 1 {
		t.Fatalf("hits %d misses %d", tlb.Hits(), tlb.Misses())
	}
}

func TestTLBCapacityAndLRU(t *testing.T) {
	cfg := TLBConfig{Entries: 4, PageBytes: 8 << 10, WalkLatency: 30}
	tlb := NewTLB(cfg)
	page := func(i int) uint64 { return uint64(i) << 13 }
	for i := 0; i < 4; i++ {
		tlb.Translate(page(i))
	}
	tlb.Translate(page(0)) // page 0 is now MRU
	tlb.Translate(page(4)) // evicts LRU (page 1)
	if tlb.Translate(page(0)) != 0 {
		t.Fatal("MRU page evicted")
	}
	if tlb.Translate(page(1)) == 0 {
		t.Fatal("LRU page survived eviction")
	}
}

func TestTLBReset(t *testing.T) {
	tlb := NewTLB(DefaultTLBConfig())
	tlb.Translate(0x4000)
	tlb.Reset()
	if tlb.Hits()+tlb.Misses() != 0 {
		t.Fatal("reset did not clear stats")
	}
	if tlb.Translate(0x4000) == 0 {
		t.Fatal("reset did not empty the TLB")
	}
}

func TestTLBAddressZeroPage(t *testing.T) {
	// Page number 0 must be representable (entries store page+1).
	tlb := NewTLB(DefaultTLBConfig())
	if tlb.Translate(0) == 0 {
		t.Fatal("cold page-0 translation hit")
	}
	if tlb.Translate(8) != 0 {
		t.Fatal("page-0 retranslation walked")
	}
}
