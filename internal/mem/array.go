// Package mem models the data-memory hierarchy of the simulated processor:
// a word-interleaved L1 (centralized, Table 2 left column, or decentralized
// with one bank per cluster, Table 2 right column), a unified 2MB 8-way L2
// with a 25-cycle access time co-located with cluster 0, and a 160-cycle
// main memory, with per-bank port contention, miss merging, writeback
// counting, and the dirty-flush operation that decentralized reconfiguration
// requires.
package mem

// array is a set-associative tag array with true-LRU replacement. It tracks
// only tags and dirty bits; the simulator never stores data values.
type array struct {
	sets      int  //simlint:nostate geometry, rebuilt by the constructor
	ways      int  //simlint:nostate geometry, rebuilt by the constructor
	lineShift uint //simlint:nostate geometry, rebuilt by the constructor
	valid     []bool
	dirty     []bool
	tags      []uint64
	age       []uint32 // per-line last-use stamp
	clock     uint32
}

// newArray builds an array with the given geometry. sizeBytes and lineBytes
// must be powers of two with sizeBytes >= ways*lineBytes.
func newArray(sizeBytes, lineBytes, ways int) *array {
	sets := sizeBytes / lineBytes / ways
	if sets < 1 {
		sets = 1
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	n := sets * ways
	return &array{
		sets:      sets,
		ways:      ways,
		lineShift: shift,
		valid:     make([]bool, n),
		dirty:     make([]bool, n),
		tags:      make([]uint64, n),
		age:       make([]uint32, n),
	}
}

// lookup probes the array for addr without modifying state.
func (a *array) lookup(addr uint64) bool {
	line := addr >> a.lineShift
	set := int(line % uint64(a.sets))
	tag := line / uint64(a.sets)
	base := set * a.ways
	for w := 0; w < a.ways; w++ {
		if a.valid[base+w] && a.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// access touches addr, allocating on miss. It returns whether the access
// hit, and whether the allocation evicted a dirty line (a writeback).
func (a *array) access(addr uint64, write bool) (hit, writeback bool) {
	line := addr >> a.lineShift
	set := int(line % uint64(a.sets))
	tag := line / uint64(a.sets)
	base := set * a.ways
	a.clock++
	victim := base
	for w := 0; w < a.ways; w++ {
		i := base + w
		if a.valid[i] && a.tags[i] == tag {
			a.age[i] = a.clock
			if write {
				a.dirty[i] = true
			}
			return true, false
		}
		if !a.valid[victim] {
			continue // keep first invalid way as victim
		}
		if !a.valid[i] || a.age[i] < a.age[victim] {
			victim = i
		}
	}
	writeback = a.valid[victim] && a.dirty[victim]
	a.valid[victim] = true
	a.dirty[victim] = write
	a.tags[victim] = tag
	a.age[victim] = a.clock
	return false, writeback
}

// flush invalidates every line and returns the number of dirty lines that
// needed writing back.
func (a *array) flush() (writebacks uint64) {
	for i := range a.valid {
		if a.valid[i] && a.dirty[i] {
			writebacks++
		}
		a.valid[i] = false
		a.dirty[i] = false
		a.age[i] = 0
	}
	a.clock = 0
	return writebacks
}

// occupancy returns the number of valid lines (for tests).
func (a *array) occupancy() int {
	n := 0
	for _, v := range a.valid {
		if v {
			n++
		}
	}
	return n
}
