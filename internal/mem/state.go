package mem

import (
	"sort"

	"clustersim/internal/snap"
)

// Checkpoint support. Geometry (set counts, way counts, bank counts, line
// shifts) is configuration and is rebuilt by the constructors; snapshots
// carry only dynamic state — tag arrays, LRU stamps, port calendars, the L2
// MSHR map, and statistics. The l2's stats pointer aliases the parent
// organization's Stats and is re-wired by the constructor, never serialized.

func (a *array) saveState(w *snap.Writer) {
	w.Bools(a.valid)
	w.Bools(a.dirty)
	w.U64s(a.tags)
	w.U32s(a.age)
	w.U64(uint64(a.clock))
}

func (a *array) loadState(r *snap.Reader, what string) {
	valid := r.Bools()
	dirty := r.Bools()
	tags := r.U64s()
	age := r.U32s()
	clock := uint32(r.U64())
	if r.Err() != nil {
		return
	}
	if len(valid) != len(a.valid) || len(dirty) != len(a.dirty) ||
		len(tags) != len(a.tags) || len(age) != len(a.age) {
		r.Failf("mem: %s has %d lines, snapshot holds %d", what, len(a.valid), len(valid))
		return
	}
	copy(a.valid, valid)
	copy(a.dirty, dirty)
	copy(a.tags, tags)
	copy(a.age, age)
	a.clock = clock
}

// saveState writes the L2's dynamic state. The pendingMiss map is emitted as
// key-sorted pairs so identical machine states produce identical bytes.
func (c *l2) saveState(w *snap.Writer) {
	w.Mark("l2")
	c.arr.saveState(w)
	w.U64s(c.bus)
	w.U64s(c.memBus)
	keys := make([]uint64, 0, len(c.pendingMiss))
	for k := range c.pendingMiss {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.Int(len(keys))
	for _, k := range keys {
		w.U64(k)
		w.U64(c.pendingMiss[k])
	}
}

func (c *l2) loadState(r *snap.Reader) {
	r.Mark("l2")
	c.arr.loadState(r, "l2 array")
	r.FixedU64s(c.bus, "l2 bus calendar")
	r.FixedU64s(c.memBus, "l2 memory-bus calendar")
	n := r.Int()
	if r.Err() != nil {
		return
	}
	if n < 0 || n > 1<<20 {
		r.Failf("mem: implausible pendingMiss count %d", n)
		return
	}
	c.pendingMiss = make(map[uint64]uint64, n)
	for i := 0; i < n; i++ {
		k := r.U64()
		v := r.U64()
		if r.Err() != nil {
			return
		}
		c.pendingMiss[k] = v
	}
}

func saveStats(w *snap.Writer, s *Stats) {
	w.U64(s.Loads)
	w.U64(s.Stores)
	w.U64(s.L1Hits)
	w.U64(s.L1Misses)
	w.U64(s.L1Writebacks)
	w.U64(s.L2Hits)
	w.U64(s.L2Misses)
	w.U64(s.L2MergedMisses)
	w.U64(s.L2Writebacks)
	w.U64(s.FlushWritebacks)
	w.U64(s.Flushes)
}

func loadStats(r *snap.Reader, s *Stats) {
	s.Loads = r.U64()
	s.Stores = r.U64()
	s.L1Hits = r.U64()
	s.L1Misses = r.U64()
	s.L1Writebacks = r.U64()
	s.L2Hits = r.U64()
	s.L2Misses = r.U64()
	s.L2MergedMisses = r.U64()
	s.L2Writebacks = r.U64()
	s.FlushWritebacks = r.U64()
	s.Flushes = r.U64()
}

// SaveState implements snap.Stater.
func (c *central) SaveState(w *snap.Writer) {
	w.Mark("mem-central")
	c.arr.saveState(w)
	c.l2.saveState(w)
	w.Int(len(c.bankFree))
	for _, cal := range c.bankFree {
		w.U64s(cal)
	}
	saveStats(w, &c.stats)
}

// LoadState implements snap.Stater.
func (c *central) LoadState(r *snap.Reader) {
	r.Mark("mem-central")
	c.arr.loadState(r, "l1 array")
	c.l2.loadState(r)
	if n := r.Int(); r.Err() == nil && n != len(c.bankFree) {
		r.Failf("mem: centralized L1 has %d banks, snapshot holds %d", len(c.bankFree), n)
		return
	}
	for i := range c.bankFree {
		r.FixedU64s(c.bankFree[i], "l1 bank calendar")
	}
	loadStats(r, &c.stats)
}

// SaveState implements snap.Stater.
func (d *dist) SaveState(w *snap.Writer) {
	w.Mark("mem-dist")
	w.Int(len(d.banks))
	for _, b := range d.banks {
		b.saveState(w)
	}
	d.l2.saveState(w)
	w.Int(len(d.bankFree))
	for _, cal := range d.bankFree {
		w.U64s(cal)
	}
	w.Int(d.activeBanks)
	saveStats(w, &d.stats)
}

// LoadState implements snap.Stater.
func (d *dist) LoadState(r *snap.Reader) {
	r.Mark("mem-dist")
	if n := r.Int(); r.Err() == nil && n != len(d.banks) {
		r.Failf("mem: decentralized L1 has %d banks, snapshot holds %d", len(d.banks), n)
		return
	}
	for _, b := range d.banks {
		b.loadState(r, "l1 bank array")
	}
	d.l2.loadState(r)
	if n := r.Int(); r.Err() == nil && n != len(d.bankFree) {
		r.Failf("mem: decentralized L1 has %d bank calendars, snapshot holds %d", len(d.bankFree), n)
		return
	}
	for i := range d.bankFree {
		r.FixedU64s(d.bankFree[i], "l1 bank calendar")
	}
	active := r.Int()
	if r.Err() != nil {
		return
	}
	if active < 1 || active > d.cfg.Clusters {
		r.Failf("mem: snapshot activeBanks %d out of range [1,%d]", active, d.cfg.Clusters)
		return
	}
	d.activeBanks = active
	loadStats(r, &d.stats)
}

// SaveState implements snap.Stater.
func (c *ICache) SaveState(w *snap.Writer) {
	w.Mark("icache")
	c.arr.saveState(w)
	w.U64(c.hits)
	w.U64(c.misses)
}

// LoadState implements snap.Stater.
func (c *ICache) LoadState(r *snap.Reader) {
	r.Mark("icache")
	c.arr.loadState(r, "icache array")
	c.hits = r.U64()
	c.misses = r.U64()
}

// SaveState implements snap.Stater.
func (t *TLB) SaveState(w *snap.Writer) {
	w.Mark("tlb")
	w.U64s(t.entries)
	w.U64s(t.age)
	w.U64(t.clock)
	w.U64(t.hits)
	w.U64(t.misses)
}

// LoadState implements snap.Stater.
func (t *TLB) LoadState(r *snap.Reader) {
	r.Mark("tlb")
	r.FixedU64s(t.entries, "tlb entries")
	r.FixedU64s(t.age, "tlb ages")
	t.clock = r.U64()
	t.hits = r.U64()
	t.misses = r.U64()
}

var (
	_ snap.Stater = (*central)(nil)
	_ snap.Stater = (*dist)(nil)
	_ snap.Stater = (*ICache)(nil)
	_ snap.Stater = (*TLB)(nil)
)
