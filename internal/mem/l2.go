package mem

import "clustersim/internal/interconnect"

// l2 models the unified second-level cache and main memory behind it. The
// L2 is co-located with cluster 0; callers are responsible for network hops
// to and from it. A single tag pipeline accepts one access every busyCycles
// cycles; misses pay the memory latency. Outstanding misses to the same line
// merge (MSHR behaviour).
type l2 struct {
	arr        *array
	latency    uint64 //simlint:nostate configuration; hit latency (25)
	memLatency uint64 //simlint:nostate configuration; miss additional latency (160)
	busyCycles uint64 //simlint:nostate configuration; initiation interval of the tag pipeline
	memBusy    uint64 //simlint:nostate configuration; memory-bus cycles per fetched line
	bus        interconnect.Calendar
	memBus     interconnect.Calendar
	// pendingMiss maps line address -> cycle the line arrives from memory.
	pendingMiss map[uint64]uint64
	stats       *Stats //simlint:nostate aliases the parent organization's Stats, which serializes them; re-wired by the constructor
}

func newL2(cfg Config, stats *Stats) *l2 {
	return &l2{
		arr:         newArray(cfg.L2Size, cfg.L2Line, cfg.L2Ways),
		latency:     uint64(cfg.L2Latency),
		memLatency:  uint64(cfg.MemLatency),
		busyCycles:  uint64(cfg.L2Busy),
		memBusy:     uint64(cfg.MemBusy),
		bus:         interconnect.NewCalendar(),
		memBus:      interconnect.NewCalendar(),
		pendingMiss: make(map[uint64]uint64),
		stats:       stats,
	}
}

// access services a request arriving at the L2 at cycle t and returns the
// cycle at which the line is available at the L2.
func (c *l2) access(t uint64, addr uint64, write bool) uint64 {
	line := addr >> 6 // L2 line granularity for miss merging
	if done, ok := c.pendingMiss[line]; ok {
		if done > t {
			// Merge into the outstanding miss.
			c.stats.L2MergedMisses++
			return done
		}
		delete(c.pendingMiss, line)
	}
	start := c.bus.ReserveEvery(t, c.busyCycles)
	hit, wb := c.arr.access(addr, write)
	if wb {
		c.stats.L2Writebacks++
	}
	if hit {
		c.stats.L2Hits++
		return start + c.latency
	}
	c.stats.L2Misses++
	// The memory bus accepts one line fetch every memBusy cycles.
	memStart := c.memBus.ReserveEvery(start+c.latency, c.memBusy)
	done := memStart + c.memLatency
	c.pendingMiss[line] = done
	if len(c.pendingMiss) > 4096 {
		c.gc(t)
	}
	return done
}

// writeback accepts a dirty L1 line at cycle t (timing only; the L2 bus
// occupancy models the cost).
func (c *l2) writeback(t uint64, addr uint64) {
	c.bus.ReserveEvery(t, c.busyCycles)
	_, wb := c.arr.access(addr, true)
	if wb {
		c.stats.L2Writebacks++
	}
}

func (c *l2) gc(now uint64) {
	for k, v := range c.pendingMiss {
		if v <= now {
			delete(c.pendingMiss, k)
		}
	}
}

func (c *l2) reset() {
	c.arr.flush()
	c.bus.Clear()
	c.memBus.Clear()
	c.pendingMiss = make(map[uint64]uint64)
}
