package mem

import "clustersim/internal/interconnect"

// central is the centralized L1 organization: the cache (and LSQ) live next
// to cluster 0. A load issued from cluster c pays the network trip c→0 for
// the address and 0→c for the data, plus bank-port contention and the
// 6-cycle RAM lookup (§2.1: "cluster 3 experiences a total communication
// cost of four cycles for each load" on the 16-cluster ring).
type central struct {
	cfg      Config               //simlint:nostate configuration, rebuilt by the constructor
	net      interconnect.Network //simlint:nostate wiring reference; the network serializes its own state
	arr      *array
	l2       *l2
	bankFree []interconnect.Calendar
	stats    Stats

	// freeLoadComm implements the §4 ablation "assuming zero
	// inter-cluster communication cost for loads and stores".
	freeLoadComm bool //simlint:nostate ablation switch, part of configuration
}

func newCentral(cfg Config, net interconnect.Network) *central {
	c := &central{cfg: cfg, net: net}
	c.arr = newArray(cfg.L1Size, cfg.L1Line, cfg.L1Ways)
	c.l2 = newL2(cfg, &c.stats)
	c.bankFree = make([]interconnect.Calendar, cfg.L1Banks)
	for i := range c.bankFree {
		c.bankFree[i] = interconnect.NewCalendar()
	}
	return c
}

// SetFreeLoadComm enables/disables the zero-cost load/store communication
// ablation.
func (c *central) SetFreeLoadComm(v bool) { c.freeLoadComm = v }

// Bank implements System: word-interleaving over the physical banks.
func (c *central) Bank(addr uint64) int {
	return int(addr/uint64(c.cfg.WordBytes)) & (c.cfg.L1Banks - 1)
}

// HomeCluster implements System; the centralized cache lives at cluster 0.
func (c *central) HomeCluster(addr uint64) int { return 0 }

// SetActive implements System; the centralized organization is unaffected
// by the active-cluster count.
func (c *central) SetActive(banks int) {}

// Load implements System.
func (c *central) Load(ready uint64, cluster int, addr uint64) (uint64, bool) {
	c.stats.Loads++
	t := ready
	if !c.freeLoadComm {
		t = c.net.Send(t, cluster, 0)
	}
	t = c.bankAccess(t, addr)
	hit, wb := c.arr.access(addr, false)
	if wb {
		c.stats.L1Writebacks++
		c.l2.writeback(t, addr)
	}
	if hit {
		c.stats.L1Hits++
		t += uint64(c.cfg.L1Latency)
	} else {
		c.stats.L1Misses++
		t = c.l2.access(t+uint64(c.cfg.L1Latency), addr, false)
	}
	if !c.freeLoadComm {
		t = c.net.Send(t, 0, cluster)
	}
	return t, hit
}

// StoreCommit implements System.
func (c *central) StoreCommit(now uint64, cluster int, addr uint64) {
	c.stats.Stores++
	t := now
	if !c.freeLoadComm {
		t = c.net.Send(t, cluster, 0)
	}
	t = c.bankAccess(t, addr)
	hit, wb := c.arr.access(addr, true)
	if wb {
		c.stats.L1Writebacks++
		c.l2.writeback(t, addr)
	}
	if hit {
		c.stats.L1Hits++
	} else {
		c.stats.L1Misses++
		c.l2.access(t+uint64(c.cfg.L1Latency), addr, true)
	}
}

// bankAccess reserves the addressed bank's port (one access per cycle).
func (c *central) bankAccess(t uint64, addr uint64) uint64 {
	return c.bankFree[c.Bank(addr)].Reserve(t)
}

// BankBacklog implements System: mean reserved bank-port cycles per bank
// over the window.
func (c *central) BankBacklog(from, to uint64) float64 {
	if to <= from {
		return 0
	}
	reserved := 0
	for _, cal := range c.bankFree {
		reserved += cal.ReservedIn(from, to)
	}
	return float64(reserved) / float64(len(c.bankFree))
}

// Flush implements System. The centralized cache never needs a
// reconfiguration flush, but the operation is still meaningful (e.g. tests).
func (c *central) Flush(now uint64) (uint64, uint64) {
	wb := c.arr.flush()
	c.stats.Flushes++
	c.stats.FlushWritebacks += wb
	// Dirty lines drain over the L2 bus.
	done := now + wb*uint64(c.cfg.L2Busy) + uint64(c.cfg.L2Latency)
	return done, wb
}

// Reset implements System.
func (c *central) Reset() {
	c.arr.flush()
	c.l2.reset()
	for i := range c.bankFree {
		c.bankFree[i].Clear()
	}
	c.stats = Stats{}
}

// Stats implements System.
func (c *central) Stats() Stats { return c.stats }

var _ System = (*central)(nil)
