package mem

import (
	"testing"
	"testing/quick"

	"clustersim/internal/interconnect"
)

func newCentralSys() (*central, interconnect.Network) {
	net := interconnect.MustNewRing(16, 1)
	return newCentral(DefaultCentralConfig(16), net), net
}

func newDistSys() (*dist, interconnect.Network) {
	net := interconnect.MustNewRing(16, 1)
	return newDist(DefaultDistConfig(16), net), net
}

func TestArrayHitAfterMiss(t *testing.T) {
	a := newArray(1024, 32, 2)
	hit, _ := a.access(0x100, false)
	if hit {
		t.Fatal("cold access hit")
	}
	hit, _ = a.access(0x100, false)
	if !hit {
		t.Fatal("second access missed")
	}
	// Same line, different word.
	hit, _ = a.access(0x110, false)
	if !hit {
		t.Fatal("same-line access missed")
	}
}

func TestArrayLRUEviction(t *testing.T) {
	// 2 ways, 1 set: 64-byte array with 32-byte lines.
	a := newArray(64, 32, 2)
	a.access(0x0, false)   // line A
	a.access(0x100, false) // line B
	a.access(0x0, false)   // touch A; B is now LRU
	a.access(0x200, false) // line C evicts B
	if hit, _ := a.access(0x0, false); !hit {
		t.Fatal("LRU evicted the recently used line")
	}
	if hit, _ := a.access(0x100, false); hit {
		t.Fatal("victim line still present")
	}
}

func TestArrayDirtyWriteback(t *testing.T) {
	a := newArray(64, 32, 2)
	a.access(0x0, true) // dirty
	a.access(0x100, false)
	a.access(0x200, false) // evicts dirty 0x0
	_, wb := a.access(0x300, false)
	_ = wb
	// Refill 0x0's set until the dirty line must go.
	found := false
	b := newArray(64, 32, 2)
	b.access(0x0, true)
	b.access(0x100, false)
	if _, wb := b.access(0x200, false); wb {
		found = true
	}
	if !found {
		t.Fatal("dirty eviction did not report writeback")
	}
}

func TestArrayFlushCountsDirty(t *testing.T) {
	a := newArray(1024, 32, 2)
	a.access(0x0, true)
	a.access(0x40, true)
	a.access(0x80, false)
	if wb := a.flush(); wb != 2 {
		t.Fatalf("flush wrote back %d lines, want 2", wb)
	}
	if a.occupancy() != 0 {
		t.Fatal("flush left valid lines")
	}
	if wb := a.flush(); wb != 0 {
		t.Fatalf("second flush wrote back %d", wb)
	}
}

// Property: occupancy never exceeds capacity regardless of access pattern.
func TestArrayOccupancyBounded(t *testing.T) {
	f := func(addrs []uint16) bool {
		a := newArray(512, 32, 2)
		capacity := a.sets * a.ways
		for _, ad := range addrs {
			a.access(uint64(ad), ad%3 == 0)
			if a.occupancy() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCentralLoadLatencyCluster0(t *testing.T) {
	c, _ := newCentralSys()
	// Warm the line.
	c.Load(0, 0, 0x1000)
	done, hit := c.Load(1000, 0, 0x1000)
	if !hit {
		t.Fatal("warm load missed")
	}
	// From cluster 0: no hops, bank free, 6-cycle RAM.
	if done != 1006 {
		t.Fatalf("cluster-0 hit latency %d, want 1006", done)
	}
}

func TestCentralLoadLatencyGrowsWithDistance(t *testing.T) {
	// §2.1: cluster "3" (2 hops away on the ring) pays 4 extra cycles.
	c, _ := newCentralSys()
	c.Load(0, 0, 0x2000)
	d0, _ := c.Load(1000, 0, 0x2000)
	c2, _ := newCentralSys()
	c2.Load(0, 0, 0x2000)
	d2, _ := c2.Load(1000, 2, 0x2000)
	if d2-1000 != (d0-1000)+4 {
		t.Fatalf("2-hop cluster load cost %d, cluster-0 cost %d; want +4", d2-1000, d0-1000)
	}
}

func TestCentralMissGoesToL2(t *testing.T) {
	c, _ := newCentralSys()
	done, hit := c.Load(0, 0, 0x4000)
	if hit {
		t.Fatal("cold load hit")
	}
	// Must include L1 lookup + L2 latency + memory latency (cold L2 too).
	if done < 6+25+160 {
		t.Fatalf("cold miss returned in %d cycles", done)
	}
	s := c.Stats()
	if s.L1Misses != 1 || s.L2Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCentralL2HitFasterThanMemory(t *testing.T) {
	c, _ := newCentralSys()
	c.Load(0, 0, 0x8000) // cold: goes to memory, fills L2 and L1
	// Evict from tiny L1 by touching many conflicting lines; then re-load.
	for i := 0; i < 4096; i++ {
		c.Load(uint64(10000+100*i), 0, uint64(0x100000+i*32))
	}
	base := uint64(10_000_000)
	done, hit := c.Load(base, 0, 0x8000)
	if hit {
		t.Skip("line survived L1 sweep; geometry changed")
	}
	if done-base > 100 {
		t.Fatalf("L2 hit took %d cycles", done-base)
	}
}

func TestCentralBankConflict(t *testing.T) {
	c, _ := newCentralSys()
	c.Load(0, 0, 0x1000)
	c.Load(0, 0, 0x1000+8*4) // same bank (stride 4 words), conflicting port
	a, _ := c.Load(1000, 0, 0x1000)
	b, _ := c.Load(1000, 0, 0x1000+8*4)
	if b != a+1 {
		t.Fatalf("same-bank accesses finished at %d and %d; want serialization by 1", a, b)
	}
	// Different banks proceed in parallel.
	c2, _ := newCentralSys()
	c2.Load(0, 0, 0x1000)
	c2.Load(0, 0, 0x1008)
	x, _ := c2.Load(1000, 0, 0x1000)
	y, _ := c2.Load(1000, 0, 0x1008)
	if x != y {
		t.Fatalf("different banks serialized: %d vs %d", x, y)
	}
}

func TestCentralFreeLoadComm(t *testing.T) {
	c, _ := newCentralSys()
	c.SetFreeLoadComm(true)
	c.Load(0, 8, 0x1000)
	done, _ := c.Load(1000, 8, 0x1000) // 8 hops away but free
	if done != 1006 {
		t.Fatalf("free-comm load latency %d, want 1006", done)
	}
}

func TestCentralBankMapping(t *testing.T) {
	c, _ := newCentralSys()
	// Word-interleaved: consecutive 8-byte words rotate across 4 banks.
	for w := 0; w < 8; w++ {
		if got := c.Bank(uint64(w * 8)); got != w%4 {
			t.Fatalf("Bank(word %d) = %d, want %d", w, got, w%4)
		}
	}
	if c.HomeCluster(0xdeadbeef) != 0 {
		t.Fatal("centralized home cluster must be 0")
	}
}

func TestDistHomeClusterFollowsActiveBanks(t *testing.T) {
	d, _ := newDistSys()
	addr := uint64(13 * 8) // word 13: bank 13 of 16
	if d.Bank(addr) != 13 {
		t.Fatalf("full bank %d", d.Bank(addr))
	}
	if d.HomeCluster(addr) != 13 {
		t.Fatalf("16-active home %d", d.HomeCluster(addr))
	}
	d.SetActive(4)
	if d.HomeCluster(addr) != 13&3 {
		t.Fatalf("4-active home %d, want %d", d.HomeCluster(addr), 13&3)
	}
	// Low-order-bits property (§5): the masked full prediction equals the
	// active-bank home for every address.
	f := func(a uint32) bool {
		return d.Bank(uint64(a))&3 == d.HomeCluster(uint64(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistLocalVsRemoteLoad(t *testing.T) {
	d, _ := newDistSys()
	addr := uint64(5 * 8) // home bank 5
	d.Load(0, 5, addr)    // warm
	local, hit := d.Load(1000, 5, addr)
	if !hit {
		t.Fatal("warm load missed")
	}
	if local != 1004 { // 4-cycle bank, no hops
		t.Fatalf("local load latency %d, want 1004", local)
	}
	d2, _ := newDistSys()
	d2.Load(0, 5, addr)
	remote, _ := d2.Load(1000, 7, addr) // 2 hops each way
	if remote != 1004+4 {
		t.Fatalf("remote load latency %d, want 1008", remote)
	}
}

func TestDistMissPaysL2Trip(t *testing.T) {
	d, _ := newDistSys()
	addr := uint64(8 * 8) // home bank 8, farthest from L2 at cluster 0
	done, hit := d.Load(0, 8, addr)
	if hit {
		t.Fatal("cold load hit")
	}
	// 4 (bank) + 8 hops to L2 + 25 + 160 + 8 hops back, at least.
	if done < 4+8+25+160+8 {
		t.Fatalf("far-bank cold miss done at %d", done)
	}
}

func TestDistFlushAndReconfigure(t *testing.T) {
	d, _ := newDistSys()
	// Dirty a few lines via stores.
	for i := 0; i < 10; i++ {
		d.StoreCommit(uint64(100*i), 0, uint64(i*8*16)) // all map to bank 0
	}
	done, wb := d.Flush(10_000)
	if wb == 0 {
		t.Fatal("flush found no dirty lines")
	}
	if done <= 10_000 {
		t.Fatal("flush took no time")
	}
	s := d.Stats()
	if s.Flushes != 1 || s.FlushWritebacks != wb {
		t.Fatalf("stats %+v", s)
	}
	d.SetActive(4)
	// After the flush everything misses again.
	_, hit := d.Load(done, 0, 0)
	if hit {
		t.Fatal("post-flush load hit")
	}
}

func TestDistSetActiveClamps(t *testing.T) {
	d, _ := newDistSys()
	d.SetActive(0)
	if d.activeBanks != 1 {
		t.Fatalf("clamp low: %d", d.activeBanks)
	}
	d.SetActive(99)
	if d.activeBanks != 16 {
		t.Fatalf("clamp high: %d", d.activeBanks)
	}
}

func TestMissMerging(t *testing.T) {
	c, _ := newCentralSys()
	// Two loads to the same L2 line back-to-back: the second should merge
	// rather than pay a fresh memory access.
	d1, _ := c.Load(0, 0, 0x40000)
	d2, _ := c.Load(1, 0, 0x40020) // same 64B L2 line, different L1 line
	if d2 > d1+64 {
		t.Fatalf("second miss (%d) did not merge with first (%d)", d2, d1)
	}
	if c.Stats().L2MergedMisses == 0 {
		t.Fatal("no merged misses recorded")
	}
}

func TestResetRestoresColdState(t *testing.T) {
	for _, sys := range []System{
		MustNew(DefaultCentralConfig(16), interconnect.MustNewRing(16, 1)),
		MustNew(DefaultDistConfig(16), interconnect.MustNewRing(16, 1)),
	} {
		sys.Load(0, 0, 0x1234*8)
		sys.Reset()
		if sys.Stats() != (Stats{}) {
			t.Fatal("reset did not clear stats")
		}
		_, hit := sys.Load(0, 0, 0x1234*8)
		if hit {
			t.Fatal("reset did not cool the cache")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	net := interconnect.MustNewRing(16, 1)
	bad := DefaultCentralConfig(16)
	bad.L1Banks = 3
	if _, err := New(bad, net); err == nil {
		t.Fatal("non-power-of-two banks accepted")
	}
	bad = DefaultCentralConfig(16)
	bad.MemLatency = 0
	if _, err := New(bad, net); err == nil {
		t.Fatal("zero MemLatency accepted")
	}
	bad = DefaultCentralConfig(0)
	if _, err := New(bad, net); err == nil {
		t.Fatal("zero clusters accepted")
	}
}

func TestStatsMissRate(t *testing.T) {
	if (Stats{}).L1MissRate() != 0 {
		t.Fatal("empty miss rate not 0")
	}
	s := Stats{L1Hits: 3, L1Misses: 1}
	if s.L1MissRate() != 0.25 {
		t.Fatalf("miss rate %f", s.L1MissRate())
	}
}

func TestCentralStoreCommit(t *testing.T) {
	c, _ := newCentralSys()
	// A committed store warms the line; a later load hits and the line
	// is dirty (evicting it writes back).
	c.StoreCommit(100, 0, 0x5000)
	if _, hit := c.Load(200, 0, 0x5000); !hit {
		t.Fatal("load after store missed")
	}
	s := c.Stats()
	if s.Stores != 1 || s.Loads != 1 {
		t.Fatalf("stats %+v", s)
	}
	// Store from a distant cluster pays the network trip: its bank access
	// lands later than a same-cycle local store's.
	c2, _ := newCentralSys()
	c2.StoreCommit(100, 8, 0x6000)
	c2.StoreCommit(100, 0, 0x6000)
	if c2.Stats().Stores != 2 {
		t.Fatal("stores not counted")
	}
}

func TestCentralStoreMissGoesToL2(t *testing.T) {
	c, _ := newCentralSys()
	c.StoreCommit(50, 0, 0x9000)
	s := c.Stats()
	if s.L1Misses != 1 || s.L2Misses != 1 {
		t.Fatalf("cold store stats %+v", s)
	}
}

func TestCentralFlushWritesBackDirty(t *testing.T) {
	c, _ := newCentralSys()
	c.StoreCommit(10, 0, 0x100)
	c.StoreCommit(20, 0, 0x200)
	done, wb := c.Flush(1000)
	if wb != 2 {
		t.Fatalf("flush wrote back %d lines, want 2", wb)
	}
	if done <= 1000 {
		t.Fatal("flush free")
	}
	if _, hit := c.Load(done, 0, 0x100); hit {
		t.Fatal("line survived flush")
	}
}

func TestCentralSetActiveNoop(t *testing.T) {
	c, _ := newCentralSys()
	c.Load(0, 0, 0x42*8)
	before := c.HomeCluster(0x42 * 8)
	c.SetActive(4)
	if c.HomeCluster(0x42*8) != before {
		t.Fatal("centralized SetActive changed mapping")
	}
}

func TestArrayLookupDoesNotAllocate(t *testing.T) {
	a := newArray(1024, 32, 2)
	if a.lookup(0x40) {
		t.Fatal("cold lookup hit")
	}
	if a.occupancy() != 0 {
		t.Fatal("lookup allocated")
	}
	a.access(0x40, false)
	if !a.lookup(0x40) {
		t.Fatal("warm lookup missed")
	}
}

func TestL2WritebackOnL1Eviction(t *testing.T) {
	// Dirty L1 lines written back on eviction must occupy the L2.
	c, _ := newCentralSys()
	// Dirty a line, then sweep its set until it is evicted.
	c.StoreCommit(0, 0, 0x0)
	base := uint64(1000)
	for i := 1; i < 4096; i++ {
		c.Load(base+uint64(100*i), 0, uint64(i)*32*1024) // same set, new tags
	}
	if c.Stats().L1Writebacks == 0 {
		t.Fatal("no L1 writebacks recorded")
	}
}

func TestL2PendingMissGC(t *testing.T) {
	// Flood the L2 with distinct-line misses to force the pendingMiss
	// map through its garbage-collection path.
	c, _ := newCentralSys()
	for i := 0; i < 5000; i++ {
		c.Load(uint64(i*400), 0, uint64(0x100000+i*64))
	}
	if c.Stats().L2Misses == 0 {
		t.Fatal("no L2 misses")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on invalid config")
		}
	}()
	bad := DefaultCentralConfig(16)
	bad.L1Size = 0
	MustNew(bad, interconnect.MustNewRing(16, 1))
}
