package mem

import (
	"fmt"

	"clustersim/internal/interconnect"
)

// Config holds memory-hierarchy parameters. DefaultCentralConfig and
// DefaultDistConfig return the paper's Table 2 organizations.
type Config struct {
	// Centralized selects the centralized L1 organization; otherwise the
	// L1 is decentralized with one bank per cluster.
	Centralized bool

	// L1Size is the capacity in bytes (total when centralized, per bank
	// when decentralized).
	L1Size int
	// L1Line is the line size in bytes.
	L1Line int
	// L1Ways is the set associativity.
	L1Ways int
	// L1Latency is the bank RAM lookup time in cycles.
	L1Latency int
	// L1Banks is the number of word-interleaved banks (centralized only;
	// the decentralized organization has one bank per cluster).
	L1Banks int

	// L2Size, L2Line, L2Ways, L2Latency describe the unified L2.
	L2Size    int
	L2Line    int
	L2Ways    int
	L2Latency int
	// L2Busy is the L2 initiation interval (bus/tag occupancy per access).
	L2Busy int
	// MemLatency is the additional latency of main memory.
	MemLatency int
	// MemBusy is the memory-bus initiation interval (cycles per line
	// fetched from memory), bounding memory bandwidth.
	MemBusy int

	// WordBytes is the interleaving granularity (8-byte Alpha words).
	WordBytes int

	// Clusters is the total cluster count (needed by the decentralized
	// organization to size its banks).
	Clusters int
}

// DefaultCentralConfig returns Table 2's centralized organization: 32KB,
// 2-way, 32-byte lines, 4-way word-interleaved, 6-cycle RAM lookup.
func DefaultCentralConfig(clusters int) Config {
	return Config{
		Centralized: true,
		L1Size:      32 << 10,
		L1Line:      32,
		L1Ways:      2,
		L1Latency:   6,
		L1Banks:     4,
		L2Size:      2 << 20,
		L2Line:      64,
		L2Ways:      8,
		L2Latency:   25,
		L2Busy:      2,
		MemLatency:  160,
		MemBusy:     4,
		WordBytes:   8,
		Clusters:    clusters,
	}
}

// DefaultDistConfig returns Table 2's decentralized organization: a 16KB,
// 2-way, 8-byte-line, single-ported, 4-cycle bank in each cluster.
func DefaultDistConfig(clusters int) Config {
	return Config{
		Centralized: false,
		L1Size:      16 << 10,
		L1Line:      8,
		L1Ways:      2,
		L1Latency:   4,
		L1Banks:     clusters,
		L2Size:      2 << 20,
		L2Line:      64,
		L2Ways:      8,
		L2Latency:   25,
		L2Busy:      2,
		MemLatency:  160,
		MemBusy:     4,
		WordBytes:   8,
		Clusters:    clusters,
	}
}

func (c Config) validate() error {
	if c.Clusters < 1 {
		return fmt.Errorf("mem: Clusters must be >= 1, got %d", c.Clusters)
	}
	for _, v := range []struct {
		name string
		val  int
	}{
		{"L1Size", c.L1Size}, {"L1Line", c.L1Line}, {"L1Ways", c.L1Ways},
		{"L1Latency", c.L1Latency}, {"L1Banks", c.L1Banks},
		{"L2Size", c.L2Size}, {"L2Line", c.L2Line}, {"L2Ways", c.L2Ways},
		{"L2Latency", c.L2Latency}, {"L2Busy", c.L2Busy},
		{"MemLatency", c.MemLatency}, {"MemBusy", c.MemBusy}, {"WordBytes", c.WordBytes},
	} {
		if v.val <= 0 {
			return fmt.Errorf("mem: %s must be positive, got %d", v.name, v.val)
		}
	}
	if c.L1Banks&(c.L1Banks-1) != 0 {
		return fmt.Errorf("mem: L1Banks must be a power of two, got %d", c.L1Banks)
	}
	if c.WordBytes&(c.WordBytes-1) != 0 {
		return fmt.Errorf("mem: WordBytes must be a power of two, got %d", c.WordBytes)
	}
	return nil
}

// Stats aggregates memory-hierarchy statistics.
type Stats struct {
	Loads          uint64
	Stores         uint64
	L1Hits         uint64
	L1Misses       uint64
	L1Writebacks   uint64
	L2Hits         uint64
	L2Misses       uint64
	L2MergedMisses uint64
	L2Writebacks   uint64
	// FlushWritebacks counts dirty lines written back by reconfiguration
	// flushes (§5 reports vpr's 400K as the worst case).
	FlushWritebacks uint64
	// Flushes counts reconfiguration flushes.
	Flushes uint64
}

// Conserved checks the hierarchy's accounting identities against an earlier
// snapshot of the same run: counters only grow, every access hits or misses
// the L1 exactly once (L1Hits+L1Misses == Loads+Stores), and every L1 miss
// is serviced by the L2 exactly once, as a hit, a miss, or a merge into an
// outstanding miss (L2Hits+L2Misses+L2MergedMisses == L1Misses). It returns
// nil when the statistics are consistent.
func (s Stats) Conserved(prev Stats) error {
	for _, c := range [...]struct {
		name      string
		cur, prev uint64
	}{
		{"Loads", s.Loads, prev.Loads},
		{"Stores", s.Stores, prev.Stores},
		{"L1Hits", s.L1Hits, prev.L1Hits},
		{"L1Misses", s.L1Misses, prev.L1Misses},
		{"L1Writebacks", s.L1Writebacks, prev.L1Writebacks},
		{"L2Hits", s.L2Hits, prev.L2Hits},
		{"L2Misses", s.L2Misses, prev.L2Misses},
		{"L2MergedMisses", s.L2MergedMisses, prev.L2MergedMisses},
		{"L2Writebacks", s.L2Writebacks, prev.L2Writebacks},
		{"FlushWritebacks", s.FlushWritebacks, prev.FlushWritebacks},
		{"Flushes", s.Flushes, prev.Flushes},
	} {
		if c.cur < c.prev {
			return fmt.Errorf("mem: %s went backwards: %d -> %d", c.name, c.prev, c.cur)
		}
	}
	if s.L1Hits+s.L1Misses != s.Loads+s.Stores {
		return fmt.Errorf("mem: L1 hits+misses %d != %d loads + %d stores",
			s.L1Hits+s.L1Misses, s.Loads, s.Stores)
	}
	if s.L2Hits+s.L2Misses+s.L2MergedMisses != s.L1Misses {
		return fmt.Errorf("mem: L2 hits+misses+merged %d != %d L1 misses",
			s.L2Hits+s.L2Misses+s.L2MergedMisses, s.L1Misses)
	}
	return nil
}

// L1MissRate returns L1 misses per access, or 0 with no accesses.
func (s Stats) L1MissRate() float64 {
	total := s.L1Hits + s.L1Misses
	if total == 0 {
		return 0
	}
	return float64(s.L1Misses) / float64(total)
}

// System is the interface the pipeline uses to time memory operations.
// Implementations are not safe for concurrent use.
type System interface {
	// Load times a load issued from cluster whose address is available
	// there at cycle ready; it returns the cycle the data reaches the
	// requesting cluster and whether the access hit in the L1.
	Load(ready uint64, cluster int, addr uint64) (done uint64, hitL1 bool)
	// StoreCommit performs a committed store (writes happen at commit).
	StoreCommit(now uint64, cluster int, addr uint64)
	// Bank returns the full-machine bank index for addr (used to train
	// the bank predictor, always in maximum-bank terms).
	Bank(addr uint64) int
	// HomeCluster returns the cluster that services addr under the
	// current active configuration (always 0 for the centralized cache).
	HomeCluster(addr uint64) int
	// SetActive reconfigures the number of active banks/clusters. Only
	// the decentralized organization changes interleaving.
	SetActive(banks int)
	// Flush writes back all dirty L1 lines starting at cycle now and
	// returns when the flush completes and how many lines were written.
	Flush(now uint64) (done uint64, writebacks uint64)
	// BankBacklog returns the mean number of reserved L1 bank-port
	// cycles per bank over the window [from, to) — an observability
	// probe for cache-port pressure; it does not disturb reservations.
	BankBacklog(from, to uint64) float64
	// Reset restores cold caches and zeroed statistics.
	Reset()
	// Stats returns cumulative statistics.
	Stats() Stats
}

// New builds a System from cfg, moving data over net (used for the
// cluster↔cache and cache↔L2 transfers the paper charges to the register/
// cache data network).
func New(cfg Config, net interconnect.Network) (System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Centralized {
		return newCentral(cfg, net), nil
	}
	return newDist(cfg, net), nil
}

// MustNew is New but panics on configuration error.
func MustNew(cfg Config, net interconnect.Network) System {
	s, err := New(cfg, net)
	if err != nil {
		panic(err)
	}
	return s
}
