package check

import (
	"strings"
	"testing"

	"clustersim/internal/pipeline"
	"clustersim/internal/runner"
	"clustersim/internal/workload"
)

// clusterMatrix is the paper's configuration space (Figure 3's 2/4/8/16
// active-cluster sweep); the acceptance matrix validates every bundled
// benchmark at each point.
var clusterMatrix = []int{2, 4, 8, 16}

func matrixWindow(t *testing.T) uint64 {
	if testing.Short() {
		return 10_000
	}
	return 50_000
}

// TestInvariantsCleanMatrix runs every bundled benchmark at every cluster
// count (both cache models) under the invariant checker and requires zero
// violations: the probes must hold on the real machine, not just catch bugs
// on a corrupted one.
func TestInvariantsCleanMatrix(t *testing.T) {
	window := matrixWindow(t)
	r := runner.New(0)
	var reqs []runner.Request
	var chks []*Invariants
	var labels []string
	for _, bench := range workload.Benchmarks() {
		for _, n := range clusterMatrix {
			for _, cache := range []pipeline.CacheModel{pipeline.CentralizedCache, pipeline.DecentralizedCache} {
				cfg := pipeline.DefaultConfig()
				cfg.Clusters = n
				cfg.ActiveClusters = n
				cfg.Cache = cache
				chk := New()
				cfg.Checker = chk
				reqs = append(reqs, runner.Request{
					ID: "clean-matrix", Bench: bench, Seed: 1, Window: window, Config: cfg,
				})
				chks = append(chks, chk)
				labels = append(labels, bench)
			}
		}
	}
	if _, err := r.RunAll(reqs); err != nil {
		t.Fatal(err)
	}
	for i, chk := range chks {
		if err := chk.Err(); err != nil {
			t.Errorf("%s/%d clusters/cache %d: %v", labels[i], reqs[i].Config.Clusters, reqs[i].Config.Cache, err)
		}
		if chk.CyclesChecked() == 0 {
			t.Errorf("%s: checker never ran", labels[i])
		}
		if chk.PeakWindow() == 0 {
			t.Errorf("%s: peak window never observed", labels[i])
		}
	}
}

// TestInvariantsGridTopology spot-checks the grid interconnect (different
// Diameter and routing) under the checker.
func TestInvariantsGridTopology(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.Topology = pipeline.GridTopology
	chk := New()
	cfg.Checker = chk
	p, err := pipeline.New(cfg, workload.MustNew("mgrid", 7), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(matrixWindow(t)); err != nil {
		t.Fatal(err)
	}
	if err := chk.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestFailFastPanicBecomesRunError verifies the sweep integration: a
// fail-fast checker's panic must fail its own request, not the batch.
func TestFailFastPanicBecomesRunError(t *testing.T) {
	bad := NewFailFast()
	// Sabotage the checker's cycle tracking so its first check fails.
	bad.lastCycle = 999_999
	cfgBad := pipeline.DefaultConfig()
	cfgBad.Checker = bad
	cfgGood := pipeline.DefaultConfig()

	r := runner.New(0)
	res, err := r.RunAll([]runner.Request{
		{ID: "bad", Bench: "gzip", Seed: 1, Window: 2_000, Config: cfgBad},
		{ID: "good", Bench: "gzip", Seed: 1, Window: 2_000, Config: cfgGood},
	})
	if err == nil {
		t.Fatal("expected the fail-fast run to fail")
	}
	se, ok := err.(*runner.SweepError)
	if !ok {
		t.Fatalf("expected *runner.SweepError, got %T: %v", err, err)
	}
	if len(se.Failures) != 1 || se.Failures[0].ID != "bad" {
		t.Fatalf("expected exactly the bad run to fail, got %v", se.Failures)
	}
	if !strings.Contains(se.Failures[0].Err.Error(), "cycle-sequence") {
		t.Fatalf("unexpected failure cause: %v", se.Failures[0].Err)
	}
	if res[1].Instructions < 2_000 {
		t.Fatalf("good run incomplete: %+v", res[1])
	}
}

// TestCheckerReuseIsDetected: a checker instance observes exactly one run;
// attaching it to a second processor must trip the cycle-sequence probe.
func TestCheckerReuseIsDetected(t *testing.T) {
	chk := New()
	cfg := pipeline.DefaultConfig()
	cfg.Checker = chk
	for i := 0; i < 2; i++ {
		p, err := pipeline.New(cfg, workload.MustNew("gzip", 1), nil)
		if err != nil {
			t.Fatal(err)
		}
		p.Run(1_000) //simlint:allow errflow the checker-reuse violation is the observable, harvested via Err below
	}
	err := chk.Err()
	if err == nil {
		t.Fatal("checker reuse across processors not detected")
	}
	if !strings.Contains(err.Error(), "cycle-sequence") {
		t.Fatalf("expected a cycle-sequence violation, got: %v", err)
	}
}

// TestViolationCapAndErr exercises the reporting path: violations beyond the
// cap are counted, Err aggregates, and a clean checker reports nil.
func TestViolationCapAndErr(t *testing.T) {
	k := New()
	if k.Err() != nil {
		t.Fatal("fresh checker reports an error")
	}
	for i := 0; i < maxViolations+10; i++ {
		k.fail(uint64(i), "test-invariant", "violation %d", i)
	}
	if len(k.Violations()) != maxViolations {
		t.Fatalf("expected %d recorded violations, got %d", maxViolations, len(k.Violations()))
	}
	err := k.Err()
	if err == nil {
		t.Fatal("violations not reported")
	}
	msg := err.Error()
	if !strings.Contains(msg, "74 invariant violation(s)") || !strings.Contains(msg, "(10 dropped)") {
		t.Fatalf("unexpected aggregate message: %v", msg)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("fail-fast checker did not panic")
		}
	}()
	NewFailFast().fail(1, "test-invariant", "boom")
}

func TestCheckerNames(t *testing.T) {
	if New().Name() != "invariants" || NewFailFast().Name() != "invariants-failfast" {
		t.Fatalf("unexpected names %q, %q", New().Name(), NewFailFast().Name())
	}
}

// TestCheckedRunAllocBudget holds a checked run to the same steady-state
// allocation budget as an unchecked one (pipeline/alloc_test.go): the
// processor reuses one MachineView and a clean CheckCycle allocates only on
// the violation path, so attaching a checker must not add allocations.
func TestCheckedRunAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is slow under -short")
	}
	cfg := pipeline.DefaultConfig()
	chk := New()
	cfg.Checker = chk
	p, err := pipeline.New(cfg, workload.MustNew("gzip", 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(50_000); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		p.Run(10_000) //simlint:allow errflow error checks would perturb the allocation measurement; the warmup run above asserts health
	})
	if avg > 8 {
		t.Errorf("checked run: %.1f allocs per 10K-instruction window, budget 8", avg)
	}
	if err := chk.Err(); err != nil {
		t.Fatal(err)
	}
}
