package check

import (
	"testing"

	"clustersim/internal/core"
	"clustersim/internal/pipeline"
	"clustersim/internal/runner"
	"clustersim/internal/workload"
)

// oracleBenches returns the benchmarks the oracle matrix covers: every
// bundled benchmark normally, a representative subset under -short.
func oracleBenches(t *testing.T) []string {
	if testing.Short() {
		return []string{"gzip", "swim", "djpeg"}
	}
	return workload.Benchmarks()
}

// TestDeterminismMatrix: same (bench, seed, config) twice => identical
// Result, at every cluster count.
func TestDeterminismMatrix(t *testing.T) {
	window := matrixWindow(t)
	r := runner.New(0)
	for _, bench := range oracleBenches(t) {
		for _, n := range clusterMatrix {
			cfg := pipeline.DefaultConfig()
			cfg.Clusters = n
			cfg.ActiveClusters = n
			if err := Determinism(r, bench, 1, window, cfg); err != nil {
				t.Errorf("%s/%d clusters: %v", bench, n, err)
			}
		}
	}
}

// TestStaticEquivalenceMatrix: a controller pinned to n clusters is
// field-identical to the static n-cluster configuration, at every matrix
// point (so a forced-static controller can never beat its static config).
func TestStaticEquivalenceMatrix(t *testing.T) {
	window := matrixWindow(t)
	r := runner.New(0)
	for _, bench := range oracleBenches(t) {
		for _, n := range clusterMatrix {
			cfg := pipeline.DefaultConfig()
			if err := StaticEquivalence(r, bench, 1, window, cfg, n); err != nil {
				t.Errorf("%s/%d clusters: %v", bench, n, err)
			}
		}
	}
}

// TestWindowMonotonicityMatrix: the realized in-flight window grows (or at
// worst stays, modulo scheduling noise) with the cluster count on every
// benchmark — the parallelism half of the paper's trade-off.
func TestWindowMonotonicityMatrix(t *testing.T) {
	window := matrixWindow(t)
	r := runner.New(0)
	for _, bench := range oracleBenches(t) {
		cfg := pipeline.DefaultConfig()
		if err := WindowMonotonicity(r, bench, 1, window, cfg, clusterMatrix, windowSlack); err != nil {
			t.Errorf("%s: %v", bench, err)
		}
	}
}

// windowSlack is the fractional peak-window decrease tolerated between
// adjacent cluster counts: adding clusters changes steering and thus *which*
// instructions are in flight at the peak, so the peak may jitter slightly
// even though capacity only grows.
const windowSlack = 0.05

// TestIntervalInvarianceMatrix: a 10K-interval trace aggregated 4x matches a
// 40K-interval trace of the identical run — count-exact, cycle-tolerant (the
// coarse recorder's interval clock spans inter-interval commit gaps the
// aggregated fine trace omits).
func TestIntervalInvarianceMatrix(t *testing.T) {
	window := matrixWindow(t) * 2
	r := runner.New(0)
	for _, bench := range oracleBenches(t) {
		cfg := pipeline.DefaultConfig()
		if err := IntervalInvariance(r, bench, 1, window, cfg, 10_000, 4, 0.10); err != nil {
			t.Errorf("%s: %v", bench, err)
		}
	}
}

// TestChunkInvarianceMatrix: slicing a window across several Run calls
// yields the identical cumulative Result.
func TestChunkInvarianceMatrix(t *testing.T) {
	window := matrixWindow(t)
	for _, bench := range oracleBenches(t) {
		cfg := pipeline.DefaultConfig()
		if err := ChunkInvariance(bench, 1, window, cfg, 7); err != nil {
			t.Errorf("%s: %v", bench, err)
		}
	}
}

func TestChunkInvarianceRejectsBadChunks(t *testing.T) {
	if err := ChunkInvariance("gzip", 1, 1_000, pipeline.DefaultConfig(), 1); err == nil {
		t.Fatal("expected an error for chunks < 2")
	}
}

// TestResumeEquivalenceMatrix: checkpoint/restore into a fresh machine is
// invisible to the simulation across every benchmark and every controller
// family — the paper-facing guarantee behind crash-safe sweeps. The
// checkpoint lands at an odd interior point so it never aligns with interval
// or basic-block boundaries.
func TestResumeEquivalenceMatrix(t *testing.T) {
	window := matrixWindow(t)
	at := window/3 + 137
	policies := []struct {
		name string
		mk   func() pipeline.Controller
	}{
		{"static", nil},
		{"explore", func() pipeline.Controller { return core.NewExplore(core.ExploreConfig{}) }},
		{"distant-ilp", func() pipeline.Controller { return core.NewDistantILP(core.DistantILPConfig{}) }},
		{"finegrain", func() pipeline.Controller { return core.NewFineGrain(core.FineGrainConfig{}) }},
	}
	for _, bench := range oracleBenches(t) {
		for _, pol := range policies {
			bench, pol := bench, pol
			t.Run(bench+"/"+pol.name, func(t *testing.T) {
				t.Parallel()
				cfg := pipeline.DefaultConfig()
				if err := ResumeEquivalence(bench, 1, window, at, cfg, pol.mk); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestStepperEquivalenceMatrix: the event-driven stepper and the seed
// per-cycle scan stepper are byte-identical on every benchmark under every
// controller family — the central differential guarantee behind the fast
// cycle loop (wheel wakeups, wait chains, stall fast-forward).
func TestStepperEquivalenceMatrix(t *testing.T) {
	window := matrixWindow(t)
	policies := []struct {
		name string
		mk   func() pipeline.Controller
	}{
		{"static", nil},
		{"explore", func() pipeline.Controller { return core.NewExplore(core.ExploreConfig{}) }},
		{"distant-ilp", func() pipeline.Controller { return core.NewDistantILP(core.DistantILPConfig{}) }},
		{"finegrain", func() pipeline.Controller { return core.NewFineGrain(core.FineGrainConfig{}) }},
	}
	for _, bench := range oracleBenches(t) {
		for _, pol := range policies {
			bench, pol := bench, pol
			t.Run(bench+"/"+pol.name, func(t *testing.T) {
				t.Parallel()
				cfg := pipeline.DefaultConfig()
				if err := StepperEquivalence(bench, 1, window, cfg, pol.mk); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// stepperEquivCustom is StepperEquivalence over a custom workload spec: both
// steppers run the identical generated stream and must agree byte-for-byte.
func stepperEquivCustom(t *testing.T, name string, phases []workload.Phase, window uint64, cfg pipeline.Config, mkCtrl func() pipeline.Controller) {
	t.Helper()
	run := func(legacy bool) pipeline.Result {
		c := cfg
		c.LegacyStepper = legacy
		gen, err := workload.Custom(name, phases, 1)
		if err != nil {
			t.Fatal(err)
		}
		var ctrl pipeline.Controller
		if mkCtrl != nil {
			ctrl = mkCtrl()
		}
		p, err := pipeline.New(c, gen, ctrl)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(window)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast, legacy := run(false), run(true)
	if fast != legacy {
		t.Errorf("%s: steppers diverge:\n  event:  %+v\n  legacy: %+v", name, fast, legacy)
	}
}

// TestStepperEquivalenceStallHeavy: a serial pointer-chase over a footprint
// far beyond the L1 and TLB reach keeps the machine stalled on memory for
// most of its cycles — the regime where stall fast-forward jumps hardest and
// any off-by-one in the next-event computation would shift a wakeup.
func TestStepperEquivalenceStallHeavy(t *testing.T) {
	k := workload.Kernel{
		Chains:     1,
		LoadFrac:   0.45,
		StoreFrac:  0.05,
		BranchFrac: 0.05,
		LoopBody:   16,
		LoopIters:  4,
		Footprint:  1 << 26,
		RandomAddr: true,
		Chase:      true,
	}
	stepperEquivCustom(t, "stall-heavy",
		[]workload.Phase{{Length: 200_000, Kernel: k}}, 30_000,
		pipeline.DefaultConfig(), nil)
}

// thrashCtrl requests an active-cluster flip between the extremes every few
// hundred commits, keeping the machine perpetually draining or ramping — the
// reconfiguration paths (recountLSQFull, drain progress, parked-state
// migration) under maximum churn.
type thrashCtrl struct{ total, n int }

func (c *thrashCtrl) Name() string      { return "thrash" }
func (c *thrashCtrl) Reset(total int)   { c.total, c.n = total, 0 }
func (c *thrashCtrl) OnCommit(ev pipeline.CommitEvent) int {
	c.n++
	if c.n%256 != 0 {
		return 0
	}
	if (c.n/256)%2 == 0 {
		return c.total
	}
	return 2
}

// TestStepperEquivalenceReconfigThrash: both steppers agree under a
// controller that thrashes the active-cluster count, on both cache models.
func TestStepperEquivalenceReconfigThrash(t *testing.T) {
	k := workload.Kernel{
		Chains:     8,
		LoadFrac:   0.25,
		StoreFrac:  0.15,
		BranchFrac: 0.10,
		CrossFrac:  0.40,
		LoopBody:   32,
		LoopIters:  8,
		Footprint:  1 << 20,
	}
	phases := []workload.Phase{{Length: 200_000, Kernel: k}}
	for _, tc := range []struct {
		name string
		cfg  pipeline.Config
	}{
		{"centralized", pipeline.DefaultConfig()},
		{"decentralized", func() pipeline.Config {
			c := pipeline.DefaultConfig()
			c.Cache = pipeline.DecentralizedCache
			return c
		}()},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			stepperEquivCustom(t, "reconfig-thrash", phases, 30_000, tc.cfg,
				func() pipeline.Controller { return &thrashCtrl{} })
		})
	}
}

func TestResumeEquivalenceRejectsBadCheckpointPoint(t *testing.T) {
	if err := ResumeEquivalence("gzip", 1, 1_000, 1_000, pipeline.DefaultConfig(), nil); err == nil {
		t.Fatal("expected an error for a checkpoint at/after the window")
	}
}
