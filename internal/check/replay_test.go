package check

import (
	"testing"

	"clustersim/internal/core"
	"clustersim/internal/pipeline"
	"clustersim/internal/trace"
	"clustersim/internal/workload"
)

// recordTrace snapshots a benchmark's stream with enough headroom to serve
// the window under any policy's fetch-ahead.
func recordTrace(t *testing.T, bench string, seed, window uint64) *trace.Trace {
	t.Helper()
	gen, err := workload.New(bench, seed)
	if err != nil {
		t.Fatal(err)
	}
	return trace.Record(gen, window+trace.DefaultHeadroom, trace.Meta{
		Name: bench, SourceKind: trace.SourceBench, SourceID: bench, Seed: seed,
	})
}

// TestResumeEquivalenceTracedRuns extends the crash-safety oracle to
// replayed workloads: an interrupted replay run, checkpointed and resumed
// into a freshly built replayer (as a restarted process re-reading the
// trace file would), finishes byte-identical to the uninterrupted replay.
func TestResumeEquivalenceTracedRuns(t *testing.T) {
	const window, at = 40_000, 17_000
	tr := recordTrace(t, "gzip", 1, window)
	mkGen := func() (workload.Generator, error) { return tr.Replayer(), nil }
	policies := []struct {
		name string
		mk   func() pipeline.Controller
	}{
		{"static", nil},
		{"dilp", func() pipeline.Controller { return core.NewDistantILP(core.DistantILPConfig{}) }},
		{"explore", func() pipeline.Controller { return core.NewExplore(core.ExploreConfig{}) }},
	}
	for _, pol := range policies {
		t.Run(pol.name, func(t *testing.T) {
			if err := ResumeEquivalenceGen("gzip-replayed", mkGen, window, at, pipeline.DefaultConfig(), pol.mk); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestReplayRunCyclesChunking: driving a replayed machine in many
// RunCycles slices must land on the same state as one big slice, and both
// must equal the live-generator machine — replay is transparent to how the
// caller advances time.
func TestReplayRunCyclesChunking(t *testing.T) {
	const (
		totalCycles = 24_000
		chunk       = 1_700 // deliberately not a divisor of totalCycles
		window      = 64_000
	)
	tr := recordTrace(t, "swim", 1, window)

	build := func(gen workload.Generator) *pipeline.Processor {
		t.Helper()
		p, err := pipeline.New(pipeline.DefaultConfig(), gen, core.NewDistantILP(core.DistantILPConfig{}))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	whole := build(tr.Replayer())
	wholeRes, err := whole.RunCycles(totalCycles)
	if err != nil {
		t.Fatal(err)
	}

	sliced := build(tr.Replayer())
	var slicedRes pipeline.Result
	for done := uint64(0); done < totalCycles; {
		n := uint64(chunk)
		if done+n > totalCycles {
			n = totalCycles - done
		}
		if slicedRes, err = sliced.RunCycles(n); err != nil {
			t.Fatal(err)
		}
		done += n
	}
	if wholeRes != slicedRes {
		t.Fatalf("chunked replay diverges from whole replay:\n  whole:   %+v\n  chunked: %+v", wholeRes, slicedRes)
	}

	liveGen, err := workload.New("swim", 1)
	if err != nil {
		t.Fatal(err)
	}
	live := build(liveGen)
	liveRes, err := live.RunCycles(totalCycles)
	if err != nil {
		t.Fatal(err)
	}
	if liveRes != wholeRes {
		t.Fatalf("replay diverges from live generation:\n  live:   %+v\n  replay: %+v", liveRes, wholeRes)
	}
}

// TestReplayExhaustionIsRunError: a trace recorded without enough headroom
// fails loudly through the runner's recover path rather than crashing the
// process or silently truncating the run.
func TestReplayExhaustionIsRunError(t *testing.T) {
	gen, err := workload.New("gzip", 1)
	if err != nil {
		t.Fatal(err)
	}
	short := trace.Record(gen, 1_000, trace.Meta{Name: "gzip", SourceKind: trace.SourceBench, SourceID: "gzip", Seed: 1})
	p, err := pipeline.New(pipeline.DefaultConfig(), short.Replayer(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("running past the recording did not panic")
		}
		if _, ok := r.(*trace.ExhaustedError); !ok {
			t.Fatalf("panicked with %T, want *trace.ExhaustedError", r)
		}
	}()
	p.Run(10_000) //simlint:allow errflow the run must panic with ExhaustedError; the deferred recover is the assertion
}
