// Package check is the simulator's validation subsystem: cycle-level
// invariant checking, metamorphic/differential oracles, and fuzzed
// workloads.
//
// The paper's headline numbers (interval-based ≈ +11%, fine-grained ≈ +15%
// over the best static configuration) are IPC ratios between runs of the
// same machine at different cluster counts, so they are only meaningful if
// the simulator's cycle accounting is internally consistent across every
// configuration the controllers explore. This package cross-checks that in
// three ways:
//
//   - Invariants implements pipeline.Checker and validates structural
//     invariants of the machine at the end of every simulated cycle: the
//     in-flight window never exceeds the ROB, physical-register and
//     issue-queue occupancy stay within per-cluster capacity (catching
//     scoreboard leaks and double-frees), LSQ occupancy respects the cache
//     model, interconnect link-transfer conservation holds, the memory
//     hierarchy's accounting identities balance, and the distant-ILP
//     counters never exceed the instructions that could have produced them.
//
//   - oracle.go provides metamorphic and differential oracles executed
//     through the internal/runner pool: seed determinism, static-controller
//     equivalence, cluster-count monotonicity of the realized window,
//     interval-length invariance of recorded phase traces, and run-chunking
//     invariance.
//
//   - fuzz_test.go fuzzes machine configurations and workload-generator
//     parameters against the invariant checker, with the interesting inputs
//     pinned as a seed corpus so every past crasher stays a regression test.
//
// A checker is attached via pipeline.Config.Checker and is designed to be
// perf-neutral when absent: the pipeline pays one pointer test per cycle and
// a checked cycle allocates nothing unless a violation is recorded.
package check

import (
	"fmt"
	"strings"

	"clustersim/internal/interconnect"
	"clustersim/internal/mem"
	"clustersim/internal/pipeline"
)

// maxViolations bounds the violations kept per run; later ones are counted
// but dropped (a broken machine violates invariants on nearly every cycle).
const maxViolations = 64

// Violation describes one failed invariant at one cycle.
type Violation struct {
	// Cycle is the simulation cycle the invariant failed on.
	Cycle uint64
	// Invariant names the failed check (e.g. "rob-window", "reg-conservation").
	Invariant string
	// Detail describes the observed inconsistency.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("cycle %d: %s: %s", v.Cycle, v.Invariant, v.Detail)
}

// Invariants is a pipeline.Checker validating the machine's cycle-level
// invariants. The zero value is not ready; use New or NewFailFast. One
// instance observes exactly one run: it tracks cumulative counters between
// cycles, so instances must not be shared across processors or reused.
type Invariants struct {
	failFast bool

	cycles     uint64
	lastCycle  uint64
	peakWindow uint64
	peakIQ     int

	prevMem       mem.Stats
	prevNet       interconnect.Stats
	prevActiveSum uint64
	prevReconfigs uint64

	violations []Violation
	dropped    int
}

// New returns a checker that records violations (up to an internal cap) and
// reports them through Err after the run.
func New() *Invariants { return &Invariants{} }

// NewFailFast returns a checker that panics on the first violation. The
// runner converts run panics into per-run errors, so fail-fast checkers are
// the right choice inside sweeps and fuzz targets.
func NewFailFast() *Invariants { return &Invariants{failFast: true} }

// Name identifies the checker's validation mode; the runner folds it into
// the run-cache key so checked and unchecked runs can never alias.
func (k *Invariants) Name() string {
	if k.failFast {
		return "invariants-failfast"
	}
	return "invariants"
}

// CyclesChecked returns the number of cycles validated.
func (k *Invariants) CyclesChecked() uint64 { return k.cycles }

// PeakWindow returns the largest in-flight window (ROB occupancy) observed —
// the realized window size the cluster-count monotonicity oracle compares.
func (k *Invariants) PeakWindow() uint64 { return k.peakWindow }

// PeakIQ returns the largest total issue-queue occupancy observed.
func (k *Invariants) PeakIQ() int { return k.peakIQ }

// Violations returns the recorded violations (empty for a clean run).
func (k *Invariants) Violations() []Violation { return k.violations }

// Err returns nil for a clean run, or an error aggregating every recorded
// violation.
func (k *Invariants) Err() error {
	if len(k.violations) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d invariant violation(s)", len(k.violations)+k.dropped)
	if k.dropped > 0 {
		fmt.Fprintf(&b, " (%d dropped)", k.dropped)
	}
	for _, v := range k.violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return fmt.Errorf("check: %s", b.String())
}

// fail records one violation (or panics under fail-fast).
func (k *Invariants) fail(cycle uint64, invariant, format string, args ...any) {
	v := Violation{Cycle: cycle, Invariant: invariant, Detail: fmt.Sprintf(format, args...)}
	if k.failFast {
		//simlint:allow nopanic fail-fast mode is an explicit user request to halt at the first violation with a full stack
		panic("check: " + v.String())
	}
	if len(k.violations) >= maxViolations {
		k.dropped++
		return
	}
	k.violations = append(k.violations, v)
}

// CheckCycle implements pipeline.Checker.
func (k *Invariants) CheckCycle(v *pipeline.MachineView) {
	cfg := v.Config
	st := v.Stats
	k.cycles++

	// The pipeline advances one cycle per step and checks every step; a
	// skew here means the checker instance is being shared or reused.
	if v.Cycle != k.lastCycle+1 {
		k.fail(v.Cycle, "cycle-sequence", "expected cycle %d (one checker per run?)", k.lastCycle+1)
	}
	k.lastCycle = v.Cycle

	// In-flight window: head..tail..fetch are ordered, the ROB holds at
	// most cfg.ROB instructions, and commits advance the head exactly.
	if v.TailSeq < v.HeadSeq || v.FetchSeq < v.TailSeq {
		k.fail(v.Cycle, "seq-order", "head %d, tail %d, fetch %d out of order", v.HeadSeq, v.TailSeq, v.FetchSeq)
		return // derived window math below would wrap
	}
	window := v.TailSeq - v.HeadSeq
	if window > uint64(cfg.ROB) {
		k.fail(v.Cycle, "rob-window", "in-flight window %d exceeds ROB %d", window, cfg.ROB)
	}
	if window > k.peakWindow {
		k.peakWindow = window
	}
	if v.HeadSeq != v.Committed {
		k.fail(v.Cycle, "commit-head", "ROB head %d != committed %d", v.HeadSeq, v.Committed)
	}
	if st.Dispatched != v.TailSeq {
		k.fail(v.Cycle, "dispatch-tail", "dispatched %d != ROB tail %d", st.Dispatched, v.TailSeq)
	}
	if st.Fetched != v.FetchSeq {
		k.fail(v.Cycle, "fetch-seq", "fetched %d != fetch seq %d", st.Fetched, v.FetchSeq)
	}

	// Configuration bounds.
	if v.Active < 1 || v.Active > cfg.Clusters {
		k.fail(v.Cycle, "active-range", "active clusters %d outside [1,%d]", v.Active, cfg.Clusters)
	}
	if v.FetchQueueLen < 0 || v.FetchQueueLen > cfg.FetchQueue {
		k.fail(v.Cycle, "fetch-queue", "occupancy %d outside [0,%d]", v.FetchQueueLen, cfg.FetchQueue)
	}
	if da := st.ActiveSum - k.prevActiveSum; da != uint64(v.Active) {
		k.fail(v.Cycle, "active-sum", "ActiveSum advanced by %d with %d clusters active", da, v.Active)
	}
	k.prevActiveSum = st.ActiveSum
	if st.Reconfigs < k.prevReconfigs {
		k.fail(v.Cycle, "reconfig-count", "Reconfigs went backwards: %d -> %d", k.prevReconfigs, st.Reconfigs)
	}
	k.prevReconfigs = st.Reconfigs

	// Per-cluster occupancy: issue queues within capacity, physical
	// registers conserved (a negative count is a double-free, one beyond
	// capacity is a leak — either way a register was read after free or
	// freed while live), LSQ slots within the model's capacity.
	sumIQ, sumRegs := 0, 0
	for c := 0; c < cfg.Clusters; c++ {
		if q := v.IQInt[c]; q < 0 || q > cfg.IQPerCluster {
			k.fail(v.Cycle, "iq-capacity", "cluster %d int IQ %d outside [0,%d]", c, q, cfg.IQPerCluster)
		}
		if q := v.IQFP[c]; q < 0 || q > cfg.IQPerCluster {
			k.fail(v.Cycle, "iq-capacity", "cluster %d fp IQ %d outside [0,%d]", c, q, cfg.IQPerCluster)
		}
		if r := v.IntRegs[c]; r < 0 || r > cfg.RegsPerCluster {
			k.fail(v.Cycle, "reg-conservation", "cluster %d int regs %d outside [0,%d]", c, r, cfg.RegsPerCluster)
		}
		if r := v.FPRegs[c]; r < 0 || r > cfg.RegsPerCluster {
			k.fail(v.Cycle, "reg-conservation", "cluster %d fp regs %d outside [0,%d]", c, r, cfg.RegsPerCluster)
		}
		switch {
		case cfg.Cache == pipeline.CentralizedCache && v.LSQ[c] != 0:
			k.fail(v.Cycle, "lsq-capacity", "cluster %d LSQ %d under the centralized model", c, v.LSQ[c])
		case cfg.Cache == pipeline.DecentralizedCache && (v.LSQ[c] < 0 || v.LSQ[c] > cfg.LSQPerCluster):
			k.fail(v.Cycle, "lsq-capacity", "cluster %d LSQ %d outside [0,%d]", c, v.LSQ[c], cfg.LSQPerCluster)
		}
		sumIQ += v.IQInt[c] + v.IQFP[c]
		sumRegs += v.IntRegs[c] + v.FPRegs[c]
	}
	if sumIQ > k.peakIQ {
		k.peakIQ = sumIQ
	}
	// Every queued-unissued instruction and every live destination
	// register belongs to exactly one in-flight instruction.
	if uint64(sumIQ) > window {
		k.fail(v.Cycle, "iq-conservation", "issue queues hold %d seqs but only %d in flight", sumIQ, window)
	}
	if uint64(sumRegs) > window {
		k.fail(v.Cycle, "reg-conservation", "%d registers live but only %d in flight", sumRegs, window)
	}
	switch cfg.Cache {
	case pipeline.CentralizedCache:
		if cap := cfg.Clusters * cfg.LSQPerCluster; v.LSQCentral < 0 || v.LSQCentral > cap {
			k.fail(v.Cycle, "lsq-capacity", "centralized LSQ %d outside [0,%d]", v.LSQCentral, cap)
		}
	case pipeline.DecentralizedCache:
		if v.LSQCentral != 0 {
			k.fail(v.Cycle, "lsq-capacity", "centralized LSQ %d under the decentralized model", v.LSQCentral)
		}
	}

	// Distant ILP: an instruction is counted distant at issue and again at
	// commit, so the counters are bounded by dispatches and commits.
	if st.DistantIssued > st.Dispatched {
		k.fail(v.Cycle, "distant-ilp", "distant issued %d exceeds %d dispatched", st.DistantIssued, st.Dispatched)
	}
	if st.DistantCommitted > st.DistantIssued {
		k.fail(v.Cycle, "distant-ilp", "distant committed %d exceeds distant issued %d", st.DistantCommitted, st.DistantIssued)
	}
	if st.DistantCommitted > v.Committed {
		k.fail(v.Cycle, "distant-ilp", "distant committed %d exceeds %d committed", st.DistantCommitted, v.Committed)
	}

	// Subsystem conservation.
	if err := v.NetStats.Conserved(k.prevNet, v.NetDiameter); err != nil {
		k.fail(v.Cycle, "link-conservation", "%v", err)
	}
	k.prevNet = v.NetStats
	if err := v.MemStats.Conserved(k.prevMem); err != nil {
		k.fail(v.Cycle, "mem-conservation", "%v", err)
	}
	k.prevMem = v.MemStats
}

var _ pipeline.Checker = (*Invariants)(nil)
