package check

import (
	"testing"

	"clustersim/internal/isa"
	"clustersim/internal/pipeline"
	"clustersim/internal/workload"
)

// Fuzz targets drive the invariant checker over machine-configuration and
// workload-generator parameter spaces the bundled experiments never visit.
// Any crash or invariant violation found by `go test -fuzz` is minimized
// into testdata/fuzz/<Target>/ by the Go tooling; committed entries run as
// regression cases on every plain `go test`.

// fuzzConfig maps raw fuzz bytes onto a valid machine configuration. Values
// are folded into conservative ranges: the goal is exploring real
// configuration diversity, not discovering that absurd capacities (one
// register per cluster) starve the machine.
func fuzzConfig(clusters, iq, regs, lsq uint8, rob uint16, distCache, grid bool) pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.Clusters = 1 << (clusters % 5) // 1,2,4,8,16 (dist cache needs powers of two)
	cfg.ActiveClusters = cfg.Clusters
	cfg.IQPerCluster = 4 + int(iq%29)     // 4..32
	cfg.RegsPerCluster = 8 + int(regs%41) // 8..48
	cfg.LSQPerCluster = 8 + int(lsq%25)   // 8..32
	cfg.ROB = 64 + int(rob%449)           // 64..512
	if distCache {
		cfg.Cache = pipeline.DecentralizedCache
	}
	if grid {
		cfg.Topology = pipeline.GridTopology
	}
	return cfg
}

func fuzzBench(idx uint8) string {
	names := workload.Benchmarks()
	return names[int(idx)%len(names)]
}

// runNoPanic asserts the hardened failure contract over the fuzzed space:
// Run reports failures as errors (deadlock, stop), it never panics. Any
// panic escaping Run — or any error on these small, valid configurations —
// is a finding.
func runNoPanic(t *testing.T, p *pipeline.Processor, n uint64) pipeline.Result {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic escaped Run: %v", r)
		}
	}()
	res, err := p.Run(n)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// FuzzInvariants runs a fuzz-chosen benchmark on a fuzz-chosen machine with
// a fail-fast invariant checker attached: any violated invariant (or panic)
// is a finding.
func FuzzInvariants(f *testing.F) {
	f.Add(uint8(0), uint64(1), uint8(4), uint8(11), uint8(22), uint8(7), uint16(416), false, false)
	f.Add(uint8(3), uint64(42), uint8(1), uint8(0), uint8(0), uint8(0), uint16(0), true, false)
	f.Add(uint8(7), uint64(99), uint8(2), uint8(28), uint8(40), uint8(24), uint16(300), true, true)
	f.Fuzz(func(t *testing.T, bench uint8, seed uint64, clusters, iq, regs, lsq uint8, rob uint16, distCache, grid bool) {
		cfg := fuzzConfig(clusters, iq, regs, lsq, rob, distCache, grid)
		chk := NewFailFast()
		cfg.Checker = chk
		p, err := pipeline.New(cfg, workload.MustNew(fuzzBench(bench), seed), nil)
		if err != nil {
			t.Skip(err)
		}
		runNoPanic(t, p, 3_000)
		if chk.CyclesChecked() == 0 {
			t.Fatal("checker never ran")
		}
	})
}

// FuzzRunDeterminism re-runs every fuzz-chosen (benchmark, seed, config)
// cell and requires byte-identical Results — the determinism oracle over the
// fuzzed configuration space — and then runs the same cell under the legacy
// per-cycle scan stepper, which must agree exactly (the fast-vs-legacy
// differential over the same space).
func FuzzRunDeterminism(f *testing.F) {
	f.Add(uint8(1), uint64(7), uint8(3), uint8(11), uint8(22), uint8(7), uint16(416), false)
	f.Add(uint8(5), uint64(123), uint8(4), uint8(5), uint8(9), uint8(14), uint16(100), true)
	f.Fuzz(func(t *testing.T, bench uint8, seed uint64, clusters, iq, regs, lsq uint8, rob uint16, distCache bool) {
		cfg := fuzzConfig(clusters, iq, regs, lsq, rob, distCache, false)
		name := fuzzBench(bench)
		run := func(c pipeline.Config) pipeline.Result {
			p, err := pipeline.New(c, workload.MustNew(name, seed), nil)
			if err != nil {
				t.Skip(err)
			}
			return runNoPanic(t, p, 2_000)
		}
		a, b := run(cfg), run(cfg)
		if a != b {
			t.Fatalf("%s seed %d not deterministic:\n  A: %+v\n  B: %+v", name, seed, a, b)
		}
		legacy := cfg
		legacy.LegacyStepper = true
		if c := run(legacy); a != c {
			t.Fatalf("%s seed %d: steppers diverge:\n  event:  %+v\n  legacy: %+v", name, seed, a, c)
		}
	})
}

// FuzzCustomWorkload fuzzes the workload generator's own parameter space
// through workload.Custom: the generated stream must be deterministic and
// must run cleanly under the invariant checker.
func FuzzCustomWorkload(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(50), uint8(30), uint8(30), uint8(40), uint8(16), uint8(20), int16(8), uint32(1<<16), false, false, false)
	f.Add(uint64(9), uint8(1), uint8(0), uint8(0), uint8(255), uint8(0), uint8(4), uint8(2), int16(-64), uint32(0), true, true, true)
	f.Add(uint64(77), uint8(32), uint8(80), uint8(80), uint8(80), uint8(255), uint8(255), uint8(255), int16(4096), uint32(1<<24), false, true, false)
	f.Fuzz(func(t *testing.T, seed uint64, chains, loadF, storeF, branchF, crossF, loopBody, loopIters uint8, stride int16, footprint uint32, fp, randomAddr, chase bool) {
		k := workload.Kernel{
			Chains:     1 + int(chains%32),
			FP:         fp,
			LoadFrac:   float64(loadF) / 512,  // <= ~0.5
			StoreFrac:  float64(storeF) / 512, // body fractions stay feasible
			BranchFrac: float64(branchF) / 512,
			CrossFrac:  float64(crossF) / 255,
			LoopBody:   int(loopBody),  // engine floors at 4
			LoopIters:  int(loopIters), // engine floors at 2
			Stride:     int64(stride),
			Footprint:  int64(footprint),
			RandomAddr: randomAddr,
			Chase:      chase,
		}
		gen, err := workload.Custom("fuzz", []workload.Phase{{Length: 10_000, Kernel: k}}, seed)
		if err != nil {
			t.Skip(err)
		}
		// Stream determinism: two generators from the same spec and seed
		// emit identical instructions.
		gen2, err := workload.Custom("fuzz", []workload.Phase{{Length: 10_000, Kernel: k}}, seed)
		if err != nil {
			t.Fatal(err)
		}
		var a, b isa.Instruction
		for i := 0; i < 2_000; i++ {
			gen.Next(&a)
			gen2.Next(&b)
			if a != b {
				t.Fatalf("instruction %d diverges: %+v vs %+v", i, a, b)
			}
		}
		// The stream must drive the machine without violating invariants.
		gen.Reset()
		cfg := pipeline.DefaultConfig()
		cfg.Clusters = 4
		cfg.ActiveClusters = 4
		chk := NewFailFast()
		cfg.Checker = chk
		p, err := pipeline.New(cfg, gen, nil)
		if err != nil {
			t.Fatal(err)
		}
		runNoPanic(t, p, 2_000)
	})
}
