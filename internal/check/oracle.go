package check

import (
	"bytes"
	"fmt"

	"clustersim/internal/core"
	"clustersim/internal/pipeline"
	"clustersim/internal/runner"
	"clustersim/internal/stats"
	"clustersim/internal/workload"
)

// This file holds the metamorphic and differential oracles: properties that
// must hold between *pairs or families* of runs, checked by executing the
// family through the internal/runner pool and comparing Results. They
// complement the per-cycle invariants in check.go — an invariant catches a
// machine in an inconsistent state, an oracle catches a machine that is
// self-consistent but wrong (e.g. a seed leak that makes "identical" runs
// diverge, or a reconfiguration path that changes timing when it should be
// a no-op).

// Determinism verifies seed determinism: executing the same (benchmark,
// seed, window, config) twice yields byte-identical Results. Both runs
// bypass the cache (a cache hit would compare a Result with itself).
func Determinism(r *runner.Runner, bench string, seed, window uint64, cfg pipeline.Config) error {
	reqs := []runner.Request{
		{ID: "determinism/a", Bench: bench, Seed: seed, Window: window, Config: cfg, NoCache: true},
		{ID: "determinism/b", Bench: bench, Seed: seed, Window: window, Config: cfg, NoCache: true},
	}
	res, err := r.RunAll(reqs)
	if err != nil {
		return err
	}
	if res[0] != res[1] {
		return fmt.Errorf("check: %s seed %d not deterministic:\n  run A: %+v\n  run B: %+v", bench, seed, res[0], res[1])
	}
	return nil
}

// StaticEquivalence verifies static-config dominance in its exact form: a
// controller pinned to n clusters is a cycle-for-cycle no-op, so its Result
// equals the static n-cluster configuration's Result in every field. In
// particular the controller can never beat the static machine it mimics.
func StaticEquivalence(r *runner.Runner, bench string, seed, window uint64, cfg pipeline.Config, n int) error {
	cfg.ActiveClusters = n
	reqs := []runner.Request{
		{ID: "static-equiv/config", Bench: bench, Seed: seed, Window: window, Config: cfg, NoCache: true},
		{ID: "static-equiv/controller", Bench: bench, Seed: seed, Window: window, Config: cfg,
			Controller: &core.Static{N: n}, NoCache: true},
	}
	res, err := r.RunAll(reqs)
	if err != nil {
		return err
	}
	if res[0] != res[1] {
		return fmt.Errorf("check: %s static-%d controller diverges from static config:\n  config:     %+v\n  controller: %+v",
			bench, n, res[0], res[1])
	}
	return nil
}

// WindowMonotonicity verifies that the realized in-flight window (peak ROB
// occupancy, measured by an attached Invariants checker) does not shrink as
// clusters are added: more clusters mean more registers and issue-queue
// slots, so the machine can only keep more instructions in flight — the
// capacity side of the paper's communication-parallelism trade-off. slack
// allows a small fractional decrease (scheduling noise changes *which*
// instructions are in flight, slightly perturbing the peak); 0 demands
// strict monotonicity. Each run is also invariant-checked.
func WindowMonotonicity(r *runner.Runner, bench string, seed, window uint64, cfg pipeline.Config, clusters []int, slack float64) error {
	chks := make([]*Invariants, len(clusters))
	reqs := make([]runner.Request, len(clusters))
	for i, n := range clusters {
		c := cfg
		c.Clusters = n
		c.ActiveClusters = n
		chks[i] = New()
		c.Checker = chks[i]
		reqs[i] = runner.Request{
			ID: fmt.Sprintf("window-mono/%d", n), Bench: bench, Seed: seed, Window: window, Config: c,
		}
	}
	if _, err := r.RunAll(reqs); err != nil {
		return err
	}
	for i, k := range chks {
		if err := k.Err(); err != nil {
			return fmt.Errorf("%d clusters: %w", clusters[i], err)
		}
	}
	for i := 1; i < len(chks); i++ {
		prev, cur := chks[i-1].PeakWindow(), chks[i].PeakWindow()
		if float64(cur) < float64(prev)*(1-slack) {
			return fmt.Errorf("check: %s peak window shrank from %d (%d clusters) to %d (%d clusters), beyond slack %.2f",
				bench, prev, clusters[i-1], cur, clusters[i], slack)
		}
	}
	return nil
}

// IntervalInvariance verifies interval-length permutation invariance of the
// phase-trace machinery: recording at base granularity and coarsening by k
// (stats.Aggregate) must match recording at base*k directly. Recorders never
// reconfigure, so both runs have identical timing; the per-interval counts
// (instructions, branches, memrefs, distant) therefore agree exactly. Cycles
// may differ slightly — a recorder's interval clock starts at the interval's
// first commit, so the coarse recording includes inter-interval commit gaps
// that the aggregated fine recording does not — bounded by cycleTol
// (fractional).
func IntervalInvariance(r *runner.Runner, bench string, seed, window uint64, cfg pipeline.Config, base uint64, k int, cycleTol float64) error {
	fine := stats.NewRecorder(base)
	coarse := stats.NewRecorder(base * uint64(k))
	reqs := []runner.Request{
		{ID: "interval-inv/fine", Bench: bench, Seed: seed, Window: window, Config: cfg, Controller: fine, NoCache: true},
		{ID: "interval-inv/coarse", Bench: bench, Seed: seed, Window: window, Config: cfg, Controller: coarse, NoCache: true},
	}
	if _, err := r.RunAll(reqs); err != nil {
		return err
	}
	agg := stats.Aggregate(fine.Intervals(), k)
	direct := coarse.Intervals()
	if len(agg) != len(direct) {
		return fmt.Errorf("check: %s interval traces disagree in length: %d aggregated vs %d direct", bench, len(agg), len(direct))
	}
	for i := range agg {
		a, d := agg[i], direct[i]
		if a.Instructions != d.Instructions || a.Branches != d.Branches || a.Memrefs != d.Memrefs || a.Distant != d.Distant {
			return fmt.Errorf("check: %s interval %d counts disagree:\n  aggregated: %+v\n  direct:     %+v", bench, i, a, d)
		}
		lo, hi := float64(a.Cycles)*(1-cycleTol), float64(a.Cycles)*(1+cycleTol)
		if float64(d.Cycles) < lo || float64(d.Cycles) > hi {
			return fmt.Errorf("check: %s interval %d cycles %d outside ±%.0f%% of aggregated %d",
				bench, i, d.Cycles, cycleTol*100, a.Cycles)
		}
	}
	return nil
}

// ResumeEquivalence verifies the crash-safety contract end to end: running a
// window uninterrupted, versus running to an arbitrary interior point,
// serializing the machine with SaveCheckpoint, restoring into a *freshly
// constructed* processor (as a restarted process would) and finishing there,
// must yield byte-identical Results. mkCtrl builds the run's controller (nil
// for static); a fresh instance is built per machine so no state leaks
// between the interrupted and resumed halves outside the snapshot itself.
func ResumeEquivalence(bench string, seed, window, at uint64, cfg pipeline.Config, mkCtrl func() pipeline.Controller) error {
	return ResumeEquivalenceGen(bench,
		func() (workload.Generator, error) { return workload.New(bench, seed) },
		window, at, cfg, mkCtrl)
}

// ResumeEquivalenceGen is ResumeEquivalence over an arbitrary generator
// factory — the oracle form spec-compiled and trace-replayed workloads
// use. mkGen must build a fresh, rewound generator per call (three
// machines are constructed); label names the workload in error messages.
func ResumeEquivalenceGen(label string, mkGen func() (workload.Generator, error), window, at uint64, cfg pipeline.Config, mkCtrl func() pipeline.Controller) error {
	if at == 0 || at >= window {
		return fmt.Errorf("check: ResumeEquivalence checkpoint %d outside (0,%d)", at, window)
	}
	build := func() (*pipeline.Processor, error) {
		gen, err := mkGen()
		if err != nil {
			return nil, err
		}
		var ctrl pipeline.Controller
		if mkCtrl != nil {
			ctrl = mkCtrl()
		}
		return pipeline.New(cfg, gen, ctrl)
	}

	p1, err := build()
	if err != nil {
		return err
	}
	whole, err := p1.Run(window)
	if err != nil {
		return err
	}

	p2, err := build()
	if err != nil {
		return err
	}
	if _, err := p2.Run(at); err != nil {
		return err
	}
	var snapBuf bytes.Buffer
	if err := p2.SaveCheckpoint(&snapBuf); err != nil {
		return err
	}

	p3, err := build()
	if err != nil {
		return err
	}
	if err := p3.LoadCheckpoint(bytes.NewReader(snapBuf.Bytes())); err != nil {
		return err
	}
	resumed, err := p3.Run(window - p3.Committed())
	if err != nil {
		return err
	}
	if resumed != whole {
		return fmt.Errorf("check: %s resume at %d diverges from uninterrupted run:\n  whole:   %+v\n  resumed: %+v",
			label, at, whole, resumed)
	}
	return nil
}

// StepperEquivalence is the fast-vs-legacy differential: the event-driven
// stepper (wheel wakeups, wait chains, stall fast-forward) and the seed
// per-cycle scan stepper must produce byte-identical Results on the same
// (benchmark, seed, window, config, controller) cell. This drives the
// pipeline directly rather than through the runner: Config.LegacyStepper is
// deliberately excluded from the configuration fingerprint (the steppers are
// timing-equivalent, so snapshots and cache entries are shared), which means
// the runner's result cache cannot tell the two modes apart and a cached
// comparison would be vacuous. mkCtrl builds a fresh controller per machine
// (nil for static).
func StepperEquivalence(bench string, seed, window uint64, cfg pipeline.Config, mkCtrl func() pipeline.Controller) error {
	run := func(legacy bool) (pipeline.Result, error) {
		c := cfg
		c.LegacyStepper = legacy
		gen, err := workload.New(bench, seed)
		if err != nil {
			return pipeline.Result{}, err
		}
		var ctrl pipeline.Controller
		if mkCtrl != nil {
			ctrl = mkCtrl()
		}
		p, err := pipeline.New(c, gen, ctrl)
		if err != nil {
			return pipeline.Result{}, err
		}
		return p.Run(window)
	}
	fast, err := run(false)
	if err != nil {
		return fmt.Errorf("check: %s event stepper: %w", bench, err)
	}
	legacy, err := run(true)
	if err != nil {
		return fmt.Errorf("check: %s legacy stepper: %w", bench, err)
	}
	if fast != legacy {
		return fmt.Errorf("check: %s steppers diverge:\n  event:  %+v\n  legacy: %+v", bench, fast, legacy)
	}
	return nil
}

// ChunkInvariance verifies that simulating a window in one Run call and in
// several smaller Run calls yields identical cumulative Results: Run only
// advances the machine, so how the caller slices the window cannot matter.
// This oracle drives the pipeline directly (the runner always simulates a
// window in one call).
func ChunkInvariance(bench string, seed, window uint64, cfg pipeline.Config, chunks int) error {
	if chunks < 2 {
		return fmt.Errorf("check: ChunkInvariance needs >= 2 chunks, got %d", chunks)
	}
	run := func(parts int) (pipeline.Result, error) {
		gen, err := workload.New(bench, seed)
		if err != nil {
			return pipeline.Result{}, err
		}
		p, err := pipeline.New(cfg, gen, nil)
		if err != nil {
			return pipeline.Result{}, err
		}
		// Commits overshoot (up to CommitWidth-1 past a target), so chunk
		// toward absolute targets: the chunked machine then passes through
		// exactly the states the single-call machine does.
		var res pipeline.Result
		var committed uint64
		for i := 1; i <= parts; i++ {
			next := window * uint64(i) / uint64(parts)
			if next > committed {
				res, err = p.Run(next - committed)
				if err != nil {
					return res, err
				}
				committed = res.Instructions
			}
		}
		return res, nil
	}
	whole, err := run(1)
	if err != nil {
		return err
	}
	sliced, err := run(chunks)
	if err != nil {
		return err
	}
	if whole != sliced {
		return fmt.Errorf("check: %s chunked run diverges:\n  whole:  %+v\n  %d-way: %+v", bench, whole, chunks, sliced)
	}
	return nil
}
