package telemetry

import (
	"strings"
	"testing"
)

func TestPhaseTimerPeriodRounding(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, DefaultPhasePeriod},
		{1, 1},
		{2, 2},
		{3, 4},
		{64, 64},
		{100, 128},
		{1000, 1024},
	}
	for _, c := range cases {
		if got := NewPhaseTimer(c.in).Period(); got != c.want {
			t.Errorf("NewPhaseTimer(%d).Period() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestPhaseTimerDue(t *testing.T) {
	pt := NewPhaseTimer(4)
	due := 0
	for cycle := uint64(0); cycle < 64; cycle++ {
		if pt.Due(cycle) {
			due++
			if cycle%4 != 0 {
				t.Errorf("cycle %d due with period 4", cycle)
			}
		}
	}
	if due != 16 {
		t.Errorf("64 cycles at period 4: %d due, want 16", due)
	}
}

func TestPhaseTimerAttribution(t *testing.T) {
	pt := NewPhaseTimer(1) // sample every cycle
	const cycles = 100
	for i := 0; i < cycles; i++ {
		cur := pt.Begin()
		for p := Phase(0); p < NumPhases; p++ {
			cur = pt.Lap(p, cur)
		}
	}
	r := pt.Report()
	if r.SampledCycles != cycles {
		t.Fatalf("SampledCycles = %d, want %d", r.SampledCycles, cycles)
	}
	if len(r.Phases) != int(NumPhases) {
		t.Fatalf("report has %d phases, want %d", len(r.Phases), NumPhases)
	}
	var fracSum float64
	for _, s := range r.Phases {
		if s.Laps != cycles {
			t.Errorf("phase %s laps = %d, want %d", s.Phase, s.Laps, cycles)
		}
		if s.Nanos < 0 {
			t.Errorf("phase %s negative nanos %d", s.Phase, s.Nanos)
		}
		fracSum += s.Fraction
	}
	if r.TotalNanos > 0 && (fracSum < 0.999 || fracSum > 1.001) {
		t.Errorf("fractions sum to %v, want ~1", fracSum)
	}
}

func TestPhaseReportTable(t *testing.T) {
	pt := NewPhaseTimer(1)
	cur := pt.Begin()
	for p := Phase(0); p < NumPhases; p++ {
		cur = pt.Lap(p, cur)
	}
	table := pt.Report().Table()
	for p := Phase(0); p < NumPhases; p++ {
		if !strings.Contains(table, p.String()) {
			t.Errorf("table missing phase %q:\n%s", p, table)
		}
	}
	if !strings.Contains(table, "share") {
		t.Errorf("table missing header:\n%s", table)
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseCommit.String() != "commit" || PhaseObserve.String() != "observe" {
		t.Error("phase names out of order")
	}
	if NumPhases.String() != "unknown" {
		t.Errorf("out-of-range phase = %q, want unknown", NumPhases.String())
	}
}

func TestFmtNanos(t *testing.T) {
	cases := []struct {
		ns   int64
		want string
	}{
		{500, "500ns"},
		{2500, "2.50µs"},
		{3_500_000, "3.50ms"},
		{2_250_000_000, "2.25s"},
	}
	for _, c := range cases {
		if got := fmtNanos(c.ns); got != c.want {
			t.Errorf("fmtNanos(%d) = %q, want %q", c.ns, got, c.want)
		}
	}
}
