package telemetry

import (
	"sync/atomic"

	"clustersim/internal/obs"
)

// Span classifies one timed section of a sweep run's lifecycle.
type Span uint8

// Run-lifecycle spans.
const (
	// SpanQueueWait is the time a request spent admitted but waiting for
	// a worker.
	SpanQueueWait Span = iota
	// SpanCacheLookup is run-cache resolution time.
	SpanCacheLookup
	// SpanExecute is actual simulator execution time.
	SpanExecute
	// SpanCheckpoint is crash-safety snapshot write time.
	SpanCheckpoint
	// SpanBackoff is retry backoff sleep time.
	SpanBackoff
	// NumSpans is the span-kind count.
	NumSpans
)

// spanNames index the per-span counters, in Span order.
var spanNames = [NumSpans]string{
	"queue_wait", "cache_lookup", "execute", "checkpoint", "backoff",
}

// String returns the span's metric name segment.
func (s Span) String() string {
	if int(s) < len(spanNames) {
		return spanNames[s]
	}
	return "unknown"
}

// SweepMeter instruments a runner: per-run spans, live gauges and a JSONL
// progress stream. A nil *SweepMeter is the disabled state — every method
// is nil-safe and the runner's hooks reduce to one pointer test — so an
// uninstrumented sweep pays nothing.
//
// All counters are atomic: one meter serves a whole worker pool, and its
// registry may be served over HTTP (obs.Serve) while the sweep runs.
type SweepMeter struct {
	progress *ProgressWriter

	workers atomic.Int64
	batchNs atomic.Int64 // nanos() at the last BatchStart

	total, completed, executed atomic.Int64
	cacheHits, deduped, failed atomic.Int64
	inflight, queued           atomic.Int64
	busyNs                     atomic.Int64
	spanNs                     [NumSpans]atomic.Int64

	// Registry handles (all nil when no registry is attached; obs metric
	// methods are nil-safe).
	gInflight, gQueueDepth, gUtilization, gHitRate   *obs.Gauge
	cRuns, cCompleted, cCacheHits, cDeduped, cFailed *obs.Counter
	cSpans                                           [NumSpans]*obs.Counter
	hRunMs, hQueueWaitMs                             *obs.Histogram
}

// NewSweepMeter returns a meter exporting live gauges into reg (nil: no
// metrics export) and progress events into progress (nil: no stream).
func NewSweepMeter(reg *obs.Registry, progress *ProgressWriter) *SweepMeter {
	m := &SweepMeter{progress: progress}
	if reg != nil {
		msBounds := []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}
		m.gInflight = reg.Gauge("sweep.inflight")
		m.gQueueDepth = reg.Gauge("sweep.queue_depth")
		m.gUtilization = reg.Gauge("sweep.worker_utilization")
		m.gHitRate = reg.Gauge("sweep.cache_hit_rate")
		m.cRuns = reg.Counter("sweep.runs")
		m.cCompleted = reg.Counter("sweep.completed")
		m.cCacheHits = reg.Counter("sweep.cache_hits")
		m.cDeduped = reg.Counter("sweep.deduped")
		m.cFailed = reg.Counter("sweep.failures")
		for s := Span(0); s < NumSpans; s++ {
			m.cSpans[s] = reg.Counter("sweep.span." + s.String() + "_ns")
		}
		m.hRunMs = reg.Histogram("sweep.run_ms", msBounds)
		m.hQueueWaitMs = reg.Histogram("sweep.queue_wait_ms", msBounds)
	}
	return m
}

// Now returns the meter's monotonic clock reading; the runner brackets its
// spans with it. Nil-safe (a disabled meter returns 0 and the bracketing
// arithmetic is dead).
func (m *SweepMeter) Now() int64 {
	if m == nil {
		return 0
	}
	return nanos()
}

// BatchStart begins a batch of total requests on a pool of the given width.
func (m *SweepMeter) BatchStart(total, workers int) {
	if m == nil {
		return
	}
	m.workers.Store(int64(workers))
	m.batchNs.Store(nanos())
	m.total.Add(int64(total))
	m.progress.Emit(&ProgressEvent{
		Event:   "batch_start",
		Total:   m.total.Load(),
		Workers: workers,
	})
}

// Enqueued records n requests admitted to the worker queue.
func (m *SweepMeter) Enqueued(n int) {
	if m == nil {
		return
	}
	m.queued.Add(int64(n))
	m.gQueueDepth.Set(float64(m.queued.Load()))
}

// CacheHit resolves one request from the run cache.
func (m *SweepMeter) CacheHit() {
	if m == nil {
		return
	}
	m.cacheHits.Add(1)
	m.completed.Add(1)
	m.cCacheHits.Inc()
	m.cCompleted.Inc()
	m.updateGauges()
}

// DedupedRun resolves one request against an identical in-batch request.
func (m *SweepMeter) DedupedRun() {
	if m == nil {
		return
	}
	m.deduped.Add(1)
	m.completed.Add(1)
	m.cDeduped.Inc()
	m.cCompleted.Inc()
	m.updateGauges()
}

// RunStart marks a worker picking a request up, charging its queue wait,
// and returns the execution span cursor.
func (m *SweepMeter) RunStart() int64 {
	if m == nil {
		return 0
	}
	now := nanos()
	wait := now - m.batchNs.Load()
	if wait < 0 {
		wait = 0
	}
	m.addSpan(SpanQueueWait, wait)
	m.hQueueWaitMs.Observe(float64(wait) / 1e6)
	m.queued.Add(-1)
	m.inflight.Add(1)
	m.updateGauges()
	return now
}

// RunDone finishes the run started at cursor start: charges the execute
// span, updates gauges and emits a run_done progress event.
func (m *SweepMeter) RunDone(id, bench, policy string, start int64, ok bool) {
	if m == nil {
		return
	}
	d := nanos() - start
	if d < 0 {
		d = 0
	}
	m.addSpan(SpanExecute, d)
	m.busyNs.Add(d)
	m.inflight.Add(-1)
	m.executed.Add(1)
	m.completed.Add(1)
	m.cRuns.Inc()
	m.cCompleted.Inc()
	if !ok {
		m.failed.Add(1)
		m.cFailed.Inc()
	}
	m.hRunMs.Observe(float64(d) / 1e6)
	m.updateGauges()
	okv := ok
	m.progress.Emit(&ProgressEvent{
		Event:      "run_done",
		ID:         id,
		Bench:      bench,
		Policy:     policy,
		OK:         &okv,
		RunMs:      d / 1e6,
		Completed:  m.completed.Load(),
		Total:      m.total.Load(),
		Inflight:   m.inflight.Load(),
		QueueDepth: m.queued.Load(),
		Runs:       m.executed.Load(),
		CacheHits:  m.cacheHits.Load(),
		Deduped:    m.deduped.Load(),
		Failed:     m.failed.Load(),
	})
}

// SpanSince charges the time since cursor to span s and returns the new
// cursor — the runner brackets cache lookups, checkpoint writes and retry
// backoffs with it.
func (m *SweepMeter) SpanSince(s Span, cursor int64) int64 {
	if m == nil {
		return 0
	}
	now := nanos()
	m.addSpan(s, now-cursor)
	return now
}

// BatchDone closes a batch with a summary progress event.
func (m *SweepMeter) BatchDone() {
	if m == nil {
		return
	}
	m.updateGauges()
	m.progress.Emit(&ProgressEvent{
		Event:     "batch_done",
		Completed: m.completed.Load(),
		Total:     m.total.Load(),
		Runs:      m.executed.Load(),
		CacheHits: m.cacheHits.Load(),
		Deduped:   m.deduped.Load(),
		Failed:    m.failed.Load(),
	})
}

// Inflight and QueueDepth expose the live gauges to the runner's Stats.
func (m *SweepMeter) Inflight() int {
	if m == nil {
		return 0
	}
	return int(m.inflight.Load())
}

// QueueDepth returns the number of admitted requests waiting for a worker.
func (m *SweepMeter) QueueDepth() int {
	if m == nil {
		return 0
	}
	return int(m.queued.Load())
}

// Utilization returns the fraction of worker-time spent executing runs
// since the last BatchStart (0 when unknown).
func (m *SweepMeter) Utilization() float64 {
	if m == nil {
		return 0
	}
	w := m.workers.Load()
	elapsed := nanos() - m.batchNs.Load()
	if w <= 0 || elapsed <= 0 {
		return 0
	}
	u := float64(m.busyNs.Load()) / (float64(elapsed) * float64(w))
	if u > 1 {
		u = 1
	}
	return u
}

// SpanNanos returns the accumulated nanoseconds charged to span s.
func (m *SweepMeter) SpanNanos(s Span) int64 {
	if m == nil {
		return 0
	}
	return m.spanNs[s].Load()
}

func (m *SweepMeter) addSpan(s Span, d int64) {
	if d < 0 {
		d = 0
	}
	m.spanNs[s].Add(d)
	m.cSpans[s].Add(uint64(d))
}

// updateGauges refreshes the live registry gauges. Histogram/counter
// handles are nil-safe, so this is a no-op without a registry.
func (m *SweepMeter) updateGauges() {
	m.gInflight.Set(float64(m.inflight.Load()))
	m.gQueueDepth.Set(float64(m.queued.Load()))
	m.gUtilization.Set(m.Utilization())
	if done := m.completed.Load(); done > 0 {
		m.gHitRate.Set(float64(m.cacheHits.Load()) / float64(done))
	}
}
