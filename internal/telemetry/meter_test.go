package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"clustersim/internal/obs"
)

// TestSweepMeterNilSafe: every hook on a nil meter must be a no-op — the
// runner calls them unconditionally and an uninstrumented sweep pays only
// the pointer test.
func TestSweepMeterNilSafe(t *testing.T) {
	var m *SweepMeter
	m.BatchStart(10, 4)
	m.Enqueued(3)
	m.CacheHit()
	m.DedupedRun()
	cur := m.RunStart()
	m.RunDone("id", "bench", "policy", cur, true)
	m.SpanSince(SpanCheckpoint, m.Now())
	m.BatchDone()
	if m.Inflight() != 0 || m.QueueDepth() != 0 || m.Utilization() != 0 || m.SpanNanos(SpanExecute) != 0 {
		t.Error("nil meter leaked nonzero readings")
	}
}

// TestSweepMeterBatch drives a small synthetic batch through the meter and
// checks counters, registry export and the progress stream agree.
func TestSweepMeterBatch(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	m := NewSweepMeter(reg, NewProgressWriter(&buf))

	m.BatchStart(4, 2)
	m.Enqueued(2)
	if m.QueueDepth() != 2 {
		t.Fatalf("QueueDepth = %d, want 2", m.QueueDepth())
	}
	m.CacheHit()
	m.DedupedRun()

	cur := m.RunStart()
	if m.Inflight() != 1 {
		t.Fatalf("Inflight = %d, want 1", m.Inflight())
	}
	m.RunDone("fig3", "gzip", "interval", cur, true)

	cur = m.RunStart()
	m.RunDone("fig3", "swim", "interval", cur, false)
	m.BatchDone()

	if m.Inflight() != 0 || m.QueueDepth() != 0 {
		t.Errorf("end state inflight=%d queued=%d, want 0/0", m.Inflight(), m.QueueDepth())
	}

	snap := reg.Snapshot()
	counters := snap.Counters
	wantCounters := map[string]uint64{
		"sweep.runs":       2,
		"sweep.completed":  4,
		"sweep.cache_hits": 1,
		"sweep.deduped":    1,
		"sweep.failures":   1,
	}
	for name, want := range wantCounters {
		if counters[name] != want {
			t.Errorf("counter %s = %d, want %d", name, counters[name], want)
		}
	}

	gauges := snap.Gauges
	if got := gauges["sweep.cache_hit_rate"]; got != 0.25 {
		t.Errorf("cache_hit_rate = %v, want 0.25", got)
	}
	if got := gauges["sweep.inflight"]; got != 0 {
		t.Errorf("inflight gauge = %v, want 0", got)
	}

	if m.SpanNanos(SpanExecute) < 0 {
		t.Error("negative execute span")
	}
	cur = m.Now()
	m.SpanSince(SpanCheckpoint, cur)
	if m.SpanNanos(SpanCheckpoint) < 0 {
		t.Error("negative checkpoint span")
	}

	// The stream must hold exactly one batch_start, two run_done (one
	// failed), one batch_done.
	var events []ProgressEvent
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		var ev ProgressEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad progress line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	kinds := map[string]int{}
	failed := 0
	for _, ev := range events {
		kinds[ev.Event]++
		if ev.Event == "run_done" && ev.OK != nil && !*ev.OK {
			failed++
		}
	}
	if kinds["batch_start"] != 1 || kinds["run_done"] != 2 || kinds["batch_done"] != 1 {
		t.Errorf("event kinds = %v", kinds)
	}
	if failed != 1 {
		t.Errorf("failed run_done events = %d, want 1", failed)
	}
	last := events[len(events)-1]
	if last.Event != "batch_done" || last.Completed != 4 || last.Runs != 2 {
		t.Errorf("batch_done = %+v", last)
	}
}

// TestSweepMeterNoRegistry: a meter without a registry still counts.
func TestSweepMeterNoRegistry(t *testing.T) {
	m := NewSweepMeter(nil, nil)
	m.BatchStart(1, 1)
	m.Enqueued(1)
	cur := m.RunStart()
	m.RunDone("id", "b", "p", cur, true)
	m.BatchDone()
	if m.SpanNanos(SpanQueueWait) < 0 {
		t.Error("negative queue wait")
	}
	if m.Inflight() != 0 || m.QueueDepth() != 0 {
		t.Error("counts did not settle")
	}
}

// TestSweepMeterConcurrent exercises the meter from many goroutines; run
// under -race this proves the atomics carry the whole state.
func TestSweepMeterConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewSweepMeter(reg, nil)
	const workers, per = 8, 50
	m.BatchStart(workers*per, workers)
	m.Enqueued(workers * per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				cur := m.RunStart()
				m.RunDone("id", "bench", "policy", cur, true)
				_ = m.Utilization()
				_ = m.Inflight()
			}
		}()
	}
	wg.Wait()
	m.BatchDone()
	if got := reg.Snapshot().Counters["sweep.runs"]; got != workers*per {
		t.Errorf("sweep.runs = %d, want %d", got, workers*per)
	}
	if u := m.Utilization(); u < 0 || u > 1 {
		t.Errorf("utilization %v out of [0,1]", u)
	}
}
