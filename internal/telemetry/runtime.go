package telemetry

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime/metrics"
	"runtime/pprof"
	"time"

	"clustersim/internal/obs"
)

// runtimeSamples maps the runtime/metrics names worth watching during a
// sweep to the obs gauge names they export under. Histogram-valued metrics
// (GC pauses, scheduler latencies) export their mean and max.
var runtimeSamples = map[string]string{
	"/memory/classes/heap/objects:bytes": "runtime.heap_objects_bytes",
	"/memory/classes/total:bytes":        "runtime.total_bytes",
	"/sched/goroutines:goroutines":       "runtime.goroutines",
	"/gc/cycles/total:gc-cycles":         "runtime.gc_cycles",
	"/gc/pauses:seconds":                 "runtime.gc_pause_s",
	"/sched/latencies:seconds":           "runtime.sched_latency_s",
}

// SampleRuntime reads the Go runtime's own health metrics (heap, GC
// pauses, goroutines, scheduler latency) into gauges on reg, so a served
// /metrics snapshot shows the simulator process alongside the simulated
// processor. Histogram metrics export "<name>.mean" and "<name>.max".
func SampleRuntime(reg *obs.Registry) {
	if reg == nil {
		return
	}
	descs := make([]metrics.Sample, 0, len(runtimeSamples))
	for name := range runtimeSamples {
		descs = append(descs, metrics.Sample{Name: name})
	}
	metrics.Read(descs)
	for _, s := range descs {
		gname := runtimeSamples[s.Name]
		switch s.Value.Kind() {
		case metrics.KindUint64:
			reg.Gauge(gname).Set(float64(s.Value.Uint64()))
		case metrics.KindFloat64:
			reg.Gauge(gname).Set(s.Value.Float64())
		case metrics.KindFloat64Histogram:
			mean, max := histSummary(s.Value.Float64Histogram())
			reg.Gauge(gname + ".mean").Set(mean)
			reg.Gauge(gname + ".max").Set(max)
		}
	}
}

// histSummary reduces a runtime histogram to its mean and the upper bound
// of the highest nonempty bucket. The outermost buckets may be unbounded;
// their finite edge stands in.
func histSummary(h *metrics.Float64Histogram) (mean, max float64) {
	if h == nil {
		return 0, 0
	}
	var count uint64
	var sum float64
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if math.IsInf(lo, -1) {
			lo = hi
		}
		if math.IsInf(hi, 1) {
			hi = lo
		}
		sum += (lo + hi) / 2 * float64(n)
		count += n
		max = hi
	}
	if count > 0 {
		mean = sum / float64(count)
	}
	return mean, max
}

// StartRuntimeSampler samples the runtime into reg every interval until the
// returned stop function is called. Interval <= 0 selects one second.
func StartRuntimeSampler(reg *obs.Registry, interval time.Duration) (stop func()) {
	if reg == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = time.Second
	}
	SampleRuntime(reg)
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				SampleRuntime(reg)
			case <-done:
				return
			}
		}
	}()
	return func() { close(done) }
}

// StartProfiles begins whole-process self-profiling into dir: a CPU profile
// streams to <dir>/cpu.pprof immediately, and the returned stop function
// finishes it and writes <dir>/heap.pprof (after a final sample). The
// profiles cover everything between the two calls — for cmd/experiments,
// the entire sweep.
func StartProfiles(dir string) (stop func() error, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: profile dir: %w", err)
	}
	cpu, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		err := cpu.Close()
		heap, herr := os.Create(filepath.Join(dir, "heap.pprof"))
		if herr != nil {
			if err == nil {
				err = herr
			}
			return err
		}
		if werr := pprof.Lookup("heap").WriteTo(heap, 0); werr != nil && err == nil {
			err = werr
		}
		if cerr := heap.Close(); cerr != nil && err == nil {
			err = cerr
		}
		return err
	}, nil
}
