package telemetry

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"clustersim/internal/obs"
)

func TestSampleRuntime(t *testing.T) {
	reg := obs.NewRegistry()
	SampleRuntime(reg)
	gauges := reg.Snapshot().Gauges
	if gauges["runtime.goroutines"] < 1 {
		t.Errorf("runtime.goroutines = %v, want >= 1", gauges["runtime.goroutines"])
	}
	if gauges["runtime.total_bytes"] <= 0 {
		t.Errorf("runtime.total_bytes = %v, want > 0", gauges["runtime.total_bytes"])
	}
	if _, ok := gauges["runtime.gc_cycles"]; !ok {
		t.Error("runtime.gc_cycles missing")
	}
	// Nil registry is a no-op.
	SampleRuntime(nil)
}

func TestStartRuntimeSampler(t *testing.T) {
	reg := obs.NewRegistry()
	stop := StartRuntimeSampler(reg, time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Snapshot().Gauges["runtime.goroutines"] >= 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("sampler never populated runtime gauges")
}

func TestStartRuntimeSamplerNilRegistry(t *testing.T) {
	stop := StartRuntimeSampler(nil, time.Millisecond)
	stop() // must not panic
}

func TestStartProfiles(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "profiles")
	stop, err := StartProfiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cpu.pprof", "heap.pprof"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

func TestHistSummary(t *testing.T) {
	mean, max := histSummary(nil)
	if mean != 0 || max != 0 {
		t.Error("nil histogram should summarize to zeros")
	}
}
