package telemetry

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Phase names one bucket of the cycle loop's wall-clock attribution. The
// buckets mirror the stage order of pipeline.Processor.step.
type Phase uint8

// Cycle-loop phases.
const (
	// PhaseCommit is the in-order retirement stage.
	PhaseCommit Phase = iota
	// PhaseReconfig is drain/flush/switch work for cluster reconfiguration.
	PhaseReconfig
	// PhaseIssue is the per-cluster issue-queue scan.
	PhaseIssue
	// PhaseMem is the memory stage: store dummy releases, load ordering
	// walks and cache access scheduling.
	PhaseMem
	// PhaseDispatch is rename/steer: fetch-queue drain into clusters.
	PhaseDispatch
	// PhaseFetch is the front end: workload generation, branch prediction
	// and the instruction cache.
	PhaseFetch
	// PhaseObserve is the instrumentation tail of the cycle: active-sum
	// accounting, observer probes and invariant checking.
	PhaseObserve
	// NumPhases is the bucket count.
	NumPhases
)

// phaseNames are the wire/report names, indexed by Phase.
var phaseNames = [NumPhases]string{
	"commit", "reconfig", "issue", "mem", "dispatch", "fetch", "observe",
}

// String returns the phase's report name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// PhaseTimer attributes wall-clock time to cycle-loop phases by sampling:
// one cycle out of every Period is timed stage-by-stage, the rest run
// untouched. Totals are atomic, so one timer may be shared by processors
// running concurrently on a sweep's worker pool; the per-phase sums then
// aggregate the whole sweep.
//
// The timer observes the simulator, never the simulation: no simulated
// timing ever depends on it, so an attached timer cannot perturb results.
type PhaseTimer struct {
	mask   uint64
	totals [NumPhases]atomic.Int64
	laps   [NumPhases]atomic.Int64
	cycles atomic.Uint64 // sampled cycles
}

// DefaultPhasePeriod is the default sampling period in cycles: dense enough
// that a 100K-cycle run yields >1K samples per phase, sparse enough that the
// six clock reads per sampled cycle stay far below the 2% overhead budget.
const DefaultPhasePeriod = 64

// NewPhaseTimer returns a timer sampling one cycle in every period (rounded
// up to a power of two; <=0 selects DefaultPhasePeriod).
func NewPhaseTimer(period uint64) *PhaseTimer {
	if period == 0 {
		period = DefaultPhasePeriod
	}
	p := uint64(1)
	for p < period {
		p <<= 1
	}
	return &PhaseTimer{mask: p - 1}
}

// Period returns the effective sampling period in cycles.
func (t *PhaseTimer) Period() uint64 { return t.mask + 1 }

// Due reports whether the given cycle is a sampled one. The caller holds
// the nil test (hot path: one pointer test, one mask).
func (t *PhaseTimer) Due(cycle uint64) bool { return cycle&t.mask == 0 }

// Begin starts timing a sampled cycle and returns the lap cursor.
func (t *PhaseTimer) Begin() int64 {
	t.cycles.Add(1)
	return nanos()
}

// Lap charges the time since the cursor to phase p and returns the new
// cursor.
func (t *PhaseTimer) Lap(p Phase, cursor int64) int64 {
	now := nanos()
	t.totals[p].Add(now - cursor)
	t.laps[p].Add(1)
	return now
}

// PhaseStat is one phase's aggregated attribution.
type PhaseStat struct {
	Phase    string  `json:"phase"`
	Nanos    int64   `json:"nanos"`
	Fraction float64 `json:"fraction"` // of the total attributed time
	Laps     uint64  `json:"laps"`
}

// PhaseReport is a point-in-time attribution summary.
type PhaseReport struct {
	// Period is the sampling period in cycles; SampledCycles how many
	// cycles were actually timed.
	Period        uint64      `json:"period"`
	SampledCycles uint64      `json:"sampled_cycles"`
	TotalNanos    int64       `json:"total_nanos"`
	Phases        []PhaseStat `json:"phases"`
}

// Report summarizes the attribution so far. Safe to call while processors
// are still running (totals are atomic; the report is a consistent-enough
// live view, exact once runs finish).
func (t *PhaseTimer) Report() PhaseReport {
	r := PhaseReport{Period: t.Period(), SampledCycles: t.cycles.Load()}
	for p := Phase(0); p < NumPhases; p++ {
		r.TotalNanos += t.totals[p].Load()
	}
	for p := Phase(0); p < NumPhases; p++ {
		s := PhaseStat{
			Phase: p.String(),
			Nanos: t.totals[p].Load(),
			Laps:  uint64(t.laps[p].Load()),
		}
		if r.TotalNanos > 0 {
			s.Fraction = float64(s.Nanos) / float64(r.TotalNanos)
		}
		r.Phases = append(r.Phases, s)
	}
	return r
}

// Table renders the report as an aligned text table, phases in pipeline
// order with their percent share of attributed wall time.
func (r PhaseReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "phase attribution (%d cycles sampled, 1 in %d):\n", r.SampledCycles, r.Period)
	width := len("phase")
	for _, s := range r.Phases {
		if len(s.Phase) > width {
			width = len(s.Phase)
		}
	}
	fmt.Fprintf(&b, "  %-*s  %9s  %7s\n", width, "phase", "time", "share")
	for _, s := range r.Phases {
		fmt.Fprintf(&b, "  %-*s  %9s  %6.1f%%\n", width, s.Phase, fmtNanos(s.Nanos), 100*s.Fraction)
	}
	return b.String()
}

// fmtNanos renders a duration compactly (ns/µs/ms/s).
func fmtNanos(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
	}
	return fmt.Sprintf("%dns", ns)
}
