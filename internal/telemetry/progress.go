package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// ProgressEvent is one record of the JSONL progress stream. Every event
// carries its kind and the milliseconds since the stream opened; the other
// fields are populated per kind and omitted when zero.
type ProgressEvent struct {
	// Event is the record kind: "batch_start", "run_done", "batch_done".
	Event string `json:"event"`
	// TMs is milliseconds since the ProgressWriter was created.
	TMs int64 `json:"t_ms"`

	// ID, Bench and Policy identify the run behind a run_done event.
	ID     string `json:"id,omitempty"`
	Bench  string `json:"bench,omitempty"`
	Policy string `json:"policy,omitempty"`
	// OK reports whether the run succeeded (run_done only; pointer so
	// false still serializes).
	OK *bool `json:"ok,omitempty"`
	// RunMs is the run's execution wall time in milliseconds.
	RunMs int64 `json:"run_ms,omitempty"`

	// Completed counts requests resolved so far (executions, cache hits
	// and dedups alike) out of Total admitted ones.
	Completed int64 `json:"completed,omitempty"`
	Total     int64 `json:"total,omitempty"`
	// Workers is the pool width (batch_start only).
	Workers int `json:"workers,omitempty"`
	// Inflight and QueueDepth are the live gauges at emission time.
	Inflight   int64 `json:"inflight,omitempty"`
	QueueDepth int64 `json:"queue_depth,omitempty"`
	// Runs, CacheHits, Deduped and Failed are cumulative counts.
	Runs      int64 `json:"runs,omitempty"`
	CacheHits int64 `json:"cache_hits,omitempty"`
	Deduped   int64 `json:"deduped,omitempty"`
	Failed    int64 `json:"failed,omitempty"`

	// RatePerS is the EWMA-smoothed completion rate; EtaS the projected
	// seconds until the remaining requests complete at that rate.
	RatePerS float64 `json:"rate_per_s,omitempty"`
	EtaS     float64 `json:"eta_s,omitempty"`
	// ElapsedS is the total stream lifetime (batch_done only).
	ElapsedS float64 `json:"elapsed_s,omitempty"`
}

// ProgressWriter streams ProgressEvents as JSON lines and maintains the
// EWMA completion-rate estimate behind the ETA. It is safe for concurrent
// use (sweep workers complete runs concurrently).
type ProgressWriter struct {
	mu sync.Mutex
	w  *bufio.Writer
	c  io.Closer

	// now is the clock, swappable by tests for deterministic streams.
	now   func() time.Time
	start time.Time

	// ewmaDt is the smoothed inter-completion gap in seconds (0 until the
	// first completion); lastDone the previous completion instant.
	ewmaDt   float64
	lastDone time.Time
	// alpha is the EWMA smoothing factor.
	alpha float64
}

// NewProgressWriter wraps w; if w is also an io.Closer, Close closes it.
func NewProgressWriter(w io.Writer) *ProgressWriter {
	p := &ProgressWriter{
		w:     bufio.NewWriterSize(w, 32<<10),
		now:   time.Now,
		alpha: 0.2,
	}
	p.start = p.now()
	if c, ok := w.(io.Closer); ok {
		p.c = c
	}
	return p
}

// Emit writes one event, stamping TMs and — for run_done events — the EWMA
// rate and ETA. Events are flushed per line so a tail -f (or a streaming
// consumer) sees progress live.
func (p *ProgressWriter) Emit(ev *ProgressEvent) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	ev.TMs = now.Sub(p.start).Milliseconds()
	if ev.Event == "run_done" {
		p.observeCompletion(now)
		if p.ewmaDt > 0 {
			ev.RatePerS = 1 / p.ewmaDt
			if remaining := ev.Total - ev.Completed; remaining > 0 {
				ev.EtaS = float64(remaining) * p.ewmaDt
			}
		}
	}
	if ev.Event == "batch_done" {
		ev.ElapsedS = now.Sub(p.start).Seconds()
	}
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	p.w.Write(b)        //simlint:allow errflow the progress stream is best-effort; a broken pipe must not fail the sweep
	p.w.WriteByte('\n') //simlint:allow errflow the progress stream is best-effort; a broken pipe must not fail the sweep
	p.w.Flush()
}

// observeCompletion folds one completion instant into the EWMA gap. The
// first completion seeds the estimate with the time since stream start.
func (p *ProgressWriter) observeCompletion(now time.Time) {
	prev := p.lastDone
	if prev.IsZero() {
		prev = p.start
	}
	dt := now.Sub(prev).Seconds()
	if dt < 0 {
		dt = 0
	}
	if p.ewmaDt == 0 {
		p.ewmaDt = dt
	} else {
		p.ewmaDt = p.alpha*dt + (1-p.alpha)*p.ewmaDt
	}
	p.lastDone = now
}

// Close flushes buffered lines and closes the underlying writer if it is
// closable. Nil-safe.
func (p *ProgressWriter) Close() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	err := p.w.Flush()
	if p.c != nil {
		if cerr := p.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
