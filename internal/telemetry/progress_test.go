package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock advances only when told to, making progress streams (and their
// EWMA-derived fields) fully deterministic.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time             { return c.t }
func (c *fakeClock) advance(d time.Duration)    { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                  { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func withClock(p *ProgressWriter, c *fakeClock) { p.now = c.now; p.start = c.t }

// TestProgressGoldenSchema locks the JSONL wire format: exact lines for a
// small batch under a deterministic clock. A consumer (CI dashboards, the
// docs' examples) can rely on these field names and omission rules.
func TestProgressGoldenSchema(t *testing.T) {
	var buf bytes.Buffer
	pw := NewProgressWriter(&buf)
	clk := newFakeClock()
	withClock(pw, clk)

	ok := true
	pw.Emit(&ProgressEvent{Event: "batch_start", Total: 3, Workers: 2})
	clk.advance(time.Second)
	pw.Emit(&ProgressEvent{Event: "run_done", ID: "fig3", Bench: "gzip", OK: &ok, RunMs: 500, Completed: 1, Total: 3})
	clk.advance(time.Second)
	pw.Emit(&ProgressEvent{Event: "run_done", ID: "fig3", Bench: "swim", OK: &ok, RunMs: 450, Completed: 2, Total: 3})
	clk.advance(time.Second)
	pw.Emit(&ProgressEvent{Event: "run_done", ID: "fig3", Bench: "vpr", OK: &ok, RunMs: 475, Completed: 3, Total: 3})
	pw.Emit(&ProgressEvent{Event: "batch_done", Completed: 3, Total: 3, Runs: 3})
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}

	want := []string{
		`{"event":"batch_start","t_ms":0,"total":3,"workers":2}`,
		`{"event":"run_done","t_ms":1000,"id":"fig3","bench":"gzip","ok":true,"run_ms":500,"completed":1,"total":3,"rate_per_s":1,"eta_s":2}`,
		`{"event":"run_done","t_ms":2000,"id":"fig3","bench":"swim","ok":true,"run_ms":450,"completed":2,"total":3,"rate_per_s":1,"eta_s":1}`,
		`{"event":"run_done","t_ms":3000,"id":"fig3","bench":"vpr","ok":true,"run_ms":475,"completed":3,"total":3,"rate_per_s":1}`,
		`{"event":"batch_done","t_ms":3000,"completed":3,"total":3,"runs":3,"elapsed_s":3}`,
	}
	got := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(got) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(got), len(want), buf.String())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d:\n got %s\nwant %s", i+1, got[i], want[i])
		}
	}

	// Every line must be standalone-parseable JSON (the stream contract).
	for i, line := range got {
		var ev ProgressEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Errorf("line %d does not parse: %v", i+1, err)
		}
	}
}

// TestProgressETAMonotonic: at a steady completion rate the projected ETA
// must shrink as the batch drains — an ETA that grows under constant
// progress would mean the EWMA is wired backwards.
func TestProgressETAMonotonic(t *testing.T) {
	var buf bytes.Buffer
	pw := NewProgressWriter(&buf)
	clk := newFakeClock()
	withClock(pw, clk)

	const total = 20
	pw.Emit(&ProgressEvent{Event: "batch_start", Total: total, Workers: 4})
	prev := -1.0
	for i := 1; i <= total; i++ {
		clk.advance(750 * time.Millisecond)
		pw.Emit(&ProgressEvent{Event: "run_done", Completed: int64(i), Total: total})
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	etas := 0
	for _, line := range lines[1:] {
		var ev ProgressEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Completed == total {
			if ev.EtaS != 0 {
				t.Errorf("final event still projects eta_s=%v", ev.EtaS)
			}
			continue
		}
		if ev.EtaS <= 0 {
			t.Fatalf("event %d has no ETA: %s", ev.Completed, line)
		}
		if prev >= 0 && ev.EtaS > prev {
			t.Errorf("ETA grew under constant rate: %v -> %v at completed=%d", prev, ev.EtaS, ev.Completed)
		}
		prev = ev.EtaS
		etas++
	}
	if etas != total-1 {
		t.Fatalf("saw %d ETA projections, want %d", etas, total-1)
	}
}

// TestProgressNilSafe: a nil writer is the disabled state everywhere.
func TestProgressNilSafe(t *testing.T) {
	var pw *ProgressWriter
	pw.Emit(&ProgressEvent{Event: "run_done"})
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
}
