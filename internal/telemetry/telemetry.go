// Package telemetry makes the simulation *platform* observable, the way
// internal/obs (PR 1) made the simulated *processor* observable. Three
// layers, all zero-cost when detached:
//
//   - SweepMeter instruments the runner: per-run spans (queue wait, cache
//     lookup, execute, checkpoint write, retry backoff), live gauges
//     (inflight runs, queue depth, worker utilization, cache hit rate)
//     exported through an internal/obs Registry, and a JSONL progress
//     stream with completed/total counts and an EWMA-based ETA.
//
//   - PhaseTimer attributes the simulator's own wall-clock time to pipeline
//     stages (fetch, dispatch, issue, mem, commit, reconfig, observe) by
//     timing one cycle out of every sampling period — coarse rdtsc-style
//     sampling whose enabled overhead stays within the same ≤2% budget PR 1
//     proved for disabled observer hooks, and which disappears behind a
//     single pointer test when nil.
//
//   - Runtime self-profiling: runtime/metrics samples (heap, GC pauses,
//     goroutines) folded into an obs Registry, and CPU/heap pprof capture
//     for whole sweeps (-profile-dir on cmd/experiments; net/http/pprof on
//     the obs -serve endpoint).
//
// Wall-clock time is read only here, never in simulation packages: the
// simlint determinism pass keeps time.Now out of the simulator proper, and
// every measurement this package takes is attribution-only — it can never
// feed back into simulated timing, so instrumented runs stay byte-identical
// to bare ones.
package telemetry

import "time"

// epoch anchors all package timing reads. time.Since on a fixed base uses
// the monotonic clock, so laps and spans are immune to wall-clock jumps.
var epoch = time.Now()

// nanos returns monotonic nanoseconds since package initialization.
func nanos() int64 { return int64(time.Since(epoch)) }
