package core

import (
	"testing"

	"clustersim/internal/pipeline"
)

// TestIntervalMeterAnchorsAtBoundary: the IPC denominator must start at the
// interval boundary passed to reset, not at the interval's first commit, so
// post-reconfiguration drain stalls (boundary -> first commit) count against
// the measured IPC.
func TestIntervalMeterAnchorsAtBoundary(t *testing.T) {
	var m intervalMeter
	m.reset(100)
	// 50 instructions, but the first commit lands only at cycle 150: a
	// 50-cycle drain stall after the reconfiguration at cycle 100.
	for i := 0; i < 50; i++ {
		m.observe(pipeline.CommitEvent{Cycle: 150 + uint64(i)})
	}
	got := m.ipc(200)
	want := 50.0 / 100.0 // 50 instrs over the full 100-cycle span
	if got != want {
		t.Fatalf("ipc = %f, want %f (drain stall must be visible)", got, want)
	}
}

// TestIntervalMeterDegenerateSpan: a zero- or negative-cycle span must not
// read as an IPC collapse (the old code returned 0, which the phase
// detectors treated as a huge IPC drop).
func TestIntervalMeterDegenerateSpan(t *testing.T) {
	var m intervalMeter
	m.reset(500)
	for i := 0; i < 8; i++ {
		m.observe(pipeline.CommitEvent{Cycle: 500})
	}
	if got := m.ipc(500); got != 8 {
		t.Fatalf("zero-span ipc = %f, want 8 (scored over one cycle)", got)
	}
	if got := m.ipc(499); got != 8 {
		t.Fatalf("backwards-span ipc = %f, want 8", got)
	}
}

// TestIntervalMeterResetClears: reset must zero the counts while anchoring
// the new boundary.
func TestIntervalMeterResetClears(t *testing.T) {
	var m intervalMeter
	m.reset(0)
	for i := 0; i < 10; i++ {
		m.observe(pipeline.CommitEvent{Cycle: uint64(i), IsBranch: true, IsMem: true, Distant: true})
	}
	m.reset(10)
	if m.instrs != 0 || m.branches != 0 || m.memrefs != 0 || m.distant != 0 {
		t.Fatalf("reset left counts behind: %+v", m)
	}
	if m.startCycle != 10 {
		t.Fatalf("startCycle = %d, want 10", m.startCycle)
	}
}

// TestMacrophaseStatsMonotone: PhaseChanges()/Explorations() are cumulative
// run statistics and must never decrease — in particular not across a
// macrophase reinit, which used to zero them via *e = Explore{...}.
func TestMacrophaseStatsMonotone(t *testing.T) {
	e := NewExplore(ExploreConfig{
		InitialInterval: 100,
		MaxInterval:     400,
		MacroInterval:   50_000,
	})
	e.Reset(16)
	var seq uint64
	var prevPhases, prevExplos uint64
	check := func() {
		if e.PhaseChanges() < prevPhases {
			t.Fatalf("PhaseChanges went backwards: %d -> %d (seq %d, macrophases %d)",
				prevPhases, e.PhaseChanges(), seq, e.Macrophases())
		}
		if e.Explorations() < prevExplos {
			t.Fatalf("Explorations went backwards: %d -> %d (seq %d, macrophases %d)",
				prevExplos, e.Explorations(), seq, e.Macrophases())
		}
		prevPhases, prevExplos = e.PhaseChanges(), e.Explorations()
	}
	// Phase 1: churn between two branch densities accumulates phase changes
	// (and eventually discontinues the algorithm).
	for i := 0; i < 60_000; i++ {
		every := 10
		if (seq/150)%2 == 1 {
			every = 2
		}
		e.OnCommit(uniformEvents(every, 3, 0.5, 0)(seq))
		seq++
		check()
	}
	if prevPhases == 0 || prevExplos == 0 {
		t.Fatalf("prefix accumulated no stats (phases %d, explorations %d)", prevPhases, prevExplos)
	}
	// Phase 2: a drastically different macro profile forces a macrophase
	// reinit; the cumulative counters must survive it.
	for i := 0; i < 120_000 && e.Macrophases() == 0; i++ {
		e.OnCommit(uniformEvents(40, 2, 0.5, 0.9)(seq))
		seq++
		check()
	}
	if e.Macrophases() == 0 {
		t.Fatal("no macrophase change driven")
	}
	if e.Explorations() < prevExplos || e.Explorations() == 0 {
		t.Fatalf("explorations lost across macrophase: %d", e.Explorations())
	}
}
