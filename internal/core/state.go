package core

import (
	"sort"

	"clustersim/internal/snap"
)

// Checkpoint support. Controllers are restored onto a receiver that has
// already been constructed and Reset with the same configuration, so cfg,
// total, and the observer hook are live; snapshots carry only the dynamic
// decision state. The decision observer is deliberately excluded — resumed
// runs are only checkpointed when no observer is attached.

func (m *intervalMeter) saveState(w *snap.Writer) {
	w.U64(m.startCycle)
	w.U64(m.instrs)
	w.U64(m.branches)
	w.U64(m.memrefs)
	w.U64(m.distant)
}

func (m *intervalMeter) loadState(r *snap.Reader) {
	m.startCycle = r.U64()
	m.instrs = r.U64()
	m.branches = r.U64()
	m.memrefs = r.U64()
	m.distant = r.U64()
}

// SaveState implements snap.Stater.
func (s *Static) SaveState(w *snap.Writer) {
	w.Mark("ctrl-static")
	w.Int(s.N)
}

// LoadState implements snap.Stater.
func (s *Static) LoadState(r *snap.Reader) {
	r.Mark("ctrl-static")
	if n := r.Int(); r.Err() == nil && n != s.N {
		r.Failf("core: static controller pins %d clusters, snapshot holds %d", s.N, n)
	}
}

// SaveState implements snap.Stater. The popularity map is emitted as
// key-sorted pairs so identical states produce identical bytes.
func (e *Explore) SaveState(w *snap.Writer) {
	w.Mark("ctrl-explore")
	w.U64(e.intervalLength)
	e.meter.saveState(w)
	w.Bool(e.haveReference)
	w.F64(e.refBranches)
	w.F64(e.refMemrefs)
	w.F64(e.refIPC)
	w.Bool(e.exploring)
	w.Int(e.exploreIdx)
	w.Int(e.warmupLeft)
	w.Int(len(e.exploreIPC))
	for _, v := range e.exploreIPC {
		w.F64(v)
	}
	w.Bool(e.stable)
	w.Bool(e.reanchor)
	w.Int(e.current)
	w.F64(e.ipcVariation)
	w.F64(e.instability)
	w.Bool(e.discontinued)
	keys := make([]int, 0, len(e.popularity))
	for k := range e.popularity {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.Int(k)
		w.U64(e.popularity[k])
	}
	w.U64(e.macroInstrs)
	w.U64(e.macroBranches)
	w.U64(e.macroMemrefs)
	w.F64(e.prevMacroBranches)
	w.F64(e.prevMacroMemrefs)
	w.Bool(e.haveMacroRef)
	w.U64(e.macrophases)
	w.U64(e.phaseChanges)
	w.U64(e.explorations)
	w.Int(e.intervalGrowth)
}

// LoadState implements snap.Stater.
func (e *Explore) LoadState(r *snap.Reader) {
	r.Mark("ctrl-explore")
	e.intervalLength = r.U64()
	e.meter.loadState(r)
	e.haveReference = r.Bool()
	e.refBranches = r.F64()
	e.refMemrefs = r.F64()
	e.refIPC = r.F64()
	e.exploring = r.Bool()
	e.exploreIdx = r.Int()
	e.warmupLeft = r.Int()
	if n := r.Int(); r.Err() == nil && n != len(e.exploreIPC) {
		r.Failf("core: explore controller has %d candidate configs, snapshot holds %d",
			len(e.exploreIPC), n)
		return
	}
	for i := range e.exploreIPC {
		e.exploreIPC[i] = r.F64()
	}
	e.stable = r.Bool()
	e.reanchor = r.Bool()
	e.current = r.Int()
	e.ipcVariation = r.F64()
	e.instability = r.F64()
	e.discontinued = r.Bool()
	n := r.Int()
	if r.Err() != nil {
		return
	}
	if n < 0 || n > 1<<16 {
		r.Failf("core: implausible popularity count %d", n)
		return
	}
	e.popularity = make(map[int]uint64, n)
	for i := 0; i < n; i++ {
		k := r.Int()
		v := r.U64()
		if r.Err() != nil {
			return
		}
		e.popularity[k] = v
	}
	e.macroInstrs = r.U64()
	e.macroBranches = r.U64()
	e.macroMemrefs = r.U64()
	e.prevMacroBranches = r.F64()
	e.prevMacroMemrefs = r.F64()
	e.haveMacroRef = r.Bool()
	e.macrophases = r.U64()
	e.phaseChanges = r.U64()
	e.explorations = r.U64()
	e.intervalGrowth = r.Int()
}

// SaveState implements snap.Stater.
func (d *DistantILP) SaveState(w *snap.Writer) {
	w.Mark("ctrl-dilp")
	d.meter.saveState(w)
	w.Bool(d.measuring)
	w.Bool(d.haveReference)
	w.F64(d.refBranches)
	w.F64(d.refMemrefs)
	w.F64(d.refIPC)
	w.Int(d.current)
	w.U64(d.phaseChanges)
	w.U64(d.decisions)
}

// LoadState implements snap.Stater.
func (d *DistantILP) LoadState(r *snap.Reader) {
	r.Mark("ctrl-dilp")
	d.meter.loadState(r)
	d.measuring = r.Bool()
	d.haveReference = r.Bool()
	d.refBranches = r.F64()
	d.refMemrefs = r.F64()
	d.refIPC = r.F64()
	d.current = r.Int()
	d.phaseChanges = r.U64()
	d.decisions = r.U64()
}

// SaveState implements snap.Stater.
func (f *FineGrain) SaveState(w *snap.Writer) {
	w.Mark("ctrl-fg")
	w.Int(len(f.table))
	for i := range f.table {
		w.U64(uint64(f.table[i].samples))
		w.U64(uint64(f.table[i].distantSum))
		w.U64(uint64(f.table[i].advice))
	}
	w.Int(len(f.window))
	for i := range f.window {
		w.U64(f.window[i].pc)
		w.Bool(f.window[i].distant)
		w.Bool(f.window[i].isTrig)
	}
	w.Int(f.head)
	w.Int(f.size)
	w.Int(f.distant)
	w.Int(f.branchCounter)
	w.Int(f.current)
	w.U64(f.committed)
	w.U64(f.lastFlush)
	w.U64(f.reconfigLookups)
	w.U64(f.tableFlushes)
}

// LoadState implements snap.Stater.
func (f *FineGrain) LoadState(r *snap.Reader) {
	r.Mark("ctrl-fg")
	if n := r.Int(); r.Err() == nil && n != len(f.table) {
		r.Failf("core: fine-grain table has %d entries, snapshot holds %d", len(f.table), n)
		return
	}
	for i := range f.table {
		f.table[i].samples = uint16(r.U64())
		f.table[i].distantSum = uint32(r.U64())
		f.table[i].advice = uint8(r.U64())
	}
	if n := r.Int(); r.Err() == nil && n != len(f.window) {
		r.Failf("core: fine-grain window has %d slots, snapshot holds %d", len(f.window), n)
		return
	}
	for i := range f.window {
		f.window[i].pc = r.U64()
		f.window[i].distant = r.Bool()
		f.window[i].isTrig = r.Bool()
	}
	head := r.Int()
	size := r.Int()
	if r.Err() != nil {
		return
	}
	if head < 0 || head >= len(f.window) || size < 0 || size > len(f.window) {
		r.Failf("core: snapshot window position head=%d size=%d out of range (window %d)",
			head, size, len(f.window))
		return
	}
	f.head, f.size = head, size
	f.distant = r.Int()
	f.branchCounter = r.Int()
	f.current = r.Int()
	f.committed = r.U64()
	f.lastFlush = r.U64()
	f.reconfigLookups = r.U64()
	f.tableFlushes = r.U64()
}

var (
	_ snap.Stater = (*Static)(nil)
	_ snap.Stater = (*Explore)(nil)
	_ snap.Stater = (*DistantILP)(nil)
	_ snap.Stater = (*FineGrain)(nil)
)
