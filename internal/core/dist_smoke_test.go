package core

import (
	"fmt"
	"testing"

	"clustersim/internal/pipeline"
	"clustersim/internal/workload"
)

func TestDistCacheSmoke(t *testing.T) {
	for _, name := range []string{"gzip", "swim", "vpr"} {
		line := fmt.Sprintf("%-6s", name)
		for _, mk := range []func() pipeline.Controller{
			func() pipeline.Controller { return &Static{N: 4} },
			func() pipeline.Controller { return &Static{N: 16} },
			func() pipeline.Controller { return NewExplore(ExploreConfig{}) },
			func() pipeline.Controller { return NewDistantILP(DistantILPConfig{}) },
		} {
			cfg := pipeline.DefaultConfig()
			cfg.Cache = pipeline.DecentralizedCache
			p := pipeline.MustNew(cfg, workload.MustNew(name, 1), mk())
			r := mustRun(t, p, 700_000)
			line += fmt.Sprintf(" %s:%.2f(rc %d, fw %d)", r.Policy, r.IPC(), r.Reconfigs, r.Mem.FlushWritebacks)
		}
		fmt.Println(line)
	}
}
