// Package core implements the paper's contribution: run-time algorithms
// that tune the number of active clusters to each program phase, balancing
// communication against parallelism.
//
// Three families are provided, matching §4:
//
//   - IntervalExplore (§4.2, Figure 4): at each detected phase change, run
//     every candidate configuration for one interval, pick the best IPC,
//     and keep it until the phase changes; the interval length itself
//     adapts (doubling while measurements are unstable).
//   - IntervalDistantILP (§4.3): no exploration — run the full-width
//     machine for one interval, measure the degree of distant ILP, and
//     choose directly between a narrow and the widest configuration.
//   - FineGrain (§4.4): reconfigure at basic-block boundaries using a
//     PC-indexed reconfiguration table trained by the distant-ILP content
//     of the 360 committed instructions following each branch; a variant
//     triggers only at subroutine calls and returns.
//
// All controllers implement pipeline.Controller and observe only committed-
// instruction events — the same information the paper's hardware event
// counters plus a small software handler would see.
package core

import (
	"fmt"

	"clustersim/internal/obs"
	"clustersim/internal/pipeline"
)

// Static is a Controller that pins the active-cluster count.
type Static struct {
	// N is the number of active clusters.
	N int
}

// Name implements pipeline.Controller.
func (s *Static) Name() string { return fmt.Sprintf("static-%d", s.N) }

// Reset implements pipeline.Controller.
func (s *Static) Reset(totalClusters int) {
	if s.N > totalClusters {
		s.N = totalClusters
	}
	if s.N < 1 {
		s.N = 1
	}
}

// OnCommit implements pipeline.Controller.
func (s *Static) OnCommit(ev pipeline.CommitEvent) int { return s.N }

var _ pipeline.Controller = (*Static)(nil)

// intervalMeter accumulates the per-interval statistics every interval-
// based controller needs.
type intervalMeter struct {
	startCycle uint64
	instrs     uint64
	branches   uint64
	memrefs    uint64
	distant    uint64
}

func (m *intervalMeter) observe(ev pipeline.CommitEvent) {
	m.instrs++
	if ev.IsBranch || ev.IsCall || ev.IsReturn {
		m.branches++
	}
	if ev.IsMem {
		m.memrefs++
	}
	if ev.Distant {
		m.distant++
	}
}

func (m *intervalMeter) ipc(now uint64) float64 {
	if now <= m.startCycle {
		// Degenerate span: the whole interval committed within one cycle
		// of the boundary. Score it over a single cycle rather than
		// returning 0, which the phase detectors would misread as a
		// catastrophic IPC drop.
		return float64(m.instrs)
	}
	return float64(m.instrs) / float64(now-m.startCycle)
}

// reset clears the meter and anchors the next interval's IPC denominator
// at the interval boundary. Anchoring at the first commit instead (the
// old behaviour) hid post-reconfiguration drain stalls from the
// controllers and inflated first-interval IPC.
func (m *intervalMeter) reset(boundaryCycle uint64) {
	*m = intervalMeter{startCycle: boundaryCycle}
}

// decisionObserver is the controller-side observability hook shared by the
// reconfiguration policies: it emits decision/interval trace events and
// counts them in the registry. The zero value (no observer) is disabled and
// every method is cheap to call unconditionally.
type decisionObserver struct {
	o *obs.Observer
}

// attach implements the pipeline.ObserverAware plumbing.
func (d *decisionObserver) attach(o *obs.Observer) { d.o = o }

// enabled reports whether any sink is attached.
func (d *decisionObserver) enabled() bool { return d.o.Enabled() }

// decision emits one controller decision with its trigger reason and
// measurements, and bumps the per-trigger registry counter.
func (d *decisionObserver) decision(ev *obs.Event) {
	if !d.o.Enabled() {
		return
	}
	ev.Kind = obs.KindDecision
	d.o.Emit(ev)
	d.o.Counter("ctrl.decisions").Inc()
	d.o.Counter("ctrl.decisions." + ev.Trigger).Inc()
}

// interval emits one interval-boundary event with the interval's
// measurements.
func (d *decisionObserver) interval(ev *obs.Event) {
	if !d.o.Enabled() {
		return
	}
	ev.Kind = obs.KindInterval
	d.o.Emit(ev)
	d.o.Counter("ctrl.intervals").Inc()
}
