package core

import (
	"fmt"
	"testing"

	"clustersim/internal/pipeline"
	"clustersim/internal/workload"
)

func TestControllerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	windows := map[string]uint64{
		"gzip": 1_700_000, "parser": 2_000_000, "crafty": 1_000_000,
		"swim": 800_000, "mgrid": 800_000, "galgel": 600_000,
		"djpeg": 600_000, "cjpeg": 600_000, "vpr": 600_000,
	}
	for _, name := range workload.Benchmarks() {
		w := windows[name]
		line := fmt.Sprintf("%-7s", name)
		var best float64
		var dyn []float64
		for _, mk := range []func() pipeline.Controller{
			func() pipeline.Controller { return &Static{N: 4} },
			func() pipeline.Controller { return &Static{N: 16} },
			func() pipeline.Controller { return NewExplore(ExploreConfig{}) },
			func() pipeline.Controller { return NewDistantILP(DistantILPConfig{}) },
			func() pipeline.Controller { return NewFineGrain(FineGrainConfig{}) },
			func() pipeline.Controller { return NewFineGrain(FineGrainConfig{CallReturnOnly: true}) },
		} {
			ctrl := mk()
			p := pipeline.MustNew(pipeline.DefaultConfig(), workload.MustNew(name, 1), ctrl)
			r := mustRun(t, p, w)
			line += fmt.Sprintf(" %s:%.2f", r.Policy, r.IPC())
			if _, ok := ctrl.(*Static); ok {
				if r.IPC() > best {
					best = r.IPC()
				}
			} else {
				dyn = append(dyn, r.IPC())
			}
		}
		fmt.Printf("%s  [best-static %.2f | explore %+.0f%% dilp %+.0f%% fg %+.0f%% fgcr %+.0f%%]\n", line, best,
			100*(dyn[0]/best-1), 100*(dyn[1]/best-1), 100*(dyn[2]/best-1), 100*(dyn[3]/best-1))
	}
}

// mustRun advances p by n committed instructions, failing the test on error.
func mustRun(tb testing.TB, p *pipeline.Processor, n uint64) pipeline.Result {
	tb.Helper()
	res, err := p.Run(n)
	if err != nil {
		tb.Fatalf("Run: %v", err)
	}
	return res
}
