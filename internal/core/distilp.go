package core

import (
	"fmt"
	"math"

	"clustersim/internal/obs"
	"clustersim/internal/pipeline"
)

// DistantILPConfig parameterizes the §4.3 no-exploration controller. Zero
// values select the paper's constants.
type DistantILPConfig struct {
	// Interval is the fixed interval length in committed instructions
	// (paper explores 1K as the best trade-off).
	Interval uint64
	// Threshold is the distant-instruction count per interval above
	// which the full-width configuration is chosen. The paper uses 160
	// per 1K instructions; this model's in-order-commit window stays
	// deeper across mispredicts than the paper's substrate, so the
	// default fraction is recalibrated (DefaultDistantFrac) to separate
	// the same benchmark classes. Zero scales the default to Interval.
	Threshold uint64
	// Narrow and Wide are the two candidate configurations (paper: 4 and
	// 16 — "our earlier results indicate that these are the two most
	// meaningful configurations").
	Narrow, Wide int
	// IPCDelta and MetricDelta mirror ExploreConfig's significance
	// tests for phase-change detection.
	IPCDelta    float64
	MetricDelta float64
}

func (c *DistantILPConfig) setDefaults(total int) {
	if c.Interval == 0 {
		c.Interval = 1_000
	}
	if c.Threshold == 0 {
		c.Threshold = uint64(float64(c.Interval) * DefaultDistantFrac)
	}
	if c.Wide == 0 {
		c.Wide = total
	}
	if c.Narrow == 0 {
		c.Narrow = 4
		if c.Narrow > total {
			c.Narrow = total
		}
	}
	if c.IPCDelta == 0 {
		c.IPCDelta = 0.25
	}
	if c.MetricDelta == 0 {
		c.MetricDelta = 0.01
	}
}

// DefaultDistantFrac is the fraction of committed instructions that must
// have issued ≥DistantDepth behind the ROB head for a phase to be classed
// as having distant ILP. The paper's constant is 0.16 on its substrate;
// recalibrated here (see DESIGN.md §6) because this model's window remains
// occupied across mispredicts, shifting all benchmarks' distant fractions
// upward while preserving their ordering.
const DefaultDistantFrac = 0.78

// DistantILP is the §4.3 interval-based controller without exploration: at
// each phase change it runs one interval at full width, measures the degree
// of distant ILP (instructions issued ≥120 behind the ROB head), and picks
// the narrow or wide configuration directly. Reaction is fast — one
// interval — at the cost of measurement noise.
type DistantILP struct {
	cfg   DistantILPConfig //simlint:nostate configuration, fixed at construction
	total int              //simlint:nostate configuration, fixed at construction

	meter     intervalMeter
	measuring bool

	haveReference bool
	refBranches   float64
	refMemrefs    float64
	refIPC        float64

	current int

	phaseChanges uint64
	decisions    uint64

	dobs decisionObserver //simlint:nostate decision observer; checkpointing is refused while one is attached
}

// AttachObserver implements pipeline.ObserverAware.
func (d *DistantILP) AttachObserver(o *obs.Observer) { d.dobs.attach(o) }

// NewDistantILP returns the §4.3 controller. Pass a zero config for the
// paper's constants.
func NewDistantILP(cfg DistantILPConfig) *DistantILP {
	return &DistantILP{cfg: cfg}
}

// Name implements pipeline.Controller.
func (d *DistantILP) Name() string {
	iv := d.cfg.Interval
	if iv == 0 {
		iv = 1_000
	}
	return fmt.Sprintf("interval-dilp-%d", iv)
}

// Reset implements pipeline.Controller.
func (d *DistantILP) Reset(totalClusters int) {
	cfg := d.cfg
	cfg.setDefaults(totalClusters)
	*d = DistantILP{cfg: cfg, total: totalClusters, measuring: true, current: cfg.Wide}
}

// PhaseChanges returns the number of detected phase changes.
func (d *DistantILP) PhaseChanges() uint64 { return d.phaseChanges }

// OnCommit implements pipeline.Controller.
func (d *DistantILP) OnCommit(ev pipeline.CommitEvent) int {
	d.meter.observe(ev)
	if d.meter.instrs < d.cfg.Interval {
		return d.current
	}
	ipc := d.meter.ipc(ev.Cycle)
	instrs := d.meter.instrs
	nbranches := d.meter.branches
	nmemrefs := d.meter.memrefs
	branches := float64(nbranches)
	memrefs := float64(nmemrefs)
	distant := d.meter.distant
	d.meter.reset(ev.Cycle)

	if d.dobs.enabled() {
		d.dobs.interval(&obs.Event{Cycle: ev.Cycle, Policy: d.Name(), IPC: ipc,
			DistantFrac: float64(distant) / float64(d.cfg.Interval),
			Interval:    d.cfg.Interval, OldActive: d.current, NewActive: d.current,
			Instrs: instrs, Branches: nbranches, Memrefs: nmemrefs})
	}

	if d.measuring {
		// Decision interval at full width: pick by distant ILP.
		old := d.current
		trigger := "distant-ilp-low"
		if distant >= d.cfg.Threshold {
			d.current = d.cfg.Wide
			trigger = "distant-ilp-high"
		} else {
			d.current = d.cfg.Narrow
		}
		d.decisions++
		d.refIPC = ipc
		d.refBranches = branches
		d.refMemrefs = memrefs
		d.haveReference = true
		d.measuring = false
		d.dobs.decision(&obs.Event{Cycle: ev.Cycle, Policy: d.Name(),
			Trigger: trigger, OldActive: old, NewActive: d.current, IPC: ipc,
			DistantFrac: float64(distant) / float64(d.cfg.Interval),
			Interval:    d.cfg.Interval,
			Instrs:      instrs, Branches: nbranches, Memrefs: nmemrefs})
		return d.current
	}

	metricDelta := d.cfg.MetricDelta * float64(d.cfg.Interval)
	memChanged := math.Abs(memrefs-d.refMemrefs) > metricDelta
	brChanged := math.Abs(branches-d.refBranches) > metricDelta
	ipcChanged := relDelta(ipc, d.refIPC) > d.cfg.IPCDelta
	if memChanged || brChanged || ipcChanged {
		// Phase change: return to full width and measure again.
		old := d.current
		d.phaseChanges++
		d.measuring = true
		d.haveReference = false
		d.current = d.cfg.Wide
		d.dobs.decision(&obs.Event{Cycle: ev.Cycle, Policy: d.Name(),
			Trigger: "phase-change", OldActive: old, NewActive: d.current,
			IPC: ipc, Interval: d.cfg.Interval,
			Instrs: instrs, Branches: nbranches, Memrefs: nmemrefs})
	}
	return d.current
}

var _ pipeline.Controller = (*DistantILP)(nil)
