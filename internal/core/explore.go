package core

import (
	"fmt"
	"math"

	"clustersim/internal/obs"
	"clustersim/internal/pipeline"
)

// ExploreConfig parameterizes the Figure 4 algorithm. Zero values select
// the paper's constants.
type ExploreConfig struct {
	// InitialInterval is the starting interval length in committed
	// instructions (paper: 10K).
	InitialInterval uint64
	// MaxInterval is THRESH3: when interval doubling passes this point,
	// the controller picks the most popular configuration and stops
	// reconfiguring (paper: 1 billion; scaled down for our shorter
	// windows).
	MaxInterval uint64
	// IPCDelta is the relative IPC change treated as significant. The
	// paper leaves this constant unspecified; 0.25 sits above this
	// model's memory-system noise (±15% at 10K intervals) and far below
	// the 2-3x swings real phase changes produce.
	IPCDelta float64
	// MetricDelta is the absolute branch/memref-count change treated as
	// significant, as a fraction of the interval length (paper:
	// interval_length/100).
	MetricDelta float64
	// Thresh1 is the number of tolerated IPC variations before they
	// signal a phase change (paper: 5).
	Thresh1 float64
	// Thresh2 is the instability level that doubles the interval
	// (paper: 5).
	Thresh2 float64
	// Configs are the candidate cluster counts explored at each phase
	// change (paper: 2, 4, 8, 16).
	Configs []int
	// WarmupIntervals is how many intervals each explored configuration
	// runs before the scoring interval. In-flight work dispatched under
	// the previous configuration drains through the first interval and
	// contaminates its IPC, so one warm-up interval (the default) is
	// discarded. Set negative for none (the paper's literal reading).
	WarmupIntervals int
	// MacroInterval is the macrophase inspection period in committed
	// instructions (Figure 4: "Inspect statistics every 100 billion
	// instructions; if (new macrophase) initialize all variables").
	// When the coarse branch/memref profile shifts between macro
	// periods, the whole algorithm — including a discontinued one —
	// restarts with the initial interval length. Zero disables the
	// hierarchy (it rarely triggers within scaled-down runs).
	MacroInterval uint64
}

func (c *ExploreConfig) setDefaults(total int) {
	if c.InitialInterval == 0 {
		c.InitialInterval = 10_000
	}
	if c.MaxInterval == 0 {
		c.MaxInterval = 50_000_000
	}
	if c.IPCDelta == 0 {
		c.IPCDelta = 0.25
	}
	if c.MetricDelta == 0 {
		c.MetricDelta = 0.01
	}
	if c.Thresh1 == 0 {
		c.Thresh1 = 5
	}
	if c.Thresh2 == 0 {
		c.Thresh2 = 5
	}
	if len(c.Configs) == 0 {
		for _, n := range []int{2, 4, 8, 16} {
			if n <= total {
				c.Configs = append(c.Configs, n)
			}
		}
		if len(c.Configs) == 0 {
			c.Configs = []int{total}
		}
	}
	if c.WarmupIntervals == 0 {
		c.WarmupIntervals = 1
	}
	if c.WarmupIntervals < 0 {
		c.WarmupIntervals = 0
	}
}

// Explore is the §4.2 interval-based controller with exploration and a
// variable interval length (Figure 4).
type Explore struct {
	cfg ExploreConfig //simlint:nostate configuration, fixed at construction

	total          int //simlint:nostate configuration, fixed at construction
	intervalLength uint64

	meter intervalMeter

	haveReference bool
	refBranches   float64
	refMemrefs    float64
	refIPC        float64

	exploring    bool
	exploreIdx   int
	warmupLeft   int
	exploreIPC   []float64
	stable       bool
	reanchor     bool
	current      int
	ipcVariation float64
	instability  float64

	discontinued bool
	// popularity counts intervals spent at each configuration, used when
	// the algorithm discontinues itself.
	popularity map[int]uint64

	// Macrophase state: coarse-grained branch/memref profile of the
	// current and previous macro periods.
	macroInstrs       uint64
	macroBranches     uint64
	macroMemrefs      uint64
	prevMacroBranches float64
	prevMacroMemrefs  float64
	haveMacroRef      bool
	macrophases       uint64

	// Stats.
	phaseChanges   uint64
	explorations   uint64
	intervalGrowth int

	dobs decisionObserver //simlint:nostate decision observer; checkpointing is refused while one is attached
}

// AttachObserver implements pipeline.ObserverAware: decisions are reported
// with their trigger reasons and interval measurements.
func (e *Explore) AttachObserver(o *obs.Observer) { e.dobs.attach(o) }

// NewExplore returns the Figure 4 controller. Pass a zero ExploreConfig for
// the paper's constants.
func NewExplore(cfg ExploreConfig) *Explore {
	return &Explore{cfg: cfg}
}

// Name implements pipeline.Controller.
func (e *Explore) Name() string { return "interval-explore" }

// Reset implements pipeline.Controller.
func (e *Explore) Reset(totalClusters int) {
	cfg := e.cfg
	cfg.setDefaults(totalClusters)
	*e = Explore{
		cfg:            cfg,
		total:          totalClusters,
		intervalLength: cfg.InitialInterval,
		exploreIPC:     make([]float64, len(cfg.Configs)),
		popularity:     make(map[int]uint64),
	}
	e.startExploration()
}

// IntervalLength returns the current adapted interval length.
func (e *Explore) IntervalLength() uint64 { return e.intervalLength }

// PhaseChanges returns the number of detected phase changes.
func (e *Explore) PhaseChanges() uint64 { return e.phaseChanges }

// Explorations returns the number of exploration rounds performed.
func (e *Explore) Explorations() uint64 { return e.explorations }

// Discontinued reports whether the algorithm gave up reconfiguring (the
// THRESH3 path of Figure 4).
func (e *Explore) Discontinued() bool { return e.discontinued }

// Macrophases returns the number of detected macrophase changes.
func (e *Explore) Macrophases() uint64 { return e.macrophases }

func (e *Explore) startExploration() {
	e.exploring = true
	e.stable = false
	e.exploreIdx = 0
	e.warmupLeft = e.cfg.WarmupIntervals
	e.current = e.cfg.Configs[0]
	e.explorations++
}

// OnCommit implements pipeline.Controller.
func (e *Explore) OnCommit(ev pipeline.CommitEvent) int {
	if e.cfg.MacroInterval > 0 {
		e.observeMacro(ev)
	}
	if e.discontinued {
		return e.current
	}
	e.meter.observe(ev)
	if e.meter.instrs < e.intervalLength {
		return e.current
	}
	e.endInterval(ev.Cycle)
	return e.current
}

// observeMacro maintains the Figure 4 macrophase hierarchy: a coarse
// profile comparison that can restart even a discontinued algorithm.
func (e *Explore) observeMacro(ev pipeline.CommitEvent) {
	e.macroInstrs++
	if ev.IsBranch || ev.IsCall || ev.IsReturn {
		e.macroBranches++
	}
	if ev.IsMem {
		e.macroMemrefs++
	}
	if e.macroInstrs < e.cfg.MacroInterval {
		return
	}
	branches := float64(e.macroBranches)
	memrefs := float64(e.macroMemrefs)
	e.macroInstrs, e.macroBranches, e.macroMemrefs = 0, 0, 0
	if e.haveMacroRef {
		delta := e.cfg.MetricDelta * float64(e.cfg.MacroInterval)
		if math.Abs(branches-e.prevMacroBranches) > delta ||
			math.Abs(memrefs-e.prevMacroMemrefs) > delta {
			// New macrophase: reinitialize the algorithm, but carry the
			// cumulative stats counters through — zeroing them here made
			// PhaseChanges()/Explorations() (and anything derived from
			// them, like reconfig-churn rates) undercount on every run
			// crossing a macrophase boundary.
			e.macrophases++
			cur := e.current
			macro := e.macrophases
			cfg := e.cfg
			total := e.total
			dobs := e.dobs
			phases := e.phaseChanges
			explos := e.explorations
			growth := e.intervalGrowth
			*e = Explore{cfg: cfg, total: total,
				intervalLength: cfg.InitialInterval,
				meter:          intervalMeter{startCycle: ev.Cycle},
				exploreIPC:     make([]float64, len(cfg.Configs)),
				popularity:     make(map[int]uint64),
				macrophases:    macro,
				current:        cur,
				phaseChanges:   phases,
				explorations:   explos,
				intervalGrowth: growth,
				dobs:           dobs,
			}
			e.startExploration()
			e.dobs.decision(&obs.Event{Cycle: ev.Cycle, Policy: e.Name(),
				Trigger: "macrophase", OldActive: cur, NewActive: e.current,
				Interval: e.intervalLength})
			return
		}
	}
	e.prevMacroBranches = branches
	e.prevMacroMemrefs = memrefs
	e.haveMacroRef = true
}

// endInterval runs the Figure 4 decision logic at an interval boundary.
func (e *Explore) endInterval(now uint64) {
	ipc := e.meter.ipc(now)
	instrs := e.meter.instrs
	nbranches := e.meter.branches
	nmemrefs := e.meter.memrefs
	branches := float64(nbranches)
	memrefs := float64(nmemrefs)
	distantFrac := float64(e.meter.distant) / float64(instrs)
	e.meter.reset(now)
	e.popularity[e.current] += 1
	if e.dobs.enabled() {
		e.dobs.interval(&obs.Event{Cycle: now, Policy: e.Name(), IPC: ipc,
			DistantFrac: distantFrac, Interval: e.intervalLength,
			OldActive: e.current, NewActive: e.current,
			Instrs: instrs, Branches: nbranches, Memrefs: nmemrefs})
	}

	metricDelta := e.cfg.MetricDelta * float64(e.intervalLength)

	if e.haveReference {
		// The IPC measured while the winning configuration was still
		// being explored carries drain/warm-up transients from its
		// predecessor configuration; the first interval run purely
		// under the chosen configuration re-anchors the reference so
		// those transients are not misread as a phase change.
		if e.stable && e.reanchor {
			e.refIPC = ipc
			e.reanchor = false
		}
		memChanged := math.Abs(memrefs-e.refMemrefs) > metricDelta
		brChanged := math.Abs(branches-e.refBranches) > metricDelta
		ipcChanged := e.stable && relDelta(ipc, e.refIPC) > e.cfg.IPCDelta

		if memChanged || brChanged || (ipcChanged && e.ipcVariation > e.cfg.Thresh1) {
			// Phase change: restart exploration.
			e.phaseChanges++
			e.haveReference = false
			e.ipcVariation = 0
			e.instability += 2
			old := e.current
			if e.instability > e.cfg.Thresh2 {
				e.intervalLength *= 2
				e.intervalGrowth++
				e.instability = 0
				if e.intervalLength > e.cfg.MaxInterval {
					e.discontinue()
					e.dobs.decision(&obs.Event{Cycle: now, Policy: e.Name(),
						Trigger: "discontinued", OldActive: old, NewActive: e.current,
						IPC: ipc, Interval: e.intervalLength,
						Instrs: instrs, Branches: nbranches, Memrefs: nmemrefs})
					return
				}
			}
			e.startExploration()
			e.dobs.decision(&obs.Event{Cycle: now, Policy: e.Name(),
				Trigger: "phase-change", OldActive: old, NewActive: e.current,
				IPC: ipc, DistantFrac: distantFrac, Interval: e.intervalLength,
				Instrs: instrs, Branches: nbranches, Memrefs: nmemrefs})
			return
		}
		if ipcChanged {
			e.ipcVariation += 2
		} else {
			e.ipcVariation = math.Max(-2, e.ipcVariation-0.125)
			e.instability = math.Max(0, e.instability-0.125)
		}
	} else {
		// First interval of a new phase: record the micro-architecture-
		// independent reference metrics.
		e.haveReference = true
		e.refBranches = branches
		e.refMemrefs = memrefs
	}

	if e.exploring {
		if e.warmupLeft > 0 {
			// Discard the drain-contaminated warm-up interval.
			e.warmupLeft--
			return
		}
		e.exploreIPC[e.exploreIdx] = ipc
		e.exploreIdx++
		if e.exploreIdx < len(e.cfg.Configs) {
			// Only the first explored configuration needs a warm-up
			// interval: it inherits a full window of work dispatched
			// under the previous (usually wider) configuration. The
			// later steps widen the machine, whose small drain is
			// negligible against an interval.
			old := e.current
			e.current = e.cfg.Configs[e.exploreIdx]
			e.dobs.decision(&obs.Event{Cycle: now, Policy: e.Name(),
				Trigger: "explore-step", OldActive: old, NewActive: e.current,
				IPC: ipc, Interval: e.intervalLength,
				Instrs: instrs, Branches: nbranches, Memrefs: nmemrefs})
			return
		}
		// Exploration complete: adopt the best configuration and use
		// its IPC as the reference.
		best := 0
		for i, v := range e.exploreIPC {
			if v > e.exploreIPC[best] {
				best = i
			}
		}
		old := e.current
		e.current = e.cfg.Configs[best]
		e.refIPC = e.exploreIPC[best]
		e.exploring = false
		e.stable = true
		e.reanchor = true
		e.dobs.decision(&obs.Event{Cycle: now, Policy: e.Name(),
			Trigger: "explore-adopt", OldActive: old, NewActive: e.current,
			IPC: e.refIPC, Interval: e.intervalLength,
			Instrs: instrs, Branches: nbranches, Memrefs: nmemrefs})
	}
}

// discontinue locks in the most popular configuration (Figure 4's THRESH3
// escape hatch).
func (e *Explore) discontinue() {
	best, bestN := e.total, uint64(0)
	//simlint:allow determinism arg-max reduction with a total tie-break (count, then cluster number) is iteration-order independent
	for cfgN, n := range e.popularity {
		if n > bestN || (n == bestN && cfgN > best) {
			best, bestN = cfgN, n
		}
	}
	e.current = best
	e.discontinued = true
}

func relDelta(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return 1
	}
	return math.Abs(a-b) / b
}

// String summarizes controller state for debugging.
func (e *Explore) String() string {
	return fmt.Sprintf("explore{interval=%d current=%d stable=%t phases=%d}",
		e.intervalLength, e.current, e.stable, e.phaseChanges)
}

var _ pipeline.Controller = (*Explore)(nil)
