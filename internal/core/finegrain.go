package core

import (
	"fmt"

	"clustersim/internal/obs"
	"clustersim/internal/pipeline"
)

// FineGrainConfig parameterizes the §4.4 basic-block-boundary controller.
// Zero values select the paper's constants.
type FineGrainConfig struct {
	// EveryNthBranch attempts reconfiguration only at every Nth branch
	// (paper: best performance at every fifth branch).
	EveryNthBranch int
	// Samples is the number of observations of a branch collected before
	// its reconfiguration-table entry is created (paper: 10 for the
	// branch scheme, 3 for the call/return scheme).
	Samples int
	// TableSize is the direct-mapped reconfiguration-table size (paper:
	// 16K entries "to eliminate effects from aliasing").
	TableSize int
	// Window is the committed-instruction window whose distant-ILP
	// content scores a branch (paper: 360 — what four clusters cannot
	// hold).
	Window int
	// Threshold is the distant count in Window above which the wide
	// configuration is advised (DefaultDistantFrac of the window when
	// zero; see that constant for why it differs from the paper's 0.16).
	Threshold int
	// FlushInterval rebuilds the table periodically so stale advice dies
	// (paper: every 10M instructions with negligible overhead).
	FlushInterval uint64
	// Narrow and Wide are the two advised configurations.
	Narrow, Wide int
	// CallReturnOnly triggers only at subroutine calls and returns
	// (the Figure 6 variant; Huang et al.'s positional adaptation).
	CallReturnOnly bool
}

func (c *FineGrainConfig) setDefaults(total int) {
	if c.EveryNthBranch == 0 {
		c.EveryNthBranch = 5
	}
	if c.Samples == 0 {
		if c.CallReturnOnly {
			c.Samples = 3
		} else {
			c.Samples = 10
		}
	}
	if c.TableSize == 0 {
		c.TableSize = 16 * 1024
	}
	if c.Window == 0 {
		c.Window = 360
	}
	if c.Threshold == 0 {
		c.Threshold = int(float64(c.Window) * DefaultDistantFrac)
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 10_000_000
	}
	if c.Wide == 0 {
		c.Wide = total
	}
	if c.Narrow == 0 {
		c.Narrow = 4
		if c.Narrow > total {
			c.Narrow = total
		}
	}
}

// fgEntry is one reconfiguration-table entry.
type fgEntry struct {
	samples    uint16
	distantSum uint32
	advice     uint8 // 0 = still sampling
}

// FineGrain is the §4.4 fine-grained reconfiguration controller: every
// branch is a potential phase boundary. Until a branch has been sampled
// Samples times, dispatch after it assumes the wide configuration so its
// distant-ILP content can be observed; afterwards the table advises narrow
// or wide directly.
type FineGrain struct {
	cfg   FineGrainConfig //simlint:nostate configuration, fixed at construction
	total int             //simlint:nostate configuration, fixed at construction

	table []fgEntry

	// window is a ring of the last Window commit events.
	window     []windowSlot
	head, size int
	distant    int

	branchCounter int
	current       int
	committed     uint64
	lastFlush     uint64

	reconfigLookups uint64
	tableFlushes    uint64

	dobs decisionObserver //simlint:nostate decision observer; checkpointing is refused while one is attached
}

// AttachObserver implements pipeline.ObserverAware. Decisions are emitted
// only when the advised cluster count actually changes, so the trace stays
// proportional to reconfigurations rather than branches.
func (f *FineGrain) AttachObserver(o *obs.Observer) { f.dobs.attach(o) }

type windowSlot struct {
	pc      uint64
	distant bool
	isTrig  bool // a branch (or call/return in that variant)
}

// NewFineGrain returns the §4.4 controller. Pass a zero config for the
// paper's constants.
func NewFineGrain(cfg FineGrainConfig) *FineGrain {
	return &FineGrain{cfg: cfg}
}

// Name implements pipeline.Controller.
func (f *FineGrain) Name() string {
	if f.cfg.CallReturnOnly {
		return "fg-callreturn"
	}
	return "fg-branch"
}

// Reset implements pipeline.Controller.
func (f *FineGrain) Reset(totalClusters int) {
	cfg := f.cfg
	cfg.setDefaults(totalClusters)
	*f = FineGrain{
		cfg:     cfg,
		total:   totalClusters,
		table:   make([]fgEntry, cfg.TableSize),
		window:  make([]windowSlot, cfg.Window),
		current: cfg.Wide,
	}
}

// TableFlushes returns how many periodic table rebuilds occurred.
func (f *FineGrain) TableFlushes() uint64 { return f.tableFlushes }

func (f *FineGrain) index(pc uint64) int {
	h := (pc >> 2) ^ (pc >> 17)
	return int(h) & (f.cfg.TableSize - 1)
}

// OnCommit implements pipeline.Controller.
func (f *FineGrain) OnCommit(ev pipeline.CommitEvent) int {
	f.committed++
	if f.committed-f.lastFlush >= f.cfg.FlushInterval {
		for i := range f.table {
			f.table[i] = fgEntry{}
		}
		f.lastFlush = f.committed
		f.tableFlushes++
	}

	trigger := false
	if f.cfg.CallReturnOnly {
		trigger = ev.IsCall || ev.IsReturn
	} else {
		trigger = ev.IsBranch || ev.IsCall || ev.IsReturn
	}

	// Slide the 360-instruction window; when a trigger instruction falls
	// out, the running distant count is its sample.
	if f.size == f.cfg.Window {
		old := f.window[f.head]
		if old.distant {
			f.distant--
		}
		if old.isTrig {
			f.recordSample(old.pc, f.distant)
		}
	} else {
		f.size++
	}
	f.window[f.head] = windowSlot{pc: ev.PC, distant: ev.Distant, isTrig: trigger}
	f.head++
	if f.head == f.cfg.Window {
		f.head = 0
	}
	if ev.Distant {
		f.distant++
	}

	if !trigger {
		return f.current
	}
	f.branchCounter++
	if !f.cfg.CallReturnOnly && f.branchCounter%f.cfg.EveryNthBranch != 0 {
		return f.current
	}
	f.reconfigLookups++
	e := &f.table[f.index(ev.PC)]
	old := f.current
	reason := "table-advice"
	if e.advice != 0 {
		f.current = int(e.advice)
	} else {
		// Unknown branch: use the wide machine so its distant ILP can
		// be measured.
		f.current = f.cfg.Wide
		reason = "unknown-branch"
	}
	if f.current != old {
		f.dobs.decision(&obs.Event{Cycle: ev.Cycle, Policy: f.Name(),
			Trigger: reason, OldActive: old, NewActive: f.current, PC: ev.PC})
	}
	return f.current
}

// recordSample accumulates one observed distant-ILP count for the branch at
// pc; the Samples-th observation freezes the advice.
func (f *FineGrain) recordSample(pc uint64, distant int) {
	e := &f.table[f.index(pc)]
	if e.advice != 0 || int(e.samples) >= f.cfg.Samples {
		return
	}
	e.samples++
	e.distantSum += uint32(distant)
	if int(e.samples) == f.cfg.Samples {
		mean := int(e.distantSum) / int(e.samples)
		if mean >= f.cfg.Threshold {
			e.advice = uint8(f.cfg.Wide)
		} else {
			e.advice = uint8(f.cfg.Narrow)
		}
	}
}

// String summarizes controller state.
func (f *FineGrain) String() string {
	return fmt.Sprintf("%s{current=%d lookups=%d}", f.Name(), f.current, f.reconfigLookups)
}

var _ pipeline.Controller = (*FineGrain)(nil)
