package snap

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestRoundTrip drives every primitive through a write/read cycle.
func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Mark("head")
	w.U64(^uint64(0))
	w.I64(-42)
	w.Int(123456789)
	w.Bool(true)
	w.Bool(false)
	w.F64(math.Pi)
	w.String("hello|world")
	w.String("")
	w.Bytes([]byte{1, 2, 3})
	w.U64s([]uint64{9, 8, 7})
	w.U64s(nil)
	w.U32s([]uint32{4, 5})
	w.U16s([]uint16{6, 7})
	w.U8s([]uint8{8})
	w.Bools([]bool{true, false, true})
	w.Mark("tail")
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	r := NewReader(&buf)
	r.Mark("head")
	if v := r.U64(); v != ^uint64(0) {
		t.Errorf("U64 = %d", v)
	}
	if v := r.I64(); v != -42 {
		t.Errorf("I64 = %d", v)
	}
	if v := r.Int(); v != 123456789 {
		t.Errorf("Int = %d", v)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if v := r.F64(); v != math.Pi {
		t.Errorf("F64 = %v", v)
	}
	if v := r.String(); v != "hello|world" {
		t.Errorf("String = %q", v)
	}
	if v := r.String(); v != "" {
		t.Errorf("empty String = %q", v)
	}
	if v := r.Bytes(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", v)
	}
	if v := r.U64s(); len(v) != 3 || v[0] != 9 || v[2] != 7 {
		t.Errorf("U64s = %v", v)
	}
	if v := r.U64s(); len(v) != 0 {
		t.Errorf("nil U64s = %v", v)
	}
	if v := r.U32s(); len(v) != 2 || v[1] != 5 {
		t.Errorf("U32s = %v", v)
	}
	if v := r.U16s(); len(v) != 2 || v[0] != 6 {
		t.Errorf("U16s = %v", v)
	}
	if v := r.U8s(); len(v) != 1 || v[0] != 8 {
		t.Errorf("U8s = %v", v)
	}
	if v := r.Bools(); len(v) != 3 || !v[0] || v[1] {
		t.Errorf("Bools = %v", v)
	}
	r.Mark("tail")
	if err := r.Err(); err != nil {
		t.Fatalf("reader error: %v", err)
	}
}

// TestMarkMismatch verifies that a wrong section name fails with a message
// naming both sections.
func TestMarkMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Mark("alpha")
	w.U64(1)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	r.Mark("beta")
	err := r.Err()
	if err == nil || !strings.Contains(err.Error(), "beta") || !strings.Contains(err.Error(), "alpha") {
		t.Fatalf("expected mismatch naming both sections, got %v", err)
	}
}

// TestDesync verifies that reading payload bytes as a marker is detected.
func TestDesync(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(7)
	w.U64(9)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	r.Mark("section")
	if r.Err() == nil {
		t.Fatal("expected desync error, got nil")
	}
}

// TestTruncation verifies truncated streams fail rather than returning
// zeroes silently forever.
func TestTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64s([]uint64{1, 2, 3, 4})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	r := NewReader(bytes.NewReader(cut))
	r.U64s()
	if r.Err() == nil {
		t.Fatal("expected truncation error, got nil")
	}
}

// TestLengthCap verifies a corrupt length field is rejected before
// allocation.
func TestLengthCap(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(uint64(maxLen) + 1) // forged length prefix
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	r.Bytes()
	if r.Err() == nil {
		t.Fatal("expected length-cap error, got nil")
	}
}

// TestFixedU64s verifies the exact-length restore helper.
func TestFixedU64s(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64s([]uint64{5, 6, 7})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, 3)
	r := NewReader(bytes.NewReader(buf.Bytes()))
	r.FixedU64s(dst, "table")
	if err := r.Err(); err != nil || dst[2] != 7 {
		t.Fatalf("FixedU64s: err=%v dst=%v", err, dst)
	}
	short := make([]uint64, 2)
	r = NewReader(bytes.NewReader(buf.Bytes()))
	r.FixedU64s(short, "table")
	if r.Err() == nil {
		t.Fatal("expected length mismatch error, got nil")
	}
}

// TestInvalidBool verifies non-0/1 bool bytes are rejected.
func TestInvalidBool(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{7}))
	r.Bool()
	if r.Err() == nil {
		t.Fatal("expected invalid-bool error, got nil")
	}
}

// TestDeterministicBytes verifies identical writes yield identical bytes.
func TestDeterministicBytes(t *testing.T) {
	enc := func() []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.Mark("s")
		w.U64(42)
		w.String("bench")
		w.Bools([]bool{true, false})
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(enc(), enc()) {
		t.Fatal("identical writes produced different bytes")
	}
}
