// Package snap is the deterministic binary codec behind the simulator's
// checkpoint/resume layer.
//
// Snapshots must be byte-identical for identical machine states (resume
// equivalence is proved by comparing Results, but stable bytes make the
// format diffable and cache-friendly) and must fail loudly — never silently
// misalign — when a file is truncated, corrupt, or written by a different
// layout version. The codec therefore avoids reflection and varints
// entirely: every value is fixed-width little-endian, every slice is
// length-prefixed, and writers interleave named section markers that readers
// verify, so a desync is detected at the section boundary where it happened
// rather than megabytes later as garbage state.
//
// Both Writer and Reader carry a sticky error: the first failure wins and
// every subsequent call is a cheap no-op, so serialization code reads as
// straight-line field lists with a single Err check at the end.
package snap

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// maxLen bounds every decoded slice and string length. It is far above any
// real simulator structure (the largest is a link calendar at 4096 entries)
// and exists so a corrupt length field cannot drive a multi-gigabyte
// allocation.
const maxLen = 1 << 28

// markTag precedes every section marker so a reader that has desynced into
// arbitrary payload bytes is unlikely to misread one.
const markTag = 0x4b52414d // "MARK"

// Stater is implemented by components that can round-trip their dynamic
// state through a snapshot. SaveState writes the state; LoadState restores
// it into a freshly constructed (same-configuration) component. Errors
// travel through the Writer's/Reader's sticky error.
type Stater interface {
	SaveState(*Writer)
	LoadState(*Reader)
}

// Writer serializes values to an underlying stream.
type Writer struct {
	w   *bufio.Writer
	err error
	buf [8]byte
}

// NewWriter returns a Writer over w. Call Flush before using the bytes.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

// Fail records err as the Writer's sticky error (first failure wins).
func (w *Writer) Fail(err error) {
	if w.err == nil && err != nil {
		w.err = err
	}
}

// Flush drains buffered bytes and returns the sticky error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.Fail(w.w.Flush())
	return w.err
}

func (w *Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	_, err := w.w.Write(b)
	w.Fail(err)
}

// U64 writes a fixed-width 64-bit value.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.write(w.buf[:8])
}

// I64 writes a signed 64-bit value.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int (widened to 64 bits).
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool writes a boolean as one byte.
func (w *Writer) Bool(b bool) {
	v := byte(0)
	if b {
		v = 1
	}
	w.write([]byte{v})
}

// F64 writes a float64 by its IEEE-754 bits.
func (w *Writer) F64(f float64) { w.U64(math.Float64bits(f)) }

// Bytes writes a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	w.write(b)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	if w.err != nil {
		return
	}
	_, err := w.w.WriteString(s)
	w.Fail(err)
}

// U64s writes a length-prefixed []uint64.
func (w *Writer) U64s(s []uint64) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		w.U64(v)
	}
}

// U32s writes a length-prefixed []uint32.
func (w *Writer) U32s(s []uint32) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		w.U64(uint64(v))
	}
}

// U16s writes a length-prefixed []uint16.
func (w *Writer) U16s(s []uint16) {
	w.U64(uint64(len(s)))
	for _, v := range s {
		binary.LittleEndian.PutUint16(w.buf[:2], v)
		w.write(w.buf[:2])
	}
}

// U8s writes a length-prefixed []uint8.
func (w *Writer) U8s(s []uint8) { w.Bytes(s) }

// Bools writes a length-prefixed []bool, one byte per element.
func (w *Writer) Bools(s []bool) {
	w.U64(uint64(len(s)))
	for _, b := range s {
		w.Bool(b)
	}
}

// Mark writes a named section marker that the Reader verifies in order.
func (w *Writer) Mark(name string) {
	w.U64(markTag)
	w.String(name)
}

// Reader deserializes values written by a Writer.
type Reader struct {
	r   *bufio.Reader
	err error
	buf [8]byte
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Fail records err as the Reader's sticky error (first failure wins).
func (r *Reader) Fail(err error) {
	if r.err == nil && err != nil {
		r.err = err
	}
}

// Failf records a formatted sticky error.
func (r *Reader) Failf(format string, args ...any) {
	r.Fail(fmt.Errorf(format, args...))
}

func (r *Reader) read(b []byte) bool {
	if r.err != nil {
		return false
	}
	if _, err := io.ReadFull(r.r, b); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("snap: truncated snapshot: %w", err)
		}
		r.Fail(err)
		return false
	}
	return true
}

// U64 reads a 64-bit value.
func (r *Reader) U64() uint64 {
	if !r.read(r.buf[:8]) {
		return 0
	}
	return binary.LittleEndian.Uint64(r.buf[:8])
}

// I64 reads a signed 64-bit value.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bool reads a boolean.
func (r *Reader) Bool() bool {
	if !r.read(r.buf[:1]) {
		return false
	}
	switch r.buf[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Failf("snap: invalid bool byte %#x", r.buf[0])
		return false
	}
}

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// length reads and bounds-checks a slice length.
func (r *Reader) length() int {
	n := r.U64()
	if n > maxLen {
		r.Failf("snap: length %d exceeds limit %d (corrupt snapshot?)", n, maxLen)
		return 0
	}
	return int(n)
}

// Bytes reads a length-prefixed byte slice.
func (r *Reader) Bytes() []byte {
	n := r.length()
	if r.err != nil || n == 0 {
		return nil
	}
	b := make([]byte, n)
	if !r.read(b) {
		return nil
	}
	return b
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// U64s reads a length-prefixed []uint64.
func (r *Reader) U64s() []uint64 {
	n := r.length()
	if r.err != nil {
		return nil
	}
	s := make([]uint64, n)
	for i := range s {
		s[i] = r.U64()
	}
	if r.err != nil {
		return nil
	}
	return s
}

// U32s reads a length-prefixed []uint32.
func (r *Reader) U32s() []uint32 {
	n := r.length()
	if r.err != nil {
		return nil
	}
	s := make([]uint32, n)
	for i := range s {
		s[i] = uint32(r.U64())
	}
	if r.err != nil {
		return nil
	}
	return s
}

// U16s reads a length-prefixed []uint16.
func (r *Reader) U16s() []uint16 {
	n := r.length()
	if r.err != nil {
		return nil
	}
	s := make([]uint16, n)
	for i := range s {
		if !r.read(r.buf[:2]) {
			return nil
		}
		s[i] = binary.LittleEndian.Uint16(r.buf[:2])
	}
	return s
}

// U8s reads a length-prefixed []uint8.
func (r *Reader) U8s() []uint8 { return r.Bytes() }

// Bools reads a length-prefixed []bool.
func (r *Reader) Bools() []bool {
	n := r.length()
	if r.err != nil {
		return nil
	}
	s := make([]bool, n)
	for i := range s {
		s[i] = r.Bool()
	}
	if r.err != nil {
		return nil
	}
	return s
}

// Mark reads a section marker and verifies its name, failing with a message
// naming both sections when the stream has desynced.
func (r *Reader) Mark(name string) {
	if tag := r.U64(); r.err == nil && tag != markTag {
		r.Failf("snap: expected section %q, found no marker (stream desynced)", name)
		return
	}
	if got := r.String(); r.err == nil && got != name {
		r.Failf("snap: expected section %q, found %q", name, got)
	}
}

// FixedU64s reads a []uint64 written by U64s into dst, failing unless the
// stored length matches len(dst) exactly. Components use it to restore
// configuration-sized tables (calendars, predictor arrays) where a length
// change means the snapshot belongs to a different configuration.
func (r *Reader) FixedU64s(dst []uint64, what string) {
	n := r.length()
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.Failf("snap: %s has %d entries, snapshot holds %d", what, len(dst), n)
		return
	}
	for i := range dst {
		dst[i] = r.U64()
	}
}
