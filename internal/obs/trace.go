package obs

import (
	"bufio"
	"io"
	"strconv"
)

// Kind classifies a trace event.
type Kind uint8

// Event kinds.
const (
	// KindDecision is a controller decision: the policy chose (or
	// re-affirmed after measuring) an active-cluster count. Trigger
	// carries the reason.
	KindDecision Kind = iota
	// KindInterval marks an interval boundary of an interval-based
	// controller, with the interval's measurements.
	KindInterval
	// KindRedirect is a front-end redirect (committed mispredicted
	// control transfer).
	KindRedirect
	// KindReconfig is an applied reconfiguration: the active-cluster
	// count changed, after a drain+flush under the decentralized cache.
	KindReconfig
	// KindSample is a cycle-sampled probe reading.
	KindSample
)

// String returns the event kind's wire name.
func (k Kind) String() string {
	switch k {
	case KindDecision:
		return "decision"
	case KindInterval:
		return "interval"
	case KindRedirect:
		return "redirect"
	case KindReconfig:
		return "reconfig"
	case KindSample:
		return "sample"
	}
	return "unknown"
}

// Event is one structured trace record. It is a flat value type so sinks
// can buffer it without allocation; unused fields stay zero and are omitted
// from serialized forms.
type Event struct {
	// Cycle is the simulation cycle the event occurred at.
	Cycle uint64
	// Kind classifies the event.
	Kind Kind
	// Policy is the controller name (decision/interval/reconfig events).
	Policy string
	// Trigger is the reason for a decision or reconfiguration, e.g.
	// "phase-change", "explore-step", "distant-ilp-low", "table-advice".
	Trigger string
	// OldActive and NewActive are the active-cluster counts around a
	// decision or reconfiguration (equal when the decision re-affirmed).
	OldActive, NewActive int
	// IPC is the measured IPC behind a decision or interval boundary.
	IPC float64
	// DistantFrac is the measured distant-ILP fraction (distant commits
	// per committed instruction in the measured window).
	DistantFrac float64
	// Interval is the controller's interval length in instructions.
	Interval uint64
	// Seq and PC identify the instruction behind a redirect or
	// fine-grained decision.
	Seq, PC uint64
	// Instrs, Branches and Memrefs are the measurement context behind a
	// decision or interval event: the measured window's committed-
	// instruction, branch and memory-reference counts. Together with IPC
	// and DistantFrac they carry everything an interval-based controller
	// consumed when it made the decision, so a decision trace can be
	// audited — or re-driven against another policy — without the run.
	Instrs, Branches, Memrefs uint64
	// Writebacks and DrainCycles describe a decentralized
	// reconfiguration's cache flush.
	Writebacks, DrainCycles uint64
	// IQOcc, LinkUtil and BankQueue are the probe readings of a sample
	// event: total issue-queue occupancy, fraction of link-cycles
	// reserved, and mean L1 bank-port backlog.
	IQOcc, LinkUtil, BankQueue float64
	// Active is the active-cluster count at a sample.
	Active int
}

// Tracer consumes trace events. Implementations are sinks; they are not
// required to be safe for concurrent use (a simulation owns its tracer).
type Tracer interface {
	// Emit records one event. The pointee is only valid for the call.
	Emit(ev *Event)
}

// ---------------------------------------------------------------- ring --

// RingSink keeps the last N events in memory. The zero value is unusable;
// use NewRingSink.
type RingSink struct {
	buf  []Event
	next int
	full bool
}

// NewRingSink returns a ring buffer holding the most recent n events.
func NewRingSink(n int) *RingSink {
	if n < 1 {
		n = 1
	}
	return &RingSink{buf: make([]Event, n)}
}

// Emit implements Tracer.
func (r *RingSink) Emit(ev *Event) {
	r.buf[r.next] = *ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Events returns the buffered events oldest-first.
func (r *RingSink) Events() []Event {
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Len returns the number of buffered events.
func (r *RingSink) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// --------------------------------------------------------------- jsonl --

// JSONLSink writes one JSON object per event to a buffered writer. Close
// flushes; events are hand-serialized into a reused scratch buffer so the
// enabled-tracing path stays allocation-light.
type JSONLSink struct {
	w       *bufio.Writer
	c       io.Closer
	scratch []byte
}

// NewJSONLSink wraps w; if w is also an io.Closer, Close closes it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriterSize(w, 64<<10)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit implements Tracer.
func (s *JSONLSink) Emit(ev *Event) {
	b := s.scratch[:0]
	b = appendEventJSON(b, ev)
	b = append(b, '\n')
	s.scratch = b
	s.w.Write(b) //simlint:allow errflow bufio's error is sticky and surfaces at Close's Flush; Emit stays fire-and-forget
}

// Close flushes buffered output and closes the underlying writer if it is
// closable.
func (s *JSONLSink) Close() error {
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// appendEventJSON serializes ev compactly, omitting zero fields beyond the
// cycle and kind.
func appendEventJSON(b []byte, ev *Event) []byte {
	b = append(b, `{"cycle":`...)
	b = strconv.AppendUint(b, ev.Cycle, 10)
	b = append(b, `,"kind":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, '"')
	if ev.Policy != "" {
		b = append(b, `,"policy":`...)
		b = strconv.AppendQuote(b, ev.Policy)
	}
	if ev.Trigger != "" {
		b = append(b, `,"trigger":`...)
		b = strconv.AppendQuote(b, ev.Trigger)
	}
	if ev.OldActive != 0 || ev.NewActive != 0 {
		b = append(b, `,"old_active":`...)
		b = strconv.AppendInt(b, int64(ev.OldActive), 10)
		b = append(b, `,"new_active":`...)
		b = strconv.AppendInt(b, int64(ev.NewActive), 10)
	}
	if ev.IPC != 0 {
		b = append(b, `,"ipc":`...)
		b = appendFloat(b, ev.IPC)
	}
	if ev.DistantFrac != 0 {
		b = append(b, `,"distant_frac":`...)
		b = appendFloat(b, ev.DistantFrac)
	}
	if ev.Interval != 0 {
		b = append(b, `,"interval":`...)
		b = strconv.AppendUint(b, ev.Interval, 10)
	}
	if ev.Seq != 0 {
		b = append(b, `,"seq":`...)
		b = strconv.AppendUint(b, ev.Seq, 10)
	}
	if ev.Instrs != 0 {
		b = append(b, `,"instrs":`...)
		b = strconv.AppendUint(b, ev.Instrs, 10)
	}
	if ev.Branches != 0 {
		b = append(b, `,"branches":`...)
		b = strconv.AppendUint(b, ev.Branches, 10)
	}
	if ev.Memrefs != 0 {
		b = append(b, `,"memrefs":`...)
		b = strconv.AppendUint(b, ev.Memrefs, 10)
	}
	if ev.PC != 0 {
		b = append(b, `,"pc":`...)
		b = strconv.AppendUint(b, ev.PC, 10)
	}
	if ev.Writebacks != 0 {
		b = append(b, `,"writebacks":`...)
		b = strconv.AppendUint(b, ev.Writebacks, 10)
	}
	if ev.DrainCycles != 0 {
		b = append(b, `,"drain_cycles":`...)
		b = strconv.AppendUint(b, ev.DrainCycles, 10)
	}
	if ev.Kind == KindSample {
		b = append(b, `,"iq_occ":`...)
		b = appendFloat(b, ev.IQOcc)
		b = append(b, `,"link_util":`...)
		b = appendFloat(b, ev.LinkUtil)
		b = append(b, `,"bank_queue":`...)
		b = appendFloat(b, ev.BankQueue)
		b = append(b, `,"active":`...)
		b = strconv.AppendInt(b, int64(ev.Active), 10)
	}
	return append(b, '}')
}

// -------------------------------------------------------------- chrome --

// ChromeSink writes the Chrome trace_event JSON array format, loadable in
// chrome://tracing or https://ui.perfetto.dev. Simulation cycles map to
// microseconds. Decisions and redirects become instant events, drains
// become complete ("X") slices, and probe samples become counter ("C")
// tracks so cluster count, queue occupancy and link utilization render as
// graphs over the run.
type ChromeSink struct {
	w       *bufio.Writer
	c       io.Closer
	scratch []byte
	first   bool
}

// NewChromeSink wraps w; if w is also an io.Closer, Close closes it.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{w: bufio.NewWriterSize(w, 64<<10), first: true}
	s.w.WriteString("[\n") //simlint:allow errflow bufio's error is sticky and surfaces at Close's Flush
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit implements Tracer.
func (s *ChromeSink) Emit(ev *Event) {
	b := s.scratch[:0]
	switch ev.Kind {
	case KindReconfig:
		start := ev.Cycle
		if ev.DrainCycles > 0 && ev.DrainCycles < start {
			start -= ev.DrainCycles
		}
		b = s.open(b, "reconfig", "X", start)
		if ev.DrainCycles > 0 {
			b = append(b, `,"dur":`...)
			b = strconv.AppendUint(b, ev.DrainCycles, 10)
		} else {
			b = append(b, `,"dur":1`...)
		}
		b = append(b, `,"args":{`...)
		b = s.commonArgs(b, ev)
		b = append(b, `,"writebacks":`...)
		b = strconv.AppendUint(b, ev.Writebacks, 10)
		b = append(b, "}}"...)
	case KindSample:
		// One counter event per probe track.
		b = s.counter(b, "active_clusters", ev.Cycle, float64(ev.Active))
		b = s.counter(b, "iq_occupancy", ev.Cycle, ev.IQOcc)
		b = s.counter(b, "link_utilization", ev.Cycle, ev.LinkUtil)
		b = s.counter(b, "bank_queue", ev.Cycle, ev.BankQueue)
		s.scratch = b
		s.w.Write(b) //simlint:allow errflow bufio's error is sticky and surfaces at Close's Flush
		return
	default:
		b = s.open(b, ev.Kind.String(), "i", ev.Cycle)
		b = append(b, `,"s":"g","args":{`...)
		b = s.commonArgs(b, ev)
		if ev.IPC != 0 {
			b = append(b, `,"ipc":`...)
			b = appendFloat(b, ev.IPC)
		}
		if ev.DistantFrac != 0 {
			b = append(b, `,"distant_frac":`...)
			b = appendFloat(b, ev.DistantFrac)
		}
		if ev.Interval != 0 {
			b = append(b, `,"interval":`...)
			b = strconv.AppendUint(b, ev.Interval, 10)
		}
		if ev.PC != 0 {
			b = append(b, `,"pc":`...)
			b = strconv.AppendUint(b, ev.PC, 10)
		}
		b = append(b, "}}"...)
	}
	s.scratch = b
	s.w.Write(b) //simlint:allow errflow bufio's error is sticky and surfaces at Close's Flush
}

// open starts one trace_event record through the shared preamble.
func (s *ChromeSink) open(b []byte, name, ph string, ts uint64) []byte {
	if !s.first {
		b = append(b, ",\n"...)
	}
	s.first = false
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, name)
	b = append(b, `,"ph":"`...)
	b = append(b, ph...)
	b = append(b, `","ts":`...)
	b = strconv.AppendUint(b, ts, 10)
	b = append(b, `,"pid":1,"tid":1`...)
	return b
}

func (s *ChromeSink) counter(b []byte, name string, ts uint64, v float64) []byte {
	b = s.open(b, name, "C", ts)
	b = append(b, `,"args":{"value":`...)
	b = appendFloat(b, v)
	b = append(b, "}}"...)
	return b
}

func (s *ChromeSink) commonArgs(b []byte, ev *Event) []byte {
	b = append(b, `"policy":`...)
	b = strconv.AppendQuote(b, ev.Policy)
	b = append(b, `,"trigger":`...)
	b = strconv.AppendQuote(b, ev.Trigger)
	b = append(b, `,"old_active":`...)
	b = strconv.AppendInt(b, int64(ev.OldActive), 10)
	b = append(b, `,"new_active":`...)
	b = strconv.AppendInt(b, int64(ev.NewActive), 10)
	return b
}

// Close terminates the JSON array, flushes, and closes the underlying
// writer if it is closable.
func (s *ChromeSink) Close() error {
	s.w.WriteString("\n]\n") //simlint:allow errflow bufio's error is sticky; the Flush on the next line returns it
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

var (
	_ Tracer = (*RingSink)(nil)
	_ Tracer = (*JSONLSink)(nil)
	_ Tracer = (*ChromeSink)(nil)
)
