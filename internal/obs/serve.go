package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the process-global expvar name (expvar.Publish panics
// on duplicates; only the first served registry owns it).
var publishOnce sync.Once

// ServeOption customizes Serve's endpoint set.
type ServeOption func(*serveConfig)

type serveConfig struct {
	pprof bool
}

// WithPprof adds the net/http/pprof handlers under /debug/pprof/, so a
// long-running sweep can be profiled live (CPU, heap, goroutine, block)
// without restarting it. Off by default: the profile endpoints expose
// process internals and belong behind an explicit flag.
func WithPprof() ServeOption {
	return func(c *serveConfig) { c.pprof = true }
}

// Serve exposes live snapshots of the registry over HTTP on addr:
//
//	/metrics      JSON snapshot (sorted keys)
//	/metrics.csv  CSV snapshot
//	/debug/vars   standard expvar output, including a "clustersim" var
//	              holding the same snapshot
//	/debug/pprof/ Go profiling endpoints (only with WithPprof)
//
// It returns once the listener is bound, so callers can start a long
// simulation immediately after; the registry's atomic metrics make
// concurrent reads safe while the simulation writes. It reports the bound
// address (resolving a ":0" port request) and a close function that shuts
// the listener down.
func Serve(addr string, r *Registry, opts ...ServeOption) (bound string, close func() error, err error) {
	var cfg serveConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	publishOnce.Do(func() {
		expvar.Publish("clustersim", expvar.Func(func() any { return r.Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.Snapshot().WriteJSON(w) //simlint:allow errflow a failed response write is the client's disconnect; nothing to recover server-side
	})
	mux.HandleFunc("/metrics.csv", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/csv")
		r.Snapshot().WriteCSV(w) //simlint:allow errflow a failed response write is the client's disconnect; nothing to recover server-side
	})
	mux.Handle("/debug/vars", expvar.Handler())
	if cfg.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), ln.Close, nil
}
