package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"sync"
)

// publishOnce guards the process-global expvar name (expvar.Publish panics
// on duplicates; only the first served registry owns it).
var publishOnce sync.Once

// Serve exposes live snapshots of the registry over HTTP on addr:
//
//	/metrics      JSON snapshot (sorted keys)
//	/metrics.csv  CSV snapshot
//	/debug/vars   standard expvar output, including a "clustersim" var
//	              holding the same snapshot
//
// It returns once the listener is bound, so callers can start a long
// simulation immediately after; the registry's atomic metrics make
// concurrent reads safe while the simulation writes. It reports the bound
// address (resolving a ":0" port request) and a close function that shuts
// the listener down.
func Serve(addr string, r *Registry) (bound string, close func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	publishOnce.Do(func() {
		expvar.Publish("clustersim", expvar.Func(func() any { return r.Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/metrics.csv", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/csv")
		r.Snapshot().WriteCSV(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), ln.Close, nil
}
