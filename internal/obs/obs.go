// Package obs is the simulator-wide observability layer: a zero-dependency
// metrics registry (counters, gauges, fixed-bucket histograms), a structured
// event tracer with pluggable sinks, and cycle-sampled probes, all designed
// so that a *disabled* observer costs nothing on the simulator's hot path.
//
// The paper's contribution is a run-time control loop — interval
// exploration, distant-ILP thresholds, per-branch reconfiguration tables —
// and this package makes that loop visible: every controller decision is
// emitted as a trace Event carrying the trigger reason, the old and new
// cluster counts and the measurements (IPC, distant-ILP fraction, interval
// length) that produced it, while sampled probes expose issue-queue
// occupancy, interconnect link utilization and L1 bank-port backlog as the
// phases evolve.
//
// An Observer bundles one Registry, an optional Tracer sink and the probe
// sampling period. All Observer methods are nil-safe: a nil *Observer is
// the disabled state, and callers on hot paths guard with a single pointer
// test (`if obs != nil`), so the instrumentation is free when unused.
package obs

// Observer bundles the observability facilities one simulated processor
// writes to. The zero value (and, everywhere, a nil pointer) disables all
// of them.
type Observer struct {
	// Registry receives metric updates; nil disables metrics.
	Registry *Registry
	// Tracer receives structured events; nil disables tracing.
	Tracer Tracer
	// SamplePeriod is the number of cycles between probe samples
	// (issue-queue occupancy, link utilization, bank backlog). Zero
	// disables sampling.
	SamplePeriod uint64
	// Series, when non-nil, accumulates one time-series row per probe
	// sample for CSV export.
	Series *TimeSeries
}

// Enabled reports whether the observer does anything at all.
func (o *Observer) Enabled() bool {
	return o != nil && (o.Registry != nil || o.Tracer != nil)
}

// Emit forwards an event to the tracer, if any. Nil-safe.
func (o *Observer) Emit(ev *Event) {
	if o == nil || o.Tracer == nil {
		return
	}
	o.Tracer.Emit(ev)
}

// Counter returns the named registry counter, or nil when metrics are
// disabled. Callers cache the pointer and guard increments with a nil test.
func (o *Observer) Counter(name string) *Counter {
	if o == nil || o.Registry == nil {
		return nil
	}
	return o.Registry.Counter(name)
}

// Gauge returns the named registry gauge, or nil when metrics are disabled.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil || o.Registry == nil {
		return nil
	}
	return o.Registry.Gauge(name)
}

// Histogram returns the named registry histogram (created with the given
// upper bounds), or nil when metrics are disabled.
func (o *Observer) Histogram(name string, bounds []float64) *Histogram {
	if o == nil || o.Registry == nil {
		return nil
	}
	return o.Registry.Histogram(name, bounds)
}
