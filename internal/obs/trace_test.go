package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func TestObserverNilSafe(t *testing.T) {
	var o *Observer
	if o.Enabled() {
		t.Fatal("nil observer enabled")
	}
	o.Emit(&Event{}) // must not panic
	if o.Counter("x") != nil || o.Gauge("x") != nil || o.Histogram("x", nil) != nil {
		t.Fatal("nil observer returned live handles")
	}
	// An observer with neither registry nor tracer is also disabled.
	if (&Observer{SamplePeriod: 100}).Enabled() {
		t.Fatal("empty observer enabled")
	}
	if !(&Observer{Registry: NewRegistry()}).Enabled() {
		t.Fatal("registry-only observer disabled")
	}
}

func TestRingSink(t *testing.T) {
	r := NewRingSink(3)
	if r.Len() != 0 {
		t.Fatal("fresh ring non-empty")
	}
	for i := uint64(1); i <= 5; i++ {
		r.Emit(&Event{Cycle: i})
	}
	if r.Len() != 3 {
		t.Fatalf("ring len %d", r.Len())
	}
	evs := r.Events()
	if len(evs) != 3 || evs[0].Cycle != 3 || evs[2].Cycle != 5 {
		t.Fatalf("ring events %v", evs)
	}
	// n < 1 is clamped rather than panicking.
	if NewRingSink(0).Len() != 0 {
		t.Fatal("clamped ring")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindDecision: "decision", KindInterval: "interval",
		KindRedirect: "redirect", KindReconfig: "reconfig",
		KindSample: "sample", Kind(200): "unknown",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("Kind(%d) = %q", k, k.String())
		}
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit(&Event{Cycle: 10, Kind: KindDecision, Policy: "explore",
		Trigger: "phase-change", OldActive: 4, NewActive: 16, IPC: 1.5,
		DistantFrac: 0.8, Interval: 1000})
	s.Emit(&Event{Cycle: 20, Kind: KindSample, IQOcc: 12, LinkUtil: 0.25,
		BankQueue: 1.5, Active: 8})
	s.Emit(&Event{Cycle: 30, Kind: KindRedirect, Seq: 7, PC: 0x400})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	var dec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &dec); err != nil {
		t.Fatalf("line 0 invalid JSON: %v\n%s", err, lines[0])
	}
	if dec["kind"] != "decision" || dec["trigger"] != "phase-change" ||
		dec["old_active"] != 4.0 || dec["new_active"] != 16.0 {
		t.Fatalf("decision line %v", dec)
	}
	var sample map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &sample); err != nil {
		t.Fatal(err)
	}
	if sample["iq_occ"] != 12.0 || sample["link_util"] != 0.25 || sample["active"] != 8.0 {
		t.Fatalf("sample line %v", sample)
	}
	// Zero fields are omitted: the redirect line has no policy/ipc keys.
	var red map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &red); err != nil {
		t.Fatal(err)
	}
	if _, ok := red["policy"]; ok {
		t.Fatalf("redirect carries empty policy: %v", red)
	}
	if red["seq"] != 7.0 || red["pc"] != 1024.0 {
		t.Fatalf("redirect line %v", red)
	}
}

func TestChromeSinkIsValidTraceArray(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	s.Emit(&Event{Cycle: 100, Kind: KindDecision, Policy: "explore",
		Trigger: "explore-adopt", OldActive: 16, NewActive: 4, IPC: 2})
	s.Emit(&Event{Cycle: 250, Kind: KindReconfig, Policy: "explore",
		OldActive: 16, NewActive: 4, Writebacks: 12, DrainCycles: 50})
	s.Emit(&Event{Cycle: 300, Kind: KindSample, IQOcc: 40, LinkUtil: 0.1,
		BankQueue: 0.5, Active: 4})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("invalid trace_event array: %v\n%s", err, buf.String())
	}
	// decision(1) + reconfig(1) + sample(4 counter tracks).
	if len(evs) != 6 {
		t.Fatalf("got %d records", len(evs))
	}
	if evs[0]["ph"] != "i" || evs[0]["name"] != "decision" {
		t.Fatalf("decision record %v", evs[0])
	}
	if evs[1]["ph"] != "X" || evs[1]["dur"] != 50.0 || evs[1]["ts"] != 200.0 {
		t.Fatalf("reconfig record %v", evs[1])
	}
	counters := map[string]float64{}
	for _, ev := range evs[2:] {
		if ev["ph"] != "C" {
			t.Fatalf("sample record %v", ev)
		}
		counters[ev["name"].(string)] = ev["args"].(map[string]any)["value"].(float64)
	}
	if counters["active_clusters"] != 4 || counters["iq_occupancy"] != 40 ||
		counters["link_utilization"] != 0.1 || counters["bank_queue"] != 0.5 {
		t.Fatalf("counter tracks %v", counters)
	}
}

func TestTimeSeriesCSV(t *testing.T) {
	var ts *TimeSeries
	ts.Append(SeriesRow{}) // nil-safe
	if ts.Rows() != nil {
		t.Fatal("nil series has rows")
	}
	ts = &TimeSeries{}
	ts.Append(SeriesRow{Cycle: 100, Instructions: 150, Active: 16, IPC: 1.5,
		IQOcc: 32, LinkUtil: 0.2, BankQueue: 1})
	var buf bytes.Buffer
	if err := ts.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[0] != "cycle,instructions,active_clusters,ipc,iq_occupancy,link_utilization,bank_queue" {
		t.Fatalf("header %q", lines[0])
	}
	if lines[1] != "100,150,16,1.5000,32.00,0.2000,1.00" {
		t.Fatalf("row %q", lines[1])
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("pipeline.cycles").Add(42)
	addr, closeFn, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	defer closeFn()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		return buf.String()
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics")), &snap); err != nil {
		t.Fatalf("/metrics invalid JSON: %v", err)
	}
	if snap.Counters["pipeline.cycles"] != 42 {
		t.Fatalf("/metrics counters %v", snap.Counters)
	}
	if csv := get("/metrics.csv"); !strings.Contains(csv, "pipeline.cycles,counter,42") {
		t.Fatalf("/metrics.csv missing counter:\n%s", csv)
	}
	if vars := get("/debug/vars"); !strings.Contains(vars, "clustersim") {
		t.Fatalf("/debug/vars missing published var:\n%s", vars)
	}
}
