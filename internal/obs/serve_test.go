package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestServeMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test.count").Add(7)
	addr, closeFn, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()

	code, body := get(t, "http://"+addr+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if snap.Counters["test.count"] != 7 {
		t.Fatalf("served snapshot = %+v", snap)
	}

	// Without WithPprof the profiling endpoints must not exist.
	if code, _ := get(t, "http://"+addr+"/debug/pprof/"); code == http.StatusOK {
		t.Fatal("pprof served without WithPprof")
	}
}

func TestServeWithPprof(t *testing.T) {
	addr, closeFn, err := Serve("127.0.0.1:0", NewRegistry(), WithPprof())
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()

	code, body := get(t, "http://"+addr+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if len(body) == 0 {
		t.Fatal("empty pprof index")
	}
	// A concrete profile must be retrievable, not just the index.
	if code, _ := get(t, "http://"+addr+"/debug/pprof/goroutine?debug=1"); code != http.StatusOK {
		t.Fatalf("goroutine profile status %d", code)
	}
}
