package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. Increments are a
// single atomic add, safe for concurrent snapshot readers (the --serve
// endpoint reads while a simulation writes).
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Store overwrites the counter's value (used to sync a counter to an
// externally accumulated total, e.g. a pipeline.Result field).
func (c *Counter) Store(n uint64) {
	if c == nil {
		return
	}
	c.v.Store(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 metric.
type Gauge struct{ bits atomic.Uint64 }

// Set overwrites the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: bounds are the inclusive upper
// bounds of each bucket, and one implicit overflow bucket catches the rest.
// Observations are atomic bucket increments.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Buckets has len(Bounds)+1
	// entries, the last being the overflow bucket.
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
}

// Mean returns the mean observed value, or 0 with no observations.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Registry is a namespace of named metrics. Metric creation takes a lock;
// updates through the returned handles are lock-free, so hot paths fetch
// their handles once and increment through them.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry, suitable
// for JSON/CSV export and merging.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current values. It is safe to call while
// other goroutines update metrics.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Bounds:  append([]float64(nil), h.bounds...),
			Buckets: make([]uint64, len(h.buckets)),
			Count:   h.count.Load(),
			Sum:     math.Float64frombits(h.sumBits.Load()),
		}
		for i := range h.buckets {
			hs.Buckets[i] = h.buckets[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// Merge folds other into s: counters and histogram buckets add, gauges take
// other's value (last writer wins — a gauge is instantaneous). Histograms
// with mismatched bounds keep s's buckets and only fold count and sum.
func (s *Snapshot) Merge(other Snapshot) {
	if s.Counters == nil {
		s.Counters = make(map[string]uint64)
	}
	if s.Gauges == nil {
		s.Gauges = make(map[string]float64)
	}
	if s.Histograms == nil {
		s.Histograms = make(map[string]HistogramSnapshot)
	}
	for name, v := range other.Counters {
		s.Counters[name] += v
	}
	for name, v := range other.Gauges {
		s.Gauges[name] = v
	}
	for name, oh := range other.Histograms {
		sh, ok := s.Histograms[name]
		if !ok {
			s.Histograms[name] = HistogramSnapshot{
				Bounds:  append([]float64(nil), oh.Bounds...),
				Buckets: append([]uint64(nil), oh.Buckets...),
				Count:   oh.Count,
				Sum:     oh.Sum,
			}
			continue
		}
		if len(sh.Bounds) == len(oh.Bounds) && len(sh.Buckets) == len(oh.Buckets) {
			same := true
			for i := range sh.Bounds {
				if sh.Bounds[i] != oh.Bounds[i] {
					same = false
					break
				}
			}
			if same {
				for i := range sh.Buckets {
					sh.Buckets[i] += oh.Buckets[i]
				}
			}
		}
		sh.Count += oh.Count
		sh.Sum += oh.Sum
		s.Histograms[name] = sh
	}
}

// sortedKeys returns map keys in sorted order for deterministic export.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteJSON renders the snapshot as indented JSON with sorted keys.
func (s Snapshot) WriteJSON(w io.Writer) error {
	var b []byte
	b = append(b, "{\n  \"counters\": {"...)
	for i, k := range sortedKeys(s.Counters) {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, "\n    "...)
		b = strconv.AppendQuote(b, k)
		b = append(b, ": "...)
		b = strconv.AppendUint(b, s.Counters[k], 10)
	}
	b = append(b, "\n  },\n  \"gauges\": {"...)
	for i, k := range sortedKeys(s.Gauges) {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, "\n    "...)
		b = strconv.AppendQuote(b, k)
		b = append(b, ": "...)
		b = appendFloat(b, s.Gauges[k])
	}
	b = append(b, "\n  },\n  \"histograms\": {"...)
	for i, k := range sortedKeys(s.Histograms) {
		if i > 0 {
			b = append(b, ',')
		}
		h := s.Histograms[k]
		b = append(b, "\n    "...)
		b = strconv.AppendQuote(b, k)
		b = append(b, ": {\"bounds\": ["...)
		for j, bd := range h.Bounds {
			if j > 0 {
				b = append(b, ',')
			}
			b = appendFloat(b, bd)
		}
		b = append(b, "], \"buckets\": ["...)
		for j, bk := range h.Buckets {
			if j > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendUint(b, bk, 10)
		}
		b = append(b, "], \"count\": "...)
		b = strconv.AppendUint(b, h.Count, 10)
		b = append(b, ", \"sum\": "...)
		b = appendFloat(b, h.Sum)
		b = append(b, '}')
	}
	b = append(b, "\n  }\n}\n"...)
	_, err := w.Write(b)
	return err
}

// WriteCSV renders the snapshot as metric,kind,value rows (histograms
// export their count, sum and mean).
func (s Snapshot) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "metric,kind,value\n"); err != nil {
		return err
	}
	for _, k := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "%s,counter,%d\n", csvQuote(k), s.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "%s,gauge,%g\n", csvQuote(k), s.Gauges[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		if _, err := fmt.Fprintf(w, "%s.count,histogram,%d\n%s.sum,histogram,%g\n%s.mean,histogram,%g\n",
			csvQuote(k), h.Count, csvQuote(k), h.Sum, csvQuote(k), h.Mean()); err != nil {
			return err
		}
	}
	return nil
}

// csvQuote quotes a CSV field only when it needs it.
func csvQuote(s string) string {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ',', '"', '\n', '\r':
			return strconv.Quote(s)
		}
	}
	return s
}

// appendFloat renders a float compactly, mapping non-finite values (invalid
// JSON) to 0.
func appendFloat(b []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = 0
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}
