package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterNilSafe(t *testing.T) {
	var c *Counter
	c.Add(3)
	c.Inc()
	c.Store(7)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(1.5)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(2) // must not panic
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Add(2)
	if r.Counter("a") != c {
		t.Fatal("second Counter(a) returned a different handle")
	}
	if got := r.Counter("a").Value(); got != 2 {
		t.Fatalf("counter value %d", got)
	}
	g := r.Gauge("b")
	g.Set(3.5)
	if r.Gauge("b").Value() != 3.5 {
		t.Fatal("gauge lookup")
	}
	h := r.Histogram("h", []float64{1, 2})
	// Later calls ignore bounds and return the same histogram.
	if r.Histogram("h", []float64{9}) != h {
		t.Fatal("second Histogram(h) returned a different handle")
	}
}

func TestHistogramBuckets(t *testing.T) {
	// Bounds are sorted on creation; observations land in the first bucket
	// whose upper bound >= v, with one overflow bucket.
	h := newHistogram([]float64{10, 1, 5})
	for _, v := range []float64{0.5, 1, 1.5, 5, 7, 10, 11, 100} {
		h.Observe(v)
	}
	s := snapshotOf(h)
	if want := []float64{1, 5, 10}; !equalF(s.Bounds, want) {
		t.Fatalf("bounds %v", s.Bounds)
	}
	// <=1: 0.5, 1 | <=5: 1.5, 5 | <=10: 7, 10 | overflow: 11, 100
	if want := []uint64{2, 2, 2, 2}; !equalU(s.Buckets, want) {
		t.Fatalf("buckets %v", s.Buckets)
	}
	if s.Count != 8 {
		t.Fatalf("count %d", s.Count)
	}
	if s.Sum != 0.5+1+1.5+5+7+10+11+100 {
		t.Fatalf("sum %f", s.Sum)
	}
	if got, want := s.Mean(), s.Sum/8; got != want {
		t.Fatalf("mean %f want %f", got, want)
	}
	if (HistogramSnapshot{}).Mean() != 0 {
		t.Fatal("empty histogram mean")
	}
}

func snapshotOf(h *Histogram) HistogramSnapshot {
	r := NewRegistry()
	r.mu.Lock()
	r.histograms["x"] = h
	r.mu.Unlock()
	return r.Snapshot().Histograms["x"]
}

func equalF(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalU(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSnapshotIsACopy(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(1)
	s := r.Snapshot()
	r.Counter("c").Add(10)
	if s.Counters["c"] != 1 {
		t.Fatal("snapshot tracked later updates")
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewRegistry()
	a.Counter("shared").Add(3)
	a.Counter("only-a").Add(1)
	a.Gauge("g").Set(1)
	a.Histogram("h", []float64{1, 2}).Observe(0.5)
	b := NewRegistry()
	b.Counter("shared").Add(4)
	b.Counter("only-b").Add(2)
	b.Gauge("g").Set(9)
	b.Histogram("h", []float64{1, 2}).Observe(1.5)
	b.Histogram("mismatch", []float64{7}).Observe(3)

	s := a.Snapshot()
	s.Merge(b.Snapshot())

	if s.Counters["shared"] != 7 || s.Counters["only-a"] != 1 || s.Counters["only-b"] != 2 {
		t.Fatalf("merged counters %v", s.Counters)
	}
	// Gauges are instantaneous: last writer wins.
	if s.Gauges["g"] != 9 {
		t.Fatalf("merged gauge %v", s.Gauges["g"])
	}
	h := s.Histograms["h"]
	if h.Count != 2 || h.Sum != 2.0 {
		t.Fatalf("merged histogram %+v", h)
	}
	if want := []uint64{1, 1, 0}; !equalU(h.Buckets, want) {
		t.Fatalf("merged buckets %v", h.Buckets)
	}
	// Histogram absent from the target is copied in.
	if s.Histograms["mismatch"].Count != 1 {
		t.Fatal("absent histogram not copied")
	}

	// Mismatched bounds fold only count and sum, keeping the target's
	// buckets.
	c := NewRegistry()
	c.Histogram("h", []float64{100}).Observe(50)
	s.Merge(c.Snapshot())
	h = s.Histograms["h"]
	if h.Count != 3 || h.Sum != 52.0 {
		t.Fatalf("mismatched merge count/sum %+v", h)
	}
	if want := []uint64{1, 1, 0}; !equalU(h.Buckets, want) {
		t.Fatalf("mismatched merge changed buckets %v", h.Buckets)
	}

	// Merge into a zero Snapshot allocates its maps.
	var zero Snapshot
	zero.Merge(s)
	if zero.Counters["shared"] != 7 {
		t.Fatal("merge into zero snapshot")
	}
}

func TestSnapshotWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("pipeline.cycles").Add(100)
	r.Gauge("ipc").Set(1.25)
	r.Histogram("occ", []float64{1, 2}).Observe(1.5)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, buf.String())
	}
	if got.Counters["pipeline.cycles"] != 100 || got.Gauges["ipc"] != 1.25 {
		t.Fatalf("round trip: %+v", got)
	}
	h := got.Histograms["occ"]
	if h.Count != 1 || h.Sum != 1.5 || !equalU(h.Buckets, []uint64{0, 1, 0}) {
		t.Fatalf("round-tripped histogram %+v", h)
	}
}

func TestSnapshotWriteCSV(t *testing.T) {
	r := NewRegistry()
	r.Counter("c,tricky").Add(5)
	r.Gauge("g").Set(0.5)
	r.Histogram("h", []float64{1}).Observe(2)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"metric,kind,value\n",
		"\"c,tricky\",counter,5\n",
		"g,gauge,0.5\n",
		"h.count,histogram,1\n",
		"h.sum,histogram,2\n",
		"h.mean,histogram,2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			r.Counter("c").Inc()
			r.Gauge("g").Set(float64(i))
			r.Histogram("h", []float64{10, 100}).Observe(float64(i % 150))
		}
	}()
	for i := 0; i < 100; i++ {
		_ = r.Snapshot()
	}
	<-done
	s := r.Snapshot()
	if s.Counters["c"] != 1000 || s.Histograms["h"].Count != 1000 {
		t.Fatalf("final snapshot %v", s.Counters)
	}
}
