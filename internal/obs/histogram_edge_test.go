package obs

import (
	"math"
	"testing"
)

// TestHistogramEdgeCases pins the histogram's bucket semantics at the
// boundaries: empty histograms, a single bucket, values on the bound, and
// the overflow bucket.
func TestHistogramEdgeCases(t *testing.T) {
	cases := []struct {
		name        string
		bounds      []float64
		observe     []float64
		wantBuckets []uint64
		wantCount   uint64
		wantSum     float64
		wantMean    float64
	}{
		{
			name:        "empty histogram reports zeroes",
			bounds:      []float64{1, 2},
			observe:     nil,
			wantBuckets: []uint64{0, 0, 0},
		},
		{
			name:        "no bounds: everything lands in the overflow bucket",
			bounds:      nil,
			observe:     []float64{-5, 0, 7},
			wantBuckets: []uint64{3},
			wantCount:   3,
			wantSum:     2,
			wantMean:    2.0 / 3,
		},
		{
			name:        "single bucket splits at the bound inclusively",
			bounds:      []float64{10},
			observe:     []float64{9.99, 10, 10.01},
			wantBuckets: []uint64{2, 1}, // v <= bound is in-bucket, v > bound overflows
			wantCount:   3,
			wantSum:     30,
			wantMean:    10,
		},
		{
			name:        "overflow bucket catches everything past the last bound",
			bounds:      []float64{1, 2, 4},
			observe:     []float64{0.5, 1.5, 3, 100, math.Inf(1)},
			wantBuckets: []uint64{1, 1, 1, 2},
			wantCount:   5,
			wantSum:     math.Inf(1),
			wantMean:    math.Inf(1),
		},
		{
			name:        "unsorted bounds are sorted at construction",
			bounds:      []float64{4, 1, 2},
			observe:     []float64{0.5, 1.5, 3},
			wantBuckets: []uint64{1, 1, 1, 0},
			wantCount:   3,
			wantSum:     5,
			wantMean:    5.0 / 3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := NewRegistry()
			h := reg.Histogram("h", tc.bounds)
			for _, v := range tc.observe {
				h.Observe(v)
			}
			snap := reg.Snapshot().Histograms["h"]
			if len(snap.Buckets) != len(tc.wantBuckets) {
				t.Fatalf("bucket count %d, want %d", len(snap.Buckets), len(tc.wantBuckets))
			}
			for i, want := range tc.wantBuckets {
				if snap.Buckets[i] != want {
					t.Errorf("bucket %d = %d, want %d (buckets %v)", i, snap.Buckets[i], want, snap.Buckets)
				}
			}
			if snap.Count != tc.wantCount {
				t.Errorf("count %d, want %d", snap.Count, tc.wantCount)
			}
			if snap.Sum != tc.wantSum {
				t.Errorf("sum %v, want %v", snap.Sum, tc.wantSum)
			}
			if got := snap.Mean(); got != tc.wantMean {
				t.Errorf("mean %v, want %v", got, tc.wantMean)
			}
		})
	}
}

// TestNilHistogramIsSafe: the nil-receiver fast path must tolerate observes.
func TestNilHistogramIsSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1) // must not panic
}
