package obs

import (
	"io"
	"strconv"
)

// SeriesRow is one probe sample of a time series.
type SeriesRow struct {
	Cycle        uint64
	Instructions uint64
	Active       int
	IPC          float64 // cumulative IPC at the sample
	IQOcc        float64
	LinkUtil     float64
	BankQueue    float64
}

// TimeSeries accumulates probe samples for CSV export (the per-figure
// time-series traces the experiment drivers write under results/).
type TimeSeries struct {
	rows []SeriesRow
}

// Append records one sample.
func (ts *TimeSeries) Append(row SeriesRow) {
	if ts == nil {
		return
	}
	ts.rows = append(ts.rows, row)
}

// Rows returns the accumulated samples in order.
func (ts *TimeSeries) Rows() []SeriesRow {
	if ts == nil {
		return nil
	}
	return ts.rows
}

// WriteCSV renders the series with a header row.
func (ts *TimeSeries) WriteCSV(w io.Writer) error {
	b := []byte("cycle,instructions,active_clusters,ipc,iq_occupancy,link_utilization,bank_queue\n")
	for _, r := range ts.Rows() {
		b = strconv.AppendUint(b, r.Cycle, 10)
		b = append(b, ',')
		b = strconv.AppendUint(b, r.Instructions, 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(r.Active), 10)
		b = append(b, ',')
		b = strconv.AppendFloat(b, r.IPC, 'f', 4, 64)
		b = append(b, ',')
		b = strconv.AppendFloat(b, r.IQOcc, 'f', 2, 64)
		b = append(b, ',')
		b = strconv.AppendFloat(b, r.LinkUtil, 'f', 4, 64)
		b = append(b, ',')
		b = strconv.AppendFloat(b, r.BankQueue, 'f', 2, 64)
		b = append(b, '\n')
	}
	_, err := w.Write(b)
	return err
}
