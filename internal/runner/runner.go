// Package runner executes sweeps of independent simulator runs on a worker
// pool with a content-addressed run cache.
//
// Reproducing the paper's figures means sweeping benchmark × configuration ×
// controller grids, and every cell is a shared-nothing simulation: the
// workload generator, the processor and the controller are all constructed
// per run from the request's (benchmark, seed, config) triple, and the
// workload engine derives its internal RNG streams from that seed alone.
// Runs therefore commute — executing them on N workers yields bit-identical
// results to executing them serially — and the runner exploits that twice:
//
//   - a worker pool (default GOMAXPROCS) runs requests concurrently while
//     results are always returned in request order;
//   - a content-addressed cache keyed by the request fingerprint (benchmark,
//     seed, window, policy, and a hash of the full configuration) executes
//     each distinct configuration once, so the static baselines that repeat
//     across Figures 5–8 and every sensitivity variant are simulated a
//     single time and their Result reused.
//
// Observability stays per-run: a request carrying a Config.Observer owns its
// registry and series exclusively (no cross-run sharing), is never cached
// (its exports are side effects), and its registry snapshot is merged into
// the runner's aggregate snapshot for sweep-wide export.
package runner

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clustersim/internal/obs"
	"clustersim/internal/pipeline"
	"clustersim/internal/telemetry"
	"clustersim/internal/workload"
)

// Request describes one simulator execution in a sweep.
type Request struct {
	// ID labels the run's artifacts (usually the experiment name).
	ID string //simlint:nokey attribution-only label; two IDs for the same run must share one cached Result
	// Bench and Seed identify the workload; the engine derives all of its
	// internal RNG streams from the seed, so a (Bench, Seed) pair names one
	// exact instruction stream regardless of which worker replays it.
	Bench string
	Seed  uint64
	// Window is the number of instructions to simulate.
	Window uint64
	// Config is the machine configuration. A non-nil Config.Observer makes
	// the request uncacheable (its exports are side effects) and must not
	// be shared between requests.
	Config pipeline.Config
	// Controller is the run's reconfiguration policy instance (nil =
	// static). Controllers are stateful: every request needs its own.
	Controller pipeline.Controller
	// PolicyKey augments the cache key when Controller.Name() does not
	// uniquely identify the controller's configuration.
	PolicyKey string
	// Source, when non-nil, builds the run's workload generator instead
	// of workload.New(Bench, Seed) — the injection point for spec-
	// compiled and trace-replayed workloads. It is called once per
	// execution attempt on the worker (each attempt needs a fresh
	// stream) and must be safe for concurrent invocation across
	// requests. A sourced request also needs a SourceKey to stay
	// cacheable.
	Source func() (workload.Generator, error) //simlint:nokey content identity carried by SourceKey; an unkeyed Source makes the request uncacheable
	// SourceKey is the Source's content-addressed identity (e.g.
	// "spec:<fingerprint>" or "trace:<fingerprint>"), folded into the
	// cache key so a sourced run can never alias a built-in run — or a
	// run sourced from different content. Cache keys name persisted
	// results across processes, so the key must identify the workload's
	// content, never a file path. Empty with a non-nil Source disables
	// caching for the request.
	SourceKey string
	// NoCache forces execution even when an identical run is cached (e.g.
	// when the controller instance is harvested after the run).
	NoCache bool //simlint:nokey cache-bypass switch, not run identity; the result must stay shareable with cached runs
	// PostRun, when non-nil, runs on the worker after an actual execution
	// (cache hits and intra-batch duplicates skip it).
	PostRun func(pipeline.Result) //simlint:nokey side-effect hook; requests carrying one are uncacheable
}

// policy returns the request's policy identity for keys and error reports.
func (q *Request) policy() string {
	name := fmt.Sprintf("static-%d", q.Config.ActiveClusters)
	if q.Controller != nil {
		name = q.Controller.Name()
	}
	if q.PolicyKey != "" {
		name += "|" + q.PolicyKey
	}
	return name
}

// cacheable reports whether the request may be served from / stored to the
// run cache. Requests carrying a Checker never are: the checker is stateful
// (one instance per run) and its violations are harvested after the run, so
// a cache hit would silently skip validation.
func (q *Request) cacheable() bool {
	if q.Source != nil && q.SourceKey == "" {
		// An unkeyed source closure has no content identity to hash:
		// two requests with different closures would collide on
		// (Bench, Seed) alone.
		return false
	}
	return !q.NoCache && q.Config.Observer == nil && q.Config.Checker == nil && q.PostRun == nil
}

// hashField writes one length-prefixed field into the fingerprint hash.
// Length-prefixing (rather than joining fields with a separator byte) makes
// the encoding injective: no choice of field contents can shift bytes across
// a field boundary, so ("ab", "c") can never alias ("a", "bc") — nor can a
// field containing the separator character alias a pair of fields. The
// parameter is a hash.Hash (not io.Writer) because hash writes never fail —
// which is also what satisfies the errflow analysis.
func hashField(h hash.Hash, field string) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(field)))
	h.Write(n[:])
	h.Write([]byte(field))
}

// key fingerprints the request: benchmark, seed, window, policy identity and
// the full configuration. Two requests with equal keys produce identical
// Results.
//
// Every variable-length component is hashed as its own length-prefixed field
// — including the controller name and PolicyKey separately, since their
// "name|policyKey" join is itself ambiguous. The configuration is folded
// through Config.Fingerprint, the single source of truth for which Config
// fields carry result identity — so the runner's cache keys and the snapshot
// identity check can never drift apart (this is also what keeps cache keys
// shared across the timing-equivalent stepper modes: Fingerprint excludes
// LegacyStepper, and an earlier %+v rehash here did not).
func (q *Request) key() uint64 {
	h := fnv.New64a()
	hashField(h, q.Bench)
	hashField(h, fmt.Sprintf("%d", q.Seed))
	hashField(h, fmt.Sprintf("%d", q.Window))
	ctrlName := ""
	if q.Controller != nil {
		ctrlName = q.Controller.Name()
	}
	hashField(h, ctrlName)
	hashField(h, q.PolicyKey)
	hashField(h, q.SourceKey)
	hashField(h, fmt.Sprintf("%016x", q.Config.Fingerprint()))
	// Checked requests are uncacheable, but their keys still drive
	// intra-batch dedup — fold the validation mode in (never the checker's
	// pointer identity) so a checked run can never alias an unchecked one.
	if chk := q.Config.Checker; chk != nil {
		mode := fmt.Sprintf("%T", chk)
		if n, ok := chk.(interface{ Name() string }); ok {
			mode = n.Name()
		}
		hashField(h, "check:"+mode)
	}
	return h.Sum64()
}

// RunError describes one failed run. It serializes into the sweep's failure
// manifest, so every field a post-mortem needs is carried explicitly rather
// than hidden inside the wrapped error.
type RunError struct {
	ID     string `json:"id"`
	Bench  string `json:"bench"`
	Policy string `json:"policy"`
	// Key is the request fingerprint in the same 16-hex-digit form that
	// names checkpoint and persisted-result files ("" for uncacheable
	// requests, whose keys are not computed).
	Key string `json:"key,omitempty"`
	// Message is the failure's one-line description; Dump carries the
	// machine-state dump (deadlocks) or stack trace (panics), if any.
	Message string `json:"message"`
	Dump    string `json:"dump,omitempty"`
	// Transient marks failures worth retrying (wall-clock timeouts);
	// Attempts is how many executions were made before giving up.
	Transient bool `json:"transient,omitempty"`
	Attempts  int  `json:"attempts"`
	// Err is the underlying error (nil after a manifest round-trip).
	Err error `json:"-"`
}

func (e RunError) Error() string {
	msg := e.Message
	if msg == "" && e.Err != nil {
		msg = e.Err.Error()
	}
	return fmt.Sprintf("%s/%s/%s: %s", e.ID, e.Bench, e.Policy, msg)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e RunError) Unwrap() error { return e.Err }

// panicError preserves a recovered panic value with the stack at the point of
// recovery, so the failure manifest can show where a run blew up.
type panicError struct {
	value any
	stack []byte
}

func (e *panicError) Error() string { return fmt.Sprintf("run panicked: %v", e.value) }

// describe classifies an execution error for the failure manifest: a one-line
// message, an optional state/stack dump, and whether retrying could help.
func describe(err error) (msg, dump string, transient bool) {
	msg = err.Error()
	var pe *panicError
	var de *pipeline.DeadlockError
	var se *pipeline.StoppedError
	switch {
	case errors.As(err, &pe):
		dump = string(pe.stack)
	case errors.As(err, &de):
		dump = fmt.Sprintf(
			"cycle=%d committed=%d lastCommitCycle=%d headSeq=%d tailSeq=%d fetchSeq=%d fetchBlockedSeq=%#x draining=%t active=%d",
			de.Cycle, de.Committed, de.LastCommitCycle, de.HeadSeq, de.TailSeq,
			de.FetchSeq, de.FetchBlockedSeq, de.Draining, de.Active)
	case errors.As(err, &se):
		// A stop raised by the per-run timeout: the run was healthy, just
		// slow. With checkpointing on, a retry resumes from the last
		// snapshot instead of starting over.
		transient = true
	}
	return msg, dump, transient
}

// SweepError aggregates every failed run of a sweep.
type SweepError struct {
	Failures []RunError
	Total    int
}

func (e *SweepError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d of %d runs failed:", len(e.Failures), e.Total)
	for _, f := range e.Failures {
		b.WriteString("\n  ")
		b.WriteString(f.Error())
	}
	return b.String()
}

// Stats summarizes the runner's lifetime work plus a live view of the pool.
// It is safe to call Stats concurrently with RunAll, so a monitoring
// goroutine (or a served /metrics endpoint) can watch a sweep in flight.
type Stats struct {
	// Runs counts actual simulator executions.
	Runs int
	// CacheHits counts requests served from the cache, and Deduped
	// requests resolved against an identical request in the same batch.
	CacheHits int
	Deduped   int
	// Failures counts runs that exhausted their retries and failed.
	Failures int

	// Inflight and QueueDepth are live gauges: runs currently executing on
	// workers, and admitted requests still waiting for one.
	Inflight   int
	QueueDepth int
	// Utilization is the pool's busy fraction since the current batch
	// started (0 without an attached Meter).
	Utilization float64
}

// Runner executes request batches. The zero value is ready to use; a Runner
// may be shared across batches (and goroutines) to share its run cache.
type Runner struct {
	// Workers is the pool width (<= 0 selects GOMAXPROCS).
	Workers int
	// DisableCache turns the run cache off (every request executes).
	DisableCache bool

	// Timeout bounds each run attempt's wall-clock time; zero means no
	// limit. A timed-out attempt returns a transient RunError.
	Timeout time.Duration
	// Retries is how many extra attempts a transient failure gets (0 =
	// fail on the first). Permanent failures (panics, deadlocks, invalid
	// requests) never retry.
	Retries int
	// Backoff is the delay before the first retry, doubling per attempt;
	// zero selects 100ms.
	Backoff time.Duration

	// CheckpointDir enables crash-safe sweeps. Cacheable requests whose
	// processor supports snapshotting write a checkpoint every
	// CheckpointEvery committed instructions (atomically, tmp+rename) to
	// <dir>/<key>.snap, resume from an existing snapshot on start, and on
	// success delete the snapshot and persist their Result to
	// <dir>/results/<key>.json for LoadPersisted. Empty disables all of it.
	CheckpointDir string
	// CheckpointEvery is the commit-count cadence between snapshots; zero
	// disables intermediate checkpoints (a run still resumes from and
	// cleans up snapshots left by an earlier process).
	CheckpointEvery uint64

	// Meter, when non-nil, instruments the sweep: per-run lifecycle spans
	// (queue wait, cache lookup, execute, checkpoint write, retry backoff),
	// live gauges and an optional JSONL progress stream. The instrumentation
	// is attribution-only — simulated results are byte-identical with or
	// without it — and a nil Meter costs one pointer test per hook.
	Meter *telemetry.SweepMeter

	mu      sync.Mutex
	cache   map[uint64]pipeline.Result
	stats   Stats
	agg     obs.Snapshot
	aggRuns int

	// Live pool gauges, kept independently of Meter so Stats is meaningful
	// on an uninstrumented runner too.
	inflight atomic.Int64
	queued   atomic.Int64
}

// New returns a Runner with the given pool width (<= 0 selects GOMAXPROCS).
func New(workers int) *Runner { return &Runner{Workers: workers} }

func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Stats returns the runner's lifetime execution counts and live pool gauges.
// Safe to call concurrently with RunAll.
func (r *Runner) Stats() Stats {
	r.mu.Lock()
	s := r.stats
	r.mu.Unlock()
	s.Inflight = int(r.inflight.Load())
	s.QueueDepth = int(r.queued.Load())
	s.Utilization = r.Meter.Utilization()
	return s
}

// AggregateSnapshot returns the merged metrics snapshot of every observed
// run executed so far and the number of runs folded into it.
func (r *Runner) AggregateSnapshot() (obs.Snapshot, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	merged := obs.Snapshot{}
	merged.Merge(r.agg)
	return merged, r.aggRuns
}

func (r *Runner) lookup(key uint64) (pipeline.Result, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	res, ok := r.cache[key]
	if ok {
		r.stats.CacheHits++
	}
	return res, ok
}

func (r *Runner) store(key uint64, res pipeline.Result) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cache == nil {
		r.cache = make(map[uint64]pipeline.Result)
	}
	r.cache[key] = res
}

// RunAll executes a batch. Results are indexed like reqs regardless of the
// execution order; the returned error, if any, is a *SweepError aggregating
// every failed run (successful runs still have valid Results).
func (r *Runner) RunAll(reqs []Request) ([]pipeline.Result, error) {
	if r.CheckpointDir != "" {
		// Best-effort: if the directory cannot be made, runs proceed
		// unprotected (their snapshot writes fail and disable themselves).
		os.MkdirAll(r.CheckpointDir, 0o755)
	}
	n := len(reqs)
	results := make([]pipeline.Result, n)
	errs := make([]*RunError, n)
	keys := make([]uint64, n)
	dupOf := make([]int, n)

	r.Meter.BatchStart(n, r.workers())
	lookupCur := r.Meter.Now()

	// Resolve the cache and dedup identical requests within the batch
	// before anything runs: the first occurrence executes, later ones copy
	// its result. Both resolutions are order-deterministic.
	seen := make(map[uint64]int)
	todo := make([]int, 0, n)
	for i := range reqs {
		dupOf[i] = -1
		q := &reqs[i]
		if q.cacheable() {
			// Computed even with the cache disabled: the fingerprint
			// also names the run's checkpoint and persisted-result
			// files.
			keys[i] = q.key()
		}
		if r.DisableCache || !q.cacheable() {
			todo = append(todo, i)
			continue
		}
		k := keys[i]
		if res, ok := r.lookup(k); ok {
			results[i] = res
			r.Meter.CacheHit()
			continue
		}
		if j, ok := seen[k]; ok {
			dupOf[i] = j
			r.mu.Lock()
			r.stats.Deduped++
			r.mu.Unlock()
			r.Meter.DedupedRun()
			continue
		}
		seen[k] = i
		todo = append(todo, i)
	}
	r.Meter.SpanSince(telemetry.SpanCacheLookup, lookupCur)
	r.Meter.Enqueued(len(todo))
	r.queued.Add(int64(len(todo)))

	workers := r.workers()
	if workers > len(todo) {
		workers = len(todo)
	}
	if workers <= 1 {
		for _, i := range todo {
			results[i], errs[i] = r.execute(&reqs[i], keys[i])
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i], errs[i] = r.execute(&reqs[i], keys[i])
				}
			}()
		}
		for _, i := range todo {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	for i := range reqs {
		if j := dupOf[i]; j >= 0 {
			results[i], errs[i] = results[j], errs[j]
		}
	}
	r.Meter.BatchDone()

	var failures []RunError
	for _, re := range errs {
		if re != nil {
			failures = append(failures, *re)
		}
	}
	if len(failures) > 0 {
		return results, &SweepError{Failures: failures, Total: n}
	}
	return results, nil
}

// retryDelay returns the backoff before retry number `attempt` (1-based count
// of attempts already made): Backoff doubled per attempt, base 100ms.
func (r *Runner) retryDelay(attempt int) time.Duration {
	base := r.Backoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	return base << (attempt - 1)
}

// execute runs one request on the calling worker: it brackets the attempt
// loop with the live pool gauges and the meter's run lifecycle (queue-wait
// and execute spans, run_done progress event), then delegates to
// executeAttempts.
func (r *Runner) execute(q *Request, key uint64) (pipeline.Result, *RunError) {
	r.queued.Add(-1)
	r.inflight.Add(1)
	start := r.Meter.RunStart()
	res, rerr := r.executeAttempts(q, key)
	r.inflight.Add(-1)
	r.Meter.RunDone(q.ID, q.Bench, q.policy(), start, rerr == nil)
	return res, rerr
}

// executeAttempts retries transient failures (timeouts) with exponential
// backoff up to Retries extra attempts. Panics and watchdog deadlocks become
// a structured *RunError carrying the request fingerprint and a
// machine-state or stack dump, so a single bad run fails its request, not
// the whole sweep.
func (r *Runner) executeAttempts(q *Request, key uint64) (pipeline.Result, *RunError) {
	var res pipeline.Result
	var err error
	attempts := 0
	for {
		attempts++
		res, err = r.executeOnce(q, key)
		if err == nil {
			break
		}
		if _, _, transient := describe(err); !transient || attempts > r.Retries {
			break
		}
		boCur := r.Meter.Now()
		time.Sleep(r.retryDelay(attempts))
		r.Meter.SpanSince(telemetry.SpanBackoff, boCur)
	}
	if err != nil {
		msg, dump, transient := describe(err)
		re := &RunError{
			ID: q.ID, Bench: q.Bench, Policy: q.policy(),
			Message: msg, Dump: dump, Transient: transient,
			Attempts: attempts, Err: err,
		}
		if q.cacheable() {
			re.Key = fmt.Sprintf("%016x", key)
		}
		r.mu.Lock()
		r.stats.Failures++
		r.mu.Unlock()
		// The zero Result, not the partial one: a half-run cell must be
		// unmistakably a gap, never mistaken for (much worse) real data.
		return pipeline.Result{}, re
	}

	r.mu.Lock()
	r.stats.Runs++
	r.mu.Unlock()
	if ob := q.Config.Observer; ob != nil && ob.Registry != nil {
		snap := ob.Registry.Snapshot()
		r.mu.Lock()
		r.agg.Merge(snap)
		r.aggRuns++
		r.mu.Unlock()
	}
	if q.PostRun != nil {
		q.PostRun(res)
	}
	if !r.DisableCache && q.cacheable() {
		r.store(key, res)
	}
	if q.cacheable() && r.CheckpointDir != "" {
		// Best-effort: the persisted result lets a -resume process skip
		// this cell without re-simulating it.
		ckCur := r.Meter.Now()
		r.persistResult(key, res)
		r.Meter.SpanSince(telemetry.SpanCheckpoint, ckCur)
	}
	return res, nil
}

// executeOnce makes one attempt at a request: build the workload and
// processor, arm the wall-clock timeout, resume from a checkpoint if one was
// left behind, and run — checkpointing every CheckpointEvery commits so the
// next attempt or process can pick up mid-flight.
func (r *Runner) executeOnce(q *Request, key uint64) (res pipeline.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &panicError{value: p, stack: debug.Stack()}
		}
	}()
	build := func() (*pipeline.Processor, error) {
		mkGen := q.Source
		if mkGen == nil {
			mkGen = func() (workload.Generator, error) { return workload.New(q.Bench, q.Seed) }
		}
		gen, gerr := mkGen()
		if gerr != nil {
			return nil, gerr
		}
		return pipeline.New(q.Config, gen, q.Controller)
	}
	p, err := build()
	if err != nil {
		return res, err
	}

	var stop atomic.Bool
	if r.Timeout > 0 {
		p.SetStopFlag(&stop)
		t := time.AfterFunc(r.Timeout, func() { stop.Store(true) })
		defer t.Stop()
	}

	// Crash safety. Only cacheable requests checkpoint (the fingerprint
	// names the file), and only when every attached component supports
	// snapshotting; others simply run unprotected.
	ckPath := ""
	if r.CheckpointDir != "" && q.cacheable() && p.Checkpointable() == nil {
		ckPath = r.checkpointPath(key)
		if lerr := loadCheckpointFile(p, ckPath); lerr != nil {
			// A corrupt or mismatched snapshot can leave the machine
			// half-restored: drop the file and rebuild from scratch.
			os.Remove(ckPath)
			if p, err = build(); err != nil {
				return res, err
			}
			if r.Timeout > 0 {
				p.SetStopFlag(&stop)
			}
		}
	}

	for p.Committed() < q.Window {
		chunk := q.Window - p.Committed()
		if ckPath != "" && r.CheckpointEvery > 0 && chunk > r.CheckpointEvery {
			chunk = r.CheckpointEvery
		}
		if res, err = p.Run(chunk); err != nil {
			return res, err
		}
		if ckPath != "" && r.CheckpointEvery > 0 && p.Committed() < q.Window {
			ckCur := r.Meter.Now()
			if serr := saveCheckpointFile(p, ckPath); serr != nil {
				// Best-effort: a full disk should slow the sweep
				// down, not kill it.
				os.Remove(ckPath)
				ckPath = ""
			}
			r.Meter.SpanSince(telemetry.SpanCheckpoint, ckCur)
		}
	}
	if ckPath != "" {
		os.Remove(ckPath)
	}
	return p.Stats(), nil
}

// Each runs fn(0..n-1) on a pool of the given width (<= 0 selects
// GOMAXPROCS) and aggregates the per-index errors in index order. It serves
// sweeps whose cells are not plain pipeline runs (e.g. the SMT co-schedule
// studies); fn must be safe for concurrent invocation on distinct indices.
func Each(workers, n int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = safeCall(fn, i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					errs[i] = safeCall(fn, i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	var msgs []string
	for i, err := range errs {
		if err != nil {
			msgs = append(msgs, fmt.Sprintf("cell %d: %v", i, err))
		}
	}
	if len(msgs) > 0 {
		return fmt.Errorf("%d of %d cells failed: %s", len(msgs), n, strings.Join(msgs, "; "))
	}
	return nil
}

func safeCall(fn func(int) error, i int) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panicked: %v", p)
		}
	}()
	return fn(i)
}
