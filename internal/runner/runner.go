// Package runner executes sweeps of independent simulator runs on a worker
// pool with a content-addressed run cache.
//
// Reproducing the paper's figures means sweeping benchmark × configuration ×
// controller grids, and every cell is a shared-nothing simulation: the
// workload generator, the processor and the controller are all constructed
// per run from the request's (benchmark, seed, config) triple, and the
// workload engine derives its internal RNG streams from that seed alone.
// Runs therefore commute — executing them on N workers yields bit-identical
// results to executing them serially — and the runner exploits that twice:
//
//   - a worker pool (default GOMAXPROCS) runs requests concurrently while
//     results are always returned in request order;
//   - a content-addressed cache keyed by the request fingerprint (benchmark,
//     seed, window, policy, and a hash of the full configuration) executes
//     each distinct configuration once, so the static baselines that repeat
//     across Figures 5–8 and every sensitivity variant are simulated a
//     single time and their Result reused.
//
// Observability stays per-run: a request carrying a Config.Observer owns its
// registry and series exclusively (no cross-run sharing), is never cached
// (its exports are side effects), and its registry snapshot is merged into
// the runner's aggregate snapshot for sweep-wide export.
package runner

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"
	"sync"

	"clustersim/internal/obs"
	"clustersim/internal/pipeline"
	"clustersim/internal/workload"
)

// Request describes one simulator execution in a sweep.
type Request struct {
	// ID labels the run's artifacts (usually the experiment name).
	ID string
	// Bench and Seed identify the workload; the engine derives all of its
	// internal RNG streams from the seed, so a (Bench, Seed) pair names one
	// exact instruction stream regardless of which worker replays it.
	Bench string
	Seed  uint64
	// Window is the number of instructions to simulate.
	Window uint64
	// Config is the machine configuration. A non-nil Config.Observer makes
	// the request uncacheable (its exports are side effects) and must not
	// be shared between requests.
	Config pipeline.Config
	// Controller is the run's reconfiguration policy instance (nil =
	// static). Controllers are stateful: every request needs its own.
	Controller pipeline.Controller
	// PolicyKey augments the cache key when Controller.Name() does not
	// uniquely identify the controller's configuration.
	PolicyKey string
	// NoCache forces execution even when an identical run is cached (e.g.
	// when the controller instance is harvested after the run).
	NoCache bool
	// PostRun, when non-nil, runs on the worker after an actual execution
	// (cache hits and intra-batch duplicates skip it).
	PostRun func(pipeline.Result)
}

// policy returns the request's policy identity for keys and error reports.
func (q *Request) policy() string {
	name := fmt.Sprintf("static-%d", q.Config.ActiveClusters)
	if q.Controller != nil {
		name = q.Controller.Name()
	}
	if q.PolicyKey != "" {
		name += "|" + q.PolicyKey
	}
	return name
}

// cacheable reports whether the request may be served from / stored to the
// run cache. Requests carrying a Checker never are: the checker is stateful
// (one instance per run) and its violations are harvested after the run, so
// a cache hit would silently skip validation.
func (q *Request) cacheable() bool {
	return !q.NoCache && q.Config.Observer == nil && q.Config.Checker == nil && q.PostRun == nil
}

// key fingerprints the request: benchmark, seed, window, policy identity and
// the full configuration (pointer sub-configs dereferenced, observer
// excluded). Two requests with equal keys produce identical Results.
func (q *Request) key() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%s|", q.Bench, q.Seed, q.Window, q.policy())
	c := q.Config
	cacheCfg := c.CacheConfig
	branchCfg := c.BranchPred
	bankCfg := c.BankPred
	chk := c.Checker
	c.CacheConfig, c.BranchPred, c.BankPred, c.Observer, c.Checker = nil, nil, nil, nil, nil
	fmt.Fprintf(h, "%+v", c)
	// Checked requests are uncacheable, but their keys still drive
	// intra-batch dedup — fold the validation mode in (never the checker's
	// pointer, which %+v would otherwise print) so a checked run can never
	// alias an unchecked one.
	if chk != nil {
		mode := fmt.Sprintf("%T", chk)
		if n, ok := chk.(interface{ Name() string }); ok {
			mode = n.Name()
		}
		fmt.Fprintf(h, "|check:%s", mode)
	}
	if cacheCfg != nil {
		fmt.Fprintf(h, "|cache:%+v", *cacheCfg)
	}
	if branchCfg != nil {
		fmt.Fprintf(h, "|bpred:%+v", *branchCfg)
	}
	if bankCfg != nil {
		fmt.Fprintf(h, "|bank:%+v", *bankCfg)
	}
	return h.Sum64()
}

// RunError describes one failed run.
type RunError struct {
	ID     string
	Bench  string
	Policy string
	Err    error
}

func (e RunError) Error() string {
	return fmt.Sprintf("%s/%s/%s: %v", e.ID, e.Bench, e.Policy, e.Err)
}

// SweepError aggregates every failed run of a sweep.
type SweepError struct {
	Failures []RunError
	Total    int
}

func (e *SweepError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d of %d runs failed:", len(e.Failures), e.Total)
	for _, f := range e.Failures {
		b.WriteString("\n  ")
		b.WriteString(f.Error())
	}
	return b.String()
}

// Stats summarizes the runner's lifetime work.
type Stats struct {
	// Runs counts actual simulator executions.
	Runs int
	// CacheHits counts requests served from the cache, and Deduped
	// requests resolved against an identical request in the same batch.
	CacheHits int
	Deduped   int
}

// Runner executes request batches. The zero value is ready to use; a Runner
// may be shared across batches (and goroutines) to share its run cache.
type Runner struct {
	// Workers is the pool width (<= 0 selects GOMAXPROCS).
	Workers int
	// DisableCache turns the run cache off (every request executes).
	DisableCache bool

	mu      sync.Mutex
	cache   map[uint64]pipeline.Result
	stats   Stats
	agg     obs.Snapshot
	aggRuns int
}

// New returns a Runner with the given pool width (<= 0 selects GOMAXPROCS).
func New(workers int) *Runner { return &Runner{Workers: workers} }

func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Stats returns the runner's lifetime execution counts.
func (r *Runner) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// AggregateSnapshot returns the merged metrics snapshot of every observed
// run executed so far and the number of runs folded into it.
func (r *Runner) AggregateSnapshot() (obs.Snapshot, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	merged := obs.Snapshot{}
	merged.Merge(r.agg)
	return merged, r.aggRuns
}

func (r *Runner) lookup(key uint64) (pipeline.Result, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	res, ok := r.cache[key]
	if ok {
		r.stats.CacheHits++
	}
	return res, ok
}

func (r *Runner) store(key uint64, res pipeline.Result) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cache == nil {
		r.cache = make(map[uint64]pipeline.Result)
	}
	r.cache[key] = res
}

// RunAll executes a batch. Results are indexed like reqs regardless of the
// execution order; the returned error, if any, is a *SweepError aggregating
// every failed run (successful runs still have valid Results).
func (r *Runner) RunAll(reqs []Request) ([]pipeline.Result, error) {
	n := len(reqs)
	results := make([]pipeline.Result, n)
	errs := make([]error, n)
	keys := make([]uint64, n)
	dupOf := make([]int, n)

	// Resolve the cache and dedup identical requests within the batch
	// before anything runs: the first occurrence executes, later ones copy
	// its result. Both resolutions are order-deterministic.
	seen := make(map[uint64]int)
	todo := make([]int, 0, n)
	for i := range reqs {
		dupOf[i] = -1
		q := &reqs[i]
		if r.DisableCache || !q.cacheable() {
			todo = append(todo, i)
			continue
		}
		k := q.key()
		keys[i] = k
		if res, ok := r.lookup(k); ok {
			results[i] = res
			continue
		}
		if j, ok := seen[k]; ok {
			dupOf[i] = j
			r.mu.Lock()
			r.stats.Deduped++
			r.mu.Unlock()
			continue
		}
		seen[k] = i
		todo = append(todo, i)
	}

	workers := r.workers()
	if workers > len(todo) {
		workers = len(todo)
	}
	if workers <= 1 {
		for _, i := range todo {
			results[i], errs[i] = r.execute(&reqs[i], keys[i])
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i], errs[i] = r.execute(&reqs[i], keys[i])
				}
			}()
		}
		for _, i := range todo {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	for i := range reqs {
		if j := dupOf[i]; j >= 0 {
			results[i], errs[i] = results[j], errs[j]
		}
	}

	var failures []RunError
	for i, err := range errs {
		if err != nil {
			failures = append(failures, RunError{
				ID: reqs[i].ID, Bench: reqs[i].Bench, Policy: reqs[i].policy(), Err: err,
			})
		}
	}
	if len(failures) > 0 {
		return results, &SweepError{Failures: failures, Total: n}
	}
	return results, nil
}

// execute runs one request on the calling worker. Panics (e.g. the
// pipeline's forward-progress watchdog) are converted into errors so a
// single bad run fails its request, not the whole sweep.
func (r *Runner) execute(q *Request, key uint64) (res pipeline.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("run panicked: %v", p)
		}
	}()
	gen, err := workload.New(q.Bench, q.Seed)
	if err != nil {
		return res, err
	}
	p, err := pipeline.New(q.Config, gen, q.Controller)
	if err != nil {
		return res, err
	}
	res = p.Run(q.Window)

	r.mu.Lock()
	r.stats.Runs++
	r.mu.Unlock()
	if ob := q.Config.Observer; ob != nil && ob.Registry != nil {
		snap := ob.Registry.Snapshot()
		r.mu.Lock()
		r.agg.Merge(snap)
		r.aggRuns++
		r.mu.Unlock()
	}
	if q.PostRun != nil {
		q.PostRun(res)
	}
	if !r.DisableCache && q.cacheable() {
		r.store(key, res)
	}
	return res, nil
}

// Each runs fn(0..n-1) on a pool of the given width (<= 0 selects
// GOMAXPROCS) and aggregates the per-index errors in index order. It serves
// sweeps whose cells are not plain pipeline runs (e.g. the SMT co-schedule
// studies); fn must be safe for concurrent invocation on distinct indices.
func Each(workers, n int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = safeCall(fn, i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					errs[i] = safeCall(fn, i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	var msgs []string
	for i, err := range errs {
		if err != nil {
			msgs = append(msgs, fmt.Sprintf("cell %d: %v", i, err))
		}
	}
	if len(msgs) > 0 {
		return fmt.Errorf("%d of %d cells failed: %s", len(msgs), n, strings.Join(msgs, "; "))
	}
	return nil
}

func safeCall(fn func(int) error, i int) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panicked: %v", p)
		}
	}()
	return fn(i)
}
