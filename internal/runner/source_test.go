package runner

import (
	"errors"
	"fmt"
	"testing"

	"clustersim/internal/workload"
)

// TestSourceInjection: a request carrying its own generator factory must
// produce the byte-identical Result of the equivalent built-in request
// when the factory yields the same stream.
func TestSourceInjection(t *testing.T) {
	reqs := []Request{staticReq("gzip", 4), staticReq("gzip", 4)}
	reqs[1].Source = func() (workload.Generator, error) { return workload.New("gzip", 1) }
	reqs[1].SourceKey = "test:equivalent"
	res, err := New(2).RunAll(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != res[1] {
		t.Fatalf("injected source diverges from built-in generator:\n  builtin: %+v\n  source:  %+v", res[0], res[1])
	}
}

// TestSourceKeyCaching: SourceKey is part of the cache identity — same key
// hits, different keys (and the no-key case) never collide with the
// built-in request.
func TestSourceKeyCaching(t *testing.T) {
	src := func() (workload.Generator, error) { return workload.New("gzip", 1) }
	base := staticReq("gzip", 4)
	a := base
	a.Source, a.SourceKey = src, "trace:aaaa"
	b := base
	b.Source, b.SourceKey = src, "trace:bbbb"
	if base.key() == a.key() || a.key() == b.key() {
		t.Fatalf("SourceKey does not discriminate cache keys")
	}
	if !a.cacheable() {
		t.Fatalf("keyed source request must be cacheable")
	}

	r := New(1)
	if _, err := r.RunAll([]Request{a, a}); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Runs != 1 || st.Deduped != 1 {
		t.Fatalf("keyed source requests did not dedup: %+v", st)
	}
}

// TestSourceWithoutKeyUncacheable: a generator factory with no content key
// must bypass the cache entirely — the runner cannot know two closures
// yield the same stream.
func TestSourceWithoutKeyUncacheable(t *testing.T) {
	q := staticReq("gzip", 4)
	q.Source = func() (workload.Generator, error) { return workload.New("gzip", 1) }
	if q.cacheable() {
		t.Fatalf("keyless source request must not be cacheable")
	}
	r := New(1)
	for i := 0; i < 2; i++ {
		if _, err := r.RunAll([]Request{q}); err != nil {
			t.Fatal(err)
		}
	}
	if st := r.Stats(); st.Runs != 2 {
		t.Fatalf("keyless source request was cache-served: %+v", st)
	}
}

// TestSourceErrorSurfaces: a failing factory is a per-run failure with the
// factory's error, not a panic or a silent zero Result.
func TestSourceErrorSurfaces(t *testing.T) {
	q := staticReq("gzip", 4)
	q.Source = func() (workload.Generator, error) { return nil, fmt.Errorf("trace file rotted away") }
	q.SourceKey = "trace:gone"
	_, err := New(1).RunAll([]Request{q})
	var se *SweepError
	if !errors.As(err, &se) || len(se.Failures) != 1 {
		t.Fatalf("want one-failure SweepError, got %v", err)
	}
	if se.Failures[0].Err == nil {
		t.Fatalf("failure lost the source error")
	}
}
