package runner

import (
	"testing"

	"clustersim/internal/pipeline"
	"clustersim/internal/workload"
)

// namedCtrl is a stub controller whose Name is chosen by the test — the
// knob the key-boundary tests below need.
type namedCtrl struct{ name string }

func (c namedCtrl) Name() string                         { return c.name }
func (c namedCtrl) Reset(totalClusters int)              {}
func (c namedCtrl) OnCommit(ev pipeline.CommitEvent) int { return 0 }

func keyOf(q Request) uint64 { return q.key() }

// TestKeyFieldBoundaries: the cache key's encoding is injective across field
// boundaries. No way of redistributing the same bytes between adjacent
// identity fields (controller name / PolicyKey / SourceKey) may collide —
// the aliasing class a separator-joined encoding would be vulnerable to.
func TestKeyFieldBoundaries(t *testing.T) {
	base := staticReq("gzip", 4)
	cases := []struct {
		name string
		a, b Request
	}{
		{
			name: "controller name vs PolicyKey",
			a: func() Request {
				q := base
				q.Controller = namedCtrl{name: "interval|thr=2"}
				q.PolicyKey = "hyst=4"
				return q
			}(),
			b: func() Request {
				q := base
				q.Controller = namedCtrl{name: "interval"}
				q.PolicyKey = "thr=2|hyst=4"
				return q
			}(),
		},
		{
			name: "PolicyKey vs SourceKey",
			a: func() Request {
				q := base
				q.PolicyKey = "spec:ab"
				q.SourceKey = "c"
				return q
			}(),
			b: func() Request {
				q := base
				q.PolicyKey = "spec:a"
				q.SourceKey = "bc"
				return q
			}(),
		},
		{
			name: "empty PolicyKey vs empty SourceKey",
			a: func() Request {
				q := base
				q.PolicyKey = "trace:f00d"
				return q
			}(),
			b: func() Request {
				q := base
				q.SourceKey = "trace:f00d"
				return q
			}(),
		},
	}
	for _, tc := range cases {
		if ka, kb := keyOf(tc.a), keyOf(tc.b); ka == kb {
			t.Errorf("%s: requests alias to the same key %016x", tc.name, ka)
		}
	}
}

// TestKeySharedAcrossStepperModes: LegacyStepper selects a timing-equivalent
// implementation, not a different simulated machine, so it must not split
// the cache key (regression: key() once hashed the whole Config with %+v,
// which included LegacyStepper even though Config.Fingerprint excluded it).
func TestKeySharedAcrossStepperModes(t *testing.T) {
	event := staticReq("gzip", 4)
	legacy := staticReq("gzip", 4)
	legacy.Config.LegacyStepper = true
	if ke, kl := keyOf(event), keyOf(legacy); ke != kl {
		t.Errorf("stepper modes split the cache key: event %016x, legacy %016x", ke, kl)
	}
}

// TestKeylessSourceUncacheable: a Source closure without a SourceKey has no
// content identity, so the request must bypass the cache entirely rather
// than collide on (Bench, Seed) alone.
func TestKeylessSourceUncacheable(t *testing.T) {
	q := staticReq("gzip", 4)
	q.Source = func() (workload.Generator, error) { return workload.New(q.Bench, q.Seed) }
	if q.cacheable() {
		t.Error("request with keyless Source is cacheable; it must not be")
	}
	q.SourceKey = "spec:deadbeef"
	if !q.cacheable() {
		t.Error("keyed sourced request is not cacheable; it should be")
	}
}
