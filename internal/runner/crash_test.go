package runner

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"clustersim/internal/pipeline"
)

// namedController is a stub controller with an arbitrary Name, for key tests.
type namedController struct{ name string }

func (c *namedController) Name() string                      { return c.name }
func (c *namedController) Reset(int)                         {}
func (c *namedController) OnCommit(pipeline.CommitEvent) int { return 0 }

// panicAfterController panics once its commit count crosses a threshold —
// the injected fault for isolation tests.
type panicAfterController struct {
	n     int
	after int
}

func (c *panicAfterController) Name() string { return "panic-after" }
func (c *panicAfterController) Reset(int)    { c.n = 0 }
func (c *panicAfterController) OnCommit(pipeline.CommitEvent) int {
	c.n++
	if c.n > c.after {
		panic("injected controller fault")
	}
	return 0
}

// TestKeyFieldBoundaryCollision is the regression test for the bare-'|'
// fingerprint scheme: the controller name and PolicyKey used to be joined
// with '|' into one string, so a name containing '|' could shift bytes
// across the field boundary and alias a different request. With
// length-prefixed fields the two requests below — identical joined policy
// strings "static-16|a|b" — must hash differently.
func TestKeyFieldBoundaryCollision(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	a := Request{Bench: "gzip", Seed: 1, Window: 1000, Config: cfg,
		Controller: &namedController{name: "static-16|a"}, PolicyKey: "b"}
	b := Request{Bench: "gzip", Seed: 1, Window: 1000, Config: cfg,
		PolicyKey: "a|b"} // nil controller => name "static-16"
	if a.policy() != b.policy() {
		t.Fatalf("test premise broken: joined policies differ (%q vs %q)", a.policy(), b.policy())
	}
	if a.key() == b.key() {
		t.Fatal("field-boundary collision: distinct requests share a fingerprint")
	}

	// Same aliasing family across bench/seed digits: "gzip" + seed 11 vs
	// hypothetical boundary shifts must also discriminate.
	c := Request{Bench: "gzip", Seed: 11, Window: 100, Config: cfg}
	d := Request{Bench: "gzip1", Seed: 1, Window: 100, Config: cfg}
	if c.key() == d.key() {
		t.Fatal("bench/seed boundary collision")
	}
}

// TestPanicIsolation: an injected panic in one run fails that run with a
// stack dump in its RunError while the rest of the sweep completes and
// reports results — partial-result salvage.
func TestPanicIsolation(t *testing.T) {
	reqs := []Request{
		staticReq("gzip", 4),
		{ID: "faulty", Bench: "gzip", Seed: 1, Window: testWindow,
			Config: pipeline.DefaultConfig(), Controller: &panicAfterController{after: 500}},
		staticReq("swim", 4),
	}
	rs, err := New(2).RunAll(reqs)
	if err == nil {
		t.Fatal("expected sweep error")
	}
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("want *SweepError, got %T", err)
	}
	if len(se.Failures) != 1 || se.Total != 3 {
		t.Fatalf("failures: %+v", se)
	}
	f := se.Failures[0]
	if f.ID != "faulty" || !strings.Contains(f.Message, "injected controller fault") {
		t.Fatalf("wrong failure: %+v", f)
	}
	if !strings.Contains(f.Dump, "panicAfterController") {
		t.Fatalf("dump does not carry the panic stack: %q", f.Dump)
	}
	if f.Transient || f.Attempts != 1 {
		t.Fatalf("panic misclassified: transient=%t attempts=%d", f.Transient, f.Attempts)
	}
	if rs[0].Instructions < testWindow || rs[2].Instructions < testWindow {
		t.Fatal("healthy runs lost their results")
	}
}

// TestDeadlockBecomesManifestEntry: a watchdog deadlock is a permanent
// failure carrying the machine-state dump.
func TestDeadlockBecomesManifestEntry(t *testing.T) {
	q := staticReq("gzip", 4)
	q.Config.WatchdogCycles = 1 // fires during pipeline fill
	_, err := New(1).RunAll([]Request{q})
	var se *SweepError
	if !errors.As(err, &se) || len(se.Failures) != 1 {
		t.Fatalf("want one failure, got %v", err)
	}
	f := se.Failures[0]
	if !strings.Contains(f.Message, "no commit in") || !strings.Contains(f.Dump, "headSeq=") {
		t.Fatalf("deadlock record incomplete: %+v", f)
	}
	if f.Transient {
		t.Fatal("deadlock marked transient")
	}
	var de *pipeline.DeadlockError
	if !errors.As(f.Err, &de) {
		t.Fatalf("underlying error lost: %T", f.Err)
	}
}

// TestTimeoutRetries: a run that cannot finish inside Timeout fails as
// transient after Retries+1 attempts.
func TestTimeoutRetries(t *testing.T) {
	r := New(1)
	r.Timeout = time.Millisecond
	r.Retries = 2
	r.Backoff = time.Microsecond
	q := staticReq("gzip", 16)
	q.Window = 50_000_000 // far beyond a millisecond of simulation
	_, err := r.RunAll([]Request{q})
	var se *SweepError
	if !errors.As(err, &se) || len(se.Failures) != 1 {
		t.Fatalf("want one failure, got %v", err)
	}
	f := se.Failures[0]
	if !f.Transient {
		t.Fatalf("timeout not transient: %+v", f)
	}
	if f.Attempts != 3 {
		t.Fatalf("attempts %d, want 3", f.Attempts)
	}
	var stopped *pipeline.StoppedError
	if !errors.As(f.Err, &stopped) {
		t.Fatalf("underlying error %T, want *StoppedError", f.Err)
	}
}

// TestCheckpointResumeThroughRunner: a sweep interrupted mid-run (here by a
// wall-clock timeout) leaves a snapshot behind; a second runner pointed at
// the same checkpoint directory finishes the run from the snapshot, and the
// final Result is byte-identical to an uninterrupted simulation. On success
// the snapshot is deleted and the Result persisted for resume.
func TestCheckpointResumeThroughRunner(t *testing.T) {
	dir := t.TempDir()
	q := staticReq("gzip", 16)
	q.Window = 400_000

	// Reference: uninterrupted run, no checkpointing anywhere.
	ref, err := New(1).RunAll([]Request{q})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: checkpoint every 20K commits, give up after ~80ms.
	r1 := New(1)
	r1.CheckpointDir = dir
	r1.CheckpointEvery = 20_000
	r1.Timeout = 80 * time.Millisecond
	_, err = r1.RunAll([]Request{q})
	if err == nil {
		// Machine fast enough to finish inside the timeout: the resume
		// path below still exercises load-no-snapshot, but say so.
		t.Log("run finished inside the timeout; resume path starts fresh")
	}

	// Resumed: same directory, no timeout.
	r2 := New(1)
	r2.CheckpointDir = dir
	r2.CheckpointEvery = 20_000
	rs, err := r2.RunAll([]Request{q})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0] != ref[0] {
		t.Fatalf("resumed result diverges from uninterrupted run:\n  ref:     %+v\n  resumed: %+v", ref[0], rs[0])
	}

	key := q.key()
	if _, err := os.Stat(filepath.Join(dir, keyName(key)+".snap")); !os.IsNotExist(err) {
		t.Error("snapshot not cleaned up after success")
	}
	if _, err := os.Stat(filepath.Join(dir, "results", keyName(key)+".json")); err != nil {
		t.Errorf("result not persisted: %v", err)
	}
}

// TestLoadPersisted: a fresh runner preloads persisted results and serves
// the whole sweep from cache without simulating anything.
func TestLoadPersisted(t *testing.T) {
	dir := t.TempDir()
	batch := func() []Request {
		a := staticReq("gzip", 4)
		b := staticReq("swim", 8)
		return []Request{a, b}
	}

	r1 := New(2)
	r1.CheckpointDir = dir
	first, err := r1.RunAll(batch())
	if err != nil {
		t.Fatal(err)
	}

	r2 := New(2)
	r2.CheckpointDir = dir
	n, err := r2.LoadPersisted()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loaded %d persisted results, want 2", n)
	}
	second, err := r2.RunAll(batch())
	if err != nil {
		t.Fatal(err)
	}
	st := r2.Stats()
	if st.Runs != 0 || st.CacheHits != 2 {
		t.Fatalf("resumed sweep re-simulated: %+v", st)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("persisted result %d diverges", i)
		}
	}

	// Torn files are skipped, not fatal.
	if err := os.WriteFile(filepath.Join(dir, "results", "0123456789abcdef.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	r3 := New(1)
	r3.CheckpointDir = dir
	if _, err := r3.LoadPersisted(); err != nil {
		t.Fatalf("torn file broke LoadPersisted: %v", err)
	}
}

// TestManifestRoundTrip: WriteManifest/ReadManifest preserve every field a
// post-mortem needs.
func TestManifestRoundTrip(t *testing.T) {
	q := staticReq("gzip", 4)
	q.Config.WatchdogCycles = 1
	_, err := New(1).RunAll([]Request{q, staticReq("swim", 4)})
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("want sweep error, got %v", err)
	}
	path := filepath.Join(t.TempDir(), "failures.json")
	if err := se.WriteManifest(path); err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Total != 2 || len(m.Failures) != 1 {
		t.Fatalf("manifest: %+v", m)
	}
	f := m.Failures[0]
	if f.Bench != "gzip" || f.Message == "" || f.Dump == "" || f.Key == "" {
		t.Fatalf("manifest entry incomplete: %+v", f)
	}
}
