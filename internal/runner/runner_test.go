package runner

import (
	"reflect"
	"sync/atomic"
	"testing"

	"clustersim/internal/core"
	"clustersim/internal/obs"
	"clustersim/internal/pipeline"
)

const testWindow = 20_000

func staticReq(bench string, active int) Request {
	cfg := pipeline.DefaultConfig()
	cfg.ActiveClusters = active
	return Request{ID: "t", Bench: bench, Seed: 1, Window: testWindow, Config: cfg}
}

// TestParallelMatchesSerial: the same batch on 1 worker and on 4 workers
// yields identical results in identical order.
func TestParallelMatchesSerial(t *testing.T) {
	batch := func() []Request {
		return []Request{
			staticReq("gzip", 4),
			staticReq("gzip", 16),
			staticReq("swim", 4),
			{ID: "t", Bench: "swim", Seed: 1, Window: testWindow,
				Config: pipeline.DefaultConfig(), Controller: core.NewExplore(core.ExploreConfig{})},
			staticReq("vpr", 16),
			staticReq("gzip", 4), // duplicate of [0]
		}
	}
	serial, err := New(1).RunAll(batch())
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(4).RunAll(batch())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("parallel results differ from serial:\nserial: %v\npar:    %v", serial, par)
	}
	if serial[0] != serial[5] {
		t.Fatal("duplicate requests returned different results")
	}
}

// TestCacheAndDedup: identical requests execute once per runner lifetime —
// deduped within a batch, cache-served across batches.
func TestCacheAndDedup(t *testing.T) {
	r := New(2)
	batch := []Request{staticReq("gzip", 4), staticReq("gzip", 4), staticReq("gzip", 16)}
	first, err := r.RunAll(batch)
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Runs != 2 || st.Deduped != 1 || st.CacheHits != 0 {
		t.Fatalf("after first batch: %+v", st)
	}
	second, err := r.RunAll([]Request{staticReq("gzip", 16), staticReq("gzip", 4)})
	if err != nil {
		t.Fatal(err)
	}
	st = r.Stats()
	if st.Runs != 2 || st.CacheHits != 2 {
		t.Fatalf("after second batch: %+v", st)
	}
	if second[0] != first[2] || second[1] != first[0] {
		t.Fatal("cache served wrong results")
	}

	r.DisableCache = true
	if _, err := r.RunAll([]Request{staticReq("gzip", 4)}); err != nil {
		t.Fatal(err)
	}
	if st = r.Stats(); st.Runs != 3 {
		t.Fatalf("DisableCache did not force execution: %+v", st)
	}
}

// TestKeyDiscriminates: differing configs, windows, seeds and policies must
// not collide.
func TestKeyDiscriminates(t *testing.T) {
	base := staticReq("gzip", 4)
	vary := []func(*Request){
		func(q *Request) { q.Bench = "swim" },
		func(q *Request) { q.Seed = 2 },
		func(q *Request) { q.Window = testWindow + 1 },
		func(q *Request) { q.Config.ActiveClusters = 8 },
		func(q *Request) { q.Config.HopLatency = 2 },
		func(q *Request) { q.Config.Cache = pipeline.DecentralizedCache },
		func(q *Request) { q.Controller = core.NewExplore(core.ExploreConfig{}) },
		func(q *Request) { q.PolicyKey = "variant" },
	}
	seen := map[uint64]int{base.key(): -1}
	for i, mutate := range vary {
		q := staticReq("gzip", 4)
		mutate(&q)
		k := q.key()
		if j, ok := seen[k]; ok {
			t.Fatalf("variation %d collides with %d", i, j)
		}
		seen[k] = i
	}
}

// TestErrorAggregation: a sweep with failing runs returns a *SweepError
// naming every failure while the healthy runs still produce results.
func TestErrorAggregation(t *testing.T) {
	bad := staticReq("no-such-bench", 4)
	badCfg := staticReq("gzip", 4)
	badCfg.Config.ROB = -1
	reqs := []Request{staticReq("gzip", 4), bad, badCfg}
	rs, err := New(2).RunAll(reqs)
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SweepError)
	if !ok {
		t.Fatalf("want *SweepError, got %T: %v", err, err)
	}
	if len(se.Failures) != 2 || se.Total != 3 {
		t.Fatalf("failures: %+v", se)
	}
	if rs[0].Instructions < testWindow {
		t.Fatal("healthy run missing its result")
	}
	for _, f := range se.Failures {
		if f.Bench == "" || f.Err == nil {
			t.Fatalf("incomplete failure record: %+v", f)
		}
	}
}

// TestObserverIsolationAndMerge exercises the worker pool with per-run obs
// registries attached (run under -race in CI): registries stay isolated per
// run, observed runs bypass the cache, and the aggregate snapshot is the
// sum of the per-run snapshots.
func TestObserverIsolationAndMerge(t *testing.T) {
	r := New(4)
	const runs = 6
	var posts atomic.Int64
	reqs := make([]Request, runs)
	observers := make([]*obs.Observer, runs)
	for i := range reqs {
		ob := &obs.Observer{Registry: obs.NewRegistry(), SamplePeriod: 1_000, Series: &obs.TimeSeries{}}
		observers[i] = ob
		q := staticReq([]string{"gzip", "swim", "vpr"}[i%3], 4+4*(i%2))
		q.Config.Observer = ob
		q.PostRun = func(pipeline.Result) { posts.Add(1) }
		reqs[i] = q
	}
	rs, err := r.RunAll(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if got := posts.Load(); got != runs {
		t.Fatalf("PostRun ran %d times, want %d (observed runs must never be cache-elided)", got, runs)
	}
	var wantInstr uint64
	for i, ob := range observers {
		snap := ob.Registry.Snapshot()
		if snap.Counters["pipeline.instructions"] != rs[i].Instructions {
			t.Fatalf("run %d: registry %d instructions, result %d",
				i, snap.Counters["pipeline.instructions"], rs[i].Instructions)
		}
		wantInstr += rs[i].Instructions
	}
	agg, n := r.AggregateSnapshot()
	if n != runs {
		t.Fatalf("aggregate folded %d runs, want %d", n, runs)
	}
	if agg.Counters["pipeline.instructions"] != wantInstr {
		t.Fatalf("aggregate instructions %d, want %d", agg.Counters["pipeline.instructions"], wantInstr)
	}
}

// TestEach: ordered error aggregation and full index coverage.
func TestEach(t *testing.T) {
	hit := make([]atomic.Int64, 10)
	if err := Each(4, len(hit), func(i int) error { hit[i].Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	for i := range hit {
		if hit[i].Load() != 1 {
			t.Fatalf("index %d ran %d times", i, hit[i].Load())
		}
	}
	err := Each(3, 4, func(i int) error {
		if i%2 == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected aggregated error")
	}
}

// namedChecker is a minimal pipeline.Checker with a validation-mode name.
type namedChecker struct{ mode string }

func (c *namedChecker) CheckCycle(*pipeline.MachineView) {}
func (c *namedChecker) Name() string                     { return c.mode }

// anonChecker is a Checker without a Name method (keyed by type).
type anonChecker struct{}

func (anonChecker) CheckCycle(*pipeline.MachineView) {}

// TestCheckerRequestsNeverCached: a request carrying a checker must execute
// even when an identical unchecked run is cached (and vice versa) — the
// checker is stateful and validation must actually observe the run.
func TestCheckerRequestsNeverCached(t *testing.T) {
	r := New(1)
	plain := staticReq("gzip", 4)
	if _, err := r.RunAll([]Request{plain}); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Runs; got != 1 {
		t.Fatalf("expected 1 run, got %d", got)
	}

	checked := staticReq("gzip", 4)
	chk := &namedChecker{mode: "m"}
	checked.Config.Checker = chk
	res, err := r.RunAll([]Request{checked})
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Runs != 2 {
		t.Fatalf("checked request served from cache: %+v", st)
	}
	if st.CacheHits != 0 || st.Deduped != 0 {
		t.Fatalf("checked request aliased a cached run: %+v", st)
	}
	if res[0].Instructions < testWindow {
		t.Fatalf("checked run incomplete: %+v", res[0])
	}

	// Nor is the checked run's result stored: a later identical checked
	// request executes again (its own checker must see its own run).
	again := staticReq("gzip", 4)
	again.Config.Checker = &namedChecker{mode: "m"}
	if _, err := r.RunAll([]Request{again}); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Runs; got != 3 {
		t.Fatalf("second checked request served from cache (runs=%d)", got)
	}
}

// TestKeyIncludesCheckerMode: the request fingerprint folds in the
// checker's validation mode (by Name, falling back to the Go type) and not
// its pointer identity.
func TestKeyIncludesCheckerMode(t *testing.T) {
	plain := staticReq("gzip", 4)
	a := staticReq("gzip", 4)
	a.Config.Checker = &namedChecker{mode: "invariants"}
	b := staticReq("gzip", 4)
	b.Config.Checker = &namedChecker{mode: "invariants-failfast"}
	c := staticReq("gzip", 4)
	c.Config.Checker = anonChecker{}

	if a.key() == plain.key() {
		t.Fatal("checked and unchecked requests share a key")
	}
	if a.key() == b.key() {
		t.Fatal("different validation modes share a key")
	}
	if a.key() == c.key() || b.key() == c.key() {
		t.Fatal("named and anonymous checkers share a key")
	}
	// Pointer-independent: two instances of the same mode share the key.
	a2 := staticReq("gzip", 4)
	a2.Config.Checker = &namedChecker{mode: "invariants"}
	if a.key() != a2.key() {
		t.Fatal("same validation mode produced different keys (pointer leaked into the hash)")
	}
}
