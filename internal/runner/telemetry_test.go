package runner

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"

	"clustersim/internal/obs"
	"clustersim/internal/telemetry"
)

// TestStatsConcurrentWithRunAll hammers Stats() from several goroutines
// while a batch runs. Under -race this proves the live gauges (inflight,
// queue depth, utilization) and the lifetime counters can be read during a
// sweep — the monitoring path a served /metrics endpoint uses.
func TestStatsConcurrentWithRunAll(t *testing.T) {
	r := New(4)
	r.Meter = telemetry.NewSweepMeter(obs.NewRegistry(), nil)

	reqs := make([]Request, 8)
	for i := range reqs {
		q := staticReq("gzip", 4)
		q.Seed = uint64(i + 1) // distinct seeds: no dedup, all execute
		q.Window = 5_000
		reqs[i] = q
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				s := r.Stats()
				if s.Inflight < 0 || s.QueueDepth < 0 {
					t.Error("negative live gauge")
					return
				}
				if s.Utilization < 0 || s.Utilization > 1 {
					t.Errorf("utilization %v out of [0,1]", s.Utilization)
					return
				}
			}
		}()
	}

	if _, err := r.RunAll(reqs); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()

	s := r.Stats()
	if s.Runs != len(reqs) {
		t.Fatalf("Runs = %d, want %d", s.Runs, len(reqs))
	}
	if s.Inflight != 0 || s.QueueDepth != 0 {
		t.Fatalf("pool did not settle: %+v", s)
	}
}

// TestMeterObservesSweep checks the meter's registry export and progress
// stream agree with the runner's own Stats across cache hits, dedup and
// executions.
func TestMeterObservesSweep(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	r := New(2)
	r.Meter = telemetry.NewSweepMeter(reg, telemetry.NewProgressWriter(&buf))

	// Batch 1: two distinct configs plus one in-batch duplicate.
	if _, err := r.RunAll([]Request{
		staticReq("gzip", 4), staticReq("gzip", 4), staticReq("gzip", 16),
	}); err != nil {
		t.Fatal(err)
	}
	// Batch 2: one cache hit.
	if _, err := r.RunAll([]Request{staticReq("gzip", 4)}); err != nil {
		t.Fatal(err)
	}

	st := r.Stats()
	if st.Runs != 2 || st.Deduped != 1 || st.CacheHits != 1 || st.Failures != 0 {
		t.Fatalf("stats = %+v", st)
	}

	c := reg.Snapshot().Counters
	if c["sweep.runs"] != 2 || c["sweep.deduped"] != 1 || c["sweep.cache_hits"] != 1 {
		t.Fatalf("registry counters disagree: runs=%d deduped=%d hits=%d",
			c["sweep.runs"], c["sweep.deduped"], c["sweep.cache_hits"])
	}
	if c["sweep.span.execute_ns"] == 0 {
		t.Error("no execute time attributed")
	}
	if r.Meter.SpanNanos(telemetry.SpanExecute) == 0 {
		t.Error("SpanNanos(execute) = 0")
	}

	// The progress stream saw both batches and every resolution kind.
	kinds := map[string]int{}
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		var ev telemetry.ProgressEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad progress line %q: %v", line, err)
		}
		kinds[ev.Event]++
	}
	if kinds["batch_start"] != 2 || kinds["batch_done"] != 2 || kinds["run_done"] != 2 {
		t.Fatalf("progress event kinds = %v", kinds)
	}
}

// TestTelemetryPreservesResults: attaching a meter and a shared phase timer
// (and running parallel) must not change a single bit of any simulation
// result — the instrumentation observes the simulator, never the
// simulation.
func TestTelemetryPreservesResults(t *testing.T) {
	batch := func(pt *telemetry.PhaseTimer) []Request {
		reqs := []Request{
			staticReq("gzip", 4),
			staticReq("swim", 16),
			staticReq("vpr", 4),
			staticReq("gzip", 4), // duplicate
		}
		for i := range reqs {
			reqs[i].Config.Phases = pt
		}
		return reqs
	}

	plain, err := New(1).RunAll(batch(nil))
	if err != nil {
		t.Fatal(err)
	}

	serial := New(1)
	serial.Meter = telemetry.NewSweepMeter(obs.NewRegistry(), nil)
	serialRes, err := serial.RunAll(batch(telemetry.NewPhaseTimer(16)))
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	pt := telemetry.NewPhaseTimer(16)
	par := New(4)
	par.Meter = telemetry.NewSweepMeter(obs.NewRegistry(), telemetry.NewProgressWriter(&buf))
	parRes, err := par.RunAll(batch(pt))
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain, serialRes) {
		t.Fatal("metered serial results differ from unmetered")
	}
	if !reflect.DeepEqual(plain, parRes) {
		t.Fatal("metered parallel results differ from unmetered")
	}
	if pt.Report().SampledCycles == 0 {
		t.Fatal("shared phase timer attributed nothing across the pool")
	}

	// Identical requests must keep identical cache keys with and without
	// the timer attached (dedup above already depends on this).
	with, without := batch(pt)[0], batch(nil)[0]
	if with.key() != without.key() {
		t.Fatal("Phases leaked into the run-cache key")
	}
}
