package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"clustersim/internal/pipeline"
)

// This file holds the runner's on-disk crash-safety artifacts. Everything is
// keyed by the request fingerprint rendered as 16 hex digits:
//
//	<CheckpointDir>/<key>.snap          in-flight processor snapshot
//	<CheckpointDir>/results/<key>.json  Result of a completed run
//	failure manifest (caller-chosen path, see SweepError.WriteManifest)
//
// Snapshots are written atomically (tmp + rename) so a crash mid-write leaves
// either the previous snapshot or a stray .tmp, never a torn file; a run
// deletes its snapshot on success. Persisted results outlive the process: a
// resumed sweep preloads them with LoadPersisted and skips those cells.

// keyName renders a request fingerprint as the fixed-width hex token used in
// file names and manifests.
func keyName(key uint64) string { return fmt.Sprintf("%016x", key) }

func (r *Runner) checkpointPath(key uint64) string {
	return filepath.Join(r.CheckpointDir, keyName(key)+".snap")
}

func (r *Runner) resultsDir() string {
	return filepath.Join(r.CheckpointDir, "results")
}

// saveCheckpointFile snapshots p atomically at path.
func saveCheckpointFile(p *pipeline.Processor, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err = p.SaveCheckpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err = f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// loadCheckpointFile restores p from the snapshot at path. A missing file is
// not an error (the run simply starts fresh); any read, format or identity
// failure is returned and may leave p half-restored — the caller must rebuild
// the processor before using it.
func loadCheckpointFile(p *pipeline.Processor, path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	return p.LoadCheckpoint(f)
}

// persistResult records a completed run's Result under the checkpoint
// directory. Best-effort: failures are swallowed (the run still succeeded,
// the sweep just loses resumability for this cell).
func (r *Runner) persistResult(key uint64, res pipeline.Result) {
	dir := r.resultsDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	data, err := json.Marshal(res)
	if err != nil {
		return
	}
	path := filepath.Join(dir, keyName(key)+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
	}
}

// LoadPersisted preloads the run cache with every Result persisted under
// CheckpointDir by an earlier process, returning how many were loaded. The
// fingerprint scheme is deterministic across processes, so a resumed sweep's
// requests hit these entries and re-execute only the missing cells.
// Unparseable files are skipped, not fatal: a torn write must not block a
// resume.
func (r *Runner) LoadPersisted() (int, error) {
	if r.CheckpointDir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(r.resultsDir())
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	loaded := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		hex := strings.TrimSuffix(name, ".json")
		key, perr := strconv.ParseUint(hex, 16, 64)
		if perr != nil || len(hex) != 16 {
			continue
		}
		data, rerr := os.ReadFile(filepath.Join(r.resultsDir(), name))
		if rerr != nil {
			continue
		}
		var res pipeline.Result
		if json.Unmarshal(data, &res) != nil {
			continue
		}
		r.store(key, res)
		loaded++
	}
	return loaded, nil
}

// Manifest is the JSON document describing a sweep's failures: how many runs
// the sweep had in total and one entry per failed run.
type Manifest struct {
	Total    int        `json:"total"`
	Failures []RunError `json:"failures"`
}

// WriteManifest serializes the sweep's failures to path as indented JSON,
// creating the parent directory if needed.
func (e *SweepError) WriteManifest(path string) error {
	data, err := json.MarshalIndent(Manifest{Total: e.Total, Failures: e.Failures}, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadManifest parses a failure manifest written by WriteManifest.
func ReadManifest(path string) (Manifest, error) {
	var m Manifest
	data, err := os.ReadFile(path)
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("runner: manifest %s: %w", path, err)
	}
	return m, nil
}
