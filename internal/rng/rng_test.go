package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 10000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %x vs %x", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical 64-bit outputs out of 1000", same)
	}
}

func TestReseed(t *testing.T) {
	r := New(7)
	first := make([]uint64, 64)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("reseeded stream diverged at %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 16, 1000} {
		for i := 0; i < 2000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %f too far from 0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(5)
	const n = 100000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.02 {
			t.Fatalf("Bool(%f) hit rate %f", p, got)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(9)
	for _, m := range []float64{1, 2, 10, 100} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(r.Geometric(m))
		}
		got := sum / n
		want := m
		if m <= 1 {
			want = 1
		}
		if math.Abs(got-want)/want > 0.1 {
			t.Fatalf("Geometric(%f) mean %f, want ~%f", m, got, want)
		}
	}
}

func TestGeometricAtLeastOne(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 50; i++ {
			if r.Geometric(3) < 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForkIndependence(t *testing.T) {
	r := New(13)
	f := r.Fork()
	// The fork must be deterministic given the parent state...
	r2 := New(13)
	f2 := r2.Fork()
	for i := 0; i < 100; i++ {
		if f.Uint64() != f2.Uint64() {
			t.Fatal("forked streams not reproducible")
		}
	}
	// ...and differ from the parent's continued stream.
	f3 := New(13).Fork()
	parent := New(13)
	parent.Uint64() // consume the fork draw
	diff := false
	for i := 0; i < 100; i++ {
		if f3.Uint64() != parent.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("fork mirrors parent stream")
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}
