// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// Reproducibility is a hard requirement for the experiment harness: the same
// seed must produce bit-identical instruction streams (and therefore
// bit-identical simulation results) on every platform and Go release. The
// standard library's math/rand keeps that promise only loosely across major
// versions, so the simulator carries its own generator: xoshiro256**, seeded
// through splitmix64, as published by Blackman and Vigna.
package rng

// Source is a deterministic xoshiro256** generator. The zero value is not a
// valid generator; obtain one with New. Source is not safe for concurrent
// use; each simulation owns its own Source.
type Source struct {
	s [4]uint64
}

// splitmix64 advances the seed expander. It is the recommended way to
// initialize xoshiro state from a single 64-bit seed.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds yield independent
// streams; the same seed always yields the same stream.
func New(seed uint64) *Source {
	var r Source
	r.Seed(seed)
	return &r
}

// Seed resets the generator to the state derived from seed.
func (r *Source) Seed(seed uint64) {
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state; splitmix64 of any
	// seed cannot produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		//simlint:allow nopanic mirrors the math/rand.Intn contract; a non-positive bound is a programming error, not a runtime condition
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's multiply-shift bounded generation (slightly biased for
	// enormous n; irrelevant at simulator scales).
	hi, _ := mul64(r.Uint64(), uint64(n))
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with mean m
// (m >= 1), i.e. the number of Bernoulli(1/m) trials up to and including the
// first success. Useful for generating run lengths.
func (r *Source) Geometric(m float64) int {
	if m <= 1 {
		return 1
	}
	p := 1 / m
	n := 1
	for !r.Bool(p) {
		n++
		if n > 1<<20 { // defensive bound; p > 0 so this is unreachable in practice
			break
		}
	}
	return n
}

// Fork returns a new Source whose stream is independent of r's future
// output. It is used to give each benchmark phase its own stream so that
// editing one phase's parameters does not perturb the others.
func (r *Source) Fork() *Source {
	return New(r.Uint64() ^ 0xa5a5a5a5deadbeef)
}

// State returns the generator's internal state, for checkpointing.
func (r *Source) State() [4]uint64 { return r.s }

// SetState restores a state previously returned by State. It rejects the
// all-zero state, which xoshiro cannot escape.
func (r *Source) SetState(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return errZeroState
	}
	r.s = s
	return nil
}

// errZeroState is returned by SetState for the invalid all-zero state.
var errZeroState = errorString("rng: all-zero state is not a valid xoshiro state")

// errorString is a dependency-free constant error type.
type errorString string

func (e errorString) Error() string { return string(e) }
