package trace

import (
	"bytes"
	"reflect"
	"testing"

	"clustersim/internal/workload"
)

// FuzzTraceRoundTrip feeds arbitrary bytes to the decoder: it must reject
// or accept without panicking, and anything it accepts must re-encode and
// re-decode to the identical trace (the codec is a bijection on its valid
// range).
func FuzzTraceRoundTrip(f *testing.F) {
	// Seed with real encodings so the fuzzer starts inside the valid
	// format rather than spending the budget on magic-string discovery.
	gen, err := workload.New("gzip", 1)
	if err != nil {
		f.Fatal(err)
	}
	for _, n := range []uint64{0, 1, 33} {
		var buf bytes.Buffer
		tr := Record(gen, n, Meta{Name: "gzip", SourceKind: SourceBench, SourceID: "gzip", Seed: 1})
		if err := Write(&buf, tr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte("CSIM-TRACE garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("re-encoding an accepted trace failed: %v", err)
		}
		tr2, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding a re-encoded trace failed: %v", err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatalf("round trip changed the trace:\n  first:  %+v\n  second: %+v", tr.Meta, tr2.Meta)
		}
		if tr.Fingerprint() != tr2.Fingerprint() {
			t.Fatalf("round trip changed the fingerprint")
		}
	})
}
