package trace

import (
	"fmt"

	"clustersim/internal/isa"
	"clustersim/internal/snap"
	"clustersim/internal/workload"
)

// DefaultHeadroom is the recommended margin of extra instructions to
// record beyond the simulated window. The front end fetches ahead of
// commit (bounded by the ROB, the fetch queue and in-flight wrong-path
// slots) and different policies fetch different amounts, so a trace that
// should serve a whole policy matrix needs slack past the largest window
// it will replay. 8192 comfortably exceeds any configuration's fetch-ahead
// (ROB 480 + fetch queue + redirect slop).
const DefaultHeadroom = 8192

// ExhaustedError reports a replay that ran off the end of its trace: the
// machine tried to fetch more instructions than were recorded. Recover by
// re-recording with more headroom (see DefaultHeadroom).
type ExhaustedError struct {
	// Name is the trace's generator name; Len its recorded length.
	Name string
	Len  int
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("trace: replay of %q exhausted its %d recorded instructions (re-record with more headroom)", e.Name, e.Len)
}

// Replayer replays a recorded stream as a workload.Generator. Multiple
// replayers may share one immutable *Trace (each keeps only a cursor), so
// a sweep replays a file loaded once. It implements snap.Stater: a
// checkpointed replay run resumes exactly like a live-generator run, with
// the trace fingerprint verified against the snapshot.
type Replayer struct {
	t   *Trace //simlint:nostate construction state: the resuming process re-reads the trace file, and LoadState verifies its fingerprint
	pos int
}

// Replayer returns a fresh cursor over the trace.
func (t *Trace) Replayer() *Replayer { return &Replayer{t: t} }

// Name returns the recorded generator name.
func (r *Replayer) Name() string { return r.t.Meta.Name }

// Remaining returns how many recorded instructions are left to replay.
func (r *Replayer) Remaining() int { return len(r.t.Instrs) - r.pos }

// Next fills in with the next recorded instruction. Running off the end of
// the recording panics with an *ExhaustedError: the Generator contract has
// no error path, and a short trace is a recording mistake, not a runtime
// condition — the runner's per-run recover turns it into a RunError.
func (r *Replayer) Next(in *isa.Instruction) {
	if r.pos >= len(r.t.Instrs) {
		//simlint:allow nopanic Generator.Next has no error path; a short trace is a recording error, surfaced via the runner's per-run recover
		panic(&ExhaustedError{Name: r.t.Meta.Name, Len: len(r.t.Instrs)})
	}
	*in = r.t.Instrs[r.pos]
	r.pos++
}

// Reset rewinds the replay to the first recorded instruction.
func (r *Replayer) Reset() { r.pos = 0 }

// SaveState writes the replay cursor plus the trace's identity, so a
// snapshot can never resume against a different recording.
func (r *Replayer) SaveState(w *snap.Writer) {
	w.Mark("trace-replay")
	w.U64(r.t.Fingerprint())
	w.Int(r.pos)
}

// LoadState restores the cursor after verifying the snapshot was taken
// over the same trace content.
func (r *Replayer) LoadState(rd *snap.Reader) {
	rd.Mark("trace-replay")
	fp := rd.U64()
	pos := rd.Int()
	if rd.Err() != nil {
		return
	}
	if want := r.t.Fingerprint(); fp != want {
		rd.Failf("trace: snapshot was taken over trace %016x, replaying %016x", fp, want)
		return
	}
	if pos < 0 || pos > len(r.t.Instrs) {
		rd.Failf("trace: snapshot cursor %d outside [0,%d]", pos, len(r.t.Instrs))
		return
	}
	r.pos = pos
}

// Recorder tees a live generator: the simulation consumes the stream as
// usual while every instruction is retained for a Trace. Use Extend
// afterward to bank headroom beyond what the run fetched, so one recording
// replays under policies that fetch further ahead.
type Recorder struct {
	gen workload.Generator
	buf []isa.Instruction
}

// NewRecorder wraps gen.
func NewRecorder(gen workload.Generator) *Recorder { return &Recorder{gen: gen} }

// Name returns the wrapped generator's name.
func (r *Recorder) Name() string { return r.gen.Name() }

// Next forwards to the wrapped generator and records the instruction.
func (r *Recorder) Next(in *isa.Instruction) {
	r.gen.Next(in)
	r.buf = append(r.buf, *in)
}

// Reset rewinds the wrapped generator and discards the recording.
func (r *Recorder) Reset() {
	r.gen.Reset()
	r.buf = r.buf[:0]
}

// Recorded returns how many instructions have been recorded so far.
func (r *Recorder) Recorded() int { return len(r.buf) }

// Extend drains n more instructions from the generator into the recording
// without handing them to a consumer.
func (r *Recorder) Extend(n uint64) {
	base := len(r.buf)
	r.buf = append(r.buf, make([]isa.Instruction, n)...)
	for i := base; i < len(r.buf); i++ {
		r.gen.Next(&r.buf[i])
	}
}

// Trace copies the recording into a Trace under the given identity.
func (r *Recorder) Trace(meta Meta) *Trace {
	return &Trace{Meta: meta, Instrs: append([]isa.Instruction(nil), r.buf...)}
}
