package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"clustersim/internal/isa"
	"clustersim/internal/snap"
	"clustersim/internal/workload"
)

// record builds a short real trace off a built-in generator.
func record(t *testing.T, n uint64) *Trace {
	t.Helper()
	gen, err := workload.New("gzip", 1)
	if err != nil {
		t.Fatal(err)
	}
	return Record(gen, n, Meta{Name: "gzip", SourceKind: SourceBench, SourceID: "gzip", Seed: 1})
}

func encode(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	tr := record(t, 512)
	data := encode(t, tr)
	got, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("round trip changed the trace")
	}
	if tr.Fingerprint() != got.Fingerprint() {
		t.Fatalf("fingerprint changed across round trip")
	}
	// Re-encoding is byte-stable.
	if !bytes.Equal(data, encode(t, got)) {
		t.Fatalf("re-encoding is not byte-identical")
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	tr := &Trace{Meta: Meta{Name: "empty", SourceKind: SourceCustom, SourceID: "empty"}}
	got, err := Read(bytes.NewReader(encode(t, tr)))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Meta != tr.Meta || len(got.Instrs) != 0 {
		t.Fatalf("empty trace round trip: %+v", got)
	}
}

// TestReadRejectsCorruption flips every byte of a valid encoding, one at a
// time, and demands a loud failure: between field validation, section
// marks and the content fingerprint, no single-byte corruption may load.
func TestReadRejectsCorruption(t *testing.T) {
	data := encode(t, record(t, 16))
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x41
		if _, err := Read(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flip at byte %d of %d loaded successfully", i, len(data))
		}
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	data := encode(t, record(t, 16))
	for _, cut := range []int{0, 1, 10, 18, 50, len(data) / 2, len(data) - 1} {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation to %d of %d bytes loaded successfully", cut, len(data))
		}
	}
}

func TestReadRejectsWrongMagicAndVersion(t *testing.T) {
	tr := record(t, 4)
	h := Header{Meta: tr.Meta, Count: uint64(len(tr.Instrs)), Fingerprint: tr.Fingerprint()}

	var buf bytes.Buffer
	w := snap.NewWriter(&buf)
	w.String("NOT-A-TRACE")
	w.U64(version)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: got %v", err)
	}

	buf.Reset()
	w = snap.NewWriter(&buf)
	w.String(magic)
	w.U64(version + 1)
	writeHeaderTail(w, h)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: got %v", err)
	}
}

// writeHeaderTail writes the header fields after magic+version, letting
// tests craft headers with a bad prefix.
func writeHeaderTail(w *snap.Writer, h Header) {
	w.String(h.Meta.Name)
	w.String(h.Meta.SourceKind)
	w.String(h.Meta.SourceID)
	w.U64(h.Meta.SourceFP)
	w.U64(h.Meta.Seed)
	w.U64(h.Count)
	w.U64(h.Fingerprint)
}

func TestReadRejectsHugeCount(t *testing.T) {
	var buf bytes.Buffer
	w := snap.NewWriter(&buf)
	writeHeader(w, Header{Meta: Meta{Name: "x"}, Count: maxCount + 1})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); err == nil || !strings.Contains(err.Error(), "count") {
		t.Fatalf("oversized count: got %v", err)
	}
}

func TestReadRejectsInvalidClass(t *testing.T) {
	tr := record(t, 2)
	tr.Instrs[1].Class = isa.NumClasses // out of range
	// Recompute the fingerprint so only the class check can object.
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); err == nil || !strings.Contains(err.Error(), "class") {
		t.Fatalf("invalid class: got %v", err)
	}
}

func TestReadRejectsFingerprintMismatch(t *testing.T) {
	tr := record(t, 8)
	var buf bytes.Buffer
	w := snap.NewWriter(&buf)
	writeHeader(w, Header{Meta: tr.Meta, Count: uint64(len(tr.Instrs)), Fingerprint: tr.Fingerprint() ^ 1})
	w.Mark("instr")
	for i := range tr.Instrs {
		for _, word := range packInstr(&tr.Instrs[i]) {
			w.U64(word)
		}
	}
	w.Mark("end")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("fingerprint mismatch: got %v", err)
	}
}

func TestMetaVerify(t *testing.T) {
	m := Meta{Name: "w", SourceKind: SourceSpec, SourceID: "w", SourceFP: 0xabc, Seed: 7}
	if err := m.Verify(SourceSpec, "w", 0xabc, 7); err != nil {
		t.Errorf("exact match rejected: %v", err)
	}
	if err := m.Verify("", "", 0, 7); err != nil {
		t.Errorf("wildcard expectations rejected: %v", err)
	}
	mismatches := []struct {
		name string
		err  error
	}{
		{"kind", m.Verify(SourceBench, "w", 0xabc, 7)},
		{"id", m.Verify(SourceSpec, "other", 0xabc, 7)},
		{"fp", m.Verify(SourceSpec, "w", 0xdef, 7)},
		{"seed", m.Verify(SourceSpec, "w", 0xabc, 8)},
	}
	for _, c := range mismatches {
		if c.err == nil {
			t.Errorf("mismatched %s accepted", c.name)
		}
	}
}

func TestFileRoundTripAndPeek(t *testing.T) {
	tr := record(t, 256)
	path := filepath.Join(t.TempDir(), "t.trace")
	if err := WriteFile(path, tr); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("file round trip changed the trace")
	}
	h, err := PeekHeader(path)
	if err != nil {
		t.Fatalf("PeekHeader: %v", err)
	}
	if h.Meta != tr.Meta || h.Count != uint64(len(tr.Instrs)) || h.Fingerprint != tr.Fingerprint() {
		t.Fatalf("peeked header %+v disagrees with trace", h)
	}
	// No temp file left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after WriteFile, want 1", len(entries))
	}
}

func TestReplayerMatchesLiveStream(t *testing.T) {
	const n = 2048
	tr := record(t, n)
	live, err := workload.New("gzip", 1)
	if err != nil {
		t.Fatal(err)
	}
	rp := tr.Replayer()
	if rp.Name() != "gzip" {
		t.Fatalf("replayer name %q", rp.Name())
	}
	var a, b isa.Instruction
	for i := 0; i < n; i++ {
		live.Next(&a)
		rp.Next(&b)
		if a != b {
			t.Fatalf("instruction %d: live %+v vs replay %+v", i, a, b)
		}
	}
	if rp.Remaining() != 0 {
		t.Fatalf("remaining %d after full drain", rp.Remaining())
	}
	rp.Reset()
	if rp.Remaining() != n {
		t.Fatalf("remaining %d after Reset, want %d", rp.Remaining(), n)
	}
}

func TestReplayerExhaustionPanics(t *testing.T) {
	tr := record(t, 2)
	rp := tr.Replayer()
	var in isa.Instruction
	rp.Next(&in)
	rp.Next(&in)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("Next past the end did not panic")
		}
		if _, ok := r.(*ExhaustedError); !ok {
			t.Fatalf("panicked with %T, want *ExhaustedError", r)
		}
	}()
	rp.Next(&in)
}

func TestReplayerSaveLoadState(t *testing.T) {
	const n = 64
	tr := record(t, n)
	rp := tr.Replayer()
	var in isa.Instruction
	for i := 0; i < 17; i++ {
		rp.Next(&in)
	}
	var buf bytes.Buffer
	w := snap.NewWriter(&buf)
	rp.SaveState(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	fresh := tr.Replayer()
	r := snap.NewReader(bytes.NewReader(buf.Bytes()))
	fresh.LoadState(r)
	if err := r.Err(); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if fresh.Remaining() != n-17 {
		t.Fatalf("restored cursor remaining %d, want %d", fresh.Remaining(), n-17)
	}
	var a, b isa.Instruction
	for i := 17; i < n; i++ {
		rp.Next(&a)
		fresh.Next(&b)
		if a != b {
			t.Fatalf("restored replay diverges at %d", i)
		}
	}

	// A snapshot from a different trace must be rejected by fingerprint.
	other := record(t, n+1)
	wrong := other.Replayer()
	r = snap.NewReader(bytes.NewReader(buf.Bytes()))
	wrong.LoadState(r)
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "trace") {
		t.Fatalf("cross-trace restore: got %v", err)
	}
}

func TestRecorderTee(t *testing.T) {
	gen, err := workload.New("swim", 3)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := workload.New("swim", 3)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(gen)
	if rec.Name() != "swim" {
		t.Fatalf("recorder name %q", rec.Name())
	}
	var a, b isa.Instruction
	for i := 0; i < 500; i++ {
		rec.Next(&a)
		ref.Next(&b)
		if a != b {
			t.Fatalf("tee changed the stream at %d", i)
		}
	}
	rec.Extend(100)
	if rec.Recorded() != 600 {
		t.Fatalf("recorded %d, want 600", rec.Recorded())
	}
	tr := rec.Trace(Meta{Name: "swim", SourceKind: SourceBench, SourceID: "swim", Seed: 3})
	if len(tr.Instrs) != 600 {
		t.Fatalf("trace holds %d instructions, want 600", len(tr.Instrs))
	}
	// The recording is the live stream: a fresh generator replays it.
	check, err := workload.New("swim", 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Instrs {
		check.Next(&b)
		if tr.Instrs[i] != b {
			t.Fatalf("recorded instruction %d differs from regeneration", i)
		}
	}
	// Trace returned a copy: further recording must not alias it.
	rec.Extend(1)
	if len(tr.Instrs) != 600 {
		t.Fatalf("Trace aliases the recorder buffer")
	}
	rec.Reset()
	if rec.Recorded() != 0 {
		t.Fatalf("Reset kept %d recorded instructions", rec.Recorded())
	}
}
