// Package isa defines the abstract instruction set consumed by the timing
// model.
//
// The simulator is trace-driven: it never interprets data values. An
// instruction therefore carries only the information the timing model needs —
// its operation class (which selects a functional unit and an execution
// latency), the dynamic distances to its producer instructions (which encode
// the data-dependence graph without a register renamer), its effective
// address if it touches memory, and its actual outcome/target if it is a
// control transfer. This mirrors what Simplescalar's timing core extracts
// from an Alpha AXP instruction after functional simulation.
package isa

import "fmt"

// Class identifies the operation class of an instruction. The class selects
// the functional-unit type and the execution latency.
type Class uint8

// Operation classes. Integer and floating-point classes issue to different
// halves of a cluster (each cluster is decomposed into an integer and a
// floating-point sub-cluster, per the paper's §3.1).
const (
	// IntALU is a single-cycle integer operation.
	IntALU Class = iota
	// IntMult is a pipelined integer multiply.
	IntMult
	// IntDiv is a long-latency integer divide.
	IntDiv
	// FPALU is a pipelined floating-point add/compare/convert.
	FPALU
	// FPMult is a pipelined floating-point multiply.
	FPMult
	// FPDiv is a long-latency floating-point divide.
	FPDiv
	// Load reads one word from memory. Address generation uses the
	// integer ALU; the memory access itself is timed by the cache model.
	Load
	// Store writes one word to memory at commit.
	Store
	// Branch is a conditional branch, executed on the integer ALU.
	Branch
	// Call is a subroutine call (treated as an always-taken branch; it is
	// a reconfiguration trigger for the fine-grained call/return scheme).
	Call
	// Return is a subroutine return (always-taken indirect branch).
	Return

	// NumClasses is the number of operation classes.
	NumClasses
)

var classNames = [NumClasses]string{
	"IntALU", "IntMult", "IntDiv", "FPALU", "FPMult", "FPDiv",
	"Load", "Store", "Branch", "Call", "Return",
}

// String returns the mnemonic name of the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// IsFP reports whether the class executes in the floating-point sub-cluster.
func (c Class) IsFP() bool { return c == FPALU || c == FPMult || c == FPDiv }

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool { return c == Load || c == Store }

// IsCtrl reports whether the class is a control transfer.
func (c Class) IsCtrl() bool { return c == Branch || c == Call || c == Return }

// execLatency holds per-class execution latencies in cycles. Loads and
// stores list only address generation; the memory system adds the rest.
// Values follow the Alpha 21264 functional-unit latencies the paper's
// Simplescalar configuration models.
var execLatency = [NumClasses]uint32{
	IntALU:  1,
	IntMult: 3,
	IntDiv:  12,
	FPALU:   2,
	FPMult:  4,
	FPDiv:   12,
	Load:    1, // address generation
	Store:   1, // address generation
	Branch:  1,
	Call:    1,
	Return:  1,
}

// Latency returns the execution latency in cycles for the class (for memory
// classes, the address-generation latency only).
func (c Class) Latency() uint32 { return execLatency[c] }

// Pipelined reports whether a functional unit executing this class can
// accept a new operation every cycle. Divides are unpipelined.
func (c Class) Pipelined() bool { return c != IntDiv && c != FPDiv }

// Instruction is one dynamic instruction on the committed path.
//
// Producer dependences are expressed as dynamic distances: SrcDist1 == k
// means the first source operand is produced by the instruction k positions
// earlier in program order (0 means "no register source" / value long since
// architected). Distances make renaming implicit: there are no WAW or WAR
// hazards, exactly as in a machine with sufficient rename registers.
type Instruction struct {
	// PC is the instruction's address. Static instructions (loop bodies)
	// reuse PCs, which is what lets branch, bank and reconfiguration
	// predictors learn.
	PC uint64

	// Class is the operation class.
	Class Class

	// SrcDist1 and SrcDist2 are dynamic producer distances; 0 means the
	// operand is not produced by a recent in-flight instruction.
	SrcDist1 uint32
	SrcDist2 uint32

	// HasDest reports whether the instruction writes a register result
	// (and therefore consumes a physical register in its cluster from
	// dispatch to commit).
	HasDest bool

	// Addr is the effective byte address for Load/Store classes.
	Addr uint64

	// Taken is the actual outcome for control-transfer classes.
	Taken bool

	// Target is the actual target address for taken control transfers.
	Target uint64

	// EndsBlock reports whether this instruction terminates a basic block
	// (every control transfer does; a block may also end by falling into
	// the next block's label). The front-end uses block boundaries to
	// limit fetch to two basic blocks per cycle.
	EndsBlock bool
}

// String renders a compact human-readable form for debugging.
func (in Instruction) String() string {
	switch {
	case in.Class.IsMem():
		return fmt.Sprintf("%#x %s addr=%#x d1=%d d2=%d", in.PC, in.Class, in.Addr, in.SrcDist1, in.SrcDist2)
	case in.Class.IsCtrl():
		return fmt.Sprintf("%#x %s taken=%t target=%#x", in.PC, in.Class, in.Taken, in.Target)
	default:
		return fmt.Sprintf("%#x %s d1=%d d2=%d", in.PC, in.Class, in.SrcDist1, in.SrcDist2)
	}
}
