package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClassPredicatesDisjoint(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		n := 0
		if c.IsFP() {
			n++
		}
		if c.IsMem() {
			n++
		}
		if c.IsCtrl() {
			n++
		}
		if n > 1 {
			t.Errorf("class %s matches %d predicates", c, n)
		}
	}
}

func TestClassPredicateMembership(t *testing.T) {
	cases := []struct {
		c             Class
		fp, mem, ctrl bool
	}{
		{IntALU, false, false, false},
		{IntMult, false, false, false},
		{IntDiv, false, false, false},
		{FPALU, true, false, false},
		{FPMult, true, false, false},
		{FPDiv, true, false, false},
		{Load, false, true, false},
		{Store, false, true, false},
		{Branch, false, false, true},
		{Call, false, false, true},
		{Return, false, false, true},
	}
	for _, tc := range cases {
		if tc.c.IsFP() != tc.fp || tc.c.IsMem() != tc.mem || tc.c.IsCtrl() != tc.ctrl {
			t.Errorf("%s: predicates (fp=%t mem=%t ctrl=%t) want (%t %t %t)",
				tc.c, tc.c.IsFP(), tc.c.IsMem(), tc.c.IsCtrl(), tc.fp, tc.mem, tc.ctrl)
		}
	}
}

func TestLatenciesPositive(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if c.Latency() == 0 {
			t.Errorf("class %s has zero latency", c)
		}
	}
}

func TestDividesUnpipelined(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		want := c != IntDiv && c != FPDiv
		if c.Pipelined() != want {
			t.Errorf("%s Pipelined() = %t, want %t", c, c.Pipelined(), want)
		}
	}
}

func TestClassString(t *testing.T) {
	if IntALU.String() != "IntALU" || FPDiv.String() != "FPDiv" {
		t.Fatal("class names wrong")
	}
	if got := Class(200).String(); !strings.Contains(got, "200") {
		t.Fatalf("out-of-range class string %q", got)
	}
}

func TestInstructionString(t *testing.T) {
	mem := Instruction{PC: 0x40, Class: Load, Addr: 0x1000, SrcDist1: 3}
	if s := mem.String(); !strings.Contains(s, "Load") || !strings.Contains(s, "0x1000") {
		t.Errorf("mem string %q", s)
	}
	br := Instruction{PC: 0x44, Class: Branch, Taken: true, Target: 0x80}
	if s := br.String(); !strings.Contains(s, "Branch") || !strings.Contains(s, "true") {
		t.Errorf("branch string %q", s)
	}
	alu := Instruction{PC: 0x48, Class: IntALU, SrcDist1: 1, SrcDist2: 2}
	if s := alu.String(); !strings.Contains(s, "IntALU") {
		t.Errorf("alu string %q", s)
	}
}

// Property: String never panics for arbitrary instructions.
func TestInstructionStringTotal(t *testing.T) {
	f := func(pc uint64, class uint8, d1, d2 uint32, addr uint64, taken bool) bool {
		in := Instruction{
			PC:       pc,
			Class:    Class(class % uint8(NumClasses)),
			SrcDist1: d1, SrcDist2: d2,
			Addr:  addr,
			Taken: taken,
		}
		return in.String() != ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
