package bpred

import "fmt"

// BankPredictor predicts which word-interleaved cache bank a memory
// instruction will access, following the two-level branch-predictor-like
// organization of Yoaz et al. that the paper adopts (1024 first-level
// history entries, 4096 second-level entries).
//
// Predictions are always made in terms of the maximum bank count (16). When
// fewer clusters (and therefore fewer banks) are active, callers mask the
// prediction down to the low-order bits — the property §5 of the paper uses
// to avoid flushing the predictor on reconfiguration.
type BankPredictor struct {
	l1Size   int      //simlint:nostate table geometry, rebuilt by the constructor
	l2Size   int      //simlint:nostate table geometry, rebuilt by the constructor
	maxBanks int      //simlint:nostate table geometry, rebuilt by the constructor
	hist     []uint32 // per-PC folded history of recent banks
	banks    []uint8  // second level: predicted bank
	conf     []uint8  // 2-bit confidence alongside each prediction
	stats    Stats
}

// BankConfig sizes a BankPredictor.
type BankConfig struct {
	// Level1Size is the number of history registers (power of two).
	Level1Size int
	// Level2Size is the number of prediction entries (power of two).
	Level2Size int
	// MaxBanks is the full-machine bank count predictions are made in
	// (power of two, at most 256).
	MaxBanks int
}

// DefaultBankConfig returns the paper's §5 configuration: a two-level bank
// predictor with 1024 first-level and 4096 second-level entries, predicting
// one of 16 banks.
func DefaultBankConfig() BankConfig {
	return BankConfig{Level1Size: 1024, Level2Size: 4096, MaxBanks: 16}
}

// NewBank returns a BankPredictor for the given configuration.
func NewBank(cfg BankConfig) (*BankPredictor, error) {
	for _, v := range []struct {
		name string
		val  int
	}{
		{"Level1Size", cfg.Level1Size},
		{"Level2Size", cfg.Level2Size},
		{"MaxBanks", cfg.MaxBanks},
	} {
		if v.val <= 0 || v.val&(v.val-1) != 0 {
			return nil, fmt.Errorf("bpred: bank %s must be a positive power of two, got %d", v.name, v.val)
		}
	}
	if cfg.MaxBanks > 256 {
		return nil, fmt.Errorf("bpred: MaxBanks %d exceeds 256", cfg.MaxBanks)
	}
	return &BankPredictor{
		l1Size:   cfg.Level1Size,
		l2Size:   cfg.Level2Size,
		maxBanks: cfg.MaxBanks,
		hist:     make([]uint32, cfg.Level1Size),
		banks:    make([]uint8, cfg.Level2Size),
		conf:     make([]uint8, cfg.Level2Size),
	}, nil
}

// MustNewBank is NewBank but panics on error.
func MustNewBank(cfg BankConfig) *BankPredictor {
	p, err := NewBank(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Reset clears predictor state and statistics.
func (p *BankPredictor) Reset() {
	for i := range p.hist {
		p.hist[i] = 0
	}
	for i := range p.banks {
		p.banks[i] = 0
		p.conf[i] = 0
	}
	p.stats = Stats{}
}

func (p *BankPredictor) index(pc uint64) (hi, l2 int) {
	hi = int((pc >> 2) & uint64(p.l1Size-1))
	h := p.hist[hi]
	l2 = int((uint64(h) ^ (pc >> 2)) & uint64(p.l2Size-1))
	return hi, l2
}

// Predict returns the predicted bank for the memory instruction at pc,
// masked to activeBanks (a power of two ≤ MaxBanks).
func (p *BankPredictor) Predict(pc uint64, activeBanks int) int {
	_, l2 := p.index(pc)
	return int(p.banks[l2]) & (activeBanks - 1)
}

// PredictConfident is Predict plus a confidence bit: steering uses the bank
// hint only when the entry's hysteresis counter is saturated, so memory
// operations with unpredictable banks (e.g. hash-table walks) fall back to
// operand-affinity steering instead of being flung at a wrong bank.
func (p *BankPredictor) PredictConfident(pc uint64, activeBanks int) (int, bool) {
	_, l2 := p.index(pc)
	return int(p.banks[l2]) & (activeBanks - 1), p.conf[l2] >= 3
}

// Update trains the predictor with the actual full-machine bank and counts
// whether the earlier masked prediction for activeBanks would have been
// correct. It returns true when the prediction was correct.
func (p *BankPredictor) Update(pc uint64, actualBank, activeBanks int) bool {
	hi, l2 := p.index(pc)
	pred := int(p.banks[l2]) & (activeBanks - 1)
	actual := actualBank & (activeBanks - 1)
	correct := pred == actual

	p.stats.Lookups++
	if !correct {
		p.stats.Mispredicts++
	}
	if int(p.banks[l2]) == actualBank {
		p.conf[l2] = bump(p.conf[l2], true)
	} else if p.conf[l2] > 0 {
		p.conf[l2] = bump(p.conf[l2], false)
	} else {
		p.banks[l2] = uint8(actualBank)
	}
	// Fold the observed bank into the per-PC history.
	p.hist[hi] = p.hist[hi]<<4 | uint32(actualBank&0xf)
	return correct
}

// Stats returns cumulative bank prediction statistics.
func (p *BankPredictor) Stats() Stats { return p.stats }
