// Package bpred implements the front-end predictors the simulated processor
// uses: the combining (bimodal + two-level) conditional branch predictor and
// branch target buffer from the paper's Table 1, a return-address stack, and
// the two-level bank predictor (after Yoaz et al.) that the decentralized
// cache model uses to steer memory operations at rename time.
package bpred

import "fmt"

// Config holds branch-predictor table sizes. The zero value is not valid;
// use DefaultConfig (the paper's Table 1 parameters).
type Config struct {
	// BimodalSize is the number of 2-bit counters in the bimodal table.
	BimodalSize int
	// Level1Size is the number of per-branch history registers.
	Level1Size int
	// HistoryBits is the length of each history register.
	HistoryBits int
	// Level2Size is the number of 2-bit counters indexed by history.
	Level2Size int
	// MetaSize is the number of 2-bit chooser counters.
	MetaSize int
	// BTBSets and BTBWays size the branch target buffer.
	BTBSets int
	BTBWays int
	// RASDepth is the return-address-stack depth.
	RASDepth int
}

// DefaultConfig returns the paper's Table 1 predictor configuration:
// combination of bimodal (2048) and 2-level (1024-entry level 1 with 10-bit
// history, 4096-entry level 2), a 2048-set 2-way BTB, plus an Alpha-style
// 32-entry return address stack.
func DefaultConfig() Config {
	return Config{
		BimodalSize: 2048,
		Level1Size:  1024,
		HistoryBits: 10,
		Level2Size:  4096,
		MetaSize:    4096,
		BTBSets:     2048,
		BTBWays:     2,
		RASDepth:    32,
	}
}

func (c Config) validate() error {
	for _, v := range []struct {
		name string
		val  int
	}{
		{"BimodalSize", c.BimodalSize},
		{"Level1Size", c.Level1Size},
		{"HistoryBits", c.HistoryBits},
		{"Level2Size", c.Level2Size},
		{"MetaSize", c.MetaSize},
		{"BTBSets", c.BTBSets},
		{"BTBWays", c.BTBWays},
		{"RASDepth", c.RASDepth},
	} {
		if v.val <= 0 {
			return fmt.Errorf("bpred: %s must be positive, got %d", v.name, v.val)
		}
	}
	for _, v := range []struct {
		name string
		val  int
	}{
		{"BimodalSize", c.BimodalSize},
		{"Level1Size", c.Level1Size},
		{"Level2Size", c.Level2Size},
		{"MetaSize", c.MetaSize},
		{"BTBSets", c.BTBSets},
	} {
		if v.val&(v.val-1) != 0 {
			return fmt.Errorf("bpred: %s must be a power of two, got %d", v.name, v.val)
		}
	}
	return nil
}

// counter is a 2-bit saturating counter helper.
func bump(c uint8, up bool) uint8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

// Predictor is the combining conditional-branch predictor with BTB and RAS.
// It is not safe for concurrent use.
type Predictor struct {
	cfg     Config //simlint:nostate configuration, rebuilt by the constructor
	bimodal []uint8
	hist    []uint16
	level2  []uint8
	meta    []uint8

	btbTags    []uint64
	btbTargets []uint64
	btbLRU     []uint8 // per-set round-robin pointer

	ras    []uint64
	rasTop int

	stats Stats
}

// Stats counts predictor outcomes.
type Stats struct {
	// Lookups is the number of control-transfer predictions made.
	Lookups uint64
	// Mispredicts counts direction or target mispredictions.
	Mispredicts uint64
}

// MispredictRate returns Mispredicts/Lookups, or 0 when no lookups occurred.
func (s Stats) MispredictRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Lookups)
}

// New returns a Predictor for the given configuration.
func New(cfg Config) (*Predictor, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &Predictor{
		cfg:        cfg,
		bimodal:    make([]uint8, cfg.BimodalSize),
		hist:       make([]uint16, cfg.Level1Size),
		level2:     make([]uint8, cfg.Level2Size),
		meta:       make([]uint8, cfg.MetaSize),
		btbTags:    make([]uint64, cfg.BTBSets*cfg.BTBWays),
		btbTargets: make([]uint64, cfg.BTBSets*cfg.BTBWays),
		btbLRU:     make([]uint8, cfg.BTBSets),
		ras:        make([]uint64, cfg.RASDepth),
	}
	// Weakly-taken initial state converges faster for loop branches.
	for i := range p.bimodal {
		p.bimodal[i] = 2
	}
	for i := range p.level2 {
		p.level2[i] = 2
	}
	for i := range p.meta {
		p.meta[i] = 2 // weakly prefer the two-level component
	}
	return p, nil
}

// MustNew is New but panics on configuration error; for tests and defaults.
func MustNew(cfg Config) *Predictor {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Reset clears all predictor state and statistics.
func (p *Predictor) Reset() {
	np := MustNew(p.cfg)
	*p = *np
}

// pcIndex folds a PC into a table index (instructions are 4-byte aligned).
func pcIndex(pc uint64, size int) int {
	return int((pc >> 2) & uint64(size-1))
}

// PredictBranch predicts the direction and target of a conditional branch at
// pc and updates all tables with the actual outcome. It returns whether the
// front-end mispredicted (wrong direction, or taken with a BTB target miss).
//
// Trace-driven note: prediction and update happen together because the
// simulator only sees committed-path instructions; speculative-history
// repair is therefore unnecessary.
func (p *Predictor) PredictBranch(pc uint64, taken bool, target uint64) bool {
	p.stats.Lookups++

	bi := pcIndex(pc, p.cfg.BimodalSize)
	hi := pcIndex(pc, p.cfg.Level1Size)
	history := p.hist[hi] & uint16(1<<p.cfg.HistoryBits-1)
	l2 := int(uint64(history)^(pc>>2)) & (p.cfg.Level2Size - 1)
	mi := pcIndex(pc, p.cfg.MetaSize)

	bimodalPred := p.bimodal[bi] >= 2
	twoLevelPred := p.level2[l2] >= 2
	useTwoLevel := p.meta[mi] >= 2
	pred := bimodalPred
	if useTwoLevel {
		pred = twoLevelPred
	}

	mispredict := pred != taken
	if pred && taken {
		// Correct taken prediction still needs the target from the BTB.
		if t, ok := p.btbLookup(pc); !ok || t != target {
			mispredict = true
		}
	}

	// Update component tables with the actual outcome.
	p.bimodal[bi] = bump(p.bimodal[bi], taken)
	p.level2[l2] = bump(p.level2[l2], taken)
	if bimodalPred != twoLevelPred {
		p.meta[mi] = bump(p.meta[mi], twoLevelPred == taken)
	}
	p.hist[hi] = history<<1 | b2u(taken)
	if taken {
		p.btbInsert(pc, target)
	}
	if mispredict {
		p.stats.Mispredicts++
	}
	return mispredict
}

// PredictCall treats a call at pc as always taken, pushes the fall-through
// address on the RAS, and reports whether the target missed in the BTB.
func (p *Predictor) PredictCall(pc uint64, target uint64) bool {
	p.stats.Lookups++
	p.rasPush(pc + 4)
	t, ok := p.btbLookup(pc)
	p.btbInsert(pc, target)
	if !ok || t != target {
		p.stats.Mispredicts++
		return true
	}
	return false
}

// PredictReturn pops the RAS and reports whether the predicted return
// address mismatches the actual target.
func (p *Predictor) PredictReturn(target uint64) bool {
	p.stats.Lookups++
	pred, ok := p.rasPop()
	if !ok || pred != target {
		p.stats.Mispredicts++
		return true
	}
	return false
}

// Stats returns cumulative prediction statistics.
func (p *Predictor) Stats() Stats { return p.stats }

func (p *Predictor) btbLookup(pc uint64) (uint64, bool) {
	set := pcIndex(pc, p.cfg.BTBSets)
	base := set * p.cfg.BTBWays
	tag := pc >> 2
	for w := 0; w < p.cfg.BTBWays; w++ {
		if p.btbTags[base+w] == tag {
			return p.btbTargets[base+w], true
		}
	}
	return 0, false
}

func (p *Predictor) btbInsert(pc, target uint64) {
	set := pcIndex(pc, p.cfg.BTBSets)
	base := set * p.cfg.BTBWays
	tag := pc >> 2
	for w := 0; w < p.cfg.BTBWays; w++ {
		if p.btbTags[base+w] == tag {
			p.btbTargets[base+w] = target
			return
		}
	}
	victim := int(p.btbLRU[set]) % p.cfg.BTBWays
	p.btbLRU[set]++
	p.btbTags[base+victim] = tag
	p.btbTargets[base+victim] = target
}

func (p *Predictor) rasPush(addr uint64) {
	p.ras[p.rasTop] = addr
	p.rasTop = (p.rasTop + 1) % len(p.ras)
}

func (p *Predictor) rasPop() (uint64, bool) {
	p.rasTop = (p.rasTop - 1 + len(p.ras)) % len(p.ras)
	addr := p.ras[p.rasTop]
	return addr, addr != 0
}

func b2u(b bool) uint16 {
	if b {
		return 1
	}
	return 0
}
