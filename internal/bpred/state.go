package bpred

import "clustersim/internal/snap"

// Checkpoint support. Table geometry is configuration and is rebuilt by the
// constructors; snapshots carry only counters, histories, BTB contents, the
// return-address stack, and statistics.

// SaveState implements snap.Stater.
func (p *Predictor) SaveState(w *snap.Writer) {
	w.Mark("bpred")
	w.U8s(p.bimodal)
	w.U16s(p.hist)
	w.U8s(p.level2)
	w.U8s(p.meta)
	w.U64s(p.btbTags)
	w.U64s(p.btbTargets)
	w.U8s(p.btbLRU)
	w.U64s(p.ras)
	w.Int(p.rasTop)
	w.U64(p.stats.Lookups)
	w.U64(p.stats.Mispredicts)
}

// LoadState implements snap.Stater.
func (p *Predictor) LoadState(r *snap.Reader) {
	r.Mark("bpred")
	loadU8s(r, p.bimodal, "bimodal table")
	loadU16s(r, p.hist, "branch history table")
	loadU8s(r, p.level2, "level-2 table")
	loadU8s(r, p.meta, "meta table")
	r.FixedU64s(p.btbTags, "btb tags")
	r.FixedU64s(p.btbTargets, "btb targets")
	loadU8s(r, p.btbLRU, "btb lru")
	r.FixedU64s(p.ras, "return-address stack")
	top := r.Int()
	if r.Err() != nil {
		return
	}
	if top < 0 || top >= len(p.ras) {
		r.Failf("bpred: snapshot rasTop %d out of range [0,%d)", top, len(p.ras))
		return
	}
	p.rasTop = top
	p.stats.Lookups = r.U64()
	p.stats.Mispredicts = r.U64()
}

// SaveState implements snap.Stater.
func (p *BankPredictor) SaveState(w *snap.Writer) {
	w.Mark("bankpred")
	w.U32s(p.hist)
	w.U8s(p.banks)
	w.U8s(p.conf)
	w.U64(p.stats.Lookups)
	w.U64(p.stats.Mispredicts)
}

// LoadState implements snap.Stater.
func (p *BankPredictor) LoadState(r *snap.Reader) {
	r.Mark("bankpred")
	loadU32s(r, p.hist, "bank history table")
	loadU8s(r, p.banks, "bank prediction table")
	loadU8s(r, p.conf, "bank confidence table")
	p.stats.Lookups = r.U64()
	p.stats.Mispredicts = r.U64()
}

func loadU8s(r *snap.Reader, dst []uint8, what string) {
	s := r.U8s()
	if r.Err() != nil {
		return
	}
	if len(s) != len(dst) {
		r.Failf("bpred: %s has %d entries, snapshot holds %d", what, len(dst), len(s))
		return
	}
	copy(dst, s)
}

func loadU16s(r *snap.Reader, dst []uint16, what string) {
	s := r.U16s()
	if r.Err() != nil {
		return
	}
	if len(s) != len(dst) {
		r.Failf("bpred: %s has %d entries, snapshot holds %d", what, len(dst), len(s))
		return
	}
	copy(dst, s)
}

func loadU32s(r *snap.Reader, dst []uint32, what string) {
	s := r.U32s()
	if r.Err() != nil {
		return
	}
	if len(s) != len(dst) {
		r.Failf("bpred: %s has %d entries, snapshot holds %d", what, len(dst), len(s))
		return
	}
	copy(dst, s)
}

var (
	_ snap.Stater = (*Predictor)(nil)
	_ snap.Stater = (*BankPredictor)(nil)
)
