package bpred

import (
	"testing"
	"testing/quick"

	"clustersim/internal/rng"
)

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if _, err := New(good); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := good
	bad.BimodalSize = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero BimodalSize accepted")
	}
	bad = good
	bad.Level2Size = 1000 // not a power of two
	if _, err := New(bad); err == nil {
		t.Fatal("non-power-of-two Level2Size accepted")
	}
}

func TestAlwaysTakenLearned(t *testing.T) {
	p := MustNew(DefaultConfig())
	const pc, target = 0x1000, 0x2000
	miss := 0
	for i := 0; i < 1000; i++ {
		if p.PredictBranch(pc, true, target) {
			miss++
		}
	}
	if miss > 3 {
		t.Fatalf("always-taken branch mispredicted %d/1000 times", miss)
	}
}

func TestLoopPatternLearned(t *testing.T) {
	// taken 9 times, not-taken once: the two-level component should
	// learn the whole pattern, giving near-zero steady-state mispredicts.
	p := MustNew(DefaultConfig())
	const pc, target = 0x4000, 0x4100
	warm := 0
	for rep := 0; rep < 50; rep++ {
		for i := 0; i < 10; i++ {
			taken := i != 9
			if p.PredictBranch(pc, taken, target) && rep >= 25 {
				warm++
			}
		}
	}
	if warm > 10 {
		t.Fatalf("10-iteration loop branch mispredicted %d times in steady state", warm)
	}
}

func TestRandomBranchMispredictsOften(t *testing.T) {
	p := MustNew(DefaultConfig())
	r := rng.New(1)
	const pc, target = 0x8000, 0x9000
	miss := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if p.PredictBranch(pc, r.Bool(0.5), target) {
			miss++
		}
	}
	rate := float64(miss) / n
	if rate < 0.3 || rate > 0.7 {
		t.Fatalf("random branch mispredict rate %f, want ~0.5", rate)
	}
}

func TestBTBTargetChangeDetected(t *testing.T) {
	p := MustNew(DefaultConfig())
	const pc = 0x100
	// Train taken to target A, then switch to target B: the switch must
	// register as a mispredict even though the direction is right.
	for i := 0; i < 100; i++ {
		p.PredictBranch(pc, true, 0xA00)
	}
	if !p.PredictBranch(pc, true, 0xB00) {
		t.Fatal("target change not flagged as mispredict")
	}
	// After update, the new target should predict correctly.
	if p.PredictBranch(pc, true, 0xB00) {
		t.Fatal("new target not learned")
	}
}

func TestCallReturnRAS(t *testing.T) {
	p := MustNew(DefaultConfig())
	// Call from pc=0x100 to 0x1000: first call misses BTB; thereafter hits.
	p.PredictCall(0x100, 0x1000)
	if p.PredictCall(0x100, 0x1000) {
		t.Fatal("second identical call mispredicted")
	}
	// Matching return should be predicted by the RAS.
	if p.PredictReturn(0x104) {
		t.Fatal("matched return mispredicted")
	}
	// Nested calls return in LIFO order.
	p.PredictCall(0x200, 0x2000)
	p.PredictCall(0x300, 0x3000)
	if p.PredictReturn(0x304) {
		t.Fatal("inner return mispredicted")
	}
	if p.PredictReturn(0x204) {
		t.Fatal("outer return mispredicted")
	}
	// Mismatched return must mispredict.
	p.PredictCall(0x400, 0x4000)
	if !p.PredictReturn(0xdead) {
		t.Fatal("wrong return address not flagged")
	}
}

func TestStatsAndReset(t *testing.T) {
	p := MustNew(DefaultConfig())
	for i := 0; i < 10; i++ {
		p.PredictBranch(0x10, true, 0x20)
	}
	s := p.Stats()
	if s.Lookups != 10 {
		t.Fatalf("lookups %d", s.Lookups)
	}
	if s.MispredictRate() < 0 || s.MispredictRate() > 1 {
		t.Fatalf("rate %f", s.MispredictRate())
	}
	p.Reset()
	if p.Stats().Lookups != 0 {
		t.Fatal("reset did not clear stats")
	}
	if (Stats{}).MispredictRate() != 0 {
		t.Fatal("empty rate not 0")
	}
}

func TestPredictorDeterminism(t *testing.T) {
	run := func() []bool {
		p := MustNew(DefaultConfig())
		r := rng.New(99)
		out := make([]bool, 0, 500)
		for i := 0; i < 500; i++ {
			pc := uint64(r.Intn(64)) * 4
			out = append(out, p.PredictBranch(pc, r.Bool(0.7), pc+64))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

// Property: bump stays within [0,3].
func TestBumpSaturates(t *testing.T) {
	f := func(c uint8, up bool) bool {
		v := bump(c%4, up)
		return v <= 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if bump(3, true) != 3 || bump(0, false) != 0 {
		t.Fatal("saturation wrong")
	}
}

func TestBankConfigValidation(t *testing.T) {
	if _, err := NewBank(DefaultBankConfig()); err != nil {
		t.Fatalf("default bank config rejected: %v", err)
	}
	bad := DefaultBankConfig()
	bad.MaxBanks = 3
	if _, err := NewBank(bad); err == nil {
		t.Fatal("non-power-of-two MaxBanks accepted")
	}
	bad = DefaultBankConfig()
	bad.MaxBanks = 512
	if _, err := NewBank(bad); err == nil {
		t.Fatal("oversized MaxBanks accepted")
	}
}

func TestBankStablePatternLearned(t *testing.T) {
	p := MustNewBank(DefaultBankConfig())
	const pc = 0x500
	// A load that always hits bank 5.
	for i := 0; i < 50; i++ {
		p.Update(pc, 5, 16)
	}
	if got := p.Predict(pc, 16); got != 5 {
		t.Fatalf("predicted bank %d, want 5", got)
	}
	// Masked down to 4 active banks the low bits must survive (§5).
	if got := p.Predict(pc, 4); got != 5&3 {
		t.Fatalf("masked prediction %d, want %d", got, 5&3)
	}
}

func TestBankMaskingOnUpdate(t *testing.T) {
	p := MustNewBank(DefaultBankConfig())
	const pc = 0x600
	for i := 0; i < 50; i++ {
		p.Update(pc, 6, 16)
	}
	// With 4 banks active, bank 6 aliases to bank 2: prediction 6&3 == 2
	// must be counted correct.
	if !p.Update(pc, 6, 4) {
		t.Fatal("masked-correct prediction counted wrong")
	}
}

func TestBankPredictionInRange(t *testing.T) {
	f := func(pc uint64, bank uint8, activeLog uint8) bool {
		p := MustNewBank(DefaultBankConfig())
		active := 1 << (activeLog % 5) // 1..16
		p.Update(pc, int(bank%16), active)
		got := p.Predict(pc, active)
		return got >= 0 && got < active
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBankStrideLearnedThroughHistory(t *testing.T) {
	// A strided access rotating over all banks is exactly the pattern the
	// two-level organization exists to capture: the bank history selects
	// a distinct second-level entry per position in the rotation.
	p := MustNewBank(DefaultBankConfig())
	const pc = 0x700
	wrong := 0
	for i := 0; i < 1000; i++ {
		if !p.Update(pc, i%16, 16) && i > 200 {
			wrong++
		}
	}
	if wrong > 40 {
		t.Fatalf("rotating banks mispredicted %d times in steady state", wrong)
	}
}

func TestBankRandomUnpredictable(t *testing.T) {
	p := MustNewBank(DefaultBankConfig())
	r := rng.New(4)
	const pc = 0x710
	wrong := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if !p.Update(pc, r.Intn(16), 16) {
			wrong++
		}
	}
	if rate := float64(wrong) / n; rate < 0.5 {
		t.Fatalf("random banks mispredict rate %f, want high", rate)
	}
}

func TestBankReset(t *testing.T) {
	p := MustNewBank(DefaultBankConfig())
	p.Update(0x10, 7, 16)
	p.Reset()
	if p.Stats().Lookups != 0 {
		t.Fatal("reset did not clear stats")
	}
	if p.Predict(0x10, 16) != 0 {
		t.Fatal("reset did not clear tables")
	}
}
