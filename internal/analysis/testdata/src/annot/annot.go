// Package annot exercises the //simlint: annotation machinery through a
// toy analyzer that reports every function declaration.
package annot

func plain() {}

func allowed() {} //simlint:allow toy covered by the integration harness

//simlint:allow toy a standalone comment also covers the next line
func standalone() {}

func wrongRule() {} //simlint:allow otherpass a different rule must not suppress

//simlint:allow
func malformed() {}
