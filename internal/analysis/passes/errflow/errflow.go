// Package errflow forbids silently dropped errors at the call sites where
// the simulator loses data when one is dropped: Run (a simulation that
// failed but whose absence of a Result goes unnoticed), Save*/Load* (the
// persisted cache and snapshot codecs — a short write here IS the
// corruption PR 4's recovery machinery exists to catch) and Write* (the
// underlying stream operations). A discarded error from any of these turns
// a detectable failure into wrong published numbers.
//
// A call site is checked when the callee's name is Run or starts with
// Save, Load or Write, and its final result is an error. It is reported
// when that error does not reach a named variable: the call stands alone
// as a statement, runs behind go or defer, or assigns the error position
// to the blank identifier.
//
// Writers that structurally cannot fail are exempt by type, not by
// annotation: methods on bytes.Buffer, strings.Builder and the hash
// interfaces document that they never return a non-nil error, and forcing
// `_, _ =` noise there would teach readers to ignore the pass. Everything
// else opts out per line with //simlint:allow errflow <reason>.
package errflow

import (
	"go/ast"
	"go/types"
	"strings"

	"clustersim/internal/analysis"
)

// Analyzer is the errflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "errflow",
	Doc: "errors returned by Run, Save*, Load* and Write* call sites " +
		"must not be discarded",
	Run: run,
}

// checkedName reports whether a callee name is in the audited family.
func checkedName(name string) bool {
	return name == "Run" ||
		strings.HasPrefix(name, "Save") ||
		strings.HasPrefix(name, "Load") ||
		strings.HasPrefix(name, "Write")
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscard(pass, call, "discarded")
				}
			case *ast.GoStmt:
				checkDiscard(pass, n.Call, "discarded by go statement")
			case *ast.DeferStmt:
				checkDiscard(pass, n.Call, "discarded by defer")
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkDiscard handles a call whose results are all dropped.
func checkDiscard(pass *analysis.Pass, call *ast.CallExpr, how string) {
	name, ok := auditedCall(pass, call)
	if !ok {
		return
	}
	pass.Reportf(call.Pos(),
		"error returned by %s is %s; handle it or annotate "+
			"//simlint:allow errflow <reason>", name, how)
}

// checkAssign reports an audited call whose error position lands in the
// blank identifier.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := auditedCall(pass, call)
	if !ok {
		return
	}
	// The error is the final result, so it lands in the final LHS.
	last, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
	if !ok || last.Name != "_" {
		return
	}
	pass.Reportf(call.Pos(),
		"error returned by %s is assigned to _; handle it or annotate "+
			"//simlint:allow errflow <reason>", name)
}

// auditedCall reports whether call targets an audited function whose last
// result is an error, and returns a human-readable callee name.
func auditedCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	var recvExpr ast.Expr
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
		recvExpr = fun.X
	default:
		return "", false
	}
	if !checkedName(id.Name) {
		return "", false
	}
	obj, ok := pass.Info.Uses[id].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	res := sig.Results()
	if res.Len() == 0 || !isError(res.At(res.Len()-1).Type()) {
		return "", false
	}
	if recvExpr != nil && neverFails(pass.TypeOf(recvExpr)) {
		return "", false
	}
	return obj.Name(), true
}

func isError(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// neverFails exempts method families documented to always return a nil
// error, judged by the static type of the receiver expression at the call
// site: bytes.Buffer, strings.Builder, and the hash package interfaces.
func neverFails(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (path == "bytes" && name == "Buffer") ||
		(path == "strings" && name == "Builder") ||
		path == "hash"
}
