// Package errs is the errflow fixture corpus.
package errs

import (
	"bytes"
	"hash/fnv"
	"strings"
)

type sim struct{}

func (s *sim) Run() error                  { return nil }
func (s *sim) SaveState(path string) error { return nil }
func (s *sim) Render() error               { return nil }

type sink struct{}

func (k *sink) Write(p []byte) (int, error) { return len(p), nil }

func LoadAll(dir string) ([]int, error) { return nil, nil }

func use() {
	s := &sim{}
	k := &sink{}

	s.Run() // want `error returned by Run is discarded`

	if err := s.Run(); err != nil { // handled: no report
		_ = err
	}

	s.SaveState("x") // want `error returned by SaveState is discarded`

	go s.Run()    // want `error returned by Run is discarded by go statement`
	defer s.Run() // want `error returned by Run is discarded by defer`

	_, _ = LoadAll(".") // want `error returned by LoadAll is assigned to _`

	got, _ := LoadAll(".") // want `error returned by LoadAll is assigned to _`
	_ = got

	k.Write(nil) // want `error returned by Write is discarded`

	n, _ := k.Write(nil) // want `error returned by Write is assigned to _`
	_ = n

	s.Run() //simlint:allow errflow smoke path, failure surfaces via the exit code

	s.Render() // not an audited name: no report

	// Never-fail writers are exempt by type.
	var b bytes.Buffer
	b.Write(nil)
	b.WriteString("x")
	var sb strings.Builder
	sb.WriteString("x")
	h := fnv.New64a()
	h.Write(nil)
}
