package errflow_test

import (
	"testing"

	"clustersim/internal/analysis/analysistest"
	"clustersim/internal/analysis/passes/errflow"
)

func TestErrFlow(t *testing.T) {
	analysistest.Run(t, "testdata", errflow.Analyzer, "errs")
}
