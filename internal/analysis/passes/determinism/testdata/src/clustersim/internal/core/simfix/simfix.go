// Package simfix is the determinism fixture: it lives under a simulated
// clustersim/internal path so the pass treats it as simulation code.
package simfix

import (
	"math/rand" // want `import of math/rand is nondeterministic across processes and Go releases`
	"sort"
	"time"
)

type machine struct {
	events map[uint64]int
	order  []uint64
	ipc    map[int]float64
}

func wallClock() int64 {
	return time.Now().UnixNano() // want `time.Now reads the wall clock and breaks run determinism`
}

func elapsed(since time.Time) time.Duration {
	return time.Since(since) // want `time.Since reads the wall clock and breaks run determinism`
}

func globalRand() int {
	return rand.Int()
}

func (m *machine) leakOrder(out []int) []int {
	for _, v := range m.events { // want `iterating a map is order-nondeterministic`
		out = append(out, v)
	}
	return out
}

func (m *machine) floatAccum() float64 {
	var sum float64
	for _, v := range m.ipc { // want `iterating a map is order-nondeterministic`
		sum += v // want `floating-point accumulation over map iteration is order-dependent`
	}
	return sum
}

// collectSorted is the sanctioned key-collection idiom: no diagnostic.
func (m *machine) collectSorted() []uint64 {
	keys := make([]uint64, 0, len(m.events))
	for k := range m.events {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// collectUnsorted never sorts what it gathered, so order escapes.
func (m *machine) collectUnsorted() []uint64 {
	var keys []uint64
	for k := range m.events { // want `iterating a map is order-nondeterministic`
		keys = append(keys, k)
	}
	return keys
}

// collectValues appends the value, which the sort of keys cannot launder.
func (m *machine) collectValues() []int {
	var vals []int
	keys := make([]uint64, 0)
	for k, v := range m.events { // want `iterating a map is order-nondeterministic`
		keys = append(keys, k)
		vals = append(vals, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return vals
}

// gc deletes expired entries from the map it ranges; the runtime allows
// this and the surviving set is order-independent: no diagnostic.
func (m *machine) gc(now uint64) {
	for k, v := range m.events {
		if uint64(v) <= now {
			delete(m.events, k)
		}
	}
}

// argMax is order-independent but beyond the safe-pattern recognizers; the
// allow annotation with a reason silences it.
func (m *machine) argMax() uint64 {
	var best uint64
	bestN := -1
	//simlint:allow determinism arg-max with a total tie-break is iteration-order independent
	for k, v := range m.events {
		if v > bestN || (v == bestN && k > best) {
			best, bestN = k, v
		}
	}
	return best
}
