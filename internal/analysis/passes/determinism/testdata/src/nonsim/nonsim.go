// Package nonsim is outside the simulation-package list: the determinism
// rules do not apply, so none of these produce diagnostics.
package nonsim

import (
	"math/rand"
	"time"
)

func wallClock() int64 { return time.Now().UnixNano() }

func anyOrder(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total + rand.Int()
}
