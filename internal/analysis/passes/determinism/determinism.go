// Package determinism forbids the nondeterminism sources that would break
// the simulator's bit-reproducibility contract (seed determinism oracles,
// resume equivalence, the content-addressed run cache) inside simulation
// packages:
//
//   - wall-clock reads (time.Now, time.Since, time.Until);
//   - the global math/rand generators (internal/rng is the only sanctioned
//     randomness source — it is seedable, snapshotable, and stable across
//     Go releases);
//   - ranging over a map, whose iteration order is deliberately randomized
//     by the runtime;
//   - floating-point accumulation inside a map range, which is order-
//     dependent even when the loop's final contents are not.
//
// Two map-range shapes are recognized as safe and not reported: a loop
// whose only effect is deleting from the very map being ranged (the
// runtime guarantees this is sound, and the surviving set is order-
// independent), and the collect-then-sort idiom where the body only
// appends the keys to a slice that the enclosing function subsequently
// sorts. Anything else needs a //simlint:allow determinism <reason>.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"clustersim/internal/analysis"
)

// SimPackages lists the import paths (and their subtrees) holding
// simulation state or feeding simulation output. Only these are checked:
// drivers, experiment harnesses and the analysis code itself may use the
// clock and stdlib randomness freely.
var SimPackages = []string{
	"clustersim/internal/core",
	"clustersim/internal/pipeline",
	"clustersim/internal/mem",
	"clustersim/internal/bpred",
	"clustersim/internal/interconnect",
	"clustersim/internal/workload",
	"clustersim/internal/smt",
	"clustersim/internal/energy",
	"clustersim/internal/isa",
	"clustersim/internal/spec",
	"clustersim/internal/trace",
	"clustersim/internal/policy",
}

// IsSimPackage reports whether an import path is subject to the
// determinism rules. It is a variable so tests can substitute fixtures.
var IsSimPackage = func(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	for _, p := range SimPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// forbiddenFuncs maps fully qualified function names to the replacement
// guidance printed with the diagnostic.
var forbiddenFuncs = map[string]string{
	"time.Now":   "derive timing from the simulated cycle counter",
	"time.Since": "derive durations from simulated cycle deltas",
	"time.Until": "derive durations from simulated cycle deltas",
}

// forbiddenImports are packages simulation code must not depend on.
var forbiddenImports = map[string]string{
	"math/rand":    "use the seedable clustersim/internal/rng source",
	"math/rand/v2": "use the seedable clustersim/internal/rng source",
}

// Analyzer is the determinism pass.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global math/rand, and order-dependent " +
		"map iteration in simulation packages",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !IsSimPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		checkImports(pass, f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkImports(pass *analysis.Pass, f *ast.File) {
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if hint, bad := forbiddenImports[path]; bad {
			pass.Reportf(imp.Pos(), "import of %s is nondeterministic across processes and Go releases; %s", path, hint)
		}
	}
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if obj, ok := pass.Info.Uses[n.Sel].(*types.Func); ok {
				if hint, bad := forbiddenFuncs[obj.FullName()]; bad {
					pass.Reportf(n.Pos(), "%s reads the wall clock and breaks run determinism; %s", obj.FullName(), hint)
				}
			}
		case *ast.RangeStmt:
			checkMapRange(pass, fn, n)
		}
		return true
	})
}

// checkMapRange analyzes one range statement whose operand may be a map.
func checkMapRange(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}

	// Floating-point accumulation inside the body is reported even when
	// the loop would otherwise look harmless: summation order changes the
	// rounding, so the result depends on iteration order.
	reportFloatAccumulation(pass, rng.Body)

	if deleteOnlyBody(pass, rng) {
		return
	}
	if collectsSortedKeys(pass, fn, rng) {
		return
	}
	pass.Reportf(rng.Pos(), "iterating a map is order-nondeterministic; collect and sort the keys, "+
		"or annotate //simlint:allow determinism <reason> if order provably cannot escape")
}

// reportFloatAccumulation flags compound float assignments (x += v, x = x
// + v, ...) anywhere in the loop body, including nested blocks.
func reportFloatAccumulation(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		accum := false
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			accum = true
		case token.ASSIGN:
			// x = x + v (or x = v + x) style accumulation.
			if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
				if bin, ok := as.Rhs[0].(*ast.BinaryExpr); ok {
					switch bin.Op {
					case token.ADD, token.SUB, token.MUL, token.QUO:
						lhs := exprString(as.Lhs[0])
						accum = exprString(bin.X) == lhs || exprString(bin.Y) == lhs
					}
				}
			}
		}
		if !accum || len(as.Lhs) == 0 {
			return true
		}
		if t := pass.TypeOf(as.Lhs[0]); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				pass.Reportf(as.Pos(), "floating-point accumulation over map iteration is order-dependent; "+
					"accumulate into a sorted slice first")
			}
		}
		return true
	})
}

// deleteOnlyBody reports whether every statement with an effect in the
// loop body is a delete on the ranged map itself. Conditionals and reads
// are fine; any other call, assignment or control transfer is not.
func deleteOnlyBody(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	target := exprString(rng.X)
	sawDelete := false
	safe := true
	var checkStmts func(stmts []ast.Stmt)
	checkStmts = func(stmts []ast.Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *ast.IfStmt:
				if s.Init != nil || s.Else != nil {
					safe = false
					return
				}
				checkStmts(s.Body.List)
			case *ast.ExprStmt:
				call, ok := s.X.(*ast.CallExpr)
				if !ok || !isBuiltin(pass, call.Fun, "delete") ||
					len(call.Args) != 2 || exprString(call.Args[0]) != target {
					safe = false
					return
				}
				sawDelete = true
			case *ast.BranchStmt:
				if s.Tok != token.CONTINUE {
					safe = false
					return
				}
			default:
				safe = false
				return
			}
		}
	}
	checkStmts(rng.Body.List)
	return safe && sawDelete
}

// collectsSortedKeys reports whether the loop only appends its key (and
// nothing else) to slices that the enclosing function later sorts.
func collectsSortedKeys(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) bool {
	keyIdent, _ := rng.Key.(*ast.Ident)
	if keyIdent == nil {
		return false
	}
	// The value variable must be unused: appending values keyed by an
	// unsorted iteration leaks order even if the keys get sorted.
	if v, ok := rng.Value.(*ast.Ident); ok && v.Name != "_" {
		return false
	}
	var collected []types.Object
	for _, s := range rng.Body.List {
		as, ok := s.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltin(pass, call.Fun, "append") || len(call.Args) != 2 {
			return false
		}
		dst, ok := as.Lhs[0].(*ast.Ident)
		if !ok || exprString(call.Args[0]) != dst.Name {
			return false
		}
		arg, ok := call.Args[1].(*ast.Ident)
		if !ok || pass.Info.Uses[arg] == nil || pass.Info.Uses[arg] != objectOf(pass, keyIdent) {
			return false
		}
		collected = append(collected, objectOf(pass, dst))
	}
	if len(collected) == 0 {
		return false
	}
	for _, obj := range collected {
		if obj == nil || !sortedLater(pass, fn, obj) {
			return false
		}
	}
	return true
}

// sortedLater reports whether fn contains a sort.* / slices.Sort* call
// taking obj as an argument.
func sortedLater(pass *analysis.Pass, fn *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		f, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || f.Pkg() == nil {
			return true
		}
		switch f.Pkg().Path() {
		case "sort":
			switch f.Name() {
			case "Sort", "Stable", "Slice", "SliceStable", "Ints", "Strings", "Float64s":
			default:
				return true
			}
		case "slices":
			if !strings.HasPrefix(f.Name(), "Sort") {
				return true
			}
		default:
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

func objectOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.Info.Uses[id].(*types.Builtin)
	return ok
}

// exprString renders small expressions (selectors, identifiers, indexes)
// for syntactic comparison; it intentionally covers only the shapes the
// safe-pattern checks compare.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.BasicLit:
		return e.Value
	default:
		return "?"
	}
}
