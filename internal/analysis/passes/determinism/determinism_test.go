package determinism_test

import (
	"testing"

	"clustersim/internal/analysis/analysistest"
	"clustersim/internal/analysis/passes/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer,
		"clustersim/internal/core/simfix", "nonsim")
}

func TestIsSimPackage(t *testing.T) {
	for _, tc := range []struct {
		path string
		want bool
	}{
		{"clustersim/internal/core", true},
		{"clustersim/internal/core/simfix", true},
		{"clustersim/internal/pipeline", true},
		{"clustersim/internal/pipeline_test", true}, // external test units
		{"clustersim/internal/obs", false},
		{"clustersim/internal/runner", false},
		{"clustersim/cmd/experiments", false},
		{"clustersim/internal/corelike", false}, // prefix must be a path boundary
	} {
		if got := determinism.IsSimPackage(tc.path); got != tc.want {
			t.Errorf("IsSimPackage(%q) = %t, want %t", tc.path, got, tc.want)
		}
	}
}
