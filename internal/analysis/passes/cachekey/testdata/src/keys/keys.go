// Package keys is the cachekey fixture corpus.
package keys

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
)

// Explicit per-field folds: every field must be read somewhere in the
// closure of the fingerprint.
type PerField struct {
	A int
	B string
	C int // want `field PerField.C does not flow into the Fingerprint cache-key hash`
	D int //simlint:nokey attribution-only knob, never influences results
}

func (p PerField) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", p.A)
	foldB(h2str(p.B))
	return h.Sum64()
}

// foldB is a same-package helper: the closure walk must see the read of B
// through it (here the read happens at the call site already; the helper
// exists to prove closure traversal does not error on free functions).
func foldB(s string) {}

func h2str(s string) string { return s }

// Exclusion idiom: fields zeroed on a local copy before the whole-value
// hash do not flow; fields re-read on the original do.
type CopyZero struct {
	Kept    int
	Pointer *int
	Skipped bool // want `field CopyZero.Skipped does not flow into the Fingerprint cache-key hash`
}

func (c CopyZero) Fingerprint() uint64 {
	h := fnv.New64a()
	cc := c
	cc.Pointer = nil
	cc.Skipped = false
	fmt.Fprintf(h, "%+v", cc)
	if c.Pointer != nil {
		fmt.Fprintf(h, "|%d", *c.Pointer)
	}
	return h.Sum64()
}

// Marshal-based fingerprints cover exported fields only — reflection never
// reads unexported fields or `json:"-"`.
type Marshaled struct {
	Name   string `json:"name"`
	Doc    string `json:"doc,omitempty"`
	Secret string `json:"-"` // want `field Marshaled.Secret does not flow into the Fingerprint cache-key hash`
	hidden int    // want `field Marshaled.hidden does not flow into the Fingerprint cache-key hash`
}

func (m *Marshaled) Fingerprint() (uint64, error) {
	data, err := json.Marshal(m)
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64(), nil
}

// A method that shares a recognized name but not the shape (parameters, a
// non-hash result) is not a cache key; the struct stays unchecked.
type NotAKey struct {
	Ignored int
}

func (n NotAKey) Key() int { return n.Ignored }

// A struct without any cache-key method is never checked.
type Plain struct {
	Whatever int
}
