// Package cachekey proves cache-key completeness at compile time. The
// runner's content-addressed run cache (PR 2), the crash-safe persisted
// results (PR 4) and the snapshot identity check all assume that a struct's
// fingerprint covers every field that can change simulation output: a
// `Config`, `spec.Spec`, `policy.Spec` or `runner.Request` field that
// affects the run but is omitted from the hash makes two different runs
// alias one cache entry — and the cache then silently serves the wrong
// Result, across processes and machines. This is the static dual of the
// snapstate pass: snapshots must persist every field, fingerprints must
// hash every field.
//
// The pass applies to every struct that declares a cache-key method,
// recognized structurally by name and shape: a method named Fingerprint,
// Key, CacheKey, key or cacheKey returning uint64 or string (optionally
// with an error). For each such struct, every field must flow into the
// fingerprint, established through the dataflow layer over the method and,
// transitively, every same-package function it references:
//
//   - a read of the field anywhere in that closure (an explicit per-field
//     fold, a nil-check before folding a pointer sub-config, ...), or
//   - a whole-value use — the struct passed as a call argument (fmt verbs
//     over %+v, a hash writer, json.Marshal) — which covers every field at
//     once, EXCEPT fields first overwritten on that local copy (the
//     `cc := c; cc.Observer = nil` exclusion idiom destroys the field's
//     value before the hash sees it), and, for encoding/json marshalers,
//     except unexported fields and fields tagged `json:"-"` (reflection
//     never reads them).
//
// A field deliberately excluded carries its justification on its
// declaration line:
//
//	//simlint:nokey <reason>
//
// The reason is mandatory: "attribution-only, never influences results",
// "identity carried by SourceKey", and so on.
package cachekey

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"clustersim/internal/analysis"
	"clustersim/internal/analysis/dataflow"
)

// keyMethodNames are the method names recognized as cache-key fingerprints.
var keyMethodNames = map[string]bool{
	"Fingerprint": true,
	"Key":         true,
	"CacheKey":    true,
	"key":         true,
	"cacheKey":    true,
}

// Analyzer is the cachekey pass.
var Analyzer = &analysis.Analyzer{
	Name: "cachekey",
	Doc: "every field of a struct with a cache-key method (Fingerprint/Key/...) " +
		"must flow into the hash or be annotated //simlint:nokey",
	Run: run,
}

func run(pass *analysis.Pass) error {
	graph := dataflow.NewGraph(pass.Info, pass.Files)

	// Group the unit's cache-key methods by receiver struct type.
	type target struct {
		recv  *types.TypeName
		st    *types.Struct
		roots []*ast.FuncDecl
	}
	targets := make(map[*types.TypeName]*target)
	for _, fd := range graph.Decls() {
		if fd.Recv == nil || !keyMethodNames[fd.Name.Name] || !keyShape(pass, fd) {
			continue
		}
		recv := receiverTypeName(pass, fd)
		if recv == nil {
			continue
		}
		st, ok := recv.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		tg := targets[recv]
		if tg == nil {
			tg = &target{recv: recv, st: st}
			targets[recv] = tg
		}
		tg.roots = append(tg.roots, fd)
	}

	// Deterministic order across the map.
	ordered := make([]*target, 0, len(targets))
	for _, tg := range targets {
		ordered = append(ordered, tg)
	}
	sort.Slice(ordered, func(i, j int) bool {
		return ordered[i].recv.Pos() < ordered[j].recv.Pos()
	})

	for _, tg := range ordered {
		check(pass, graph, tg.recv, tg.st, tg.roots)
	}
	return nil
}

// check verifies one struct against the union of its cache-key methods.
func check(pass *analysis.Pass, graph *dataflow.Graph, recv *types.TypeName, st *types.Struct, roots []*ast.FuncDecl) {
	fields := make(map[types.Object]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i)] = true
	}

	covered := make(map[types.Object]bool)
	// overwritten[v] is the set of recv's fields plainly assigned on
	// variable v somewhere in the closure: their original values are
	// destroyed before any whole-value use of v can hash them.
	overwritten := make(map[types.Object]map[types.Object]bool)
	type wholeUse struct {
		root   types.Object
		callee *types.Func
	}
	var uses []wholeUse

	for _, fd := range graph.Closure(roots...) {
		for _, a := range dataflow.FieldAccesses(pass.Info, fd) {
			if !fields[a.Field] {
				continue
			}
			switch a.Kind {
			case dataflow.Read:
				covered[a.Field] = true
			case dataflow.Write:
				if a.Root != nil {
					if overwritten[a.Root] == nil {
						overwritten[a.Root] = make(map[types.Object]bool)
					}
					overwritten[a.Root][a.Field] = true
				}
			}
		}
		for _, u := range dataflow.ValueUses(pass.Info, fd, recv.Type()) {
			if u.Callee != nil && graph.DeclOf(u.Callee) != nil {
				// A same-package callee's own body is already in the
				// closure; its field accesses speak for themselves.
				continue
			}
			uses = append(uses, wholeUse{root: u.Root, callee: u.Callee})
		}
	}

	for _, u := range uses {
		exportedOnly := dataflow.MarshalsExportedOnly(u.callee)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if exportedOnly && dataflow.JSONOmitted(f, st.Tag(i)) {
				continue
			}
			if u.root != nil && overwritten[u.root][f] {
				continue
			}
			covered[f] = true
		}
	}

	names := make([]string, 0, len(roots))
	for _, fd := range roots {
		names = append(names, fd.Name.Name)
	}
	sort.Strings(names)
	label := strings.Join(names, "/")

	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "_" || covered[f] {
			continue
		}
		if _, exempt := pass.Nokey(f.Pos()); exempt {
			continue
		}
		pass.Reportf(f.Pos(),
			"field %s.%s does not flow into the %s cache-key hash and is not annotated "+
				"//simlint:nokey <reason>; two runs differing only in %s would alias one cached result",
			recv.Name(), f.Name(), label, f.Name())
	}
}

// keyShape reports whether fd looks like a fingerprint: it takes no
// parameters and returns uint64 or string, optionally with a trailing
// error. Accessors that happen to share a recognized name but return other
// types (a map key field, ...) are not cache keys.
func keyShape(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 0 {
		return false
	}
	res := sig.Results()
	if res.Len() < 1 || res.Len() > 2 {
		return false
	}
	first, ok := res.At(0).Type().Underlying().(*types.Basic)
	if !ok || (first.Kind() != types.Uint64 && first.Kind() != types.String) {
		return false
	}
	if res.Len() == 2 {
		named, ok := res.At(1).Type().(*types.Named)
		if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
			return false
		}
	}
	return true
}

// receiverTypeName resolves a method declaration's receiver to its named
// type, unwrapping a pointer receiver.
func receiverTypeName(pass *analysis.Pass, fd *ast.FuncDecl) *types.TypeName {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	t := pass.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}
