package cachekey_test

import (
	"testing"

	"clustersim/internal/analysis/analysistest"
	"clustersim/internal/analysis/passes/cachekey"
)

func TestCacheKey(t *testing.T) {
	analysistest.Run(t, "testdata", cachekey.Analyzer, "keys")
}
