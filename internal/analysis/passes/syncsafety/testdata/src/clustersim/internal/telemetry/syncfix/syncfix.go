// Package syncfix is the syncsafety fixture corpus.
package syncfix

import (
	"sync"
	"sync/atomic"
)

type stats struct {
	mu     sync.Mutex
	guard  int
	ewma   float64
	hits   uint64
	misses uint64
	typed  atomic.Uint64
	limit  int
	cold   int
}

// record synchronizes correctly: guard under the mutex, hits atomically.
func (s *stats) record() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.guard++
	s.fold()
	atomic.AddUint64(&s.hits, 1)
	s.typed.Add(1)
	if s.guard > s.limit { // reading limit under the lock does not guard it
		s.guard = s.limit
	}
}

// fold is called only while record holds the lock: its receiver inherits
// the lock context, so the plain-looking write to ewma is locked.
func (s *stats) fold() {
	s.ewma = 0.8*s.ewma + 0.2*float64(s.guard)
}

// peek races: guard has locked writes in record, hits atomic accesses.
func (s *stats) peek() (int, uint64) {
	g := s.guard // want `plain access to field guard in peek, but record writes it under a mutex`
	h := s.hits  // want `plain access to field hits in peek, but record accesses it via sync/atomic`
	e := s.ewma  // want `plain access to field ewma in peek, but fold writes it under a mutex`
	_ = e
	return g, h
}

// snapshot is fine: it takes the same mutex before reading.
func (s *stats) snapshot() stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return stats{guard: s.guard, ewma: s.ewma}
}

// consume reads fields off a value copy: a copy is its own memory and
// cannot race with the guarded original.
func consume(s *stats) int {
	snap := s.snapshot()
	direct := s.snapshot().guard // rvalue temporary: also a copy
	return snap.guard + int(snap.ewma) + direct
}

// tune writes limit plainly; limit is only ever read under the lock, and
// an incidental locked read does not make a configuration field guarded.
func (s *stats) tune(n int) {
	s.limit = n
}

// handoff documents an external happens-before edge the pass cannot see.
func (s *stats) handoff() uint64 {
	return s.hits //simlint:allow syncsafety read after Wait, all writers joined
}

// newStats initializes plainly on a fresh object: nothing else can hold a
// reference yet, so no report.
func newStats() *stats {
	s := &stats{}
	s.guard = 0
	s.hits = 0
	return s
}

// touchCold never synchronizes cold anywhere, so plain access is fine.
func (s *stats) touchCold() int {
	s.cold++
	return s.cold
}

// misses is only ever accessed atomically: nothing to report.
func (s *stats) miss() {
	atomic.AddUint64(&s.misses, 1)
}
