// Package syncsafety enforces a single synchronization discipline per
// field in the concurrent packages (the runner's worker pool, telemetry's
// shared counters, obs's sweep aggregation). A field that is written under
// a mutex in one function and read plainly in another is a data race the
// -race detector only catches when the schedule cooperates; the same for a
// counter bumped through sync/atomic and read bare. This pass makes the
// discipline a compile-time property: once a field is synchronized — its
// address passed to sync/atomic, or written while a named mutex of the
// same object is held — every access to it must be synchronized too.
//
// Classification is per function body, flow-insensitive within it:
//
//   - an access is ATOMIC when the field's address is an argument to a
//     sync/atomic function (atomic.AddUint64(&s.hits, 1));
//   - an access is LOCKED when the enclosing function calls Lock or RLock
//     on a sync.Mutex or sync.RWMutex reached through the same base
//     object (r.mu.Lock() makes every r.* access in the body locked,
//     including nested ones like r.stats.hits), or when the enclosing
//     method's receiver is lock-inherited: every one of its same-package
//     call sites invokes it on an object the caller holds locked (the
//     unexported helper called only from inside the critical section);
//   - every other access is PLAIN.
//
// A field is GUARDED once it has an atomic access or a locked write — a
// read under an incidentally-held mutex does not make a configuration
// field guarded. Every plain access to a guarded field is reported, with
// the synchronized counterpart named so the mixed-access pair is visible
// in one message.
//
// Exemptions, in line with how the races actually cannot happen:
//
//   - fields whose type is declared in sync or sync/atomic (sync.Mutex,
//     atomic.Uint64, ...) — their method sets are safe by construction;
//   - accesses through a value-typed variable: a struct copy is its own
//     memory, so reading st.Runs off a Stats snapshot returned by value
//     cannot race with the guarded original;
//   - accesses on a function-local object freshly created in the same
//     body (s := &Stats{...}; s.hits = 0): nothing else can hold a
//     reference yet, so constructors initialize plainly;
//   - func init, which runs before main starts any goroutine;
//   - lines annotated //simlint:allow syncsafety <reason> for the
//     remainder (a read ordered by a WaitGroup join or channel
//     happens-before edge the pass cannot see).
//
// Only the concurrent packages are checked — see SyncPackages.
package syncsafety

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"clustersim/internal/analysis"
	"clustersim/internal/analysis/dataflow"
)

// SyncPackages lists the import paths (and their subtrees) that run
// goroutines against shared state. Single-threaded simulation packages
// are exempt: the core model is sequential by design (PR 1) and plain
// field access there is correct.
var SyncPackages = []string{
	"clustersim/internal/runner",
	"clustersim/internal/telemetry",
	"clustersim/internal/obs",
}

// IsSyncPackage reports whether an import path is subject to the
// syncsafety rules. It is a variable so tests can substitute fixtures.
var IsSyncPackage = func(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	for _, p := range SyncPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Analyzer is the syncsafety pass.
var Analyzer = &analysis.Analyzer{
	Name: "syncsafety",
	Doc: "a field written under a named mutex or accessed via sync/atomic " +
		"must never be accessed plainly outside initialization",
	Run: run,
}

// access is one classified field touch.
type access struct {
	pos    token.Pos
	fn     string // enclosing function name, for the diagnostic
	write  bool
	atomic bool
	locked bool
	exempt bool // fresh root or value-typed copy
}

// fnFacts is the per-function classification state.
type fnFacts struct {
	decl *ast.FuncDecl
	// locked is the set of base objects x for which the body calls
	// x.<mutex>.Lock/RLock, plus the receiver when lock-inherited.
	locked map[types.Object]bool
	// recvObj is the declared receiver object, nil for free functions.
	recvObj types.Object
	// callers records, per in-unit callee, the receiver base objects this
	// function invokes it on.
	calls []callEdge
}

type callEdge struct {
	callee *ast.FuncDecl
	recv   types.Object // base object of the call's receiver chain
}

func run(pass *analysis.Pass) error {
	if !IsSyncPackage(pass.Pkg.Path()) {
		return nil
	}

	graph := dataflow.NewGraph(pass.Info, pass.Files)
	facts := make(map[*ast.FuncDecl]*fnFacts)
	for _, fd := range graph.Decls() {
		if fd.Body == nil || fd.Name.Name == "init" {
			continue
		}
		facts[fd] = &fnFacts{
			decl:    fd,
			locked:  lockRoots(pass.Info, fd),
			recvObj: receiverObject(pass.Info, fd),
			calls:   methodCalls(pass.Info, graph, fd),
		}
	}
	propagateLockContexts(facts)

	// Classify every access, grouped per field in deterministic order.
	accesses := make(map[*types.Var][]access)
	var fields []*types.Var
	for _, fd := range graph.Decls() {
		ff := facts[fd]
		if ff == nil {
			continue
		}
		fresh := freshLocals(pass.Info, fd)
		atomicArgs := atomicAddresses(pass.Info, fd)
		for _, fa := range dataflow.FieldAccesses(pass.Info, fd) {
			if fromSyncPackage(fa.Field.Type()) {
				continue
			}
			if _, seen := accesses[fa.Field]; !seen {
				fields = append(fields, fa.Field)
			}
			accesses[fa.Field] = append(accesses[fa.Field], access{
				pos:    fa.Sel.Pos(),
				fn:     fd.Name.Name,
				write:  fa.Kind == dataflow.Write,
				atomic: atomicArgs[fa.Sel],
				locked: fa.Root != nil && ff.locked[fa.Root],
				exempt: rvalueBase(pass.Info, fa.Sel.X) ||
					(fa.Root != nil && (fresh[fa.Root] || valueTyped(fa.Root))),
			})
		}
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })

	for _, fld := range fields {
		var guard *access // the synchronized access named in the pair message
		for i := range accesses[fld] {
			a := &accesses[fld][i]
			if a.atomic || (a.locked && a.write) {
				guard = a
				break
			}
		}
		if guard == nil {
			continue
		}
		how := "writes it under a mutex"
		if guard.atomic {
			how = "accesses it via sync/atomic"
		}
		for _, a := range accesses[fld] {
			if a.atomic || a.locked || a.exempt {
				continue
			}
			pass.Reportf(a.pos,
				"plain access to field %s in %s, but %s %s; "+
					"mixed synchronization is a data race",
				fld.Name(), a.fn, guard.fn, how)
		}
	}
	return nil
}

// propagateLockContexts marks a method's receiver as locked when every
// same-package call site invokes it on an object the caller holds locked.
// Iterates to a fixpoint so lock context flows through helper chains
// (Emit -> observeCompletion -> fold...).
func propagateLockContexts(facts map[*ast.FuncDecl]*fnFacts) {
	for changed := true; changed; {
		changed = false
		// Gather, per callee, the lock state of every call site.
		type siteInfo struct{ sites, locked int }
		byCallee := make(map[*ast.FuncDecl]*siteInfo)
		for _, ff := range facts {
			for _, e := range ff.calls {
				si := byCallee[e.callee]
				if si == nil {
					si = &siteInfo{}
					byCallee[e.callee] = si
				}
				si.sites++
				if e.recv != nil && ff.locked[e.recv] {
					si.locked++
				}
			}
		}
		for callee, si := range byCallee {
			ff := facts[callee]
			if ff == nil || ff.recvObj == nil || ff.locked[ff.recvObj] {
				continue
			}
			if si.sites > 0 && si.sites == si.locked {
				ff.locked[ff.recvObj] = true
				changed = true
			}
		}
	}
}

// receiverObject resolves fn's receiver identifier, nil for free
// functions and anonymous receivers.
func receiverObject(info *types.Info, fn *ast.FuncDecl) types.Object {
	if fn.Recv == nil || len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 {
		return nil
	}
	return info.Defs[fn.Recv.List[0].Names[0]]
}

// methodCalls finds fn's calls to same-unit methods, recording the base
// object of each call's receiver chain.
func methodCalls(info *types.Info, graph *dataflow.Graph, fn *ast.FuncDecl) []callEdge {
	var edges []callEdge
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		callee := graph.DeclOf(obj)
		if callee == nil || callee.Recv == nil {
			return true
		}
		edges = append(edges, callEdge{callee: callee, recv: baseObject(info, sel.X)})
		return true
	})
	return edges
}

// rvalueBase reports whether a selector base bottoms out in a call or
// composite literal by value: r.Stats().Runs reads a field off a
// temporary copy, which cannot race with the guarded original. A pointer
// anywhere in the chain re-enters shared memory and disqualifies it.
func rvalueBase(info *types.Info, e ast.Expr) bool {
	for {
		if t := info.TypeOf(e); t != nil {
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				return false
			}
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr, *ast.CompositeLit:
			return true
		default:
			return false
		}
	}
}

// valueTyped reports whether obj is a variable of (non-pointer) struct
// type: accesses through it touch a copy, not the shared original.
func valueTyped(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	_, isStruct := v.Type().Underlying().(*types.Struct)
	return isStruct
}

// lockRoots finds objects x for which fn calls x.<mutexField>.Lock or
// RLock anywhere in its body.
func lockRoots(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	roots := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		// x.mu.Lock(): the receiver chain is x.mu; its base is x.
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok || !isMutex(info.TypeOf(inner)) {
			return true
		}
		if root := baseObject(info, inner.X); root != nil {
			roots[root] = true
		}
		return true
	})
	return roots
}

// freshLocals finds local variables bound to a fresh allocation
// (&T{...}, T{...} or new(T)) in fn's own body: no other goroutine can
// reach them, so plain initialization is safe.
func freshLocals(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if !isFreshExpr(as.Rhs[i]) {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				fresh[obj] = true
			}
		}
		return true
	})
	return fresh
}

func isFreshExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := e.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// atomicAddresses finds the selector expressions whose addresses are
// passed to sync/atomic functions: atomic.AddUint64(&s.hits, 1) marks
// s.hits as an atomic access.
func atomicAddresses(info *types.Info, fn *ast.FuncDecl) map[*ast.SelectorExpr]bool {
	marked := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAtomicCall(info, call) {
			return true
		}
		for _, arg := range call.Args {
			un, ok := arg.(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			if sel, ok := un.X.(*ast.SelectorExpr); ok {
				marked[sel] = true
			}
		}
		return true
	})
	return marked
}

func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "sync/atomic"
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

// fromSyncPackage reports whether a type is declared in sync or
// sync/atomic; such fields synchronize through their own method sets.
func fromSyncPackage(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "sync" || path == "sync/atomic"
}

// baseObject resolves the base identifier of a selector chain.
func baseObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
