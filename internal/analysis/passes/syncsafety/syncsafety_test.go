package syncsafety_test

import (
	"testing"

	"clustersim/internal/analysis/analysistest"
	"clustersim/internal/analysis/passes/syncsafety"
)

func TestSyncSafety(t *testing.T) {
	analysistest.Run(t, "testdata", syncsafety.Analyzer,
		"clustersim/internal/telemetry/syncfix")
}

func TestIsSyncPackage(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"clustersim/internal/runner", true},
		{"clustersim/internal/telemetry", true},
		{"clustersim/internal/obs", true},
		{"clustersim/internal/telemetry/syncfix", true},
		{"clustersim/internal/runner_test", true},
		{"clustersim/internal/pipeline", false},
		{"clustersim/internal/core", false},
		{"clustersim/cmd/clustersim", false},
	}
	for _, tc := range cases {
		if got := syncsafety.IsSyncPackage(tc.path); got != tc.want {
			t.Errorf("IsSyncPackage(%q) = %t, want %t", tc.path, got, tc.want)
		}
	}
}
