// Package nostats proves the pass only fires on Stats structs that
// declare a Conserved method: without one there is no identity to fall
// out of, so nothing is reported.
package nostats

type Stats struct {
	Hits   uint64
	Misses uint64
}

// Other is not named Stats and is ignored even with a Conserved method.
type Other struct {
	N uint64
}

func (o *Other) Conserved() bool { return true }
