// Package stats exercises the statsconserve coverage rules on a Stats
// struct with a Conserved method.
package stats

// Stats mirrors the simulator's per-component counter blocks.
type Stats struct {
	Hits   uint64
	Misses uint64
	// Evictions is preserved by Merge rather than constrained by
	// conservation; mention in any covering method counts.
	Evictions uint64
	Orphan    uint64 // want `numeric field Stats\.Orphan is missing from the Conserved/Merge identities`
	//simlint:allow statsconserve diagnostic-only gauge, reset every interval by the probe layer
	Gauge float64
	Label string // non-numeric fields are out of scope
}

// Conserved checks the hit/miss balance.
func (s *Stats) Conserved(accesses uint64) bool {
	return s.Hits+s.Misses == accesses
}

// Merge folds another interval's counters in.
func (s *Stats) Merge(o *Stats) {
	s.Evictions += o.Evictions
}
