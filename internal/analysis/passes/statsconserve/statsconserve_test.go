package statsconserve_test

import (
	"testing"

	"clustersim/internal/analysis/analysistest"
	"clustersim/internal/analysis/passes/statsconserve"
)

func TestStatsConserve(t *testing.T) {
	analysistest.Run(t, "testdata", statsconserve.Analyzer, "stats", "nostats")
}
