// Package statsconserve proves that statistics structs stay covered by
// their conservation identities. The differential-oracle checker (PR 3)
// validates mem.Stats and interconnect.Stats against Conserved() after
// every interval; a counter added to the struct but not to Conserved would
// silently escape that net. This pass closes the gap structurally: for
// every struct named Stats that declares a Conserved method, each numeric
// field must be mentioned inside Conserved (or a Merge/Add combiner, for
// fields that conservation cannot constrain but merging must preserve), or
// carry an explicit //simlint:allow statsconserve <reason> annotation.
package statsconserve

import (
	"go/ast"
	"go/types"

	"clustersim/internal/analysis"
)

// Analyzer is the statsconserve pass.
var Analyzer = &analysis.Analyzer{
	Name: "statsconserve",
	Doc: "every numeric field of a Stats struct with a Conserved method " +
		"must appear in its Conserved/Merge identities",
	Run: run,
}

// coveringMethods are the method names whose bodies count as coverage.
var coveringMethods = map[string]bool{
	"Conserved": true,
	"Merge":     true,
	"merge":     true,
	"Add":       true,
	"add":       true,
}

func run(pass *analysis.Pass) error {
	// Gather the Stats struct types declared in this unit together with
	// their method declarations.
	type statsType struct {
		obj     *types.TypeName
		spec    *ast.TypeSpec
		strct   *ast.StructType
		methods []*ast.FuncDecl
		hasCons bool
	}
	var all []*statsType
	byObj := make(map[types.Object]*statsType)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "Stats" {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				s := &statsType{obj: obj, spec: ts, strct: st}
				all = append(all, s)
				byObj[obj] = s
			}
		}
	}
	if len(all) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !coveringMethods[fd.Name.Name] {
				continue
			}
			recv := receiverTypeName(pass, fd)
			if recv == nil {
				continue
			}
			if s, ok := byObj[recv]; ok {
				s.methods = append(s.methods, fd)
				if fd.Name.Name == "Conserved" {
					s.hasCons = true
				}
			}
		}
	}

	for _, s := range all {
		if !s.hasCons {
			continue
		}
		covered := fieldMentions(pass, s.methods)
		for _, field := range s.strct.Fields.List {
			for _, name := range field.Names {
				if name.Name == "_" {
					continue
				}
				obj := pass.Info.Defs[name]
				if obj == nil || !isNumeric(obj.Type()) {
					continue
				}
				if covered[obj] {
					continue
				}
				pass.Reportf(name.Pos(),
					"numeric field %s.%s is missing from the Conserved/Merge identities; "+
						"add it to a conservation check or annotate //simlint:allow statsconserve <reason>",
					s.obj.Name(), name.Name)
			}
		}
	}
	return nil
}

// receiverTypeName resolves a method's receiver to its named type.
func receiverTypeName(pass *analysis.Pass, fd *ast.FuncDecl) *types.TypeName {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	t := pass.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// fieldMentions collects every struct-field object selected anywhere in
// the given method bodies (receiver, parameters like prev, locals — any
// value of the type counts).
func fieldMentions(pass *analysis.Pass, methods []*ast.FuncDecl) map[types.Object]bool {
	covered := make(map[types.Object]bool)
	for _, m := range methods {
		ast.Inspect(m.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if s := pass.Info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
				covered[s.Obj()] = true
			}
			return true
		})
	}
	return covered
}

func isNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}
