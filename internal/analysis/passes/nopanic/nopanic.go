// Package nopanic enforces the simulator's error-boundary convention:
// library packages report failures as errors (PR 4 pushed every
// constructor and Run to an error return), so a bare panic in library
// code is either a misclassified configuration error or an internal
// invariant that should be annotated as such.
//
// A panic call is legal only
//
//   - inside a function or method whose name starts with "Must" (the
//     sanctioned panicking wrappers over error-returning constructors),
//   - inside an init function,
//   - in package main (command wiring may abort freely), or
//   - under an explicit //simlint:allow nopanic <reason> annotation,
//     which is how genuine can't-happen invariants (for example
//     "pipeline: store retired out of order") document themselves.
//
// Test files are exempt: a test panic fails the test, which is the
// desired behavior.
package nopanic

import (
	"go/ast"
	"go/types"
	"strings"

	"clustersim/internal/analysis"
)

// Analyzer is the nopanic pass.
var Analyzer = &analysis.Analyzer{
	Name: "nopanic",
	Doc: "restrict panic in library packages to Must* wrappers, init " +
		"functions, and annotated invariants",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" || pass.TestUnit {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if exemptFunc(fn) {
				continue
			}
			checkBody(pass, fn)
		}
	}
	return nil
}

// exemptFunc reports whether panics anywhere inside fn (closures
// included) are sanctioned by its name.
func exemptFunc(fn *ast.FuncDecl) bool {
	name := fn.Name.Name
	return strings.HasPrefix(name, "Must") || name == "init"
}

func checkBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "panic" {
			return true
		}
		if _, builtin := pass.Info.Uses[id].(*types.Builtin); !builtin {
			return true
		}
		pass.Reportf(call.Pos(), "panic in library code outside a Must* wrapper or init; "+
			"return an error, or annotate //simlint:allow nopanic <reason> for a true invariant")
		return true
	})
}
