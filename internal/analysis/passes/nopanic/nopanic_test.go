package nopanic_test

import (
	"testing"

	"clustersim/internal/analysis/analysistest"
	"clustersim/internal/analysis/passes/nopanic"
)

func TestNopanic(t *testing.T) {
	analysistest.Run(t, "testdata", nopanic.Analyzer, "panics", "panicmain")
}
