// Package panics exercises the nopanic rules: bare panics in library
// code are flagged; Must* wrappers, init functions, and annotated
// invariants are not.
package panics

import "errors"

// Open is ordinary library code: its panic is a misclassified error.
func Open(name string) error {
	if name == "" {
		panic("empty name") // want `panic in library code outside a Must\* wrapper or init`
	}
	return nil
}

// deep proves closures inside ordinary functions are checked too.
func deep() func() {
	return func() {
		panic("inner") // want `panic in library code`
	}
}

// MustOpen is a sanctioned panicking wrapper.
func MustOpen(name string) {
	if err := Open(name); err != nil {
		panic(err)
	}
}

func init() {
	if errors.New("x") == nil {
		panic("impossible")
	}
}

// retire documents a genuine can't-happen invariant.
func retire(seq int) {
	if seq < 0 {
		//simlint:allow nopanic retirement order invariant; unreachable for any in-range sequence
		panic("panics: retired out of order")
	}
}
