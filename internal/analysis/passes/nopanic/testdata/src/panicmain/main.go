// Command panicmain proves package main is exempt: command wiring may
// abort freely, so no diagnostics are expected here.
package main

func main() {
	panic("usage")
}
