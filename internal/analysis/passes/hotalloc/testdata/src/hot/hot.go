// Package hot is the hotalloc fixture corpus.
package hot

import "fmt"

type event struct {
	cycle int
	kind  int
}

type core struct {
	queue   []event
	lookup  map[int]int
	scratch []int
}

//simlint:hot
func (c *core) step(now int) {
	c.helper(now)

	e := event{cycle: now} // value literal: stays on the stack, not reported
	_ = e

	p := &event{cycle: now} // want `composite-literal allocation in hot function step`
	_ = p

	s := []int{now} // want `composite-literal allocation in hot function step`
	_ = s

	m := map[int]int{now: 1} // want `composite-literal allocation in hot function step`
	_ = m

	c.queue = append(c.queue, e) // want `append without presized capacity in hot function step`

	buf := make([]int, 0, 64)
	buf = append(buf, now) // presized with 3-arg make: not reported
	_ = buf

	fn := func() int { return now } // want `capturing closure in hot function step`
	_ = fn

	pure := func(x int) int { return x * 2 } // no captures: not reported
	_ = pure

	fmt.Println(now) // want `interface conversion in hot function step`

	for k := range c.lookup { // want `map iteration in hot function step`
		_ = k
	}

	c.scratch = append(c.scratch, now) //simlint:alloc scratch arena grows once then is reused
}

// helper is in the closure of step and is checked too.
func (c *core) helper(now int) {
	c.queue = append(c.queue, event{cycle: now}) // want `append without presized capacity in hot function helper`
}

// cold is not reachable from any hot root: allocations are fine here.
func cold() []int {
	out := []int{1, 2, 3}
	out = append(out, 4)
	return out
}
