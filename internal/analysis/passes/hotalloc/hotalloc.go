// Package hotalloc guards the event-driven cycle loop's allocation budget
// at compile time. PR 7's scheduler holds the simulator's steady state to
// ≤8 allocations per 10K-instruction window — the property the alloc-budget
// tests and the CI benchdiff gate measure after the fact. This pass is the
// before-the-fact half: inside functions reachable from an annotated hot
// root, the expression shapes that reintroduce per-cycle heap traffic are
// findings, so the budget cannot erode one innocent-looking line at a time
// between benchmark runs.
//
// A root is designated on its declaration line (or the line above):
//
//	//simlint:hot
//
// The checked region is the root set's same-package call-graph closure,
// computed by the dataflow layer. Cross-package calls and interface
// dispatch (Controller.OnCommit, workload.Generator.Next) are the
// documented boundary: callees behind them are covered by their own
// packages' roots or by the runtime alloc tests, not by this pass.
//
// Within the region, five shapes are reported:
//
//   - composite-literal allocations: &T{...}, slice and map literals
//     (value struct literals stay on the stack and are not reported);
//   - capturing closures: a func literal referencing enclosing variables
//     heap-allocates its header and captures at every evaluation;
//   - interface conversions: boxing a concrete value at a call argument,
//     assignment, return or explicit conversion;
//   - append growth: an append whose destination the function does not
//     presize with a three-argument make;
//   - map iteration.
//
// A site that is genuinely cold (error construction on a path that ends
// the run) or amortized (an arena that grows once and is reused) opts out
// on its line with //simlint:alloc <reason> — the reason is mandatory and
// reviewed, exactly like snapstate's nostate exemptions.
package hotalloc

import (
	"go/ast"

	"clustersim/internal/analysis"
	"clustersim/internal/analysis/dataflow"
)

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "no composite-literal escapes, capturing closures, interface " +
		"conversions, unpresized appends or map iteration in functions " +
		"reachable from a //simlint:hot root",
	Run: run,
}

func run(pass *analysis.Pass) error {
	graph := dataflow.NewGraph(pass.Info, pass.Files)
	var roots []*ast.FuncDecl
	for _, fd := range graph.Decls() {
		if pass.HotRoot(fd.Pos()) {
			roots = append(roots, fd)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	for _, fd := range graph.Closure(roots...) {
		for _, site := range dataflow.AllocSites(pass.Info, fd) {
			pass.Reportf(site.Pos,
				"%s in hot function %s: %s; hoist it out of the hot path or annotate "+
					"//simlint:alloc <reason>",
				site.Kind, fd.Name.Name, site.Detail)
		}
	}
	return nil
}
