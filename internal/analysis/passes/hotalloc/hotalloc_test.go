package hotalloc_test

import (
	"testing"

	"clustersim/internal/analysis/analysistest"
	"clustersim/internal/analysis/passes/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "hot")
}
