// Package snapfix exercises the snapstate coverage rules: every field
// of a struct with a snapshot codec must be mentioned in the codec (or
// in same-receiver helpers it calls), or annotated //simlint:nostate.
package snapfix

// Machine declares the exported SaveState/LoadState codec pair.
type Machine struct {
	PC    uint64
	Regs  [16]uint64
	Drift uint64            // want `field Machine\.Drift is not serialized by the Machine snapshot codec`
	cache map[uint64]uint64 //simlint:nostate rebuilt lazily on first access after resume
}

// SaveState covers PC directly and Regs through the helper.
func (m *Machine) SaveState(sink func(uint64)) {
	sink(m.PC)
	m.saveRegs(sink)
}

// LoadState restores PC; Regs flow through the same helper shape.
func (m *Machine) LoadState(src func() uint64) {
	m.PC = src()
	m.saveRegs(func(uint64) {})
}

// saveRegs is a same-receiver helper: its mentions count transitively.
func (m *Machine) saveRegs(sink func(uint64)) {
	for _, r := range m.Regs {
		sink(r)
	}
}

// bank uses the unexported saveState/loadState pair.
type bank struct {
	rows  []uint64
	dirty bool // want `field bank\.dirty is not serialized by the bank snapshot codec`
}

func (b *bank) saveState() []uint64  { return b.rows }
func (b *bank) loadState(r []uint64) { b.rows = r }

// plain has no codec, so nothing is required of it.
type plain struct {
	scratch uint64
}

func (p *plain) bump() { p.scratch++ }
