// Package snapstate proves checkpoint completeness at compile time. The
// CSIM-SNAP layer (PR 4) assumes that every codec covers every field of
// its machine struct; a field added to a component but not to its
// save/load functions corrupts resumed runs silently — the snapshot loads
// cleanly and the divergence only surfaces (maybe) as a flaky
// ResumeEquivalence oracle hours later.
//
// The pass applies to every struct type that declares a snapshot codec,
// recognized structurally as a method pair:
//
//	SaveState / LoadState     (the snap.Stater interface)
//	saveState / loadState     (unexported sub-codecs)
//	SaveCheckpoint / LoadCheckpoint  (the processor's versioned header)
//
// For each such struct, every field must either be mentioned — selected
// through any value of the type — inside the codec bodies (methods of the
// same type that the codecs call, like (*Processor).at or Checkpointable,
// are followed transitively), or carry an explicit exemption on its
// declaration line:
//
//	//simlint:nostate <reason>
//
// The reason is mandatory: "rebuilt by the constructor", "observer hook,
// checkpointing is refused while attached", and so on. Mentioning a field
// is deliberately a weak proxy for serializing it — the pass is a drift
// alarm, not a codec verifier; the ResumeEquivalence oracle remains the
// ground truth for value-level correctness.
package snapstate

import (
	"go/ast"
	"go/types"

	"clustersim/internal/analysis"
)

// codecPairs lists the recognized save/load method-name pairs.
var codecPairs = [][2]string{
	{"SaveState", "LoadState"},
	{"saveState", "loadState"},
	{"SaveCheckpoint", "LoadCheckpoint"},
}

// Analyzer is the snapstate pass.
var Analyzer = &analysis.Analyzer{
	Name: "snapstate",
	Doc: "every field of a struct with a snapshot codec must be serialized " +
		"or annotated //simlint:nostate",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Index every method declaration in the unit by receiver type.
	methods := make(map[*types.TypeName]map[string]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recv := receiverTypeName(pass, fd)
			if recv == nil {
				continue
			}
			if methods[recv] == nil {
				methods[recv] = make(map[string]*ast.FuncDecl)
			}
			methods[recv][fd.Name.Name] = fd
		}
	}

	for recv, ms := range methods {
		var roots []*ast.FuncDecl
		for _, pair := range codecPairs {
			for _, name := range pair {
				if fd, ok := ms[name]; ok {
					roots = append(roots, fd)
				}
			}
		}
		if len(roots) == 0 {
			continue
		}
		st, ok := recv.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		covered := coverage(pass, recv, ms, roots)
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			if field.Name() == "_" || covered[field] {
				continue
			}
			if _, exempt := pass.Nostate(field.Pos()); exempt {
				continue
			}
			pass.Reportf(field.Pos(),
				"field %s.%s is not serialized by the %s snapshot codec and not annotated "+
					"//simlint:nostate <reason>; checkpointed runs will silently drop it",
				recv.Name(), field.Name(), recv.Name())
		}
	}
	return nil
}

// coverage walks the codec methods and, transitively, every same-receiver
// method they call, collecting the set of recv's fields they mention.
func coverage(pass *analysis.Pass, recv *types.TypeName, ms map[string]*ast.FuncDecl, roots []*ast.FuncDecl) map[types.Object]bool {
	fields := make(map[types.Object]bool)
	st := recv.Type().Underlying().(*types.Struct)
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i)] = true
	}

	covered := make(map[types.Object]bool)
	visited := make(map[*ast.FuncDecl]bool)
	queue := append([]*ast.FuncDecl(nil), roots...)
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		if visited[fd] {
			continue
		}
		visited[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if s := pass.Info.Selections[sel]; s != nil {
				if s.Kind() == types.FieldVal && fields[s.Obj()] {
					covered[s.Obj()] = true
				}
				// Follow calls to other methods of the same type so
				// helpers like (*Processor).at contribute coverage.
				if s.Kind() == types.MethodVal {
					if fn, ok := s.Obj().(*types.Func); ok && receiverBase(fn) == recv {
						if callee, ok := ms[fn.Name()]; ok && !visited[callee] {
							queue = append(queue, callee)
						}
					}
				}
			}
			return true
		})
	}
	return covered
}

// receiverTypeName resolves a method declaration's receiver to its named
// type, unwrapping a pointer receiver.
func receiverTypeName(pass *analysis.Pass, fd *ast.FuncDecl) *types.TypeName {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	t := pass.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// receiverBase returns the named-type object of fn's receiver, or nil.
func receiverBase(fn *types.Func) *types.TypeName {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}
