package snapstate_test

import (
	"testing"

	"clustersim/internal/analysis/analysistest"
	"clustersim/internal/analysis/passes/snapstate"
)

func TestSnapstate(t *testing.T) {
	analysistest.Run(t, "testdata", snapstate.Analyzer, "snapfix")
}
