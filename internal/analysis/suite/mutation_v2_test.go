package suite_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clustersim/internal/analysis"
	"clustersim/internal/analysis/passes/cachekey"
	"clustersim/internal/analysis/passes/errflow"
	"clustersim/internal/analysis/passes/hotalloc"
	"clustersim/internal/analysis/passes/syncsafety"
)

// The v2 mutation tests mirror TestMutationUnserializedFieldIsCaught for the
// dataflow-aware passes: each copies the real packages into a scratch module,
// confirms the pristine copy is clean, injects the exact defect the pass
// exists to catch, and asserts the pass reports it. Together they prove the
// CI gate is live — a regression in any pass makes its mutant survive and
// the test fail.

// runnerClosure is every clustersim package reachable from internal/runner;
// copying it makes the scratch module self-contained for the from-source
// loader.
var runnerClosure = []string{
	"internal/snap", "internal/bpred", "internal/interconnect", "internal/isa",
	"internal/mem", "internal/obs", "internal/telemetry", "internal/rng",
	"internal/workload", "internal/pipeline", "internal/runner",
}

// scratchRunnerModule copies go.mod plus the runner closure into a temp
// module and returns its root.
func scratchRunnerModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	copyFile(t, "../../../go.mod", filepath.Join(root, "go.mod"))
	for _, pkg := range runnerClosure {
		copyPackage(t, filepath.Join("../../..", pkg), filepath.Join(root, pkg))
	}
	return root
}

// runPass loads pattern inside root and runs one analyzer over it.
func runPass(t *testing.T, root, pattern string, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	l, err := analysis.NewLoader(root, false)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	units, err := l.Load(pattern)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags, err := analysis.Run(units, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return diags
}

// mutate rewrites one occurrence of anchor in file to replacement.
func mutate(t *testing.T, file, anchor, replacement string) {
	t.Helper()
	src, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), anchor) {
		t.Fatalf("anchor %q not found in %s", anchor, file)
	}
	if err := os.WriteFile(file,
		[]byte(strings.Replace(string(src), anchor, replacement, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
}

// expectOnly asserts every diagnostic comes from analyzer and mentions want,
// and that at least one was reported.
func expectOnly(t *testing.T, diags []analysis.Diagnostic, analyzer, want string) {
	t.Helper()
	if len(diags) == 0 {
		t.Fatalf("%s did not report the injected defect (want mention of %q)", analyzer, want)
	}
	for _, d := range diags {
		if d.Analyzer != analyzer || !strings.Contains(d.Message, want) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestMutationUnfingerprintedConfigField proves cachekey guards the cache-key
// surface from both directions: adding a Config field without a fingerprint
// fold, and deleting the fold of an existing field, each fail the gate.
func TestMutationUnfingerprintedConfigField(t *testing.T) {
	root := scratchRunnerModule(t)
	if diags := runPass(t, root, "./internal/pipeline", cachekey.Analyzer); len(diags) != 0 {
		t.Fatalf("pristine copy is not clean: %v", diags)
	}

	target := filepath.Join(root, "internal/pipeline/config.go")
	pristine, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}

	// Direction 1: a new field the fingerprint does not fold.
	mutate(t, target, "type Config struct {", "type Config struct {\n\tMutantWidth int")
	expectOnly(t, runPass(t, root, "./internal/pipeline", cachekey.Analyzer),
		"cachekey", "Config.MutantWidth")

	// Direction 2: an existing field whose fold is deleted.
	if err := os.WriteFile(target, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	mutate(t, target, "\tfold(uint64(c.ModN))\n", "")
	expectOnly(t, runPass(t, root, "./internal/pipeline", cachekey.Analyzer),
		"cachekey", "Config.ModN")
}

// TestMutationHotPathAllocation injects a composite-literal allocation into
// the processor's per-cycle step function and asserts hotalloc reports it.
func TestMutationHotPathAllocation(t *testing.T) {
	root := scratchRunnerModule(t)
	if diags := runPass(t, root, "./internal/pipeline", hotalloc.Analyzer); len(diags) != 0 {
		t.Fatalf("pristine copy is not clean: %v", diags)
	}

	mutate(t, filepath.Join(root, "internal/pipeline/processor.go"),
		"\tp.progress = false\n",
		"\tp.progress = false\n\tmutantScratch := []int{1, 2, 3}\n\t_ = mutantScratch\n")
	expectOnly(t, runPass(t, root, "./internal/pipeline", hotalloc.Analyzer),
		"hotalloc", "composite-literal allocation in hot function step")
}

// TestMutationPlainAtomicRead injects a lock-free read of a mutex-guarded
// Runner counter and asserts syncsafety reports the mixed-access pair.
func TestMutationPlainAtomicRead(t *testing.T) {
	root := scratchRunnerModule(t)
	if diags := runPass(t, root, "./internal/runner", syncsafety.Analyzer); len(diags) != 0 {
		t.Fatalf("pristine copy is not clean: %v", diags)
	}

	mutate(t, filepath.Join(root, "internal/runner/runner.go"),
		"// New returns a Runner",
		"func (r *Runner) mutantPeek() bool { return r.stats.Runs != 0 }\n\n// New returns a Runner")
	expectOnly(t, runPass(t, root, "./internal/runner", syncsafety.Analyzer),
		"syncsafety", "plain access to field Runs in mutantPeek")
}

// TestMutationDroppedError injects a call site that discards the error from
// pipeline.Processor.Run and asserts errflow reports it.
func TestMutationDroppedError(t *testing.T) {
	root := scratchRunnerModule(t)
	if diags := runPass(t, root, "./internal/runner", errflow.Analyzer); len(diags) != 0 {
		t.Fatalf("pristine copy is not clean: %v", diags)
	}

	mutate(t, filepath.Join(root, "internal/runner/runner.go"),
		"// New returns a Runner",
		"func mutantWarm(p *pipeline.Processor) { p.Run(1) }\n\n// New returns a Runner")
	expectOnly(t, runPass(t, root, "./internal/runner", errflow.Analyzer),
		"errflow", "Run")
}
