package suite_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clustersim/internal/analysis"
	"clustersim/internal/analysis/passes/snapstate"
	"clustersim/internal/analysis/passes/statsconserve"
)

// TestMutationUnserializedFieldIsCaught is a mutation-style regression test
// for the drift alarms: it copies the real interconnect package (and its
// one dependency) into a scratch module, confirms the pristine copy is
// clean, then injects the exact bug the analyzers exist to catch — a new
// counter on Stats that neither the snapshot codec nor the conservation
// identities know about — and asserts both snapstate and statsconserve
// report it.
func TestMutationUnserializedFieldIsCaught(t *testing.T) {
	root := t.TempDir()
	copyFile(t, "../../../go.mod", filepath.Join(root, "go.mod"))
	for _, pkg := range []string{"internal/snap", "internal/interconnect"} {
		copyPackage(t, filepath.Join("../../..", pkg), filepath.Join(root, pkg))
	}

	run := func() []analysis.Diagnostic {
		l, err := analysis.NewLoader(root, false)
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		units, err := l.Load("./internal/interconnect")
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		diags, err := analysis.Run(units,
			[]*analysis.Analyzer{snapstate.Analyzer, statsconserve.Analyzer})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return diags
	}

	if diags := run(); len(diags) != 0 {
		t.Fatalf("pristine copy is not clean: %v", diags)
	}

	// Mutate: grow Stats by a field no codec or identity mentions.
	target := filepath.Join(root, "internal/interconnect/interconnect.go")
	src, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	const anchor = "type Stats struct {"
	if !strings.Contains(string(src), anchor) {
		t.Fatalf("anchor %q not found in %s", anchor, target)
	}
	mutated := strings.Replace(string(src), anchor,
		anchor+"\n\tMutantDrops uint64", 1)
	if err := os.WriteFile(target, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}

	diags := run()
	var bySnap, byCons bool
	for _, d := range diags {
		if !strings.Contains(d.Message, "Stats.MutantDrops") {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		switch d.Analyzer {
		case "snapstate":
			bySnap = true
		case "statsconserve":
			byCons = true
		}
	}
	if !bySnap {
		t.Errorf("snapstate did not report the unserialized Stats.MutantDrops field")
	}
	if !byCons {
		t.Errorf("statsconserve did not report the unconserved Stats.MutantDrops field")
	}
}

// copyPackage copies the non-test Go files of one package directory.
func copyPackage(t *testing.T, from, to string) {
	t.Helper()
	if err := os.MkdirAll(to, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(from)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		copyFile(t, filepath.Join(from, name), filepath.Join(to, name))
	}
}

func copyFile(t *testing.T, from, to string) {
	t.Helper()
	data, err := os.ReadFile(from)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(to, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
