// Package suite assembles the simulator's analyzer set in the order the
// multichecker runs them. cmd/simlint and the self-tests share this list
// so a pass added here is automatically wired into both.
package suite

import (
	"clustersim/internal/analysis"
	"clustersim/internal/analysis/passes/cachekey"
	"clustersim/internal/analysis/passes/determinism"
	"clustersim/internal/analysis/passes/errflow"
	"clustersim/internal/analysis/passes/hotalloc"
	"clustersim/internal/analysis/passes/nopanic"
	"clustersim/internal/analysis/passes/snapstate"
	"clustersim/internal/analysis/passes/statsconserve"
	"clustersim/internal/analysis/passes/syncsafety"
)

// Analyzers is the full simlint suite: the four syntactic PR-5 passes
// followed by the four dataflow-aware passes.
var Analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	snapstate.Analyzer,
	statsconserve.Analyzer,
	nopanic.Analyzer,
	cachekey.Analyzer,
	hotalloc.Analyzer,
	syncsafety.Analyzer,
	errflow.Analyzer,
}
