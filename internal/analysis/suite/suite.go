// Package suite assembles the simulator's analyzer set in the order the
// multichecker runs them. cmd/simlint and the self-tests share this list
// so a pass added here is automatically wired into both.
package suite

import (
	"clustersim/internal/analysis"
	"clustersim/internal/analysis/passes/determinism"
	"clustersim/internal/analysis/passes/nopanic"
	"clustersim/internal/analysis/passes/snapstate"
	"clustersim/internal/analysis/passes/statsconserve"
)

// Analyzers is the full simlint suite.
var Analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	snapstate.Analyzer,
	statsconserve.Analyzer,
	nopanic.Analyzer,
}
