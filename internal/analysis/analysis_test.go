package analysis

import (
	"go/ast"
	"strings"
	"testing"
)

func TestParseAnnotation(t *testing.T) {
	for _, tc := range []struct {
		text            string
		verb, rule, why string
		ok, malformed   bool
	}{
		{text: "// ordinary comment"},
		{text: "//simlint:allow determinism ring order is fixed", verb: "allow",
			rule: "determinism", why: "ring order is fixed", ok: true},
		{text: "//simlint:nostate rebuilt by the constructor", verb: "nostate",
			why: "rebuilt by the constructor", ok: true},
		{text: "//simlint:allow determinism", ok: true, malformed: true}, // no reason
		{text: "//simlint:allow", ok: true, malformed: true},
		{text: "//simlint:nostate", ok: true, malformed: true},
		{text: "//simlint:suppress everything", ok: true, malformed: true}, // unknown verb
		{text: "//simlint:", ok: true, malformed: true},
	} {
		verb, rule, why, ok, err := parseAnnotation(tc.text)
		if ok != tc.ok || (err != nil) != tc.malformed {
			t.Errorf("parseAnnotation(%q): ok=%t err=%v, want ok=%t malformed=%t",
				tc.text, ok, err, tc.ok, tc.malformed)
			continue
		}
		if tc.malformed {
			continue
		}
		if verb != tc.verb || rule != tc.rule || why != tc.why {
			t.Errorf("parseAnnotation(%q) = (%q, %q, %q), want (%q, %q, %q)",
				tc.text, verb, rule, why, tc.verb, tc.rule, tc.why)
		}
	}
}

// toy reports every function declaration; its diagnostics carry the
// function name so tests can tell which ones survived suppression.
var toy = &Analyzer{
	Name: "toy",
	Doc:  "reports every function declaration",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fn, ok := decl.(*ast.FuncDecl); ok {
					pass.Reportf(fn.Pos(), "func %s", fn.Name.Name)
				}
			}
		}
		return nil
	},
}

func TestAllowSuppression(t *testing.T) {
	units, err := NewFixtureLoader("testdata/src").Load("annot")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags, err := Run(units, []*Analyzer{toy})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+": "+d.Message)
	}
	// allowed and standalone are suppressed; plain, wrongRule and malformed
	// survive, and the broken annotation is reported under "simlint".
	want := map[string]bool{
		"toy: func plain":     true,
		"toy: func wrongRule": true,
		"toy: func malformed": true,
	}
	sawMalformed := false
	for _, g := range got {
		if strings.HasPrefix(g, "simlint: ") {
			sawMalformed = true
			continue
		}
		if !want[g] {
			t.Errorf("unexpected diagnostic %q", g)
		}
		delete(want, g)
	}
	for w := range want {
		t.Errorf("missing diagnostic %q", w)
	}
	if !sawMalformed {
		t.Errorf("malformed //simlint:allow was not reported under the simlint rule")
	}
}

// TestLoaderSharesTestPackageIdentity loads a real module package with
// in-package test files and checks that the augmented test unit reuses the
// base unit's *types.Package: identity sharing is what lets external test
// packages and their dependencies agree on one set of types.
func TestLoaderSharesTestPackageIdentity(t *testing.T) {
	l, err := NewLoader("../..", true)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	units, err := l.Load("./internal/rng")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(units) != 2 {
		t.Fatalf("got %d units, want base + in-package test", len(units))
	}
	base, test := units[0], units[1]
	if base.TestUnit || !test.TestUnit {
		t.Fatalf("unit order: base.TestUnit=%t test.TestUnit=%t", base.TestUnit, test.TestUnit)
	}
	if base.Types != test.Types {
		t.Errorf("test unit has its own *types.Package; want the base package's identity")
	}
	if base.Path != "clustersim/internal/rng" {
		t.Errorf("base path = %q", base.Path)
	}
	// Report sets must not overlap: base owns rng.go, the test unit owns
	// only the files it introduced.
	for f := range base.reportFiles {
		if test.reportFiles[f] {
			t.Errorf("file %s reportable from both units", f)
		}
	}
}
