package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Unit is one type-checked collection of files ready for analysis. A
// package yields up to three units: the base unit (production files), an
// in-package test unit (production + same-package _test.go files, needed
// because test files see unexported identifiers), and an external test
// unit (the package's *_test external test package, if any). Test units
// re-parse the production files for the type checker but only report
// diagnostics from the files they introduce.
type Unit struct {
	Path     string // import path
	Dir      string
	Fset     *token.FileSet
	Files    []*ast.File
	Types    *types.Package
	Info     *types.Info
	TestUnit bool

	// reportFiles is the set of absolute filenames whose diagnostics this
	// unit owns.
	reportFiles map[string]bool
}

func (u *Unit) reportable(filename string) bool { return u.reportFiles[filename] }

// A Loader parses and type-checks the packages of one module from source.
// It needs no network and no pre-built export data: module-local imports
// are resolved recursively from the module tree, everything else through
// the standard library's source importer (which compiles the imported
// package from GOROOT source).
type Loader struct {
	// Root is the module root directory (the one holding go.mod).
	Root string
	// Tests controls whether *_test.go files are loaded as extra units.
	Tests bool

	fset    *token.FileSet
	module  string // module path from go.mod
	std     types.ImporterFrom
	cache   map[string]*buildResult // import path -> type-checked base package
	loading map[string]bool         // import-cycle detection
}

type buildResult struct {
	pkg   *types.Package
	unit  *Unit
	err   error
	files []*ast.File
	// checker and info stay alive so in-package test files can later be
	// checked into the same *types.Package: sharing the identity keeps
	// the augmented package compatible with every dependency that was
	// resolved against the base variant (an external test package
	// imports both).
	checker *types.Checker
	info    *types.Info
}

// NewLoader returns a Loader for the module rooted at dir.
func NewLoader(dir string, tests bool) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	return newLoader(dir, modPath, tests), nil
}

// NewFixtureLoader returns a Loader over a GOPATH-style source tree (used
// by analysistest corpora): the import path of a package is its directory
// path relative to srcRoot, with no go.mod required.
func NewFixtureLoader(srcRoot string) *Loader {
	return newLoader(srcRoot, "", true)
}

func newLoader(dir, module string, tests bool) *Loader {
	// The source importer honours build.Default; with cgo enabled it
	// would try to preprocess cgo-using std packages (net, ...) through
	// the C toolchain. The pure-Go fallbacks type-check identically, so
	// force them.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	l := &Loader{
		Root:    dir,
		Tests:   tests,
		fset:    fset,
		module:  module,
		cache:   make(map[string]*buildResult),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Load resolves the given package patterns ("./...", "./dir/...", "./dir",
// ".") relative to the module root and returns the units of every matched
// package, in deterministic order. Type errors in a package are returned
// as an aggregated error after all loadable units.
func (l *Loader) Load(patterns ...string) ([]*Unit, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var units []*Unit
	var errs []string
	for _, dir := range dirs {
		us, err := l.loadDir(dir)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		units = append(units, us...)
	}
	if len(errs) > 0 {
		return units, fmt.Errorf("%s", strings.Join(errs, "\n"))
	}
	return units, nil
}

// expand turns patterns into a sorted list of package directories (absolute
// paths) containing at least one non-test .go file.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		} else if pat == "..." {
			recursive = true
			pat = "."
		}
		base := filepath.Join(l.Root, filepath.FromSlash(pat))
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("analysis: walking %s: %w", base, err)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// importPathFor maps a package directory to its import path in the module
// (or, in fixture mode, to its path relative to the source root).
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.module, nil
	}
	if l.module == "" {
		return filepath.ToSlash(rel), nil
	}
	return l.module + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps a module-local import path back to its directory, or returns
// false when the path does not belong to the module. In fixture mode any
// path with a matching directory under the source root is local.
func (l *Loader) dirFor(path string) (string, bool) {
	if l.module == "" {
		dir := filepath.Join(l.Root, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir, true
		}
		return "", false
	}
	if path == l.module {
		return l.Root, true
	}
	if rest, ok := strings.CutPrefix(path, l.module+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Import implements types.Importer by delegating module-local paths to the
// loader and everything else to the standard library's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if d, ok := l.dirFor(path); ok {
		res := l.buildBase(path, d)
		if res.err != nil {
			return nil, res.err
		}
		return res.pkg, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// splitSources classifies a directory's files. goFiles are production
// sources, testFiles are same-package _test.go files, xtestFiles belong to
// the external <pkg>_test package.
func splitSources(dir string) (goFiles, testFiles, xtestFiles []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		full := filepath.Join(dir, name)
		if strings.HasSuffix(name, "_test.go") {
			pkgName, perr := packageName(full)
			if perr != nil {
				return nil, nil, nil, perr
			}
			if strings.HasSuffix(pkgName, "_test") {
				xtestFiles = append(xtestFiles, full)
			} else {
				testFiles = append(testFiles, full)
			}
			continue
		}
		goFiles = append(goFiles, full)
	}
	sort.Strings(goFiles)
	sort.Strings(testFiles)
	sort.Strings(xtestFiles)
	return goFiles, testFiles, xtestFiles, nil
}

// packageName reads just the package clause of a file.
func packageName(file string) (string, error) {
	f, err := parser.ParseFile(token.NewFileSet(), file, nil, parser.PackageClauseOnly)
	if err != nil {
		return "", err
	}
	return f.Name.Name, nil
}

func (l *Loader) parse(files []string) ([]*ast.File, error) {
	var parsed []*ast.File
	for _, file := range files {
		f, err := parser.ParseFile(l.fset, file, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	return parsed, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// check type-checks files as a fresh package.
func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := newInfo()
	var firstErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if firstErr != nil {
		return pkg, info, firstErr
	}
	if err != nil {
		return pkg, info, err
	}
	return pkg, info, nil
}

// buildBase loads, parses and type-checks the production files of one
// module-local package, memoized per import path.
func (l *Loader) buildBase(path, dir string) *buildResult {
	if res, ok := l.cache[path]; ok {
		return res
	}
	if l.loading[path] {
		res := &buildResult{err: fmt.Errorf("analysis: import cycle through %s", path)}
		l.cache[path] = res
		return res
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	res := &buildResult{}
	goFiles, _, _, err := splitSources(dir)
	if err != nil {
		res.err = fmt.Errorf("analysis: %s: %w", path, err)
		l.cache[path] = res
		return res
	}
	if len(goFiles) == 0 {
		res.err = fmt.Errorf("analysis: %s: no non-test Go files in %s", path, dir)
		l.cache[path] = res
		return res
	}
	files, err := l.parse(goFiles)
	if err != nil {
		res.err = fmt.Errorf("analysis: %s: %w", path, err)
		l.cache[path] = res
		return res
	}
	info := newInfo()
	var firstErr error
	conf := &types.Config{
		Importer: l,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg := types.NewPackage(path, files[0].Name.Name)
	checker := types.NewChecker(conf, l.fset, pkg, info)
	err = checker.Files(files)
	if firstErr != nil {
		err = firstErr
	}
	if err != nil {
		res.err = fmt.Errorf("analysis: %s: %w", path, err)
		l.cache[path] = res
		return res
	}
	reportFiles := make(map[string]bool, len(goFiles))
	for _, f := range goFiles {
		reportFiles[f] = true
	}
	res.pkg = pkg
	res.files = files
	res.checker = checker
	res.info = info
	res.unit = &Unit{
		Path:        path,
		Dir:         dir,
		Fset:        l.fset,
		Files:       files,
		Types:       pkg,
		Info:        info,
		reportFiles: reportFiles,
	}
	l.cache[path] = res
	return res
}

// loadDir builds every unit of the package in dir: the base unit (when the
// directory has production files), the in-package test unit, and the
// external test unit. Test-only directories (e.g. examples/) yield only
// test units.
func (l *Loader) loadDir(dir string) ([]*Unit, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	goFiles, testFiles, xtestFiles, err := splitSources(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	var units []*Unit
	var base *buildResult
	if len(goFiles) > 0 {
		base = l.buildBase(path, dir)
		if base.err != nil {
			return nil, base.err
		}
		units = append(units, base.unit)
	}
	if !l.Tests {
		return units, nil
	}
	if len(testFiles) > 0 {
		parsedTests, err := l.parse(testFiles)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", path, err)
		}
		var all []*ast.File
		var pkg *types.Package
		var info *types.Info
		if base != nil {
			// Check the test files into the base package through its
			// retained checker: the augmented package keeps the base's
			// identity, exactly like go test, where export_test.go
			// shims become part of the package every dependent of the
			// test binary links against.
			if err := base.checker.Files(parsedTests); err != nil {
				return nil, fmt.Errorf("analysis: %s [tests]: %w", path, err)
			}
			all = append(append([]*ast.File{}, base.files...), parsedTests...)
			pkg, info = base.pkg, base.info
		} else {
			// Test-only directory: the in-package test files form the
			// package by themselves.
			all = parsedTests
			var err error
			pkg, info, err = l.check(path, parsedTests)
			if err != nil {
				return nil, fmt.Errorf("analysis: %s [tests]: %w", path, err)
			}
		}
		reportFiles := make(map[string]bool, len(testFiles))
		for _, f := range testFiles {
			reportFiles[f] = true
		}
		units = append(units, &Unit{
			Path:        path,
			Dir:         dir,
			Fset:        l.fset,
			Files:       all,
			Types:       pkg,
			Info:        info,
			TestUnit:    true,
			reportFiles: reportFiles,
		})
	}
	if len(xtestFiles) > 0 {
		parsed, err := l.parse(xtestFiles)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", path, err)
		}
		pkg, info, err := l.check(path+"_test", parsed)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s [xtests]: %w", path, err)
		}
		reportFiles := make(map[string]bool, len(xtestFiles))
		for _, f := range xtestFiles {
			reportFiles[f] = true
		}
		units = append(units, &Unit{
			Path:        path + "_test",
			Dir:         dir,
			Fset:        l.fset,
			Files:       parsed,
			Types:       pkg,
			Info:        info,
			TestUnit:    true,
			reportFiles: reportFiles,
		})
	}
	return units, nil
}
