package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllocKind classifies one heap-allocation-relevant expression shape.
type AllocKind int

// Alloc kinds, in the order hotalloc documents them.
const (
	// AllocComposite is a composite literal that allocates: a pointer
	// literal (&T{...}) or a slice/map literal. Value struct and array
	// literals stay on the stack unless something else (an interface
	// conversion, an address capture) moves them, and are not reported
	// on their own.
	AllocComposite AllocKind = iota
	// AllocClosure is a func literal that captures variables of the
	// enclosing function; the closure header and its captured slots are
	// heap-allocated at every evaluation.
	AllocClosure
	// AllocIface is a conversion of a concrete value to an interface
	// type — at a call argument, assignment, return or explicit
	// conversion — which boxes the value.
	AllocIface
	// AllocAppend is an append whose destination the function does not
	// presize with a three-argument make; growth reallocates and copies.
	AllocAppend
	// AllocMapRange is a range over a map: beyond its order
	// nondeterminism, the hidden iterator defeats the optimizer in hot
	// loops and the buckets walk is cache-hostile.
	AllocMapRange
)

// String names the kind for diagnostics.
func (k AllocKind) String() string {
	switch k {
	case AllocComposite:
		return "composite-literal allocation"
	case AllocClosure:
		return "capturing closure"
	case AllocIface:
		return "interface conversion"
	case AllocAppend:
		return "append without presized capacity"
	case AllocMapRange:
		return "map iteration"
	}
	return "allocation"
}

// An AllocSite is one expression in a function body that (potentially)
// allocates on every execution.
type AllocSite struct {
	Pos  token.Pos
	Kind AllocKind
	// Detail carries the site-specific half of the diagnostic ("conversion
	// of *mem.Config to io.Writer", "append to p.agenda").
	Detail string
}

// AllocSites classifies fn's body. The classification is conservative
// toward reporting: a shape it cannot prove allocation-free is a site, and
// genuine cold paths opt out per site with //simlint:alloc <reason>.
func AllocSites(info *types.Info, fn *ast.FuncDecl) []AllocSite {
	var out []AllocSite
	presized := presizedSlices(info, fn.Body)
	var retTypes []types.Type
	if sig, ok := info.Defs[fn.Name].Type().(*types.Signature); ok {
		for i := 0; i < sig.Results().Len(); i++ {
			retTypes = append(retTypes, sig.Results().At(i).Type())
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					out = append(out, AllocSite{Pos: n.Pos(), Kind: AllocComposite,
						Detail: "address-taken literal " + typeLabel(info, n.X)})
				}
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					out = append(out, AllocSite{Pos: n.Pos(), Kind: AllocComposite,
						Detail: typeLabel(info, n) + " literal"})
				}
			}
		case *ast.FuncLit:
			if captures(info, n) {
				out = append(out, AllocSite{Pos: n.Pos(), Kind: AllocClosure,
					Detail: "closure captures enclosing variables"})
			}
			// Do not descend: the literal's body executes on the
			// closure's schedule, not the hot path's. If the closure is
			// invoked from hot code its callee is unreachable to the
			// closure walk anyway (documented limit).
			return false
		case *ast.CallExpr:
			out = append(out, callSites(info, n, presized)...)
		case *ast.AssignStmt:
			out = append(out, assignSites(info, n)...)
		case *ast.ReturnStmt:
			for i, res := range n.Results {
				if i < len(retTypes) && len(n.Results) == len(retTypes) {
					if convertsToIface(info, retTypes[i], res) {
						out = append(out, AllocSite{Pos: res.Pos(), Kind: AllocIface,
							Detail: "return boxes " + typeLabel(info, res)})
					}
				}
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					out = append(out, AllocSite{Pos: n.Pos(), Kind: AllocMapRange,
						Detail: "range over " + typeLabel(info, n.X)})
				}
			}
		}
		return true
	})
	return out
}

// callSites classifies one call: explicit conversions to interface types,
// interface-typed parameters receiving concrete arguments, and appends
// without a presized destination.
func callSites(info *types.Info, call *ast.CallExpr, presized map[types.Object]bool) []AllocSite {
	var out []AllocSite

	// Explicit conversion: T(x) where T is a type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if convertsToIface(info, tv.Type, call.Args[0]) {
			return []AllocSite{{Pos: call.Pos(), Kind: AllocIface,
				Detail: "conversion boxes " + typeLabel(info, call.Args[0])}}
		}
		return nil
	}

	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" && len(call.Args) >= 2 {
				dst := rootExprObject(info, call.Args[0])
				if dst == nil || !presized[dst] {
					out = append(out, AllocSite{Pos: call.Pos(), Kind: AllocAppend,
						Detail: "append may grow its destination; presize with a 3-arg make or opt out"})
				}
			}
			return out
		}
	}

	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return out
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // s... spreads an existing slice, no per-element boxing
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if convertsToIface(info, pt, arg) {
			out = append(out, AllocSite{Pos: arg.Pos(), Kind: AllocIface,
				Detail: "argument boxes " + typeLabel(info, arg)})
		}
	}
	return out
}

// assignSites flags assignments that box a concrete value into an
// interface-typed variable or field.
func assignSites(info *types.Info, as *ast.AssignStmt) []AllocSite {
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return nil
	}
	var out []AllocSite
	for i := range as.Lhs {
		lt := info.TypeOf(as.Lhs[i])
		if lt == nil {
			continue
		}
		if convertsToIface(info, lt, as.Rhs[i]) {
			out = append(out, AllocSite{Pos: as.Rhs[i].Pos(), Kind: AllocIface,
				Detail: "assignment boxes " + typeLabel(info, as.Rhs[i])})
		}
	}
	return out
}

// convertsToIface reports whether assigning expr to a target of type dst
// boxes a concrete value: dst is an interface, expr's type is not, and
// expr is not the untyped nil.
func convertsToIface(info *types.Info, dst types.Type, expr ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	return !types.IsInterface(tv.Type)
}

// presizedSlices collects local variables bound to a three-argument make
// anywhere in the body: append to such a slice is growth-free until the
// reserved capacity is consumed, the presize idiom the alloc budget
// expects.
func presizedSlices(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	presized := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			id, ok := unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			call, ok := unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok || len(call.Args) != 3 {
				continue
			}
			fid, ok := unparen(call.Fun).(*ast.Ident)
			if !ok {
				continue
			}
			if b, ok := info.Uses[fid].(*types.Builtin); ok && b.Name() == "make" {
				if obj := objectFor(info, id); obj != nil {
					presized[obj] = true
				}
			}
		}
		return true
	})
	return presized
}

// captures reports whether the func literal references any variable
// declared outside its own body but inside some enclosing function.
func captures(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captured (they live in static
		// storage); only function-scoped objects declared outside the
		// literal force a closure allocation.
		if isPkgLevel(v) {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			found = true
		}
		return true
	})
	return found
}

// isPkgLevel reports whether v is declared at package scope.
func isPkgLevel(v *types.Var) bool {
	if v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// rootExprObject resolves expressions like s, *p, (s) to their variable.
func rootExprObject(info *types.Info, e ast.Expr) types.Object {
	e = unparen(e)
	if s, ok := e.(*ast.StarExpr); ok {
		e = unparen(s.X)
	}
	if id, ok := e.(*ast.Ident); ok {
		return objectFor(info, id)
	}
	return nil
}

func objectFor(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// typeLabel renders an expression's type for diagnostics.
func typeLabel(info *types.Info, e ast.Expr) string {
	if t := info.TypeOf(e); t != nil {
		return types.TypeString(t, func(p *types.Package) string { return p.Name() })
	}
	return "value"
}
