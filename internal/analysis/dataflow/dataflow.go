// Package dataflow is the shared intra-procedural dataflow layer under the
// simlint passes that reason about where values go rather than what the
// syntax looks like: field-access/assignment classification (cachekey),
// call-graph closure over same-package helpers (cachekey, hotalloc), and
// escape-relevant expression classification (hotalloc).
//
// The analyses are deliberately lightweight — stdlib-only, built on the
// framework's go/types loader — and intra-procedural: facts propagate
// through the bodies of same-package functions reachable from a root, but
// never across package boundaries, through interface dispatch, or through
// function values whose target cannot be resolved statically. Within those
// limits the classifications are conservative in the direction each pass
// needs: cachekey treats an unresolvable whole-struct use as covering every
// field (under-reporting, never false-alarming on code it cannot see), and
// hotalloc flags an allocation shape it cannot prove safe (over-reporting,
// with a per-site opt-out).
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Graph indexes one unit's function declarations and resolves references
// between them, giving passes a same-package call graph.
type Graph struct {
	info  *types.Info
	decls map[*types.Func]*ast.FuncDecl
}

// NewGraph indexes every function and method declaration of the unit.
func NewGraph(info *types.Info, files []*ast.File) *Graph {
	g := &Graph{info: info, decls: make(map[*types.Func]*ast.FuncDecl)}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				g.decls[fn] = fd
			}
		}
	}
	return g
}

// DeclOf returns the unit-local declaration of fn, or nil when fn is not
// declared in the unit (imported, interface method, ...).
func (g *Graph) DeclOf(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// Decls returns every indexed declaration in source order.
func (g *Graph) Decls() []*ast.FuncDecl {
	out := make([]*ast.FuncDecl, 0, len(g.decls))
	for _, fd := range g.decls {
		out = append(out, fd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// Closure returns the declarations reachable from roots through references
// to same-package functions and methods: direct calls, method values, and
// function values taken by name. References the type checker cannot resolve
// to a unit-local declaration (interface dispatch, imported functions,
// dynamic function values) end the walk there — the documented
// intra-procedural limit. Roots are included; order is by source position.
func (g *Graph) Closure(roots ...*ast.FuncDecl) []*ast.FuncDecl {
	visited := make(map[*ast.FuncDecl]bool)
	queue := append([]*ast.FuncDecl(nil), roots...)
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		if fd == nil || visited[fd] {
			continue
		}
		visited[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if fn, ok := g.info.Uses[id].(*types.Func); ok {
				if callee := g.decls[fn]; callee != nil && !visited[callee] {
					queue = append(queue, callee)
				}
			}
			return true
		})
	}
	out := make([]*ast.FuncDecl, 0, len(visited))
	for fd := range visited {
		out = append(out, fd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// AccessKind classifies one field access.
type AccessKind int

// Access kinds. A compound assignment or ++/-- both reads and writes, and
// is recorded as two accesses.
const (
	// Read is a use of the field's current value.
	Read AccessKind = iota
	// Write destroys the field's current value (plain assignment LHS).
	Write
)

// An Access is one selection of a struct field inside a function body.
type Access struct {
	// Sel is the selector expression performing the access.
	Sel *ast.SelectorExpr
	// Field is the selected field object.
	Field *types.Var
	// Kind classifies the access.
	Kind AccessKind
	// Root is the object at the base of the selector chain when it is a
	// plain identifier (x in x.f or x.a.f), nil otherwise. It lets
	// flow-insensitive per-variable facts ("fields of cc overwritten
	// before cc is hashed whole") attach to the right variable.
	Root types.Object
}

// FieldAccesses classifies every struct-field selection in fn's body.
func FieldAccesses(info *types.Info, fn *ast.FuncDecl) []Access {
	var out []Access
	writes := make(map[*ast.SelectorExpr]bool)   // plain-assignment LHS
	alsoRead := make(map[*ast.SelectorExpr]bool) // compound/incdec LHS
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := unparen(lhs).(*ast.SelectorExpr); ok {
					writes[sel] = true
					if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
						alsoRead[sel] = true
					}
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := unparen(n.X).(*ast.SelectorExpr); ok {
				writes[sel] = true
				alsoRead[sel] = true
			}
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		field, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		root := rootObject(info, sel)
		if writes[sel] {
			out = append(out, Access{Sel: sel, Field: field, Kind: Write, Root: root})
			if !alsoRead[sel] {
				return true
			}
		}
		out = append(out, Access{Sel: sel, Field: field, Kind: Read, Root: root})
		return true
	})
	return out
}

// rootObject resolves the base of a selector chain to its variable, when
// the base is a plain (possibly dereferenced) identifier.
func rootObject(info *types.Info, sel *ast.SelectorExpr) types.Object {
	e := unparen(sel.X)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = unparen(x.X)
		case *ast.StarExpr:
			e = unparen(x.X)
		case *ast.Ident:
			return info.Uses[x]
		default:
			return nil
		}
	}
}

// A ValueUse is one place a whole value of the watched type flows out of
// the function as a unit — as a call argument — rather than field by field.
type ValueUse struct {
	// Arg is the argument expression of the watched type.
	Arg ast.Expr
	// Root is the variable the argument names, when it is a plain
	// identifier (possibly &x or *x), nil otherwise.
	Root types.Object
	// Callee is the resolved called function, nil when the call target is
	// not a statically known named function.
	Callee *types.Func
}

// ValueUses finds every call argument in fn whose type is typ (or a
// pointer to it). A whole-value use hands every field to the callee at
// once — fmt verbs, encoding/json, hash writers — which is how
// reflection-based fingerprints consume their struct.
func ValueUses(info *types.Info, fn *ast.FuncDecl, typ types.Type) []ValueUse {
	var out []ValueUse
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var callee *types.Func
		switch f := unparen(call.Fun).(type) {
		case *ast.Ident:
			callee, _ = info.Uses[f].(*types.Func)
		case *ast.SelectorExpr:
			callee, _ = info.Uses[f.Sel].(*types.Func)
		}
		for _, arg := range call.Args {
			t := info.TypeOf(arg)
			if t == nil {
				continue
			}
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if !types.Identical(t, typ) {
				continue
			}
			e := unparen(arg)
			if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
				e = unparen(u.X)
			}
			if s, ok := e.(*ast.StarExpr); ok {
				e = unparen(s.X)
			}
			var root types.Object
			if id, ok := e.(*ast.Ident); ok {
				root = info.Uses[id]
			}
			out = append(out, ValueUse{Arg: arg, Root: root, Callee: callee})
		}
		return true
	})
	return out
}

// MarshalsExportedOnly reports whether the callee consumes only the
// exported fields of its struct argument — the encoding/json and
// encoding/xml marshalers. Unexported fields do not flow through such a
// use, and neither do fields tagged `json:"-"`.
func MarshalsExportedOnly(callee *types.Func) bool {
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	switch callee.Pkg().Path() {
	case "encoding/json", "encoding/xml":
		return strings.HasPrefix(callee.Name(), "Marshal") ||
			strings.HasPrefix(callee.Name(), "Encode")
	}
	if callee.Name() == "Encode" {
		// (*json.Encoder).Encode et al resolve through the path above;
		// other encoders are unknown and treated as consuming everything.
		return false
	}
	return false
}

// JSONOmitted reports whether a field is skipped by encoding/json: either
// unexported or explicitly tagged `json:"-"`.
func JSONOmitted(field *types.Var, tag string) bool {
	if !field.Exported() {
		return true
	}
	jt, ok := lookupTag(tag, "json")
	return ok && jt == "-"
}

// lookupTag is reflect.StructTag.Get without importing reflect's value
// machinery into analysis code.
func lookupTag(tag, key string) (string, bool) {
	for tag != "" {
		i := 0
		for i < len(tag) && tag[i] == ' ' {
			i++
		}
		tag = tag[i:]
		if tag == "" {
			break
		}
		i = 0
		for i < len(tag) && tag[i] > ' ' && tag[i] != ':' && tag[i] != '"' {
			i++
		}
		if i == 0 || i+1 >= len(tag) || tag[i] != ':' || tag[i+1] != '"' {
			break
		}
		name := tag[:i]
		tag = tag[i+1:]
		i = 1
		for i < len(tag) && tag[i] != '"' {
			if tag[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(tag) {
			break
		}
		value := tag[1:i]
		tag = tag[i+1:]
		if name == key {
			return value, true
		}
	}
	return "", false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
