// Package df is the dataflow layer's unit-test fixture: small functions
// whose access, closure and allocation classifications the test asserts
// directly (no // want comments — this corpus tests the layer, not a pass).
package df

import "fmt"

type conf struct {
	A int
	B int
	C *int
}

func root() {
	helperA()
}

func helperA() {
	helperB()
}

func helperB() {}

func unreached() {}

func accesses(c conf) int {
	c.A = 0  // plain write
	c.B += 2 // compound: read + write
	return c.A + c.B
}

func wholeValue(c conf) {
	cc := c
	cc.C = nil
	fmt.Println(cc)
}

func sink(vs []int) []int { return vs }

func allocs(n int) []int {
	pre := make([]int, 0, n)
	pre = append(pre, n) // presized: not a site
	var grow []int
	grow = append(grow, n)       // growth site
	p := &conf{A: n}             // composite site
	s := []int{n}                // slice literal site
	f := func() int { return n } // capturing closure site
	_ = func() {}                // non-capturing: not a site
	var i interface{ M() }
	_ = i
	fmt.Println(n)         // interface conversion site (variadic ...any)
	m := map[int]int{n: n} // map literal site
	for k := range m {     // map range site
		_ = k
	}
	_ = p
	_ = f
	return sink(s)
}
