package dataflow

import (
	"go/ast"
	"go/types"
	"testing"

	"clustersim/internal/analysis"
)

// loadFixture type-checks the df fixture package and returns its unit.
func loadFixture(t *testing.T) *analysis.Unit {
	t.Helper()
	loader := analysis.NewFixtureLoader("testdata/src")
	units, err := loader.Load("df")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if len(units) == 0 {
		t.Fatal("no units loaded")
	}
	return units[0]
}

func declByName(g *Graph, name string) *ast.FuncDecl {
	for _, fd := range g.Decls() {
		if fd.Name.Name == name {
			return fd
		}
	}
	return nil
}

func TestClosure(t *testing.T) {
	u := loadFixture(t)
	g := NewGraph(u.Info, u.Files)
	got := g.Closure(declByName(g, "root"))
	names := make(map[string]bool)
	for _, fd := range got {
		names[fd.Name.Name] = true
	}
	for _, want := range []string{"root", "helperA", "helperB"} {
		if !names[want] {
			t.Errorf("closure(root) is missing %s (have %v)", want, names)
		}
	}
	if names["unreached"] {
		t.Errorf("closure(root) wrongly includes unreached")
	}
}

func TestFieldAccesses(t *testing.T) {
	u := loadFixture(t)
	g := NewGraph(u.Info, u.Files)
	fd := declByName(g, "accesses")
	var reads, writes []string
	for _, a := range FieldAccesses(u.Info, fd) {
		switch a.Kind {
		case Read:
			reads = append(reads, a.Field.Name())
		case Write:
			writes = append(writes, a.Field.Name())
		}
	}
	has := func(s []string, v string) bool {
		for _, x := range s {
			if x == v {
				return true
			}
		}
		return false
	}
	if !has(writes, "A") || !has(writes, "B") {
		t.Errorf("writes = %v, want A and B", writes)
	}
	if !has(reads, "A") || !has(reads, "B") {
		t.Errorf("reads = %v, want A (rvalue) and B (compound)", reads)
	}
	// c.A = 0 must not register a Read for that selector alone — the read
	// of A comes only from the return expression.
	nA := 0
	for _, r := range reads {
		if r == "A" {
			nA++
		}
	}
	if nA != 1 {
		t.Errorf("A read %d times, want exactly 1 (the return expression)", nA)
	}
}

func TestValueUses(t *testing.T) {
	u := loadFixture(t)
	g := NewGraph(u.Info, u.Files)
	fd := declByName(g, "wholeValue")
	var confType types.Type
	ast.Inspect(fd, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "cc" {
			if obj := u.Info.Defs[id]; obj != nil {
				confType = obj.Type()
			}
		}
		return true
	})
	if confType == nil {
		t.Fatal("could not resolve conf type")
	}
	uses := ValueUses(u.Info, fd, confType)
	if len(uses) != 1 {
		t.Fatalf("ValueUses = %d, want 1 (fmt.Println(cc))", len(uses))
	}
	if uses[0].Root == nil || uses[0].Root.Name() != "cc" {
		t.Errorf("use root = %v, want cc", uses[0].Root)
	}
	if uses[0].Callee == nil || uses[0].Callee.Name() != "Println" {
		t.Errorf("use callee = %v, want fmt.Println", uses[0].Callee)
	}
}

func TestAllocSites(t *testing.T) {
	u := loadFixture(t)
	g := NewGraph(u.Info, u.Files)
	fd := declByName(g, "allocs")
	counts := make(map[AllocKind]int)
	for _, s := range AllocSites(u.Info, fd) {
		counts[s.Kind]++
	}
	// append growth: one site (the presized append is exempt).
	if counts[AllocAppend] != 1 {
		t.Errorf("AllocAppend = %d, want 1", counts[AllocAppend])
	}
	// &conf{...}, []int{...}, map literal.
	if counts[AllocComposite] != 3 {
		t.Errorf("AllocComposite = %d, want 3 (&conf, []int, map)", counts[AllocComposite])
	}
	if counts[AllocClosure] != 1 {
		t.Errorf("AllocClosure = %d, want 1 (only the capturing literal)", counts[AllocClosure])
	}
	if counts[AllocIface] < 1 {
		t.Errorf("AllocIface = %d, want >= 1 (fmt.Println boxes its argument)", counts[AllocIface])
	}
	if counts[AllocMapRange] != 1 {
		t.Errorf("AllocMapRange = %d, want 1", counts[AllocMapRange])
	}
}
