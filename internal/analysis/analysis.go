// Package analysis is a self-contained static-analysis framework for the
// simulator's own invariants. It mirrors the shape of
// golang.org/x/tools/go/analysis — an Analyzer owns a Run function that
// inspects one type-checked package through a Pass and reports Diagnostics —
// but is built purely on the standard library so the linter needs no module
// downloads: packages are loaded and type-checked from source (see load.go).
//
// The framework also owns the //simlint: annotation grammar shared by every
// pass:
//
//	//simlint:allow <rule> <reason>
//	//simlint:nostate <reason>
//	//simlint:nokey <reason>
//	//simlint:alloc <reason>
//	//simlint:hot [note]
//
// An allow comment suppresses diagnostics of analyzer <rule> on its own
// line, or — when it stands alone on a line — on the line directly below
// it. A nostate comment exempts a struct field from the snapstate pass, a
// nokey comment exempts a struct field from the cachekey pass, and an
// alloc comment suppresses the hotalloc pass on its line (shorthand for
// //simlint:allow hotalloc). A hot comment marks the function declared on
// (or directly below) its line as a hot-path root for the hotalloc pass;
// it designates rather than suppresses, so its trailing note is optional.
// Every suppressing form requires a non-empty reason; a malformed
// annotation is itself reported, under the reserved rule name "simlint",
// and cannot be suppressed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass; it is the <rule> accepted by
	// //simlint:allow comments and the prefix printed on diagnostics.
	Name string
	// Doc is a one-paragraph description shown by `simlint -list`.
	Doc string
	// Run inspects a single package and reports findings through
	// pass.Report. Returning an error aborts the whole simlint run; a
	// finding is a diagnostic, not an error.
	Run func(*Pass) error
}

// A Pass connects an Analyzer to the package unit under inspection.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the parsed files of the unit. For a test unit this
	// includes the base files (the type checker needs them), but only
	// diagnostics landing in the unit's report set survive (see Run).
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// TestUnit is true when the unit includes _test.go files. Passes that
	// only constrain production code (nopanic) skip such units.
	TestUnit bool

	report func(Diagnostic)
	// ix caches the unit's annotation index; shared across analyzers by
	// Run, built lazily when analysistest drives a single Pass directly.
	ix *annotationIndex
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned in the original source.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// AnnotationPrefix starts every simlint annotation comment.
const AnnotationPrefix = "//simlint:"

// An annotation is one parsed //simlint: comment.
type annotation struct {
	verb   string // "allow", "nostate", "nokey", "alloc" or "hot"
	rule   string // analyzer name (allow only)
	reason string
	pos    token.Position
	// standalone is true when the comment occupies its own line, so it
	// also covers the line below.
	standalone bool
}

// parseAnnotation parses one comment, returning ok=false when the comment
// is not a simlint annotation at all. A malformed annotation (unknown verb,
// missing rule or reason) yields ok=true with a non-nil err.
func parseAnnotation(text string) (verb, rule, reason string, ok bool, err error) {
	if !strings.HasPrefix(text, AnnotationPrefix) {
		return "", "", "", false, nil
	}
	body := strings.TrimPrefix(text, AnnotationPrefix)
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return "", "", "", true, fmt.Errorf("empty simlint annotation")
	}
	switch fields[0] {
	case "allow":
		if len(fields) < 3 {
			return "", "", "", true, fmt.Errorf(
				"simlint:allow needs a rule and a reason: //simlint:allow <rule> <reason>")
		}
		return "allow", fields[1], strings.Join(fields[2:], " "), true, nil
	case "nostate", "nokey", "alloc":
		if len(fields) < 2 {
			return "", "", "", true, fmt.Errorf(
				"simlint:%s needs a reason: //simlint:%s <reason>", fields[0], fields[0])
		}
		return fields[0], "", strings.Join(fields[1:], " "), true, nil
	case "hot":
		// A designation, not a suppression: the note is optional.
		return "hot", "", strings.Join(fields[1:], " "), true, nil
	default:
		return "", "", "", true, fmt.Errorf(
			"unknown simlint annotation %q (want allow, nostate, nokey, alloc or hot)", fields[0])
	}
}

// annotationIndex holds every well-formed annotation of a unit, keyed for
// the lookups passes need: allow-by-line, field exemptions by line, and
// hot-root designations by line.
type annotationIndex struct {
	// allow maps file:line to the set of allowed rules there.
	allow map[string]map[string]bool
	// nostate maps file:line to the exemption reason.
	nostate map[string]string
	// nokey maps file:line to the cachekey exemption reason.
	nokey map[string]string
	// hot maps file:line to true where a //simlint:hot marker designates
	// the function declared there as a hot-path root.
	hot map[string]bool
	// malformed collects broken annotations as diagnostics.
	malformed []Diagnostic
}

func lineKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

// indexAnnotations scans all comments of the given files.
func indexAnnotations(fset *token.FileSet, files []*ast.File) *annotationIndex {
	ix := &annotationIndex{
		allow:   make(map[string]map[string]bool),
		nostate: make(map[string]string),
		nokey:   make(map[string]string),
		hot:     make(map[string]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				verb, rule, reason, ok, err := parseAnnotation(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				if err != nil {
					ix.malformed = append(ix.malformed, Diagnostic{
						Analyzer: "simlint",
						Pos:      pos,
						Message:  err.Error(),
					})
					continue
				}
				standalone := pos.Column == firstColumnOnLine(fset, f, c)
				lines := []int{pos.Line}
				if standalone {
					lines = append(lines, pos.Line+1)
				}
				for _, ln := range lines {
					key := lineKey(pos.Filename, ln)
					switch verb {
					case "allow":
						if ix.allow[key] == nil {
							ix.allow[key] = make(map[string]bool)
						}
						ix.allow[key][rule] = true
					case "alloc":
						// Per-site hotalloc opt-out: shorthand for
						// //simlint:allow hotalloc <reason>.
						if ix.allow[key] == nil {
							ix.allow[key] = make(map[string]bool)
						}
						ix.allow[key]["hotalloc"] = true
					case "nostate":
						ix.nostate[key] = reason
					case "nokey":
						ix.nokey[key] = reason
					case "hot":
						ix.hot[key] = true
					}
				}
			}
		}
	}
	return ix
}

// firstColumnOnLine reports the comment's column if it begins its line.
// Comments trailing code share the line with that code, so the code token
// occupies an earlier column; we detect "standalone" by checking whether
// any declaration or statement token of the file starts before the comment
// on the same line. Walking tokens precisely is overkill: end-of-line
// comments in gofmt'd code always follow code at column > 1 while
// standalone comments are indented like the block they document, so we
// treat a comment as standalone when no node of the file both starts on
// the comment's line and precedes it.
func firstColumnOnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) int {
	cpos := fset.Position(c.Pos())
	first := cpos.Column
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		npos := fset.Position(n.Pos())
		if npos.Line == cpos.Line && npos.Column < first {
			first = npos.Column
		}
		// Descend only into nodes spanning the comment's line.
		return fset.Position(n.Pos()).Line <= cpos.Line && fset.Position(n.End()).Line >= cpos.Line
	})
	return first
}

// Nostate reports whether the line holding pos (or the line above it, for a
// standalone comment) carries a //simlint:nostate exemption, and returns
// its reason.
func (p *Pass) Nostate(pos token.Pos) (string, bool) {
	position := p.Fset.Position(pos)
	reason, ok := p.annotations().nostate[lineKey(position.Filename, position.Line)]
	return reason, ok
}

// Nokey reports whether the line holding pos carries a //simlint:nokey
// exemption (a field deliberately excluded from its struct's cache-key
// fingerprint), and returns its reason.
func (p *Pass) Nokey(pos token.Pos) (string, bool) {
	position := p.Fset.Position(pos)
	reason, ok := p.annotations().nokey[lineKey(position.Filename, position.Line)]
	return reason, ok
}

// HotRoot reports whether the line holding pos carries a //simlint:hot
// designation (the hotalloc pass roots its call-graph closure there).
func (p *Pass) HotRoot(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	return p.annotations().hot[lineKey(position.Filename, position.Line)]
}

// annotations lazily builds the unit's annotation index. The index is
// attached to the unit (shared across analyzers) by Run.
func (p *Pass) annotations() *annotationIndex {
	if p.ix == nil {
		p.ix = indexAnnotations(p.Fset, p.Files)
	}
	return p.ix
}

// Run executes every analyzer over every package unit and returns the
// surviving diagnostics sorted by position. Suppressed findings
// (//simlint:allow on the diagnostic's line) are dropped; malformed
// annotations are appended as "simlint" diagnostics. Only diagnostics
// positioned in a unit's report set (the files the unit introduced) are
// kept, so base files are not double-reported through test units.
func Run(units []*Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	seenMalformed := make(map[string]bool)
	for _, u := range units {
		ix := indexAnnotations(u.Fset, u.Files)
		for _, d := range ix.malformed {
			key := d.Pos.String()
			if !seenMalformed[key] && u.reportable(d.Pos.Filename) {
				seenMalformed[key] = true
				diags = append(diags, d)
			}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     u.Fset,
				Files:    u.Files,
				Pkg:      u.Types,
				Info:     u.Info,
				TestUnit: u.TestUnit,
				ix:       ix,
			}
			pass.report = func(d Diagnostic) {
				if !u.reportable(d.Pos.Filename) {
					return
				}
				if rules := ix.allow[lineKey(d.Pos.Filename, d.Pos.Line)]; rules[d.Analyzer] {
					return
				}
				diags = append(diags, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, u.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }
