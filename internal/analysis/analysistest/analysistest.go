// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against expectations written in the fixtures themselves,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A fixture corpus lives under <testdata>/src/<importpath>/*.go. Each line
// that should trigger a finding carries a trailing expectation comment:
//
//	m := map[int]int{}
//	for k := range m { // want `iterating a map`
//		...
//	}
//
// The backquoted strings are regular expressions matched against the
// diagnostic message; several expectations on one line mean several
// diagnostics on that line. Lines with no want comment must produce no
// diagnostics — annotated exemptions (//simlint:allow ...) therefore prove
// themselves by the absence of a want.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"clustersim/internal/analysis"
)

var wantRe = regexp.MustCompile("`([^`]*)`")

// Run loads each fixture package under dir/src, applies the analyzer, and
// reports mismatches between produced diagnostics and want expectations
// through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := analysis.NewFixtureLoader(filepath.Join(dir, "src"))
	for _, path := range pkgPaths {
		units, err := loader.Load(path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		diags, err := analysis.Run(units, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		checkExpectations(t, path, units, diags)
	}
}

type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// checkExpectations matches diagnostics against want comments, line by line.
func checkExpectations(t *testing.T, path string, units []*analysis.Unit, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[string][]*expectation) // file:line -> expectations
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := c.Text
					idx := strings.Index(text, "want `")
					if idx < 0 {
						continue
					}
					pos := u.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, m := range wantRe.FindAllStringSubmatch(text[idx:], -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Errorf("%s: bad want regexp %q: %v", key, m[1], err)
							continue
						}
						wants[key] = append(wants[key], &expectation{re: re, raw: m[1]})
					}
				}
			}
		}
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s: %s", key, d.Analyzer, d.Message)
		}
	}
	keys := make([]string, 0, len(wants))
	for key := range wants {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, w := range wants[key] {
			if !w.matched {
				t.Errorf("%s (%s): expected diagnostic matching %q, got none", key, path, w.raw)
			}
		}
	}
}
