package workload

import "clustersim/internal/snap"

// Checkpoint support. The engine's compiled phases are static code derived
// deterministically from (program, seed) by the constructor and are never
// serialized; a snapshot carries only the dynamic cursor into that code —
// RNG state, instruction sequence number, phase/block/iteration position,
// call state, and the per-chain dependence and address cursors.

// SaveState implements snap.Stater.
func (e *engine) SaveState(w *snap.Writer) {
	w.Mark("workload")
	st := e.r.State()
	w.U64(st[0])
	w.U64(st[1])
	w.U64(st[2])
	w.U64(st[3])
	w.U64(e.seq)
	w.Int(e.phaseIdx)
	w.I64(e.remaining)
	w.Int(e.blk)
	w.Int(e.idx)
	w.Int(e.iter)
	w.Int(e.itersThis)
	w.Int(e.blocksDone)
	w.Bool(e.pendingCall)
	w.U64(e.callPC)
	w.Bool(e.inFn)
	w.Int(e.fnIdx)
	w.Int(e.fnPos)
	w.U64(e.retPC)
	w.U64s(e.chainLast)
	w.U64s(e.lastLoad)
	w.U64s(e.cursor)
	w.U64s(e.addrBase)
	w.U64(e.regionLen)
}

// LoadState implements snap.Stater. The receiver must have been constructed
// for the same (benchmark, seed) pair that produced the snapshot; position
// fields are range-checked against the compiled code so a mismatched
// snapshot fails instead of indexing out of bounds.
func (e *engine) LoadState(r *snap.Reader) {
	r.Mark("workload")
	var st [4]uint64
	st[0] = r.U64()
	st[1] = r.U64()
	st[2] = r.U64()
	st[3] = r.U64()
	if r.Err() == nil {
		if err := e.r.SetState(st); err != nil {
			r.Fail(err)
			return
		}
	}
	e.seq = r.U64()
	phaseIdx := r.Int()
	remaining := r.I64()
	blk := r.Int()
	idx := r.Int()
	iter := r.Int()
	itersThis := r.Int()
	blocksDone := r.Int()
	pendingCall := r.Bool()
	callPC := r.U64()
	inFn := r.Bool()
	fnIdx := r.Int()
	fnPos := r.Int()
	retPC := r.U64()
	chainLast := r.U64s()
	lastLoad := r.U64s()
	cursor := r.U64s()
	addrBase := r.U64s()
	regionLen := r.U64()
	if r.Err() != nil {
		return
	}
	if phaseIdx < 0 || phaseIdx >= len(e.compiled) {
		r.Failf("workload: snapshot phaseIdx %d out of range [0,%d)", phaseIdx, len(e.compiled))
		return
	}
	cp := &e.compiled[phaseIdx]
	if blk < 0 || blk >= len(cp.blocks) {
		r.Failf("workload: snapshot block %d out of range [0,%d)", blk, len(cp.blocks))
		return
	}
	if idx < 0 || idx >= len(cp.blocks[blk]) {
		r.Failf("workload: snapshot block index %d out of range [0,%d)", idx, len(cp.blocks[blk]))
		return
	}
	if inFn {
		if fnIdx < 0 || fnIdx >= len(cp.fns) {
			r.Failf("workload: snapshot fnIdx %d out of range [0,%d)", fnIdx, len(cp.fns))
			return
		}
		if fnPos < 0 || fnPos >= len(cp.fns[fnIdx]) {
			r.Failf("workload: snapshot fnPos %d out of range [0,%d)", fnPos, len(cp.fns[fnIdx]))
			return
		}
	}
	chains := e.prog.phases[phaseIdx].k.Chains
	if chains < 1 {
		chains = 1
	}
	if len(chainLast) != chains || len(lastLoad) != chains ||
		len(cursor) != chains || len(addrBase) != chains {
		r.Failf("workload: snapshot chain state sized %d, phase has %d chains", len(chainLast), chains)
		return
	}
	e.phaseIdx = phaseIdx
	e.remaining = remaining
	e.blk, e.idx, e.iter = blk, idx, iter
	e.itersThis, e.blocksDone = itersThis, blocksDone
	e.pendingCall, e.callPC = pendingCall, callPC
	e.inFn, e.fnIdx, e.fnPos, e.retPC = inFn, fnIdx, fnPos, retPC
	e.chainLast, e.lastLoad = chainLast, lastLoad
	e.cursor, e.addrBase = cursor, addrBase
	e.regionLen = regionLen
}

var _ snap.Stater = (*engine)(nil)
