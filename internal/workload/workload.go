// Package workload synthesizes the instruction streams the simulator runs.
//
// The paper evaluates nine programs — four SPEC2K integer (crafty, gzip,
// parser, vpr), three SPEC2K floating-point (galgel, mgrid, swim) and two
// Mediabench (cjpeg, djpeg) — none of which can be run here (no Alpha
// binaries, no Simplescalar, no reference inputs). The dynamic-tuning
// algorithms under study, however, observe a program only through a handful
// of metrics: IPC, branch and memory-reference frequency, branch
// predictability, the degree of *distant ILP* (instructions issued while far
// behind the ROB head) and how all of those vary over time (phase
// behaviour). This package substitutes each benchmark with a deterministic
// synthetic program engineered to match the paper's published
// characteristics for that benchmark:
//
//   - Table 3: baseline IPC class and branch-mispredict interval;
//   - Table 4: phase structure (minimum stable interval length and
//     instability at 10K-instruction intervals);
//   - §4 narrative: which programs have distant ILP (djpeg, swim, mgrid,
//     galgel), which alternate between distant-ILP and low-ILP phases
//     (gzip), and which have fine-grained phases (djpeg, cjpeg).
//
// Phase lengths are scaled ~10x down from the paper's (our simulation
// windows are millions, not hundreds of millions, of instructions); the
// ratio of phase length to measurement interval — the quantity the
// algorithms are sensitive to — is preserved.
//
// A program is a cyclic sequence of phases; each phase is a set of
// statically compiled basic blocks (stable PCs, so branch/bank/
// reconfiguration predictors can learn) executed as loops, with dynamic
// dependence distances that realize a target number of parallel dependence
// chains. See engine.go for the execution model.
package workload

import (
	"fmt"
	"sort"

	"clustersim/internal/isa"
)

// Generator produces a deterministic committed-path instruction stream.
// Implementations are not safe for concurrent use.
type Generator interface {
	// Name returns the benchmark name.
	Name() string
	// Next fills in with the next dynamic instruction.
	Next(in *isa.Instruction)
	// Reset rewinds the stream to the beginning.
	Reset()
}

// PaperData records the published characteristics a synthetic benchmark
// targets, for the EXPERIMENTS.md paper-vs-measured comparison.
type PaperData struct {
	// Suite is the benchmark's origin (SPEC2k Int, SPEC2k FP, Mediabench).
	Suite string
	// BaseIPC is Table 3's monolithic-processor IPC.
	BaseIPC float64
	// MispredictInterval is Table 3's instructions per branch mispredict.
	MispredictInterval float64
	// MinStableInterval is Table 4's minimum acceptable interval length
	// (instructions), in the paper's (unscaled) terms.
	MinStableInterval float64
	// InstabilityAt10K is Table 4's instability factor (percent) for a
	// 10K-instruction interval.
	InstabilityAt10K float64
	// PrefersWide reports whether Figure 3 shows the benchmark gaining
	// from 16 clusters (distant ILP).
	PrefersWide bool
}

// Benchmarks returns the sorted benchmark names.
func Benchmarks() []string {
	names := make([]string, 0, len(programs))
	for name := range programs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Paper returns the published characteristics for a benchmark name.
func Paper(name string) (PaperData, bool) {
	p, ok := paperData[name]
	return p, ok
}

// New returns the named benchmark's generator, seeded deterministically.
// The same (name, seed) pair always yields the identical stream.
func New(name string, seed uint64) (Generator, error) {
	p, ok := programs[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Benchmarks())
	}
	return newEngine(p, seed), nil
}

// MustNew is New but panics on an unknown name.
func MustNew(name string, seed uint64) Generator {
	g, err := New(name, seed)
	if err != nil {
		panic(err)
	}
	return g
}
