package workload

// This file defines the nine synthetic benchmarks, one per program in the
// paper's Table 3. Each kernel's parameters are calibrated (see
// TestCalibrationSweep in internal/pipeline) against the paper's published
// characteristics: Chains sets the ILP class, LoopIters/RandBranchFrac set
// the branch-mispredict interval, Footprint/RandomAddr/Chase set memory
// behaviour, AddrDepFrac sets how much of the memory latency lands on the
// critical path, and the phase list reproduces the program's Table 4 phase
// structure (lengths scaled ~10x down to match our shorter simulation
// windows).

var paperData = map[string]PaperData{
	"cjpeg":  {Suite: "Mediabench", BaseIPC: 2.06, MispredictInterval: 82, MinStableInterval: 40e3, InstabilityAt10K: 9, PrefersWide: false},
	"crafty": {Suite: "SPEC2k Int", BaseIPC: 1.85, MispredictInterval: 118, MinStableInterval: 320e3, InstabilityAt10K: 30, PrefersWide: false},
	"djpeg":  {Suite: "Mediabench", BaseIPC: 4.07, MispredictInterval: 249, MinStableInterval: 1.28e6, InstabilityAt10K: 31, PrefersWide: true},
	"galgel": {Suite: "SPEC2k FP", BaseIPC: 3.43, MispredictInterval: 88, MinStableInterval: 10e3, InstabilityAt10K: 1, PrefersWide: true},
	"gzip":   {Suite: "SPEC2k Int", BaseIPC: 1.83, MispredictInterval: 87, MinStableInterval: 10e3, InstabilityAt10K: 4, PrefersWide: false},
	"mgrid":  {Suite: "SPEC2k FP", BaseIPC: 2.28, MispredictInterval: 8977, MinStableInterval: 10e3, InstabilityAt10K: 0, PrefersWide: true},
	"parser": {Suite: "SPEC2k Int", BaseIPC: 1.42, MispredictInterval: 88, MinStableInterval: 40e6, InstabilityAt10K: 12, PrefersWide: false},
	"swim":   {Suite: "SPEC2k FP", BaseIPC: 1.67, MispredictInterval: 22600, MinStableInterval: 10e3, InstabilityAt10K: 0, PrefersWide: true},
	"vpr":    {Suite: "SPEC2k Int", BaseIPC: 1.20, MispredictInterval: 171, MinStableInterval: 320e3, InstabilityAt10K: 14, PrefersWide: false},
}

var programs = map[string]program{
	// swim: loop-based FP with huge distant ILP; memory-bound (large
	// streaming arrays), near-perfectly-predictable branches (one
	// mispredict per ~22.6K-instruction loop exit). Uniform behaviour.
	"swim": {
		name: "swim",
		phases: []phaseSpec{
			{name: "stream", length: 1_000_000, k: kernel{
				Chains: 28, FP: true,
				LoadFrac: 0.28, StoreFrac: 0.14, BranchFrac: 0.02, MultFrac: 0.40,
				CrossFrac: 0.05, FreshFrac: 0.02,
				LoopBody: 100, LoopIters: 520,
				Stride: 8, Footprint: 8 << 20, AddrDepFrac: 0.10,
				StaticBlocks: 4,
			}},
		},
	},

	// mgrid: loop-based FP, distant ILP, working set mostly cache-
	// resident, ~9K instructions between mispredicts. Uniform behaviour.
	"mgrid": {
		name: "mgrid",
		phases: []phaseSpec{
			{name: "relax", length: 1_000_000, k: kernel{
				Chains: 24, FP: true,
				LoadFrac: 0.30, StoreFrac: 0.10, BranchFrac: 0.02, MultFrac: 0.25,
				CrossFrac: 0.06, FreshFrac: 0.02,
				LoopBody: 90, LoopIters: 220,
				Stride: 8, Footprint: 384 << 10, AddrDepFrac: 0.10,
				StaticBlocks: 6,
			}},
		},
	},

	// galgel: FP with distant ILP but branchy (a mispredict every ~88
	// instructions); small, cache-resident working set keeps branch
	// resolution fast and IPC high. Near-uniform.
	"galgel": {
		name: "galgel",
		phases: []phaseSpec{
			// Mispredicts come in bursts: long clean solver stretches
			// (where the window grows past 120 and wide machines win)
			// alternate with short branchy pivot searches. The average
			// matches Table 3's 88-instruction mispredict interval while
			// leaving distant ILP for Figure 3's scaling.
			{name: "solve", length: 3_600, k: kernel{
				Chains: 32, FP: true,
				LoadFrac: 0.25, StoreFrac: 0.08, BranchFrac: 0.06, MultFrac: 0.25,
				CrossFrac: 0.04, FreshFrac: 0.03,
				LoopBody: 60, LoopIters: 64,
				Stride: 8, Footprint: 192 << 10, AddrDepFrac: 0.08,
				StaticBlocks: 3,
			}},
			{name: "pivot", length: 1_300, k: kernel{
				Chains: 12, FP: true,
				LoadFrac: 0.26, StoreFrac: 0.08, BranchFrac: 0.14, MultFrac: 0.15,
				CrossFrac: 0.06, FreshFrac: 0.04,
				LoopBody: 30, LoopIters: 16,
				RandBranchFrac: 0.55, RandTakenProb: 0.5,
				Stride: 8, Footprint: 16 << 10, AddrDepFrac: 0.10,
				StaticBlocks: 2,
			}},
		},
	},

	// djpeg: the highest-IPC program; alternates fine-grained sub-phases
	// (IDCT-like high-ILP blocks vs. low-ILP bookkeeping), giving 31%
	// instability at 10K intervals but stability at ~1.28M. Integer mix
	// with heavy multiplies.
	"djpeg": {
		name: "djpeg",
		phases: []phaseSpec{
			{name: "idct", length: 6_000, k: kernel{
				Chains:   40,
				LoadFrac: 0.22, StoreFrac: 0.10, BranchFrac: 0.08, MultFrac: 0.30,
				CrossFrac: 0.04, FreshFrac: 0.04,
				LoopBody: 64, LoopIters: 64,
				RandBranchFrac: 0.10, RandTakenProb: 0.5,
				Stride: 8, Footprint: 128 << 10, AddrDepFrac: 0.10,
				StaticBlocks: 3,
			}},
			{name: "huffman", length: 3_000, k: kernel{
				Chains:   8,
				LoadFrac: 0.28, StoreFrac: 0.08, BranchFrac: 0.12, MultFrac: 0.05,
				CrossFrac: 0.10, FreshFrac: 0.05,
				LoopBody: 24, LoopIters: 12, IterJitter: 4,
				RandBranchFrac: 0.08, RandTakenProb: 0.4,
				Stride: 8, Footprint: 32 << 10, AddrDepFrac: 0.50,
				StaticBlocks: 3,
			}},
		},
	},

	// cjpeg: moderate ILP with smallish alternating phases (stable only
	// beyond ~40K-instruction intervals).
	"cjpeg": {
		name: "cjpeg",
		phases: []phaseSpec{
			{name: "fdct", length: 30_000, k: kernel{
				Chains:   24,
				LoadFrac: 0.24, StoreFrac: 0.10, BranchFrac: 0.08, MultFrac: 0.25,
				CrossFrac: 0.04, FreshFrac: 0.04,
				LoopBody: 48, LoopIters: 40,
				RandBranchFrac: 0.14, RandTakenProb: 0.5,
				Stride: 8, Footprint: 256 << 10, AddrDepFrac: 0.12,
				StaticBlocks: 3,
			}},
			{name: "quant", length: 12_000, k: kernel{
				Chains:   5,
				LoadFrac: 0.30, StoreFrac: 0.10, BranchFrac: 0.14, MultFrac: 0.10,
				CrossFrac: 0.12, FreshFrac: 0.05,
				LoopBody: 20, LoopIters: 10, IterJitter: 3,
				RandBranchFrac: 0.16, RandTakenProb: 0.5,
				Stride: 8, Footprint: 32 << 10, AddrDepFrac: 0.55,
				StaticBlocks: 3,
			}},
		},
	},

	// gzip: prolonged phases, some with distant ILP (match scanning) and
	// some without (literal/output handling) — the program where dynamic
	// reconfiguration beats every static configuration.
	"gzip": {
		name: "gzip",
		phases: []phaseSpec{
			{name: "deflate-ilp", length: 400_000, k: kernel{
				Chains:   18,
				LoadFrac: 0.26, StoreFrac: 0.08, BranchFrac: 0.10, MultFrac: 0.05,
				CrossFrac: 0.04, FreshFrac: 0.03,
				LoopBody: 56, LoopIters: 40,
				RandBranchFrac: 0.08, RandTakenProb: 0.5,
				Stride: 8, Footprint: 512 << 10, AddrDepFrac: 0.12,
				StaticBlocks: 4,
			}},
			{name: "output", length: 400_000, k: kernel{
				Chains:   4,
				LoadFrac: 0.28, StoreFrac: 0.12, BranchFrac: 0.15, MultFrac: 0.02,
				CrossFrac: 0.15, FreshFrac: 0.05,
				LoopBody: 20, LoopIters: 8, IterJitter: 3,
				RandBranchFrac: 0.17, RandTakenProb: 0.5,
				Stride: 8, Footprint: 24 << 10, AddrDepFrac: 0.65,
				StaticBlocks: 4,
			}},
		},
	},

	// crafty: call-heavy integer code with highly variable short phases
	// (30% instability at 10K; stable only beyond ~320K); board/hash
	// data mostly cache-resident.
	"crafty": {
		name: "crafty",
		phases: []phaseSpec{
			{name: "search", length: 40_000, k: kernel{
				Chains:   6,
				LoadFrac: 0.26, StoreFrac: 0.08, BranchFrac: 0.14, MultFrac: 0.04,
				CrossFrac: 0.12, FreshFrac: 0.05,
				LoopBody: 30, LoopIters: 13, IterJitter: 4,
				RandBranchFrac: 0.06, RandTakenProb: 0.4,
				RandomAddr: true, Footprint: 28 << 10, AddrDepFrac: 0.45,
				StaticBlocks: 5, CallEvery: 2, Funcs: 3,
			}},
			{name: "evaluate", length: 25_000, k: kernel{
				Chains:   20,
				LoadFrac: 0.30, StoreFrac: 0.06, BranchFrac: 0.12, MultFrac: 0.06,
				CrossFrac: 0.05, FreshFrac: 0.04,
				LoopBody: 40, LoopIters: 17, IterJitter: 3,
				RandBranchFrac: 0.04, RandTakenProb: 0.4,
				Stride: 8, Footprint: 384 << 10, AddrDepFrac: 0.12,
				StaticBlocks: 4, CallEvery: 3, Funcs: 2,
			}},
			{name: "movegen", length: 50_000, k: kernel{
				Chains:   4,
				LoadFrac: 0.24, StoreFrac: 0.10, BranchFrac: 0.16, MultFrac: 0.02,
				CrossFrac: 0.14, FreshFrac: 0.06,
				LoopBody: 24, LoopIters: 11, IterJitter: 3,
				RandBranchFrac: 0.07, RandTakenProb: 0.45,
				RandomAddr: true, Footprint: 24 << 10, AddrDepFrac: 0.50,
				StaticBlocks: 5, CallEvery: 2, Funcs: 3,
			}},
			{name: "hash", length: 30_000, k: kernel{
				Chains:   8,
				LoadFrac: 0.32, StoreFrac: 0.08, BranchFrac: 0.12, MultFrac: 0.08,
				CrossFrac: 0.06, FreshFrac: 0.04,
				RandomAddr: true, Footprint: 96 << 10, AddrDepFrac: 0.30,
				LoopBody: 36, LoopIters: 15, IterJitter: 2,
				RandBranchFrac: 0.04, RandTakenProb: 0.4,
				StaticBlocks: 4, CallEvery: 4, Funcs: 2,
			}},
		},
	},

	// parser: input-dependent behaviour with very long irregular phases
	// (the paper's 40M minimum interval, scaled to ~4M here); dictionary
	// lookups pointer-chase through a mostly cache-resident working set.
	"parser": {
		name: "parser",
		phases: []phaseSpec{
			{name: "tokenize", length: 1_500_000, k: kernel{
				Chains:   5,
				LoadFrac: 0.28, StoreFrac: 0.08, BranchFrac: 0.16, MultFrac: 0.02,
				CrossFrac: 0.08, FreshFrac: 0.05,
				LoopBody: 24, LoopIters: 12, IterJitter: 2,
				RandBranchFrac: 0.06, RandTakenProb: 0.5,
				RandomAddr: true, Footprint: 112 << 10, AddrDepFrac: 0.50,
				StaticBlocks: 4,
			}},
			{name: "scan", length: 150_000, k: kernel{
				Chains:   20,
				LoadFrac: 0.28, StoreFrac: 0.06, BranchFrac: 0.10, MultFrac: 0.04,
				CrossFrac: 0.04, FreshFrac: 0.04,
				LoopBody: 40, LoopIters: 24,
				RandBranchFrac: 0.05, RandTakenProb: 0.5,
				Stride: 8, Footprint: 512 << 10, AddrDepFrac: 0.12,
				StaticBlocks: 3,
			}},
			{name: "link", length: 1_000_000, k: kernel{
				Chains:   6,
				LoadFrac: 0.30, StoreFrac: 0.06, BranchFrac: 0.16, MultFrac: 0.02,
				CrossFrac: 0.06, FreshFrac: 0.04,
				LoopBody: 20, LoopIters: 9, IterJitter: 2,
				RandBranchFrac: 0.07, RandTakenProb: 0.5,
				RandomAddr: true, Chase: true, Footprint: 40 << 10,
				StaticBlocks: 4,
			}},
			{name: "prune", length: 1_500_000, k: kernel{
				Chains:   5,
				LoadFrac: 0.26, StoreFrac: 0.10, BranchFrac: 0.14, MultFrac: 0.03,
				CrossFrac: 0.09, FreshFrac: 0.05,
				LoopBody: 28, LoopIters: 14, IterJitter: 3,
				RandBranchFrac: 0.055, RandTakenProb: 0.45,
				RandomAddr: true, Footprint: 112 << 10, AddrDepFrac: 0.50,
				StaticBlocks: 4,
			}},
		},
	},

	// vpr: the lowest-IPC program — few chains, random placement/routing
	// table accesses, moderate mispredict rate, medium-length phases.
	"vpr": {
		name: "vpr",
		phases: []phaseSpec{
			{name: "place", length: 80_000, k: kernel{
				Chains:   3,
				LoadFrac: 0.30, StoreFrac: 0.08, BranchFrac: 0.11, MultFrac: 0.03,
				CrossFrac: 0.10, FreshFrac: 0.04,
				LoopBody: 26, LoopIters: 13, IterJitter: 3,
				RandBranchFrac: 0.035, RandTakenProb: 0.5,
				RandomAddr: true, Footprint: 64 << 10, AddrDepFrac: 0.50,
				StaticBlocks: 4,
			}},
			{name: "route", length: 60_000, k: kernel{
				Chains:   14,
				LoadFrac: 0.28, StoreFrac: 0.10, BranchFrac: 0.12, MultFrac: 0.03,
				CrossFrac: 0.06, FreshFrac: 0.05,
				LoopBody: 30, LoopIters: 17, IterJitter: 3,
				RandBranchFrac: 0.03, RandTakenProb: 0.5,
				RandomAddr: true, Footprint: 192 << 10, AddrDepFrac: 0.20,
				StaticBlocks: 4,
			}},
		},
	},
}
