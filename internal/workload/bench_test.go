package workload

import (
	"sort"
	"testing"
)

// sortedKeys returns a map's keys in sorted order so test sweeps iterate
// (and report failures) deterministically.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestProgramDefinitionsSane validates every benchmark's kernel parameters
// structurally, so a mistyped constant fails fast rather than producing a
// silently miscalibrated program.
func TestProgramDefinitionsSane(t *testing.T) {
	for _, name := range sortedKeys(programs) {
		prog := programs[name]
		if prog.name != name {
			t.Errorf("%s: program name field %q mismatched", name, prog.name)
		}
		if len(prog.phases) == 0 {
			t.Errorf("%s: no phases", name)
			continue
		}
		for _, ph := range prog.phases {
			k := ph.k
			ctx := name + "/" + ph.name
			if ph.length <= 0 {
				t.Errorf("%s: non-positive phase length", ctx)
			}
			if k.Chains < 1 {
				t.Errorf("%s: chains %d", ctx, k.Chains)
			}
			if k.Chains > 64 {
				t.Errorf("%s: chains %d beyond plausible rename width", ctx, k.Chains)
			}
			if sum := k.LoadFrac + k.StoreFrac + k.BranchFrac; sum >= 0.9 {
				t.Errorf("%s: class fractions sum to %.2f, leaving no arithmetic", ctx, sum)
			}
			for _, f := range []struct {
				n string
				v float64
			}{
				{"LoadFrac", k.LoadFrac}, {"StoreFrac", k.StoreFrac},
				{"BranchFrac", k.BranchFrac}, {"MultFrac", k.MultFrac},
				{"CrossFrac", k.CrossFrac}, {"FreshFrac", k.FreshFrac},
				{"RandBranchFrac", k.RandBranchFrac}, {"RandTakenProb", k.RandTakenProb},
				{"AddrDepFrac", k.AddrDepFrac},
			} {
				if f.v < 0 || f.v > 1 {
					t.Errorf("%s: %s = %f out of [0,1]", ctx, f.n, f.v)
				}
			}
			if k.LoopBody < 4 || k.LoopBody > 1024 {
				t.Errorf("%s: LoopBody %d out of range", ctx, k.LoopBody)
			}
			if k.LoopIters < 2 {
				t.Errorf("%s: LoopIters %d", ctx, k.LoopIters)
			}
			if k.IterJitter >= k.LoopIters {
				t.Errorf("%s: jitter %d >= iters %d", ctx, k.IterJitter, k.LoopIters)
			}
			if !k.RandomAddr && k.Stride <= 0 {
				t.Errorf("%s: strided kernel with stride %d", ctx, k.Stride)
			}
			if k.Footprint <= 0 {
				t.Errorf("%s: footprint %d", ctx, k.Footprint)
			}
			if k.Chase && !k.RandomAddr {
				t.Errorf("%s: chase without random addressing", ctx)
			}
			if k.StaticBlocks < 1 {
				t.Errorf("%s: static blocks %d", ctx, k.StaticBlocks)
			}
			if k.CallEvery > 0 && k.Funcs < 1 {
				t.Errorf("%s: calls configured without functions", ctx)
			}
			// A block must fit its PC region.
			if k.LoopBody*4+16 >= blockStride {
				t.Errorf("%s: block overflows its PC region", ctx)
			}
		}
	}
}

// TestPaperDataSane validates the published-characteristics table.
func TestPaperDataSane(t *testing.T) {
	for _, name := range sortedKeys(paperData) {
		pd := paperData[name]
		if pd.Suite == "" {
			t.Errorf("%s: empty suite", name)
		}
		if pd.BaseIPC <= 0 || pd.BaseIPC > 8 {
			t.Errorf("%s: base IPC %f", name, pd.BaseIPC)
		}
		if pd.MispredictInterval < 10 {
			t.Errorf("%s: mispredict interval %f", name, pd.MispredictInterval)
		}
		if pd.MinStableInterval < 10_000 {
			t.Errorf("%s: min stable interval %f", name, pd.MinStableInterval)
		}
		if pd.InstabilityAt10K < 0 || pd.InstabilityAt10K > 100 {
			t.Errorf("%s: instability %f", name, pd.InstabilityAt10K)
		}
	}
}
