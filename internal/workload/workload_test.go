package workload

import (
	"testing"

	"clustersim/internal/isa"
)

func TestBenchmarksListed(t *testing.T) {
	names := Benchmarks()
	if len(names) != 9 {
		t.Fatalf("have %d benchmarks, want 9: %v", len(names), names)
	}
	for _, n := range names {
		if _, ok := Paper(n); !ok {
			t.Errorf("benchmark %s has no paper data", n)
		}
	}
	for _, n := range sortedKeys(paperData) {
		if _, ok := programs[n]; !ok {
			t.Errorf("paper data for %s has no program", n)
		}
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("doom", 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew("doom", 1)
}

func TestDeterminism(t *testing.T) {
	for _, name := range Benchmarks() {
		a := MustNew(name, 7)
		b := MustNew(name, 7)
		var x, y isa.Instruction
		for i := 0; i < 20000; i++ {
			a.Next(&x)
			b.Next(&y)
			if x != y {
				t.Fatalf("%s: streams diverged at %d: %v vs %v", name, i, x, y)
			}
		}
	}
}

func TestResetRewinds(t *testing.T) {
	g := MustNew("crafty", 3)
	var first [1000]isa.Instruction
	for i := range first {
		g.Next(&first[i])
	}
	g.Reset()
	var in isa.Instruction
	for i := range first {
		g.Next(&in)
		if in != first[i] {
			t.Fatalf("reset stream diverged at %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := MustNew("vpr", 1)
	b := MustNew("vpr", 2)
	var x, y isa.Instruction
	same := 0
	for i := 0; i < 5000; i++ {
		a.Next(&x)
		b.Next(&y)
		if x == y {
			same++
		}
	}
	if same == 5000 {
		t.Fatal("different seeds produced identical streams")
	}
}

// Every PC must map to exactly one operation class — static code.
func TestStaticClassPerPC(t *testing.T) {
	for _, name := range Benchmarks() {
		g := MustNew(name, 11)
		classes := make(map[uint64]isa.Class)
		var in isa.Instruction
		for i := 0; i < 100000; i++ {
			g.Next(&in)
			if c, ok := classes[in.PC]; ok {
				if c != in.Class {
					t.Fatalf("%s: PC %#x was %s now %s", name, in.PC, c, in.Class)
				}
			} else {
				classes[in.PC] = in.Class
			}
		}
		if len(classes) < 8 {
			t.Fatalf("%s: only %d static instructions seen", name, len(classes))
		}
	}
}

// Taken branch targets must be stable per PC (returns excepted — their
// target is the dynamic return address, which the RAS predicts).
func TestStableTargets(t *testing.T) {
	for _, name := range Benchmarks() {
		g := MustNew(name, 5)
		targets := make(map[uint64]uint64)
		var in isa.Instruction
		for i := 0; i < 100000; i++ {
			g.Next(&in)
			if !in.Class.IsCtrl() || !in.Taken || in.Class == isa.Return {
				continue
			}
			if tgt, ok := targets[in.PC]; ok && tgt != in.Target {
				t.Fatalf("%s: branch %#x target changed %#x -> %#x", name, in.PC, tgt, in.Target)
			}
			targets[in.PC] = in.Target
		}
	}
}

// Producer distances must point at instructions that actually write a
// destination register.
func TestDistancesPointAtProducers(t *testing.T) {
	for _, name := range Benchmarks() {
		g := MustNew(name, 9)
		const n = 50000
		hasDest := make([]bool, n)
		var in isa.Instruction
		for i := 0; i < n; i++ {
			g.Next(&in)
			hasDest[i] = in.HasDest
			for _, d := range []uint32{in.SrcDist1, in.SrcDist2} {
				if d == 0 {
					continue
				}
				j := i - int(d)
				if j < 0 {
					continue // producer before the measured window
				}
				if !hasDest[j] {
					t.Fatalf("%s: instr %d src dist %d points at non-producer", name, i, d)
				}
			}
		}
	}
}

func TestAddressesAlignedAndBounded(t *testing.T) {
	for _, name := range Benchmarks() {
		g := MustNew(name, 13)
		var in isa.Instruction
		for i := 0; i < 50000; i++ {
			g.Next(&in)
			if !in.Class.IsMem() {
				continue
			}
			if in.Addr%8 != 0 {
				t.Fatalf("%s: unaligned address %#x", name, in.Addr)
			}
			if in.Addr == 0 {
				t.Fatalf("%s: zero address", name)
			}
		}
	}
}

// profile summarizes a stream's instruction mix.
type profile struct {
	branches, mems, fps, calls, rets int
	total                            int
}

func profileStream(name string, n int) profile {
	g := MustNew(name, 21)
	var in isa.Instruction
	var p profile
	for i := 0; i < n; i++ {
		g.Next(&in)
		p.total++
		switch {
		case in.Class == isa.Call:
			p.calls++
		case in.Class == isa.Return:
			p.rets++
		case in.Class.IsCtrl():
			p.branches++
		case in.Class.IsMem():
			p.mems++
		case in.Class.IsFP():
			p.fps++
		}
	}
	return p
}

func TestInstructionMixPlausible(t *testing.T) {
	for _, name := range Benchmarks() {
		p := profileStream(name, 200000)
		bf := float64(p.branches+p.calls+p.rets) / float64(p.total)
		mf := float64(p.mems) / float64(p.total)
		if bf < 0.01 || bf > 0.35 {
			t.Errorf("%s: branch fraction %.3f implausible", name, bf)
		}
		if mf < 0.10 || mf > 0.60 {
			t.Errorf("%s: memory fraction %.3f implausible", name, mf)
		}
	}
}

func TestFPBenchmarksAreFP(t *testing.T) {
	for _, name := range []string{"swim", "mgrid", "galgel"} {
		p := profileStream(name, 100000)
		if float64(p.fps)/float64(p.total) < 0.2 {
			t.Errorf("%s: FP fraction %.3f too low", name, float64(p.fps)/float64(p.total))
		}
	}
	for _, name := range []string{"gzip", "vpr", "parser"} {
		p := profileStream(name, 100000)
		if p.fps > 0 {
			t.Errorf("%s: unexpected FP instructions (%d)", name, p.fps)
		}
	}
}

func TestCraftyHasCalls(t *testing.T) {
	p := profileStream("crafty", 200000)
	if p.calls == 0 || p.rets == 0 {
		t.Fatalf("crafty calls=%d rets=%d; want both nonzero", p.calls, p.rets)
	}
	if p.calls != p.rets {
		// Calls and returns pair up over a long window (off-by-one at
		// the window edge is fine).
		d := p.calls - p.rets
		if d < -1 || d > 1 {
			t.Fatalf("calls %d and returns %d unbalanced", p.calls, p.rets)
		}
	}
}

func TestPhasesCycle(t *testing.T) {
	// gzip alternates two 400K phases; over 1.7M instructions we must see
	// PCs from both phases' code regions.
	g := MustNew("gzip", 17)
	regions := make(map[uint64]bool)
	var in isa.Instruction
	for i := 0; i < 1_700_000; i++ {
		g.Next(&in)
		regions[in.PC/phaseStride] = true
	}
	if len(regions) < 2 {
		t.Fatalf("gzip visited %d phase regions, want >= 2", len(regions))
	}
}

func TestEndsBlockMarks(t *testing.T) {
	g := MustNew("mgrid", 2)
	var in isa.Instruction
	ctrlWithoutEnd := 0
	blocks := 0
	for i := 0; i < 50000; i++ {
		g.Next(&in)
		if in.Class.IsCtrl() {
			if !in.EndsBlock {
				ctrlWithoutEnd++
			}
			blocks++
		}
	}
	if ctrlWithoutEnd > 0 {
		t.Fatalf("%d control transfers without EndsBlock", ctrlWithoutEnd)
	}
	if blocks == 0 {
		t.Fatal("no control transfers at all")
	}
}
