package workload

import (
	"testing"
	"testing/quick"

	"clustersim/internal/isa"
	"clustersim/internal/rng"
)

// testKernel returns a small kernel with every feature exercisable.
func testKernel() kernel {
	return kernel{
		Chains:   4,
		LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.1,
		MultFrac: 0.2, CrossFrac: 0.1, FreshFrac: 0.05,
		LoopBody: 20, LoopIters: 5,
		RandBranchFrac: 0.5, RandTakenProb: 0.5,
		Stride: 8, Footprint: 1 << 16,
		StaticBlocks: 3,
	}
}

func engineFor(k kernel, seed uint64) *engine {
	return newEngine(program{
		name:   "test",
		phases: []phaseSpec{{name: "p0", length: 1 << 40, k: k}},
	}, seed)
}

func TestCompileBlockExactCounts(t *testing.T) {
	k := testKernel()
	var carry mixCarry
	code := compileBlock(k, rng.New(1), true, &carry)
	if len(code) != k.LoopBody {
		t.Fatalf("block length %d", len(code))
	}
	var loads, stores, branches int
	for _, s := range code[:len(code)-1] {
		switch s.class {
		case isa.Load:
			loads++
		case isa.Store:
			stores++
		case isa.Branch:
			branches++
		}
	}
	body := k.LoopBody - 1
	if want := int(k.LoadFrac*float64(body) + 0.5); loads != want {
		t.Errorf("loads %d, want %d", loads, want)
	}
	if want := int(k.StoreFrac*float64(body) + 0.5); stores != want {
		t.Errorf("stores %d, want %d", stores, want)
	}
	if want := int(k.BranchFrac*float64(body) + 0.5); branches != want {
		t.Errorf("branches %d, want %d", branches, want)
	}
	if !code[len(code)-1].loopEnd {
		t.Error("block does not end with a loop branch")
	}
}

func TestCompileBlockClassCountsIdenticalAcrossBlocks(t *testing.T) {
	// Phase detection compares per-interval branch/memref counts at a 1%
	// threshold; blocks of the same kernel must have identical class
	// counts (see mixCarry).
	k := testKernel()
	var carry mixCarry
	r := rng.New(2)
	count := func(code []staticInstr) [3]int {
		var c [3]int
		for _, s := range code[:len(code)-1] {
			switch s.class {
			case isa.Load:
				c[0]++
			case isa.Store:
				c[1]++
			case isa.Branch:
				c[2]++
			}
		}
		return c
	}
	first := count(compileBlock(k, r, true, &carry))
	for i := 0; i < 10; i++ {
		if got := count(compileBlock(k, r, true, &carry)); got != first {
			t.Fatalf("block %d counts %v differ from %v", i+1, got, first)
		}
	}
}

func TestRandomBranchCarryAccumulates(t *testing.T) {
	// With a sub-one expected random-branch count per block, the carry
	// must still realize the aggregate fraction across many blocks.
	k := testKernel()
	k.RandBranchFrac = 0.3 // 2 branch slots * 0.3 = 0.6 per block
	var carry mixCarry
	r := rng.New(3)
	randoms := 0
	const blocks = 100
	for i := 0; i < blocks; i++ {
		for _, s := range compileBlock(k, r, true, &carry) {
			if s.class == isa.Branch && s.random && !s.loopEnd {
				randoms++
			}
		}
	}
	// Expected: 2 branch slots/block * 0.3 * 100 blocks = 60.
	if randoms < 50 || randoms > 70 {
		t.Fatalf("random branch slots %d, want ~60", randoms)
	}
}

func TestChaseMakesLoadsSeriallyDependent(t *testing.T) {
	k := testKernel()
	k.Chase = true
	k.RandomAddr = true
	e := engineFor(k, 5)
	var in isa.Instruction
	dependent, loads := 0, 0
	for i := 0; i < 30_000; i++ {
		e.Next(&in)
		if in.Class == isa.Load {
			loads++
			if in.SrcDist1 > 0 {
				dependent++
			}
		}
	}
	if loads == 0 {
		t.Fatal("no loads")
	}
	if frac := float64(dependent) / float64(loads); frac < 0.9 {
		t.Fatalf("chase: only %.2f of loads depend on a prior load", frac)
	}
}

func TestAddrDepFracControlsLoadDependence(t *testing.T) {
	frac := func(adf float64) float64 {
		k := testKernel()
		k.AddrDepFrac = adf
		e := engineFor(k, 7)
		var in isa.Instruction
		dep, loads := 0, 0
		for i := 0; i < 30_000; i++ {
			e.Next(&in)
			if in.Class == isa.Load {
				loads++
				if in.SrcDist1 > 0 {
					dep++
				}
			}
		}
		return float64(dep) / float64(loads)
	}
	low, high := frac(0.1), frac(0.9)
	if high <= low {
		t.Fatalf("AddrDepFrac not controlling dependence: low %.2f high %.2f", low, high)
	}
}

func TestReuseFracControlsLocality(t *testing.T) {
	distinct := func(reuse float64) int {
		k := testKernel()
		k.ReuseFrac = reuse
		e := engineFor(k, 9)
		var in isa.Instruction
		addrs := map[uint64]bool{}
		for i := 0; i < 20_000; i++ {
			e.Next(&in)
			if in.Class.IsMem() {
				addrs[in.Addr] = true
			}
		}
		return len(addrs)
	}
	noReuse, heavyReuse := distinct(-1), distinct(0.8)
	if heavyReuse >= noReuse {
		t.Fatalf("reuse did not reduce distinct addresses: %d vs %d", heavyReuse, noReuse)
	}
}

func TestLoopExitRateMatchesIters(t *testing.T) {
	k := testKernel()
	k.LoopIters = 10
	k.IterJitter = 0
	e := engineFor(k, 11)
	var in isa.Instruction
	taken, notTaken := 0, 0
	for i := 0; i < 50_000; i++ {
		e.Next(&in)
		if in.Class == isa.Branch && in.Target < in.PC && in.Target != 0 {
			// backward (loop) branch
			if in.Taken {
				taken++
			} else {
				notTaken++
			}
		}
	}
	if notTaken == 0 {
		t.Fatal("no loop exits")
	}
	ratio := float64(taken) / float64(notTaken)
	if ratio < 7 || ratio > 11 {
		t.Fatalf("taken/exit ratio %.1f, want ~9 for 10 iterations", ratio)
	}
}

func TestCursorStaggerSpreadsWraps(t *testing.T) {
	k := testKernel()
	k.Chains = 8
	e := engineFor(k, 13)
	// After phase entry, chain cursors must start staggered.
	same := 0
	for c := 1; c < len(e.cursor); c++ {
		if e.cursor[c] == e.cursor[0] {
			same++
		}
	}
	if same == len(e.cursor)-1 {
		t.Fatal("cursors not staggered")
	}
}

// Property: the engine never emits an instruction whose producer distance
// exceeds its sequence position.
func TestDistancesNeverExceedPosition(t *testing.T) {
	f := func(seed uint64) bool {
		e := engineFor(testKernel(), seed)
		var in isa.Instruction
		for i := uint64(0); i < 2000; i++ {
			e.Next(&in)
			if uint64(in.SrcDist1) > i || uint64(in.SrcDist2) > i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMixCarryTake(t *testing.T) {
	var m mixCarry
	total := 0
	for i := 0; i < 10; i++ {
		total += m.take(&m.random, 0.3)
	}
	// Floating-point accumulation may land on 2 or 3 (0.3 is inexact).
	if total < 2 || total > 3 {
		t.Fatalf("10 x 0.3 carried to %d, want 2..3", total)
	}
}
