package workload

import "fmt"

// Kernel is the exported mirror of the synthetic-program kernel parameters,
// for building custom workloads (and for fuzzing the generator over its
// whole parameter space). Zero values select the engine defaults documented
// on the internal kernel type; fractions are probabilities in [0,1].
type Kernel struct {
	// Chains is the number of independent serial dependence chains (>= 1).
	Chains int
	// FP selects a floating-point-dominated arithmetic mix.
	FP bool
	// LoadFrac, StoreFrac and BranchFrac are the fractions of body
	// instructions that are loads, stores and forward branches.
	LoadFrac, StoreFrac, BranchFrac float64
	// MultFrac is the fraction of arithmetic using the multiplier.
	MultFrac float64
	// CrossFrac is the probability an operation reads from a neighbouring
	// chain; FreshFrac the probability an operand is architected.
	CrossFrac, FreshFrac float64
	// LoopBody and LoopIters shape the innermost loop; IterJitter
	// randomizes the trip count by ±IterJitter.
	LoopBody, LoopIters, IterJitter int
	// RandBranchFrac and RandTakenProb control data-dependent branches.
	RandBranchFrac, RandTakenProb float64
	// Stride, Footprint, RandomAddr and Chase shape the memory reference
	// stream; AddrDepFrac and ReuseFrac its dependence and locality.
	Stride, Footprint int64
	RandomAddr, Chase bool
	AddrDepFrac       float64
	ReuseFrac         float64
	// StaticBlocks, CallEvery and Funcs shape the static code footprint.
	StaticBlocks, CallEvery, Funcs int
}

// Phase is one phase of a custom program: a kernel executed for Length
// dynamic instructions before the program cycles to the next phase.
type Phase struct {
	Name   string
	Length int64
	Kernel Kernel
}

// Custom builds a generator for an ad-hoc synthetic program. It is the same
// engine behind the named benchmarks, exposed so tests and fuzz targets can
// explore generator parameters the bundled programs never exercise. The
// same (spec, seed) pair always yields the identical stream.
func Custom(name string, phases []Phase, seed uint64) (Generator, error) {
	if name == "" {
		return nil, fmt.Errorf("workload: custom program needs a name")
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: custom program %q needs at least one phase", name)
	}
	p := program{name: name}
	for i, ph := range phases {
		if ph.Length < 1 {
			return nil, fmt.Errorf("workload: %s phase %d: Length must be >= 1, got %d", name, i, ph.Length)
		}
		if ph.Kernel.Chains < 1 {
			return nil, fmt.Errorf("workload: %s phase %d: Chains must be >= 1, got %d", name, i, ph.Kernel.Chains)
		}
		k := kernel{
			Chains:         ph.Kernel.Chains,
			FP:             ph.Kernel.FP,
			LoadFrac:       clamp01(ph.Kernel.LoadFrac),
			StoreFrac:      clamp01(ph.Kernel.StoreFrac),
			BranchFrac:     clamp01(ph.Kernel.BranchFrac),
			MultFrac:       clamp01(ph.Kernel.MultFrac),
			CrossFrac:      clamp01(ph.Kernel.CrossFrac),
			FreshFrac:      clamp01(ph.Kernel.FreshFrac),
			LoopBody:       ph.Kernel.LoopBody,
			LoopIters:      ph.Kernel.LoopIters,
			IterJitter:     ph.Kernel.IterJitter,
			RandBranchFrac: clamp01(ph.Kernel.RandBranchFrac),
			RandTakenProb:  clamp01(ph.Kernel.RandTakenProb),
			Stride:         ph.Kernel.Stride,
			Footprint:      ph.Kernel.Footprint,
			RandomAddr:     ph.Kernel.RandomAddr,
			Chase:          ph.Kernel.Chase,
			AddrDepFrac:    clamp01(ph.Kernel.AddrDepFrac),
			ReuseFrac:      ph.Kernel.ReuseFrac,
			StaticBlocks:   ph.Kernel.StaticBlocks,
			CallEvery:      ph.Kernel.CallEvery,
			Funcs:          ph.Kernel.Funcs,
		}
		pname := ph.Name
		if pname == "" {
			pname = fmt.Sprintf("phase%d", i)
		}
		p.phases = append(p.phases, phaseSpec{name: pname, length: ph.Length, k: k})
	}
	return newEngine(p, seed), nil
}

// BuiltinPhases returns the named built-in benchmark's phase list in the
// exported form Custom accepts, or false for an unknown name. It exists so
// the declarative spec layer (internal/spec) can express the nine bundled
// benchmarks as checked-in spec files and prove — by byte-identical
// replay — that the format covers them; Custom over an unmodified
// BuiltinPhases result reproduces New's stream exactly.
func BuiltinPhases(name string) ([]Phase, bool) {
	p, ok := programs[name]
	if !ok {
		return nil, false
	}
	out := make([]Phase, len(p.phases))
	for i, ph := range p.phases {
		out[i] = Phase{
			Name:   ph.name,
			Length: ph.length,
			Kernel: Kernel{
				Chains:         ph.k.Chains,
				FP:             ph.k.FP,
				LoadFrac:       ph.k.LoadFrac,
				StoreFrac:      ph.k.StoreFrac,
				BranchFrac:     ph.k.BranchFrac,
				MultFrac:       ph.k.MultFrac,
				CrossFrac:      ph.k.CrossFrac,
				FreshFrac:      ph.k.FreshFrac,
				LoopBody:       ph.k.LoopBody,
				LoopIters:      ph.k.LoopIters,
				IterJitter:     ph.k.IterJitter,
				RandBranchFrac: ph.k.RandBranchFrac,
				RandTakenProb:  ph.k.RandTakenProb,
				Stride:         ph.k.Stride,
				Footprint:      ph.k.Footprint,
				RandomAddr:     ph.k.RandomAddr,
				Chase:          ph.k.Chase,
				AddrDepFrac:    ph.k.AddrDepFrac,
				ReuseFrac:      ph.k.ReuseFrac,
				StaticBlocks:   ph.k.StaticBlocks,
				CallEvery:      ph.k.CallEvery,
				Funcs:          ph.k.Funcs,
			},
		}
	}
	return out, true
}

func clamp01(f float64) float64 {
	switch {
	case f < 0 || f != f: // negative or NaN
		return 0
	case f > 1:
		return 1
	}
	return f
}
