package workload

import (
	"testing"

	"clustersim/internal/isa"
)

// FuzzGeneratorDeterminism checks that any (benchmark, seed) pair yields
// identical streams across two independent generators, and that the stream
// satisfies the structural invariants the pipeline relies on.
func FuzzGeneratorDeterminism(f *testing.F) {
	f.Add(uint8(0), uint64(1))
	f.Add(uint8(4), uint64(42))
	f.Fuzz(func(t *testing.T, which uint8, seed uint64) {
		names := Benchmarks()
		name := names[int(which)%len(names)]
		a := MustNew(name, seed)
		b := MustNew(name, seed)
		var x, y isa.Instruction
		for i := 0; i < 1500; i++ {
			a.Next(&x)
			b.Next(&y)
			if x != y {
				t.Fatalf("%s seed %d diverged at %d", name, seed, i)
			}
			if uint64(x.SrcDist1) > uint64(i) || uint64(x.SrcDist2) > uint64(i) {
				t.Fatalf("distance exceeds position at %d: %+v", i, x)
			}
			if x.Class.IsMem() && x.Addr%8 != 0 {
				t.Fatalf("unaligned address %#x", x.Addr)
			}
			if x.Class.IsCtrl() && !x.EndsBlock {
				t.Fatalf("control transfer without EndsBlock at %d", i)
			}
		}
	})
}
