package workload

import (
	"math"

	"clustersim/internal/isa"
	"clustersim/internal/rng"
)

// kernel parameterizes the instruction-level behaviour of one program phase.
//
// The execution model: dynamic instructions are assigned round-robin to
// Chains independent serial dependence chains — every operation in a chain
// depends on the chain's previous operation. Chains is therefore the ILP
// knob: a wide window can issue from up to Chains chains at once, and
// distant ILP (the paper's window>120 metric) appears exactly when Chains is
// large and branches are predictable enough to keep the window full.
type kernel struct {
	// Chains is the number of independent serial dependence chains.
	Chains int
	// FP selects a floating-point-dominated arithmetic mix.
	FP bool
	// LoadFrac, StoreFrac and BranchFrac are the fractions of body
	// instructions that are loads, stores and forward conditional
	// branches; the remainder is arithmetic.
	LoadFrac, StoreFrac, BranchFrac float64
	// MultFrac is the fraction of arithmetic that uses the multiplier.
	MultFrac float64
	// CrossFrac is the probability an operation reads a second operand
	// from a neighbouring chain (inter-chain — and once steered,
	// inter-cluster — communication).
	CrossFrac float64
	// FreshFrac is the probability a chain operand is architected
	// (distance 0), briefly breaking the chain.
	FreshFrac float64
	// LoopBody is the number of instructions per innermost loop
	// iteration (one static basic block, including its loop branch).
	LoopBody int
	// LoopIters is the innermost trip count; the loop-exit branch
	// mispredicts once per exit unless the trip count fits predictor
	// history.
	LoopIters int
	// IterJitter randomizes the trip count by ±IterJitter, making loop
	// exits unpredictable (integer-code behaviour).
	IterJitter int
	// RandBranchFrac is the fraction of forward branches whose outcome
	// is data-dependent (random), and RandTakenProb their taken
	// probability; these set the floor of the mispredict rate.
	RandBranchFrac float64
	RandTakenProb  float64
	// Stride is the byte stride of successive memory references in a
	// chain; Footprint is the total data footprint in bytes (split
	// across chains); RandomAddr replaces striding with uniform random
	// addresses; Chase makes each load's address depend on the chain's
	// previous load (pointer chasing).
	Stride     int64
	Footprint  int64
	RandomAddr bool
	Chase      bool
	// AddrDepFrac is the probability a load's address is computed from
	// the chain (exposing memory latency on the chain) rather than an
	// induction variable (letting the load issue far ahead of use).
	// Streaming FP code strength-reduces addresses (low values); integer
	// code computes them (high values). Zero means the engine default.
	AddrDepFrac float64
	// ReuseFrac is the probability a strided access re-touches one of
	// the chain's recently visited words instead of advancing (stencil-
	// style temporal locality). Zero selects the engine default (0.35);
	// negative disables reuse.
	ReuseFrac float64
	// StaticBlocks is the number of distinct basic blocks (code
	// footprint); execution cycles through them.
	StaticBlocks int
	// CallEvery, when nonzero, inserts a subroutine call after every
	// CallEvery-th block, rotating over Funcs function bodies.
	CallEvery int
	Funcs     int
}

// phaseSpec is one phase of a program: a kernel executed for Length
// dynamic instructions before the program moves to the next phase.
type phaseSpec struct {
	name   string
	length int64
	k      kernel
}

// program is a named cyclic sequence of phases.
type program struct {
	name   string
	phases []phaseSpec
}

// staticInstr is one compiled instruction slot of a basic block.
type staticInstr struct {
	class   isa.Class
	chain   uint16
	cross   int16 // second-operand chain, or -1
	skip    uint8 // forward branch: instructions skipped when taken
	random  bool  // forward branch: data-dependent outcome
	loopEnd bool  // block-terminating backward branch
}

// compiledPhase is a phase's static code: blocks of staticInstrs at stable
// PCs, plus optional function bodies.
type compiledPhase struct {
	k      kernel
	base   uint64
	blocks [][]staticInstr
	fns    [][]staticInstr
}

const (
	phaseStride = 1 << 24 // PC space per phase
	blockStride = 1 << 13 // PC space per block
	fnRegion    = 1 << 23 // offset of function bodies within a phase
)

// engine executes a program, emitting one dynamic instruction per Next call.
type engine struct {
	prog     program
	seed     uint64 //simlint:nostate construction input; a snapshot only restores onto a same-(benchmark,seed) engine
	compiled []compiledPhase

	r   *rng.Source
	seq uint64

	phaseIdx  int
	remaining int64

	blk        int
	idx        int
	iter       int
	itersThis  int
	blocksDone int

	pendingCall bool
	callPC      uint64
	inFn        bool
	fnIdx       int
	fnPos       int
	retPC       uint64

	chainLast []uint64 // seq+1 of each chain's last arithmetic producer; 0 = none
	lastLoad  []uint64 // seq+1 of each chain's most recent load; 0 = none
	cursor    []uint64 // per-chain address cursors
	addrBase  []uint64 // per-chain region bases
	regionLen uint64
}

func newEngine(p program, seed uint64) *engine {
	e := &engine{prog: p, seed: seed}
	// Compile every phase's static code deterministically from the seed.
	cr := rng.New(seed ^ 0xC0DEC0DEC0DEC0DE)
	e.compiled = make([]compiledPhase, len(p.phases))
	for i := range p.phases {
		e.compiled[i] = compilePhase(i, p.phases[i].k, cr.Fork())
	}
	e.Reset()
	return e
}

// Name implements Generator.
func (e *engine) Name() string { return e.prog.name }

// Reset implements Generator.
func (e *engine) Reset() {
	e.r = rng.New(e.seed ^ 0xD15EA5EDBA5EBA11)
	e.seq = 0
	e.phaseIdx = -1
	e.remaining = 0
	e.advancePhase()
}

func (e *engine) advancePhase() {
	e.phaseIdx = (e.phaseIdx + 1) % len(e.prog.phases)
	ph := &e.prog.phases[e.phaseIdx]
	e.remaining = ph.length
	k := &ph.k
	e.blk, e.idx, e.iter, e.blocksDone = 0, 0, 0, 0
	e.pendingCall, e.inFn, e.fnIdx, e.fnPos = false, false, 0, 0
	e.itersThis = e.drawIters(k)
	// Phase transitions happen mid-simulation: reuse the per-chain state
	// slices across phases so steady-state execution never allocates.
	e.chainLast = resetChainState(e.chainLast, k.Chains)
	e.lastLoad = resetChainState(e.lastLoad, k.Chains)
	e.cursor = resetChainState(e.cursor, k.Chains)
	e.addrBase = resetChainState(e.addrBase, k.Chains)
	e.regionLen = uint64(k.Footprint) / uint64(k.Chains)
	if e.regionLen < 64 {
		e.regionLen = 64
	}
	e.regionLen &^= 7
	// Regions are phase-local so distinct phases have distinct data.
	// Cursors start staggered so the chains' region wrap-arounds (and the
	// re-streaming miss bursts they cause) spread evenly in time instead
	// of arriving in lockstep.
	dataBase := uint64(e.phaseIdx+1) << 32
	stride := uint64(k.Stride)
	if stride == 0 {
		stride = 8
	}
	accessesPerWrap := e.regionLen / stride
	if accessesPerWrap == 0 {
		accessesPerWrap = 1
	}
	for c := range e.addrBase {
		e.addrBase[c] = dataBase + uint64(c)*e.regionLen
		e.cursor[c] = uint64(c) * accessesPerWrap / uint64(len(e.addrBase))
	}
}

func (e *engine) drawIters(k *kernel) int {
	it := k.LoopIters
	if k.IterJitter > 0 {
		it += e.r.Intn(2*k.IterJitter+1) - k.IterJitter
	}
	if it < 2 {
		it = 2
	}
	return it
}

// Next implements Generator.
func (e *engine) Next(in *isa.Instruction) {
	if e.remaining <= 0 {
		e.advancePhase()
	}
	cp := &e.compiled[e.phaseIdx]
	k := &e.prog.phases[e.phaseIdx].k

	switch {
	case e.pendingCall:
		fnPC := cp.base + fnRegion + uint64(e.fnIdx)*blockStride
		*in = isa.Instruction{
			PC: e.callPC, Class: isa.Call, Taken: true, Target: fnPC, EndsBlock: true,
		}
		e.retPC = e.callPC + 4
		e.pendingCall = false
		e.inFn = true
		e.fnPos = 0
	case e.inFn:
		fn := cp.fns[e.fnIdx]
		s := &fn[e.fnPos]
		pc := cp.base + fnRegion + uint64(e.fnIdx)*blockStride + uint64(e.fnPos)*4
		if s.class == isa.Return {
			*in = isa.Instruction{
				PC: pc, Class: isa.Return, Taken: true, Target: e.retPC, EndsBlock: true,
			}
			e.inFn = false
		} else {
			e.fill(in, s, pc, k)
			e.fnPos++
		}
	default:
		blkCode := cp.blocks[e.blk]
		s := &blkCode[e.idx]
		pc := cp.base + uint64(e.blk)*blockStride + uint64(e.idx)*4
		switch {
		case s.loopEnd:
			// The loop branch tests an induction variable, which is
			// always at hand — it resolves as soon as it issues.
			taken := e.iter+1 < e.itersThis
			*in = isa.Instruction{
				PC: pc, Class: isa.Branch, Taken: taken,
				Target:    cp.base + uint64(e.blk)*blockStride,
				EndsBlock: true,
			}
			if taken {
				e.iter++
				e.idx = 0
			} else {
				e.iter = 0
				e.idx = 0
				e.blocksDone++
				if k.CallEvery > 0 && e.blocksDone%k.CallEvery == 0 {
					e.pendingCall = true
					e.callPC = pc + 8 // call site just past the loop branch
					// Each call site invokes a fixed callee so its
					// target is learnable.
					e.fnIdx = e.blk % len(cp.fns)
				}
				e.blk = (e.blk + 1) % len(cp.blocks)
				e.itersThis = e.drawIters(k)
			}
		case s.class == isa.Branch:
			// Forward conditional branch within the body. Random
			// (data-dependent) branches take the loop data with
			// them: their condition hangs off a compute chain, so
			// they also *resolve* late. Predictable guards test
			// loop-invariant conditions: never taken, cheap to
			// resolve.
			var taken bool
			var dep uint32
			if s.random {
				taken = e.r.Bool(k.RandTakenProb)
				// The condition tests the chain's latest *load* —
				// compare-and-branch on just-read data, as compiled
				// code does — so resolution tracks load latency, not
				// the depth of the arithmetic chain.
				c := int(s.chain) % len(e.chainLast)
				m := e.lastLoad[c]
				if m == 0 {
					m = e.chainLast[c]
				}
				dep = e.distTo(m)
			}
			*in = isa.Instruction{
				PC: pc, Class: isa.Branch, Taken: taken,
				Target:    pc + 4 + uint64(s.skip)*4,
				EndsBlock: true,
				SrcDist1:  dep,
			}
			e.idx++
			if taken {
				e.idx += int(s.skip)
				if e.idx >= len(blkCode)-1 {
					e.idx = len(blkCode) - 1
				}
			}
		default:
			e.fill(in, s, pc, k)
			e.idx++
		}
	}
	e.seq++
	e.remaining--
}

// fill emits a non-control instruction and maintains chain state.
//
// The dependence model: arithmetic forms the serial spine of each chain.
// Loads feed a chain from the side — their addresses come from induction
// variables (cheap) unless the kernel pointer-chases (RandomAddr), in which
// case each load's address is the previous load of the chain. The next
// arithmetic operation on the chain consumes the most recent load's value
// as its second operand. Stores take their address from induction variables
// (mostly) and their data from a chain. This is the shape of compiled loop
// code, and it determines everything the timing model measures: chain count
// sets ILP, load placement sets memory-level parallelism, and the consumes
// establish the inter-cluster traffic once chains are steered apart.
func (e *engine) fill(in *isa.Instruction, s *staticInstr, pc uint64, k *kernel) {
	c := int(s.chain)
	if c >= len(e.chainLast) {
		c %= len(e.chainLast)
	}
	*in = isa.Instruction{PC: pc, Class: s.class}
	switch s.class {
	case isa.Load:
		in.Addr = e.nextAddr(c, k)
		adf := k.AddrDepFrac
		if adf == 0 {
			adf = 0.15
		}
		if k.Chase {
			// Pointer chasing: the address is the previous load.
			in.SrcDist1 = e.distTo(e.lastLoad[c])
		} else if e.r.Bool(adf) {
			in.SrcDist1 = e.distTo(e.chainLast[c])
		}
		in.HasDest = true
		e.lastLoad[c] = e.seq + 1
	case isa.Store:
		in.Addr = e.nextAddr(c, k)
		if e.r.Bool(0.10) {
			in.SrcDist1 = e.distTo(e.chainLast[c]) // computed address
		}
		cross := c
		if s.cross >= 0 {
			cross = int(s.cross) % len(e.chainLast)
		}
		in.SrcDist2 = e.distTo(e.chainLast[cross]) // data operand
	default: // arithmetic: the chain spine
		if e.r.Bool(k.FreshFrac) {
			in.SrcDist1 = 0
		} else {
			in.SrcDist1 = e.distTo(e.chainLast[c])
		}
		switch {
		case e.lastLoad[c] > e.chainLast[c]:
			// Consume the chain's most recent unconsumed load.
			in.SrcDist2 = e.distTo(e.lastLoad[c])
		case s.cross >= 0:
			in.SrcDist2 = e.distTo(e.chainLast[int(s.cross)%len(e.chainLast)])
		}
		in.HasDest = true
		e.chainLast[c] = e.seq + 1
	}
}

// distTo converts a seq+1 producer marker into a dynamic distance.
func (e *engine) distTo(marker uint64) uint32 {
	if marker == 0 {
		return 0
	}
	d := e.seq + 1 - marker
	if d > math.MaxUint32 {
		return 0
	}
	return uint32(d)
}

// nextAddr produces the next effective address for chain c.
func (e *engine) nextAddr(c int, k *kernel) uint64 {
	if k.RandomAddr {
		off := e.r.Uint64() % e.regionLen
		return e.addrBase[c] + off&^7
	}
	reuse := k.ReuseFrac
	switch {
	case reuse == 0:
		reuse = 0.35
	case reuse < 0:
		reuse = 0
	}
	cur := e.cursor[c]
	if reuse > 0 && cur > 4 && e.r.Bool(reuse) {
		// Stencil-style re-touch of a recent word.
		cur -= uint64(1 + e.r.Intn(4))
	} else {
		e.cursor[c]++
	}
	off := (cur * uint64(k.Stride)) % e.regionLen
	return e.addrBase[c] + off&^7
}

// mixCarry accumulates the fractional random-branch remainder across blocks
// so a phase realizes its configured mispredict density exactly even when
// the per-block expectation is below one (independent per-slot draws would
// make the mispredict rate a seed-dependent accident). Class counts, by
// contrast, are rounded identically for every block: the phase-detection
// algorithms compare per-interval branch/memref counts at a 1% threshold,
// and a ±1-slot difference between blocks of the *same* kernel would read
// as a phase change.
type mixCarry struct {
	random float64
}

// take converts a fractional demand into a whole count, carrying the
// remainder forward.
func (m *mixCarry) take(carry *float64, want float64) int {
	*carry += want
	n := int(*carry)
	*carry -= float64(n)
	return n
}

// compilePhase lays out a phase's static code from the kernel parameters.
func compilePhase(idx int, k kernel, r *rng.Source) compiledPhase {
	cp := compiledPhase{k: k, base: uint64(idx+1) * phaseStride}
	nb := k.StaticBlocks
	if nb < 1 {
		nb = 1
	}
	var carry mixCarry
	cp.blocks = make([][]staticInstr, nb)
	for b := range cp.blocks {
		cp.blocks[b] = compileBlock(k, r, true, &carry)
	}
	if k.CallEvery > 0 {
		nf := k.Funcs
		if nf < 1 {
			nf = 1
		}
		cp.fns = make([][]staticInstr, nf)
		for f := range cp.fns {
			body := compileBlock(k, r, false, &carry)
			body[len(body)-1] = staticInstr{class: isa.Return}
			cp.fns[f] = body
		}
	}
	return cp
}

// compileBlock lays out one basic block: LoopBody-1 body slots plus a
// terminating slot (loop branch, or placeholder replaced by Return for
// function bodies). Class counts are exact (stratified by carry); positions
// are shuffled deterministically.
func compileBlock(k kernel, r *rng.Source, loop bool, carry *mixCarry) []staticInstr {
	n := k.LoopBody
	if n < 4 {
		n = 4
	}
	body := n - 1
	nLoad := int(k.LoadFrac*float64(body) + 0.5)
	nStore := int(k.StoreFrac*float64(body) + 0.5)
	nBranch := int(k.BranchFrac*float64(body) + 0.5)
	if nLoad+nStore+nBranch > body {
		nBranch = body - nLoad - nStore
		if nBranch < 0 {
			nBranch = 0
		}
	}
	nRandom := carry.take(&carry.random, k.RandBranchFrac*float64(nBranch))

	classes := make([]isa.Class, body)
	i := 0
	for j := 0; j < nLoad; j++ {
		classes[i] = isa.Load
		i++
	}
	for j := 0; j < nStore; j++ {
		classes[i] = isa.Store
		i++
	}
	for j := 0; j < nBranch; j++ {
		classes[i] = isa.Branch
		i++
	}
	for ; i < body; i++ {
		if k.FP {
			if r.Bool(k.MultFrac) {
				classes[i] = isa.FPMult
			} else {
				classes[i] = isa.FPALU
			}
		} else {
			if r.Bool(k.MultFrac) {
				classes[i] = isa.IntMult
			} else {
				classes[i] = isa.IntALU
			}
		}
	}
	// Deterministic Fisher-Yates shuffle.
	for j := body - 1; j > 0; j-- {
		o := r.Intn(j + 1)
		classes[j], classes[o] = classes[o], classes[j]
	}

	code := make([]staticInstr, n)
	chain := uint16(r.Intn(max(1, k.Chains)))
	randomLeft := nRandom
	for i := 0; i < body; i++ {
		s := &code[i]
		s.cross = -1
		s.chain = chain
		chain = uint16((int(chain) + 1) % max(1, k.Chains))
		s.class = classes[i]
		switch s.class {
		case isa.Store:
			if r.Bool(0.5) && k.Chains > 1 {
				s.cross = int16(r.Intn(k.Chains))
			}
		case isa.Branch:
			s.skip = uint8(1 + r.Intn(3))
			if randomLeft > 0 {
				s.random = true
				randomLeft--
			}
		case isa.Load:
		default:
			if r.Bool(k.CrossFrac) && k.Chains > 1 {
				s.cross = int16(r.Intn(k.Chains))
			}
		}
	}
	last := &code[n-1]
	last.cross = -1
	last.chain = chain
	if loop {
		last.class = isa.Branch
		last.loopEnd = true
	}
	return code
}

// resetChainState returns a zeroed n-element slice, reusing s's backing
// array when it is large enough.
func resetChainState(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}
