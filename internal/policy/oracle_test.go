package policy

import (
	"bytes"
	"reflect"
	"testing"

	"clustersim/internal/pipeline"
	"clustersim/internal/runner"
	"clustersim/internal/workload"
)

// oracleWindow keeps the 9×3 matrix fast while spanning several controller
// intervals per benchmark.
const oracleWindow = 60_000

// TestSelfReplayOracle is the decision-trace fidelity oracle: for every
// benchmark × dynamic policy, a Recorder-wrapped run must (a) produce a
// Result byte-identical to the bare controller's run — the recording hook is
// invisible to the simulation — and (b) yield a trace whose self-replay
// (after a serialization round trip) reproduces the recorded decision
// sequence exactly.
func TestSelfReplayOracle(t *testing.T) {
	benches := workload.Benchmarks()
	if testing.Short() {
		benches = benches[:2]
	}
	specs := dynamicSpecs(t)
	cfg := pipeline.DefaultConfig()

	type cell struct {
		bench string
		spec  *Spec
		trace *DecisionTrace
	}
	var cells []cell
	var reqs []runner.Request
	for _, bench := range benches {
		for _, spec := range specs {
			key, err := spec.Key()
			if err != nil {
				t.Fatal(err)
			}
			fp, _ := spec.Fingerprint()
			base := runner.Request{
				ID:        "oracle",
				Bench:     bench,
				Seed:      1,
				Window:    oracleWindow,
				Config:    cfg,
				PolicyKey: key,
			}

			// Bare run (even requests), then the recorded twin (odd).
			bare := base
			ctrl, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			bare.Controller = ctrl
			reqs = append(reqs, bare)

			inner, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			trace := &DecisionTrace{Bench: bench, Seed: 1, Window: oracleWindow,
				PolicyFP: fp, ConfigFP: cfg.Fingerprint()}
			recorded := base
			recorded.Controller = NewRecorder(inner, trace)
			recorded.NoCache = true // trace is harvested from the instance
			reqs = append(reqs, recorded)

			cells = append(cells, cell{bench: bench, spec: spec, trace: trace})
		}
	}

	results, err := runner.New(0).RunAll(reqs)
	if err != nil {
		t.Fatal(err)
	}

	for i, c := range cells {
		bareRes, recRes := results[2*i], results[2*i+1]
		label := c.bench + "/" + c.spec.Name
		if !reflect.DeepEqual(bareRes, recRes) {
			t.Errorf("%s: recorded run diverged from bare run:\nbare %+v\nrec  %+v",
				label, bareRes, recRes)
			continue
		}
		if c.trace.Len() == 0 || len(c.trace.Decisions) == 0 {
			t.Errorf("%s: empty trace (%s)", label, c.trace.Describe())
			continue
		}
		if c.trace.Len() != int(recRes.Instructions) {
			t.Errorf("%s: trace has %d events, run committed %d instructions",
				label, c.trace.Len(), recRes.Instructions)
		}

		var buf bytes.Buffer
		if err := c.trace.Write(&buf); err != nil {
			t.Errorf("%s: Write: %v", label, err)
			continue
		}
		back, err := ReadTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Errorf("%s: ReadTrace: %v", label, err)
			continue
		}
		fresh, err := c.spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		rr := back.Replay(fresh)
		if !reflect.DeepEqual(rr.Decisions, c.trace.Decisions) {
			t.Errorf("%s: self-replay diverged after round trip:\nrecorded %v\nreplayed %v",
				label, c.trace.Decisions, rr.Decisions)
		}
	}
}
