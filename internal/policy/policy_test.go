package policy

import (
	"reflect"
	"strings"
	"testing"
)

func TestFamiliesComplete(t *testing.T) {
	want := []string{"distant-ilp", "explore", "fine-grain", "static"}
	if got := Families(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Families() = %v, want %v", got, want)
	}
}

func TestPaperSpecsBuild(t *testing.T) {
	for _, name := range []string{"explore", "distant-ilp", "fine-grain", "fine-grain-cr", "static-4", "static-16"} {
		s, err := Paper(name)
		if err != nil {
			t.Fatalf("Paper(%q): %v", name, err)
		}
		ctrl, err := s.Build()
		if err != nil {
			t.Fatalf("Paper(%q).Build: %v", name, err)
		}
		if ctrl.Name() == "" {
			t.Fatalf("Paper(%q) controller has empty name", name)
		}
	}
	if _, err := Paper("nonsense"); err == nil {
		t.Fatal("Paper(nonsense) should fail")
	}
	if _, err := Paper("static-0"); err == nil {
		t.Fatal("Paper(static-0) should fail")
	}
}

func TestSerializeParseRoundTrip(t *testing.T) {
	specs := []*Spec{
		{Version: Version, Name: FamilyStatic, Params: Params{Clusters: 8}},
		{Version: Version, Name: FamilyExplore, Doc: "tuned",
			Params: Params{InitialInterval: 20_000, IPCDelta: 0.35, Configs: []int{4, 8, 16}}},
		{Version: Version, Name: FamilyDistantILP,
			Params: Params{Interval: 2_000, DistantThreshold: 1_400, Narrow: 2}},
		{Version: Version, Name: FamilyFineGrain,
			Params: Params{EveryNthBranch: 3, Window: 540, WindowDistant: 420, CallReturnOnly: true}},
	}
	for _, s := range specs {
		data, err := s.Serialize()
		if err != nil {
			t.Fatalf("%s: Serialize: %v", s.Name, err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: Parse(Serialize): %v\n%s", s.Name, err, data)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("%s: round trip mismatch:\nhave %+v\nwant %+v", s.Name, back, s)
		}
		data2, err := back.Serialize()
		if err != nil || string(data) != string(data2) {
			t.Fatalf("%s: serialization not canonical (err %v)", s.Name, err)
		}
	}
}

func TestFingerprintDistinguishesParams(t *testing.T) {
	a := &Spec{Version: Version, Name: FamilyDistantILP, Params: Params{Interval: 1_000}}
	b := &Spec{Version: Version, Name: FamilyDistantILP, Params: Params{Interval: 2_000}}
	fa, err := a.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fa == fb {
		t.Fatalf("distinct parameterizations share fingerprint %016x", fa)
	}
	fa2, _ := a.Fingerprint()
	if fa != fa2 {
		t.Fatalf("fingerprint unstable: %016x then %016x", fa, fa2)
	}
	key, err := a.Key()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(key, "policy:") || len(key) != len("policy:")+16 {
		t.Fatalf("Key() = %q, want policy:<16 hex digits>", key)
	}
}

func TestForeignParamsRejected(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string // substring of the error
	}{
		{"explore+interval",
			Spec{Version: Version, Name: FamilyExplore, Params: Params{Interval: 500}},
			"interval"},
		{"static+window",
			Spec{Version: Version, Name: FamilyStatic, Params: Params{Clusters: 4, Window: 360}},
			"window"},
		{"dilp+table",
			Spec{Version: Version, Name: FamilyDistantILP, Params: Params{TableSize: 1024}},
			"table_size"},
		{"finegrain+macro",
			Spec{Version: Version, Name: FamilyFineGrain, Params: Params{MacroInterval: 1_000_000}},
			"macro_interval"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil {
			t.Fatalf("%s: Validate accepted foreign params", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not name the foreign key %q", tc.name, err, tc.want)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"unknown field", `{"version":1,"name":"explore","bogus":3}`},
		{"unknown family", `{"version":1,"name":"oracle"}`},
		{"bad version", `{"version":7,"name":"explore"}`},
		{"static clusters", `{"version":1,"name":"static"}`},
		{"trailing data", `{"version":1,"name":"explore"}{"version":1,"name":"explore"}`},
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(tc.doc)); err == nil {
			t.Fatalf("%s: Parse accepted %s", tc.name, tc.doc)
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/policy.json"); err == nil {
		t.Fatal("LoadFile on a missing path should fail")
	}
}

func TestBuildReturnsFreshInstances(t *testing.T) {
	s, err := Paper("explore")
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("Build returned the same controller instance twice")
	}
}
