package policy

import (
	"fmt"
	"io"

	"clustersim/internal/obs"
	"clustersim/internal/pipeline"
	"clustersim/internal/snap"
)

// Commit-event flag bits in DecisionTrace.flags.
const (
	flagBranch = 1 << iota
	flagCall
	flagReturn
	flagMem
	flagDistant
	flagMispredicted
)

// traceVersion is the decision-trace serialization version.
const traceVersion = 1

// Decision is one change in a controller's desired active-cluster count:
// at the commit of instruction Seq (cycle Cycle) the controller began
// requesting Active clusters. The first Decision of a trace is the
// controller's initial request.
type Decision struct {
	Seq    uint64 `json:"seq"`
	Cycle  uint64 `json:"cycle"`
	Active int    `json:"active"`
}

// DecisionTrace is the record of everything one run's controller saw and
// decided: the full committed-instruction event stream (the controller's
// entire input — commit cycle, PC and classification flags per
// instruction) plus the decision sequence it produced. Replay feeds the
// stream to another controller, answering "what would policy B have
// decided at every point of this exact run?" without re-simulating.
//
// The replayed decisions are exact with respect to the recorded stream;
// they are counterfactual in that an alternative policy's decisions would
// have changed the machine's timing (and so the stream itself). Exact
// counterfactual scoring therefore re-simulates through the runner pool;
// replay is the cheap first pass that needs no simulation at all.
type DecisionTrace struct {
	// Bench, Seed and Window identify the recorded run's workload.
	Bench  string
	Seed   uint64
	Window uint64
	// Policy is the recorded controller's Name(); PolicyFP is its
	// spec fingerprint (0 when recorded from a bare controller).
	Policy   string
	PolicyFP uint64
	// ConfigFP is the machine configuration's fingerprint
	// (pipeline.Config.Fingerprint), guarding against replaying a trace
	// against results from a different machine.
	ConfigFP uint64
	// TotalClusters is the machine's cluster count, passed to
	// Controller.Reset on replay.
	TotalClusters int

	// The committed-instruction stream, columnar: cycles/seqs/pcs/flags
	// hold one entry per commit.
	cycles []uint64
	seqs   []uint64
	pcs    []uint64
	flags  []uint8

	// Decisions is the recorded controller's decision sequence.
	Decisions []Decision

	// lastWant tracks the recorder's previous desired count so only
	// changes append to Decisions.
	lastWant int //simlint:nostate transient recording cursor, meaningless after the run
}

// Len returns the number of recorded commit events.
func (t *DecisionTrace) Len() int { return len(t.cycles) }

// Event reconstructs the i-th recorded commit event.
func (t *DecisionTrace) Event(i int) pipeline.CommitEvent {
	fl := t.flags[i]
	return pipeline.CommitEvent{
		Cycle:        t.cycles[i],
		Seq:          t.seqs[i],
		PC:           t.pcs[i],
		IsBranch:     fl&flagBranch != 0,
		IsCall:       fl&flagCall != 0,
		IsReturn:     fl&flagReturn != 0,
		IsMem:        fl&flagMem != 0,
		Distant:      fl&flagDistant != 0,
		Mispredicted: fl&flagMispredicted != 0,
	}
}

// clear drops the recorded stream (keeps the header).
func (t *DecisionTrace) clear() {
	t.cycles = t.cycles[:0]
	t.seqs = t.seqs[:0]
	t.pcs = t.pcs[:0]
	t.flags = t.flags[:0]
	t.Decisions = t.Decisions[:0]
	t.lastWant = 0
}

// record appends one commit event and the controller's response to it.
func (t *DecisionTrace) record(ev pipeline.CommitEvent, want int) {
	var fl uint8
	if ev.IsBranch {
		fl |= flagBranch
	}
	if ev.IsCall {
		fl |= flagCall
	}
	if ev.IsReturn {
		fl |= flagReturn
	}
	if ev.IsMem {
		fl |= flagMem
	}
	if ev.Distant {
		fl |= flagDistant
	}
	if ev.Mispredicted {
		fl |= flagMispredicted
	}
	t.cycles = append(t.cycles, ev.Cycle)
	t.seqs = append(t.seqs, ev.Seq)
	t.pcs = append(t.pcs, ev.PC)
	t.flags = append(t.flags, fl)
	if want > 0 && want != t.lastWant {
		t.Decisions = append(t.Decisions, Decision{Seq: ev.Seq, Cycle: ev.Cycle, Active: want})
		t.lastWant = want
	}
}

// SaveState implements snap.Stater: the trace serializes with the same
// deterministic fixed-width codec as simulator checkpoints.
func (t *DecisionTrace) SaveState(w *snap.Writer) {
	w.Mark("decision-trace")
	w.Int(traceVersion)
	w.String(t.Bench)
	w.U64(t.Seed)
	w.U64(t.Window)
	w.String(t.Policy)
	w.U64(t.PolicyFP)
	w.U64(t.ConfigFP)
	w.Int(t.TotalClusters)
	w.Mark("events")
	w.U64s(t.cycles)
	w.U64s(t.seqs)
	w.U64s(t.pcs)
	w.U8s(t.flags)
	w.Mark("decisions")
	w.U64(uint64(len(t.Decisions)))
	for _, d := range t.Decisions {
		w.U64(d.Seq)
		w.U64(d.Cycle)
		w.Int(d.Active)
	}
}

// LoadState implements snap.Stater.
func (t *DecisionTrace) LoadState(r *snap.Reader) {
	r.Mark("decision-trace")
	if v := r.Int(); r.Err() == nil && v != traceVersion {
		r.Failf("policy: decision trace version %d (this build reads %d)", v, traceVersion)
		return
	}
	t.Bench = r.String()
	t.Seed = r.U64()
	t.Window = r.U64()
	t.Policy = r.String()
	t.PolicyFP = r.U64()
	t.ConfigFP = r.U64()
	t.TotalClusters = r.Int()
	r.Mark("events")
	t.cycles = r.U64s()
	t.seqs = r.U64s()
	t.pcs = r.U64s()
	t.flags = r.U8s()
	r.Mark("decisions")
	n := int(r.U64())
	if r.Err() != nil {
		return
	}
	if n < 0 || n > len(t.cycles)+1 {
		r.Failf("policy: decision count %d exceeds event count %d", n, len(t.cycles))
		return
	}
	t.Decisions = make([]Decision, n)
	for i := range t.Decisions {
		t.Decisions[i] = Decision{Seq: r.U64(), Cycle: r.U64(), Active: r.Int()}
	}
	t.lastWant = 0
	if len(t.cycles) != len(t.seqs) || len(t.cycles) != len(t.pcs) || len(t.cycles) != len(t.flags) {
		r.Failf("policy: decision trace columns disagree: %d/%d/%d/%d events",
			len(t.cycles), len(t.seqs), len(t.pcs), len(t.flags))
	}
}

// Write serializes the trace to w.
func (t *DecisionTrace) Write(w io.Writer) error {
	sw := snap.NewWriter(w)
	t.SaveState(sw)
	return sw.Flush()
}

// ReadTrace deserializes a trace written by Write.
func ReadTrace(r io.Reader) (*DecisionTrace, error) {
	sr := snap.NewReader(r)
	t := &DecisionTrace{}
	t.LoadState(sr)
	if err := sr.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

var _ snap.Stater = (*DecisionTrace)(nil)

// Recorder wraps a controller and captures its decision trace. With a nil
// trace the wrapper is a pure pass-through — one nil test per commit, no
// allocation — so the hook can stay plumbed in permanently and cost
// nothing when recording is off.
//
// A recording run must not be served from the run cache (set
// runner.Request.NoCache: the trace is harvested from the instance after
// the run, which a cache hit would skip).
type Recorder struct {
	inner pipeline.Controller
	trace *DecisionTrace
}

// NewRecorder wraps inner; events and decisions are appended to trace
// (nil disables recording).
func NewRecorder(inner pipeline.Controller, trace *DecisionTrace) *Recorder {
	return &Recorder{inner: inner, trace: trace}
}

// Trace returns the recording target (nil when disabled).
func (r *Recorder) Trace() *DecisionTrace { return r.trace }

// Name implements pipeline.Controller: the wrapper is invisible in results.
func (r *Recorder) Name() string { return r.inner.Name() }

// Reset implements pipeline.Controller. A fresh run restarts the trace.
func (r *Recorder) Reset(totalClusters int) {
	r.inner.Reset(totalClusters)
	if r.trace != nil {
		r.trace.TotalClusters = totalClusters
		r.trace.Policy = r.inner.Name()
		r.trace.clear()
	}
}

// OnCommit implements pipeline.Controller.
func (r *Recorder) OnCommit(ev pipeline.CommitEvent) int {
	want := r.inner.OnCommit(ev)
	if r.trace != nil {
		r.trace.record(ev, want)
	}
	return want
}

// AttachObserver forwards pipeline.ObserverAware to the wrapped controller.
func (r *Recorder) AttachObserver(o *obs.Observer) {
	if oa, ok := r.inner.(pipeline.ObserverAware); ok {
		oa.AttachObserver(o)
	}
}

var (
	_ pipeline.Controller    = (*Recorder)(nil)
	_ pipeline.ObserverAware = (*Recorder)(nil)
)

// ReplayResult is a counterfactual replay's outcome: the decision sequence
// the candidate controller produced over the recorded stream.
type ReplayResult struct {
	// Policy is the replayed controller's Name().
	Policy string `json:"policy"`
	// Decisions is the candidate's decision sequence over the stream.
	Decisions []Decision `json:"decisions"`
	// Changes counts desired-count changes after the initial choice —
	// the reconfiguration churn the candidate would have requested.
	Changes int `json:"changes"`
	// FinalActive is the candidate's desired count at stream end.
	FinalActive int `json:"final_active"`
}

// ChurnPerMInstr returns requested reconfigurations per million recorded
// instructions.
func (rr ReplayResult) ChurnPerMInstr(instrs uint64) float64 {
	if instrs == 0 {
		return 0
	}
	return 1e6 * float64(rr.Changes) / float64(instrs)
}

// Replay re-drives ctrl over the recorded commit stream and returns its
// decision sequence. ctrl is Reset first; the same policy replayed over
// its own trace reproduces the recorded Decisions exactly (the oracle
// TestSelfReplayOracle proves across the benchmark matrix).
func (t *DecisionTrace) Replay(ctrl pipeline.Controller) ReplayResult {
	ctrl.Reset(t.TotalClusters)
	rr := ReplayResult{Policy: ctrl.Name()}
	last := 0
	for i := 0; i < t.Len(); i++ {
		if want := ctrl.OnCommit(t.Event(i)); want > 0 && want != last {
			rr.Decisions = append(rr.Decisions, Decision{Seq: t.seqs[i], Cycle: t.cycles[i], Active: want})
			last = want
		}
	}
	rr.FinalActive = last
	if n := len(rr.Decisions); n > 1 {
		rr.Changes = n - 1
	}
	return rr
}

// Agreement returns the fraction of recorded instructions over which the
// two decision sequences request the same active-cluster count. Both
// sequences must come from the same trace (same Seq space); sequences are
// compared as step functions over [firstSeq, lastSeq].
func (t *DecisionTrace) Agreement(a, b []Decision) float64 {
	if t.Len() == 0 {
		return 1
	}
	ai, bi := 0, 0
	aCur, bCur := 0, 0
	agree := uint64(0)
	for i := 0; i < t.Len(); i++ {
		seq := t.seqs[i]
		for ai < len(a) && a[ai].Seq <= seq {
			aCur = a[ai].Active
			ai++
		}
		for bi < len(b) && b[bi].Seq <= seq {
			bCur = b[bi].Active
			bi++
		}
		if aCur == bCur {
			agree++
		}
	}
	return float64(agree) / float64(t.Len())
}

// Describe returns a one-line header summary for logs and CLIs.
func (t *DecisionTrace) Describe() string {
	return fmt.Sprintf("%s seed=%d window=%d policy=%s events=%d decisions=%d",
		t.Bench, t.Seed, t.Window, t.Policy, t.Len(), len(t.Decisions))
}
