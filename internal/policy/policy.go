// Package policy makes the paper's reconfiguration controllers first-class
// experiment subjects: named, parameter-serializable policy specs, a
// decision-trace recorder with a counterfactual replay engine, multi-
// objective fitness scoring, and a deterministic tournament search over
// controller parameter space.
//
// The paper's central result is that *which* policy runs — interval
// exploration (§4.2), distant-ILP thresholds (§4.3) or fine-grained
// per-branch tables (§4.4) — dominates performance. This package turns the
// concrete controller types in internal/core into data: a Spec is a strict
// JSON document (mirroring internal/spec's conventions: canonical
// serialization, FNV-1a fingerprint) that names a controller family and its
// parameters, builds fresh pipeline.Controller instances on demand, and
// folds its fingerprint into the runner's content-addressed cache key via
// runner.Request.PolicyKey.
package policy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"

	"clustersim/internal/core"
	"clustersim/internal/pipeline"
)

// Version is the policy-spec format version this package reads and writes.
const Version = 1

// Controller family names accepted in Spec.Name.
const (
	FamilyStatic     = "static"
	FamilyExplore    = "explore"
	FamilyDistantILP = "distant-ilp"
	FamilyFineGrain  = "fine-grain"
)

// Spec is one serializable controller description: a family name plus that
// family's parameters. Zero-valued parameters select the paper's constants
// (each family's setDefaults), so the empty Params is always valid.
type Spec struct {
	// Version is the format version (must be 1).
	Version int `json:"version"`
	// Name selects the controller family: "static", "explore",
	// "distant-ilp" or "fine-grain".
	Name string `json:"name"`
	// Doc is free-form documentation.
	Doc string `json:"doc,omitempty"`
	// Params holds the family's parameters; fields belonging to other
	// families must stay zero.
	Params Params `json:"params,omitempty"`
}

// Params is the union of every family's knobs. Field comments name the
// owning family; Validate rejects a spec that sets another family's fields,
// so a typo fails loudly instead of silently selecting a default.
type Params struct {
	// Clusters pins the active-cluster count (static; >= 1).
	Clusters int `json:"clusters,omitempty"`

	// InitialInterval .. MacroInterval mirror core.ExploreConfig
	// (explore).
	InitialInterval uint64  `json:"initial_interval,omitempty"`
	MaxInterval     uint64  `json:"max_interval,omitempty"`
	IPCDelta        float64 `json:"ipc_delta,omitempty"`
	MetricDelta     float64 `json:"metric_delta,omitempty"`
	Thresh1         float64 `json:"thresh1,omitempty"`
	Thresh2         float64 `json:"thresh2,omitempty"`
	Configs         []int   `json:"configs,omitempty"`
	WarmupIntervals int     `json:"warmup_intervals,omitempty"`
	MacroInterval   uint64  `json:"macro_interval,omitempty"`

	// Interval and DistantThreshold mirror core.DistantILPConfig
	// (distant-ilp). Narrow/Wide are shared with fine-grain.
	Interval         uint64 `json:"interval,omitempty"`
	DistantThreshold uint64 `json:"distant_threshold,omitempty"`

	// EveryNthBranch .. CallReturnOnly mirror core.FineGrainConfig
	// (fine-grain).
	EveryNthBranch int    `json:"every_nth_branch,omitempty"`
	Samples        int    `json:"samples,omitempty"`
	TableSize      int    `json:"table_size,omitempty"`
	Window         int    `json:"window,omitempty"`
	WindowDistant  int    `json:"window_distant,omitempty"`
	FlushInterval  uint64 `json:"flush_interval,omitempty"`
	CallReturnOnly bool   `json:"call_return_only,omitempty"`

	// Narrow and Wide are the two candidate configurations of the
	// distant-ilp and fine-grain families.
	Narrow int `json:"narrow,omitempty"`
	Wide   int `json:"wide,omitempty"`

	// IPCDelta and MetricDelta above are shared by explore and
	// distant-ilp.
}

// family describes one registered controller family.
type family struct {
	// validate rejects parameters outside the family's vocabulary or
	// range.
	validate func(p Params) error
	// build constructs a fresh controller instance from the parameters.
	build func(p Params) pipeline.Controller
}

// families is the registry. Keys are Spec.Name values; iteration always
// goes through Families() (collect-then-sort), never a raw range.
var families = map[string]family{
	FamilyStatic: {
		validate: func(p Params) error {
			if p.Clusters < 1 {
				return fmt.Errorf("policy: static needs clusters >= 1, have %d", p.Clusters)
			}
			return rejectForeign(p, "static", func(q *Params) { q.Clusters = 0 })
		},
		build: func(p Params) pipeline.Controller {
			return &core.Static{N: p.Clusters}
		},
	},
	FamilyExplore: {
		validate: func(p Params) error {
			return rejectForeign(p, "explore", func(q *Params) {
				q.InitialInterval, q.MaxInterval = 0, 0
				q.IPCDelta, q.MetricDelta, q.Thresh1, q.Thresh2 = 0, 0, 0, 0
				q.Configs = nil
				q.WarmupIntervals, q.MacroInterval = 0, 0
			})
		},
		build: func(p Params) pipeline.Controller {
			return core.NewExplore(core.ExploreConfig{
				InitialInterval: p.InitialInterval,
				MaxInterval:     p.MaxInterval,
				IPCDelta:        p.IPCDelta,
				MetricDelta:     p.MetricDelta,
				Thresh1:         p.Thresh1,
				Thresh2:         p.Thresh2,
				Configs:         append([]int(nil), p.Configs...),
				WarmupIntervals: p.WarmupIntervals,
				MacroInterval:   p.MacroInterval,
			})
		},
	},
	FamilyDistantILP: {
		validate: func(p Params) error {
			return rejectForeign(p, "distant-ilp", func(q *Params) {
				q.Interval, q.DistantThreshold = 0, 0
				q.Narrow, q.Wide = 0, 0
				q.IPCDelta, q.MetricDelta = 0, 0
			})
		},
		build: func(p Params) pipeline.Controller {
			return core.NewDistantILP(core.DistantILPConfig{
				Interval:    p.Interval,
				Threshold:   p.DistantThreshold,
				Narrow:      p.Narrow,
				Wide:        p.Wide,
				IPCDelta:    p.IPCDelta,
				MetricDelta: p.MetricDelta,
			})
		},
	},
	FamilyFineGrain: {
		validate: func(p Params) error {
			return rejectForeign(p, "fine-grain", func(q *Params) {
				q.EveryNthBranch, q.Samples, q.TableSize = 0, 0, 0
				q.Window, q.WindowDistant = 0, 0
				q.FlushInterval = 0
				q.CallReturnOnly = false
				q.Narrow, q.Wide = 0, 0
			})
		},
		build: func(p Params) pipeline.Controller {
			return core.NewFineGrain(core.FineGrainConfig{
				EveryNthBranch: p.EveryNthBranch,
				Samples:        p.Samples,
				TableSize:      p.TableSize,
				Window:         p.Window,
				Threshold:      p.WindowDistant,
				FlushInterval:  p.FlushInterval,
				Narrow:         p.Narrow,
				Wide:           p.Wide,
				CallReturnOnly: p.CallReturnOnly,
			})
		},
	},
}

// rejectForeign zeroes the family's own fields via clear, then fails if
// anything else in p is still set — the strictness that makes a misplaced
// parameter an error rather than a silently ignored default.
func rejectForeign(p Params, fam string, clear func(*Params)) error {
	clear(&p)
	// Every Params field is omitempty, so the canonical JSON of the
	// remainder is "{}" exactly when nothing foreign is set — and when
	// something is, the message shows it under its spec-file key.
	rest, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("policy: %w", err)
	}
	if string(rest) != "{}" {
		return fmt.Errorf("policy: parameters outside the %s family: %s", fam, rest)
	}
	return nil
}

// Families returns the registered family names, sorted.
func Families() []string {
	var names []string
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Parse decodes and validates a policy spec. Unknown fields, trailing data
// and out-of-range values are all errors.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("policy: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil || len(trailing) > 0 {
		return nil, fmt.Errorf("policy: trailing data after spec document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads and parses the policy spec at path.
func LoadFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("policy: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return s, nil
}

// Validate checks the spec against the registry and its family's parameter
// vocabulary.
func (s *Spec) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("policy: unsupported version %d (this build reads version %d)", s.Version, Version)
	}
	fam, ok := families[s.Name]
	if !ok {
		return fmt.Errorf("policy: unknown family %q (have %v)", s.Name, Families())
	}
	return fam.validate(s.Params)
}

// Build constructs a fresh controller instance for this spec. Controllers
// are stateful; every simulator run needs its own instance.
func (s *Spec) Build() (pipeline.Controller, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return families[s.Name].build(s.Params), nil
}

// Serialize renders the spec in canonical form: two-space-indented JSON
// with a trailing newline, zero-valued optional fields omitted.
// Parse(Serialize(s)) reproduces s, and Serialize is the byte stream
// Fingerprint hashes.
func (s *Spec) Serialize() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("policy: %w", err)
	}
	return append(data, '\n'), nil
}

// Fingerprint hashes the canonical serialization (FNV-1a 64). It identifies
// the policy in decision-trace headers, leaderboards and runner cache keys.
func (s *Spec) Fingerprint() (uint64, error) {
	data, err := s.Serialize()
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64(), nil
}

// Key returns the string form of the fingerprint for
// runner.Request.PolicyKey, making two parameterizations of the same
// family distinct cache entries even when Controller.Name() coincides.
func (s *Spec) Key() (string, error) {
	fp, err := s.Fingerprint()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("policy:%016x", fp), nil
}

// Paper returns the built-in spec for one of the paper's controllers:
// "explore" (§4.2 defaults), "distant-ilp" (§4.3, 1K interval),
// "fine-grain" (§4.4 branch scheme), "fine-grain-cr" (call/return
// variant), or "static-N".
func Paper(name string) (*Spec, error) {
	switch name {
	case "explore":
		return &Spec{Version: Version, Name: FamilyExplore,
			Doc: "§4.2 interval exploration, paper constants"}, nil
	case "distant-ilp":
		return &Spec{Version: Version, Name: FamilyDistantILP,
			Doc: "§4.3 distant-ILP thresholds, 1K interval"}, nil
	case "fine-grain":
		return &Spec{Version: Version, Name: FamilyFineGrain,
			Doc: "§4.4 per-branch reconfiguration table"}, nil
	case "fine-grain-cr":
		return &Spec{Version: Version, Name: FamilyFineGrain,
			Doc:    "§4.4 call/return variant",
			Params: Params{CallReturnOnly: true}}, nil
	}
	var n int
	if _, err := fmt.Sscanf(name, "static-%d", &n); err == nil && n >= 1 {
		return &Spec{Version: Version, Name: FamilyStatic,
			Doc:    fmt.Sprintf("fixed %d-cluster machine", n),
			Params: Params{Clusters: n}}, nil
	}
	return nil, fmt.Errorf("policy: unknown paper policy %q", name)
}
