package policy

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

const policySpecsDir = "../../specs/policy"

// TestShippedSpecsLoad keeps every checked-in policy spec parseable and
// buildable: specs/policy is user-facing documentation, so a format change
// that orphans one is a test failure, not a runtime surprise.
func TestShippedSpecsLoad(t *testing.T) {
	entries, err := os.ReadDir(policySpecsDir)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			paths = append(paths, filepath.Join(policySpecsDir, e.Name()))
		}
	}
	sort.Strings(paths)
	if len(paths) < 4 {
		t.Fatalf("expected at least 4 shipped policy specs, found %d", len(paths))
	}
	fps := make(map[uint64]string, len(paths))
	for _, path := range paths {
		s, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if s.Doc == "" {
			t.Errorf("%s: shipped specs must carry a doc string", path)
		}
		ctrl, err := s.Build()
		if err != nil {
			t.Fatalf("%s: Build: %v", path, err)
		}
		if ctrl.Name() == "" {
			t.Fatalf("%s: empty controller name", path)
		}
		fp, err := s.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := fps[fp]; dup {
			t.Errorf("%s and %s share fingerprint %016x", prev, path, fp)
		}
		fps[fp] = path
	}
}
