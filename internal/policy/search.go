package policy

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"clustersim/internal/energy"
	"clustersim/internal/pipeline"
	"clustersim/internal/rng"
	"clustersim/internal/runner"
)

// SearchOptions parameterize a tournament search over controller parameter
// space. The search is deterministic: the same options (and the same
// simulator build) always produce the same leaderboard, and every
// evaluation is a cacheable runner request, so a rerun — or a resumed run
// via the runner's checkpoint directory — is served from the cache.
type SearchOptions struct {
	// Seed drives candidate generation and mutation (internal/rng).
	Seed uint64
	// Population is the number of candidates per generation (default 16,
	// minimum 4: the paper's controllers seed the first generation).
	Population int
	// Generations is the number of selection rounds (default 3).
	Generations int
	// Elites is how many top candidates survive unchanged into the next
	// generation (default Population/4, minimum 1).
	Elites int
	// Benchmarks is the evaluation workload list (required).
	Benchmarks []string
	// Window returns the simulated instruction count per benchmark
	// (required).
	Window func(bench string) uint64
	// WorkloadSeed seeds the workload engine (default 1).
	WorkloadSeed uint64
	// Config is the machine configuration (zero Clusters selects
	// pipeline.DefaultConfig).
	Config pipeline.Config
	// Runner executes the evaluation sweeps (nil builds a default pool).
	// Give it a CheckpointDir and call LoadPersisted first to make the
	// search crash-resumable.
	Runner *runner.Runner
	// Model and Weights parameterize fitness (zero values select
	// energy.DefaultModel and DefaultWeights).
	Model   energy.Model
	Weights Weights
	// Progress, when non-nil, receives one line per generation.
	Progress func(format string, args ...any)
}

func (o SearchOptions) withDefaults() SearchOptions {
	if o.Population < 4 {
		if o.Population == 0 {
			o.Population = 16
		} else {
			o.Population = 4
		}
	}
	if o.Generations <= 0 {
		o.Generations = 3
	}
	if o.Elites <= 0 {
		o.Elites = o.Population / 4
	}
	if o.Elites < 1 {
		o.Elites = 1
	}
	if o.Elites > o.Population/2 {
		o.Elites = o.Population / 2
	}
	if o.WorkloadSeed == 0 {
		o.WorkloadSeed = 1
	}
	if o.Config.Clusters == 0 {
		o.Config = pipeline.DefaultConfig()
	}
	if o.Runner == nil {
		o.Runner = runner.New(0)
	}
	if o.Model == (energy.Model{}) {
		o.Model = energy.DefaultModel()
	}
	if o.Weights == (Weights{}) {
		o.Weights = DefaultWeights()
	}
	return o
}

// Entry is one evaluated candidate on the leaderboard.
type Entry struct {
	// Rank is 1-based leaderboard position.
	Rank int `json:"rank"`
	// Spec is the candidate's policy description.
	Spec *Spec `json:"spec"`
	// Fingerprint is Spec.Fingerprint (the candidate's identity).
	Fingerprint uint64 `json:"fingerprint"`
	// Generation is the generation the candidate first appeared in.
	Generation int `json:"generation"`
	// PerBench holds one Fitness per SearchOptions.Benchmarks entry, in
	// order; Aggregate folds them (geomean IPC, mean energy/churn).
	PerBench  []Fitness `json:"per_bench"`
	Aggregate Fitness   `json:"aggregate"`
}

// Leaderboard is a ranked search outcome.
type Leaderboard struct {
	// Benchmarks is the evaluation workload list (PerBench column order).
	Benchmarks []string `json:"benchmarks"`
	// Entries is every distinct candidate evaluated, best first.
	Entries []Entry `json:"entries"`
	// Runs and CacheHits summarize the simulator work performed.
	Runs      int `json:"runs"`
	CacheHits int `json:"cache_hits"`
}

// Search runs a deterministic tournament/evolutionary search: generation
// zero seeds the paper's controllers plus random parameterizations, each
// generation evaluates its candidates as one runner sweep (benchmark ×
// candidate), the top Elites survive, and the rest of the next generation
// is bred by tournament selection plus family-specific parameter mutation.
func Search(o SearchOptions) (*Leaderboard, error) {
	o = o.withDefaults()
	if len(o.Benchmarks) == 0 {
		return nil, fmt.Errorf("policy: search needs benchmarks")
	}
	if o.Window == nil {
		return nil, fmt.Errorf("policy: search needs a window function")
	}
	r := rng.New(o.Seed)
	stats0 := o.Runner.Stats()

	pop, err := seedPopulation(o.Population, r)
	if err != nil {
		return nil, err
	}
	seen := make(map[uint64]*Entry)
	var order []*Entry // evaluation order, deterministic

	for gen := 0; gen < o.Generations; gen++ {
		if err := evaluate(o, gen, pop, seen, &order); err != nil {
			return nil, err
		}
		ranked := rankPopulation(pop, seen)
		if o.Progress != nil {
			best := seen[ranked[0]]
			o.Progress("gen %d: %d candidates, best %s score %.4f (geomean IPC %.4f)",
				gen, len(ranked), best.Spec.Name, best.Aggregate.Score, best.Aggregate.IPC)
		}
		if gen == o.Generations-1 {
			break
		}
		pop, err = breed(o, r, ranked, seen)
		if err != nil {
			return nil, err
		}
	}

	lb := &Leaderboard{Benchmarks: append([]string(nil), o.Benchmarks...)}
	for _, e := range order {
		lb.Entries = append(lb.Entries, *e)
	}
	sortEntries(lb.Entries)
	for i := range lb.Entries {
		lb.Entries[i].Rank = i + 1
	}
	stats1 := o.Runner.Stats()
	lb.Runs = stats1.Runs - stats0.Runs
	lb.CacheHits = stats1.CacheHits - stats0.CacheHits
	return lb, nil
}

// sortEntries ranks by aggregate score descending, fingerprint ascending as
// the total tie-break (so equal-scoring candidates order deterministically).
func sortEntries(entries []Entry) {
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].Aggregate.Score != entries[j].Aggregate.Score {
			return entries[i].Aggregate.Score > entries[j].Aggregate.Score
		}
		return entries[i].Fingerprint < entries[j].Fingerprint
	})
}

// seedPopulation builds generation zero: the four paper controllers first,
// then random parameterizations.
func seedPopulation(n int, r *rng.Source) ([]*Spec, error) {
	var pop []*Spec
	for _, name := range []string{"explore", "distant-ilp", "fine-grain", "fine-grain-cr"} {
		s, err := Paper(name)
		if err != nil {
			return nil, err
		}
		pop = append(pop, s)
	}
	for len(pop) < n {
		pop = append(pop, randomSpec(r))
	}
	return pop[:n], nil
}

// evaluate scores every not-yet-seen candidate of pop as one runner sweep.
func evaluate(o SearchOptions, gen int, pop []*Spec, seen map[uint64]*Entry, order *[]*Entry) error {
	type cell struct {
		entry *Entry
		bench int
	}
	var reqs []runner.Request
	var cells []cell
	for _, s := range pop {
		fp, err := s.Fingerprint()
		if err != nil {
			return err
		}
		if _, ok := seen[fp]; ok {
			continue
		}
		e := &Entry{Spec: s, Fingerprint: fp, Generation: gen,
			PerBench: make([]Fitness, len(o.Benchmarks))}
		seen[fp] = e
		*order = append(*order, e)
		key := fmt.Sprintf("policy:%016x", fp)
		for bi, bench := range o.Benchmarks {
			ctrl, err := s.Build()
			if err != nil {
				return err
			}
			reqs = append(reqs, runner.Request{
				ID:         fmt.Sprintf("policy-search-g%d", gen),
				Bench:      bench,
				Seed:       o.WorkloadSeed,
				Window:     o.Window(bench),
				Config:     o.Config,
				Controller: ctrl,
				PolicyKey:  key,
			})
			cells = append(cells, cell{entry: e, bench: bi})
		}
	}
	results, err := o.Runner.RunAll(reqs)
	if err != nil {
		return err
	}
	for i, c := range cells {
		c.entry.PerBench[c.bench] = Evaluate(results[i], o.Model, o.Weights)
	}
	for _, s := range pop {
		fp, _ := s.Fingerprint()
		e := seen[fp]
		if e.Aggregate == (Fitness{}) {
			e.Aggregate = Aggregate(e.PerBench, o.Weights)
		}
	}
	return nil
}

// rankPopulation returns pop's distinct fingerprints ranked best-first.
func rankPopulation(pop []*Spec, seen map[uint64]*Entry) []uint64 {
	var fps []uint64
	dup := make(map[uint64]bool)
	for _, s := range pop {
		fp, _ := s.Fingerprint()
		if !dup[fp] {
			dup[fp] = true
			fps = append(fps, fp)
		}
	}
	sort.SliceStable(fps, func(i, j int) bool {
		a, b := seen[fps[i]], seen[fps[j]]
		if a.Aggregate.Score != b.Aggregate.Score {
			return a.Aggregate.Score > b.Aggregate.Score
		}
		return a.Fingerprint < b.Fingerprint
	})
	return fps
}

// breed builds the next generation: elites survive, the rest are mutants of
// tournament-selected parents.
func breed(o SearchOptions, r *rng.Source, ranked []uint64, seen map[uint64]*Entry) ([]*Spec, error) {
	var next []*Spec
	for i := 0; i < o.Elites && i < len(ranked); i++ {
		next = append(next, seen[ranked[i]].Spec)
	}
	for len(next) < o.Population {
		// Binary tournament: two uniform picks, the better-ranked wins.
		a, b := r.Intn(len(ranked)), r.Intn(len(ranked))
		if b < a {
			a = b
		}
		next = append(next, mutate(r, seen[ranked[a]].Spec))
	}
	return next, nil
}

// Parameter menus for random generation and mutation. Values bracket the
// paper's constants (see each family's config defaults in internal/core).
var (
	menuInitialInterval = []uint64{5_000, 10_000, 20_000, 50_000}
	menuIPCDelta        = []float64{0.15, 0.25, 0.35, 0.5}
	menuThresh          = []float64{3, 5, 8}
	menuWarmup          = []int{-1, 1, 2}
	menuMetricDelta     = []float64{0.005, 0.01, 0.02}

	menuInterval     = []uint64{500, 1_000, 2_000, 5_000, 10_000}
	menuDistantFrac  = []float64{0.60, 0.70, 0.78, 0.85, 0.90}
	menuNarrow       = []int{2, 4, 8}
	menuEveryNth     = []int{1, 3, 5, 8, 12}
	menuSamples      = []int{3, 5, 10, 20}
	menuWindow       = []int{180, 270, 360, 540, 720}
	menuFlushEveryMI = []uint64{1, 5, 10, 50} // millions of instructions
)

func pickU64(r *rng.Source, menu []uint64) uint64 { return menu[r.Intn(len(menu))] }
func pickF64(r *rng.Source, menu []float64) float64 {
	return menu[r.Intn(len(menu))]
}
func pickInt(r *rng.Source, menu []int) int { return menu[r.Intn(len(menu))] }

// randomSpec draws a dynamic-family candidate with 2–3 mutations applied to
// the family's paper defaults.
func randomSpec(r *rng.Source) *Spec {
	fam := []string{FamilyExplore, FamilyDistantILP, FamilyFineGrain}[r.Intn(3)]
	s := &Spec{Version: Version, Name: fam, Doc: "searched candidate"}
	for k := 2 + r.Intn(2); k > 0; k-- {
		mutateInPlace(r, s)
	}
	return s
}

// mutate returns a copy of parent with one or two parameters re-drawn.
func mutate(r *rng.Source, parent *Spec) *Spec {
	s := &Spec{Version: Version, Name: parent.Name, Doc: "searched candidate",
		Params: parent.Params}
	s.Params.Configs = append([]int(nil), parent.Params.Configs...)
	for k := 1 + r.Intn(2); k > 0; k-- {
		mutateInPlace(r, s)
	}
	return s
}

// mutateInPlace re-draws one parameter of s from its family's menu.
func mutateInPlace(r *rng.Source, s *Spec) {
	p := &s.Params
	switch s.Name {
	case FamilyExplore:
		switch r.Intn(5) {
		case 0:
			p.InitialInterval = pickU64(r, menuInitialInterval)
		case 1:
			p.IPCDelta = pickF64(r, menuIPCDelta)
		case 2:
			p.Thresh1 = pickF64(r, menuThresh)
			p.Thresh2 = pickF64(r, menuThresh)
		case 3:
			p.WarmupIntervals = pickInt(r, menuWarmup)
		case 4:
			p.MetricDelta = pickF64(r, menuMetricDelta)
		}
	case FamilyDistantILP:
		switch r.Intn(3) {
		case 0:
			p.Interval = pickU64(r, menuInterval)
			// Threshold scales with the interval; re-draw it too so the
			// fraction stays in the calibrated band.
			p.DistantThreshold = uint64(float64(p.Interval) * pickF64(r, menuDistantFrac))
		case 1:
			iv := p.Interval
			if iv == 0 {
				iv = 1_000
			}
			p.DistantThreshold = uint64(float64(iv) * pickF64(r, menuDistantFrac))
		case 2:
			p.Narrow = pickInt(r, menuNarrow)
		}
	case FamilyFineGrain:
		switch r.Intn(5) {
		case 0:
			p.EveryNthBranch = pickInt(r, menuEveryNth)
		case 1:
			p.Samples = pickInt(r, menuSamples)
		case 2:
			p.Window = pickInt(r, menuWindow)
			p.WindowDistant = int(float64(p.Window) * pickF64(r, menuDistantFrac))
		case 3:
			w := p.Window
			if w == 0 {
				w = 360
			}
			p.WindowDistant = int(float64(w) * pickF64(r, menuDistantFrac))
		case 4:
			p.FlushInterval = pickU64(r, menuFlushEveryMI) * 1_000_000
		}
	case FamilyStatic:
		p.Clusters = []int{2, 4, 8, 16}[r.Intn(4)]
	}
}

// WriteCSV renders the leaderboard as CSV: one row per candidate with the
// aggregate metrics, per-benchmark IPC columns, and the candidate's
// canonical params JSON.
func (l *Leaderboard) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"rank", "family", "fingerprint", "score", "geomean_ipc",
		"energy_per_instr", "churn_per_m_instr"}
	for _, b := range l.Benchmarks {
		header = append(header, "ipc:"+b)
	}
	header = append(header, "params")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, e := range l.Entries {
		params, err := json.Marshal(e.Spec.Params)
		if err != nil {
			return err
		}
		row := []string{
			strconv.Itoa(e.Rank),
			e.Spec.Name,
			fmt.Sprintf("%016x", e.Fingerprint),
			formatF(e.Aggregate.Score),
			formatF(e.Aggregate.IPC),
			formatF(e.Aggregate.EnergyPerInstr),
			formatF(e.Aggregate.ChurnPerMInstr),
		}
		for _, f := range e.PerBench {
			row = append(row, formatF(f.IPC))
		}
		row = append(row, string(params))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON renders the leaderboard as indented JSON.
func (l *Leaderboard) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l)
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
