package policy

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"clustersim/internal/runner"
)

func smokeOptions(rn *runner.Runner) SearchOptions {
	return SearchOptions{
		Seed:        42,
		Population:  8,
		Generations: 2,
		Benchmarks:  []string{"gzip", "vpr"},
		Window:      func(string) uint64 { return 50_000 },
		Runner:      rn,
	}
}

func TestSearchSmokeDeterministic(t *testing.T) {
	lb1, err := Search(smokeOptions(runner.New(0)))
	if err != nil {
		t.Fatal(err)
	}
	if len(lb1.Entries) < 8 {
		t.Fatalf("leaderboard has %d entries, want >= 8", len(lb1.Entries))
	}
	for i := range lb1.Entries {
		if lb1.Entries[i].Rank != i+1 {
			t.Fatalf("entry %d has rank %d", i, lb1.Entries[i].Rank)
		}
		if i > 0 && lb1.Entries[i].Aggregate.Score > lb1.Entries[i-1].Aggregate.Score {
			t.Fatalf("leaderboard not sorted: rank %d score %v above rank %d score %v",
				i+1, lb1.Entries[i].Aggregate.Score, i, lb1.Entries[i-1].Aggregate.Score)
		}
		if len(lb1.Entries[i].PerBench) != 2 {
			t.Fatalf("entry %d has %d per-bench cells, want 2", i, len(lb1.Entries[i].PerBench))
		}
	}
	if lb1.Runs == 0 {
		t.Fatal("first search reported zero simulator runs")
	}

	// A fresh runner must reproduce the leaderboard exactly.
	lb2, err := Search(smokeOptions(runner.New(0)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lb1.Entries, lb2.Entries) {
		t.Fatal("identical search options produced different leaderboards")
	}
}

func TestSearchRerunHitsCache(t *testing.T) {
	rn := runner.New(0)
	o := smokeOptions(rn)
	lb1, err := Search(o)
	if err != nil {
		t.Fatal(err)
	}
	lb2, err := Search(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lb1.Entries, lb2.Entries) {
		t.Fatal("rerun on the same runner changed the leaderboard")
	}
	if lb2.Runs != 0 {
		t.Fatalf("rerun executed %d simulations, want 0 (all cache hits)", lb2.Runs)
	}
	if lb2.CacheHits == 0 {
		t.Fatal("rerun reported zero cache hits")
	}
}

// TestSearchTournament exercises the acceptance-scale search: >= 32 distinct
// candidates over two benchmarks, with the paper's fine-grain baseline
// guaranteed a leaderboard slot (it seeds generation zero), so the best
// candidate's geomean IPC is >= the baseline's by construction — and the
// test verifies the search actually surfaced it.
func TestSearchTournament(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance-scale tournament skipped in short mode")
	}
	o := SearchOptions{
		Seed:        7,
		Population:  16,
		Generations: 3,
		Benchmarks:  []string{"gzip", "vpr"},
		Window:      func(string) uint64 { return 50_000 },
		Runner:      runner.New(0),
	}
	lb, err := Search(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(lb.Entries) < 32 {
		t.Fatalf("tournament evaluated %d distinct candidates, want >= 32", len(lb.Entries))
	}

	fg, err := Paper("fine-grain")
	if err != nil {
		t.Fatal(err)
	}
	fgFP, _ := fg.Fingerprint()
	var baseline *Entry
	for i := range lb.Entries {
		if lb.Entries[i].Fingerprint == fgFP {
			baseline = &lb.Entries[i]
			break
		}
	}
	if baseline == nil {
		t.Fatal("paper fine-grain baseline missing from the leaderboard")
	}
	best := lb.Entries[0]
	if best.Aggregate.Score < baseline.Aggregate.Score {
		t.Fatalf("best score %v below the seeded fine-grain baseline %v",
			best.Aggregate.Score, baseline.Aggregate.Score)
	}
	var bestIPC float64
	for _, e := range lb.Entries {
		if e.Aggregate.IPC > bestIPC {
			bestIPC = e.Aggregate.IPC
		}
	}
	if bestIPC < baseline.Aggregate.IPC {
		t.Fatalf("no candidate reaches the fine-grain baseline geomean IPC %v", baseline.Aggregate.IPC)
	}
}

func TestSearchOptionValidation(t *testing.T) {
	if _, err := Search(SearchOptions{Window: func(string) uint64 { return 1 }}); err == nil {
		t.Fatal("search without benchmarks should fail")
	}
	if _, err := Search(SearchOptions{Benchmarks: []string{"gzip"}}); err == nil {
		t.Fatal("search without a window function should fail")
	}
}

func TestLeaderboardWriters(t *testing.T) {
	lb, err := Search(smokeOptions(runner.New(0)))
	if err != nil {
		t.Fatal(err)
	}

	var csvBuf bytes.Buffer
	if err := lb.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != len(lb.Entries)+1 {
		t.Fatalf("CSV has %d lines, want header + %d rows", len(lines), len(lb.Entries))
	}
	if !strings.HasPrefix(lines[0], "rank,family,fingerprint,score,geomean_ipc") {
		t.Fatalf("unexpected CSV header %q", lines[0])
	}
	if !strings.Contains(lines[0], "ipc:gzip") || !strings.Contains(lines[0], "ipc:vpr") {
		t.Fatalf("CSV header lacks per-benchmark columns: %q", lines[0])
	}

	var jsonBuf bytes.Buffer
	if err := lb.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonBuf.String(), `"entries"`) {
		t.Fatal("JSON output lacks entries")
	}
}
