package policy

import (
	"testing"

	"clustersim/internal/pipeline"
)

// TestRecorderDisabledAllocFree pins the satellite guarantee that the
// decision-recording hook is alloc-neutral when recording is off: a
// nil-trace Recorder adds one nil test per commit and nothing else.
func TestRecorderDisabledAllocFree(t *testing.T) {
	spec, err := Paper("distant-ilp")
	if err != nil {
		t.Fatal(err)
	}
	inner, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(inner, nil)
	rec.Reset(16)
	ev := pipeline.CommitEvent{Cycle: 1, Seq: 1, PC: 0x1000}
	if avg := testing.AllocsPerRun(10_000, func() {
		ev.Cycle += 2
		ev.Seq++
		rec.OnCommit(ev)
	}); avg != 0 {
		t.Fatalf("disabled recorder allocates %v per commit, want 0", avg)
	}
}

// BenchmarkRecorderDisabled feeds commits through a nil-trace Recorder; the
// CI benchdiff gate watches its allocs/op (must stay 0).
func BenchmarkRecorderDisabled(b *testing.B) {
	spec, err := Paper("distant-ilp")
	if err != nil {
		b.Fatal(err)
	}
	inner, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	rec := NewRecorder(inner, nil)
	rec.Reset(16)
	ev := pipeline.CommitEvent{Cycle: 1, Seq: 1, PC: 0x1000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Cycle += 2
		ev.Seq++
		rec.OnCommit(ev)
	}
}
