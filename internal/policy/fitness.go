package policy

import (
	"math"

	"clustersim/internal/energy"
	"clustersim/internal/pipeline"
)

// Weights parameterize the multi-objective fitness score:
//
//	Score = IPC − EnergyPerInstr·EPI − ChurnPerMInstr·(reconfigs per M instr)
//
// IPC is the paper's headline metric; the energy term prices powered
// cluster-cycles (the leakage §4.2 recovers by disabling clusters) and the
// churn term prices reconfiguration instability (each applied reconfig
// costs a drain and, under the decentralized cache, a flush). The default
// weights keep IPC dominant: a unit of IPC outweighs ~50 energy units per
// instruction (typical runs spend 8–15) and ~1000 reconfigs per M instr.
type Weights struct {
	EnergyPerInstr float64 `json:"energy_per_instr"`
	ChurnPerMInstr float64 `json:"churn_per_m_instr"`
}

// DefaultWeights returns the weights described on Weights.
func DefaultWeights() Weights {
	return Weights{EnergyPerInstr: 0.02, ChurnPerMInstr: 0.001}
}

// Fitness is one run's multi-objective evaluation.
type Fitness struct {
	IPC            float64 `json:"ipc"`
	EnergyPerInstr float64 `json:"energy_per_instr"`
	EDP            float64 `json:"edp"`
	ChurnPerMInstr float64 `json:"churn_per_m_instr"`
	Score          float64 `json:"score"`
}

// Evaluate scores one run result under the given energy model and weights.
func Evaluate(r pipeline.Result, m energy.Model, w Weights) Fitness {
	act := energy.Activity{
		Cycles:               r.Cycles,
		Instructions:         r.Instructions,
		PoweredClusterCycles: r.ActiveSum,
		Hops:                 r.Net.Hops,
		CacheAccesses:        r.Mem.Loads + r.Mem.Stores,
	}
	br := m.Estimate(act)
	f := Fitness{
		IPC:            r.IPC(),
		EnergyPerInstr: br.EnergyPerInstruction(r.Instructions),
		EDP:            m.EDP(act),
		ChurnPerMInstr: r.ReconfigsPerMInstr(),
	}
	f.Score = f.IPC - w.EnergyPerInstr*f.EnergyPerInstr - w.ChurnPerMInstr*f.ChurnPerMInstr
	return f
}

// Aggregate folds per-benchmark fitness values into one candidate-level
// summary: geometric-mean IPC (the paper's cross-benchmark metric),
// arithmetic means for energy and churn, and the score recomputed from the
// aggregates so it stays comparable across candidates evaluated on the
// same benchmark list.
func Aggregate(per []Fitness, w Weights) Fitness {
	if len(per) == 0 {
		return Fitness{}
	}
	logIPC := 0.0
	var agg Fitness
	for _, f := range per {
		if f.IPC <= 0 {
			logIPC = math.Inf(-1)
		} else {
			logIPC += math.Log(f.IPC)
		}
		agg.EnergyPerInstr += f.EnergyPerInstr
		agg.EDP += f.EDP
		agg.ChurnPerMInstr += f.ChurnPerMInstr
	}
	n := float64(len(per))
	if math.IsInf(logIPC, -1) {
		agg.IPC = 0
	} else {
		agg.IPC = math.Exp(logIPC / n)
	}
	agg.EnergyPerInstr /= n
	agg.EDP /= n
	agg.ChurnPerMInstr /= n
	agg.Score = agg.IPC - w.EnergyPerInstr*agg.EnergyPerInstr - w.ChurnPerMInstr*agg.ChurnPerMInstr
	return agg
}
