package policy

import (
	"bytes"
	"reflect"
	"testing"

	"clustersim/internal/pipeline"
	"clustersim/internal/rng"
)

// synthEvents builds a deterministic commit stream with a monotone clock and
// enough branch/memory/distant variety to exercise every controller family.
func synthEvents(n int, seed uint64) []pipeline.CommitEvent {
	r := rng.New(seed)
	evs := make([]pipeline.CommitEvent, n)
	cycle := uint64(0)
	for i := range evs {
		cycle += 1 + uint64(r.Intn(3))
		isBranch := r.Bool(0.2)
		evs[i] = pipeline.CommitEvent{
			Cycle:        cycle,
			Seq:          uint64(i + 1),
			PC:           0x1000 + uint64(r.Intn(64))*4,
			IsBranch:     isBranch,
			IsCall:       isBranch && r.Bool(0.2),
			IsMem:        !isBranch && r.Bool(0.4),
			Distant:      r.Bool(0.5),
			Mispredicted: isBranch && r.Bool(0.1),
		}
		if evs[i].IsCall {
			evs[i].IsReturn = false
		} else if isBranch {
			evs[i].IsReturn = r.Bool(0.2)
		}
	}
	return evs
}

// recordSynthetic drives spec's controller over a synthetic stream through a
// Recorder and returns the captured trace.
func recordSynthetic(t *testing.T, spec *Spec, evs []pipeline.CommitEvent) *DecisionTrace {
	t.Helper()
	ctrl, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	trace := &DecisionTrace{Bench: "synthetic", Seed: 7, Window: uint64(len(evs)), PolicyFP: fp}
	rec := NewRecorder(ctrl, trace)
	rec.Reset(16)
	for _, ev := range evs {
		rec.OnCommit(ev)
	}
	return trace
}

func dynamicSpecs(t *testing.T) []*Spec {
	t.Helper()
	var specs []*Spec
	for _, name := range []string{"explore", "distant-ilp", "fine-grain"} {
		s, err := Paper(name)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}
	return specs
}

func TestRecorderCapturesStreamAndDecisions(t *testing.T) {
	evs := synthEvents(30_000, 11)
	for _, spec := range dynamicSpecs(t) {
		trace := recordSynthetic(t, spec, evs)
		if trace.Len() != len(evs) {
			t.Fatalf("%s: recorded %d events, want %d", spec.Name, trace.Len(), len(evs))
		}
		if len(trace.Decisions) == 0 {
			t.Fatalf("%s: no decisions recorded over %d events", spec.Name, len(evs))
		}
		for i, ev := range evs {
			if got := trace.Event(i); got != ev {
				t.Fatalf("%s: event %d reconstructed as %+v, want %+v", spec.Name, i, got, ev)
			}
		}
		// Decisions must be deduplicated: consecutive entries differ.
		for i := 1; i < len(trace.Decisions); i++ {
			if trace.Decisions[i].Active == trace.Decisions[i-1].Active {
				t.Fatalf("%s: decisions %d and %d both request %d clusters",
					spec.Name, i-1, i, trace.Decisions[i].Active)
			}
		}
	}
}

func TestSelfReplayReproducesDecisions(t *testing.T) {
	evs := synthEvents(30_000, 11)
	for _, spec := range dynamicSpecs(t) {
		trace := recordSynthetic(t, spec, evs)
		fresh, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		rr := trace.Replay(fresh)
		if !reflect.DeepEqual(rr.Decisions, trace.Decisions) {
			t.Fatalf("%s: self-replay diverged:\nrecorded %v\nreplayed %v",
				spec.Name, trace.Decisions, rr.Decisions)
		}
		if trace.Agreement(trace.Decisions, rr.Decisions) != 1 {
			t.Fatalf("%s: self-agreement below 1", spec.Name)
		}
		if rr.FinalActive != trace.Decisions[len(trace.Decisions)-1].Active {
			t.Fatalf("%s: FinalActive %d, want %d", spec.Name, rr.FinalActive,
				trace.Decisions[len(trace.Decisions)-1].Active)
		}
	}
}

func TestTraceSerializationRoundTrip(t *testing.T) {
	evs := synthEvents(5_000, 3)
	spec, err := Paper("distant-ilp")
	if err != nil {
		t.Fatal(err)
	}
	trace := recordSynthetic(t, spec, evs)
	trace.ConfigFP = 0xdeadbeef

	var buf bytes.Buffer
	if err := trace.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Bench != trace.Bench || back.Seed != trace.Seed || back.Window != trace.Window ||
		back.Policy != trace.Policy || back.PolicyFP != trace.PolicyFP ||
		back.ConfigFP != trace.ConfigFP || back.TotalClusters != trace.TotalClusters {
		t.Fatalf("header mismatch: %+v vs %+v", back.Describe(), trace.Describe())
	}
	if back.Len() != trace.Len() {
		t.Fatalf("event count %d, want %d", back.Len(), trace.Len())
	}
	for i := 0; i < trace.Len(); i++ {
		if back.Event(i) != trace.Event(i) {
			t.Fatalf("event %d mismatch", i)
		}
	}
	if !reflect.DeepEqual(back.Decisions, trace.Decisions) {
		t.Fatal("decision sequence mismatch after round trip")
	}

	// Truncated data must fail loudly, not return a partial trace.
	if _, err := ReadTrace(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("ReadTrace accepted truncated data")
	}
}

func TestAgreementStepFunctions(t *testing.T) {
	trace := &DecisionTrace{}
	for i := 1; i <= 10; i++ {
		trace.record(pipeline.CommitEvent{Cycle: uint64(i), Seq: uint64(i)}, 0)
	}
	a := []Decision{{Seq: 1, Active: 16}}
	b := []Decision{{Seq: 1, Active: 16}, {Seq: 6, Active: 4}}
	// a and b agree on seqs 1..5 (16 clusters) and disagree on 6..10.
	if got := trace.Agreement(a, b); got != 0.5 {
		t.Fatalf("Agreement = %v, want 0.5", got)
	}
	if got := trace.Agreement(b, b); got != 1 {
		t.Fatalf("self Agreement = %v, want 1", got)
	}
}

func TestReplayChurn(t *testing.T) {
	rr := ReplayResult{Changes: 4}
	if got := rr.ChurnPerMInstr(2_000_000); got != 2 {
		t.Fatalf("ChurnPerMInstr = %v, want 2", got)
	}
	if got := rr.ChurnPerMInstr(0); got != 0 {
		t.Fatalf("ChurnPerMInstr(0 instrs) = %v, want 0", got)
	}
}

func TestRecorderNilTracePassthrough(t *testing.T) {
	spec, err := Paper("distant-ilp")
	if err != nil {
		t.Fatal(err)
	}
	inner, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(inner, nil)
	rec.Reset(16)
	ref.Reset(16)
	if rec.Name() != ref.Name() {
		t.Fatalf("Recorder name %q, want %q", rec.Name(), ref.Name())
	}
	for _, ev := range synthEvents(8_000, 5) {
		if got, want := rec.OnCommit(ev), ref.OnCommit(ev); got != want {
			t.Fatalf("seq %d: recorder returned %d, bare controller %d", ev.Seq, got, want)
		}
	}
	if rec.Trace() != nil {
		t.Fatal("nil-trace recorder grew a trace")
	}
}
