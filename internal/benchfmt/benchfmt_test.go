package benchfmt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

const sampleOutput = `goos: linux
goarch: amd64
pkg: clustersim
cpu: AMD EPYC 7B13
BenchmarkSimulatorThroughput/gzip-8         	     100	  11000000 ns/op	 1200 B/op	      12 allocs/op
BenchmarkSimulatorThroughput/gzip-8         	     100	  12000000 ns/op	 1100 B/op	      12 allocs/op
BenchmarkSimulatorThroughput/gzip-8         	     100	  13000000 ns/op	 1300 B/op	      12 allocs/op
BenchmarkSimulatorThroughput/swim-8         	      50	  21000000 ns/op	 2200 B/op	      24 allocs/op
BenchmarkStepNoObserver-8                   	 2000000	       650.5 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	clustersim	12.345s
`

func TestParse(t *testing.T) {
	set, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(set), set)
	}
	gz := set["SimulatorThroughput/gzip"]
	if gz == nil {
		t.Fatal("GOMAXPROCS suffix or Benchmark prefix not stripped")
	}
	if len(gz["ns/op"]) != 3 {
		t.Fatalf("gzip ns/op samples = %v, want 3", gz["ns/op"])
	}
	if got := Median(gz["ns/op"]); got != 12000000 {
		t.Fatalf("median = %v, want 12000000", got)
	}
	if got := set["StepNoObserver"]["ns/op"]; len(got) != 1 || got[0] != 650.5 {
		t.Fatalf("float ns/op = %v", got)
	}
	if got := set["SimulatorThroughput/swim"]["allocs/op"]; len(got) != 1 || got[0] != 24 {
		t.Fatalf("allocs/op = %v", got)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("no error for input without benchmark lines")
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	set, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	b := set.ToBaseline()
	if b.Format != FormatV1 {
		t.Fatalf("format = %q", b.Format)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Metrics["SimulatorThroughput/gzip"]["ns/op"].Median != 12000000 {
		t.Fatalf("round-tripped baseline = %+v", got)
	}
}

func TestReadFileRawText(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := writeFile(path, sampleOutput); err != nil {
		t.Fatal(err)
	}
	b, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Metrics["SimulatorThroughput/swim"]["ns/op"].Median != 21000000 {
		t.Fatalf("text baseline = %+v", b)
	}
}

func TestReadFileEmbeddedBaseline(t *testing.T) {
	// A narrative BENCH_*.json artifact carrying the baseline under a
	// "baseline" key must load like a bare baseline.
	doc := `{
  "note": "human-readable narrative fields are ignored",
  "results": {"whatever": [1, 2, 3]},
  "baseline": {
    "format": "benchdiff/v1",
    "metrics": {"Fig3": {"allocs/op": {"median": 42}}}
  }
}`
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := writeFile(path, doc); err != nil {
		t.Fatal(err)
	}
	b, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Metrics["Fig3"]["allocs/op"].Median != 42 {
		t.Fatalf("embedded baseline = %+v", b)
	}
}

func TestReadFileRejectsForeignJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "other.json")
	if err := writeFile(path, `{"foo": 1}`); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("no error for JSON without a baseline")
	}
}

func TestDiffAndRegressed(t *testing.T) {
	old := Baseline{Format: FormatV1, Metrics: map[string]map[string]Metric{
		"A":    {"ns/op": {Median: 100}},
		"B":    {"ns/op": {Median: 200}},
		"Gone": {"ns/op": {Median: 10}},
	}}
	new := Baseline{Format: FormatV1, Metrics: map[string]map[string]Metric{
		"A":   {"ns/op": {Median: 130}}, // +30%: regression
		"B":   {"ns/op": {Median: 190}}, // -5%: improvement
		"New": {"ns/op": {Median: 7}},
	}}
	deltas, onlyOld, onlyNew := Diff(old, new, "ns/op")
	if len(deltas) != 2 || deltas[0].Name != "A" || deltas[1].Name != "B" {
		t.Fatalf("deltas = %+v", deltas)
	}
	if deltas[0].Pct != 30 {
		t.Fatalf("A pct = %v", deltas[0].Pct)
	}
	if !deltas[0].Regressed("ns/op", 20) {
		t.Fatal("+30% not flagged at 20% threshold")
	}
	if deltas[0].Regressed("ns/op", 50) {
		t.Fatal("+30% flagged at 50% threshold")
	}
	if deltas[1].Regressed("ns/op", 1) {
		t.Fatal("improvement flagged as regression")
	}
	if len(onlyOld) != 1 || onlyOld[0] != "Gone" {
		t.Fatalf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "New" {
		t.Fatalf("onlyNew = %v", onlyNew)
	}

	// Higher-is-better units regress downward.
	d := Delta{Pct: -30}
	if !d.Regressed("MB/s", 20) {
		t.Fatal("-30% MB/s not flagged")
	}
	if (Delta{Pct: 30}).Regressed("MB/s", 20) {
		t.Fatal("+30% MB/s flagged")
	}
}
