// Package benchfmt parses `go test -bench` output and the repository's
// committed benchmark baselines, and computes per-benchmark deltas between
// two runs. It is the engine behind cmd/benchdiff, the perf-regression gate.
//
// Two input forms are understood:
//
//   - raw benchmark text: the "BenchmarkName-8  100  12345 ns/op ..." lines
//     of a `go test -bench . -count N` run (everything else is ignored, so
//     full test output can be piped in unfiltered);
//   - baseline JSON in the benchdiff/v1 format below, either as the whole
//     document or embedded under a top-level "baseline" key — which lets a
//     narrative BENCH_*.json artifact double as a machine-readable baseline.
//
// The baseline format stores the per-metric median and the raw samples:
//
//	{
//	  "format": "benchdiff/v1",
//	  "metrics": {
//	    "SimulatorThroughput/gzip": {
//	      "ns/op": {"median": 123456, "samples": [121000, 123456, 125000]},
//	      "allocs/op": {"median": 42, "samples": [42, 42, 42]}
//	    }
//	  }
//	}
//
// Medians, not means: a single scheduler hiccup inflates a mean arbitrarily,
// while the median of 5+ samples is stable enough to gate CI on.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Set accumulates raw samples: benchmark name → unit → samples in input
// order. Benchmark names are normalized (the "-8" GOMAXPROCS suffix and the
// "Benchmark" prefix are stripped) so runs from machines with different core
// counts compare.
type Set map[string]map[string][]float64

// add records one sample.
func (s Set) add(name, unit string, v float64) {
	m, ok := s[name]
	if !ok {
		m = make(map[string][]float64)
		s[name] = m
	}
	m[unit] = append(m[unit], v)
}

// normalizeName strips the "Benchmark" prefix and the trailing "-N"
// GOMAXPROCS suffix from a benchmark name (sub-benchmark slashes are kept).
func normalizeName(name string) string {
	name = strings.TrimPrefix(name, "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name
}

// ParseLine parses one benchmark result line. It reports ok=false for
// anything that is not a result line (PASS, ok, log output, headers).
func ParseLine(line string) (name string, values map[string]float64, ok bool) {
	f := strings.Fields(line)
	// Minimum shape: Benchmark<Name>-N  <iters>  <value> <unit>.
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", nil, false
	}
	if _, err := strconv.ParseInt(f[1], 10, 64); err != nil {
		return "", nil, false
	}
	values = make(map[string]float64)
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", nil, false
		}
		values[f[i+1]] = v
	}
	if len(values) == 0 {
		return "", nil, false
	}
	return normalizeName(f[0]), values, true
}

// Parse reads `go test -bench` output, collecting every result line into a
// Set. Non-benchmark lines are ignored; an input with no benchmark lines at
// all is an error (almost certainly a wrong file).
func Parse(r io.Reader) (Set, error) {
	set := make(Set)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		name, values, ok := ParseLine(sc.Text())
		if !ok {
			continue
		}
		for unit, v := range values {
			set.add(name, unit, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	if len(set) == 0 {
		return nil, fmt.Errorf("benchfmt: no benchmark result lines found")
	}
	return set, nil
}

// Median returns the median of samples (0 for an empty slice).
func Median(samples []float64) float64 {
	n := len(samples)
	if n == 0 {
		return 0
	}
	s := make([]float64, n)
	copy(s, samples)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// FormatV1 is the baseline document's format tag.
const FormatV1 = "benchdiff/v1"

// Metric is one benchmark's one-unit summary in a baseline.
type Metric struct {
	Median  float64   `json:"median"`
	Samples []float64 `json:"samples,omitempty"`
}

// Baseline is the committed, machine-readable form of a benchmark run.
type Baseline struct {
	Format string `json:"format"`
	// Metrics maps benchmark name → unit → summary.
	Metrics map[string]map[string]Metric `json:"metrics"`
}

// ToBaseline summarizes a raw sample set into a baseline document.
func (s Set) ToBaseline() Baseline {
	b := Baseline{Format: FormatV1, Metrics: make(map[string]map[string]Metric, len(s))}
	for name, units := range s {
		m := make(map[string]Metric, len(units))
		for unit, samples := range units {
			m[unit] = Metric{Median: Median(samples), Samples: samples}
		}
		b.Metrics[name] = m
	}
	return b
}

// embedded is the shape of a narrative BENCH_*.json artifact carrying a
// baseline under its "baseline" key.
type embedded struct {
	Baseline *Baseline `json:"baseline"`
}

// ReadFile loads one benchmark input: benchdiff/v1 JSON (whole-document or
// embedded under "baseline"), or raw `go test -bench` text.
func ReadFile(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Baseline{}, fmt.Errorf("benchfmt: %w", err)
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") {
		var b Baseline
		if err := json.Unmarshal(data, &b); err == nil && b.Format == FormatV1 && len(b.Metrics) > 0 {
			return b, nil
		}
		var e embedded
		if err := json.Unmarshal(data, &e); err == nil && e.Baseline != nil &&
			e.Baseline.Format == FormatV1 && len(e.Baseline.Metrics) > 0 {
			return *e.Baseline, nil
		}
		return Baseline{}, fmt.Errorf("benchfmt: %s: JSON without a %s baseline (top-level or under \"baseline\")", path, FormatV1)
	}
	set, err := Parse(strings.NewReader(string(data)))
	if err != nil {
		return Baseline{}, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	return set.ToBaseline(), nil
}

// WriteFile writes the baseline as indented JSON.
func (b Baseline) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("benchfmt: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LowerIsBetter reports whether smaller values of the unit are improvements
// (time, bytes and allocations are; throughput units are not).
func LowerIsBetter(unit string) bool {
	switch unit {
	case "ns/op", "B/op", "allocs/op":
		return true
	}
	return false
}

// Delta is one benchmark's old→new comparison for a single unit.
type Delta struct {
	Name string
	Old  float64
	New  float64
	// Pct is the signed relative change in percent ((new-old)/old × 100).
	Pct float64
}

// Regressed reports whether the delta is a regression beyond the threshold
// (in percent), respecting the unit's improvement direction.
func (d Delta) Regressed(unit string, thresholdPct float64) bool {
	if LowerIsBetter(unit) {
		return d.Pct > thresholdPct
	}
	return d.Pct < -thresholdPct
}

// Diff compares the unit's medians of every benchmark present in both
// baselines, sorted by name; onlyOld and onlyNew list benchmarks (with that
// unit) present in just one side, so a silently vanished benchmark is
// visible rather than silently ungated.
func Diff(old, new Baseline, unit string) (deltas []Delta, onlyOld, onlyNew []string) {
	for name, units := range old.Metrics {
		om, ok := units[unit]
		if !ok {
			continue
		}
		nm, ok := new.Metrics[name][unit]
		if !ok {
			onlyOld = append(onlyOld, name)
			continue
		}
		d := Delta{Name: name, Old: om.Median, New: nm.Median}
		if om.Median != 0 {
			d.Pct = (nm.Median - om.Median) / om.Median * 100
		}
		deltas = append(deltas, d)
	}
	for name, units := range new.Metrics {
		if _, ok := units[unit]; !ok {
			continue
		}
		if _, ok := old.Metrics[name][unit]; !ok {
			onlyNew = append(onlyNew, name)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return deltas, onlyOld, onlyNew
}
