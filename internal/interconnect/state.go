package interconnect

import "clustersim/internal/snap"

// Checkpoint support: a network's dynamic state is its link calendars (the
// in-flight reservation horizon) and its cumulative statistics. Geometry
// (node count, hop latency, free mode) is configuration and is rebuilt by
// the constructor, so Load only verifies that calendar shapes match.

func (s *Stats) saveState(w *snap.Writer) {
	w.U64(s.Transfers)
	w.U64(s.Hops)
	w.U64(s.LatencySum)
}

func (s *Stats) loadState(r *snap.Reader) {
	s.Transfers = r.U64()
	s.Hops = r.U64()
	s.LatencySum = r.U64()
}

func saveCalendars(w *snap.Writer, cals []Calendar) {
	w.Int(len(cals))
	for _, c := range cals {
		w.U64s(c)
	}
}

func loadCalendars(r *snap.Reader, cals []Calendar, what string) {
	if n := r.Int(); r.Err() == nil && n != len(cals) {
		r.Failf("interconnect: %s has %d calendars, snapshot holds %d", what, len(cals), n)
		return
	}
	for i := range cals {
		r.FixedU64s(cals[i], what)
	}
}

// SaveState implements snap.Stater.
func (r *Ring) SaveState(w *snap.Writer) {
	w.Mark("ring")
	saveCalendars(w, r.cw)
	saveCalendars(w, r.ccw)
	r.stats.saveState(w)
}

// LoadState implements snap.Stater.
func (r *Ring) LoadState(rd *snap.Reader) {
	rd.Mark("ring")
	loadCalendars(rd, r.cw, "ring cw link")
	loadCalendars(rd, r.ccw, "ring ccw link")
	r.stats.loadState(rd)
}

// SaveState implements snap.Stater.
func (g *Grid) SaveState(w *snap.Writer) {
	w.Mark("grid")
	saveCalendars(w, g.links)
	g.stats.saveState(w)
}

// LoadState implements snap.Stater.
func (g *Grid) LoadState(r *snap.Reader) {
	r.Mark("grid")
	loadCalendars(r, g.links, "grid link")
	g.stats.loadState(r)
}

var (
	_ snap.Stater = (*Ring)(nil)
	_ snap.Stater = (*Grid)(nil)
)
