package interconnect

import "testing"

// FuzzCalendarReserve checks the calendar's core invariants under arbitrary
// reservation sequences: the returned slot is never before the request, and
// no two reservations within a window-sized span collide.
func FuzzCalendarReserve(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 250, 0, 7})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, reqs []byte) {
		if len(reqs) > 256 {
			reqs = reqs[:256]
		}
		cal := NewCalendar()
		granted := make(map[uint64]bool)
		base := uint64(1)
		for _, r := range reqs {
			want := base + uint64(r)
			got := cal.Reserve(want)
			if got < want {
				t.Fatalf("Reserve(%d) = %d in the past", want, got)
			}
			if granted[got] {
				t.Fatalf("slot %d double-booked", got)
			}
			granted[got] = true
		}
	})
}

// FuzzRingSend checks ring arrival invariants for arbitrary
// (ready, src, dst) sequences.
func FuzzRingSend(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := MustNewRing(16, 1)
		for i := 0; i+2 < len(data) && i < 300; i += 3 {
			ready := uint64(data[i])
			a := int(data[i+1]) % 16
			b := int(data[i+2]) % 16
			arr := r.Send(ready, a, b)
			if min := ready + uint64(r.Hops(a, b)); arr < min {
				t.Fatalf("Send(%d,%d,%d) arrived %d before minimum %d", ready, a, b, arr, min)
			}
		}
	})
}
