// Package interconnect models the point-to-point networks that connect
// clusters in the simulated processor.
//
// The paper's baseline is a pair of unidirectional rings (each cluster
// connected to its two neighbours; 32 links for 16 clusters; worst-case 8
// hops); the sensitivity study adds a two-dimensional grid (up to four
// neighbours; 48 links for 16 clusters; worst-case 6 hops). Register values,
// cache addresses and cache data all travel on this network; each hop takes
// a configurable number of cycles (one by default), and each link carries at
// most one transfer per cycle, so contention introduces queueing delay.
//
// The model reserves link slots in a per-link calendar: each link holds a
// table of reserved cycles (indexed by cycle modulo the table size, storing
// the absolute cycle so stale epochs never alias), and a message traverses
// its route hop by hop, departing each node at the first unreserved cycle at
// or after its arrival. Reservations may be made in any simulation order —
// a transfer scheduled far in the future does not block one wanted earlier —
// which yields realistic queueing without a global event queue. Links are
// pipelined: one new transfer per cycle regardless of per-hop latency.
package interconnect

import "fmt"

// calendarBits sizes each link's reservation window (2^calendarBits cycles).
// Transfers further than this apart never collide in practice; on overflow
// the reservation silently degrades to best effort at the horizon.
const calendarBits = 12

// Calendar tracks which cycles a unit-bandwidth resource (a link, a cache
// bank port, a bus slot) is reserved for. Reservations may be made in any
// order; NewCalendar sizes the window.
type Calendar []uint64

// NewCalendar returns a Calendar covering a 2^calendarBits-cycle window.
func NewCalendar() Calendar { return make(Calendar, 1<<calendarBits) }

func newCalendars(n int) []Calendar {
	c := make([]Calendar, n)
	for i := range c {
		c[i] = NewCalendar()
	}
	return c
}

// Reserve books the first free cycle at or after t and returns it. Slot
// contents are the absolute cycle they are reserved for, so entries from
// old epochs are reusable without clearing. Cycle 0 is never reserved
// (simulation cycles start at 1), so the zero value means "free".
func (l Calendar) Reserve(t uint64) uint64 {
	if t == 0 {
		t = 1
	}
	mask := uint64(len(l) - 1)
	for i := 0; ; i++ {
		if l[t&mask] != t {
			l[t&mask] = t
			return t
		}
		t++
		if i >= len(l) { // calendar saturated: best effort
			return t
		}
	}
}

// ReserveEvery books the first free cycle at or after t such that the
// resource stays busy for busy cycles (initiation interval busy); it
// reserves all busy cycles and returns the start.
func (l Calendar) ReserveEvery(t, busy uint64) uint64 {
	if busy <= 1 {
		return l.Reserve(t)
	}
	start := l.Reserve(t)
	for i := uint64(1); i < busy; i++ {
		l.Reserve(start + i)
	}
	return start
}

// Clear empties the calendar.
func (l Calendar) Clear() {
	for i := range l {
		l[i] = 0
	}
}

// ReservedIn counts the cycles in [from, to) that are reserved. The window
// is clamped to the calendar's span; observability probes use this to read
// recent occupancy without disturbing reservations.
func (l Calendar) ReservedIn(from, to uint64) int {
	if to > from+uint64(len(l)) {
		to = from + uint64(len(l))
	}
	mask := uint64(len(l) - 1)
	n := 0
	for t := from; t < to; t++ {
		if l[t&mask] == t {
			n++
		}
	}
	return n
}

// Network is a cluster interconnect. Implementations are not safe for
// concurrent use; a simulation owns its networks.
type Network interface {
	// Clusters returns the number of nodes.
	Clusters() int
	// Hops returns the routed hop count between nodes a and b.
	Hops(a, b int) int
	// Diameter returns the worst-case routed hop count between any two
	// nodes — the upper bound on the hops of a single transfer, which the
	// validation layer uses for link-transfer conservation checks.
	Diameter() int
	// Send reserves a one-word transfer from a to b that may begin no
	// earlier than cycle ready, and returns the cycle at which the word
	// is available at b. Send(ready, a, a) == ready.
	Send(ready uint64, a, b int) uint64
	// Broadcast reserves transfers from a to every node in [0, active)
	// other than a and returns the cycle by which the last copy arrives.
	Broadcast(ready uint64, a, active int) uint64
	// Utilization returns the fraction of link-cycles reserved over the
	// cycle window [from, to) across all links — an observability probe;
	// it does not disturb reservations.
	Utilization(from, to uint64) float64
	// Reset clears all link reservations and statistics.
	Reset()
	// Stats returns cumulative transfer statistics.
	Stats() Stats
}

// Stats aggregates transfer statistics for a network.
type Stats struct {
	// Transfers is the number of point-to-point sends with nonzero hops.
	Transfers uint64
	// Hops is the total number of link traversals.
	Hops uint64
	// LatencySum is the sum over transfers of (arrival - ready) cycles,
	// including queueing delay. LatencySum/Transfers is the average
	// inter-cluster communication latency the paper quotes (4.1 cycles
	// for the 16-cluster ring).
	LatencySum uint64
}

// AvgLatency returns the mean cycles per transfer, or 0 if none occurred.
func (s Stats) AvgLatency() float64 {
	if s.Transfers == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Transfers)
}

// Conserved checks link-transfer conservation against a network of the
// given diameter: counters only grow from prev, every transfer traverses at
// least one and at most diameter links, and latency is charged whenever
// links are (a transfer cannot arrive before it departs). It returns nil
// when the statistics are consistent.
func (s Stats) Conserved(prev Stats, diameter int) error {
	switch {
	case s.Transfers < prev.Transfers || s.Hops < prev.Hops || s.LatencySum < prev.LatencySum:
		return fmt.Errorf("interconnect: counters went backwards: %+v -> %+v", prev, s)
	case s.Hops < s.Transfers:
		return fmt.Errorf("interconnect: %d transfers but only %d link traversals", s.Transfers, s.Hops)
	case diameter > 0 && s.Hops > s.Transfers*uint64(diameter):
		return fmt.Errorf("interconnect: %d link traversals exceed %d transfers x diameter %d",
			s.Hops, s.Transfers, diameter)
	case s.Hops > 0 && s.LatencySum == 0:
		return fmt.Errorf("interconnect: %d link traversals with zero accumulated latency", s.Hops)
	}
	return nil
}

// Ring is a bidirectional ring built from two unidirectional rings.
type Ring struct {
	n      int    //simlint:nostate geometry, rebuilt by the constructor
	hopLat uint64 //simlint:nostate geometry, rebuilt by the constructor
	free   bool   //simlint:nostate ablation switch, part of configuration; if true, transfers are instantaneous
	cw     []Calendar
	ccw    []Calendar
	stats  Stats
}

// NewRing returns a ring network over n clusters with the given per-hop
// latency in cycles. Invalid parameters (n < 1 or hopLatency < 1) are a
// configuration error, reachable from the public API, and are reported as
// such rather than panicking.
func NewRing(n int, hopLatency int) (*Ring, error) {
	if n < 1 || hopLatency < 1 {
		return nil, fmt.Errorf("interconnect: invalid ring n=%d hopLatency=%d (both must be >= 1)", n, hopLatency)
	}
	return &Ring{
		n:      n,
		hopLat: uint64(hopLatency),
		cw:     newCalendars(n),
		ccw:    newCalendars(n),
	}, nil
}

// MustNewRing is NewRing but panics on error; for tests and internal callers
// with statically valid parameters.
func MustNewRing(n int, hopLatency int) *Ring {
	r, err := NewRing(n, hopLatency)
	if err != nil {
		panic(err)
	}
	return r
}

// SetFree switches the ring into an idealized zero-cost mode used by the
// paper's in-text ablations ("assuming zero inter-cluster communication
// cost").
func (r *Ring) SetFree(free bool) { r.free = free }

// Clusters returns the number of nodes.
func (r *Ring) Clusters() int { return r.n }

// Diameter implements Network: the farthest pair on a bidirectional ring is
// half way around.
func (r *Ring) Diameter() int { return r.n / 2 }

// Hops returns the shorter ring distance between a and b.
func (r *Ring) Hops(a, b int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if alt := r.n - d; alt < d {
		return alt
	}
	return d
}

// cwDist returns the clockwise distance from a to b.
func (r *Ring) cwDist(a, b int) int {
	d := b - a
	if d < 0 {
		d += r.n
	}
	return d
}

// Send implements Network.
func (r *Ring) Send(ready uint64, a, b int) uint64 {
	if a == b {
		return ready
	}
	if r.free {
		return ready
	}
	cw := r.cwDist(a, b)
	clockwise := cw <= r.n-cw
	hops := cw
	if !clockwise {
		hops = r.n - cw
	}
	arrive := r.traverse(ready, a, hops, clockwise)
	r.stats.Transfers++
	r.stats.Hops += uint64(hops)
	r.stats.LatencySum += arrive - ready
	return arrive
}

// traverse walks hops links from node a in the given direction, reserving
// each, and returns the final arrival cycle.
func (r *Ring) traverse(ready uint64, a, hops int, clockwise bool) uint64 {
	t := ready
	node := a
	for i := 0; i < hops; i++ {
		var cal Calendar
		var next int
		if clockwise {
			cal = r.cw[node]
			next = node + 1
			if next == r.n {
				next = 0
			}
		} else {
			cal = r.ccw[node]
			next = node - 1
			if next < 0 {
				next = r.n - 1
			}
		}
		depart := cal.Reserve(t)
		t = depart + r.hopLat
		node = next
	}
	return t
}

// Broadcast implements Network. The copy travels clockwise to cover the
// farther half of the active prefix and counter-clockwise for the rest,
// which is how a ring broadcast is physically realized.
func (r *Ring) Broadcast(ready uint64, a, active int) uint64 {
	if active <= 1 {
		return ready
	}
	if r.free {
		return ready
	}
	// Distances to every active node; the worst clockwise and worst
	// counter-clockwise legs bound the broadcast.
	maxCW, maxCCW := 0, 0
	for b := 0; b < active; b++ {
		if b == a {
			continue
		}
		cw := r.cwDist(a, b)
		ccw := r.n - cw
		if cw <= ccw {
			if cw > maxCW {
				maxCW = cw
			}
		} else {
			if ccw > maxCCW {
				maxCCW = ccw
			}
		}
	}
	last := ready
	if maxCW > 0 {
		if t := r.traverse(ready, a, maxCW, true); t > last {
			last = t
		}
		r.stats.Transfers++
		r.stats.Hops += uint64(maxCW)
	}
	if maxCCW > 0 {
		if t := r.traverse(ready, a, maxCCW, false); t > last {
			last = t
		}
		r.stats.Transfers++
		r.stats.Hops += uint64(maxCCW)
	}
	r.stats.LatencySum += last - ready
	return last
}

// Utilization implements Network.
func (r *Ring) Utilization(from, to uint64) float64 {
	if to <= from {
		return 0
	}
	reserved := 0
	for i := range r.cw {
		reserved += r.cw[i].ReservedIn(from, to)
		reserved += r.ccw[i].ReservedIn(from, to)
	}
	return float64(reserved) / (float64(to-from) * float64(2*r.n))
}

// Reset implements Network.
func (r *Ring) Reset() {
	for i := range r.cw {
		r.cw[i].Clear()
		r.ccw[i].Clear()
	}
	r.stats = Stats{}
}

// Stats implements Network.
func (r *Ring) Stats() Stats { return r.stats }

// Grid is a two-dimensional mesh with XY (dimension-ordered) routing.
type Grid struct {
	n      int    //simlint:nostate geometry, rebuilt by the constructor
	w, h   int    //simlint:nostate geometry, rebuilt by the constructor
	hopLat uint64 //simlint:nostate geometry, rebuilt by the constructor
	free   bool   //simlint:nostate ablation switch, part of configuration
	// Link calendars, indexed by node*4+direction, directions being
	// 0=east, 1=west, 2=south, 3=north.
	links []Calendar
	stats Stats
}

// NewGrid returns a grid network over n clusters laid out in the most
// square arrangement whose width*height >= n (4x4 for 16). Invalid
// parameters (n < 1 or hopLatency < 1) are a configuration error, reachable
// from the public API, and are reported as such rather than panicking.
func NewGrid(n int, hopLatency int) (*Grid, error) {
	if n < 1 || hopLatency < 1 {
		return nil, fmt.Errorf("interconnect: invalid grid n=%d hopLatency=%d (both must be >= 1)", n, hopLatency)
	}
	w := 1
	for w*w < n {
		w++
	}
	h := (n + w - 1) / w
	// Links cover every router position of the bounding w*h grid, not just
	// the n occupied ones: XY routing between occupied nodes may pass
	// through an unoccupied corner position (e.g. position 8 of the 3x3
	// layout for n=8), which still needs router links.
	return &Grid{
		n: n, w: w, h: h,
		hopLat: uint64(hopLatency),
		links:  newCalendars(w * h * 4),
	}, nil
}

// MustNewGrid is NewGrid but panics on error; for tests and internal callers
// with statically valid parameters.
func MustNewGrid(n int, hopLatency int) *Grid {
	g, err := NewGrid(n, hopLatency)
	if err != nil {
		panic(err)
	}
	return g
}

// SetFree switches the grid into idealized zero-cost mode.
func (g *Grid) SetFree(free bool) { g.free = free }

// Clusters returns the number of nodes.
func (g *Grid) Clusters() int { return g.n }

func (g *Grid) coord(a int) (x, y int) { return a % g.w, a / g.w }

// Diameter implements Network: opposite corners under XY routing.
func (g *Grid) Diameter() int { return (g.w - 1) + (g.h - 1) }

// Hops returns the Manhattan distance between a and b.
func (g *Grid) Hops(a, b int) int {
	ax, ay := g.coord(a)
	bx, by := g.coord(b)
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Send implements Network using XY routing: all horizontal hops first, then
// vertical.
func (g *Grid) Send(ready uint64, a, b int) uint64 {
	if a == b || g.free {
		return ready
	}
	arrive := g.route(ready, a, b)
	r := g.Hops(a, b)
	g.stats.Transfers++
	g.stats.Hops += uint64(r)
	g.stats.LatencySum += arrive - ready
	return arrive
}

func (g *Grid) route(ready uint64, a, b int) uint64 {
	ax, ay := g.coord(a)
	bx, by := g.coord(b)
	t := ready
	x, y := ax, ay
	for x != bx {
		dir := 0 // east
		nx := x + 1
		if bx < x {
			dir = 1 // west
			nx = x - 1
		}
		t = g.hop(t, y*g.w+x, dir)
		x = nx
	}
	for y != by {
		dir := 2 // south
		ny := y + 1
		if by < y {
			dir = 3 // north
			ny = y - 1
		}
		t = g.hop(t, y*g.w+x, dir)
		y = ny
	}
	return t
}

func (g *Grid) hop(t uint64, node, dir int) uint64 {
	depart := g.links[node*4+dir].Reserve(t)
	return depart + g.hopLat
}

// Broadcast implements Network with per-destination unicasts (a grid has no
// cheap hardware broadcast; the paper models broadcasts as added traffic,
// which unicasting reproduces conservatively).
func (g *Grid) Broadcast(ready uint64, a, active int) uint64 {
	if active <= 1 || g.free {
		return ready
	}
	last := ready
	for b := 0; b < active; b++ {
		if b == a {
			continue
		}
		if t := g.Send(ready, a, b); t > last {
			last = t
		}
	}
	return last
}

// Utilization implements Network.
func (g *Grid) Utilization(from, to uint64) float64 {
	if to <= from {
		return 0
	}
	reserved := 0
	for i := range g.links {
		reserved += g.links[i].ReservedIn(from, to)
	}
	return float64(reserved) / (float64(to-from) * float64(len(g.links)))
}

// Reset implements Network.
func (g *Grid) Reset() {
	for i := range g.links {
		g.links[i].Clear()
	}
	g.stats = Stats{}
}

// Stats implements Network.
func (g *Grid) Stats() Stats { return g.stats }

var (
	_ Network = (*Ring)(nil)
	_ Network = (*Grid)(nil)
)
