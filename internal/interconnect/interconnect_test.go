package interconnect

import (
	"testing"
	"testing/quick"
)

func TestRingHops(t *testing.T) {
	r := MustNewRing(16, 1)
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 8, 8}, {0, 9, 7}, {0, 15, 1}, {3, 1, 2}, {15, 0, 1},
	}
	for _, c := range cases {
		if got := r.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRingWorstCaseHops(t *testing.T) {
	// Paper §2.3: 16-cluster ring has maximum 8 hops.
	r := MustNewRing(16, 1)
	max := 0
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			if h := r.Hops(a, b); h > max {
				max = h
			}
		}
	}
	if max != 8 {
		t.Fatalf("ring worst case %d hops, want 8", max)
	}
}

func TestGridWorstCaseHops(t *testing.T) {
	// Paper §2.3: 16-cluster grid has maximum 6 hops.
	g := MustNewGrid(16, 1)
	max := 0
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			if h := g.Hops(a, b); h > max {
				max = h
			}
		}
	}
	if max != 6 {
		t.Fatalf("grid worst case %d hops, want 6", max)
	}
}

func TestHopsSymmetricNonNegative(t *testing.T) {
	r := MustNewRing(16, 1)
	g := MustNewGrid(16, 1)
	f := func(a, b uint8) bool {
		ai, bi := int(a%16), int(b%16)
		for _, n := range []Network{r, g} {
			h := n.Hops(ai, bi)
			if h < 0 || h != n.Hops(bi, ai) {
				return false
			}
			if (ai == bi) != (h == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSendLatencyNoContention(t *testing.T) {
	r := MustNewRing(16, 1)
	if got := r.Send(100, 0, 2); got != 102 {
		t.Errorf("ring send 2 hops arrived at %d, want 102", got)
	}
	if got := r.Send(200, 5, 5); got != 200 {
		t.Errorf("self send should be free, got %d", got)
	}
	g := MustNewGrid(16, 1)
	if got := g.Send(100, 0, 5); got != 102 { // (0,0)->(1,1): 2 hops
		t.Errorf("grid send arrived at %d, want 102", got)
	}
}

func TestSendHopLatencyScaling(t *testing.T) {
	r := MustNewRing(16, 2)
	if got := r.Send(10, 0, 3); got != 16 { // 3 hops x 2 cycles
		t.Errorf("arrival %d, want 16", got)
	}
}

func TestRingContention(t *testing.T) {
	r := MustNewRing(16, 1)
	// Two messages leaving node 0 clockwise at the same cycle must
	// serialize on the first link.
	t1 := r.Send(10, 0, 1)
	t2 := r.Send(10, 0, 1)
	if t1 != 11 || t2 != 12 {
		t.Fatalf("got %d and %d, want 11 and 12", t1, t2)
	}
	// Opposite directions do not conflict.
	r.Reset()
	a := r.Send(10, 0, 1)  // clockwise
	b := r.Send(10, 0, 15) // counter-clockwise
	if a != 11 || b != 11 {
		t.Fatalf("independent directions serialized: %d %d", a, b)
	}
}

func TestGridContention(t *testing.T) {
	g := MustNewGrid(16, 1)
	t1 := g.Send(10, 0, 1)
	t2 := g.Send(10, 0, 2)
	if t1 != 11 {
		t.Fatalf("first arrival %d", t1)
	}
	if t2 != 13 { // delayed 1 on shared first link, then one more hop
		t.Fatalf("second arrival %d, want 13", t2)
	}
}

func TestOutOfOrderReservations(t *testing.T) {
	// A transfer reserved far in the future must not delay one wanted
	// earlier (the calendar property the scalar next-free model lacked).
	r := MustNewRing(16, 1)
	late := r.Send(1000, 0, 1)
	early := r.Send(10, 0, 1)
	if late != 1001 {
		t.Fatalf("late arrival %d", late)
	}
	if early != 11 {
		t.Fatalf("early transfer delayed to %d by a future reservation", early)
	}
}

func TestArrivalMonotonicity(t *testing.T) {
	// Arrival is never before ready + hops*hopLat.
	f := func(ready uint32, a, b uint8) bool {
		r := MustNewRing(16, 1)
		ai, bi := int(a%16), int(b%16)
		arr := r.Send(uint64(ready), ai, bi)
		return arr >= uint64(ready)+uint64(r.Hops(ai, bi))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(ready uint32, a, b uint8) bool {
		gr := MustNewGrid(16, 1)
		ai, bi := int(a%16), int(b%16)
		arr := gr.Send(uint64(ready), ai, bi)
		return arr >= uint64(ready)+uint64(gr.Hops(ai, bi))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastCoversActivePrefix(t *testing.T) {
	r := MustNewRing(16, 1)
	// Broadcast from 0 to actives {0..3}: worst leg is 3 hops one way or
	// split across directions; arrival must be >= 2 (ceil(3/2) with both
	// directions) and >= unicast max if single-direction.
	got := r.Broadcast(10, 0, 4)
	if got < 12 || got > 13 {
		t.Fatalf("broadcast last arrival %d, want 12..13", got)
	}
	if r.Broadcast(100, 0, 1) != 100 {
		t.Fatal("broadcast to self-only set should be free")
	}
	g := MustNewGrid(16, 1)
	if gt := g.Broadcast(10, 0, 16); gt < 16 {
		t.Fatalf("grid broadcast too fast: %d", gt)
	}
}

func TestFreeMode(t *testing.T) {
	r := MustNewRing(16, 1)
	r.SetFree(true)
	if r.Send(42, 0, 8) != 42 {
		t.Fatal("free ring not free")
	}
	if r.Broadcast(42, 0, 16) != 42 {
		t.Fatal("free ring broadcast not free")
	}
	g := MustNewGrid(16, 1)
	g.SetFree(true)
	if g.Send(42, 0, 15) != 42 {
		t.Fatal("free grid not free")
	}
}

func TestStatsAccumulate(t *testing.T) {
	r := MustNewRing(16, 1)
	r.Send(0, 0, 4)
	r.Send(0, 0, 4)
	s := r.Stats()
	if s.Transfers != 2 || s.Hops != 8 {
		t.Fatalf("stats %+v", s)
	}
	if s.AvgLatency() < 4 {
		t.Fatalf("avg latency %f < 4", s.AvgLatency())
	}
	r.Reset()
	if r.Stats() != (Stats{}) {
		t.Fatal("reset did not clear stats")
	}
	if (Stats{}).AvgLatency() != 0 {
		t.Fatal("empty stats AvgLatency should be 0")
	}
}

func TestResetClearsReservations(t *testing.T) {
	r := MustNewRing(16, 1)
	for i := 0; i < 100; i++ {
		r.Send(0, 0, 1)
	}
	r.Reset()
	if got := r.Send(5, 0, 1); got != 6 {
		t.Fatalf("post-reset send arrived %d, want 6", got)
	}
}

func TestConstructorErrors(t *testing.T) {
	for _, f := range []func() error{
		func() error { _, err := NewRing(0, 1); return err },
		func() error { _, err := NewRing(4, 0); return err },
		func() error { _, err := NewGrid(0, 1); return err },
		func() error { _, err := NewGrid(4, 0); return err },
	} {
		if f() == nil {
			t.Error("expected error for invalid topology parameters")
		}
	}
	// The Must variants keep the old panic behaviour for static call sites.
	for _, f := range []func(){
		func() { MustNewRing(0, 1) },
		func() { MustNewGrid(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic from Must constructor")
				}
			}()
			f()
		}()
	}
}

func TestGridDimensions(t *testing.T) {
	g := MustNewGrid(16, 1)
	if g.w != 4 || g.h != 4 {
		t.Fatalf("16-node grid laid out %dx%d, want 4x4", g.w, g.h)
	}
	g2 := MustNewGrid(2, 1)
	if g2.Hops(0, 1) != 1 {
		t.Fatal("2-node grid adjacency wrong")
	}
}

func TestRingSmallSizes(t *testing.T) {
	for n := 1; n <= 5; n++ {
		r := MustNewRing(n, 1)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				arr := r.Send(0, a, b)
				if arr < uint64(r.Hops(a, b)) {
					t.Fatalf("n=%d send(%d,%d) arrival %d < hops", n, a, b, arr)
				}
			}
		}
	}
}

func TestReserveEvery(t *testing.T) {
	cal := NewCalendar()
	start := cal.ReserveEvery(10, 3)
	if start != 10 {
		t.Fatalf("start %d", start)
	}
	// Cycles 10..12 are booked; the next request at 10 lands at 13.
	if got := cal.Reserve(10); got != 13 {
		t.Fatalf("follow-up landed at %d, want 13", got)
	}
	// busy <= 1 behaves like Reserve.
	cal2 := NewCalendar()
	if cal2.ReserveEvery(5, 1) != 5 {
		t.Fatal("busy=1 mis-reserved")
	}
}

func TestClustersAccessors(t *testing.T) {
	if MustNewRing(7, 1).Clusters() != 7 {
		t.Fatal("ring Clusters")
	}
	if MustNewGrid(9, 1).Clusters() != 9 {
		t.Fatal("grid Clusters")
	}
}

func TestGridResetAndStats(t *testing.T) {
	g := MustNewGrid(16, 1)
	g.Send(10, 0, 5)
	if g.Stats().Transfers != 1 {
		t.Fatalf("stats %+v", g.Stats())
	}
	g.Reset()
	if g.Stats() != (Stats{}) {
		t.Fatal("reset did not clear grid stats")
	}
	if got := g.Send(10, 0, 1); got != 11 {
		t.Fatalf("post-reset grid send %d", got)
	}
}

func TestRingBroadcastFromMiddleOfPrefix(t *testing.T) {
	// A broadcast from a node with active peers on both sides exercises
	// both ring directions.
	r := MustNewRing(16, 1)
	got := r.Broadcast(10, 2, 6) // peers 0,1 (ccw) and 3,4,5 (cw)
	if got < 12 || got > 14 {
		t.Fatalf("two-sided broadcast arrival %d", got)
	}
	s := r.Stats()
	if s.Transfers != 2 { // one leg per direction
		t.Fatalf("broadcast transfers %d", s.Transfers)
	}
}

func TestGridFreeBroadcast(t *testing.T) {
	g := MustNewGrid(16, 1)
	g.SetFree(true)
	if g.Broadcast(42, 3, 16) != 42 {
		t.Fatal("free grid broadcast not free")
	}
}

// TestGridAllPairsAllSizes sends between every node pair at every cluster
// count up to 16. Regression for a fuzzer-found crash: non-square layouts
// (e.g. 8 nodes on a 3x3 grid) route through unoccupied router positions,
// which must still have links.
func TestGridAllPairsAllSizes(t *testing.T) {
	for n := 1; n <= 16; n++ {
		g := MustNewGrid(n, 1)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				arr := g.Send(0, a, b)
				if arr < uint64(g.Hops(a, b)) {
					t.Fatalf("n=%d %d->%d arrived %d before %d hops elapsed", n, a, b, arr, g.Hops(a, b))
				}
			}
		}
		if err := g.Stats().Conserved(Stats{}, g.Diameter()); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}
