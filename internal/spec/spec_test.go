package spec_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"clustersim/internal/isa"
	"clustersim/internal/spec"
)

// -update rewrites the checked-in golden artifacts: the malformed-spec
// error transcript under testdata/ and the nine benchmark specs under
// specs/ at the repository root (see TestBuiltinSpecGoldens).
var update = flag.Bool("update", false, "rewrite golden files")

// roundTripCases are valid spec documents covering every distribution kind
// and both repeat and multi-phase structure. Each must parse, serialize to
// a fixed point, and compile deterministically.
var roundTripCases = []struct {
	name  string
	input string
}{
	{"minimal", `{
		"version": 1, "name": "tiny",
		"phases": [{"length": 1000, "profile": {"chains": 4}}]
	}`},
	{"all-constant-multiphase", `{
		"version": 1, "name": "two-phase", "doc": "a doc string",
		"phases": [
			{"name": "hot", "length": 40000, "profile": {"chains": 12, "load_frac": 0.3, "fp": true, "stride": 8, "footprint": 1048576}},
			{"name": "cold", "length": 9000, "profile": {"chains": 2, "branch_frac": 0.2, "chase": true, "random_addr": true}}
		]
	}`},
	{"uniform-length", `{
		"version": 1, "name": "jittered",
		"phases": [{"length": {"dist": "uniform", "min": 3000, "max": 9000}, "repeat": 8, "profile": {"chains": 6}}]
	}`},
	{"geometric-chains", `{
		"version": 1, "name": "geo",
		"phases": [{"length": 5000, "repeat": 4, "profile": {"chains": {"dist": "geometric", "mean": 8}}}]
	}`},
	{"exponential", `{
		"version": 1, "name": "expo",
		"phases": [{"length": {"dist": "exponential", "mean": 20000}, "repeat": 3, "profile": {"chains": 4}}]
	}`},
	{"poisson", `{
		"version": 1, "name": "poisson",
		"phases": [{"length": 4000, "profile": {"chains": {"dist": "poisson", "mean": 10}}}]
	}`},
	{"gamma-erlang", `{
		"version": 1, "name": "erlang",
		"phases": [{"length": {"dist": "gamma", "shape": 3, "scale": 5000}, "repeat": 2, "profile": {"chains": 4}}]
	}`},
	{"weibull", `{
		"version": 1, "name": "weib",
		"phases": [{"length": {"dist": "weibull", "shape": 1.5, "scale": 8000}, "profile": {"chains": 4}}]
	}`},
	{"mix", `{
		"version": 1, "name": "duo",
		"mix": [
			{"bench": "gzip", "clusters": 8},
			{"name": "inline", "seed_offset": 7, "phases": [{"length": 2000, "profile": {"chains": 3}}]}
		]
	}`},
}

func TestRoundTrip(t *testing.T) {
	for _, c := range roundTripCases {
		t.Run(c.name, func(t *testing.T) {
			s, err := spec.Parse([]byte(c.input))
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			out, err := s.Serialize()
			if err != nil {
				t.Fatalf("Serialize: %v", err)
			}
			s2, err := spec.Parse(out)
			if err != nil {
				t.Fatalf("Parse(Serialize): %v\n%s", err, out)
			}
			out2, err := s2.Serialize()
			if err != nil {
				t.Fatalf("second Serialize: %v", err)
			}
			if !bytes.Equal(out, out2) {
				t.Fatalf("serialization is not a fixed point:\nfirst:\n%s\nsecond:\n%s", out, out2)
			}
			fp1, err := s.Fingerprint()
			if err != nil {
				t.Fatalf("Fingerprint: %v", err)
			}
			fp2, _ := s2.Fingerprint()
			if fp1 != fp2 {
				t.Fatalf("fingerprint changed across round trip: %016x vs %016x", fp1, fp2)
			}
			if len(s.Mix) > 0 {
				return // compile determinism for mixes is covered by TestCompileMix
			}
			if !streamsEqual(t, s, s2, 43, 4096) {
				t.Fatalf("round-tripped spec compiles to a different stream")
			}
		})
	}
}

// streamsEqual compiles both specs under seed and compares the first n
// generated instructions.
func streamsEqual(t *testing.T, a, b *spec.Spec, seed uint64, n int) bool {
	t.Helper()
	ga, err := spec.Compile(a, seed)
	if err != nil {
		t.Fatalf("Compile a: %v", err)
	}
	gb, err := spec.Compile(b, seed)
	if err != nil {
		t.Fatalf("Compile b: %v", err)
	}
	var ia, ib isa.Instruction
	for i := 0; i < n; i++ {
		ga.Next(&ia)
		gb.Next(&ib)
		if ia != ib {
			t.Logf("instruction %d differs: %+v vs %+v", i, ia, ib)
			return false
		}
	}
	return true
}

func TestCompileDeterminism(t *testing.T) {
	// A spec with every field distribution-valued must still expand the
	// same way on every compile with the same seed.
	doc := `{
		"version": 1, "name": "dist-heavy",
		"phases": [
			{"length": {"dist": "uniform", "min": 2000, "max": 8000}, "repeat": 16,
			 "profile": {"chains": {"dist": "geometric", "mean": 6}}},
			{"length": {"dist": "gamma", "shape": 4, "scale": 1500}, "repeat": 8,
			 "profile": {"chains": {"dist": "poisson", "mean": 5}}}
		]
	}`
	s, err := spec.Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !streamsEqual(t, s, s, 99, 8192) {
		t.Fatalf("same (spec, seed) compiled to different streams")
	}
}

func TestCompileRejectsMix(t *testing.T) {
	s, err := spec.Parse([]byte(roundTripCases[len(roundTripCases)-1].input))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, err := spec.Compile(s, 1); err == nil {
		t.Fatalf("Compile accepted a mix spec")
	}
	if _, err := spec.CompileMix(s, 1); err != nil {
		t.Fatalf("CompileMix: %v", err)
	}
}

func TestCompileMix(t *testing.T) {
	s, err := spec.Parse([]byte(roundTripCases[len(roundTripCases)-1].input))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	threads, err := spec.CompileMix(s, 10)
	if err != nil {
		t.Fatalf("CompileMix: %v", err)
	}
	if len(threads) != 2 {
		t.Fatalf("got %d threads, want 2", len(threads))
	}
	if threads[0].Name != "gzip" || threads[0].Seed != 10 || threads[0].Clusters != 8 {
		t.Errorf("thread 0 = %+v, want gzip seed 10 clusters 8", threads[0])
	}
	if threads[1].Name != "inline" || threads[1].Seed != 17 {
		t.Errorf("thread 1 = %+v, want inline seed 17", threads[1])
	}
	// Same mix, same seed: both compiles yield identical streams.
	again, err := spec.CompileMix(s, 10)
	if err != nil {
		t.Fatalf("CompileMix again: %v", err)
	}
	var a, b isa.Instruction
	for i := 0; i < 2048; i++ {
		threads[1].Gen.Next(&a)
		again[1].Gen.Next(&b)
		if a != b {
			t.Fatalf("inline mix thread not deterministic at instruction %d", i)
		}
	}
}

// malformedCases drive the error-message golden: every entry must be
// rejected by Parse, and the exact message is pinned so error quality is a
// tested property, not an accident.
var malformedCases = []struct {
	name  string
	input string
}{
	{"empty", ``},
	{"not-json", `]`},
	{"bad-version", `{"version": 2, "name": "x", "phases": [{"length": 10, "profile": {"chains": 1}}]}`},
	{"missing-name", `{"version": 1, "phases": [{"length": 10, "profile": {"chains": 1}}]}`},
	{"no-program", `{"version": 1, "name": "x"}`},
	{"phases-and-mix", `{"version": 1, "name": "x", "phases": [{"length": 10, "profile": {"chains": 1}}], "mix": [{"bench": "gzip"}, {"bench": "swim"}]}`},
	{"unknown-top-field", `{"version": 1, "name": "x", "wibble": 3, "phases": [{"length": 10, "profile": {"chains": 1}}]}`},
	{"unknown-profile-field", `{"version": 1, "name": "x", "phases": [{"length": 10, "profile": {"chains": 1, "wibble": 3}}]}`},
	{"trailing-data", `{"version": 1, "name": "x", "phases": [{"length": 10, "profile": {"chains": 1}}]} {"more": 1}`},
	{"zero-length", `{"version": 1, "name": "x", "phases": [{"length": 0, "profile": {"chains": 1}}]}`},
	{"zero-chains", `{"version": 1, "name": "x", "phases": [{"length": 10, "profile": {"chains": 0}}]}`},
	{"negative-repeat", `{"version": 1, "name": "x", "phases": [{"length": 10, "repeat": -1, "profile": {"chains": 1}}]}`},
	{"frac-above-one", `{"version": 1, "name": "x", "phases": [{"length": 10, "profile": {"chains": 1, "load_frac": 1.5}}]}`},
	{"reuse-below-minus-one", `{"version": 1, "name": "x", "phases": [{"length": 10, "profile": {"chains": 1, "reuse_frac": -2}}]}`},
	{"unknown-dist", `{"version": 1, "name": "x", "phases": [{"length": {"dist": "zipf", "mean": 4}, "profile": {"chains": 1}}]}`},
	{"unknown-dist-field", `{"version": 1, "name": "x", "phases": [{"length": {"dist": "uniform", "min": 1, "max": 2, "sigma": 3}, "profile": {"chains": 1}}]}`},
	{"dist-not-number", `{"version": 1, "name": "x", "phases": [{"length": "large", "profile": {"chains": 1}}]}`},
	{"uniform-min-over-max", `{"version": 1, "name": "x", "phases": [{"length": {"dist": "uniform", "min": 9, "max": 3}, "profile": {"chains": 1}}]}`},
	{"geometric-mean-below-one", `{"version": 1, "name": "x", "phases": [{"length": {"dist": "geometric", "mean": 0.5}, "profile": {"chains": 1}}]}`},
	{"poisson-mean-too-big", `{"version": 1, "name": "x", "phases": [{"length": {"dist": "poisson", "mean": 2000000}, "profile": {"chains": 1}}]}`},
	{"gamma-fractional-shape", `{"version": 1, "name": "x", "phases": [{"length": {"dist": "gamma", "shape": 2.5, "scale": 10}, "profile": {"chains": 1}}]}`},
	{"gamma-shape-too-big", `{"version": 1, "name": "x", "phases": [{"length": {"dist": "gamma", "shape": 65, "scale": 10}, "profile": {"chains": 1}}]}`},
	{"weibull-zero-shape", `{"version": 1, "name": "x", "phases": [{"length": {"dist": "weibull", "shape": 0, "scale": 10}, "profile": {"chains": 1}}]}`},
	{"mix-single-thread", `{"version": 1, "name": "x", "mix": [{"bench": "gzip"}]}`},
	{"mix-bench-and-phases", `{"version": 1, "name": "x", "mix": [{"bench": "gzip"}, {"bench": "swim", "phases": [{"length": 10, "profile": {"chains": 1}}]}]}`},
	{"mix-inline-unnamed", `{"version": 1, "name": "x", "mix": [{"bench": "gzip"}, {"phases": [{"length": 10, "profile": {"chains": 1}}]}]}`},
	{"mix-empty-entry", `{"version": 1, "name": "x", "mix": [{"bench": "gzip"}, {}]}`},
	{"mix-clusters-out-of-range", `{"version": 1, "name": "x", "mix": [{"bench": "gzip"}, {"bench": "swim", "clusters": 17}]}`},
	{"stride-too-large", `{"version": 1, "name": "x", "phases": [{"length": 10, "profile": {"chains": 1, "stride": 8589934592}}]}`},
	{"negative-footprint", `{"version": 1, "name": "x", "phases": [{"length": 10, "profile": {"chains": 1, "footprint": -1}}]}`},
}

func TestParseErrorsGolden(t *testing.T) {
	var buf bytes.Buffer
	for _, c := range malformedCases {
		s, err := spec.Parse([]byte(c.input))
		if err == nil {
			t.Errorf("%s: Parse accepted a malformed spec: %+v", c.name, s)
			continue
		}
		fmt.Fprintf(&buf, "%s: %v\n", c.name, err)
	}
	path := filepath.Join("testdata", "errors.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("error messages diverge from golden (run with -update if intended):\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.json")
	if err := os.WriteFile(path, []byte(roundTripCases[0].input), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := spec.LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if s.Name != "tiny" {
		t.Fatalf("loaded name %q, want tiny", s.Name)
	}
	if _, err := spec.LoadFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatalf("LoadFile accepted a missing file")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version": 9}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := spec.LoadFile(bad); err == nil {
		t.Fatalf("LoadFile accepted an invalid spec")
	}
}
