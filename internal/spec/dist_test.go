package spec_test

import (
	"math"
	"testing"

	"clustersim/internal/rng"
	"clustersim/internal/spec"
)

func TestDistSampleSupport(t *testing.T) {
	cases := []struct {
		name    string
		d       spec.Dist
		lo, hi  float64
		integer bool
	}{
		{"const", spec.Const(42), 42, 42, false},
		{"uniform", spec.Dist{Kind: spec.DistUniform, Min: 10, Max: 20}, 10, 20, false},
		{"geometric", spec.Dist{Kind: spec.DistGeometric, Mean: 5}, 1, math.Inf(1), true},
		{"exponential", spec.Dist{Kind: spec.DistExponential, Mean: 100}, 0, math.Inf(1), false},
		{"poisson", spec.Dist{Kind: spec.DistPoisson, Mean: 7}, 0, 4*7 + 64, true},
		{"gamma", spec.Dist{Kind: spec.DistGamma, Shape: 4, Scale: 50}, 0, math.Inf(1), false},
		{"weibull", spec.Dist{Kind: spec.DistWeibull, Shape: 2, Scale: 30}, 0, math.Inf(1), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := rng.New(7)
			for i := 0; i < 10_000; i++ {
				v := c.d.Sample(r)
				if v < c.lo || v > c.hi {
					t.Fatalf("draw %d: %v outside [%v,%v]", i, v, c.lo, c.hi)
				}
				if c.integer && v != math.Trunc(v) {
					t.Fatalf("draw %d: %v not an integer", i, v)
				}
			}
		})
	}
}

func TestDistSampleDeterminism(t *testing.T) {
	d := spec.Dist{Kind: spec.DistWeibull, Shape: 1.3, Scale: 900}
	a, b := rng.New(11), rng.New(11)
	for i := 0; i < 1000; i++ {
		if va, vb := d.Sample(a), d.Sample(b); va != vb {
			t.Fatalf("draw %d: %v vs %v from identical sources", i, va, vb)
		}
	}
}

// TestDistDrawBudget pins the draw-count contract Compile documents: a
// constant consumes no uniforms, gamma consumes Shape, everything else
// exactly one. Editing one phase's distribution must never shift the
// variates a later phase samples.
func TestDistDrawBudget(t *testing.T) {
	cases := []struct {
		name  string
		d     spec.Dist
		draws uint64
	}{
		{"const", spec.Const(3), 0},
		{"uniform", spec.Dist{Kind: spec.DistUniform, Min: 0, Max: 1}, 1},
		{"geometric", spec.Dist{Kind: spec.DistGeometric, Mean: 9}, 1},
		{"exponential", spec.Dist{Kind: spec.DistExponential, Mean: 5}, 1},
		{"poisson", spec.Dist{Kind: spec.DistPoisson, Mean: 12}, 1},
		{"gamma", spec.Dist{Kind: spec.DistGamma, Shape: 5, Scale: 2}, 5},
		{"weibull", spec.Dist{Kind: spec.DistWeibull, Shape: 0.8, Scale: 4}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := rng.New(3)
			c.d.Sample(r)
			probe := r.Uint64()
			// Reference: advance a twin source by the documented draw count
			// by hand, then draw the same probe.
			ref := rng.New(3)
			for i := uint64(0); i < c.draws; i++ {
				ref.Float64()
			}
			if want := ref.Uint64(); probe != want {
				t.Fatalf("sample consumed a different number of draws than the documented %d", c.draws)
			}
		})
	}
}

func TestDistSampleMeans(t *testing.T) {
	// Inverse-CDF sampling must reproduce the distribution's mean; a fixed
	// seed makes the check exact-once-measured rather than flaky.
	const n = 200_000
	cases := []struct {
		name string
		d    spec.Dist
		mean float64
		tol  float64
	}{
		{"uniform", spec.Dist{Kind: spec.DistUniform, Min: 100, Max: 300}, 200, 0.02},
		{"geometric", spec.Dist{Kind: spec.DistGeometric, Mean: 12}, 12, 0.02},
		{"exponential", spec.Dist{Kind: spec.DistExponential, Mean: 4000}, 4000, 0.02},
		{"poisson", spec.Dist{Kind: spec.DistPoisson, Mean: 9}, 9, 0.02},
		{"gamma", spec.Dist{Kind: spec.DistGamma, Shape: 3, Scale: 100}, 300, 0.02},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := rng.New(123)
			sum := 0.0
			for i := 0; i < n; i++ {
				sum += c.d.Sample(r)
			}
			got := sum / n
			if math.Abs(got-c.mean) > c.mean*c.tol {
				t.Fatalf("empirical mean %v, want %v ± %.0f%%", got, c.mean, c.tol*100)
			}
		})
	}
}

func TestSampleIntClamps(t *testing.T) {
	r := rng.New(1)
	if got := spec.Const(0).SampleInt(r, 5, 10); got != 5 {
		t.Errorf("below-range constant clamped to %d, want 5", got)
	}
	if got := spec.Const(1e18).SampleInt(r, 5, 10); got != 10 {
		t.Errorf("above-range constant clamped to %d, want 10", got)
	}
	if got := spec.Const(7).SampleInt(r, 5, 10); got != 7 {
		t.Errorf("in-range constant became %d, want 7", got)
	}
}
