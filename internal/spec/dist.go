package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"clustersim/internal/rng"
)

// Distribution kinds. Every kind is sampled by inverting its CDF on uniform
// variates from internal/rng, so a spec consumes a fixed, documented number
// of draws per sample regardless of the value produced — the property that
// keeps spec expansion deterministic and editable (changing one phase's
// distribution parameters never shifts another phase's draws; see Compile).
const (
	// DistConst is a degenerate point mass. It consumes no draws, so the
	// nine benchmark specs (all constants) expand without touching the
	// RNG at all.
	DistConst = "const"
	// DistUniform is continuous uniform on [Min, Max]. One draw.
	DistUniform = "uniform"
	// DistGeometric is the geometric distribution with mean Mean >= 1
	// (number of Bernoulli(1/Mean) trials up to the first success),
	// inverted in closed form. One draw.
	DistGeometric = "geometric"
	// DistExponential has mean Mean > 0. One draw.
	DistExponential = "exponential"
	// DistPoisson has mean Mean > 0, inverted by CDF summation. One draw.
	DistPoisson = "poisson"
	// DistGamma is restricted to integer Shape k >= 1 (the Erlang
	// distribution), sampled as the sum of k inverse-CDF exponentials of
	// mean Scale. Exactly k draws. Non-integer shapes have no closed-form
	// inverse CDF and are rejected at validation.
	DistGamma = "gamma"
	// DistWeibull has Shape > 0 and Scale > 0. One draw.
	DistWeibull = "weibull"
)

// Dist is a sampleable scalar in a workload spec: either a constant or a
// named distribution. In JSON a constant is written as a bare number
// (`"length": 400000`) and a distribution as an object
// (`"length": {"dist": "uniform", "min": 3000, "max": 9000}`); Dist
// marshals constants back to bare numbers so serialization is a fixed
// point of parsing.
type Dist struct {
	// Kind selects the distribution ("" and DistConst both mean a
	// constant; parsing always normalizes to DistConst).
	Kind string `json:"dist"`
	// Value is the constant's value (DistConst only).
	Value float64 `json:"value,omitempty"`
	// Min and Max bound DistUniform.
	Min float64 `json:"min,omitempty"`
	Max float64 `json:"max,omitempty"`
	// Mean parameterizes DistGeometric, DistExponential and DistPoisson.
	Mean float64 `json:"mean,omitempty"`
	// Shape and Scale parameterize DistGamma and DistWeibull.
	Shape float64 `json:"shape,omitempty"`
	Scale float64 `json:"scale,omitempty"`
}

// Const returns a constant distribution.
func Const(v float64) Dist { return Dist{Kind: DistConst, Value: v} }

// IsConst reports whether d is a point mass (and so consumes no draws).
func (d Dist) IsConst() bool { return d.Kind == "" || d.Kind == DistConst }

// UnmarshalJSON accepts a bare JSON number (constant) or a distribution
// object with unknown fields rejected.
func (d *Dist) UnmarshalJSON(data []byte) error {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return fmt.Errorf("empty distribution")
	}
	if trimmed[0] != '{' {
		var v float64
		if err := json.Unmarshal(trimmed, &v); err != nil {
			return fmt.Errorf("distribution must be a number or an object: %w", err)
		}
		*d = Const(v)
		return nil
	}
	// Decode through a local alias so this method does not recurse, with
	// the same strictness Parse applies to the enclosing spec.
	type distAlias Dist
	var a distAlias
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&a); err != nil {
		return err
	}
	*d = Dist(a)
	if d.Kind == "" {
		d.Kind = DistConst
	}
	return nil
}

// MarshalJSON writes constants as bare numbers and everything else as the
// object form, so parse → serialize → parse is the identity.
func (d Dist) MarshalJSON() ([]byte, error) {
	if d.IsConst() {
		return json.Marshal(d.Value)
	}
	type distAlias Dist
	return json.Marshal(distAlias(d))
}

// validate checks the distribution's parameters. what names the field for
// error messages.
func (d Dist) validate(what string) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%s: %s", what, fmt.Sprintf(format, args...))
	}
	finite := func(name string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return bad("%s must be finite, got %v", name, v)
		}
		return nil
	}
	switch d.Kind {
	case "", DistConst:
		return finite("value", d.Value)
	case DistUniform:
		if err := finite("min", d.Min); err != nil {
			return err
		}
		if err := finite("max", d.Max); err != nil {
			return err
		}
		if d.Min > d.Max {
			return bad("min %v exceeds max %v", d.Min, d.Max)
		}
		return nil
	case DistGeometric:
		if err := finite("mean", d.Mean); err != nil {
			return err
		}
		if d.Mean < 1 {
			return bad("geometric mean must be >= 1, got %v", d.Mean)
		}
		return nil
	case DistExponential, DistPoisson:
		if err := finite("mean", d.Mean); err != nil {
			return err
		}
		if d.Mean <= 0 {
			return bad("%s mean must be > 0, got %v", d.Kind, d.Mean)
		}
		if d.Kind == DistPoisson && d.Mean > 1e6 {
			return bad("poisson mean %v exceeds the 1e6 inversion limit", d.Mean)
		}
		return nil
	case DistGamma:
		if err := finite("shape", d.Shape); err != nil {
			return err
		}
		if err := finite("scale", d.Scale); err != nil {
			return err
		}
		if d.Shape < 1 || d.Shape != math.Trunc(d.Shape) {
			return bad("gamma shape must be a positive integer (Erlang), got %v", d.Shape)
		}
		if d.Shape > 64 {
			return bad("gamma shape %v exceeds the 64-stage Erlang limit", d.Shape)
		}
		if d.Scale <= 0 {
			return bad("gamma scale must be > 0, got %v", d.Scale)
		}
		return nil
	case DistWeibull:
		if err := finite("shape", d.Shape); err != nil {
			return err
		}
		if err := finite("scale", d.Scale); err != nil {
			return err
		}
		if d.Shape <= 0 {
			return bad("weibull shape must be > 0, got %v", d.Shape)
		}
		if d.Scale <= 0 {
			return bad("weibull scale must be > 0, got %v", d.Scale)
		}
		return nil
	default:
		return bad("unknown distribution %q (want %s)", d.Kind,
			"const|uniform|geometric|exponential|poisson|gamma|weibull")
	}
}

// Sample draws one value by inverse-CDF transform of r's uniform output.
// Constants consume no draws; gamma consumes Shape draws (one per Erlang
// stage); every other kind consumes exactly one.
func (d Dist) Sample(r *rng.Source) float64 {
	switch d.Kind {
	case "", DistConst:
		return d.Value
	case DistUniform:
		return d.Min + (d.Max-d.Min)*r.Float64()
	case DistGeometric:
		if d.Mean <= 1 {
			return 1
		}
		// P(X <= n) = 1 - (1-p)^n; invert at u: the smallest n with
		// (1-p)^n <= 1-u.
		u := r.Float64()
		n := math.Floor(math.Log1p(-u)/math.Log1p(-1/d.Mean)) + 1
		if n < 1 {
			n = 1
		}
		return n
	case DistExponential:
		return -d.Mean * math.Log1p(-r.Float64())
	case DistPoisson:
		// Invert F(k) by summation: walk the PMF until the cumulative
		// mass passes u. The validation bound on Mean keeps the walk
		// short and e^-Mean representable.
		u := r.Float64()
		p := math.Exp(-d.Mean)
		f := p
		k := 0.0
		for u > f && k < 4*d.Mean+64 {
			k++
			p *= d.Mean / k
			f += p
		}
		return k
	case DistGamma:
		sum := 0.0
		for i := 0; i < int(d.Shape); i++ {
			sum += -d.Scale * math.Log1p(-r.Float64())
		}
		return sum
	case DistWeibull:
		return d.Scale * math.Pow(-math.Log1p(-r.Float64()), 1/d.Shape)
	default:
		// Validate rejects unknown kinds before sampling; treat a
		// hand-built invalid Dist as its zero constant.
		return 0
	}
}

// SampleInt draws one value and clamps it into [lo, hi] as an integer.
func (d Dist) SampleInt(r *rng.Source, lo, hi int64) int64 {
	v := d.Sample(r)
	switch {
	case math.IsNaN(v) || v < float64(lo):
		return lo
	case v >= float64(hi):
		return hi
	}
	return int64(v)
}
