package spec_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"clustersim/internal/core"
	"clustersim/internal/pipeline"
	"clustersim/internal/smt"
	"clustersim/internal/spec"
	"clustersim/internal/trace"
	"clustersim/internal/workload"
)

// specsDir is the checked-in spec directory at the repository root.
const specsDir = "../../specs"

// oracleWindow keeps the full 9-benchmark × 4-policy matrix fast while
// still crossing several phase boundaries of every workload.
const oracleWindow = 20_000

const oracleSeed = 1

// policies is the controller matrix the byte-identity oracles sweep.
var policies = []struct {
	name string
	mk   func() pipeline.Controller
}{
	{"static", func() pipeline.Controller { return nil }},
	{"explore", func() pipeline.Controller { return core.NewExplore(core.ExploreConfig{}) }},
	{"dilp", func() pipeline.Controller { return core.NewDistantILP(core.DistantILPConfig{}) }},
	{"fg", func() pipeline.Controller { return core.NewFineGrain(core.FineGrainConfig{}) }},
}

func runGen(t *testing.T, gen workload.Generator, mkCtrl func() pipeline.Controller, window uint64) pipeline.Result {
	t.Helper()
	p, err := pipeline.New(pipeline.DefaultConfig(), gen, mkCtrl())
	if err != nil {
		t.Fatalf("pipeline.New: %v", err)
	}
	res, err := p.Run(window)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestBuiltinSpecGoldens pins the checked-in specs/<bench>.json files to
// the canonical serialization of the built-in benchmark definitions; with
// -update it regenerates them. A drifted golden means either the benchmark
// definition or the serialization format changed — both must be deliberate.
func TestBuiltinSpecGoldens(t *testing.T) {
	for _, bench := range workload.Benchmarks() {
		phases, ok := workload.BuiltinPhases(bench)
		if !ok {
			t.Fatalf("BuiltinPhases(%q) unknown", bench)
		}
		s := spec.FromPhases(bench, phases)
		want, err := s.Serialize()
		if err != nil {
			t.Fatalf("%s: Serialize: %v", bench, err)
		}
		path := filepath.Join(specsDir, bench+".json")
		if *update {
			if err := os.WriteFile(path, want, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -update to regenerate)", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: checked-in spec drifted from the built-in definition (run with -update if intended)", bench)
		}
	}
}

// TestSpecOracle is the format-completeness proof: for each of the nine
// benchmarks, the checked-in spec compiles to a generator whose full
// simulated Result is byte-identical to the hard-coded generator's under
// every reconfiguration policy — and a trace recorded from the live
// generator replays to the same Result again.
func TestSpecOracle(t *testing.T) {
	for _, bench := range workload.Benchmarks() {
		s, err := spec.LoadFile(filepath.Join(specsDir, bench+".json"))
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		fp, err := s.Fingerprint()
		if err != nil {
			t.Fatalf("%s: Fingerprint: %v", bench, err)
		}
		for _, pol := range policies {
			t.Run(bench+"/"+pol.name, func(t *testing.T) {
				liveGen, err := workload.New(bench, oracleSeed)
				if err != nil {
					t.Fatal(err)
				}
				live := runGen(t, liveGen, pol.mk, oracleWindow)

				specGen, err := spec.Compile(s, oracleSeed)
				if err != nil {
					t.Fatal(err)
				}
				fromSpec := runGen(t, specGen, pol.mk, oracleWindow)
				if live != fromSpec {
					t.Errorf("spec-compiled run diverges from built-in generator:\n  live: %+v\n  spec: %+v", live, fromSpec)
				}

				recGen, err := workload.New(bench, oracleSeed)
				if err != nil {
					t.Fatal(err)
				}
				tr := trace.Record(recGen, oracleWindow+trace.DefaultHeadroom, trace.Meta{
					Name: bench, SourceKind: trace.SourceSpec, SourceID: bench,
					SourceFP: fp, Seed: oracleSeed,
				})
				replayed := runGen(t, tr.Replayer(), pol.mk, oracleWindow)
				if live != replayed {
					t.Errorf("replayed run diverges from live generation:\n  live:   %+v\n  replay: %+v", live, replayed)
				}
			})
		}
	}
}

// TestThrashSpecOracle runs the adversarial phase-thrashing stressor:
// phase lengths sampled near the controllers' decision interval, so
// policies reconfigure constantly. Record → replay must still be
// byte-identical under every policy.
func TestThrashSpecOracle(t *testing.T) {
	s, err := spec.LoadFile(filepath.Join(specsDir, "phase-thrash.json"))
	if err != nil {
		t.Fatal(err)
	}
	const window = 60_000
	for _, pol := range policies {
		t.Run(pol.name, func(t *testing.T) {
			liveGen, err := spec.Compile(s, oracleSeed)
			if err != nil {
				t.Fatal(err)
			}
			live := runGen(t, liveGen, pol.mk, window)
			if live.Instructions < window {
				t.Fatalf("thrash run committed only %d of %d", live.Instructions, window)
			}

			recGen, err := spec.Compile(s, oracleSeed)
			if err != nil {
				t.Fatal(err)
			}
			tr := trace.Record(recGen, window+trace.DefaultHeadroom, trace.Meta{
				Name: s.Name, SourceKind: trace.SourceSpec, SourceID: s.Name, Seed: oracleSeed,
			})
			replayed := runGen(t, tr.Replayer(), pol.mk, window)
			if live != replayed {
				t.Errorf("replayed thrash run diverges:\n  live:   %+v\n  replay: %+v", live, replayed)
			}
		})
	}
}

// TestSMTMixSpecOracle compiles the checked-in multi-programmed mix, runs
// it through the SMT co-schedule live, then replays every thread from a
// recording and demands an identical Report.
func TestSMTMixSpecOracle(t *testing.T) {
	s, err := spec.LoadFile(filepath.Join(specsDir, "smt-mix.json"))
	if err != nil {
		t.Fatal(err)
	}
	const (
		epochs      = 6
		epochCycles = 2_000
		total       = 16
	)
	run := func(threads []smt.Thread) smt.Report {
		t.Helper()
		sys, err := smt.New(pipeline.DefaultConfig(), threads, total, smt.DistantILPPartition{})
		if err != nil {
			t.Fatalf("smt.New: %v", err)
		}
		rep, err := sys.Run(epochs, epochCycles)
		if err != nil {
			t.Fatalf("smt.Run: %v", err)
		}
		return rep
	}

	liveThreads, err := spec.CompileMix(s, oracleSeed)
	if err != nil {
		t.Fatal(err)
	}
	var threads []smt.Thread
	for _, th := range liveThreads {
		threads = append(threads, smt.Thread{Bench: th.Name, Seed: th.Seed, Gen: th.Gen})
	}
	live := run(threads)

	// Replay arm: record each thread's stream from a fresh compile, then
	// feed replayers instead of live generators. An SMT epoch can fetch at
	// most epochs*epochCycles*FetchWidth instructions; headroom on top.
	recThreads, err := spec.CompileMix(s, oracleSeed)
	if err != nil {
		t.Fatal(err)
	}
	budget := uint64(epochs*epochCycles)*uint64(pipeline.DefaultConfig().FetchWidth) + trace.DefaultHeadroom
	var replayThreads []smt.Thread
	for _, th := range recThreads {
		tr := trace.Record(th.Gen, budget, trace.Meta{
			Name: th.Name, SourceKind: trace.SourceCustom, SourceID: th.Name, Seed: th.Seed,
		})
		replayThreads = append(replayThreads, smt.Thread{Bench: th.Name, Seed: th.Seed, Gen: tr.Replayer()})
	}
	replayed := run(replayThreads)

	if !reflect.DeepEqual(live, replayed) {
		t.Errorf("replayed SMT mix diverges from live co-schedule:\n  live:   %+v\n  replay: %+v", live, replayed)
	}
}
