// Package spec defines the declarative workload format: a JSON document (a
// strict subset of YAML, so spec files load in either toolchain) describing
// a synthetic program as a phase list with per-phase instruction-mix,
// dependence and locality profiles, or a multi-programmed mix of such
// programs for the SMT co-schedule studies.
//
// A spec compiles into the same engine behind the nine built-in benchmarks
// (workload.Custom), so a spec whose phases equal a built-in program's
// phases produces a byte-identical instruction stream — the property the
// checked-in specs under specs/ prove for all nine (see TestSpecOracle).
// Distribution-valued fields (phase lengths, dependence-chain counts) are
// expanded at compile time by deterministic inverse-CDF sampling off
// internal/rng: the same (spec, seed) pair always yields the same program.
//
// The canonical serialization (Serialize) is a fixed point of Parse and is
// what Fingerprint hashes; the fingerprint names the spec in trace headers
// and runner cache keys.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"

	"clustersim/internal/workload"
)

// Version is the spec format version this package reads and writes.
const Version = 1

// Validation bounds. They exist so a fuzzed or hand-edited spec cannot
// drive the compiler into multi-gigabyte allocations or hour-long static
// code generation; all are far above anything the bundled workloads use.
const (
	maxPhases     = 256     // phase list entries
	maxRepeat     = 4096    // per-phase repeat count
	maxExpanded   = 4096    // total phases after repeat expansion
	maxPhaseLen   = 1 << 40 // dynamic instructions per phase
	maxChains     = 1 << 16 // dependence chains
	maxLoopBody   = 1 << 16 // instructions per loop body
	maxLoopIters  = 1 << 20 // iterations per loop
	maxStride     = 1 << 32 // |bytes| between strided accesses
	maxFootprint  = 1 << 40 // bytes touched
	maxBlocks     = 1024    // static basic blocks
	maxCallEvery  = 1 << 20 // blocks between calls
	maxFuncs      = 1024    // static functions
	maxMixEntries = 16      // threads in a mix
)

// Spec is one declarative workload: exactly one of Phases (a single
// program) or Mix (a multi-programmed SMT workload) must be non-empty.
type Spec struct {
	// Version is the format version (must be 1).
	Version int `json:"version"`
	// Name is the workload's benchmark name (Result.Benchmark).
	Name string `json:"name"`
	// Doc is free-form documentation.
	Doc string `json:"doc,omitempty"`
	// Phases is the program's cyclic phase sequence.
	Phases []Phase `json:"phases,omitempty"`
	// Mix is the thread list of a multi-programmed workload.
	Mix []MixEntry `json:"mix,omitempty"`
}

// Phase is one segment of a program: a profile executed for Length dynamic
// instructions (sampled per instance), optionally repeated.
type Phase struct {
	// Name labels the phase ("" defaults to phase<index>).
	Name string `json:"name,omitempty"`
	// Length is the phase's dynamic instruction count (>= 1).
	Length Dist `json:"length"`
	// Repeat expands the phase into this many consecutive instances,
	// each with independently sampled Length and Chains (0 means 1).
	Repeat int `json:"repeat,omitempty"`
	// Profile is the phase's kernel parameters.
	Profile Profile `json:"profile"`
}

// Profile mirrors workload.Kernel field for field (see that type for
// semantics), with Chains distribution-valued: the chain count is the
// program's mean dependence distance, so a distribution here varies the
// dependence structure across repeat instances.
type Profile struct {
	Chains         Dist    `json:"chains"`
	FP             bool    `json:"fp,omitempty"`
	LoadFrac       float64 `json:"load_frac,omitempty"`
	StoreFrac      float64 `json:"store_frac,omitempty"`
	BranchFrac     float64 `json:"branch_frac,omitempty"`
	MultFrac       float64 `json:"mult_frac,omitempty"`
	CrossFrac      float64 `json:"cross_frac,omitempty"`
	FreshFrac      float64 `json:"fresh_frac,omitempty"`
	LoopBody       int     `json:"loop_body,omitempty"`
	LoopIters      int     `json:"loop_iters,omitempty"`
	IterJitter     int     `json:"iter_jitter,omitempty"`
	RandBranchFrac float64 `json:"rand_branch_frac,omitempty"`
	RandTakenProb  float64 `json:"rand_taken_prob,omitempty"`
	Stride         int64   `json:"stride,omitempty"`
	Footprint      int64   `json:"footprint,omitempty"`
	RandomAddr     bool    `json:"random_addr,omitempty"`
	Chase          bool    `json:"chase,omitempty"`
	AddrDepFrac    float64 `json:"addr_dep_frac,omitempty"`
	ReuseFrac      float64 `json:"reuse_frac,omitempty"`
	StaticBlocks   int     `json:"static_blocks,omitempty"`
	CallEvery      int     `json:"call_every,omitempty"`
	Funcs          int     `json:"funcs,omitempty"`
}

// MixEntry is one thread of a multi-programmed workload: either a built-in
// benchmark by name or an inline phase program.
type MixEntry struct {
	// Bench names a built-in benchmark (exclusive with Phases).
	Bench string `json:"bench,omitempty"`
	// Name labels an inline program (required with Phases).
	Name string `json:"name,omitempty"`
	// Phases is the inline program (exclusive with Bench).
	Phases []Phase `json:"phases,omitempty"`
	// SeedOffset is added to the compile seed so co-run threads of the
	// same program still draw independent streams.
	SeedOffset uint64 `json:"seed_offset,omitempty"`
	// Clusters is an optional fixed-partition allotment hint consumed by
	// smt.FixedPartition (0 = policy decides).
	Clusters int `json:"clusters,omitempty"`
}

// Parse decodes and validates a spec. Unknown fields, trailing data and
// out-of-range values are all errors: a spec drives deterministic
// simulations, so a typo must fail loudly rather than silently select a
// default.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	// json.Decoder stops at the first value; anything but whitespace
	// after it means the file is not one spec document.
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil || len(trailing) > 0 {
		return nil, fmt.Errorf("spec: trailing data after spec document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads and parses the spec at path.
func LoadFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return s, nil
}

// Serialize renders the spec in canonical form: two-space-indented JSON
// with a trailing newline, constants as bare numbers, zero-valued optional
// fields omitted. Parse(Serialize(s)) reproduces s, and Serialize is the
// byte stream Fingerprint hashes. It fails only on non-finite floats,
// which Validate rejects first.
func (s *Spec) Serialize() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return append(data, '\n'), nil
}

// Fingerprint hashes the canonical serialization (FNV-1a 64), identifying
// the spec in trace headers, runner cache keys and CLI identity checks.
func (s *Spec) Fingerprint() (uint64, error) {
	data, err := s.Serialize()
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64(), nil
}

// Validate checks the whole document against the format's ranges. Errors
// name the offending phase and field.
func (s *Spec) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("spec: unsupported version %d (this build reads version %d)", s.Version, Version)
	}
	if s.Name == "" {
		return fmt.Errorf("spec: name is required")
	}
	switch {
	case len(s.Phases) == 0 && len(s.Mix) == 0:
		return fmt.Errorf("spec %s: want phases (a program) or mix (a multi-programmed workload), have neither", s.Name)
	case len(s.Phases) > 0 && len(s.Mix) > 0:
		return fmt.Errorf("spec %s: phases and mix are mutually exclusive", s.Name)
	}
	if len(s.Phases) > 0 {
		return validatePhases(s.Name, s.Phases)
	}
	if len(s.Mix) < 2 {
		return fmt.Errorf("spec %s: a mix needs at least 2 threads, have %d", s.Name, len(s.Mix))
	}
	if len(s.Mix) > maxMixEntries {
		return fmt.Errorf("spec %s: mix has %d threads, limit %d", s.Name, len(s.Mix), maxMixEntries)
	}
	for i, e := range s.Mix {
		switch {
		case e.Bench != "" && len(e.Phases) > 0:
			return fmt.Errorf("spec %s: mix[%d]: bench and phases are mutually exclusive", s.Name, i)
		case e.Bench == "" && len(e.Phases) == 0:
			return fmt.Errorf("spec %s: mix[%d]: want bench (a built-in) or phases (an inline program)", s.Name, i)
		case len(e.Phases) > 0 && e.Name == "":
			return fmt.Errorf("spec %s: mix[%d]: an inline program needs a name", s.Name, i)
		}
		if e.Clusters < 0 || e.Clusters > 16 {
			return fmt.Errorf("spec %s: mix[%d]: clusters %d outside [0,16]", s.Name, i, e.Clusters)
		}
		if len(e.Phases) > 0 {
			if err := validatePhases(fmt.Sprintf("%s mix[%d] (%s)", s.Name, i, e.Name), e.Phases); err != nil {
				return err
			}
		}
	}
	return nil
}

func validatePhases(ctx string, phases []Phase) error {
	if len(phases) > maxPhases {
		return fmt.Errorf("spec %s: %d phases, limit %d", ctx, len(phases), maxPhases)
	}
	expanded := 0
	for i, p := range phases {
		bad := func(format string, args ...any) error {
			name := p.Name
			if name == "" {
				name = fmt.Sprintf("phase%d", i)
			}
			return fmt.Errorf("spec %s: phase %d (%s): %s", ctx, i, name, fmt.Sprintf(format, args...))
		}
		if p.Repeat < 0 || p.Repeat > maxRepeat {
			return bad("repeat %d outside [0,%d]", p.Repeat, maxRepeat)
		}
		rep := p.Repeat
		if rep == 0 {
			rep = 1
		}
		expanded += rep
		if err := p.Length.validate("length"); err != nil {
			return bad("%v", err)
		}
		if p.Length.IsConst() && (p.Length.Value < 1 || p.Length.Value > maxPhaseLen) {
			return bad("length %v outside [1,%d]", p.Length.Value, int64(maxPhaseLen))
		}
		if err := p.Profile.validate(); err != nil {
			return bad("%v", err)
		}
	}
	if expanded > maxExpanded {
		return fmt.Errorf("spec %s: phases expand to %d instances, limit %d", ctx, expanded, maxExpanded)
	}
	return nil
}

func (p *Profile) validate() error {
	if err := p.Chains.validate("chains"); err != nil {
		return err
	}
	if p.Chains.IsConst() && (p.Chains.Value < 1 || p.Chains.Value > maxChains) {
		return fmt.Errorf("chains %v outside [1,%d]", p.Chains.Value, maxChains)
	}
	fracs := []struct {
		name string
		v    float64
	}{
		{"load_frac", p.LoadFrac}, {"store_frac", p.StoreFrac},
		{"branch_frac", p.BranchFrac}, {"mult_frac", p.MultFrac},
		{"cross_frac", p.CrossFrac}, {"fresh_frac", p.FreshFrac},
		{"rand_branch_frac", p.RandBranchFrac}, {"rand_taken_prob", p.RandTakenProb},
		{"addr_dep_frac", p.AddrDepFrac},
	}
	for _, f := range fracs {
		if !(f.v >= 0 && f.v <= 1) { // rejects NaN too
			return fmt.Errorf("%s %v outside [0,1]", f.name, f.v)
		}
	}
	// ReuseFrac is special: 0 selects the engine default and negative
	// disables reuse entirely (see workload.Kernel).
	if !(p.ReuseFrac >= -1 && p.ReuseFrac <= 1) {
		return fmt.Errorf("reuse_frac %v outside [-1,1]", p.ReuseFrac)
	}
	ints := []struct {
		name string
		v    int64
		max  int64
	}{
		{"loop_body", int64(p.LoopBody), maxLoopBody},
		{"loop_iters", int64(p.LoopIters), maxLoopIters},
		{"iter_jitter", int64(p.IterJitter), maxLoopIters},
		{"footprint", p.Footprint, maxFootprint},
		{"static_blocks", int64(p.StaticBlocks), maxBlocks},
		{"call_every", int64(p.CallEvery), maxCallEvery},
		{"funcs", int64(p.Funcs), maxFuncs},
	}
	for _, f := range ints {
		if f.v < 0 || f.v > f.max {
			return fmt.Errorf("%s %d outside [0,%d]", f.name, f.v, f.max)
		}
	}
	if p.Stride < -maxStride || p.Stride > maxStride {
		return fmt.Errorf("stride %d outside [%d,%d]", p.Stride, int64(-maxStride), int64(maxStride))
	}
	return nil
}

// FromPhases expresses an exported phase list as an all-constant spec. It
// is the bridge that regenerates the checked-in specs under specs/ from
// the built-in benchmark definitions (see TestBuiltinSpecGoldens) and a
// convenient constructor for programmatic specs.
func FromPhases(name string, phases []workload.Phase) *Spec {
	s := &Spec{Version: Version, Name: name}
	for _, p := range phases {
		s.Phases = append(s.Phases, Phase{
			Name:   p.Name,
			Length: Const(float64(p.Length)),
			Profile: Profile{
				Chains:         Const(float64(p.Kernel.Chains)),
				FP:             p.Kernel.FP,
				LoadFrac:       p.Kernel.LoadFrac,
				StoreFrac:      p.Kernel.StoreFrac,
				BranchFrac:     p.Kernel.BranchFrac,
				MultFrac:       p.Kernel.MultFrac,
				CrossFrac:      p.Kernel.CrossFrac,
				FreshFrac:      p.Kernel.FreshFrac,
				LoopBody:       p.Kernel.LoopBody,
				LoopIters:      p.Kernel.LoopIters,
				IterJitter:     p.Kernel.IterJitter,
				RandBranchFrac: p.Kernel.RandBranchFrac,
				RandTakenProb:  p.Kernel.RandTakenProb,
				Stride:         p.Kernel.Stride,
				Footprint:      p.Kernel.Footprint,
				RandomAddr:     p.Kernel.RandomAddr,
				Chase:          p.Kernel.Chase,
				AddrDepFrac:    p.Kernel.AddrDepFrac,
				ReuseFrac:      p.Kernel.ReuseFrac,
				StaticBlocks:   p.Kernel.StaticBlocks,
				CallEvery:      p.Kernel.CallEvery,
				Funcs:          p.Kernel.Funcs,
			},
		})
	}
	return s
}
