package spec

import (
	"fmt"

	"clustersim/internal/rng"
	"clustersim/internal/workload"
)

// expandSalt decorrelates the expansion RNG (which samples phase lengths
// and chain counts) from the engine's compile and run streams, which derive
// from the same seed with their own salts.
const expandSalt = 0xD157_5EED_CA5C_ADE5

// Compile builds the spec's generator: distribution-valued fields are
// expanded by inverse-CDF sampling off rng.New(seed ^ expandSalt) — phases
// in order, length then chains per instance; constants consume no draws —
// and the expanded phase list feeds workload.Custom under the same seed.
// An all-constant spec therefore compiles to exactly the phase list it
// spells out: a spec transcribing a built-in benchmark yields a
// byte-identical instruction stream.
//
// Mix specs describe multiple threads, not one program; compile those with
// CompileMix.
func Compile(s *Spec, seed uint64) (workload.Generator, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(s.Mix) > 0 {
		return nil, fmt.Errorf("spec %s: a mix describes %d threads, not one program (use CompileMix)", s.Name, len(s.Mix))
	}
	phases := expandPhases(s.Phases, seed)
	return workload.Custom(s.Name, phases, seed)
}

// expandPhases samples every distribution-valued field into a concrete
// workload phase list. The draw order is part of the format's contract
// (documented on Compile): phases in declaration order, each repeat
// instance drawing length first, then chains.
func expandPhases(phases []Phase, seed uint64) []workload.Phase {
	r := rng.New(seed ^ expandSalt)
	out := make([]workload.Phase, 0, len(phases))
	for _, p := range phases {
		rep := p.Repeat
		if rep == 0 {
			rep = 1
		}
		for j := 0; j < rep; j++ {
			name := p.Name
			if rep > 1 && name != "" {
				name = fmt.Sprintf("%s#%d", name, j)
			}
			length := p.Length.SampleInt(r, 1, maxPhaseLen)
			chains := int(p.Profile.Chains.SampleInt(r, 1, maxChains))
			out = append(out, workload.Phase{
				Name:   name,
				Length: length,
				Kernel: p.Profile.kernel(chains),
			})
		}
	}
	return out
}

// kernel converts the profile to the exported engine kernel with the
// sampled chain count substituted.
func (p *Profile) kernel(chains int) workload.Kernel {
	return workload.Kernel{
		Chains:         chains,
		FP:             p.FP,
		LoadFrac:       p.LoadFrac,
		StoreFrac:      p.StoreFrac,
		BranchFrac:     p.BranchFrac,
		MultFrac:       p.MultFrac,
		CrossFrac:      p.CrossFrac,
		FreshFrac:      p.FreshFrac,
		LoopBody:       p.LoopBody,
		LoopIters:      p.LoopIters,
		IterJitter:     p.IterJitter,
		RandBranchFrac: p.RandBranchFrac,
		RandTakenProb:  p.RandTakenProb,
		Stride:         p.Stride,
		Footprint:      p.Footprint,
		RandomAddr:     p.RandomAddr,
		Chase:          p.Chase,
		AddrDepFrac:    p.AddrDepFrac,
		ReuseFrac:      p.ReuseFrac,
		StaticBlocks:   p.StaticBlocks,
		CallEvery:      p.CallEvery,
		Funcs:          p.Funcs,
	}
}

// MixThread is one compiled thread of a mix spec, ready for smt.New via
// smt.Thread{Gen: t.Gen, Bench: t.Name, Seed: t.Seed}.
type MixThread struct {
	// Name labels the thread (benchmark name or inline program name).
	Name string
	// Seed is the thread's effective seed (compile seed + SeedOffset).
	Seed uint64
	// Clusters is the spec's fixed-partition hint (0 = policy decides).
	Clusters int
	// Gen is the thread's instruction stream.
	Gen workload.Generator
}

// CompileMix builds one generator per mix entry: built-in benchmarks
// through workload.New, inline programs through Compile, each under
// seed + SeedOffset.
func CompileMix(s *Spec, seed uint64) ([]MixThread, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(s.Mix) == 0 {
		return nil, fmt.Errorf("spec %s: not a mix spec (use Compile)", s.Name)
	}
	threads := make([]MixThread, 0, len(s.Mix))
	for i, e := range s.Mix {
		t := MixThread{Seed: seed + e.SeedOffset, Clusters: e.Clusters}
		if e.Bench != "" {
			gen, err := workload.New(e.Bench, t.Seed)
			if err != nil {
				return nil, fmt.Errorf("spec %s: mix[%d]: %w", s.Name, i, err)
			}
			t.Name, t.Gen = e.Bench, gen
		} else {
			sub := &Spec{Version: Version, Name: e.Name, Phases: e.Phases}
			gen, err := Compile(sub, t.Seed)
			if err != nil {
				return nil, fmt.Errorf("spec %s: mix[%d]: %w", s.Name, i, err)
			}
			t.Name, t.Gen = e.Name, gen
		}
		threads = append(threads, t)
	}
	return threads, nil
}
