package spec_test

import (
	"bytes"
	"testing"

	"clustersim/internal/check"
	"clustersim/internal/isa"
	"clustersim/internal/pipeline"
	"clustersim/internal/spec"
)

// FuzzSpec throws arbitrary documents at the parser. Whatever parses must
// serialize to a fixed point, compile, and drive the simulator without
// tripping a cycle-level invariant — the format's validation bounds are
// exactly what make that promise safe to fuzz.
func FuzzSpec(f *testing.F) {
	for _, c := range roundTripCases {
		f.Add([]byte(c.input))
	}
	for _, c := range malformedCases {
		f.Add([]byte(c.input))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := spec.Parse(data)
		if err != nil {
			return
		}
		out, err := s.Serialize()
		if err != nil {
			t.Fatalf("validated spec failed to serialize: %v", err)
		}
		s2, err := spec.Parse(out)
		if err != nil {
			t.Fatalf("canonical serialization failed to re-parse: %v\n%s", err, out)
		}
		out2, err := s2.Serialize()
		if err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("serialization is not a fixed point:\n%s\nvs\n%s", out, out2)
		}
		if len(s.Mix) > 0 {
			// Mix entries may name unknown benchmarks; that is a compile
			// error, not a panic.
			if threads, err := spec.CompileMix(s, 1); err == nil {
				var in isa.Instruction
				for _, th := range threads {
					for i := 0; i < 64; i++ {
						th.Gen.Next(&in)
					}
				}
			}
			return
		}
		gen, err := spec.Compile(s, 1)
		if err != nil {
			t.Fatalf("validated single-program spec failed to compile: %v", err)
		}
		// Small documents get a real simulation under the fail-fast
		// invariant checker; big ones just prove the generator streams.
		if len(data) <= 4096 {
			cfg := pipeline.DefaultConfig()
			chk := check.NewFailFast()
			cfg.Checker = chk
			p, err := pipeline.New(cfg, gen, nil)
			if err != nil {
				t.Fatalf("pipeline.New: %v", err)
			}
			if _, err := p.Run(2000); err != nil {
				t.Fatalf("simulating a valid spec failed: %v", err)
			}
			if err := chk.Err(); err != nil {
				t.Fatalf("invariant violation: %v", err)
			}
			return
		}
		var in isa.Instruction
		for i := 0; i < 256; i++ {
			gen.Next(&in)
		}
	})
}
