package pipeline_test

import (
	"bytes"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"clustersim/internal/core"
	"clustersim/internal/obs"
	"clustersim/internal/pipeline"
	"clustersim/internal/workload"
)

// buildFor constructs a fresh processor for (bench, seed, cfg, ctrl-factory):
// resume equivalence is about restoring into a *newly constructed* machine,
// exactly what a restarted process would do.
func buildFor(t *testing.T, bench string, seed uint64, cfg pipeline.Config, mkCtrl func() pipeline.Controller) *pipeline.Processor {
	t.Helper()
	gen, err := workload.New(bench, seed)
	if err != nil {
		t.Fatal(err)
	}
	var ctrl pipeline.Controller
	if mkCtrl != nil {
		ctrl = mkCtrl()
	}
	p, err := pipeline.New(cfg, gen, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runOK(t *testing.T, p *pipeline.Processor, n uint64) pipeline.Result {
	t.Helper()
	res, err := p.Run(n)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestSnapshotResumeEquivalence: checkpointing mid-run and restoring into a
// fresh machine must reproduce the uninterrupted run's Result byte for byte,
// and a second snapshot taken at the same point must be byte-identical
// (snapshots are deterministic, so retries overwrite idempotently).
func TestSnapshotResumeEquivalence(t *testing.T) {
	const window, at = 40_000, 17_000
	cfg := pipeline.DefaultConfig()

	whole := runOK(t, buildFor(t, "gzip", 1, cfg, nil), window)

	half := buildFor(t, "gzip", 1, cfg, nil)
	runOK(t, half, at)
	var buf, buf2 bytes.Buffer
	if err := half.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if err := half.SaveCheckpoint(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("two snapshots of the same state differ")
	}

	resumed := buildFor(t, "gzip", 1, cfg, nil)
	if err := resumed.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got, want := resumed.Committed(), half.Committed(); got != want {
		t.Fatalf("restored committed %d, want %d", got, want)
	}
	final := runOK(t, resumed, window-resumed.Committed())
	if final != whole {
		t.Fatalf("resumed run diverges from uninterrupted run:\n  whole:   %+v\n  resumed: %+v", whole, final)
	}
}

// TestSnapshotResumeEquivalenceVariants covers the non-default machine
// shapes a sweep actually visits: decentralized cache, grid topology, and
// dynamic controllers with live measurement state.
func TestSnapshotResumeEquivalenceVariants(t *testing.T) {
	variants := []struct {
		name string
		cfg  func() pipeline.Config
		ctrl func() pipeline.Controller
	}{
		{"dist-cache", func() pipeline.Config {
			c := pipeline.DefaultConfig()
			c.Cache = pipeline.DecentralizedCache
			return c
		}, nil},
		{"grid", func() pipeline.Config {
			c := pipeline.DefaultConfig()
			c.Topology = pipeline.GridTopology
			return c
		}, nil},
		{"explore", pipeline.DefaultConfig, func() pipeline.Controller { return core.NewExplore(core.ExploreConfig{}) }},
		{"distant-ilp", pipeline.DefaultConfig, func() pipeline.Controller { return core.NewDistantILP(core.DistantILPConfig{}) }},
		{"finegrain", pipeline.DefaultConfig, func() pipeline.Controller { return core.NewFineGrain(core.FineGrainConfig{}) }},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			const window, at = 30_000, 13_000
			cfg := v.cfg()
			whole := runOK(t, buildFor(t, "vpr", 2, cfg, v.ctrl), window)
			half := buildFor(t, "vpr", 2, cfg, v.ctrl)
			runOK(t, half, at)
			var buf bytes.Buffer
			if err := half.SaveCheckpoint(&buf); err != nil {
				t.Fatal(err)
			}
			resumed := buildFor(t, "vpr", 2, cfg, v.ctrl)
			if err := resumed.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatal(err)
			}
			final := runOK(t, resumed, window-resumed.Committed())
			if final != whole {
				t.Fatalf("resumed run diverges:\n  whole:   %+v\n  resumed: %+v", whole, final)
			}
		})
	}
}

// TestSnapshotIdentityChecks: a snapshot must refuse to restore into a
// machine built from a different configuration, benchmark or policy, and
// must reject corrupt or truncated bytes with an error, never a panic.
func TestSnapshotIdentityChecks(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	p := buildFor(t, "gzip", 1, cfg, nil)
	runOK(t, p, 5_000)
	var buf bytes.Buffer
	if err := p.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	hop2 := cfg
	hop2.HopLatency = 2
	cases := []struct {
		name string
		dst  *pipeline.Processor
		want string
	}{
		{"config", buildFor(t, "gzip", 1, hop2, nil), "configuration"},
		{"bench", buildFor(t, "swim", 1, cfg, nil), "benchmark"},
		{"policy", buildFor(t, "gzip", 1, cfg, func() pipeline.Controller { return core.NewExplore(core.ExploreConfig{}) }), "policy"},
	}
	for _, c := range cases {
		err := c.dst.LoadCheckpoint(bytes.NewReader(buf.Bytes()))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s mismatch: got %v, want mention of %q", c.name, err, c.want)
		}
	}

	// Corrupt magic.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[8] ^= 0xff
	if err := buildFor(t, "gzip", 1, cfg, nil).LoadCheckpoint(bytes.NewReader(bad)); err == nil {
		t.Error("corrupt magic accepted")
	}

	// Truncations anywhere must error, never panic.
	for _, cut := range []int{0, 1, 16, 64, buf.Len() / 2, buf.Len() - 1} {
		if err := buildFor(t, "gzip", 1, cfg, nil).LoadCheckpoint(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// TestCheckpointableGate: instrumented runs (observer or checker attached)
// are rejected up front, not mid-snapshot.
func TestCheckpointableGate(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.Observer = &obs.Observer{Registry: obs.NewRegistry()}
	p := buildFor(t, "gzip", 1, cfg, nil)
	if err := p.Checkpointable(); err == nil {
		t.Fatal("observer-attached run reported checkpointable")
	}
	var buf bytes.Buffer
	if err := p.SaveCheckpoint(&buf); err == nil {
		t.Fatal("SaveCheckpoint succeeded with observer attached")
	}

	plain := buildFor(t, "gzip", 1, pipeline.DefaultConfig(), nil)
	if err := plain.Checkpointable(); err != nil {
		t.Fatalf("plain run not checkpointable: %v", err)
	}
}

// TestWatchdogDeadlockError: the forward-progress watchdog surfaces as a
// typed *DeadlockError carrying the machine's position — not a panic. An
// absurdly small budget triggers it during pipeline fill, when nothing has
// committed yet.
func TestWatchdogDeadlockError(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.WatchdogCycles = 1
	p := buildFor(t, "gzip", 1, cfg, nil)
	_, err := p.Run(1_000)
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	var de *pipeline.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want *DeadlockError, got %T: %v", err, err)
	}
	if de.Cycle == 0 || de.Committed != 0 {
		t.Fatalf("dump not populated: %+v", de)
	}
	if !strings.Contains(de.Error(), "no commit in") {
		t.Fatalf("unhelpful message: %v", de)
	}
}

// TestStopFlag: a raised stop flag surfaces as *StoppedError at the next
// poll point, leaving the machine in a consistent, resumable state.
func TestStopFlag(t *testing.T) {
	p := buildFor(t, "gzip", 1, pipeline.DefaultConfig(), nil)
	var stop atomic.Bool
	p.SetStopFlag(&stop)
	stop.Store(true)
	_, err := p.Run(1_000_000)
	var se *pipeline.StoppedError
	if !errors.As(err, &se) {
		t.Fatalf("want *StoppedError, got %T: %v", err, err)
	}
	// The stopped machine is still usable: clear the flag and finish.
	stop.Store(false)
	if _, err := p.Run(10_000 - p.Committed()); err != nil {
		t.Fatalf("run after stop: %v", err)
	}
}
