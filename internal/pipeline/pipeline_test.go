package pipeline

import (
	"testing"

	"clustersim/internal/isa"
	"clustersim/internal/workload"
)

func testConfig() Config {
	cfg := DefaultConfig()
	return cfg
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Clusters = 0 },
		func(c *Config) { c.Clusters = MaxClusters + 1 },
		func(c *Config) { c.ActiveClusters = 0 },
		func(c *Config) { c.ActiveClusters = c.Clusters + 1 },
		func(c *Config) { c.IQPerCluster = 0 },
		func(c *Config) { c.RegsPerCluster = -1 },
		func(c *Config) { c.ROB = 0 },
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.HopLatency = 0 },
		func(c *Config) { c.Steering = SteerModN; c.ModN = 0 },
		func(c *Config) { c.ImbalanceThreshold = 0 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestNewRejectsNilGenerator(t *testing.T) {
	if _, err := New(DefaultConfig(), nil, nil); err == nil {
		t.Fatal("nil generator accepted")
	}
}

func TestRunProgress(t *testing.T) {
	p := MustNew(testConfig(), workload.MustNew("gzip", 1), nil)
	r := mustRun(t, p, 20_000)
	if r.Instructions < 20_000 {
		t.Fatalf("committed %d < requested", r.Instructions)
	}
	if r.Cycles == 0 || r.IPC() <= 0 {
		t.Fatalf("no progress: %+v", r)
	}
	// Run extends cumulatively.
	r2 := mustRun(t, p, 10_000)
	if r2.Instructions < 30_000 || r2.Cycles <= r.Cycles {
		t.Fatalf("second Run did not extend: %d instrs %d cycles", r2.Instructions, r2.Cycles)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() Result {
		p := MustNew(testConfig(), workload.MustNew("crafty", 9), nil)
		return mustRun(t, p, 30_000)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical configs diverged:\n%+v\n%+v", a, b)
	}
}

func TestIPCWithinMachineBounds(t *testing.T) {
	for _, name := range []string{"gzip", "swim"} {
		p := MustNew(testConfig(), workload.MustNew(name, 1), nil)
		r := mustRun(t, p, 50_000)
		if ipc := r.IPC(); ipc <= 0 || ipc > float64(p.Config().CommitWidth) {
			t.Errorf("%s: IPC %f outside (0, commit width]", name, ipc)
		}
	}
}

func TestMonolithicBeatsClustered(t *testing.T) {
	// The monolithic machine has the 16-cluster machine's resources and
	// no communication costs: it must be at least as fast.
	for _, name := range []string{"swim", "vpr"} {
		pm := MustNew(MonolithicConfig(), workload.MustNew(name, 1), nil)
		rm := mustRun(t, pm, 60_000)
		pc := MustNew(testConfig(), workload.MustNew(name, 1), nil)
		rc := mustRun(t, pc, 60_000)
		if rm.IPC() < rc.IPC()*0.98 {
			t.Errorf("%s: monolithic %.3f < clustered %.3f", name, rm.IPC(), rc.IPC())
		}
	}
}

func TestActiveClustersBoundSteering(t *testing.T) {
	cfg := testConfig()
	cfg.ActiveClusters = 4
	p := MustNew(cfg, workload.MustNew("swim", 1), nil)
	mustRun(t, p, 20_000)
	for c := 4; c < cfg.Clusters; c++ {
		cs := &p.clusters[c]
		if cs.occupancy() != 0 || cs.intRegs != 0 || cs.fpRegs != 0 {
			t.Fatalf("inactive cluster %d holds state: occ=%d", c, cs.occupancy())
		}
	}
}

func TestFewerClustersSlowerForILP(t *testing.T) {
	// swim has 28 parallel chains: 2 clusters must be slower than 16.
	ipc := func(n int) float64 {
		cfg := testConfig()
		cfg.ActiveClusters = n
		p := MustNew(cfg, workload.MustNew("swim", 1), nil)
		return mustRun(t, p, 60_000).IPC()
	}
	if i2, i16 := ipc(2), ipc(16); i2 >= i16 {
		t.Fatalf("2 clusters (%.3f) not slower than 16 (%.3f) for swim", i2, i16)
	}
}

func TestCommunicationAblationsHelp(t *testing.T) {
	base := testConfig()
	pb := MustNew(base, workload.MustNew("swim", 1), nil)
	rb := mustRun(t, pb, 60_000)

	fr := base
	fr.FreeRegComm = true
	pf := MustNew(fr, workload.MustNew("swim", 1), nil)
	rf := mustRun(t, pf, 60_000)
	if rf.IPC() <= rb.IPC() {
		t.Errorf("free register communication did not help: %.3f vs %.3f", rf.IPC(), rb.IPC())
	}
	if rf.RegTransfers != 0 {
		t.Errorf("free reg comm still recorded %d transfers", rf.RegTransfers)
	}

	fl := base
	fl.FreeLoadComm = true
	pl := MustNew(fl, workload.MustNew("swim", 1), nil)
	rl := mustRun(t, pl, 60_000)
	if rl.IPC() <= rb.IPC() {
		t.Errorf("free load communication did not help: %.3f vs %.3f", rl.IPC(), rb.IPC())
	}
}

func TestGridReducesCommunicationCost(t *testing.T) {
	// §6: the grid's better connectivity lowers communication cost. The
	// robust mechanical consequences: fewer link traversals per transfer
	// and no overall slowdown on a communication-heavy program.
	run := func(topo Topology) Result {
		cfg := testConfig()
		cfg.Topology = topo
		p := MustNew(cfg, workload.MustNew("djpeg", 1), nil)
		return mustRun(t, p, 100_000)
	}
	ring, grid := run(RingTopology), run(GridTopology)
	ringHops := float64(ring.Net.Hops) / float64(ring.Net.Transfers)
	gridHops := float64(grid.Net.Hops) / float64(grid.Net.Transfers)
	if gridHops >= ringHops {
		t.Errorf("grid hops/transfer %.2f not below ring %.2f", gridHops, ringHops)
	}
	if grid.IPC() < ring.IPC()*0.97 {
		t.Errorf("grid IPC %.3f well below ring %.3f", grid.IPC(), ring.IPC())
	}
}

func TestSteeringPoliciesRun(t *testing.T) {
	for _, pol := range []SteeringPolicy{SteerOperandMajority, SteerModN, SteerFirstFit} {
		cfg := testConfig()
		cfg.Steering = pol
		p := MustNew(cfg, workload.MustNew("gzip", 1), nil)
		r := mustRun(t, p, 20_000)
		if r.IPC() <= 0 {
			t.Errorf("steering policy %d made no progress", pol)
		}
	}
}

func TestFirstFitCommunicatesLessThanModN(t *testing.T) {
	// First-fit minimizes communication by packing; Mod_N minimizes load
	// imbalance by spreading (§2.1). The defining consequence: first-fit
	// induces fewer inter-cluster register transfers per instruction.
	xfers := func(pol SteeringPolicy) float64 {
		cfg := testConfig()
		cfg.Steering = pol
		p := MustNew(cfg, workload.MustNew("vpr", 1), nil)
		r := mustRun(t, p, 40_000)
		return float64(r.RegTransfers) / float64(r.Instructions)
	}
	ff, mn := xfers(SteerFirstFit), xfers(SteerModN)
	if ff >= mn {
		t.Fatalf("first-fit transfers/instr %.3f not below Mod_N %.3f", ff, mn)
	}
}

func TestDecentralizedRuns(t *testing.T) {
	cfg := testConfig()
	cfg.Cache = DecentralizedCache
	p := MustNew(cfg, workload.MustNew("gzip", 1), nil)
	r := mustRun(t, p, 30_000)
	if r.IPC() <= 0 {
		t.Fatal("decentralized model made no progress")
	}
	if r.StoreBroadcasts == 0 {
		t.Error("no store-address broadcasts recorded")
	}
	if r.Bank.Lookups == 0 {
		t.Error("bank predictor never trained")
	}
}

func TestDecentralizedReconfigurationFlushes(t *testing.T) {
	cfg := testConfig()
	cfg.Cache = DecentralizedCache
	ctrl := &flipController{period: 5_000, a: 16, b: 4}
	p := MustNew(cfg, workload.MustNew("gzip", 1), ctrl)
	r := mustRun(t, p, 40_000)
	if r.Reconfigs == 0 {
		t.Fatal("no reconfigurations applied")
	}
	if r.Mem.Flushes == 0 {
		t.Fatal("reconfiguration did not flush the decentralized cache")
	}
	if p.ActiveClusters() != 16 && p.ActiveClusters() != 4 {
		t.Fatalf("unexpected active clusters %d", p.ActiveClusters())
	}
}

func TestCentralizedReconfigurationImmediate(t *testing.T) {
	ctrl := &flipController{period: 2_000, a: 16, b: 2}
	p := MustNew(testConfig(), workload.MustNew("gzip", 1), ctrl)
	r := mustRun(t, p, 30_000)
	if r.Reconfigs < 10 {
		t.Fatalf("expected frequent reconfigs, got %d", r.Reconfigs)
	}
	if r.Mem.Flushes != 0 {
		t.Fatalf("centralized cache flushed %d times on reconfiguration", r.Mem.Flushes)
	}
}

// flipController alternates between two cluster counts every period
// committed instructions.
type flipController struct {
	period uint64
	a, b   int
	n      uint64
	useB   bool
}

func (f *flipController) Name() string { return "flip" }
func (f *flipController) Reset(int)    { f.n, f.useB = 0, false }
func (f *flipController) OnCommit(ev CommitEvent) int {
	f.n++
	if f.n%f.period == 0 {
		f.useB = !f.useB
	}
	if f.useB {
		return f.b
	}
	return f.a
}

func TestPerfectBankPredictionHelps(t *testing.T) {
	cfg := testConfig()
	cfg.Cache = DecentralizedCache
	pb := MustNew(cfg, workload.MustNew("swim", 1), nil)
	rb := mustRun(t, pb, 50_000)
	cfg.PerfectBankPred = true
	pp := MustNew(cfg, workload.MustNew("swim", 1), nil)
	rp := mustRun(t, pp, 50_000)
	if rp.IPC() < rb.IPC()*0.98 {
		t.Fatalf("oracle banks (%.3f) worse than predicted (%.3f)", rp.IPC(), rb.IPC())
	}
	if rp.BankMispredicts != 0 {
		t.Fatalf("oracle recorded %d bank mispredicts", rp.BankMispredicts)
	}
}

func TestDistantBitsConsistent(t *testing.T) {
	p := MustNew(testConfig(), workload.MustNew("swim", 1), nil)
	r := mustRun(t, p, 50_000)
	if r.DistantIssued == 0 {
		t.Fatal("swim produced no distant ILP at 16 clusters")
	}
	if r.DistantCommitted > r.DistantIssued {
		t.Fatalf("committed distant (%d) exceeds issued (%d)", r.DistantCommitted, r.DistantIssued)
	}
}

func TestRedirectsMatchPredictorMispredicts(t *testing.T) {
	p := MustNew(testConfig(), workload.MustNew("vpr", 1), nil)
	r := mustRun(t, p, 50_000)
	// Every front-end mispredict stalls fetch and is counted at commit;
	// in-flight ones at the end explain any small difference.
	diff := int64(r.Branch.Mispredicts) - int64(r.Redirects)
	if diff < 0 || diff > 5 {
		t.Fatalf("redirects %d vs predictor mispredicts %d", r.Redirects, r.Branch.Mispredicts)
	}
}

func TestResultHelpers(t *testing.T) {
	var r Result
	if r.IPC() != 0 || r.AvgActiveClusters() != 0 || r.AvgRegCommLatency() != 0 {
		t.Fatal("zero Result helpers not zero")
	}
	r = Result{Instructions: 100, Cycles: 50, Redirects: 4}
	if r.IPC() != 2 {
		t.Fatalf("IPC %f", r.IPC())
	}
	if r.MispredictInterval() != 25 {
		t.Fatalf("mispredict interval %f", r.MispredictInterval())
	}
	r.Redirects = 0
	if r.MispredictInterval() != 100 {
		t.Fatal("zero-redirect interval should be run length")
	}
	if r.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestROBNeverExceedsCapacity(t *testing.T) {
	p := MustNew(testConfig(), workload.MustNew("swim", 1), nil)
	for i := 0; i < 50; i++ {
		mustRun(t, p, 1000)
		if occ := p.tailSeq - p.headSeq; occ > uint64(p.cfg.ROB) {
			t.Fatalf("ROB occupancy %d exceeds %d", occ, p.cfg.ROB)
		}
		for c := range p.clusters {
			cs := &p.clusters[c]
			if len(cs.iqInt) > p.cfg.IQPerCluster || len(cs.iqFP) > p.cfg.IQPerCluster {
				t.Fatalf("cluster %d IQ overflow", c)
			}
			if cs.intRegs > p.cfg.RegsPerCluster || cs.fpRegs > p.cfg.RegsPerCluster {
				t.Fatalf("cluster %d register overflow", c)
			}
			if cs.intRegs < 0 || cs.fpRegs < 0 || cs.lsq < 0 {
				t.Fatalf("cluster %d negative resource accounting", c)
			}
		}
	}
}

func TestHopLatencySlowsCommunication(t *testing.T) {
	ipc := func(hop int) float64 {
		cfg := testConfig()
		cfg.HopLatency = hop
		p := MustNew(cfg, workload.MustNew("swim", 1), nil)
		return mustRun(t, p, 50_000).IPC()
	}
	if one, two := ipc(1), ipc(2); two >= one {
		t.Fatalf("doubled hop latency did not slow the machine: %.3f vs %.3f", two, one)
	}
}

func TestFuForMapping(t *testing.T) {
	cases := []struct {
		c    isa.Class
		want fuKind
	}{
		{isa.IntALU, fuIntALU}, {isa.Load, fuIntALU}, {isa.Store, fuIntALU},
		{isa.Branch, fuIntALU}, {isa.Call, fuIntALU}, {isa.Return, fuIntALU},
		{isa.IntMult, fuIntMulDiv}, {isa.IntDiv, fuIntMulDiv},
		{isa.FPALU, fuFPALU}, {isa.FPMult, fuFPMulDiv}, {isa.FPDiv, fuFPMulDiv},
	}
	for _, tc := range cases {
		if got := fuFor(tc.c); got != tc.want {
			t.Errorf("fuFor(%s) = %d, want %d", tc.c, got, tc.want)
		}
	}
}

func TestStoreLoadForwardingOccurs(t *testing.T) {
	// gzip writes and re-reads its small output window; forwarding must
	// happen at least occasionally.
	p := MustNew(testConfig(), workload.MustNew("gzip", 2), nil)
	r := mustRun(t, p, 900_000)
	if r.LoadForwards == 0 {
		t.Fatal("no store-to-load forwarding in 900K instructions")
	}
}

func TestICacheAndTLBDefaultsOn(t *testing.T) {
	p := MustNew(testConfig(), workload.MustNew("crafty", 1), nil)
	r := mustRun(t, p, 60_000)
	if r.ICacheMisses == 0 {
		t.Error("no instruction-cache misses recorded (cold start must miss)")
	}
	if r.TLBMisses == 0 {
		t.Error("no TLB misses recorded (cold start must walk)")
	}
}

func TestICacheAndTLBCanBeDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.ICacheEnabled = false
	cfg.TLBEnabled = false
	p := MustNew(cfg, workload.MustNew("gzip", 1), nil)
	r := mustRun(t, p, 20_000)
	if r.ICacheMisses != 0 || r.TLBMisses != 0 {
		t.Fatalf("disabled structures recorded misses: %d / %d", r.ICacheMisses, r.TLBMisses)
	}
	// Disabling the front-end/TLB overheads can only help.
	p2 := MustNew(testConfig(), workload.MustNew("gzip", 1), nil)
	r2 := mustRun(t, p2, 20_000)
	if r.IPC() < r2.IPC()*0.98 {
		t.Fatalf("disabling icache/TLB slowed the machine: %.3f vs %.3f", r.IPC(), r2.IPC())
	}
}

// wildController returns out-of-range requests to exercise clamping.
type wildController struct{ n uint64 }

func (w *wildController) Name() string { return "wild" }
func (w *wildController) Reset(int)    {}
func (w *wildController) OnCommit(ev CommitEvent) int {
	w.n++
	switch w.n % 3 {
	case 0:
		return 99 // clamped to total
	case 1:
		return -5 // clamped to 1
	}
	return 0 // no change
}

func TestRequestActiveClamps(t *testing.T) {
	p := MustNew(testConfig(), workload.MustNew("gzip", 1), &wildController{})
	mustRun(t, p, 5_000)
	if a := p.ActiveClusters(); a < 1 || a > 16 {
		t.Fatalf("active clusters %d escaped [1,16]", a)
	}
}

func TestModNRotatesClusters(t *testing.T) {
	cfg := testConfig()
	cfg.Steering = SteerModN
	cfg.ModN = 2
	p := MustNew(cfg, workload.MustNew("swim", 1), nil)
	mustRun(t, p, 20_000)
	// Mod_2 must have used many clusters for a high-throughput program.
	used := 0
	for c := range p.clusters {
		if p.clusters[c].intRegs > 0 || p.clusters[c].fpRegs > 0 || p.clusters[c].occupancy() > 0 {
			used++
		}
	}
	if used < 8 {
		t.Fatalf("Mod_2 used only %d clusters", used)
	}
}

// mustRun advances p by n committed instructions, failing the test on any
// run error (deadlock or external stop).
func mustRun(tb testing.TB, p *Processor, n uint64) Result {
	tb.Helper()
	res, err := p.Run(n)
	if err != nil {
		tb.Fatalf("Run: %v", err)
	}
	return res
}
