package pipeline

import (
	"testing"

	"clustersim/internal/telemetry"
	"clustersim/internal/workload"
)

// Per-stage microbenchmarks: stage-level regressions show up directly in
// `go test -bench`, not only in sampled PhaseTimer attribution data. Each
// stage benchmark runs the whole machine with a period-1 phase timer (every
// cycle sampled stage-by-stage) and reports the named stage's wall time per
// stepped cycle; the event/legacy sub-benchmarks make the hot-loop win — and
// any future regression — visible per stage.

func benchStageNanos(b *testing.B, phase telemetry.Phase, legacy bool) {
	pt := telemetry.NewPhaseTimer(1)
	cfg := DefaultConfig()
	cfg.Phases = pt
	cfg.LegacyStepper = legacy
	p := MustNew(cfg, workload.MustNew("gzip", 1), nil)
	mustRun(b, p, 20_000) // reach steady state before measuring
	before := pt.Report()
	b.ResetTimer()
	mustRun(b, p, uint64(b.N))
	b.StopTimer()
	after := pt.Report()
	for i := range after.Phases {
		if after.Phases[i].Phase == phase.String() {
			nanos := after.Phases[i].Nanos - before.Phases[i].Nanos
			laps := after.Phases[i].Laps - before.Phases[i].Laps
			if laps > 0 {
				b.ReportMetric(float64(nanos)/float64(laps), "ns/cycle")
			}
		}
	}
}

// BenchmarkIssueStage: the stage the event engine restructured — the legacy
// variant pays the full per-cycle IQ scan, the event variant only touches
// woken instructions.
func BenchmarkIssueStage(b *testing.B) {
	b.Run("event", func(b *testing.B) { benchStageNanos(b, telemetry.PhaseIssue, false) })
	b.Run("legacy", func(b *testing.B) { benchStageNanos(b, telemetry.PhaseIssue, true) })
}

// BenchmarkDispatchStage: steering plus queue insertion (and, under the
// decentralized model, the former dummy-LSQ scan, now an O(1) counter test).
func BenchmarkDispatchStage(b *testing.B) {
	b.Run("event", func(b *testing.B) { benchStageNanos(b, telemetry.PhaseDispatch, false) })
	b.Run("legacy", func(b *testing.B) { benchStageNanos(b, telemetry.PhaseDispatch, true) })
}

// BenchmarkStallFastForward: whole-run speed on the serial pointer chase
// where nearly every cycle stalls on memory — fast-forward's home regime.
// The op is 1K committed instructions (hundreds of thousands of simulated
// cycles); Mcycles/s is the rate of simulated time, which is what the jump
// accelerates.
func BenchmarkStallFastForward(b *testing.B) {
	for _, m := range []struct {
		name   string
		legacy bool
	}{{"event", false}, {"legacy", true}} {
		b.Run(m.name, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.LegacyStepper = m.legacy
			p := MustNew(cfg, stallGen(b), nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Run(1_000); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(p.Cycle())/b.Elapsed().Seconds()/1e6, "Mcycles/s")
		})
	}
}
