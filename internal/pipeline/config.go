// Package pipeline implements the cycle-level timing model of the clustered
// out-of-order processor the paper studies (its Simplescalar-3.0 substrate,
// rebuilt from scratch).
//
// The machine follows §2 and Table 1: a centralized front-end (fetch across
// up to two basic blocks, 64-entry fetch queue, combining branch predictor,
// ≥12-cycle mispredict penalty) renames and *steers* up to 16 instructions
// per cycle into clusters. Each cluster holds separate integer and
// floating-point issue queues (15 entries each), physical registers (30
// each), and one functional unit of each type; bypassing inside a cluster is
// free, while values crossing clusters travel on the ring or grid
// interconnect, cycle per hop, with link contention. Loads and stores pass
// through a centralized LSQ next to the centralized cache, or through
// per-cluster LSQs with dummy-slot store broadcasts for the decentralized
// cache. A Controller (package core) observes committed instructions and
// reconfigures the number of active clusters at run time.
package pipeline

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"clustersim/internal/bpred"
	"clustersim/internal/mem"
	"clustersim/internal/obs"
	"clustersim/internal/telemetry"
)

// MaxClusters is the largest cluster count the model supports (the paper's
// 16-cluster machine is the largest studied).
const MaxClusters = 16

// Topology selects the inter-cluster interconnect.
type Topology uint8

// Supported topologies.
const (
	// RingTopology is the paper's baseline: two unidirectional rings.
	RingTopology Topology = iota
	// GridTopology is the §6 sensitivity alternative: a 2-D mesh.
	GridTopology
)

// CacheModel selects the L1 data cache organization.
type CacheModel uint8

// Supported cache models.
const (
	// CentralizedCache co-locates one word-interleaved L1 and the LSQ
	// with cluster 0 (§2.1).
	CentralizedCache CacheModel = iota
	// DecentralizedCache gives every cluster an L1 bank and LSQ slice
	// (§2.2).
	DecentralizedCache
)

// SteeringPolicy selects the instruction steering heuristic (§2.1).
type SteeringPolicy uint8

// Supported steering policies.
const (
	// SteerOperandMajority steers to the cluster producing most source
	// operands, with a criticality hint and a load-imbalance override —
	// the paper's state-of-the-art heuristic.
	SteerOperandMajority SteeringPolicy = iota
	// SteerModN fills N instructions per cluster round-robin,
	// minimizing load imbalance.
	SteerModN
	// SteerFirstFit fills a cluster before moving to its neighbour,
	// minimizing communication.
	SteerFirstFit
)

// Config describes one processor instance. DefaultConfig returns Table 1.
type Config struct {
	// Clusters is the total on-chip cluster count (2..MaxClusters, or 1
	// for the monolithic model).
	Clusters int
	// ActiveClusters is the initial number of clusters instructions may
	// be steered to; a Controller may change it at run time.
	ActiveClusters int

	// IQPerCluster is the per-cluster issue-queue size (integer and
	// floating-point each).
	IQPerCluster int
	// RegsPerCluster is the per-cluster physical register count (integer
	// and floating-point each).
	RegsPerCluster int
	// IntALU, IntMulDiv, FPALU, FPMulDiv are per-cluster functional-unit
	// counts. The integer ALUs also perform address generation and
	// branch resolution.
	IntALU, IntMulDiv, FPALU, FPMulDiv int
	// LSQPerCluster is the per-cluster load/store queue size (the
	// centralized model uses Clusters*LSQPerCluster total).
	LSQPerCluster int

	FetchWidth    int
	FetchQueue    int
	DispatchWidth int
	CommitWidth   int
	ROB           int
	// FrontLatency is the front-end pipeline depth in cycles; it is the
	// floor of the branch-misprediction penalty (Table 1's "at least 12
	// cycles").
	FrontLatency int

	// Topology and HopLatency describe the interconnect.
	Topology   Topology
	HopLatency int

	// Cache selects the L1 organization; CacheConfig (optional)
	// overrides the Table 2 defaults.
	Cache       CacheModel
	CacheConfig *mem.Config

	// Steering selects the steering heuristic and its parameters.
	Steering SteeringPolicy
	// ImbalanceThreshold is the issue-queue occupancy spread beyond
	// which the operand-majority heuristic steers to the least-loaded
	// cluster (empirically tuned, per §2.1).
	ImbalanceThreshold int
	// ModN is the SteerModN group size.
	ModN int

	// DistantDepth is how far behind the ROB head (in instructions) an
	// instruction must issue to count as "distant" ILP (§4.3 uses 120,
	// the capacity of four clusters).
	DistantDepth int

	// CritTable selects the trained PC-indexed criticality table for
	// steering instead of the default last-arriving heuristic (see
	// crit.go).
	CritTable bool

	// ICacheEnabled models the Table 1 L1 instruction cache (32KB,
	// 2-way): a fetch that crosses into an uncached line stalls the
	// front end for the fill. TLBEnabled models the Table 1 data TLB
	// (128 entries, 8KB pages): a memory access to an unmapped page
	// pays a page walk. Both are on in DefaultConfig.
	ICacheEnabled bool
	TLBEnabled    bool

	// Ablation switches for the paper's in-text idealizations.
	// FreeRegComm makes register forwarding between clusters free.
	FreeRegComm bool
	// FreeLoadComm makes cluster↔cache communication free (centralized).
	FreeLoadComm bool
	// PerfectBankPred steers memory operations with oracle bank
	// knowledge (decentralized).
	PerfectBankPred bool

	// BranchPred and BankPred override predictor table sizes.
	BranchPred *bpred.Config
	BankPred   *bpred.BankConfig

	// LegacyStepper selects the seed per-cycle scan stepper (full IQ scan
	// every cycle, no stall fast-forward) instead of the event-driven
	// scheduler. The two steppers are timing-equivalent — byte-identical
	// Results on every workload (enforced by the StepperEquivalence oracle
	// and the fuzz differential) — so the knob exists purely as the
	// differential oracle and a perf baseline. The zero value selects the
	// event-driven stepper.
	LegacyStepper bool //simlint:nokey timing-equivalent steppers share snapshots and cache keys (StepperEquivalence oracle)

	// WatchdogCycles is how many cycles may elapse without a commit before
	// Run/RunCycles give up and return a *DeadlockError. Zero selects the
	// default (500_000). Raising it is only useful for configurations with
	// deliberately extreme memory latencies.
	WatchdogCycles uint64

	// Observer attaches the observability layer (metrics registry, trace
	// sinks and cycle-sampled probes) to the processor and, when the
	// Controller supports it, to the controller's decision reporting.
	// Nil disables all instrumentation at zero hot-path cost.
	Observer *obs.Observer //simlint:nokey observers never influence timing, and observed requests are uncacheable

	// Checker attaches a cycle-level invariant checker (see check.go and
	// package internal/check) that observes the machine state at the end
	// of every cycle. Nil disables checking at zero hot-path cost.
	// Checkers are stateful: every concurrent run needs its own instance.
	Checker Checker //simlint:nokey checked requests are uncacheable; the runner folds the validation mode into its own key for dedup

	// Phases attaches a wall-clock phase timer that attributes the
	// simulator's own execution time to cycle-loop stages by sampling one
	// cycle in every timer period. The timer observes the simulator, never
	// the simulation — simulated results are bit-identical with or without
	// it — so it is excluded from Fingerprint and the runner's cache key,
	// and one timer may be shared across concurrent runs (its counters are
	// atomic). Nil disables attribution at zero hot-path cost.
	Phases *telemetry.PhaseTimer //simlint:nokey wall-clock attribution observes the simulator, never the simulation
}

// DefaultConfig returns the paper's Table 1 16-cluster machine with the
// centralized cache and ring interconnect.
func DefaultConfig() Config {
	return Config{
		Clusters:           16,
		ActiveClusters:     16,
		IQPerCluster:       15,
		RegsPerCluster:     30,
		IntALU:             1,
		IntMulDiv:          1,
		FPALU:              1,
		FPMulDiv:           1,
		LSQPerCluster:      15,
		FetchWidth:         8,
		FetchQueue:         64,
		DispatchWidth:      16,
		CommitWidth:        16,
		ROB:                480,
		FrontLatency:       12,
		Topology:           RingTopology,
		HopLatency:         1,
		Cache:              CentralizedCache,
		Steering:           SteerOperandMajority,
		ImbalanceThreshold: 8,
		ModN:               4,
		DistantDepth:       120,
		ICacheEnabled:      true,
		TLBEnabled:         true,
	}
}

// MonolithicConfig returns the Table 3 baseline: a single cluster holding
// the 16-cluster machine's aggregate resources with no communication costs,
// used to characterize benchmarks ("a monolithic processor with as many
// resources as the 16-cluster system").
func MonolithicConfig() Config {
	c := DefaultConfig()
	c.Clusters = 1
	c.ActiveClusters = 1
	c.IQPerCluster = 15 * 16
	c.RegsPerCluster = 30 * 16
	c.IntALU, c.IntMulDiv, c.FPALU, c.FPMulDiv = 16, 16, 16, 16
	c.LSQPerCluster = 15 * 16
	c.FreeLoadComm = true
	return c
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.Clusters < 1 || c.Clusters > MaxClusters {
		return fmt.Errorf("pipeline: Clusters %d out of range [1,%d]", c.Clusters, MaxClusters)
	}
	if c.ActiveClusters < 1 || c.ActiveClusters > c.Clusters {
		return fmt.Errorf("pipeline: ActiveClusters %d out of range [1,%d]", c.ActiveClusters, c.Clusters)
	}
	for _, v := range []struct {
		name string
		val  int
	}{
		{"IQPerCluster", c.IQPerCluster},
		{"RegsPerCluster", c.RegsPerCluster},
		{"IntALU", c.IntALU},
		{"IntMulDiv", c.IntMulDiv},
		{"FPALU", c.FPALU},
		{"FPMulDiv", c.FPMulDiv},
		{"LSQPerCluster", c.LSQPerCluster},
		{"FetchWidth", c.FetchWidth},
		{"FetchQueue", c.FetchQueue},
		{"DispatchWidth", c.DispatchWidth},
		{"CommitWidth", c.CommitWidth},
		{"ROB", c.ROB},
		{"FrontLatency", c.FrontLatency},
		{"HopLatency", c.HopLatency},
		{"DistantDepth", c.DistantDepth},
	} {
		if v.val <= 0 {
			return fmt.Errorf("pipeline: %s must be positive, got %d", v.name, v.val)
		}
	}
	if c.Steering == SteerModN && c.ModN <= 0 {
		return fmt.Errorf("pipeline: ModN must be positive for SteerModN")
	}
	if c.Steering == SteerOperandMajority && c.ImbalanceThreshold <= 0 {
		return fmt.Errorf("pipeline: ImbalanceThreshold must be positive")
	}
	return nil
}

// Fingerprint returns a hash of every timing-relevant configuration field.
// Snapshots embed it so a checkpoint cannot be restored into a processor
// built from a different configuration (which would silently produce wrong
// results), and the runner's cache key folds it in so two different
// machines can never alias one cached Result.
//
// Every field is folded explicitly, one fixed-width or length-prefixed
// write per field in declaration order, which keeps the encoding injective
// and lets the cachekey analysis prove completeness: adding a Config field
// without a fold here (or deleting a fold) fails simlint. The excluded
// attachments carry //simlint:nokey justifications on their declarations.
func (c Config) Fingerprint() uint64 {
	h := fnv.New64a()
	fold := func(v uint64) {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	foldBool := func(v bool) {
		if v {
			fold(1)
		} else {
			fold(0)
		}
	}
	// foldSub hashes an optional sub-config as a presence marker plus a
	// length-prefixed rendering, so nil, zero-valued and absent configs
	// stay distinguishable.
	foldSub := func(s string, present bool) {
		if !present {
			fold(0)
			return
		}
		fold(1)
		fold(uint64(len(s)))
		h.Write([]byte(s))
	}

	fold(uint64(c.Clusters))
	fold(uint64(c.ActiveClusters))
	fold(uint64(c.IQPerCluster))
	fold(uint64(c.RegsPerCluster))
	fold(uint64(c.IntALU))
	fold(uint64(c.IntMulDiv))
	fold(uint64(c.FPALU))
	fold(uint64(c.FPMulDiv))
	fold(uint64(c.LSQPerCluster))
	fold(uint64(c.FetchWidth))
	fold(uint64(c.FetchQueue))
	fold(uint64(c.DispatchWidth))
	fold(uint64(c.CommitWidth))
	fold(uint64(c.ROB))
	fold(uint64(c.FrontLatency))
	fold(uint64(c.Topology))
	fold(uint64(c.HopLatency))
	fold(uint64(c.Cache))
	if c.CacheConfig != nil {
		foldSub(fmt.Sprintf("%+v", *c.CacheConfig), true)
	} else {
		foldSub("", false)
	}
	fold(uint64(c.Steering))
	fold(uint64(c.ImbalanceThreshold))
	fold(uint64(c.ModN))
	fold(uint64(c.DistantDepth))
	foldBool(c.CritTable)
	foldBool(c.ICacheEnabled)
	foldBool(c.TLBEnabled)
	foldBool(c.FreeRegComm)
	foldBool(c.FreeLoadComm)
	foldBool(c.PerfectBankPred)
	if c.BranchPred != nil {
		foldSub(fmt.Sprintf("%+v", *c.BranchPred), true)
	} else {
		foldSub("", false)
	}
	if c.BankPred != nil {
		foldSub(fmt.Sprintf("%+v", *c.BankPred), true)
	} else {
		foldSub("", false)
	}
	fold(c.WatchdogCycles)
	return h.Sum64()
}

// CommitEvent describes one committed instruction to a Controller.
type CommitEvent struct {
	// Cycle is the commit cycle.
	Cycle uint64
	// Seq is the dynamic instruction number.
	Seq uint64
	// PC is the instruction address.
	PC uint64
	// IsBranch, IsCall, IsReturn, IsMem classify the instruction.
	IsBranch, IsCall, IsReturn, IsMem bool
	// Distant reports the §4.3 distant-ILP bit (issued ≥DistantDepth
	// behind the ROB head).
	Distant bool
	// Mispredicted reports whether this control transfer redirected the
	// front-end.
	Mispredicted bool
}

// Controller decides how many clusters stay active. Implementations live in
// package core; Static behaviour is a Controller that never changes.
type Controller interface {
	// Name identifies the policy in results.
	Name() string
	// Reset prepares the controller for a run on a machine with the
	// given total cluster count.
	Reset(totalClusters int)
	// OnCommit observes one committed instruction and returns the
	// desired number of active clusters, or 0 for no change.
	OnCommit(ev CommitEvent) int
}

// ObserverAware is optionally implemented by Controllers that report their
// reconfiguration decisions (with trigger reasons and measurements) to an
// observability layer. New attaches Config.Observer after Reset.
type ObserverAware interface {
	AttachObserver(*obs.Observer)
}
