package pipeline

import "slices"

// Event-driven issue scheduling (the default stepper).
//
// The legacy stepper re-scans every dispatched, unissued instruction in
// every cluster's issue queues every cycle. Almost all of those probes are
// provably pure no-ops: tryIssue's first test is `readyAt > now`, operand
// arrivals are cached after first computation, and a probe that fails on an
// unissued producer or a busy functional unit writes nothing. The event
// engine exploits exactly that purity: it evaluates an instruction only at
// cycles where the legacy scan's evaluation could have had a side effect,
// and in the same global order the scan would have reached it, so the two
// steppers produce byte-identical Results (proved by the
// check.StepperEquivalence oracle and TestStepperEquivalence* here).
//
// Three structures cooperate:
//
//   - a bucketed timing wheel of wheelSpan cycles, holding the agenda keys
//     of instructions whose next possibly-productive evaluation cycle is
//     known (operand arrival, dispatch-hop completion, functional-unit
//     free time);
//   - an overflow min-heap for wakeups beyond the wheel horizon;
//   - per-producer wait chains (uop.wHead/wNext) for instructions blocked
//     on a producer that has not issued yet (no wake cycle is computable);
//     the producer's issue — or, for loads, its memStage completion — wakes
//     the chain.
//
// Within a cycle, due instructions are evaluated in ascending packed key
// order (cluster, int-before-fp queue, seq), which is precisely the order
// the legacy nested scan visits them; the agenda is an ascending-sorted
// vector walked front to back, so instructions woken mid-cycle by a
// producer issuing earlier in the same cycle slot into their legacy
// position in the unevaluated tail. An instruction woken by a producer
// whose key is *larger* than its own re-parks for the next cycle instead —
// the legacy scan had already passed it when the producer issued.
//
// Every dispatched, unissued instruction lives in exactly one of: a wheel
// bucket, the overflow heap, a producer's wait chain, or the live agenda.
// None of this state is serialized: LoadCheckpoint rebuilds it by parking
// every in-flight unissued instruction one cycle after the snapshot point,
// which is sound because re-evaluating an instruction early is one of the
// pure no-ops above (see rebuildSched).

const (
	// wheelSpan is the timing-wheel horizon in cycles (a power of two).
	// Wakeups further out (rare: only extreme memory latencies) go to the
	// overflow heap.
	wheelSpan = 2048
	wheelMask = wheelSpan - 1

	// keySeqMask extracts the seq from a packed agenda key. Keys pack
	// (cluster, fp, seq) so that ascending key order equals the legacy
	// scan order: cluster in bits 63..60, the fp-queue bit at 59, seq
	// below. Seqs never remotely approach 2^59.
	keySeqMask = (uint64(1) << 59) - 1
	keyFPBit   = uint64(1) << 59
)

// scheduler is the event engine's working state. It is reconstructed, not
// serialized, on checkpoint load.
//
// Wheel buckets are key slices, so a bucket coming due *is* the cycle's
// agenda: the drain just takes the slice and resets the bucket's length in
// place, touching no ROB entries. Every park is a plain append; parks from
// a single evaluating cycle arrive in ascending key order, so most buckets
// are born sorted, and a park that breaks the order (parks from different
// cycles interleaving into the same bucket) only flips the bucket's dirty
// bit — the drain insertion-sorts a dirty bucket once, which on the
// nearly-sorted runs appends produce costs O(n + inversions), strictly
// cheaper than the binary-insert-with-memmove per out-of-order park it
// replaced (which was ~10% of total time on high-ILP workloads). Each
// bucket keeps its own backing array for its whole life (pre-sized from
// one arena, grown only on rare overflow past the pre-size), so the
// apparatus is allocation-free in steady state.
type scheduler struct {
	wheel    [][]uint64  // wheelSpan buckets of due agenda keys
	dirty    []bool      // dirty[b]: wheel[b] is not sorted ascending
	wheelCnt int         // total keys parked in wheel buckets
	overflow []schedWake // min-heap by (at, key): wakeups beyond the horizon
}

// bucketPresize is each wheel bucket's initial capacity (carved from one
// contiguous arena at construction). Agendas beyond it are rare — the
// affected bucket grows once and keeps the larger backing.
const bucketPresize = 64

// schedWake is one beyond-horizon wakeup.
type schedWake struct {
	at  uint64
	key uint64
}

// keyOf packs the uop's agenda key.
func (p *Processor) keyOf(u *uop) uint64 {
	k := uint64(u.cluster)<<60 | u.seq
	if u.in.Class.IsFP() {
		k |= keyFPBit
	}
	return k
}

// parkU schedules the instruction behind key for re-evaluation at cycle
// `at`, which must be in the future. Within the wheel horizon the bucket
// index is exact (every bucket is drained at its cycle, so at most one lap
// is ever in flight); beyond it the wakeup goes to the overflow heap.
func (p *Processor) parkU(key, at uint64) {
	if at-p.cycle <= wheelMask {
		b := at & wheelMask
		s := p.sched.wheel[b]
		if len(s) != 0 && key <= s[len(s)-1] {
			p.sched.dirty[b] = true
		}
		p.sched.wheel[b] = append(s, key) //simlint:alloc amortized: wheel buckets retain their capacity across wrap-arounds
		p.sched.wheelCnt++
		return
	}
	heapPushWake(&p.sched.overflow, schedWake{at: at, key: key})
}

// issueStageEvent is the event-driven issue stage: take the due wheel
// bucket as the agenda, fold in due overflow entries, then evaluate front
// to back in key order. The agenda aliases the bucket's backing, which is
// safe: parks from this cycle's evaluations always target future buckets
// (at most wheelMask ahead, never a full lap back to this index), and if a
// mid-cycle wake grows the agenda past its capacity the append reallocates
// away from the bucket, whose own length was already reset.
func (p *Processor) issueStageEvent() {
	now := p.cycle
	s := &p.sched
	b := now & wheelMask
	ag := s.wheel[b]
	if len(ag) == 0 && (len(s.overflow) == 0 || s.overflow[0].at > now) {
		return // nothing due: a stepped cycle whose work is in other stages
	}
	oldCap := cap(ag)
	s.wheel[b] = ag[:0]
	s.wheelCnt -= len(ag)
	for len(s.overflow) > 0 && s.overflow[0].at <= now {
		ag = append(ag, heapPopWake(&s.overflow).key) //simlint:alloc amortized: overflow drain refills a bucket that keeps its capacity
		s.dirty[b] = true
	}
	if s.dirty[b] {
		sortKeysAsc(ag)
		s.dirty[b] = false
	}
	for i := 0; i < len(ag); i++ {
		key := ag[i]
		u := p.at(key & keySeqMask)
		cs := &p.clusters[key>>60]
		v, at, pseq := p.tryIssueV(cs, u, now)
		switch v {
		case vIssued:
			// Loads wake their consumers when memDone is set in the
			// memory stage (an issued load's arrival is still unknown),
			// so their chains stay parked here.
			if !u.isLoad() {
				p.wakeChain(u, key, &ag, i+1)
			}
		case vWake:
			p.parkU(key, at)
		case vChain:
			prod := p.at(pseq)
			u.wNext = prod.wHead
			prod.wHead = u.seq + 1
		}
	}
	// A mid-cycle wake that grew the agenda past the bucket's capacity
	// reallocated it; keep the larger backing so the growth happens once
	// per bucket, not once per occurrence.
	if cap(ag) != oldCap {
		s.wheel[b] = ag[:0]
	}
}

// wakeChain releases every instruction chained on prod. A waiter whose key
// is greater than prodKey joins the current cycle's agenda — lo is the
// index of the agenda's unevaluated tail, which is exactly the keys still
// greater than prodKey, so the waiter slots into its legacy position (the
// legacy scan would reach it after the producer issued this cycle). A
// waiter already passed re-evaluates next cycle, exactly when the legacy
// scan would first see the producer issued. Load completions (memStage,
// which runs after issue) pass ag == nil: every waiter re-evaluates next
// cycle.
func (p *Processor) wakeChain(prod *uop, prodKey uint64, ag *[]uint64, lo int) {
	h := prod.wHead
	prod.wHead = 0
	free := p.cfg.FreeRegComm
	for h != 0 {
		w := p.at(h - 1)
		h = w.wNext
		if w.cluster == prod.cluster || free {
			// Same-cluster waiter (or free register communication): the
			// legacy probe at the wake cycle is provably pure — opArrival
			// resolves the blocked operand to the producer's doneAt with
			// no transfer, no ring reservation, and no stats, writes the
			// arrival cache, and re-parks for that cycle. Do exactly that
			// here and skip the probe entirely. Only the blocking operand
			// is cached (the probe returns on the first not-ready source,
			// and never reaches a store's data operand), so every later
			// read sees the caches exactly as the legacy scan left them.
			t := prod.doneAt
			if w.src1At == unknown && w.seq-uint64(w.in.SrcDist1) == prod.seq {
				w.src1At = t
			} else if !w.isStore() && w.src2At == unknown && w.seq-uint64(w.in.SrcDist2) == prod.seq {
				w.src2At = t
			}
			if t <= p.cycle {
				t = p.cycle + 1
			}
			p.parkU(w.key, t)
			continue
		}
		if ag != nil && w.key > prodKey {
			insertKeyAsc(ag, w.key, lo)
		} else {
			p.parkU(w.key, p.cycle+1)
		}
	}
}

// ------------------------------------------------------- fast-forward --

// fastForward, called by the run loops after a cycle in which no stage made
// progress, jumps the machine to just before the next interesting cycle.
// It returns whether a jump happened. cycleTarget, when nonzero, is
// RunCycles' absolute cycle bound; limit is the watchdog budget. ActiveSum
// is the only per-cycle accumulator, so it is the only statistic that needs
// explicit accounting across the jump.
func (p *Processor) fastForward(cycleTarget, limit uint64) bool {
	now := p.cycle
	next := p.nextEventCycle(now)
	// Never jump past the cycle where the legacy stepper would declare a
	// deadlock (lastCommitCycle+limit+1), nor past RunCycles' bound.
	if wd := p.lastCommitCycle + limit + 1; next > wd {
		next = wd
	}
	if cycleTarget != 0 && next > cycleTarget {
		next = cycleTarget
	}
	if next <= now+1 {
		return false
	}
	skipped := next - 1 - now
	p.cycle = next - 1
	p.stats.ActiveSum += skipped * uint64(p.active)
	return true
}

// nextEventCycle computes the earliest cycle strictly after now at which
// any stage could act, given that no stage progressed at now. Sources whose
// next action is triggered by another listed event (an unissued producer's
// issue, a drain completing) are deliberately omitted: the triggering event
// sets p.progress in its own cycle, which forces the following cycle to be
// stepped, and the dependent evaluation happens there exactly as the legacy
// stepper would. Conservative `now+1` returns disable the jump for the rare
// states whose wake cycle is not cheaply computable.
func (p *Processor) nextEventCycle(now uint64) uint64 {
	next := ^uint64(0)
	min := func(t uint64) {
		if t > now && t < next {
			next = t
		}
	}

	// Commit: the window head's completion. An unissued head wakes through
	// the wheel (or, transitively, a pending load); a head that was ready
	// this cycle would have retired and set progress.
	if p.headSeq < p.tailSeq {
		u := p.at(p.headSeq)
		if u.issued {
			switch {
			case u.isLoad():
				if u.memDone {
					if u.doneAt <= now {
						return now + 1
					}
					min(u.doneAt)
				}
				// !memDone is covered by the pendingLoads walk below.
			case u.isStore():
				ready := true
				if u.agenDoneAt > now {
					min(u.agenDoneAt)
					ready = false
				}
				if u.src2At == unknown {
					// Data producer unissued or an un-done load: its
					// issue/completion sets progress, and commit's
					// opArrival re-runs the following cycle.
					ready = false
				} else if u.src2At > now {
					min(u.src2At)
					ready = false
				}
				if p.cfg.Cache == DecentralizedCache && u.resolveGlobalAt > now {
					min(u.resolveGlobalAt)
					ready = false
				}
				if ready {
					return now + 1
				}
			default:
				if u.doneAt <= now {
					return now + 1
				}
				min(u.doneAt)
			}
		}
	}

	// Memory stage: store-dummy dissolutions and pending loads.
	for i := range p.dummyReleases {
		if p.dummyReleases[i].at <= now {
			return now + 1
		}
		min(p.dummyReleases[i].at)
	}
	for _, seq := range p.pendingLoads {
		u := p.at(seq)
		if u.agenDoneAt > now {
			min(u.agenDoneAt)
			continue
		}
		if u.waitStore != 0 {
			wseq := u.waitStore - 1
			if wseq >= p.headSeq {
				s := p.at(wseq)
				if s.isStore() && s.seq == wseq {
					if !s.issued {
						continue // the store's issue sets progress
					}
					resolveAt := s.agenDoneAt
					if p.cfg.Cache == DecentralizedCache && s.cluster != u.cluster {
						resolveAt = s.resolveGlobalAt
					}
					if resolveAt <= now {
						return now + 1
					}
					min(resolveAt)
					continue
				}
			}
			// Stale blocker (unreachable after this cycle's memStage
			// ran, kept as a conservative guard).
			return now + 1
		}
		// Address known, no recorded blocker: the ordering walk stopped
		// on a forwarding match whose data is not ready. The data cycle
		// is not recorded on the load, so give up on jumping.
		return now + 1
	}

	// Dispatch: the head fetch-queue entry's front-end latency and the
	// post-reconfiguration resume cycle. A head entry that is past its
	// earliest cycle is blocked on ROB/register/queue space, all of which
	// are freed only by events that set progress.
	if p.resumeAt > now {
		min(p.resumeAt)
	}
	if p.fqLen > 0 {
		if e := &p.fq[p.fqHead]; e.earliest > now {
			min(e.earliest)
		}
	}

	// Fetch: instruction-cache fill stalls and the mispredict redirect.
	// fetchResumeAt == 0 means the blocking control transfer has not
	// issued; its issue sets both fetchResumeAt and progress.
	if p.fetchStallUntil > now {
		min(p.fetchStallUntil)
	}
	if p.fetchBlockedSeq != unknown && p.fetchResumeAt > 0 {
		min(p.fetchResumeAt)
	}

	// Observation probes must run at their exact cycles.
	if p.nextSample != noSample {
		min(p.nextSample)
	}

	// Issue wakeups: the overflow heap's top and the first non-empty
	// wheel bucket. The wheel scan is bounded by the best candidate so
	// far, so its cost is amortized by the length of the jump it enables.
	if len(p.sched.overflow) > 0 {
		min(p.sched.overflow[0].at)
	}
	if p.sched.wheelCnt > 0 {
		for t := now + 1; t < next && t <= now+wheelMask; t++ {
			if len(p.sched.wheel[t&wheelMask]) != 0 {
				min(t)
				break
			}
		}
	}
	return next
}

// rebuildSched reconstructs the event engine's state after LoadCheckpoint:
// issue-queue occupancy counters from the serialized queues, the LSQ-full
// count, and — in event mode — one wakeup per in-flight unissued
// instruction at the cycle after the snapshot. Early re-evaluation is pure
// (the readyAt guard and operand caches make premature probes no-ops), so
// every instruction re-parks or re-chains onto its original schedule.
func (p *Processor) rebuildSched() {
	p.iqOcc = 0
	for ci := range p.clusters {
		cs := &p.clusters[ci]
		cs.nInt = len(cs.iqInt)
		cs.nFP = len(cs.iqFP)
		p.iqOcc += cs.nInt + cs.nFP
	}
	p.recountLSQFull()
	if p.cfg.LegacyStepper {
		return
	}
	s := &p.sched
	for i := range s.wheel {
		s.wheel[i] = s.wheel[i][:0]
		s.dirty[i] = false
	}
	s.wheelCnt = 0
	s.overflow = s.overflow[:0]
	for seq := p.headSeq; seq < p.tailSeq; seq++ {
		u := p.at(seq)
		if !u.issued {
			u.key = p.keyOf(u)
			p.parkU(u.key, p.cycle+1)
		}
	}
	p.clearIQLists()
}

// recountLSQFull recomputes the count of active clusters with a full LSQ
// (the O(1) replacement for dispatch's per-store dummy-slot scan). Called
// whenever the active set changes and on checkpoint load.
func (p *Processor) recountLSQFull() {
	n := 0
	for c := 0; c < p.active; c++ {
		if p.clusters[c].lsq >= p.cfg.LSQPerCluster {
			n++
		}
	}
	p.lsqFull = n
}

// lsqDelta adjusts a cluster's LSQ occupancy, maintaining the full count
// for clusters in the active set.
func (p *Processor) lsqDelta(c, d int) {
	cs := &p.clusters[c]
	if c >= p.active {
		cs.lsq += d
		return
	}
	was := cs.lsq >= p.cfg.LSQPerCluster
	cs.lsq += d
	full := cs.lsq >= p.cfg.LSQPerCluster
	if full != was {
		if full {
			p.lsqFull++
		} else {
			p.lsqFull--
		}
	}
}

// fillIQLists materializes the per-cluster issue-queue slices from the ROB
// (event mode keeps them empty); dispatched, unissued seqs in ascending
// order is exactly the legacy stepper's compacted queue content, so
// snapshots stay format- and byte-compatible across steppers.
func (p *Processor) fillIQLists() {
	for seq := p.headSeq; seq < p.tailSeq; seq++ {
		u := p.at(seq)
		if u.issued {
			continue
		}
		cs := &p.clusters[u.cluster]
		q := cs.iqFor(u.in.Class)
		*q = append(*q, seq)
	}
}

// clearIQLists empties the issue-queue slices (event mode's steady state).
func (p *Processor) clearIQLists() {
	for ci := range p.clusters {
		cs := &p.clusters[ci]
		cs.iqInt = cs.iqInt[:0]
		cs.iqFP = cs.iqFP[:0]
	}
}

// ---------------------------------------------- agenda & heap helpers --
//
// The agenda is sorted ascending before evaluation walks it front to
// back; parks are plain appends and a bucket whose appends broke the
// order is sorted once at drain. Everything is hand-rolled on plain
// slices or uses the allocation-free generic slices.Sort —
// container/heap and sort.Slice allocate, and these paths run every
// cycle.

// sortKeysAsc sorts a drained dirty bucket ascending. Dirty buckets are
// concatenations of ascending append runs: tiny ones are cheapest under
// insertion sort, anything larger goes to pdqsort, whose run handling
// beats insertion sort's O(n + inversions) once runs interleave (the
// FU-contention pattern on high-ILP workloads).
func sortKeysAsc(s []uint64) {
	if len(s) > 12 {
		slices.Sort(s)
		return
	}
	for i := 1; i < len(s); i++ {
		k := s[i]
		j := i - 1
		for j >= 0 && s[j] > k {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = k
	}
}

// insertKeyAsc inserts k into the ascending-sorted tail s[lo:] of a sorted
// slice (binary search plus shift; keys are unique, and k belongs at or
// after lo). Used only for mid-evaluation wakes into the live agenda.
func insertKeyAsc(h *[]uint64, k uint64, lo int) {
	s := append(*h, 0) //simlint:alloc amortized: the live agenda retains its capacity across cycles
	hi := len(s) - 1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	copy(s[lo+1:], s[lo:len(s)-1])
	s[lo] = k
	*h = s
}

func wakeLess(a, b schedWake) bool {
	return a.at < b.at || (a.at == b.at && a.key < b.key)
}

func heapPushWake(h *[]schedWake, w schedWake) {
	s := append(*h, w) //simlint:alloc amortized: the wake heap retains its capacity across cycles
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !wakeLess(s[i], s[parent]) {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
	*h = s
}

func heapPopWake(h *[]schedWake) schedWake {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	n := len(s)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && wakeLess(s[l], s[small]) {
			small = l
		}
		if r < n && wakeLess(s[r], s[small]) {
			small = r
		}
		if small == i {
			break
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
	*h = s
	return top
}

