package pipeline

import "fmt"

// DeadlockError is returned by Run and RunCycles when the watchdog detects
// that no instruction has committed for Config.WatchdogCycles cycles. It
// carries a dump of the machine's head/tail/fetch state so the failure
// manifest can record where the pipeline wedged without a debugger attached.
type DeadlockError struct {
	// Cycle is the cycle at which the watchdog fired; Committed is the
	// total committed-instruction count at that point.
	Cycle     uint64
	Committed uint64
	// LastCommitCycle is the cycle of the most recent commit.
	LastCommitCycle uint64
	// HeadSeq, TailSeq and FetchSeq are the ROB head, ROB tail and fetch
	// sequence numbers.
	HeadSeq, TailSeq, FetchSeq uint64
	// FetchBlockedSeq is the seq of the unresolved control transfer
	// blocking fetch, or ^0 when fetch is not blocked.
	FetchBlockedSeq uint64
	// Draining reports whether a decentralized reconfiguration drain was
	// in progress; Active is the active-cluster count.
	Draining bool
	Active   int
}

// Error implements error.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf(
		"pipeline: no commit in %d cycles at cycle %d (committed=%d head=%d tail=%d fetch=%d blocked=%d draining=%t active=%d)",
		e.Cycle-e.LastCommitCycle, e.Cycle, e.Committed,
		e.HeadSeq, e.TailSeq, e.FetchSeq, e.FetchBlockedSeq, e.Draining, e.Active)
}

// StoppedError is returned by Run and RunCycles when an external stop flag
// (SetStopFlag) was raised before the run target was reached. The runner uses
// it to implement per-run wall-clock timeouts; it is a transient condition —
// the same request may succeed when retried with a longer budget.
type StoppedError struct {
	// Cycle and Committed record where the run stopped.
	Cycle     uint64
	Committed uint64
}

// Error implements error.
func (e *StoppedError) Error() string {
	return fmt.Sprintf("pipeline: run stopped by external flag at cycle %d (committed=%d)", e.Cycle, e.Committed)
}
