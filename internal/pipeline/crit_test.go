package pipeline

import (
	"testing"

	"clustersim/internal/workload"
)

func TestCritTableTraining(t *testing.T) {
	c := newCritPredictor()
	const hot, cold = 0x100, 0x200
	if c.critical(hot) {
		t.Fatal("untrained PC predicted critical")
	}
	for i := 0; i < 4; i++ {
		c.train(hot, true, cold)
	}
	if !c.critical(hot) {
		t.Fatal("trained PC not predicted critical")
	}
	if c.critical(cold) {
		t.Fatal("down-trained PC predicted critical")
	}
	// Saturation: further training keeps it in range.
	for i := 0; i < 10; i++ {
		c.train(hot, false, 0)
	}
	if c.table[critIndex(hot)] > 3 {
		t.Fatal("counter overflow")
	}
}

func TestCritTableRunsAndLearns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CritTable = true
	p := MustNew(cfg, workload.MustNew("galgel", 1), nil)
	r := mustRun(t, p, 50_000)
	if r.IPC() <= 0 {
		t.Fatal("crit-table machine made no progress")
	}
	if p.crit == nil {
		t.Fatal("crit predictor not constructed")
	}
	trained := 0
	for _, v := range p.crit.table {
		if v > 0 {
			trained++
		}
	}
	if trained == 0 {
		t.Fatal("criticality table never trained")
	}
}

func TestCritTableComparableToHeuristic(t *testing.T) {
	// The trained table should be in the same performance ballpark as
	// the last-arriving heuristic (it is an alternative implementation
	// of the same §2.1 hint, not a different policy).
	ipc := func(table bool) float64 {
		cfg := DefaultConfig()
		cfg.CritTable = table
		p := MustNew(cfg, workload.MustNew("swim", 1), nil)
		return mustRun(t, p, 60_000).IPC()
	}
	h, tb := ipc(false), ipc(true)
	if tb < h*0.9 || tb > h*1.1 {
		t.Fatalf("crit table IPC %.3f far from heuristic %.3f", tb, h)
	}
}
