package pipeline

import "clustersim/internal/obs"

// obsHandles caches registry metric handles so the instrumented paths never
// take the registry lock after construction. All pointers may be nil (no
// registry attached); Counter/Gauge/Histogram methods are nil-safe.
type obsHandles struct {
	// Probe gauges, refreshed every sample period.
	gIQOcc    *obs.Gauge
	gLinkUtil *obs.Gauge
	gBankQ    *obs.Gauge
	gActive   *obs.Gauge
	gIPC      *obs.Gauge

	// Probe distributions across the run.
	hIQOcc    *obs.Histogram
	hLinkUtil *obs.Histogram

	// Counters synced from the cumulative Result so snapshot totals match
	// Stats() exactly.
	cCycles           *obs.Counter
	cInstructions     *obs.Counter
	cFetched          *obs.Counter
	cDispatched       *obs.Counter
	cRedirects        *obs.Counter
	cReconfigs        *obs.Counter
	cDistantIssued    *obs.Counter
	cDistantCommitted *obs.Counter
	cRegTransfers     *obs.Counter
	cL1Hits           *obs.Counter
	cL1Misses         *obs.Counter
	cNetTransfers     *obs.Counter
	cNetHops          *obs.Counter
}

// noSample disables periodic sampling (the cycle counter never reaches it).
const noSample = ^uint64(0)

// initObs wires the observer into the processor: caches metric handles and
// schedules the first probe sample.
func (p *Processor) initObs(o *obs.Observer) {
	p.obs = o
	p.nextSample = noSample
	if o == nil || !o.Enabled() {
		p.obs = nil
		return
	}
	if o.SamplePeriod > 0 {
		p.nextSample = o.SamplePeriod
	}
	if o.Registry == nil {
		return
	}
	// Issue-queue occupancy buckets span the machine's total capacity;
	// link utilization is a fraction.
	iqCap := float64(2 * p.cfg.IQPerCluster * p.cfg.Clusters)
	iqBounds := make([]float64, 0, 8)
	for f := 1.0 / 128; f <= 1; f *= 2 {
		iqBounds = append(iqBounds, iqCap*f)
	}
	p.oh = obsHandles{
		gIQOcc:    o.Gauge("probe.iq_occupancy"),
		gLinkUtil: o.Gauge("probe.link_utilization"),
		gBankQ:    o.Gauge("probe.bank_backlog"),
		gActive:   o.Gauge("probe.active_clusters"),
		gIPC:      o.Gauge("probe.ipc"),
		hIQOcc:    o.Histogram("probe.iq_occupancy.hist", iqBounds),
		hLinkUtil: o.Histogram("probe.link_utilization.hist", []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.8}),

		cCycles:           o.Counter("pipeline.cycles"),
		cInstructions:     o.Counter("pipeline.instructions"),
		cFetched:          o.Counter("pipeline.fetched"),
		cDispatched:       o.Counter("pipeline.dispatched"),
		cRedirects:        o.Counter("pipeline.redirects"),
		cReconfigs:        o.Counter("pipeline.reconfigs"),
		cDistantIssued:    o.Counter("pipeline.distant_issued"),
		cDistantCommitted: o.Counter("pipeline.distant_committed"),
		cRegTransfers:     o.Counter("pipeline.reg_transfers"),
		cL1Hits:           o.Counter("mem.l1_hits"),
		cL1Misses:         o.Counter("mem.l1_misses"),
		cNetTransfers:     o.Counter("net.transfers"),
		cNetHops:          o.Counter("net.hops"),
	}
}

// syncObsCounters stores the cumulative totals into the registry, so a live
// snapshot (and the final exported one) agrees with Stats().
func (p *Processor) syncObsCounters() {
	p.oh.cCycles.Store(p.cycle)
	p.oh.cInstructions.Store(p.committed)
	p.oh.cFetched.Store(p.stats.Fetched)
	p.oh.cDispatched.Store(p.stats.Dispatched)
	p.oh.cRedirects.Store(p.stats.Redirects)
	p.oh.cReconfigs.Store(p.stats.Reconfigs)
	p.oh.cDistantIssued.Store(p.stats.DistantIssued)
	p.oh.cDistantCommitted.Store(p.stats.DistantCommitted)
	p.oh.cRegTransfers.Store(p.stats.RegTransfers)
	ms := p.memsys.Stats()
	p.oh.cL1Hits.Store(ms.L1Hits)
	p.oh.cL1Misses.Store(ms.L1Misses)
	ns := p.net.Stats()
	p.oh.cNetTransfers.Store(ns.Transfers)
	p.oh.cNetHops.Store(ns.Hops)
}

// observeSample runs the cycle-sampled probes: issue-queue occupancy,
// interconnect link utilization and L1 bank-port backlog over the window
// since the previous sample. Called from step() only while an observer with
// a sample period is attached.
func (p *Processor) observeSample() {
	o := p.obs
	period := o.SamplePeriod
	from := p.cycle - period
	iqOcc := float64(p.iqOcc)
	linkUtil := p.net.Utilization(from, p.cycle)
	bankQ := p.memsys.BankBacklog(from, p.cycle)
	ipc := 0.0
	if p.cycle > 0 {
		ipc = float64(p.committed) / float64(p.cycle)
	}

	if o.Registry != nil {
		p.oh.gIQOcc.Set(iqOcc)
		p.oh.gLinkUtil.Set(linkUtil)
		p.oh.gBankQ.Set(bankQ)
		p.oh.gActive.Set(float64(p.active))
		p.oh.gIPC.Set(ipc)
		p.oh.hIQOcc.Observe(iqOcc)
		p.oh.hLinkUtil.Observe(linkUtil)
		p.syncObsCounters()
	}
	o.Emit(&obs.Event{ //simlint:alloc observer-gated: sampled emission on an instrumented run, never on the bare hot path
		Cycle:     p.cycle,
		Kind:      obs.KindSample,
		IQOcc:     iqOcc,
		LinkUtil:  linkUtil,
		BankQueue: bankQ,
		Active:    p.active,
	})
	o.Series.Append(obs.SeriesRow{
		Cycle:        p.cycle,
		Instructions: p.committed,
		Active:       p.active,
		IPC:          ipc,
		IQOcc:        iqOcc,
		LinkUtil:     linkUtil,
		BankQueue:    bankQ,
	})
	p.nextSample = p.cycle + period
}

// observeRedirect emits a front-end redirect event for a committed
// mispredicted control transfer.
func (p *Processor) observeRedirect(now, seq, pc uint64) {
	p.obs.Emit(&obs.Event{ //simlint:alloc observer-gated: redirect emission on an instrumented run, never on the bare hot path
		Cycle: now,
		Kind:  obs.KindRedirect,
		Seq:   seq,
		PC:    pc,
	})
}

// observeReconfig emits an applied reconfiguration. For decentralized
// reconfigurations, writebacks and drainCycles describe the flush.
func (p *Processor) observeReconfig(oldActive, newActive int, writebacks, drainCycles uint64) {
	p.obs.Emit(&obs.Event{ //simlint:alloc observer-gated: reconfig emission on an instrumented run, never on the bare hot path
		Cycle:       p.cycle,
		Kind:        obs.KindReconfig,
		Policy:      p.policyName(),
		OldActive:   oldActive,
		NewActive:   newActive,
		Writebacks:  writebacks,
		DrainCycles: drainCycles,
	})
}

// policyName returns the controller's name, or the static fallback.
func (p *Processor) policyName() string {
	if p.ctrl != nil {
		return p.ctrl.Name()
	}
	return "static"
}
