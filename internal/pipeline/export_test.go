package pipeline

// CorruptScoreboardForTest injects a register-scoreboard accounting bug for
// mutation-testing the invariant checker: it adds delta to cluster 0's
// in-use integer-register count with no owning instruction, emulating a
// free that never happened (delta > 0) or a double free (delta < 0).
func (p *Processor) CorruptScoreboardForTest(delta int) {
	p.clusters[0].intRegs += delta
}
