package pipeline

import "clustersim/internal/isa"

// steer picks the cluster for an instruction about to dispatch, or -1 when
// no active cluster can accept it this cycle. It implements §2.1's
// heuristics: the default steers an instruction to the cluster that produces
// most of its operands, prefers the predicted-critical operand's cluster on
// a tie, gives memory operations an affinity for the cluster that services
// their cache bank, and overrides everything when issue-queue occupancy is
// visibly imbalanced. Mod_N and First_Fit are the comparison heuristics
// from Baniasadi and Moshovos that the default approximates at threshold
// extremes.
func (p *Processor) steer(in *isa.Instruction, seq uint64) int {
	switch p.cfg.Steering {
	case SteerModN:
		return p.steerModN(in)
	case SteerFirstFit:
		return p.steerFirstFit(in)
	default:
		return p.steerOperandMajority(in, seq)
	}
}

// canAccept reports whether cluster c has the resources the instruction
// needs: an issue-queue slot, a destination register if one is written, and
// an LSQ slot for memory operations. Stores under the decentralized model
// additionally need a dummy slot in every other active LSQ; that is checked
// separately in dispatchStage because it is independent of the steering
// choice.
func (p *Processor) canAccept(c int, in *isa.Instruction) bool {
	cs := &p.clusters[c]
	if cs.iqCount(in.Class) >= p.cfg.IQPerCluster {
		return false
	}
	if in.HasDest {
		if in.Class.IsFP() {
			if cs.fpRegs >= p.cfg.RegsPerCluster {
				return false
			}
		} else if cs.intRegs >= p.cfg.RegsPerCluster {
			return false
		}
	}
	if in.Class.IsMem() {
		if p.cfg.Cache == CentralizedCache {
			if p.lsqTotal >= p.cfg.LSQPerCluster*p.cfg.Clusters {
				return false
			}
		} else if cs.lsq >= p.cfg.LSQPerCluster {
			return false
		}
	}
	return true
}

// producerCluster returns the cluster of the in-flight producer dist back
// from seq, or -1 if the producer has retired (its value is architected).
func (p *Processor) producerCluster(seq uint64, dist uint32) int {
	if dist == 0 {
		return -1
	}
	pseq := seq - uint64(dist)
	if pseq+uint64(dist) < uint64(dist) || pseq < p.headSeq || pseq >= p.tailSeq {
		return -1
	}
	return int(p.at(pseq).cluster)
}

// producerUnfinished reports whether the producer dist back from seq is
// still executing (the last-arriving-operand criticality hint).
func (p *Processor) producerUnfinished(seq uint64, dist uint32) bool {
	if dist == 0 {
		return false
	}
	pseq := seq - uint64(dist)
	if pseq < p.headSeq || pseq >= p.tailSeq {
		return false
	}
	u := p.at(pseq)
	if !u.issued {
		return true
	}
	if u.isLoad() && !u.memDone {
		return true
	}
	return u.doneAt > p.cycle
}

func (p *Processor) steerOperandMajority(in *isa.Instruction, seq uint64) int {
	active := p.active
	var votes [MaxClusters]int

	c1 := p.producerCluster(seq, in.SrcDist1)
	c2 := p.producerCluster(seq, in.SrcDist2)
	if c1 >= 0 && c1 < active {
		votes[c1]++
		// Criticality: prefer the cluster producing the operand
		// predicted to arrive last.
		if p.predictedCritical(seq, in.SrcDist1) {
			votes[c1]++
		}
	}
	if c2 >= 0 && c2 < active {
		votes[c2]++
		if p.predictedCritical(seq, in.SrcDist2) {
			votes[c2]++
		}
	}

	// Memory operations favor the cluster that services their bank: free
	// for the decentralized cache (§5: "performance is maximized when a
	// load or store is steered to the cluster that is predicted to cache
	// the corresponding data"), a tie-break toward the cache end for the
	// centralized one.
	if in.Class.IsMem() && p.cfg.Cache == DecentralizedCache {
		home, confident := p.predictHomeConfident(in)
		if confident && home < active {
			// The bank dependence dominates: a load or store not in
			// its bank's cluster pays two transfers (address there,
			// data back), so §5 steers memory operations to the
			// predicted bank even over operand affinity — but only
			// when the prediction is trustworthy.
			votes[home] += 4
		}
	}

	// One fused pass finds the load-imbalance override candidate (the
	// least loaded cluster that can accept) and the best-scoring cluster;
	// ties break toward the lower cluster index in both, matching the
	// original two-pass scan order.
	minOcc, maxOcc := 1<<30, -1
	minIdx := -1
	best := -1
	bestScore := -(1 << 60)
	for c := 0; c < active; c++ {
		occ := p.clusters[c].occupancy()
		if occ > maxOcc {
			maxOcc = occ
		}
		if !p.canAccept(c, in) {
			continue
		}
		if occ < minOcc {
			minOcc = occ
			minIdx = c
		}
		// Ties break toward lower occupancy.
		score := votes[c]*1024 - occ
		if score > bestScore {
			best, bestScore = c, score
		}
	}
	if minIdx < 0 {
		return -1 // nothing can accept it
	}
	// Load-imbalance override: when the spread between the most and
	// least loaded active clusters exceeds the threshold, ignore
	// affinity and steer to the least loaded.
	if maxOcc-minOcc >= p.cfg.ImbalanceThreshold {
		return minIdx
	}
	return best
}

func (p *Processor) steerModN(in *isa.Instruction) int {
	active := p.active
	for tries := 0; tries < active; tries++ {
		c := p.modNCluster
		if p.modNCount >= p.cfg.ModN {
			p.modNCount = 0
			p.modNCluster = (p.modNCluster + 1) % active
			c = p.modNCluster
		}
		if c >= active {
			p.modNCluster, p.modNCount = 0, 0
			c = 0
		}
		if p.canAccept(c, in) {
			p.modNCount++
			return c
		}
		// Cluster full: move on without consuming the quota.
		p.modNCluster = (p.modNCluster + 1) % active
		p.modNCount = 0
	}
	return -1
}

func (p *Processor) steerFirstFit(in *isa.Instruction) int {
	for c := 0; c < p.active; c++ {
		if p.canAccept(c, in) {
			return c
		}
	}
	return -1
}

// predictHome returns the cluster predicted to cache a memory instruction's
// data under the decentralized model (oracle under PerfectBankPred).
func (p *Processor) predictHome(in *isa.Instruction) int {
	if p.cfg.PerfectBankPred || p.bankp == nil {
		return p.memsys.HomeCluster(in.Addr)
	}
	return p.bankp.Predict(in.PC, p.active)
}

// predictHomeConfident is predictHome plus the predictor's confidence.
func (p *Processor) predictHomeConfident(in *isa.Instruction) (int, bool) {
	if p.cfg.PerfectBankPred || p.bankp == nil {
		return p.memsys.HomeCluster(in.Addr), true
	}
	return p.bankp.PredictConfident(in.PC, p.active)
}
