package pipeline

import (
	"bytes"
	"sort"
	"testing"

	"clustersim/internal/mem"
	"clustersim/internal/rng"
	"clustersim/internal/workload"
)

// The event-driven stepper's in-package proofs: differential equivalence
// against the legacy scan stepper (results, cycle counts, deadlock timing,
// snapshots), plus unit tests for the scheduler's heap helpers. The
// cross-policy and cross-workload matrices live in internal/check
// (StepperEquivalence and friends); these tests cover what needs package
// access — cycle-exactness via RunCycles, cross-stepper snapshot
// compatibility, and the wheel/overflow internals.

// stallKernel is a serial pointer-chase over a footprint far beyond the L1
// and TLB: almost every load misses, so the machine spends most cycles
// stalled — the regime stall fast-forward exists for.
func stallKernel() workload.Kernel {
	return workload.Kernel{
		Chains:     1,
		LoadFrac:   0.45,
		StoreFrac:  0.05,
		BranchFrac: 0.05,
		LoopBody:   16,
		LoopIters:  4,
		Footprint:  1 << 26,
		RandomAddr: true,
		Chase:      true,
	}
}

func stallGen(t testing.TB) workload.Generator {
	t.Helper()
	gen, err := workload.Custom("stall-heavy", []workload.Phase{{Length: 1 << 40, Kernel: stallKernel()}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

// TestStepperEquivalenceRunCycles: RunCycles must land both steppers on the
// identical cycle with identical cumulative Results at every slice boundary,
// including odd lengths that force fast-forward to clamp a jump against the
// cycle target mid-stall.
func TestStepperEquivalenceRunCycles(t *testing.T) {
	for _, bench := range []string{"gzip", "swim", "parser"} {
		run := func(legacy bool) []Result {
			cfg := DefaultConfig()
			cfg.LegacyStepper = legacy
			p := MustNew(cfg, workload.MustNew(bench, 1), nil)
			var out []Result
			for _, n := range []uint64{1_000, 997, 3, 2_048, 5_001} {
				res, err := p.RunCycles(n)
				if err != nil {
					t.Fatalf("%s RunCycles(%d): %v", bench, n, err)
				}
				out = append(out, res)
			}
			return out
		}
		fast, legacy := run(false), run(true)
		for i := range fast {
			if fast[i] != legacy[i] {
				t.Errorf("%s: slice %d diverges:\n  event:  %+v\n  legacy: %+v", bench, i, fast[i], legacy[i])
			}
		}
	}
}

// TestStepperEquivalenceDeadlockCycle: the watchdog must fire on the exact
// same cycle under both steppers — fast-forward clamps its jumps at the
// deadlock horizon rather than sailing past it.
func TestStepperEquivalenceDeadlockCycle(t *testing.T) {
	run := func(legacy bool) (uint64, error) {
		cfg := DefaultConfig()
		cfg.LegacyStepper = legacy
		cfg.WatchdogCycles = 120 // below the chase's miss latency
		p := MustNew(cfg, stallGen(t), nil)
		_, err := p.Run(50_000)
		return p.Cycle(), err
	}
	fastCycle, fastErr := run(false)
	legacyCycle, legacyErr := run(true)
	if fastErr == nil || legacyErr == nil {
		t.Fatalf("expected the watchdog to fire (event err %v, legacy err %v)", fastErr, legacyErr)
	}
	if fastCycle != legacyCycle {
		t.Errorf("watchdog fired at cycle %d under the event stepper, %d under legacy", fastCycle, legacyCycle)
	}
	if fastErr.Error() != legacyErr.Error() {
		t.Errorf("deadlock reports differ:\n  event:  %v\n  legacy: %v", fastErr, legacyErr)
	}
}

// TestSnapshotCrossStepper: a checkpoint taken under either stepper restores
// into a processor running the other and finishes with the uninterrupted
// run's exact Result — the snapshot format is stepper-independent (the event
// engine serializes derived issue-queue lists and rebuilds its wheel state
// on load).
func TestSnapshotCrossStepper(t *testing.T) {
	const window, at = 30_000, 11_137
	build := func(legacy bool) *Processor {
		cfg := DefaultConfig()
		cfg.LegacyStepper = legacy
		return MustNew(cfg, workload.MustNew("vpr", 1), nil)
	}
	whole := mustRun(t, build(false), window)
	if lw := mustRun(t, build(true), window); lw != whole {
		t.Fatalf("steppers diverge before snapshotting:\n  event:  %+v\n  legacy: %+v", whole, lw)
	}
	for _, dir := range []struct {
		name         string
		saveUnder    bool
		restoreUnder bool
	}{
		{"event-to-legacy", false, true},
		{"legacy-to-event", true, false},
	} {
		p1 := build(dir.saveUnder)
		mustRun(t, p1, at)
		var buf bytes.Buffer
		if err := p1.SaveCheckpoint(&buf); err != nil {
			t.Fatalf("%s: save: %v", dir.name, err)
		}
		p2 := build(dir.restoreUnder)
		if err := p2.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("%s: load: %v", dir.name, err)
		}
		if got := mustRun(t, p2, window-p2.Committed()); got != whole {
			t.Errorf("%s: resumed run diverges:\n  whole:   %+v\n  resumed: %+v", dir.name, whole, got)
		}
	}
}

// TestSnapshotBytesStepperIndependent: both steppers interrupted at the same
// commit count serialize byte-identical snapshots (modulo the readyAt wakeup
// hint, which is a sound skip-hint, not machine state — the event stepper
// re-derives it lazily). Rather than exempting fields, this checks the
// stronger property end to end: the two snapshot streams decode into
// machines that finish identically, and the streams' lengths match exactly
// (same sections, same counts).
func TestSnapshotBytesStepperIndependent(t *testing.T) {
	const at = 11_137
	snap := func(legacy bool) []byte {
		cfg := DefaultConfig()
		cfg.LegacyStepper = legacy
		p := MustNew(cfg, workload.MustNew("gzip", 1), nil)
		mustRun(t, p, at)
		var buf bytes.Buffer
		if err := p.SaveCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	fast, legacy := snap(false), snap(true)
	if len(fast) != len(legacy) {
		t.Errorf("snapshot sizes diverge: event %d bytes, legacy %d", len(fast), len(legacy))
	}
}

// TestSchedKeyOrderMatchesScanOrder: the packed agenda key sorts (cluster,
// int-before-fp, seq) exactly like the legacy nested scan visits entries.
func TestSchedKeyOrderMatchesScanOrder(t *testing.T) {
	type ent struct {
		cluster int32
		fp      bool
		seq     uint64
	}
	var ents []ent
	rng := rng.New(7)
	for i := 0; i < 500; i++ {
		ents = append(ents, ent{
			cluster: int32(rng.Intn(MaxClusters)),
			fp:      rng.Intn(2) == 1,
			seq:     uint64(rng.Intn(1 << 20)),
		})
	}
	key := func(e ent) uint64 {
		k := uint64(e.cluster)<<60 | e.seq
		if e.fp {
			k |= keyFPBit
		}
		return k
	}
	scanLess := func(a, b ent) bool {
		if a.cluster != b.cluster {
			return a.cluster < b.cluster
		}
		if a.fp != b.fp {
			return !a.fp // the scan walks iqInt before iqFP
		}
		return a.seq < b.seq
	}
	byKey := append([]ent(nil), ents...)
	sort.Slice(byKey, func(i, j int) bool { return key(byKey[i]) < key(byKey[j]) })
	byScan := append([]ent(nil), ents...)
	sort.Slice(byScan, func(i, j int) bool { return scanLess(byScan[i], byScan[j]) })
	for i := range byKey {
		if byKey[i] != byScan[i] {
			t.Fatalf("order diverges at %d: key order %+v, scan order %+v", i, byKey[i], byScan[i])
		}
	}
}

// TestSchedHeaps: the park-append/dirty-bit/sort-at-drain protocol plus
// lo-bounded mid-evaluation inserts (the ordering primitives behind wheel
// buckets and the live agenda) produce an ascending agenda under every
// park pattern, and the wake min-heap pops in (at, key) order under
// interleaved pushes.
func TestSchedHeaps(t *testing.T) {
	rng := rng.New(3)

	ascending := func(s []uint64) bool {
		return sort.SliceIsSorted(s, func(i, j int) bool { return s[i] < s[j] })
	}
	// park and drain mirror parkU and the issueStageEvent drain: every
	// park appends, an order-breaking park dirties the bucket, and the
	// drain sorts a dirty bucket exactly once.
	dirty := false
	park := func(s *[]uint64, k uint64) {
		if b := *s; len(b) != 0 && k <= b[len(b)-1] {
			dirty = true
		}
		*s = append(*s, k)
	}
	drain := func(s []uint64) {
		if dirty {
			sortKeysAsc(s)
			dirty = false
		}
	}
	for _, n := range []int{0, 1, 2, 7, 8, 9, 31, 32, 33, 300} {
		for trial := 0; trial < 3; trial++ {
			var keys []uint64
			switch trial {
			case 0: // uniform random arrival order
				for i := 0; i < n; i++ {
					keys = append(keys, rng.Uint64())
				}
			case 1: // ascending batches (successive cycles' park order)
				for len(keys) < n {
					run := 1 + rng.Intn(5)
					base := rng.Uint64() >> 1
					for i := 0; i < run && len(keys) < n; i++ {
						keys = append(keys, base+uint64(i))
					}
				}
			case 2: // strictly ascending (pure append fast path)
				for i := 0; i < n; i++ {
					keys = append(keys, uint64(2*(i+1)))
				}
			}
			want := append([]uint64(nil), keys...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			var s []uint64
			for _, k := range keys {
				park(&s, k)
			}
			drain(s)
			if !ascending(s) || len(s) != n {
				t.Fatalf("park(n=%d, trial %d) not ascending", n, trial)
			}
			for i := range want {
				if s[i] != want[i] {
					t.Fatalf("park(n=%d, trial %d) wrong order at %d: got %d, want %d", n, trial, i, s[i], want[i])
				}
			}
			// Mid-evaluation inserts: a key belonging in the tail must land
			// there even when the search is bounded to start at lo.
			insertKeyAsc(&s, 0, 0)
			insertKeyAsc(&s, ^uint64(0), len(s)/2)
			for i := 0; i < 10; i++ {
				k := rng.Uint64()
				lo := 0
				for lo < len(s) && s[lo] < k {
					lo++
				}
				insertKeyAsc(&s, k, lo)
			}
			if !ascending(s) {
				t.Fatalf("insertKeyAsc(n=%d) broke the ascending order", n)
			}
			if len(s) != n+12 {
				t.Fatalf("insertKeyAsc(n=%d) lost entries: want %d, got %d", n, n+12, len(s))
			}
		}
	}

	var wh []schedWake
	for i := 0; i < 300; i++ {
		heapPushWake(&wh, schedWake{at: uint64(rng.Intn(50)), key: rng.Uint64()})
	}
	prev := schedWake{}
	for i := 0; len(wh) > 0; i++ {
		w := heapPopWake(&wh)
		if i > 0 && wakeLess(w, prev) {
			t.Fatalf("wake heap popped out of order: %+v after %+v", w, prev)
		}
		prev = w
	}
}

// TestWheelOverflowRoundTrip: wakeups beyond the wheel horizon go to the
// overflow heap and still surface at the right cycle. Driven end to end with
// a cache configured far beyond the horizon so real loads park there.
func TestWheelOverflowRoundTrip(t *testing.T) {
	run := func(legacy bool) Result {
		cfg := DefaultConfig()
		cfg.LegacyStepper = legacy
		cfg.WatchdogCycles = 40 * wheelSpan
		cc := mem.DefaultCentralConfig(cfg.Clusters)
		cc.MemLatency = 3 * wheelSpan // beyond the wheel horizon
		cfg.CacheConfig = &cc
		p := MustNew(cfg, stallGen(t), nil)
		return mustRun(t, p, 2_000)
	}
	fast, legacy := run(false), run(true)
	if fast != legacy {
		t.Fatalf("steppers diverge with beyond-horizon latencies:\n  event:  %+v\n  legacy: %+v", fast, legacy)
	}
}
