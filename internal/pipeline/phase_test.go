package pipeline

import (
	"testing"

	"clustersim/internal/telemetry"
	"clustersim/internal/workload"
)

// TestPhaseTimerPreservesResults: a processor with a phase timer attached
// must produce bit-identical results — the timer observes the simulator,
// never the simulation.
func TestPhaseTimerPreservesResults(t *testing.T) {
	run := func(pt *telemetry.PhaseTimer) Result {
		cfg := DefaultConfig()
		cfg.Phases = pt
		p := MustNew(cfg, workload.MustNew("gzip", 1), nil)
		res, err := p.Run(50_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	timed := run(telemetry.NewPhaseTimer(1)) // sample every cycle
	if plain != timed {
		t.Fatalf("phase timer perturbed results:\nplain: %+v\ntimed: %+v", plain, timed)
	}
}

// TestPhaseTimerAttribution: a sampled run charges every pipeline phase.
func TestPhaseTimerAttribution(t *testing.T) {
	pt := telemetry.NewPhaseTimer(4)
	cfg := DefaultConfig()
	cfg.Phases = pt
	// The sampled == cycles/period identity only holds when every cycle is
	// stepped; the event stepper's stall fast-forward skips cycles. The
	// timer mechanics under test are stepper-independent.
	cfg.LegacyStepper = true
	p := MustNew(cfg, workload.MustNew("swim", 1), nil)
	if _, err := p.Run(20_000); err != nil {
		t.Fatal(err)
	}
	r := pt.Report()
	if r.SampledCycles == 0 {
		t.Fatal("no cycles sampled")
	}
	want := p.Cycle() / r.Period
	if r.SampledCycles < want || r.SampledCycles > want+1 {
		t.Errorf("sampled %d cycles over %d at period %d, want ~%d",
			r.SampledCycles, p.Cycle(), r.Period, want)
	}
	for _, s := range r.Phases {
		if s.Laps != r.SampledCycles {
			t.Errorf("phase %s lapped %d times, want %d", s.Phase, s.Laps, r.SampledCycles)
		}
	}
	if r.TotalNanos <= 0 {
		t.Error("no time attributed")
	}
}

// TestPhaseTimerSharedAcrossRuns: one timer aggregates several processors
// (the sweep-wide usage; counters are atomic).
func TestPhaseTimerSharedAcrossRuns(t *testing.T) {
	pt := telemetry.NewPhaseTimer(16)
	for _, bench := range []string{"gzip", "vpr"} {
		cfg := DefaultConfig()
		cfg.Phases = pt
		p := MustNew(cfg, workload.MustNew(bench, 1), nil)
		if _, err := p.Run(10_000); err != nil {
			t.Fatal(err)
		}
	}
	if pt.Report().SampledCycles == 0 {
		t.Fatal("shared timer sampled nothing")
	}
}

// TestPhaseTimerExcludedFromFingerprint: attaching a timer must not change
// the configuration fingerprint (its pointer address is nondeterministic,
// and the timer does not influence timing), so checkpoints and cache keys
// stay stable across instrumented and plain builds.
func TestPhaseTimerExcludedFromFingerprint(t *testing.T) {
	plain := DefaultConfig()
	timed := DefaultConfig()
	timed.Phases = telemetry.NewPhaseTimer(0)
	if plain.Fingerprint() != timed.Fingerprint() {
		t.Fatal("Phases leaked into Config.Fingerprint")
	}
}

// TestPhaseTimerCheckpointable: phase-timed runs stay checkpointable —
// unlike observer/checker runs, the timer holds no per-run state.
func TestPhaseTimerCheckpointable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Phases = telemetry.NewPhaseTimer(0)
	p := MustNew(cfg, workload.MustNew("gzip", 1), nil)
	if err := p.Checkpointable(); err != nil {
		t.Fatalf("phase-timed run not checkpointable: %v", err)
	}
}

// BenchmarkStepNoPhaseTimer is the hot path with attribution disabled: the
// only cost over the pre-telemetry step is one pointer test per cycle.
// BENCH_telemetry.json records it against BenchmarkSimulatorThroughput to
// prove the ≤2% disabled-overhead budget.
func BenchmarkStepNoPhaseTimer(b *testing.B) {
	benchPhaseSteps(b, nil)
}

// BenchmarkStepPhaseTimer measures the enabled path at the default sampling
// period (1 cycle in 64 timed).
func BenchmarkStepPhaseTimer(b *testing.B) {
	benchPhaseSteps(b, telemetry.NewPhaseTimer(0))
}

func benchPhaseSteps(b *testing.B, pt *telemetry.PhaseTimer) {
	cfg := DefaultConfig()
	cfg.Phases = pt
	p := MustNew(cfg, workload.MustNew("gzip", 1), nil)
	b.ReportAllocs()
	b.ResetTimer()
	mustRun(b, p, uint64(b.N))
}
