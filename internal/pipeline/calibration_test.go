package pipeline

import (
	"testing"

	"clustersim/internal/workload"
)

// TestCalibrationSweep checks every synthetic benchmark against the paper
// characteristics it substitutes for (workload.PaperData), with tolerances
// wide enough to survive re-tuning but tight enough to catch a benchmark
// drifting out of its class. It also logs the calibration table used
// while tuning (visible with -v).
func TestCalibrationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	// Window must cover at least one full phase cycle per benchmark.
	windows := map[string]uint64{
		"gzip": 900_000, "parser": 2_000_000, "crafty": 300_000,
		"swim": 500_000, "mgrid": 500_000, "galgel": 500_000,
		"djpeg": 300_000, "cjpeg": 300_000, "vpr": 300_000,
	}
	// Documented deviation (DESIGN.md §6): galgel's wide preference is
	// unreachable under stall-on-mispredict fetch.
	wideExceptions := map[string]bool{"galgel": true}

	for _, name := range workload.Benchmarks() {
		w := windows[name]
		pd, _ := workload.Paper(name)

		ipcAt := func(n int) float64 {
			cfg := DefaultConfig()
			cfg.ActiveClusters = n
			p := MustNew(cfg, workload.MustNew(name, 1), nil)
			return mustRun(t, p, w).IPC()
		}
		i4, i16 := ipcAt(4), ipcAt(16)

		pm := MustNew(MonolithicConfig(), workload.MustNew(name, 1), nil)
		rm := mustRun(t, pm, w)
		t.Logf("%-8s 4:%.2f 16:%.2f mono:%.2f(want %.2f) mi:%.0f(want %.0f)",
			name, i4, i16, rm.IPC(), pd.BaseIPC, rm.MispredictInterval(), pd.MispredictInterval)

		if ratio := rm.IPC() / pd.BaseIPC; ratio < 0.5 || ratio > 1.9 {
			t.Errorf("%s: monolithic IPC %.2f drifted from paper's %.2f (x%.2f)",
				name, rm.IPC(), pd.BaseIPC, ratio)
		}
		if ratio := rm.MispredictInterval() / pd.MispredictInterval; ratio < 0.35 || ratio > 2.8 {
			t.Errorf("%s: mispredict interval %.0f drifted from paper's %.0f (x%.2f)",
				name, rm.MispredictInterval(), pd.MispredictInterval, ratio)
		}
		if pd.PrefersWide && !wideExceptions[name] {
			if i16 <= i4 {
				t.Errorf("%s: should prefer 16 clusters (4:%.2f 16:%.2f)", name, i4, i16)
			}
		}
	}
}
