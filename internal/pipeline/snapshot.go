package pipeline

import (
	"fmt"
	"io"

	"clustersim/internal/isa"
	"clustersim/internal/snap"
)

// Checkpoint/resume for crash-safe sweeps.
//
// SaveCheckpoint serializes the processor's complete dynamic state — the
// in-flight window, front end, clusters, memory hierarchy, predictors,
// workload-generator cursor and controller — to a versioned snapshot.
// LoadCheckpoint restores it into a freshly constructed Processor built from
// the identical (Config, benchmark, controller) triple; resuming then
// produces byte-identical Results versus the uninterrupted run (proved by
// check.ResumeEquivalence).
//
// The snapshot header carries a format version and a Config fingerprint, so
// a snapshot from a different simulator build or a different configuration
// fails loudly at the header instead of silently producing wrong numbers.
//
// The observability and validation layers are deliberately outside the
// snapshot: observers stream to external sinks whose positions cannot be
// rewound, and checkers are debugging aids. Checkpointable reports whether a
// run can be checkpointed; the runner only checkpoints cacheable requests,
// which excludes observer/checker runs by construction.

const (
	// snapMagic identifies a clustersim snapshot stream.
	snapMagic = "CSIM-SNAP"
	// snapVersion is the snapshot layout version; bump on any layout
	// change.
	snapVersion = 1
)

// Checkpointable reports whether the processor's state can round-trip
// through a snapshot, returning a descriptive error when it cannot: an
// observer or checker is attached, or the workload generator, network,
// memory system or controller does not implement snap.Stater.
func (p *Processor) Checkpointable() error {
	if p.obs != nil {
		return fmt.Errorf("pipeline: runs with an observer attached cannot be checkpointed")
	}
	if p.chk != nil {
		return fmt.Errorf("pipeline: runs with a checker attached cannot be checkpointed")
	}
	if _, ok := p.gen.(snap.Stater); !ok {
		return fmt.Errorf("pipeline: workload generator %T does not support checkpointing", p.gen)
	}
	if _, ok := p.net.(snap.Stater); !ok {
		return fmt.Errorf("pipeline: network %T does not support checkpointing", p.net)
	}
	if _, ok := p.memsys.(snap.Stater); !ok {
		return fmt.Errorf("pipeline: memory system %T does not support checkpointing", p.memsys)
	}
	if p.ctrl != nil {
		if _, ok := p.ctrl.(snap.Stater); !ok {
			return fmt.Errorf("pipeline: controller %T does not support checkpointing", p.ctrl)
		}
	}
	return nil
}

// SaveCheckpoint writes a snapshot of the processor's dynamic state to wr.
func (p *Processor) SaveCheckpoint(wr io.Writer) error {
	if err := p.Checkpointable(); err != nil {
		return err
	}
	w := snap.NewWriter(wr)
	w.String(snapMagic)
	w.U64(snapVersion)
	w.U64(p.cfg.Fingerprint())
	w.String(p.gen.Name())
	w.String(p.policyName())

	w.Mark("proc")
	w.U64(p.cycle)
	w.U64(p.committed)
	w.U64(p.headSeq)
	w.U64(p.tailSeq)
	w.U64(p.fetchSeq)
	w.Int(p.active)
	w.Int(p.lsqTotal)
	w.Bool(p.draining)
	w.Int(p.pendingActive)
	w.U64(p.resumeAt)
	w.U64(p.fetchBlockedSeq)
	w.U64(p.fetchResumeAt)
	w.Int(p.modNCluster)
	w.Int(p.modNCount)
	w.U64(p.fetchStallUntil)
	w.U64(p.lastFetchLine)
	w.U64(p.lastCommitCycle)

	w.Mark("stats")
	w.U64(p.stats.Fetched)
	w.U64(p.stats.Dispatched)
	w.U64(p.stats.Redirects)
	w.U64(p.stats.DistantIssued)
	w.U64(p.stats.DistantCommitted)
	w.U64(p.stats.Reconfigs)
	w.U64(p.stats.ActiveSum)
	w.U64(p.stats.RegTransfers)
	w.U64(p.stats.RegLatencySum)
	w.U64(p.stats.StoreBroadcasts)
	w.U64(p.stats.BankMispredicts)
	w.U64(p.stats.LoadForwards)

	w.Mark("rob")
	for seq := p.headSeq; seq < p.tailSeq; seq++ {
		saveUop(w, p.at(seq))
	}

	// The fetch queue is written logically (oldest first) so restore can
	// normalize to fqHead = 0 — ring rotation is not machine state.
	w.Mark("fq")
	w.Int(p.fqLen)
	for i := 0; i < p.fqLen; i++ {
		e := &p.fq[(p.fqHead+i)&p.fqMask]
		saveInstr(w, &e.in)
		w.U64(e.seq)
		w.U64(e.earliest)
		w.Bool(e.mispred)
	}

	// The event stepper keeps the per-cluster issue-queue lists empty (the
	// wheel and wait chains replace them); derive them from the ROB for the
	// save so both steppers write byte-identical snapshots, then clear them
	// again. Ascending-seq derivation matches the legacy stepper's
	// compaction order exactly.
	if !p.cfg.LegacyStepper {
		p.fillIQLists()
		defer p.clearIQLists()
	}
	w.Mark("clusters")
	for ci := range p.clusters {
		cs := &p.clusters[ci]
		w.U64s(cs.iqInt)
		w.U64s(cs.iqFP)
		w.Int(cs.intRegs)
		w.Int(cs.fpRegs)
		w.Int(cs.lsq)
		for k := range cs.fuFree {
			w.U64s(cs.fuFree[k])
		}
	}

	// The store window is written from storesHead so restore compacts to
	// storesHead = 0; compaction timing is bookkeeping, not machine state.
	w.Mark("memwin")
	w.U64s(p.stores[p.storesHead:])
	w.U64s(p.pendingLoads)
	w.Int(len(p.dummyReleases))
	for _, d := range p.dummyReleases {
		w.U64(d.at)
		w.Int(int(d.cluster))
	}

	w.Mark("components")
	w.Bool(p.crit != nil)
	if p.crit != nil {
		w.U8s(p.crit.table)
	}
	w.Bool(p.icache != nil)
	if p.icache != nil {
		p.icache.SaveState(w)
	}
	w.Bool(p.dtlb != nil)
	if p.dtlb != nil {
		p.dtlb.SaveState(w)
	}
	p.net.(snap.Stater).SaveState(w)
	p.memsys.(snap.Stater).SaveState(w)
	p.bp.SaveState(w)
	w.Bool(p.bankp != nil)
	if p.bankp != nil {
		p.bankp.SaveState(w)
	}
	p.gen.(snap.Stater).SaveState(w)
	w.Bool(p.ctrl != nil)
	if p.ctrl != nil {
		p.ctrl.(snap.Stater).SaveState(w)
	}
	w.Mark("end")
	return w.Flush()
}

// LoadCheckpoint restores a snapshot written by SaveCheckpoint into p, which
// must be a freshly constructed Processor built from the identical Config,
// benchmark and controller. The header's fingerprint, benchmark and policy
// are verified before any state is touched.
func (p *Processor) LoadCheckpoint(rd io.Reader) error {
	if err := p.Checkpointable(); err != nil {
		return err
	}
	r := snap.NewReader(rd)
	if magic := r.String(); r.Err() == nil && magic != snapMagic {
		return fmt.Errorf("pipeline: not a clustersim snapshot (magic %q)", magic)
	}
	if v := r.U64(); r.Err() == nil && v != snapVersion {
		return fmt.Errorf("pipeline: snapshot version %d, this build reads version %d", v, snapVersion)
	}
	if fp := r.U64(); r.Err() == nil && fp != p.cfg.Fingerprint() {
		return fmt.Errorf("pipeline: snapshot was taken under a different configuration (fingerprint %#x, want %#x)",
			fp, p.cfg.Fingerprint())
	}
	if bench := r.String(); r.Err() == nil && bench != p.gen.Name() {
		return fmt.Errorf("pipeline: snapshot is for benchmark %q, processor runs %q", bench, p.gen.Name())
	}
	if policy := r.String(); r.Err() == nil && policy != p.policyName() {
		return fmt.Errorf("pipeline: snapshot is for policy %q, processor runs %q", policy, p.policyName())
	}
	if err := r.Err(); err != nil {
		return err
	}

	r.Mark("proc")
	p.cycle = r.U64()
	p.committed = r.U64()
	headSeq := r.U64()
	tailSeq := r.U64()
	fetchSeq := r.U64()
	if r.Err() == nil {
		if headSeq > tailSeq || tailSeq > fetchSeq || tailSeq-headSeq > uint64(len(p.rob)) {
			return fmt.Errorf("pipeline: snapshot window corrupt (head=%d tail=%d fetch=%d rob=%d)",
				headSeq, tailSeq, fetchSeq, len(p.rob))
		}
	}
	p.headSeq, p.tailSeq, p.fetchSeq = headSeq, tailSeq, fetchSeq
	active := r.Int()
	if r.Err() == nil && (active < 1 || active > p.cfg.Clusters) {
		return fmt.Errorf("pipeline: snapshot active clusters %d out of range [1,%d]", active, p.cfg.Clusters)
	}
	p.active = active
	p.lsqTotal = r.Int()
	p.draining = r.Bool()
	p.pendingActive = r.Int()
	p.resumeAt = r.U64()
	p.fetchBlockedSeq = r.U64()
	p.fetchResumeAt = r.U64()
	p.modNCluster = r.Int()
	p.modNCount = r.Int()
	p.fetchStallUntil = r.U64()
	p.lastFetchLine = r.U64()
	p.lastCommitCycle = r.U64()

	r.Mark("stats")
	p.stats.Fetched = r.U64()
	p.stats.Dispatched = r.U64()
	p.stats.Redirects = r.U64()
	p.stats.DistantIssued = r.U64()
	p.stats.DistantCommitted = r.U64()
	p.stats.Reconfigs = r.U64()
	p.stats.ActiveSum = r.U64()
	p.stats.RegTransfers = r.U64()
	p.stats.RegLatencySum = r.U64()
	p.stats.StoreBroadcasts = r.U64()
	p.stats.BankMispredicts = r.U64()
	p.stats.LoadForwards = r.U64()

	r.Mark("rob")
	if r.Err() == nil {
		for seq := p.headSeq; seq < p.tailSeq; seq++ {
			u := p.at(seq)
			loadUop(r, u)
			if r.Err() != nil {
				break
			}
			if u.seq != seq {
				return fmt.Errorf("pipeline: snapshot ROB entry holds seq %d, expected %d", u.seq, seq)
			}
		}
	}

	r.Mark("fq")
	fqLen := r.Int()
	if r.Err() == nil && (fqLen < 0 || fqLen > p.fqCap) {
		return fmt.Errorf("pipeline: snapshot fetch queue holds %d entries, capacity %d", fqLen, p.fqCap)
	}
	p.fqHead = 0
	p.fqLen = fqLen
	for i := 0; i < fqLen && r.Err() == nil; i++ {
		e := &p.fq[i]
		loadInstr(r, &e.in)
		e.seq = r.U64()
		e.earliest = r.U64()
		e.mispred = r.Bool()
	}

	r.Mark("clusters")
	for ci := range p.clusters {
		cs := &p.clusters[ci]
		cs.iqInt = append(cs.iqInt[:0], r.U64s()...)
		cs.iqFP = append(cs.iqFP[:0], r.U64s()...)
		cs.intRegs = r.Int()
		cs.fpRegs = r.Int()
		cs.lsq = r.Int()
		for k := range cs.fuFree {
			r.FixedU64s(cs.fuFree[k], "functional-unit calendar")
		}
		if r.Err() != nil {
			break
		}
	}

	r.Mark("memwin")
	p.stores = append(p.stores[:0], r.U64s()...)
	p.storesHead = 0
	p.pendingLoads = append(p.pendingLoads[:0], r.U64s()...)
	nDummy := r.Int()
	if r.Err() == nil && (nDummy < 0 || nDummy > cap(p.dummyReleases)) {
		return fmt.Errorf("pipeline: snapshot holds %d dummy releases, capacity %d", nDummy, cap(p.dummyReleases))
	}
	p.dummyReleases = p.dummyReleases[:0]
	for i := 0; i < nDummy && r.Err() == nil; i++ {
		at := r.U64()
		cl := r.Int()
		if cl < 0 || cl >= p.cfg.Clusters {
			return fmt.Errorf("pipeline: snapshot dummy release names cluster %d of %d", cl, p.cfg.Clusters)
		}
		p.dummyReleases = append(p.dummyReleases, dummyRelease{at: at, cluster: int32(cl)})
	}

	r.Mark("components")
	hasCrit := r.Bool()
	if r.Err() == nil && hasCrit != (p.crit != nil) {
		return fmt.Errorf("pipeline: snapshot criticality table presence %t, processor has %t", hasCrit, p.crit != nil)
	}
	if hasCrit && r.Err() == nil {
		table := r.U8s()
		if r.Err() == nil {
			if len(table) != len(p.crit.table) {
				return fmt.Errorf("pipeline: snapshot criticality table has %d entries, want %d", len(table), len(p.crit.table))
			}
			copy(p.crit.table, table)
		}
	}
	hasICache := r.Bool()
	if r.Err() == nil && hasICache != (p.icache != nil) {
		return fmt.Errorf("pipeline: snapshot icache presence %t, processor has %t", hasICache, p.icache != nil)
	}
	if hasICache && r.Err() == nil {
		p.icache.LoadState(r)
	}
	hasTLB := r.Bool()
	if r.Err() == nil && hasTLB != (p.dtlb != nil) {
		return fmt.Errorf("pipeline: snapshot dtlb presence %t, processor has %t", hasTLB, p.dtlb != nil)
	}
	if hasTLB && r.Err() == nil {
		p.dtlb.LoadState(r)
	}
	p.net.(snap.Stater).LoadState(r)
	p.memsys.(snap.Stater).LoadState(r)
	p.bp.LoadState(r)
	hasBank := r.Bool()
	if r.Err() == nil && hasBank != (p.bankp != nil) {
		return fmt.Errorf("pipeline: snapshot bank predictor presence %t, processor has %t", hasBank, p.bankp != nil)
	}
	if hasBank && r.Err() == nil {
		p.bankp.LoadState(r)
	}
	p.gen.(snap.Stater).LoadState(r)
	hasCtrl := r.Bool()
	if r.Err() == nil && hasCtrl != (p.ctrl != nil) {
		return fmt.Errorf("pipeline: snapshot controller presence %t, processor has %t", hasCtrl, p.ctrl != nil)
	}
	if hasCtrl && r.Err() == nil {
		p.ctrl.(snap.Stater).LoadState(r)
	}
	r.Mark("end")
	if err := r.Err(); err != nil {
		return err
	}
	// Reconstruct the derived scheduler state (occupancy counters, LSQ-full
	// count, and — under the event stepper — the wheel parking of every
	// dispatched-unissued uop). None of it is serialized: it is a pure
	// function of the loaded window. See rebuildSched in sched.go.
	p.rebuildSched()
	return nil
}

func saveInstr(w *snap.Writer, in *isa.Instruction) {
	w.U64(in.PC)
	w.U64(uint64(in.Class))
	w.U64(uint64(in.SrcDist1))
	w.U64(uint64(in.SrcDist2))
	w.Bool(in.HasDest)
	w.U64(in.Addr)
	w.Bool(in.Taken)
	w.U64(in.Target)
	w.Bool(in.EndsBlock)
}

func loadInstr(r *snap.Reader, in *isa.Instruction) {
	in.PC = r.U64()
	cls := r.U64()
	if r.Err() == nil && cls >= uint64(isa.NumClasses) {
		r.Failf("pipeline: snapshot instruction class %d out of range", cls)
		return
	}
	in.Class = isa.Class(cls)
	in.SrcDist1 = uint32(r.U64())
	in.SrcDist2 = uint32(r.U64())
	in.HasDest = r.Bool()
	in.Addr = r.U64()
	in.Taken = r.Bool()
	in.Target = r.U64()
	in.EndsBlock = r.Bool()
}

func saveUop(w *snap.Writer, u *uop) {
	saveInstr(w, &u.in)
	w.U64(u.seq)
	w.Int(int(u.cluster))
	w.Bool(u.issued)
	w.Bool(u.memDone)
	w.Bool(u.memStarted)
	w.Bool(u.distant)
	w.Bool(u.mispredicted)
	w.Bool(u.bankMispred)
	w.U64(u.dispatchReady)
	w.U64(u.issueAt)
	w.U64(u.doneAt)
	w.U64(u.agenDoneAt)
	w.U64(u.resolveGlobalAt)
	w.Int(int(u.predictedHome))
	w.Int(int(u.activeAtDispatch))
	w.U64(u.src1At)
	w.U64(u.src2At)
	w.U64(u.waitStore)
	w.U64(u.readyAt)
	for i := range u.fwd {
		w.U64(u.fwd[i])
	}
}

func loadUop(r *snap.Reader, u *uop) {
	loadInstr(r, &u.in)
	u.seq = r.U64()
	u.cluster = int32(r.Int())
	u.issued = r.Bool()
	u.memDone = r.Bool()
	u.memStarted = r.Bool()
	u.distant = r.Bool()
	u.mispredicted = r.Bool()
	u.bankMispred = r.Bool()
	u.dispatchReady = r.U64()
	u.issueAt = r.U64()
	u.doneAt = r.U64()
	u.agenDoneAt = r.U64()
	u.resolveGlobalAt = r.U64()
	u.predictedHome = int32(r.Int())
	u.activeAtDispatch = int32(r.Int())
	u.src1At = r.U64()
	u.src2At = r.U64()
	u.waitStore = r.U64()
	u.readyAt = r.U64()
	// Wait chains and the cached agenda key are rebuilt by rebuildSched,
	// never serialized.
	u.wHead, u.wNext, u.key = 0, 0, 0
	for i := range u.fwd {
		u.fwd[i] = r.U64()
	}
}
